// Benchmarks regenerating every quantitative result of the paper. Each
// benchmark corresponds to one entry of the per-experiment index in
// DESIGN.md; cmd/xnfbench prints the same numbers as formatted tables.
//
//	BenchmarkTable1…           — Table 1 (derivation-cost comparison)
//	BenchmarkFig3…             — Fig. 3 / [39]: subquery→join rewrite
//	BenchmarkExtraction…       — Sect. 1: set-oriented vs fragmented
//	BenchmarkCacheTraversal…   — Sect. 5.2: >100k tuples/s cache traversal
//	BenchmarkShipping…         — Sect. 5.1/5.3: boundary-crossing costs
package xnf

import (
	"fmt"
	"testing"
	"time"

	"xnf/internal/bench"
	"xnf/internal/engine"
	"xnf/internal/exec"
	"xnf/internal/opt"
	"xnf/internal/rewrite"
	"xnf/internal/wire"
	"xnf/internal/workload"
)

// --- Table 1 ---

// BenchmarkTable1Analysis times the derivation-cost analysis itself and
// asserts the paper's summary row (23/16/7).
func BenchmarkTable1Analysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if t.SQLTotal != 23 || t.ReplicatedTotal != 16 || t.XNFTotal != 7 {
			b.Fatalf("Table 1 = %d/%d/%d, paper reports 23/16/7", t.SQLTotal, t.ReplicatedTotal, t.XNFTotal)
		}
	}
}

// BenchmarkTable1Extraction measures the actual work ratio the table
// predicts: full CO extraction (shared DAG) vs per-component standalone
// extraction.
func BenchmarkTable1Extraction(b *testing.B) {
	db := engine.Open()
	if err := workload.LoadOrg(db, workload.OrgParams{
		Depts: 50, EmpsPerDept: 20, ProjsPerDept: 5,
		Skills: 200, SkillsPerEmp: 3, SkillsPerProj: 2,
		ArcFraction: 0.3, Seed: 2,
	}); err != nil {
		b.Fatal(err)
	}
	b.Run("xnf-shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compiled, err := bench.CompileDepsARC(db)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := compiled.Execute(db.Store(), opt.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sql-per-component", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := bench.StandaloneComponents(db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Fig. 3 ---

func fig3DB(b *testing.B, depts, emps int) *engine.Database {
	b.Helper()
	db, err := bench.Fig3DB(depts, emps)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkFig3 compares naive correlated-subquery execution against the
// E→F-rewritten join across scales; the paper reports "orders of
// magnitude" improvement.
func BenchmarkFig3(b *testing.B) {
	for _, scale := range []struct{ depts, emps int }{
		{20, 10}, {50, 20}, {100, 40},
	} {
		db := fig3DB(b, scale.depts, scale.emps)
		total := scale.depts * scale.emps
		b.Run(fmt.Sprintf("naive/emps=%d", total), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.RunFig3Once(db, true); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rewritten/emps=%d", total), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.RunFig3Once(db, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Sect. 1: extraction strategies ---

// BenchmarkExtraction compares one-query CO extraction with per-parent
// fragmented navigation over a real TCP connection, across scales.
func BenchmarkExtraction(b *testing.B) {
	for _, depts := range []int{10, 50, 200} {
		p := workload.OrgParams{
			Depts: depts, EmpsPerDept: 10, ProjsPerDept: 3,
			Skills: 100, SkillsPerEmp: 3, SkillsPerProj: 2,
			ArcFraction: 0.5, Seed: 4,
		}
		addr, closer, err := bench.StartServer(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("set-oriented/depts=%d", depts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := wire.Dial(addr)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.QueryCO("deps_ARC", wire.ShipWhole()); err != nil {
					b.Fatal(err)
				}
				c.Close()
			}
		})
		b.Run(fmt.Sprintf("fragmented/depts=%d", depts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := wire.Dial(addr)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := bench.FragmentedExtract(c); err != nil {
					b.Fatal(err)
				}
				c.Close()
			}
		})
		closer()
	}
}

// --- Sect. 5.2: cache traversal ---

// BenchmarkCacheTraversal measures tuples/second through a pre-loaded XNF
// cache with the OO1 traversal (the paper reports >100,000/s).
func BenchmarkCacheTraversal(b *testing.B) {
	for _, parts := range []int{2000, 20000} {
		cache, _, err := bench.BuildOO1Cache(workload.OO1Params{Parts: parts, Conns: 3, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			visited := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				visited += bench.RunTraversal(cache, 10, 7, int64(i))
			}
			b.StopTimer()
			rate := float64(visited) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "tuples/s")
			if rate < 100000 {
				b.Errorf("traversal rate %.0f tuples/s below the paper's 100k claim", rate)
			}
		})
	}
}

// BenchmarkCursorScan measures the independent-cursor scan rate over a
// cached component (the other half of the Sect. 5.2 access-rate claim).
func BenchmarkCursorScan(b *testing.B) {
	cache, _, err := bench.BuildOO1Cache(workload.OO1Params{Parts: 20000, Conns: 3, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	visited := 0
	for i := 0; i < b.N; i++ {
		cur, err := cache.OpenCursor("xpart")
		if err != nil {
			b.Fatal(err)
		}
		for o := cur.Next(); o != nil; o = cur.Next() {
			visited++
		}
	}
	b.ReportMetric(float64(visited)/b.Elapsed().Seconds(), "tuples/s")
}

// --- Sect. 5.1/5.3: shipping ---

// BenchmarkShipping measures the ship modes' wall time at a simulated
// 50µs per-round-trip cost.
func BenchmarkShipping(b *testing.B) {
	p := workload.OrgParams{
		Depts: 30, EmpsPerDept: 10, ProjsPerDept: 3,
		Skills: 100, SkillsPerEmp: 3, SkillsPerProj: 2,
		ArcFraction: 0.5, Seed: 4,
	}
	addr, closer, err := bench.StartServer(p)
	if err != nil {
		b.Fatal(err)
	}
	defer closer()
	for _, cfg := range []struct {
		name string
		mode wire.ShipMode
	}{
		{"whole", wire.ShipWhole()},
		{"block100", wire.ShipBlocks(100)},
		{"tuple", wire.ShipTupleAtATime()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := wire.Dial(addr)
				if err != nil {
					b.Fatal(err)
				}
				c.Latency = 50 * time.Microsecond
				if _, err := c.QueryCO("deps_ARC", cfg.mode); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(c.Stats.RoundTrips), "roundtrips")
				c.Close()
			}
		})
	}
}

// --- Ablations: the design choices DESIGN.md calls out ---

// BenchmarkAblationCSE isolates the common-subexpression sharing (spool)
// win during CO extraction.
func BenchmarkAblationCSE(b *testing.B) {
	db := engine.Open()
	if err := workload.LoadOrg(db, workload.OrgParams{
		Depts: 40, EmpsPerDept: 15, ProjsPerDept: 4,
		Skills: 150, SkillsPerEmp: 3, SkillsPerProj: 2,
		ArcFraction: 0.4, Seed: 6,
	}); err != nil {
		b.Fatal(err)
	}
	compiled, err := bench.CompileDepsARC(db)
	if err != nil {
		b.Fatal(err)
	}
	withSpool := opt.DefaultOptions()
	noSpool := opt.DefaultOptions()
	noSpool.Spool = false
	b.Run("spool-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.Execute(db.Store(), withSpool); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spool-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.Execute(db.Store(), noSpool); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationJoinStrategies isolates hash joins and index
// nested-loop joins on the Fig. 3 shape.
func BenchmarkAblationJoinStrategies(b *testing.B) {
	db := fig3DB(b, 100, 40)
	if _, err := db.Exec("CREATE INDEX emp_edno ON EMP (edno)"); err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name string
		o    opt.Options
	}{
		{"hash+index", opt.DefaultOptions()},
		{"hash-only", opt.Options{HashJoin: true, HashedSubplans: true, Spool: true, JoinOrdering: true}},
		{"index-only", opt.Options{IndexNL: true, HashedSubplans: true, Spool: true, JoinOrdering: true}},
		{"nested-loop", opt.Options{HashedSubplans: true, Spool: true, JoinOrdering: true}},
	}
	const q = `SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'`
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			db.OptOptions = cfg.o
			db.RewriteOptions = rewrite.DefaultOptions()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	db.OptOptions = opt.DefaultOptions()
}

// BenchmarkAblationParallelExtraction measures the Sect. 6 outlook
// extension: one goroutine per CO output, shared fragments spooled once.
func BenchmarkAblationParallelExtraction(b *testing.B) {
	db := engine.Open()
	if err := workload.LoadOrg(db, workload.OrgParams{
		Depts: 60, EmpsPerDept: 20, ProjsPerDept: 5,
		Skills: 200, SkillsPerEmp: 3, SkillsPerProj: 2,
		ArcFraction: 0.4, Seed: 8,
	}); err != nil {
		b.Fatal(err)
	}
	compiled, err := bench.CompileDepsARC(db)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.Execute(db.Store(), opt.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.ExecuteParallel(db.Store(), opt.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCacheBuild measures workspace construction (swizzling) alone.
func BenchmarkCacheBuild(b *testing.B) {
	db := engine.Open()
	if err := workload.LoadOrg(db, workload.DefaultOrg()); err != nil {
		b.Fatal(err)
	}
	compiled, err := bench.CompileDepsARC(db)
	if err != nil {
		b.Fatal(err)
	}
	res, err := compiled.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.BuildCache(res); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = exec.Counters{}
