package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// headlineKey reports whether a numeric leaf at this dotted path is a
// headline ratio — a better-when-higher quantity that is stable across
// machines and therefore safe to gate on (the whole path is matched, so a
// leaf under a "speedups" group qualifies by its group name). Everything
// else (raw nanoseconds, byte counts, row totals) varies with the host and
// is only informational.
func headlineKey(path string) bool {
	k := strings.ToLower(path)
	for _, m := range []string{"speedup", "ratio", "reduction", "per_s", "fraction"} {
		if strings.Contains(k, m) {
			return true
		}
	}
	return false
}

// flatten walks decoded JSON and collects numeric leaves under dotted
// paths, keeping only headline keys.
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, out)
		}
	case []any:
		for i, child := range x {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), child, out)
		}
	case float64:
		if headlineKey(prefix) {
			out[prefix] = x
		}
	}
}

// loadHeadlines reads one BENCH_*.json and returns its headline leaves.
func loadHeadlines(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]float64)
	flatten("", doc, out)
	return out, nil
}

// Diff compares every BENCH_*.json in baseDir against currentDir and
// returns a human-readable report plus whether any headline ratio
// regressed by more than threshold. Zero-valued baselines never gate (a
// ratio measured as 0 carries no signal to regress from).
func Diff(baseDir, curDir string, threshold float64) (string, bool, error) {
	basePaths, err := filepath.Glob(filepath.Join(baseDir, "BENCH_*.json"))
	if err != nil {
		return "", false, err
	}
	if len(basePaths) == 0 {
		return "", false, fmt.Errorf("no BENCH_*.json baselines in %s", baseDir)
	}
	sort.Strings(basePaths)
	var b strings.Builder
	failed := false
	for _, basePath := range basePaths {
		name := filepath.Base(basePath)
		curPath := filepath.Join(curDir, name)
		base, err := loadHeadlines(basePath)
		if err != nil {
			return "", false, err
		}
		cur, err := loadHeadlines(curPath)
		if os.IsNotExist(err) {
			fmt.Fprintf(&b, "%s: WARNING no current report (bench gate did not run?)\n", name)
			continue
		}
		if err != nil {
			return "", false, err
		}
		keys := make([]string, 0, len(base))
		for k := range base {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := base[k]
			cv, ok := cur[k]
			if !ok {
				fmt.Fprintf(&b, "%s: WARNING %s missing from current report\n", name, k)
				continue
			}
			if bv <= 0 {
				continue
			}
			change := cv/bv - 1
			mark := "ok"
			if -change > threshold {
				mark = "REGRESSION"
				failed = true
			}
			fmt.Fprintf(&b, "%s: %-12s %-48s %12.4f -> %12.4f (%+.1f%%)\n", name, mark, k, bv, cv, change*100)
		}
	}
	if failed {
		fmt.Fprintf(&b, "FAIL: headline ratio regressed more than %.0f%%\n", threshold*100)
	} else {
		fmt.Fprintf(&b, "PASS: no headline ratio regressed more than %.0f%%\n", threshold*100)
	}
	return b.String(), failed, nil
}
