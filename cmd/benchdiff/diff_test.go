package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

const baseReport = `{
  "results": {
    "kernel_typed": {"ns_per_op": 100000, "mrows_per_s": 50.0},
    "kernel_boxed": {"ns_per_op": 200000, "mrows_per_s": 25.0}
  },
  "speedups": {"typed_over_boxed_kernels": 2.0},
  "pruning": {"pruned_fraction": 0.8}
}`

func TestDiffPassesWithinThreshold(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeBench(t, base, "BENCH_typed.json", baseReport)
	// 10% slower ratio, inside the 25% budget; ns_per_op doubled but raw
	// timings are informational, never gated.
	writeBench(t, cur, "BENCH_typed.json", `{
	  "results": {
	    "kernel_typed": {"ns_per_op": 200000, "mrows_per_s": 45.0},
	    "kernel_boxed": {"ns_per_op": 360000, "mrows_per_s": 23.0}
	  },
	  "speedups": {"typed_over_boxed_kernels": 1.8},
	  "pruning": {"pruned_fraction": 0.8}
	}`)
	report, failed, err := Diff(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("within-threshold drift flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "PASS") {
		t.Fatalf("missing PASS line:\n%s", report)
	}
}

func TestDiffFailsOnHeadlineRegression(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeBench(t, base, "BENCH_typed.json", baseReport)
	// The typed-over-boxed speedup collapsed 2.0 -> 1.2 (40% down).
	writeBench(t, cur, "BENCH_typed.json", `{
	  "results": {
	    "kernel_typed": {"ns_per_op": 100000, "mrows_per_s": 50.0},
	    "kernel_boxed": {"ns_per_op": 120000, "mrows_per_s": 42.0}
	  },
	  "speedups": {"typed_over_boxed_kernels": 1.2},
	  "pruning": {"pruned_fraction": 0.8}
	}`)
	report, failed, err := Diff(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("40%% speedup collapse not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") || !strings.Contains(report, "typed_over_boxed_kernels") {
		t.Fatalf("report does not name the regressed ratio:\n%s", report)
	}
}

func TestDiffWarnsOnMissingCurrentReport(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeBench(t, base, "BENCH_typed.json", baseReport)
	writeBench(t, base, "BENCH_wal.json", `{"results": {"commits_per_s": 1000.0}}`)
	writeBench(t, cur, "BENCH_typed.json", baseReport)
	report, failed, err := Diff(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("missing report must warn, not fail:\n%s", report)
	}
	if !strings.Contains(report, "BENCH_wal.json: WARNING no current report") {
		t.Fatalf("missing-report warning absent:\n%s", report)
	}
}

func TestDiffErrsWithoutBaselines(t *testing.T) {
	if _, _, err := Diff(t.TempDir(), t.TempDir(), 0.25); err == nil {
		t.Fatal("expected an error for an empty baseline directory")
	}
}

func TestHeadlineKeySelection(t *testing.T) {
	for key, want := range map[string]bool{
		"typed_over_boxed_kernels":          false, // bare leaf: no marker
		"speedups.typed_over_boxed_kernels": true,  // gated via its group name
		"speedup":                           true,
		"mrows_per_s":                       true,
		"rows_per_s":                        true,
		"pruned_fraction":                   true,
		"bytes_reduction":                   true,
		"compression_ratio":                 true,
		"ns_per_op":                         false,
		"elapsed_ns":                        false,
		"errors":                            false,
	} {
		if got := headlineKey(key); got != want {
			t.Errorf("headlineKey(%q) = %v, want %v", key, got, want)
		}
	}
}
