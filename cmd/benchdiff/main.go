// Command benchdiff compares freshly produced BENCH_*.json reports against
// the committed baselines and fails when a headline ratio regresses by more
// than the threshold (default 25%).
//
//	benchdiff [-threshold 0.25] <baseline-dir> <current-dir>
//
// A headline ratio is any numeric leaf whose key names a better-when-higher
// quantity — speedups, throughput (…per_s), reductions, pruned fractions.
// Raw timings (ns_per_op and friends) are machine-sensitive and only
// meaningful relative to a sibling configuration measured in the same run,
// so they are reported but never gated; the ratios the gates themselves
// compute are the cross-run stable signal.
//
// Reports present only in the baseline are warned about (a bench gate that
// stopped producing output is suspicious); reports only in the current
// directory are new and pass vacuously.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "maximum allowed fractional regression of a headline ratio")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold 0.25] <baseline-dir> <current-dir>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	report, failed, err := Diff(flag.Arg(0), flag.Arg(1), *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}
