// xnfbench regenerates every table, figure and quantitative claim of the
// paper and prints them in the paper's layout. See EXPERIMENTS.md for the
// expected shapes.
//
//	xnfbench                  — run everything
//	xnfbench -exp table1      — Table 1 (derivation-cost comparison)
//	xnfbench -exp fig3        — Fig. 3: subquery→join rewrite
//	xnfbench -exp extraction  — Sect. 1: set-oriented vs fragmented
//	xnfbench -exp traversal   — Sect. 5.2: cache traversal rate
//	xnfbench -exp shipping    — Sect. 5.1/5.3: shipping strategies
//	xnfbench -exp concurrency — mixed wire workload, server-side latency quantiles
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"xnf"
	"xnf/internal/bench"
	"xnf/internal/workload"
	"xnf/internal/workload/loadgen"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig3, extraction, traversal, shipping, concurrency, all")
	latency := flag.Duration("latency", 100*time.Microsecond, "simulated per-round-trip latency")
	clients := flag.Int("clients", 64, "concurrency: concurrent wire sessions")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		t, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Println("Comparison of SQL Derivation and XNF Derivation w.r.t. Common Subexpressions")
		fmt.Println("(paper Table 1; summary row there: 23 / 16 / 7)")
		fmt.Print(t.Format())
		return nil
	})

	run("fig3", func() error {
		fmt.Println("Existential-subquery to join rewrite (paper Fig. 3, rule set of [39])")
		fmt.Printf("%8s %8s %14s %14s %10s %12s\n", "emps", "depts", "naive", "rewritten", "speedup", "subq runs")
		for _, scale := range []struct{ d, e int }{{20, 10}, {50, 20}, {100, 40}, {200, 50}} {
			r, err := bench.Fig3(scale.d, scale.e)
			if err != nil {
				return err
			}
			fmt.Printf("%8d %8d %14v %14v %9.1fx %12d\n",
				r.Emps, r.Depts, r.NaiveTime.Round(time.Microsecond),
				r.RewireTime.Round(time.Microsecond), r.Speedup, r.NaiveRuns)
		}
		fmt.Println("(the paper reports orders-of-magnitude improvements; the gap grows with scale)")
		return nil
	})

	run("extraction", func() error {
		fmt.Println("Set-oriented CO extraction vs fragmented per-parent navigation (Sect. 1)")
		fmt.Printf("%7s %8s | %12s %7s | %12s %7s %8s | %9s %9s\n",
			"depts", "tuples", "one-query", "rtrips", "fragmented", "rtrips", "queries", "speedup", "@1ms rpc")
		for _, depts := range []int{10, 50, 200, 500} {
			p := workload.OrgParams{
				Depts: depts, EmpsPerDept: 10, ProjsPerDept: 3,
				Skills: 100, SkillsPerEmp: 3, SkillsPerProj: 2,
				ArcFraction: 0.5, Seed: 4,
			}
			r, err := bench.Extraction(p, *latency)
			if err != nil {
				return err
			}
			fmt.Printf("%7d %8d | %12v %7d | %12v %7d %8d | %8.1fx %8.1fx\n",
				r.Depts, r.Tuples,
				r.SetOriented.Round(time.Microsecond), r.SetRoundTrips,
				r.Fragmented.Round(time.Microsecond), r.FragRoundTrips, r.FragQueries,
				r.Speedup, r.ModeledSpeedup)
		}
		fmt.Println("(fragment count grows with parent instances; the paper predicts orders of magnitude)")
		return nil
	})

	run("traversal", func() error {
		fmt.Println("Pre-loaded cache traversal, OO1/Cattell shape (Sect. 5.2; paper: >100,000 tuples/s)")
		fmt.Printf("%8s %12s %12s %10s %14s\n", "parts", "conns", "load", "visited", "tuples/s")
		for _, parts := range []int{2000, 20000} {
			r, err := bench.Traversal(workload.OO1Params{Parts: parts, Conns: 3, Seed: 7}, 100, 7)
			if err != nil {
				return err
			}
			fmt.Printf("%8d %12d %12v %10d %14.0f\n", r.Parts, r.Connections,
				r.LoadTime.Round(time.Millisecond), r.Visited, r.TuplesPerSecond)
		}
		return nil
	})

	run("concurrency", func() error {
		fmt.Printf("Mixed wire workload: %d concurrent sessions (OLTP lookups / analytics cursors / DDL churn / vanish mid-fetch)\n", *clients)
		db := xnf.Open()
		p := workload.DefaultOrg()
		p.Depts = 64
		p.EmpsPerDept = 16
		if err := workload.LoadOrg(db.Engine(), p); err != nil {
			return err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer l.Close()
		go db.NewServer().Serve(l)
		rep, err := loadgen.Run(loadgen.Params{
			Addr:    l.Addr().String(),
			Clients: *clients,
			Ops:     15,
			MaxEno:  p.Depts * p.EmpsPerDept,
			Seed:    1,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep.Format())
		fmt.Println("(latency quantiles and rows/s are the server's own metrics, read over the wire)")
		return nil
	})

	run("shipping", func() error {
		fmt.Printf("Shipping strategies at %v simulated round-trip latency (Sect. 5.1/5.3)\n", *latency)
		p := workload.OrgParams{
			Depts: 30, EmpsPerDept: 10, ProjsPerDept: 3,
			Skills: 100, SkillsPerEmp: 3, SkillsPerProj: 2,
			ArcFraction: 0.5, Seed: 4,
		}
		rows, err := bench.Shipping(p, *latency)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatShipping(rows))
		fmt.Println("(one call per tuple crosses the process boundary per tuple — the paper's RDBMS-interface critique)")
		return nil
	})
}
