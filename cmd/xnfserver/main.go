// xnfserver serves the CO wire protocol over TCP (the database-server half
// of the paper's workstation/server architecture, Fig. 7).
//
//	xnfserver -addr :7070 -load org
//	xnfserver -addr :7070 -load none -data /var/lib/xnf
//	xnfserver -addr :7070 -load org -http :7071 -stats 10s -slow 100ms
//
// With -http an observability listener serves /metrics (Prometheus text),
// /debug/vars (JSON including the slow-query log) and /debug/pprof. With
// -stats a one-line health summary is logged at the given interval; -slow
// sets the slow-query log threshold.
//
// With -data the database is durable: state under the directory is
// recovered on startup (write-ahead log + checkpoints) and every commit is
// fsync'd before acknowledgment. Clients connect with xnf.Dial and extract
// CO views with QueryCO.
//
// Resource governance: -mem caps the process memory budget (statements
// over it fail with a retryable error instead of taking the server down),
// -timeout sets the default statement timeout (per-session SET
// STATEMENT_TIMEOUT overrides it), and -cursor-idle reclaims server-side
// cursors abandoned by slow or vanished readers.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"xnf"
	"xnf/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	load := flag.String("load", "org", "workload to preload: org, parts, oo1, none")
	depts := flag.Int("depts", 20, "org: number of departments")
	parts := flag.Int("parts", 20000, "oo1/parts: number of parts")
	cursors := flag.Int("cursors", 0, "max open cursors per session (0 = default)")
	block := flag.Int("block", 0, "default rows per cursor fetch block (0 = default)")
	data := flag.String("data", "", "durable data directory (empty = in-memory)")
	httpAddr := flag.String("http", "", "observability HTTP listener: /metrics (Prometheus), /debug/vars, /debug/pprof (empty = off)")
	statsEvery := flag.Duration("stats", 0, "log a one-line stats summary at this interval (0 = off)")
	slow := flag.Duration("slow", xnf.DefaultSlowQueryThreshold, "slow-query log threshold (0 disables the log)")
	mem := flag.Int64("mem", 0, "process memory budget in bytes (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "default statement timeout (0 = none; SET STATEMENT_TIMEOUT overrides per session)")
	cursorIdle := flag.Duration("cursor-idle", 0, "close server-side cursors idle for this long (0 = never)")
	flag.Parse()

	var db *xnf.DB
	var err error
	if *data != "" {
		db, err = xnf.OpenDir(*data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer db.Close()
		// A recovered database already holds its data; don't reload a
		// workload on top of it.
		if st := db.WALStats(); st.RecoveredRecords > 0 || len(db.Engine().Catalog().Tables()) > 0 {
			*load = "none"
			fmt.Printf("xnfserver: recovered %d record(s) from %s in %dms\n",
				st.RecoveredRecords, *data, st.RecoveryMillis)
		}
	} else {
		db = xnf.Open()
	}
	switch *load {
	case "none":
	case "org":
		p := workload.DefaultOrg()
		p.Depts = *depts
		err = workload.LoadOrg(db.Engine(), p)
	case "parts":
		err = workload.LoadParts(db.Engine(), workload.PartsParams{Parts: *parts, FanOut: 2, Roots: 5, Seed: 1})
	case "oo1":
		err = workload.LoadOO1(db.Engine(), workload.OO1Params{Parts: *parts, Conns: 3, Seed: 7})
	default:
		err = fmt.Errorf("unknown workload %q", *load)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	db.SetSlowQueryThreshold(*slow)
	// Resource governance: budget and default deadline live on the engine;
	// the idle sweeper below lives on the wire server.
	db.Engine().SetMemBudget(*mem)
	db.Engine().Options.StatementTimeout = *timeout
	if *httpAddr != "" {
		// Observability on its own listener so profiling and scrapes never
		// contend with the wire protocol.
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("xnfserver: metrics on http://%s/metrics (also /debug/vars, /debug/pprof)\n", hl.Addr())
		go http.Serve(hl, db.MetricsHandler())
	}
	if *statsEvery > 0 {
		go db.LogStats(os.Stderr, *statsEvery, nil)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := db.NewServer()
	// Cursor limits: per-session open-cursor bound and the block size the
	// streaming result path ships per fetch round trip.
	srv.MaxCursorsPerSession = *cursors
	srv.CursorBlockRows = *block
	srv.CursorIdleTimeout = *cursorIdle
	fmt.Printf("xnfserver: %s workload, listening on %s\n", *load, l.Addr())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
