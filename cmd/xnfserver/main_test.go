package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"xnf/internal/types"
	"xnf/internal/wire"
)

// buildServer compiles the xnfserver binary once per test run.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "xnfserver")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startServer launches the binary against dataDir and returns its process
// and the address it reports on stdout.
func startServer(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-load", "none", "-data", dataDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("listening on "):])
				break
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server never reported its address")
		return nil, ""
	}
}

// TestKillNineRecovery is the end-to-end crash audit: a durable xnfserver
// child takes acknowledged commits over the wire, dies by SIGKILL with no
// chance to flush, is restarted on the same directory, and must serve
// every acknowledged row back. Two kill cycles, with a checkpoint-free
// first recovery and a log-replay second one.
func TestKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildServer(t)
	dataDir := t.TempDir()

	var acked []int64
	next := int64(0)

	runCycle := func(cycle int, rows int) {
		cmd, addr := startServer(t, bin, dataDir)
		defer cmd.Process.Kill()
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatalf("cycle %d: dial: %v", cycle, err)
		}
		if cycle == 0 {
			if _, err := c.Exec("CREATE TABLE audit (k INT NOT NULL, v INT, PRIMARY KEY (k))"); err != nil {
				t.Fatalf("create: %v", err)
			}
		} else {
			// Integrity audit: every commit acknowledged before the kill
			// must have survived it.
			st, err := c.Prepare("SELECT v FROM audit WHERE k = ?")
			if err != nil {
				t.Fatalf("cycle %d: prepare: %v", cycle, err)
			}
			for _, k := range acked {
				rows, err := st.Query(types.NewInt(k))
				if err != nil {
					t.Fatalf("cycle %d: audit k=%d: %v", cycle, k, err)
				}
				if len(rows) != 1 || rows[0][0].Int() != k*2 {
					t.Fatalf("cycle %d: k=%d recovered %v, want [%d]", cycle, k, rows, k*2)
				}
			}
			st.Close()
		}
		st, err := c.Prepare("INSERT INTO audit VALUES (?, ?)")
		if err != nil {
			t.Fatalf("cycle %d: prepare insert: %v", cycle, err)
		}
		for i := 0; i < rows; i++ {
			if _, err := st.Exec(types.NewInt(next), types.NewInt(next*2)); err != nil {
				t.Fatalf("cycle %d: insert %d: %v", cycle, next, err)
			}
			acked = append(acked, next)
			next++
		}
		// kill -9: no goodbye, no flush, no Close.
		if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatal(err)
		}
		cmd.Wait()
	}

	runCycle(0, 25)
	runCycle(1, 25)

	// Final restart: full audit, then a clean shutdown path check.
	cmd, addr := startServer(t, bin, dataDir)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Query("SELECT COUNT(*) FROM audit")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0][0].Int(); got != int64(len(acked)) {
		t.Fatalf("recovered %d rows, want %d acknowledged", got, len(acked))
	}
	sum, err := c.Query("SELECT k, v FROM audit ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range sum {
		if r[0].Int() != int64(i) || r[1].Int() != int64(i*2) {
			t.Fatalf("row %d: %v, want [%d %d]", i, r, i, i*2)
		}
	}
	fmt.Printf("kill-9 audit: %d acknowledged commits survived 2 SIGKILLs\n", len(acked))
}
