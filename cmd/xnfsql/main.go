// xnfsql is an interactive SQL/XNF shell over an in-memory database.
//
//	xnfsql            — empty database
//	xnfsql -load org  — pre-loaded Fig. 1 organization workload
//	xnfsql -data DIR  — durable database rooted at DIR (recovered on start,
//	                    every commit write-ahead-logged and fsync'd)
//
// Besides SQL and XNF statements it understands:
//
//	\d               list tables and views
//	\storage         per-table storage kind, segments and session scan/prune stats
//	\co VIEW         extract a CO view and summarize the cache
//	\explain SELECT  show the physical plan
//	\explain ANALYZE SELECT  run it and show the plan with runtime counters
//	\fetchsize N     rows per output flush of the streaming printer
//	\table1 VIEW     derivation-cost analysis (paper Table 1)
//	\prepare N SQL   prepare a statement (use ? placeholders) under name N
//	\run N ARG…      execute prepared statement N with bound arguments
//	\cache           plan-cache and compile statistics
//	\metrics [ADDR]  metrics snapshot — of this shell's database, or of a
//	                 remote xnfserver at ADDR (over the wire protocol)
//	\slow            the slow-query log (see xnf.DB.SetSlowQueryThreshold)
//	\q               quit
//
// SELECT results stream through the pull-based cursor API (xnf.DB.QueryRows):
// rows print incrementally as the plan produces them, so a huge result never
// materializes in the shell.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"xnf"
	"xnf/internal/workload"
)

func main() {
	load := flag.String("load", "", "preload a workload: org, parts, oo1")
	data := flag.String("data", "", "durable data directory (empty = in-memory)")
	flag.Parse()

	var db *xnf.DB
	if *data != "" {
		d, err := xnf.OpenDir(*data)
		check(err)
		defer d.Close()
		db = d
		if st := d.WALStats(); st.RecoveredRecords > 0 {
			fmt.Printf("recovered %d record(s) from %s in %dms\n", st.RecoveredRecords, *data, st.RecoveryMillis)
		}
	} else {
		db = xnf.Open()
	}
	switch *load {
	case "":
	case "org":
		check(workload.LoadOrg(db.Engine(), workload.DefaultOrg()))
		fmt.Println("loaded organization workload (deps_ARC view defined)")
	case "parts":
		check(workload.LoadParts(db.Engine(), workload.PartsParams{Parts: 200, FanOut: 2, Roots: 3, Seed: 1}))
		fmt.Println("loaded parts workload (parts_explosion view defined)")
	case "oo1":
		check(workload.LoadOO1(db.Engine(), workload.OO1Params{Parts: 2000, Conns: 3, Seed: 7}))
		fmt.Println("loaded OO1 workload (part_graph view defined)")
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *load)
		os.Exit(1)
	}

	prepared := make(map[string]*xnf.Stmt)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("xnf> ")
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !command(db, prepared, trimmed) {
				return
			}
			fmt.Print("xnf> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") {
			fmt.Print("...> ")
			continue
		}
		stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
		buf.Reset()
		run(db, stmt)
		fmt.Print("xnf> ")
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// fetchSize is the row count between output flushes of the streaming
// printer (\fetchsize).
var fetchSize = 1000

// sessionCounters accumulates the execution counters of every statement the
// shell ran; \storage reports them so zone-map effectiveness is visible.
var sessionCounters xnf.Counters

func addCounters(c xnf.Counters) {
	sessionCounters.RowsScanned += c.RowsScanned
	sessionCounters.RowsProduced += c.RowsProduced
	sessionCounters.IndexLookups += c.IndexLookups
	sessionCounters.SegmentsScanned += c.SegmentsScanned
	sessionCounters.SegmentsPruned += c.SegmentsPruned
	sessionCounters.SubplanRuns += c.SubplanRuns
	sessionCounters.SpoolMaterial += c.SpoolMaterial
	sessionCounters.HashBuilds += c.HashBuilds
	sessionCounters.JoinBuildRows += c.JoinBuildRows
	sessionCounters.JoinProbeRows += c.JoinProbeRows
	sessionCounters.PoolWorkers += c.PoolWorkers
	sessionCounters.PoolFallbacks += c.PoolFallbacks
	sessionCounters.EncodedCmpRows += c.EncodedCmpRows
	sessionCounters.EncodedHashRows += c.EncodedHashRows
}

func run(db *xnf.DB, stmt string) {
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	switch {
	case strings.HasPrefix(upper, "SELECT"):
		rows, err := db.QueryRows(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printRows(rows)
	case strings.HasPrefix(upper, "OUT"):
		summarizeCO(db, stmt)
	default:
		n, err := db.Exec(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("ok (%d rows affected)\n", n)
	}
}

func command(db *xnf.DB, prepared map[string]*xnf.Stmt, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\q`:
		return false
	case `\prepare`:
		if len(fields) < 3 {
			fmt.Println("usage: \\prepare NAME SQL…")
			return true
		}
		name := fields[1]
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, `\prepare`))
		sql := strings.TrimSpace(strings.TrimPrefix(rest, name))
		stmt, err := db.Prepare(strings.TrimSuffix(sql, ";"))
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		prepared[name] = stmt
		fmt.Printf("prepared %s (%d parameter(s))\n", name, stmt.NumParams())
	case `\run`:
		if len(fields) < 2 {
			fmt.Println("usage: \\run NAME ARG…")
			return true
		}
		stmt, ok := prepared[fields[1]]
		if !ok {
			fmt.Printf("no prepared statement %q (use \\prepare)\n", fields[1])
			return true
		}
		runPrepared(stmt, parseArgs(fields[2:]))
	case `\cache`:
		m := &db.Engine().Metrics
		fmt.Printf("plan cache: %d cached, %d hits, %d misses, %d compiles\n",
			db.Engine().PlanCacheLen(), m.CacheHits.Load(), m.CacheMisses.Load(), m.Compiles.Load())
		fmt.Printf("CO views:   %d compiles, %d hits; plans: %d compiles, %d hits\n",
			m.COCompiles.Load(), m.COCacheHits.Load(), m.COPlanCompiles.Load(), m.COPlanCacheHits.Load())
		for i, e := range db.Engine().CacheStats() {
			if i >= 10 {
				fmt.Println("  …")
				break
			}
			sql := e.SQL
			if len(sql) > 64 {
				sql = sql[:61] + "..."
			}
			fmt.Printf("  %6d hit(s)  %s\n", e.Hits, sql)
		}
	case `\storage`:
		for _, t := range db.Engine().Catalog().Tables() {
			td, err := db.Engine().Store().Table(t.Name)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			kind := td.StorageKind().String()
			if kind == "COLUMN" {
				extra := ""
				if h := td.HollowSegments(); h > 0 {
					extra = fmt.Sprintf(" (%d hollow)", h)
				}
				if d, p := td.EncodedColumns(); d > 0 || p > 0 {
					extra += fmt.Sprintf("  encoded: %d dict, %d packed col(s)", d, p)
				}
				fmt.Printf("%-16s %-6s %8d rows  %d segment(s)%s\n", t.Name, kind, t.RowCount(), td.Segments(), extra)
			} else {
				fmt.Printf("%-16s %-6s %8d rows\n", t.Name, kind, t.RowCount())
			}
		}
		c := sessionCounters
		fmt.Printf("session: %d rows scanned, %d index lookups, %d segments pruned by zone maps\n",
			c.RowsScanned, c.IndexLookups, c.SegmentsPruned)
		fmt.Printf("session: %d join build rows, %d join probe rows, %d pool workers granted, %d pool fallbacks\n",
			c.JoinBuildRows, c.JoinProbeRows, c.PoolWorkers, c.PoolFallbacks)
		fmt.Printf("session: %d rows compared on encoded data, %d rows hashed from encoded data\n",
			c.EncodedCmpRows, c.EncodedHashRows)
		ps := xnf.PoolStats()
		fmt.Printf("worker pool: %d/%d in use (peak %d), %d admissions, %d sequential fallbacks\n",
			ps.InUse, ps.Workers, ps.Peak, ps.Admits, ps.Fallbacks)
		if ws := db.WALStats(); ws.Attached {
			group := float64(0)
			if ws.Fsyncs > 0 {
				group = float64(ws.GroupSum) / float64(ws.Fsyncs)
			}
			fmt.Printf("wal: %s — %d records (%d bytes), %d commits over %d fsyncs (mean group %.1f, max %d), %d checkpoint(s)\n",
				ws.Dir, ws.Records, ws.Bytes, ws.Commits, ws.Fsyncs, group, ws.MaxGroup, ws.Checkpoints)
			if ws.RecoveredRecords > 0 {
				fmt.Printf("wal: recovered %d record(s) / %d transaction(s) in %dms at startup\n",
					ws.RecoveredRecords, ws.RecoveredTx, ws.RecoveryMillis)
			}
		}
		fmt.Println("switch with: ALTER TABLE name SET STORAGE COLUMN (or ROW)")
	case `\fetchsize`:
		if len(fields) < 2 {
			fmt.Printf("fetch size: %d\n", fetchSize)
			return true
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			fmt.Println("usage: \\fetchsize N (N >= 1)")
			return true
		}
		fetchSize = n
		fmt.Printf("fetch size set to %d\n", n)
	case `\d`:
		for _, t := range db.Engine().Catalog().Tables() {
			fmt.Printf("table %-16s %d rows, %d columns\n", t.Name, t.RowCount(), len(t.Columns))
		}
		for _, v := range db.Engine().Catalog().Views() {
			kind := "view"
			if v.IsXNF {
				kind = "CO view"
			}
			fmt.Printf("%-7s %s\n", kind, v.Name)
		}
	case `\co`:
		if len(fields) < 2 {
			fmt.Println("usage: \\co VIEW")
			return true
		}
		summarizeCO(db, fields[1])
	case `\explain`:
		sql := strings.TrimSpace(strings.TrimPrefix(cmd, `\explain`))
		// \explain ANALYZE SELECT… also executes the plan and appends the
		// runtime counters (rows scanned, segments pruned by zone maps).
		var plan string
		var err error
		if rest, ok := cutKeyword(sql, "ANALYZE"); ok {
			plan, err = db.ExplainAnalyze(rest)
		} else {
			plan, err = db.Explain(sql)
		}
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(plan)
	case `\table1`:
		if len(fields) < 2 {
			fmt.Println("usage: \\table1 VIEW")
			return true
		}
		t, err := db.AnalyzeTable1(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(t.Format())
	case `\metrics`:
		var samples []xnf.MetricsSample
		if len(fields) >= 2 {
			c, err := xnf.Dial(fields[1])
			if err != nil {
				fmt.Println("error:", err)
				return true
			}
			defer c.Close()
			samples, err = c.ServerStats()
			if err != nil {
				fmt.Println("error:", err)
				return true
			}
		} else {
			samples = db.Metrics().Snapshot()
		}
		for _, s := range samples {
			fmt.Printf("%-44s %v\n", s.Name, s.Value)
		}
	case `\slow`:
		slow := db.SlowQueries()
		if len(slow) == 0 {
			fmt.Println("slow-query log is empty")
			return true
		}
		for _, q := range slow {
			fmt.Printf("%v  %8v  %6d rows  %s\n", q.When.Format("15:04:05"), q.Duration.Round(time.Microsecond), q.Rows, q.SQL)
		}
	default:
		fmt.Println(`commands: \d  \storage  \co VIEW  \explain [ANALYZE] SELECT…  \fetchsize N  \table1 VIEW  \prepare NAME SQL…  \run NAME ARG…  \cache  \metrics [ADDR]  \slow  \q`)
	}
	return true
}

// cutKeyword strips a leading keyword (case-insensitive, followed by a
// space) from s; ok reports whether it was present.
func cutKeyword(s, kw string) (string, bool) {
	if len(s) > len(kw) && strings.EqualFold(s[:len(kw)], kw) && s[len(kw)] == ' ' {
		return strings.TrimSpace(s[len(kw):]), true
	}
	return s, false
}

// parseArgs converts shell words to SQL values: integers, floats, NULL,
// TRUE/FALSE, 'quoted strings' (single words) and bare strings. Every word
// maps to some value, so there is no error case.
func parseArgs(words []string) []xnf.Value {
	out := make([]xnf.Value, 0, len(words))
	for _, w := range words {
		switch {
		case strings.EqualFold(w, "NULL"):
			out = append(out, xnf.Null)
		case strings.EqualFold(w, "TRUE"), strings.EqualFold(w, "FALSE"):
			out = append(out, xnf.NewBool(strings.EqualFold(w, "TRUE")))
		case strings.HasPrefix(w, "'") && strings.HasSuffix(w, "'") && len(w) >= 2:
			out = append(out, xnf.NewString(strings.ReplaceAll(w[1:len(w)-1], "''", "'")))
		default:
			if n, err := strconv.ParseInt(w, 10, 64); err == nil {
				out = append(out, xnf.NewInt(n))
			} else if f, err := strconv.ParseFloat(w, 64); err == nil {
				out = append(out, xnf.NewFloat(f))
			} else {
				out = append(out, xnf.NewString(w))
			}
		}
	}
	return out
}

// printRows streams a result to stdout: rows print as the plan produces
// them, flushed every fetchSize rows, so a huge result never materializes
// in the shell. The execution counters are folded into the session totals.
func printRows(rows *xnf.Rows) {
	defer rows.Close()
	names := make([]string, len(rows.Columns()))
	for i, c := range rows.Columns() {
		names[i] = c.Name
	}
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(out, strings.Join(names, " | "))
	n := 0
	for {
		r, err := rows.Next()
		if err != nil {
			out.Flush()
			fmt.Println("error:", err)
			return
		}
		if r == nil {
			break
		}
		fmt.Fprintln(out, strings.ReplaceAll(r.String(), "|", " | "))
		n++
		if n%fetchSize == 0 {
			out.Flush()
		}
	}
	fmt.Fprintf(out, "(%d rows)\n", n)
	out.Flush()
	addCounters(rows.Counters())
}

func runPrepared(stmt *xnf.Stmt, args []xnf.Value) {
	if stmt.IsQuery() {
		rows, err := stmt.QueryRows(args...)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printRows(rows)
		return
	}
	n, err := stmt.Exec(args...)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows affected)\n", n)
}

func summarizeCO(db *xnf.DB, query string) {
	cache, err := db.QueryCO(query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, comp := range cache.Components() {
		fmt.Printf("component %-14s %5d objects (%s)\n", comp.Name, comp.Len(), strings.Join(comp.ColNames, ", "))
	}
	for _, rel := range cache.Relationships() {
		fmt.Printf("relationship %-11s %5d connections (%s -> %s)\n",
			rel.Name, rel.Connections(), rel.Parent, strings.Join(rel.Children, "+"))
	}
}
