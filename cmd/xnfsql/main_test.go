package main

import (
	"testing"

	"xnf"
	"xnf/internal/workload"
)

func replDB(t *testing.T) *xnf.DB {
	t.Helper()
	db := xnf.Open()
	if err := workload.LoadOrg(db.Engine(), workload.DefaultOrg()); err != nil {
		t.Fatal(err)
	}
	return db
}

// The REPL helpers must not panic and must handle both statement kinds and
// the meta commands (output goes to stdout; we only verify control flow).
func TestRunStatements(t *testing.T) {
	db := replDB(t)
	run(db, "SELECT COUNT(*) FROM EMP")
	run(db, "INSERT INTO SKILLS VALUES (999, 'extra')")
	run(db, "OUT OF d AS DEPT TAKE *")
	run(db, "SELECT * FROM nosuch") // error path must not panic
	run(db, "garbage statement")
}

func TestCommands(t *testing.T) {
	db := replDB(t)
	prepared := make(map[string]*xnf.Stmt)
	cases := []string{
		`\d`,
		`\co deps_ARC`,
		`\co nosuch`,
		`\explain SELECT * FROM EMP WHERE eno = 1`,
		`\table1 deps_ARC`,
		`\table1`,
		`\co`,
		`\cache`,
		`\prepare emps SELECT ename FROM EMP WHERE edno = ?`,
		`\run emps 1`,
		`\run emps`,     // arg-count mismatch: error path, no panic
		`\run nosuch 1`, // unknown name
		`\prepare bad SELECT nocol FROM EMP`,
		`\prepare`,
		`\run`,
		`\unknown`,
	}
	for _, c := range cases {
		if !command(db, prepared, c) {
			t.Errorf("command %q requested exit", c)
		}
	}
	if prepared["emps"] == nil {
		t.Error(`\prepare did not register the statement`)
	}
	if command(db, prepared, `\q`) {
		t.Error(`\q must exit`)
	}
}
