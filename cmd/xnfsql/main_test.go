package main

import (
	"testing"

	"xnf"
	"xnf/internal/workload"
)

func replDB(t *testing.T) *xnf.DB {
	t.Helper()
	db := xnf.Open()
	if err := workload.LoadOrg(db.Engine(), workload.DefaultOrg()); err != nil {
		t.Fatal(err)
	}
	return db
}

// The REPL helpers must not panic and must handle both statement kinds and
// the meta commands (output goes to stdout; we only verify control flow).
func TestRunStatements(t *testing.T) {
	db := replDB(t)
	run(db, "SELECT COUNT(*) FROM EMP")
	run(db, "INSERT INTO SKILLS VALUES (999, 'extra')")
	run(db, "OUT OF d AS DEPT TAKE *")
	run(db, "SELECT * FROM nosuch") // error path must not panic
	run(db, "garbage statement")
}

func TestCommands(t *testing.T) {
	db := replDB(t)
	cases := []string{
		`\d`,
		`\co deps_ARC`,
		`\co nosuch`,
		`\explain SELECT * FROM EMP WHERE eno = 1`,
		`\table1 deps_ARC`,
		`\table1`,
		`\co`,
		`\unknown`,
	}
	for _, c := range cases {
		if !command(db, c) {
			t.Errorf("command %q requested exit", c)
		}
	}
	if command(db, `\q`) {
		t.Error(`\q must exit`)
	}
}
