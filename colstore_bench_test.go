package xnf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"xnf/internal/engine"
	"xnf/internal/types"
)

// colstoreBenchDB builds the same 150k-row wide table for row and column
// storage: integer key, low-cardinality group, float measure, string tag.
func colstoreBenchDB(tb testing.TB, n int, columnar bool) *engine.Database {
	tb.Helper()
	db := engine.Open()
	if err := db.ExecScript(`CREATE TABLE M (id INT NOT NULL, grp INT, val FLOAT, tag VARCHAR, PRIMARY KEY (id))`); err != nil {
		tb.Fatal(err)
	}
	td, err := db.Store().Table("M")
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 97)),
			types.NewFloat(float64(i%1000) / 10),
			types.NewString(fmt.Sprintf("tag%d", i%13)),
		}
		if _, err := td.Insert(row); err != nil {
			tb.Fatal(err)
		}
	}
	if err := db.Analyze(); err != nil {
		tb.Fatal(err)
	}
	if columnar {
		if _, err := db.Exec("ALTER TABLE M SET STORAGE COLUMN"); err != nil {
			tb.Fatal(err)
		}
	}
	return db
}

// The two scan→filter→aggregate shapes the colstore work targets: aggQ is
// scan-dominated (selective integer filter — the transpose the columnar
// path deletes is most of the row path's work), broadQ folds most of the
// table (aggregation-dominated, the PR 2 benchmark query).
const (
	colstoreRows = 150_000
	aggQ         = "SELECT grp, COUNT(*), SUM(val) FROM M WHERE grp >= 90 GROUP BY grp"
	broadQ       = "SELECT grp, COUNT(*), SUM(val) FROM M WHERE val > 20 AND grp < 90 GROUP BY grp"
)

func runColstoreBench(b *testing.B, q string, columnar bool, workers int) {
	db := colstoreBenchDB(b, colstoreRows, columnar)
	db.OptOptions.ParallelScan = workers > 1
	db.OptOptions.ParallelWorkers = workers
	stmt, err := db.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}
	res, err := stmt.Query()
	if err != nil {
		b.Fatal(err)
	}
	nres := len(res.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := stmt.Query()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != nres {
			b.Fatalf("result drifted: %d vs %d rows", len(res.Rows), nres)
		}
	}
	b.ReportMetric(float64(colstoreRows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
}

// BenchmarkColstorePipeline compares row vs column storage (and 1 vs N
// morsel workers) on cached prepared scan→filter→agg plans — pure
// execution, no compilation. BENCH_colstore.json records the results; the
// CI gate (TestColstoreBenchGate) fails when the columnar path loses.
func BenchmarkColstorePipeline(b *testing.B) {
	b.Run("agg-row-storage", func(b *testing.B) { runColstoreBench(b, aggQ, false, 1) })
	b.Run("agg-col-storage", func(b *testing.B) { runColstoreBench(b, aggQ, true, 1) })
	b.Run("agg-col-parallel", func(b *testing.B) { runColstoreBench(b, aggQ, true, runtime.GOMAXPROCS(0)) })
	b.Run("broad-row-storage", func(b *testing.B) { runColstoreBench(b, broadQ, false, 1) })
	b.Run("broad-col-storage", func(b *testing.B) { runColstoreBench(b, broadQ, true, 1) })
	b.Run("broad-col-parallel", func(b *testing.B) { runColstoreBench(b, broadQ, true, runtime.GOMAXPROCS(0)) })
}

// colstoreBenchResult is one measured configuration in BENCH_colstore.json.
type colstoreBenchResult struct {
	Query    string  `json:"query"`
	NsPerOp  int64   `json:"ns_per_op"`
	MRowsPS  float64 `json:"mrows_per_s"`
	Workers  int     `json:"workers"`
	Columnar bool    `json:"columnar"`
}

// TestColstoreBenchGate measures the row-vs-column matrix, writes
// BENCH_colstore.json and fails when columnar storage is slower than row
// storage on the aggregate benchmark. Guarded by COLSTORE_BENCH_GATE=1 so
// ordinary `go test ./...` stays fast; CI runs it as a dedicated step and
// uploads the JSON as an artifact.
func TestColstoreBenchGate(t *testing.T) {
	if os.Getenv("COLSTORE_BENCH_GATE") == "" {
		t.Skip("set COLSTORE_BENCH_GATE=1 to run the benchmark gate")
	}
	workers := runtime.GOMAXPROCS(0)
	measure := func(q string, columnar bool, w int) colstoreBenchResult {
		r := testing.Benchmark(func(b *testing.B) { runColstoreBench(b, q, columnar, w) })
		return colstoreBenchResult{
			Query:    q,
			NsPerOp:  r.NsPerOp(),
			MRowsPS:  float64(colstoreRows) / (float64(r.NsPerOp()) / 1e9) / 1e6,
			Workers:  w,
			Columnar: columnar,
		}
	}

	aggRow := measure(aggQ, false, 1)
	aggCol := measure(aggQ, true, 1)
	aggPar := measure(aggQ, true, workers)
	broadRow := measure(broadQ, false, 1)
	broadCol := measure(broadQ, true, 1)
	broadPar := measure(broadQ, true, workers)

	speedup := func(base, fast colstoreBenchResult) float64 {
		return float64(base.NsPerOp) / float64(fast.NsPerOp)
	}
	report := map[string]any{
		"benchmark":   "BenchmarkColstorePipeline / TestColstoreBenchGate (colstore_bench_test.go)",
		"description": fmt.Sprintf("Row vs column storage on %d-row M(id,grp,val,tag); cached prepared plans, pure execution. agg = scan-dominated selective aggregate, broad = PR 2's aggregation-heavy query. Parallel rows use morsel workers over colstore segments.", colstoreRows),
		"machine":     fmt.Sprintf("GOMAXPROCS=%d, %s/%s, %s", workers, runtime.GOOS, runtime.GOARCH, runtime.Version()),
		"results": map[string]any{
			"agg_row_storage":    aggRow,
			"agg_col_storage":    aggCol,
			"agg_col_parallel":   aggPar,
			"broad_row_storage":  broadRow,
			"broad_col_storage":  broadCol,
			"broad_col_parallel": broadPar,
		},
		"speedups": map[string]float64{
			"agg_col_over_row":        speedup(aggRow, aggCol),
			"agg_parallel_over_col":   speedup(aggCol, aggPar),
			"broad_col_over_row":      speedup(broadRow, broadCol),
			"broad_parallel_over_col": speedup(broadCol, broadPar),
		},
		"notes": "worker scaling requires GOMAXPROCS > 1; on a single-CPU host the parallel rows measure dispatch overhead only",
	}
	gatePass := aggCol.NsPerOp <= aggRow.NsPerOp
	report["acceptance"] = fmt.Sprintf("columnar agg not slower than row agg: %s (%.2fx)",
		map[bool]string{true: "PASS", false: "FAIL"}[gatePass], speedup(aggRow, aggCol))

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_colstore.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("agg: row %v, col %v (%.2fx), parallel(%d) %v (%.2fx over col)",
		aggRow.NsPerOp, aggCol.NsPerOp, speedup(aggRow, aggCol), workers, aggPar.NsPerOp, speedup(aggCol, aggPar))
	t.Logf("broad: row %v, col %v (%.2fx), parallel(%d) %v (%.2fx over col)",
		broadRow.NsPerOp, broadCol.NsPerOp, speedup(broadRow, broadCol), workers, broadPar.NsPerOp, speedup(broadCol, broadPar))
	if !gatePass {
		t.Fatalf("columnar aggregate scan is slower than the row path: %d ns/op vs %d ns/op", aggCol.NsPerOp, aggRow.NsPerOp)
	}
}
