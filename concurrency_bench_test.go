package xnf

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"xnf/internal/workload"
	"xnf/internal/workload/loadgen"
)

// concurrencyClients is the wire-session count of the gate: 256 concurrent
// clients in four behavior classes (prepared OLTP lookups, streamed
// analytics cursors, DDL churn, vanishing mid-fetch).
const concurrencyClients = 256

// concurrencyOps is the per-client operation count.
const concurrencyOps = 15

// runConcurrency starts an in-process server preloaded with the
// organization workload and drives the mixed load against it over real TCP
// connections.
func runConcurrency(tb testing.TB, clients, ops int) *loadgen.Report {
	tb.Helper()
	db := Open()
	p := workload.DefaultOrg()
	p.Depts = 64
	p.EmpsPerDept = 16
	if err := workload.LoadOrg(db.Engine(), p); err != nil {
		tb.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	defer l.Close()
	srv := db.NewServer()
	go srv.Serve(l)

	rep, err := loadgen.Run(loadgen.Params{
		Addr:    l.Addr().String(),
		Clients: clients,
		Ops:     ops,
		MaxEno:  p.Depts * p.EmpsPerDept,
		Seed:    1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return rep
}

// BenchmarkConcurrency is the manual-run variant; the CI gate is
// TestConcurrencyBenchGate.
func BenchmarkConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runConcurrency(b, 64, 10)
		b.ReportMetric(rep.RowsPerSec, "rows/s")
		b.ReportMetric(float64(rep.P99.Nanoseconds()), "p99-ns")
	}
}

// TestConcurrencyBenchGate drives the mixed workload at 256 concurrent
// wire sessions — a quarter of them vanishing mid-fetch every operation —
// and writes BENCH_concurrency.json with the server-side p50/p99 statement
// latency and rows/s read from the server's own metrics registry. The gate
// fails on any client error or if the server leaks a single session,
// cursor or statement. Guarded by CONCURRENCY_BENCH_GATE=1; CI runs it as
// a dedicated step and uploads the JSON.
func TestConcurrencyBenchGate(t *testing.T) {
	if os.Getenv("CONCURRENCY_BENCH_GATE") == "" {
		t.Skip("set CONCURRENCY_BENCH_GATE=1 to run the benchmark gate")
	}

	start := time.Now()
	rep := runConcurrency(t, concurrencyClients, concurrencyOps)
	t.Logf("%s", rep.Format())

	leakFree := rep.LeakedSessions == 0 && rep.LeakedCursors == 0 && rep.LeakedStatements == 0
	errorFree := rep.Errors == 0
	measured := rep.Rows > 0 && rep.P99 > 0 && rep.Vanishes > 0

	report := map[string]any{
		"benchmark": "BenchmarkConcurrency / TestConcurrencyBenchGate (concurrency_bench_test.go)",
		"description": fmt.Sprintf(
			"Mixed wire workload at %d concurrent TCP sessions against one in-process server (organization database, 64 depts x 16 emps): per client, %d operations of prepared OLTP point lookups, streamed analytics cursors (64-row fetch blocks), CREATE/INSERT/SELECT/DROP churn on a scratch table, or vanish-mid-fetch (connection severed with a cursor and statement open). Latency quantiles and rows/s come from the server's metrics registry over the wire (FrameStats), so they are the server's view of every statement in the run.",
			concurrencyClients, concurrencyOps),
		"machine": fmt.Sprintf("GOMAXPROCS=%d, %s/%s, %s", runtime.GOMAXPROCS(0), runtime.GOOS, runtime.GOARCH, runtime.Version()),
		"results": map[string]any{
			"clients":           rep.Clients,
			"ops":               rep.Ops,
			"errors":            rep.Errors,
			"elapsed_ns":        rep.Elapsed.Nanoseconds(),
			"statements":        rep.Statements,
			"rows":              rep.Rows,
			"rows_per_s":        rep.RowsPerSec,
			"latency_p50_ns":    rep.P50.Nanoseconds(),
			"latency_p99_ns":    rep.P99.Nanoseconds(),
			"vanishes":          rep.Vanishes,
			"leaked_sessions":   rep.LeakedSessions,
			"leaked_cursors":    rep.LeakedCursors,
			"leaked_statements": rep.LeakedStatements,
			"wall_clock_ns":     time.Since(start).Nanoseconds(),
		},
	}
	report["acceptance"] = fmt.Sprintf(
		"zero client errors: %s (%d); zero leaked sessions/cursors/statements after %d vanishes: %s (%d/%d/%d); latency and throughput measured server-side: %s (p99=%v, %.0f rows/s)",
		pass(errorFree), rep.Errors,
		rep.Vanishes, pass(leakFree), rep.LeakedSessions, rep.LeakedCursors, rep.LeakedStatements,
		pass(measured), rep.P99, rep.RowsPerSec)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_concurrency.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if !errorFree {
		t.Errorf("client errors = %d, want 0", rep.Errors)
	}
	if !leakFree {
		t.Errorf("leaks after run: sessions=%d cursors=%d statements=%d, want all 0",
			rep.LeakedSessions, rep.LeakedCursors, rep.LeakedStatements)
	}
	if !measured {
		t.Errorf("measurement incomplete: rows=%d p99=%v vanishes=%d, want all > 0",
			rep.Rows, rep.P99, rep.Vanishes)
	}
}
