package xnf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"xnf/internal/colstore"
	"xnf/internal/engine"
	"xnf/internal/types"
)

// encBenchRows sizes the encoding benchmark table: ~48 full segments.
const encBenchRows = 200_000

// encBenchQ is the headline shape: string-equality scan→filter→agg. With
// dictionary encoding the equality is one dictionary probe plus an integer
// compare per row, and the group keys hash from encoded segments.
const encBenchQ = "SELECT cat, COUNT(*), SUM(nv) FROM E WHERE tag = 'tag3' GROUP BY cat"

// encBenchDB builds the low-cardinality table the encodings target: a
// 16-value string tag, an 8-value category, and a narrow int measure.
// ANALYZE triggers Maintain, which encodes full segments if the global
// toggle allows it — the caller flips colstore.SetSegmentEncoding first.
func encBenchDB(tb testing.TB, n int) *engine.Database {
	tb.Helper()
	db := engine.Open()
	if err := db.ExecScript("CREATE TABLE E (id INT NOT NULL, tag VARCHAR, cat VARCHAR, nv INT, PRIMARY KEY (id))"); err != nil {
		tb.Fatal(err)
	}
	td, err := db.Store().Table("E")
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("tag%d", i%16)),
			types.NewString(fmt.Sprintf("cat%d", i%8)),
			types.NewInt(int64(i % 100)),
		}
		if _, err := td.Insert(row); err != nil {
			tb.Fatal(err)
		}
	}
	if _, err := db.Exec("ALTER TABLE E SET STORAGE COLUMN"); err != nil {
		tb.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		tb.Fatal(err)
	}
	return db
}

// encBenchCkptDir builds a durable database with the same table, forces a
// checkpoint and closes; returns the size of the newest checkpoint file.
func encBenchCkptDir(tb testing.TB, n int) (string, int64) {
	tb.Helper()
	dir := tb.TempDir()
	db, err := engine.OpenDirOptions(dir, engine.DurabilityOptions{GroupCommit: true, NoSync: true})
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.ExecScript("CREATE TABLE E (id INT NOT NULL, tag VARCHAR, cat VARCHAR, nv INT, PRIMARY KEY (id)); ALTER TABLE E SET STORAGE COLUMN"); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i += 1000 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO E VALUES ")
		for j := i; j < i+1000 && j < n; j++ {
			if j > i {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'tag%d', 'cat%d', %d)", j, j%16, j%8, j%100)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			tb.Fatal(err)
		}
	}
	if err := db.Analyze(); err != nil {
		tb.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		tb.Fatal(err)
	}
	if err := db.Close(); err != nil {
		tb.Fatal(err)
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(ckpts) == 0 {
		tb.Fatalf("no checkpoint files in %s (err=%v)", dir, err)
	}
	info, err := os.Stat(ckpts[len(ckpts)-1])
	if err != nil {
		tb.Fatal(err)
	}
	return dir, info.Size()
}

// TestEncBenchGate measures segment encoding on the low-cardinality string
// table: bytes resident raw vs encoded (target >=3x reduction), the
// string-equality scan→filter→agg raw vs encoded (target >=1.5x), and the
// checkpoint image size raw vs encoded with recovery equivalence. Writes
// BENCH_enc.json. Guarded by ENC_BENCH_GATE=1; CI runs it as a dedicated
// step and uploads the JSON.
func TestEncBenchGate(t *testing.T) {
	if os.Getenv("ENC_BENCH_GATE") == "" {
		t.Skip("set ENC_BENCH_GATE=1 to run the benchmark gate")
	}
	defer colstore.SetSegmentEncoding(colstore.SetSegmentEncoding(true))

	measure := func(db *engine.Database) int64 {
		db.OptOptions.ParallelScan = false
		r := testing.Benchmark(func(b *testing.B) { runTypedBench(b, db, encBenchQ) })
		return r.NsPerOp()
	}

	colstore.SetSegmentEncoding(false)
	rawDB := encBenchDB(t, encBenchRows)
	_, rawBytes := rawDB.Store().ColStoreStats()
	rawNs := measure(rawDB)

	colstore.SetSegmentEncoding(true)
	encDB := encBenchDB(t, encBenchRows)
	_, encBytes := encDB.Store().ColStoreStats()
	encNs := measure(encDB)
	td, err := encDB.Store().Table("E")
	if err != nil {
		t.Fatal(err)
	}
	dictCols, packCols := td.EncodedColumns()
	if dictCols == 0 || packCols == 0 {
		t.Fatalf("encoding did not engage: dict=%d pack=%d", dictCols, packCols)
	}

	// Checkpoint image: the same data persisted raw vs encoded.
	const ckptRows = 60_000
	colstore.SetSegmentEncoding(false)
	_, rawCkpt := encBenchCkptDir(t, ckptRows)
	colstore.SetSegmentEncoding(true)
	encDir, encCkpt := encBenchCkptDir(t, ckptRows)

	// Recovery equivalence: the encoded checkpoint restores the same rows,
	// still encoded.
	rdb, err := engine.OpenDirOptions(encDir, engine.DurabilityOptions{GroupCommit: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rdb.Query("SELECT COUNT(*), COUNT(DISTINCT tag), SUM(nv) FROM E")
	if err != nil {
		t.Fatal(err)
	}
	wantSum := int64(0)
	for i := 0; i < ckptRows; i++ {
		wantSum += int64(i % 100)
	}
	if res.Rows[0][0].I != ckptRows || res.Rows[0][1].I != 16 || res.Rows[0][2].I != wantSum {
		t.Fatalf("encoded checkpoint recovered %v, want [%d 16 %d]", res.Rows[0], ckptRows, wantSum)
	}
	rtd, err := rdb.Store().Table("E")
	if err != nil {
		t.Fatal(err)
	}
	rd, rp := rtd.EncodedColumns()
	if rd == 0 || rp == 0 {
		t.Fatalf("recovery dropped the encoded form: dict=%d pack=%d", rd, rp)
	}
	if err := rdb.Close(); err != nil {
		t.Fatal(err)
	}

	bytesReduction := float64(rawBytes) / float64(encBytes)
	scanSpeedup := float64(rawNs) / float64(encNs)
	ckptReduction := float64(rawCkpt) / float64(encCkpt)
	bytesPass := bytesReduction >= 3
	speedPass := scanSpeedup >= 1.5
	ckptPass := encCkpt < rawCkpt

	report := map[string]any{
		"benchmark": "TestEncBenchGate (enc_bench_test.go)",
		"description": fmt.Sprintf(
			"Per-segment encodings (sorted string dictionaries + bit-packed ints, chosen at ANALYZE) on the %d-row low-cardinality E(id,tag,cat,nv); raw = encoding disabled at Maintain, encoded = default. scan = string-equality scan→filter→agg on cached prepared plans, one worker. Checkpoint sizes compare the same %d rows persisted raw vs encoded (image v3 carries encoded segments verbatim); the encoded image is reopened and verified row-identical and still encoded.",
			encBenchRows, ckptRows),
		"machine": fmt.Sprintf("GOMAXPROCS=%d, %s/%s, %s", runtime.GOMAXPROCS(0), runtime.GOOS, runtime.GOARCH, runtime.Version()),
		"results": map[string]any{
			"bytes_resident_raw":     rawBytes,
			"bytes_resident_encoded": encBytes,
			"scan_raw_ns_per_op":     rawNs,
			"scan_encoded_ns_per_op": encNs,
			"checkpoint_raw_bytes":   rawCkpt,
			"checkpoint_enc_bytes":   encCkpt,
			"dict_columns":           dictCols,
			"pack_columns":           packCols,
		},
		"speedups": map[string]float64{
			"bytes_resident_reduction":   bytesReduction,
			"string_eq_scan_speedup":     scanSpeedup,
			"checkpoint_image_reduction": ckptReduction,
		},
	}
	report["acceptance"] = fmt.Sprintf(
		"bytes resident >=3x smaller encoded: %s (%.2fx); string-eq scan→filter→agg >=1.5x faster encoded: %s (%.2fx); checkpoint image smaller with recovery equivalence: %s (%.2fx)",
		pass(bytesPass), bytesReduction, pass(speedPass), scanSpeedup, pass(ckptPass), ckptReduction)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_enc.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("bytes resident: raw %d, encoded %d (%.2fx)", rawBytes, encBytes, bytesReduction)
	t.Logf("string-eq scan: raw %d ns/op, encoded %d ns/op (%.2fx)", rawNs, encNs, scanSpeedup)
	t.Logf("checkpoint: raw %d bytes, encoded %d bytes (%.2fx)", rawCkpt, encCkpt, ckptReduction)
	if !bytesPass {
		t.Errorf("bytes-resident reduction %.2fx below the 3x target", bytesReduction)
	}
	if !speedPass {
		t.Errorf("string-equality scan speedup %.2fx below the 1.5x target", scanSpeedup)
	}
	if !ckptPass {
		t.Errorf("encoded checkpoint (%d bytes) not smaller than raw (%d bytes)", encCkpt, rawCkpt)
	}
}
