// cadtraversal reproduces the Sect. 5.2 experience report: load an
// OO1/Cattell-style part graph into the XNF cache and run the benchmark's
// traversal operation, measuring tuples per second through the pre-loaded
// cache. The paper reports >100,000 tuples/second, "matching the
// requirements for CAD applications".
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"xnf"
	"xnf/internal/workload"
)

func main() {
	parts := flag.Int("parts", 20000, "number of parts")
	conns := flag.Int("conns", 3, "connections per part")
	depth := flag.Int("depth", 7, "traversal depth")
	iters := flag.Int("iters", 50, "traversal iterations")
	flag.Parse()

	db := xnf.Open()
	if err := workload.LoadOO1(db.Engine(), workload.OO1Params{
		Parts: *parts, Conns: *conns, Seed: 7,
	}); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	cache, err := db.QueryCO("part_graph")
	if err != nil {
		log.Fatal(err)
	}
	loadTime := time.Since(start)
	comp, _ := cache.Component("xpart")
	rel, _ := cache.Relationship("connected")
	fmt.Printf("loaded cache: %d parts, %d connections in %v\n",
		comp.Len(), rel.Connections(), loadTime)

	// OO1 traversal: from a random part, depth-first through the
	// CONNECTS relationship to the given depth, counting visited tuples.
	r := rand.New(rand.NewSource(42))
	objs := comp.Objects()
	total := 0
	start = time.Now()
	for i := 0; i < *iters; i++ {
		from := objs[r.Intn(len(objs))]
		total += cache.Traverse(from, "connected", *depth, nil)
	}
	elapsed := time.Since(start)
	rate := float64(total) / elapsed.Seconds()
	fmt.Printf("traversal: %d iterations, depth %d, %d tuples in %v\n",
		*iters, *depth, total, elapsed)
	fmt.Printf("rate: %.0f tuples/second (paper: >100,000)\n", rate)
}
