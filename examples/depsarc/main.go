// depsarc reproduces the paper's running example end to end: the Fig. 1
// deps_ARC composite object (departments at ARC with employees, projects
// and the skills either possesses or needs), including the reachability
// semantics (skill s2 is excluded) and object sharing (s3 is one object
// with parents on both sides), plus the Table 1 derivation-cost analysis.
package main

import (
	"fmt"
	"log"

	"xnf"
	"xnf/internal/workload"
)

func main() {
	db := xnf.Open()
	// The exact instance of Fig. 1 (plus a non-ARC department that must be
	// filtered out together with everything only it references).
	if err := db.ExecScript(workload.OrgSchema + `
INSERT INTO DEPT VALUES (1, 'd1', 'ARC'), (2, 'd2', 'ARC'), (3, 'd3', 'HQ');
INSERT INTO EMP VALUES (1, 'e1', 1, 100), (2, 'e2', 1, 200), (3, 'e3', 2, 300), (9, 'e9', 3, 900);
INSERT INTO PROJ VALUES (1, 'p1', 1, 10), (2, 'p2', 2, 20), (9, 'p9', 3, 90);
INSERT INTO SKILLS VALUES (1, 's1'), (2, 's2'), (3, 's3'), (4, 's4'), (5, 's5');
INSERT INTO EMPSKILLS VALUES (1, 1), (2, 3), (3, 3), (3, 4), (9, 2);
INSERT INTO PROJSKILLS VALUES (1, 3), (2, 4), (2, 5), (9, 2);
` + workload.DepsARC + ";"); err != nil {
		log.Fatal(err)
	}

	cache, err := db.QueryCO("deps_ARC")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("deps_ARC instance graphs (paper Fig. 1):")
	deps, _ := cache.Component("xdept")
	for _, d := range deps.Objects() {
		fmt.Printf("%s\n", d.MustGet("dname").S)
		for _, e := range d.Children("employment") {
			fmt.Printf("  EMPLOYS %s\n", e.MustGet("ename").S)
			for _, s := range e.Children("empproperty") {
				fmt.Printf("    POSSESSES %s\n", s.MustGet("sname").S)
			}
		}
		for _, p := range d.Children("ownership") {
			fmt.Printf("  HAS %s\n", p.MustGet("pname").S)
			for _, s := range p.Children("projproperty") {
				fmt.Printf("    NEEDS %s\n", s.MustGet("sname").S)
			}
		}
	}

	skills, _ := cache.Component("xskills")
	fmt.Printf("\nskills in the CO (s2 excluded by reachability): ")
	for _, s := range skills.Objects() {
		fmt.Printf("%s ", s.MustGet("sname").S)
	}
	fmt.Println()

	// Object sharing: s3 exists once, connected from both sides.
	s3, _ := skills.Lookup(xnf.NewInt(3))
	fmt.Printf("s3 shared: %d employee parents, %d project parents\n",
		len(s3.Parents("empproperty")), len(s3.Parents("projproperty")))

	// Path expressions (Sect. 2).
	viaEmp, _ := cache.PathString("xdept.xemp.xskills")
	fmt.Printf("xdept.xemp.xskills reaches %d skills\n", len(viaEmp))

	// Table 1: XNF derivation vs single-component SQL derivation.
	table, err := db.AnalyzeTable1("deps_ARC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTable 1 — common-subexpression comparison:\n%s", table.Format())
}
