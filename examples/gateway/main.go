// gateway demonstrates the paper's Sect. 6 "Object/SQL Gateway" idea and
// the seamless language binding of Sect. 5.2: a client connects to an XNF
// server over TCP, extracts a composite object, and materializes it as
// ordinary Go structs with direct pointer fields — the Go analog of the
// paper's C++ classes with pointer data members — then pushes an update
// back through the wire.
package main

import (
	"fmt"
	"log"
	"net"

	"xnf"
	"xnf/internal/workload"
)

// Dept and Emp are the application's own types: plain structs, no
// database types anywhere. The gateway fills them from the cache.
type Dept struct {
	Dno       int64
	Name, Loc string
	Employees []*Emp
}

// Emp is an employee with a back pointer to its department.
type Emp struct {
	Eno  int64
	Name string
	Sal  float64
	Dept *Dept
}

func main() {
	// Server side: an XNF database listening on a socket.
	db := xnf.Open()
	if err := workload.LoadOrg(db.Engine(), workload.DefaultOrg()); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go db.NewServer().Serve(l)

	// Client side: fetch the CO and bind it to the application structs.
	client, err := xnf.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	cache, err := client.QueryCO("deps_ARC", xnf.ShipWhole())
	if err != nil {
		log.Fatal(err)
	}

	depts := bindDepts(cache)
	fmt.Printf("bound %d departments into Go structs\n", len(depts))
	for _, d := range depts[:min(3, len(depts))] {
		fmt.Printf("  %s (%s): %d employees", d.Name, d.Loc, len(d.Employees))
		if len(d.Employees) > 0 {
			e := d.Employees[0]
			fmt.Printf("; first: %s, back pointer → %s", e.Name, e.Dept.Name)
		}
		fmt.Println()
	}

	// Updates flow back through the same gateway: raise one salary.
	xemp, _ := cache.Component("xemp")
	obj := xemp.Objects()[0]
	if err := cache.Set(obj, "sal", xnf.NewFloat(obj.MustGet("sal").F+1000)); err != nil {
		log.Fatal(err)
	}
	if err := cache.SaveChanges(func(sql string) error {
		_, err := client.Exec(sql)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("salary update written back through the gateway")
}

// bindDepts converts the cached CO into the application object model. The
// mapping is mechanical: one struct per component object, pointer fields
// per relationship (what the paper's C++ binding generated).
func bindDepts(cache *xnf.Cache) []*Dept {
	comp, _ := cache.Component("xdept")
	emps := make(map[string]*Emp)
	var out []*Dept
	for _, d := range comp.Objects() {
		dept := &Dept{
			Dno:  d.MustGet("dno").I,
			Name: d.MustGet("dname").S,
			Loc:  d.MustGet("loc").S,
		}
		for _, e := range d.Children("employment") {
			emp, ok := emps[e.Key()]
			if !ok {
				emp = &Emp{
					Eno:  e.MustGet("eno").I,
					Name: e.MustGet("ename").S,
					Sal:  e.MustGet("sal").F,
				}
				emps[e.Key()] = emp
			}
			emp.Dept = dept
			dept.Employees = append(dept.Employees, emp)
		}
		out = append(out, dept)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
