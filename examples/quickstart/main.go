// Quickstart: define a schema, load a few rows, declare a composite-object
// view, extract it into the client cache, navigate it through pointers,
// write an update back — the end-to-end loop of the paper — and finish
// with a durable database that survives a restart.
package main

import (
	"fmt"
	"log"
	"os"

	"xnf"
)

func main() {
	db := xnf.Open()

	// Plain relational DDL and DML — XNF is strictly an extension, so the
	// tabular world works unchanged (upward compatibility, Sect. 1).
	if err := db.ExecScript(`
CREATE TABLE DEPT (dno INT NOT NULL, dname VARCHAR, loc VARCHAR, PRIMARY KEY (dno));
CREATE TABLE EMP  (eno INT NOT NULL, ename VARCHAR, edno INT, sal FLOAT, PRIMARY KEY (eno));
INSERT INTO DEPT VALUES (1, 'database', 'ARC'), (2, 'os', 'ARC'), (3, 'sales', 'HQ');
INSERT INTO EMP  VALUES (10, 'alice', 1, 120000), (11, 'bob', 1, 95000),
                        (12, 'carol', 2, 110000), (13, 'dan', 3, 80000);
`); err != nil {
		log.Fatal(err)
	}

	// A composite-object view: ARC departments with their employees.
	cache, err := db.QueryCO(`
OUT OF d AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
       e AS EMP,
       employs AS (RELATE d VIA EMPLOYS, e WHERE d.dno = e.edno)
TAKE *`)
	if err != nil {
		log.Fatal(err)
	}

	// Navigate: connections are main-memory pointers, no SQL involved.
	deps, _ := cache.Component("d")
	fmt.Println("ARC departments and their employees:")
	for _, dept := range deps.Objects() {
		fmt.Printf("  %s:\n", dept.MustGet("dname").S)
		for _, emp := range dept.Children("employs") {
			fmt.Printf("    %-8s $%.0f\n", emp.MustGet("ename").S, emp.MustGet("sal").F)
		}
	}

	// Cursors are the paper's API shape: independent over a component,
	// dependent from parent to children.
	cur, _ := cache.OpenCursor("e")
	count := 0
	for o := cur.Next(); o != nil; o = cur.Next() {
		count++
		_ = o
	}
	fmt.Printf("independent cursor visited %d employees\n", count)

	// Streaming relational results: QueryRows is a pull-based cursor — the
	// plan runs lazily as rows are pulled, so a result of any size is
	// iterated in bounded memory. (Over the wire, ClientStmt.QueryRows has
	// the same shape with one block shipped per round trip.)
	rows, err := db.QueryRows("SELECT ename, sal FROM EMP WHERE sal > ? ORDER BY sal DESC", xnf.NewFloat(90000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("well-paid employees (streamed):")
	for {
		row, err := rows.Next()
		if err != nil {
			log.Fatal(err)
		}
		if row == nil {
			break
		}
		fmt.Printf("  %-8s $%.0f\n", row[0].S, row[1].F)
	}
	rows.Close()

	// Local update + write-back: the cache turns it into an UPDATE against
	// the base table.
	emps, _ := cache.Component("e")
	alice, _ := emps.Lookup(xnf.NewInt(10))
	if err := cache.Set(alice, "sal", xnf.NewFloat(130000)); err != nil {
		log.Fatal(err)
	}
	if err := db.SaveChanges(cache); err != nil {
		log.Fatal(err)
	}
	res, _ := db.Query("SELECT sal FROM EMP WHERE eno = 10")
	fmt.Printf("alice's salary after write-back: %s\n", res.Rows[0])

	// Durability: OpenDir attaches a write-ahead log in a directory; every
	// committed statement is fsync'd before Exec returns, and reopening the
	// directory recovers the state — from the log, or from the latest
	// checkpoint plus the log suffix. (xnfserver/xnfsql expose the same via
	// their -data flag.)
	dir, err := os.MkdirTemp("", "xnf-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ddb, err := xnf.OpenDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := ddb.ExecScript(`
CREATE TABLE NOTES (id INT NOT NULL, body VARCHAR, PRIMARY KEY (id));
INSERT INTO NOTES VALUES (1, 'survives restarts');
`); err != nil {
		log.Fatal(err)
	}
	if err := ddb.Checkpoint(); err != nil { // optional: bounds reopen time
		log.Fatal(err)
	}
	if err := ddb.Close(); err != nil {
		log.Fatal(err)
	}
	ddb, err = xnf.OpenDir(dir) // crash or restart: same call recovers
	if err != nil {
		log.Fatal(err)
	}
	defer ddb.Close()
	res, _ = ddb.Query("SELECT body FROM NOTES WHERE id = 1")
	fmt.Printf("after reopen: %s\n", res.Rows[0])
}
