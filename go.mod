module xnf

go 1.24
