// Package ast defines the syntax trees for the SQL subset and the XNF
// composite-object extension (OUT OF … RELATE … TAKE), together with a
// deparser that renders every node back to parsable text. The deparser is
// used by the view catalog (views are stored as text), by EXPLAIN, and by
// the parser round-trip property tests.
package ast

import (
	"strings"

	"xnf/internal/types"
)

// Statement is any top-level SQL or XNF statement.
type Statement interface {
	stmtNode()
	String() string
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    types.Type
	NotNull bool
}

// FKDef is a FOREIGN KEY clause in CREATE TABLE.
type FKDef struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name        string
	Columns     []ColumnDef
	PrimaryKey  []string
	ForeignKeys []FKDef
}

// CreateIndexStmt is CREATE [UNIQUE] [ORDERED] INDEX.
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Ordered bool
}

// CreateViewStmt is CREATE VIEW; the body is either a plain SELECT or an
// XNF query (the paper's CO views, Fig. 1).
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
	XNF    *XNFQuery
}

// DropStmt is DROP TABLE / DROP VIEW.
type DropStmt struct {
	Kind string // "TABLE" or "VIEW"
	Name string
}

// AnalyzeStmt is ANALYZE [table]: refresh optimizer statistics for one
// table, or for every table when Table is empty. Like DDL it bumps the
// catalog version, invalidating cached plans compiled under stale stats.
type AnalyzeStmt struct {
	Table string
}

// AlterTableStmt is ALTER TABLE … SET STORAGE ROW/COLUMN: switch the
// table's physical representation between the row-major slot heap and the
// column-major colstore segments. Storage is the uppercased keyword.
type AlterTableStmt struct {
	Table   string
	Storage string // "ROW" or "COLUMN"
}

// InsertStmt is INSERT INTO … VALUES / SELECT.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *SelectStmt
}

// SetClause is one assignment in UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE … SET … WHERE.
type UpdateStmt struct {
	Table string
	Alias string
	Set   []SetClause
	Where Expr
}

// DeleteStmt is DELETE FROM … WHERE.
type DeleteStmt struct {
	Table string
	Alias string
	Where Expr
}

// SelectStmt is a SELECT query block, possibly with a UNION suffix.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Union    *UnionClause
}

// UnionClause chains another SELECT with UNION [ALL].
type UnionClause struct {
	All   bool
	Right *SelectStmt
}

// SelectItem is one element of the select list. Star selects everything;
// a Star with a Qualifier selects one table's columns (t.*).
type SelectItem struct {
	Star      bool
	Qualifier string
	Expr      Expr
	Alias     string
}

// TableRef is one FROM element: a base table or view (Table, Alias) or a
// derived table (Subquery, Alias).
type TableRef struct {
	Table    string
	Alias    string
	Subquery *SelectStmt
}

// Name returns the exposed correlation name of the reference.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// XNFQuery is the composite-object constructor: OUT OF components TAKE list.
type XNFQuery struct {
	Components []XNFComponent
	Take       []TakeItem
}

// XNFComponent is one `name AS …` element of OUT OF: either a component
// table defined by a table expression (or the bare-table shortcut) or a
// relationship defined by a RELATE clause.
type XNFComponent struct {
	Name   string
	Select *SelectStmt   // component table (nil for relationships)
	Relate *RelateClause // relationship (nil for tables)
}

// RelateClause is RELATE parent VIA role, children… [USING t [a], …] WHERE p.
// ChildAliases runs parallel to Children; a non-empty alias renames the
// child occurrence inside the WHERE predicate, which is how a
// self-relationship (recursive CO, e.g. parts explosion) distinguishes the
// parent and child occurrences of the same component.
type RelateClause struct {
	Parent       string
	Role         string
	Children     []string
	ChildAliases []string
	Using        []TableRef
	Where        Expr
}

// TakeItem is one element of the TAKE projection: '*' or a component name,
// optionally restricted to columns.
type TakeItem struct {
	Star    bool
	Name    string
	Columns []string
}

func (*CreateTableStmt) stmtNode() {}
func (*CreateIndexStmt) stmtNode() {}
func (*CreateViewStmt) stmtNode()  {}
func (*DropStmt) stmtNode()        {}
func (*AnalyzeStmt) stmtNode()     {}
func (*AlterTableStmt) stmtNode()  {}
func (*InsertStmt) stmtNode()      {}
func (*UpdateStmt) stmtNode()      {}
func (*DeleteStmt) stmtNode()      {}
func (*SelectStmt) stmtNode()      {}
func (*XNFQuery) stmtNode()        {}

// --- Expressions ---

// Expr is any scalar or predicate expression.
type Expr interface {
	exprNode()
	String() string
}

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

// ColumnRef is a possibly-qualified column reference.
type ColumnRef struct {
	Qualifier string
	Name      string
}

// BinaryExpr covers comparisons, arithmetic, AND and OR.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr covers NOT and unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

// FuncCall is an aggregate or scalar function call. Star marks COUNT(*).
type FuncCall struct {
	Name     string
	Distinct bool
	Star     bool
	Args     []Expr
}

// SubqueryExpr is EXISTS(sub) or a scalar subquery.
type SubqueryExpr struct {
	Exists bool
	Not    bool
	Select *SelectStmt
}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr
	Sub  *SelectStmt
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// LikeExpr is x [NOT] LIKE pattern.
type LikeExpr struct {
	X       Expr
	Not     bool
	Pattern Expr
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

// Placeholder is a `?` parameter marker. Idx is the 0-based occurrence
// order assigned by the parser; at execution the value comes from slot Idx
// of the statement's argument frame (prepared-statement binding).
type Placeholder struct {
	Idx int
}

// PathExpr is an XNF path expression over a CO view's schema graph, e.g.
// deps_ARC.xdept.xemp — it denotes the xemp tuples reachable from xdept
// roots (Sect. 2 of the paper). Only valid where the compiler can see the
// CO view definition.
type PathExpr struct {
	Steps []string
}

func (*Literal) exprNode()      {}
func (*ColumnRef) exprNode()    {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*FuncCall) exprNode()     {}
func (*SubqueryExpr) exprNode() {}
func (*InExpr) exprNode()       {}
func (*BetweenExpr) exprNode()  {}
func (*IsNullExpr) exprNode()   {}
func (*LikeExpr) exprNode()     {}
func (*CaseExpr) exprNode()     {}
func (*Placeholder) exprNode()  {}
func (*PathExpr) exprNode()     {}

// And conjoins two expressions, tolerating nils.
func And(a, b Expr) Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &BinaryExpr{Op: "AND", L: a, R: b}
}

// Or disjoins two expressions, tolerating nils.
func Or(a, b Expr) Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &BinaryExpr{Op: "OR", L: a, R: b}
}

// Conjuncts flattens a predicate tree into its top-level AND factors.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// Walk visits e and every sub-expression in depth-first order. Subqueries
// are not descended into; the visitor sees the SubqueryExpr/InExpr node and
// can recurse itself if needed.
func Walk(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *BinaryExpr:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *UnaryExpr:
		Walk(n.X, visit)
	case *FuncCall:
		for _, a := range n.Args {
			Walk(a, visit)
		}
	case *InExpr:
		Walk(n.X, visit)
		for _, a := range n.List {
			Walk(a, visit)
		}
	case *BetweenExpr:
		Walk(n.X, visit)
		Walk(n.Lo, visit)
		Walk(n.Hi, visit)
	case *IsNullExpr:
		Walk(n.X, visit)
	case *LikeExpr:
		Walk(n.X, visit)
		Walk(n.Pattern, visit)
	case *CaseExpr:
		for _, w := range n.Whens {
			Walk(w.Cond, visit)
			Walk(w.Result, visit)
		}
		Walk(n.Else, visit)
	}
}

// NumPlaceholders returns the number of `?` parameter markers in the
// statement (max index + 1 — the parser numbers them in occurrence order).
// It descends into subqueries, derived tables and every clause of every
// statement form, unlike Walk.
func NumPlaceholders(stmt Statement) int {
	n := 0
	note := func(e Expr) {
		WalkDeep(e, func(x Expr) {
			if p, ok := x.(*Placeholder); ok && p.Idx+1 > n {
				n = p.Idx + 1
			}
		})
	}
	// Select bodies reuse WalkDeep's clause traversal via a synthetic
	// subquery node, so the two walkers cannot drift apart.
	sel := func(s *SelectStmt) {
		if s != nil {
			note(&SubqueryExpr{Select: s})
		}
	}
	switch st := stmt.(type) {
	case *SelectStmt:
		sel(st)
	case *InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				note(e)
			}
		}
		sel(st.Select)
	case *UpdateStmt:
		for _, sc := range st.Set {
			note(sc.Value)
		}
		note(st.Where)
	case *DeleteStmt:
		note(st.Where)
	case *CreateViewStmt:
		sel(st.Select)
		if st.XNF != nil {
			for _, c := range st.XNF.Components {
				sel(c.Select)
				if c.Relate != nil {
					note(c.Relate.Where)
					for _, tr := range c.Relate.Using {
						sel(tr.Subquery)
					}
				}
			}
		}
	case *XNFQuery:
		for _, c := range st.Components {
			sel(c.Select)
			if c.Relate != nil {
				note(c.Relate.Where)
				for _, tr := range c.Relate.Using {
					sel(tr.Subquery)
				}
			}
		}
	}
	return n
}

// WalkDeep is Walk extended to descend into subquery select bodies (their
// WHERE/HAVING/items/FROM chains), so placeholder discovery sees every
// expression of the tree.
func WalkDeep(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	var sel func(*SelectStmt)
	sel = func(s *SelectStmt) {
		if s == nil {
			return
		}
		for _, it := range s.Items {
			WalkDeep(it.Expr, visit)
		}
		for _, tr := range s.From {
			sel(tr.Subquery)
		}
		WalkDeep(s.Where, visit)
		for _, g := range s.GroupBy {
			WalkDeep(g, visit)
		}
		WalkDeep(s.Having, visit)
		for _, o := range s.OrderBy {
			WalkDeep(o.Expr, visit)
		}
		if s.Union != nil {
			sel(s.Union.Right)
		}
	}
	Walk(e, func(x Expr) {
		visit(x)
		switch n := x.(type) {
		case *SubqueryExpr:
			sel(n.Select)
		case *InExpr:
			sel(n.Sub)
		}
	})
}

// quoteIdent renders an identifier; plain identifiers pass through.
func quoteIdent(s string) string { return s }

func identList(names []string) string {
	return strings.Join(names, ", ")
}
