package ast

import (
	"testing"

	"xnf/internal/types"
)

func TestAndOrHelpers(t *testing.T) {
	a := &ColumnRef{Name: "a"}
	b := &ColumnRef{Name: "b"}
	if And(nil, a) != Expr(a) || And(a, nil) != Expr(a) {
		t.Error("And with nil")
	}
	if Or(nil, b) != Expr(b) || Or(b, nil) != Expr(b) {
		t.Error("Or with nil")
	}
	conj := And(a, And(b, a))
	if got := Conjuncts(conj); len(got) != 3 {
		t.Errorf("conjuncts = %d", len(got))
	}
	if got := Conjuncts(nil); got != nil {
		t.Error("conjuncts of nil")
	}
	or := Or(a, b).(*BinaryExpr)
	if or.Op != "OR" {
		t.Error("Or op")
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	e := &BinaryExpr{Op: "AND",
		L: &InExpr{X: &ColumnRef{Name: "a"}, List: []Expr{&Literal{Value: types.NewInt(1)}}},
		R: &CaseExpr{
			Whens: []WhenClause{{Cond: &IsNullExpr{X: &ColumnRef{Name: "b"}}, Result: &Literal{Value: types.NewInt(2)}}},
			Else:  &FuncCall{Name: "ABS", Args: []Expr{&UnaryExpr{Op: "-", X: &ColumnRef{Name: "c"}}}},
		},
	}
	var kinds []string
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *ColumnRef:
			kinds = append(kinds, "col")
		case *Literal:
			kinds = append(kinds, "lit")
		}
	})
	cols, lits := 0, 0
	for _, k := range kinds {
		if k == "col" {
			cols++
		} else {
			lits++
		}
	}
	if cols != 3 || lits != 2 {
		t.Errorf("walk saw %d cols, %d lits", cols, lits)
	}
	// Walk of BETWEEN and LIKE.
	n := 0
	Walk(&BetweenExpr{X: &ColumnRef{Name: "x"}, Lo: &Literal{}, Hi: &Literal{}}, func(Expr) { n++ })
	if n != 4 {
		t.Errorf("between walk = %d", n)
	}
	n = 0
	Walk(&LikeExpr{X: &ColumnRef{Name: "x"}, Pattern: &Literal{Value: types.NewString("%")}}, func(Expr) { n++ })
	if n != 3 {
		t.Errorf("like walk = %d", n)
	}
}

func TestTableRefName(t *testing.T) {
	if (TableRef{Table: "T"}).Name() != "T" {
		t.Error("bare name")
	}
	if (TableRef{Table: "T", Alias: "a"}).Name() != "a" {
		t.Error("alias wins")
	}
}

func TestDeparseStatements(t *testing.T) {
	stmts := []Statement{
		&DropStmt{Kind: "TABLE", Name: "t"},
		&CreateIndexStmt{Name: "i", Table: "t", Columns: []string{"a"}, Unique: true, Ordered: true},
		&DeleteStmt{Table: "t", Alias: "x", Where: &ColumnRef{Name: "b"}},
		&UpdateStmt{Table: "t", Set: []SetClause{{Column: "a", Value: &Literal{Value: types.NewInt(1)}}}},
		&InsertStmt{Table: "t", Select: &SelectStmt{Items: []SelectItem{{Star: true}}, From: []TableRef{{Table: "u"}}, Limit: -1}},
	}
	want := []string{
		"DROP TABLE t",
		"CREATE UNIQUE ORDERED INDEX i ON t (a)",
		"DELETE FROM t x WHERE b",
		"UPDATE t SET a = 1",
		"INSERT INTO t SELECT * FROM u",
	}
	for i, s := range stmts {
		if s.String() != want[i] {
			t.Errorf("deparse = %q, want %q", s.String(), want[i])
		}
	}
}

func TestDeparseRelateAliases(t *testing.T) {
	r := &RelateClause{
		Parent: "p", Role: "R",
		Children: []string{"p"}, ChildAliases: []string{"sub"},
		Where: &BinaryExpr{Op: "=", L: &ColumnRef{Qualifier: "p", Name: "x"}, R: &ColumnRef{Qualifier: "sub", Name: "y"}},
	}
	got := r.String()
	want := "RELATE p VIA R, p AS sub WHERE p.x = sub.y"
	if got != want {
		t.Errorf("deparse = %q, want %q", got, want)
	}
}

func TestPathExprString(t *testing.T) {
	p := &PathExpr{Steps: []string{"v", "a", "b"}}
	if p.String() != "v.a.b" {
		t.Errorf("path = %q", p.String())
	}
}
