package ast

import (
	"fmt"
	"strings"
)

// The String methods below deparse every node to parsable SQL/XNF text.
// parse(node.String()) must reproduce an equivalent tree; the parser test
// suite checks this property on generated trees.

func (s *CreateTableStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", quoteIdent(s.Name))
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", quoteIdent(c.Name), c.Type)
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	if len(s.PrimaryKey) > 0 {
		fmt.Fprintf(&b, ", PRIMARY KEY (%s)", identList(s.PrimaryKey))
	}
	for _, fk := range s.ForeignKeys {
		fmt.Fprintf(&b, ", FOREIGN KEY (%s) REFERENCES %s (%s)",
			identList(fk.Columns), quoteIdent(fk.RefTable), identList(fk.RefColumns))
	}
	b.WriteString(")")
	return b.String()
}

func (s *CreateIndexStmt) String() string {
	var b strings.Builder
	b.WriteString("CREATE ")
	if s.Unique {
		b.WriteString("UNIQUE ")
	}
	if s.Ordered {
		b.WriteString("ORDERED ")
	}
	fmt.Fprintf(&b, "INDEX %s ON %s (%s)", quoteIdent(s.Name), quoteIdent(s.Table), identList(s.Columns))
	return b.String()
}

func (s *CreateViewStmt) String() string {
	if s.XNF != nil {
		return fmt.Sprintf("CREATE VIEW %s AS %s", quoteIdent(s.Name), s.XNF.String())
	}
	return fmt.Sprintf("CREATE VIEW %s AS %s", quoteIdent(s.Name), s.Select.String())
}

func (s *DropStmt) String() string {
	return fmt.Sprintf("DROP %s %s", s.Kind, quoteIdent(s.Name))
}

func (s *AnalyzeStmt) String() string {
	if s.Table == "" {
		return "ANALYZE"
	}
	return "ANALYZE " + quoteIdent(s.Table)
}

func (s *AlterTableStmt) String() string {
	return fmt.Sprintf("ALTER TABLE %s SET STORAGE %s", quoteIdent(s.Table), s.Storage)
}

func (s *InsertStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s", quoteIdent(s.Table))
	if len(s.Columns) > 0 {
		fmt.Fprintf(&b, " (%s)", identList(s.Columns))
	}
	if s.Select != nil {
		b.WriteString(" ")
		b.WriteString(s.Select.String())
		return b.String()
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

func (s *UpdateStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UPDATE %s", quoteIdent(s.Table))
	if s.Alias != "" {
		fmt.Fprintf(&b, " %s", s.Alias)
	}
	b.WriteString(" SET ")
	for i, set := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", quoteIdent(set.Column), set.Value.String())
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where.String())
	}
	return b.String()
}

func (s *DeleteStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DELETE FROM %s", quoteIdent(s.Table))
	if s.Alias != "" {
		fmt.Fprintf(&b, " %s", s.Alias)
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where.String())
	}
	return b.String()
}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, item := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(item.String())
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, tr := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(tr.String())
		}
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
	}
	if s.Having != nil {
		fmt.Fprintf(&b, " HAVING %s", s.Having.String())
	}
	if s.Union != nil {
		b.WriteString(" UNION ")
		if s.Union.All {
			b.WriteString("ALL ")
		}
		b.WriteString(s.Union.Right.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

func (i SelectItem) String() string {
	if i.Star {
		if i.Qualifier != "" {
			return i.Qualifier + ".*"
		}
		return "*"
	}
	s := i.Expr.String()
	if i.Alias != "" {
		s += " AS " + i.Alias
	}
	return s
}

func (t TableRef) String() string {
	if t.Subquery != nil {
		s := "(" + t.Subquery.String() + ")"
		if t.Alias != "" {
			s += " " + t.Alias
		}
		return s
	}
	s := quoteIdent(t.Table)
	if t.Alias != "" {
		s += " " + t.Alias
	}
	return s
}

func (q *XNFQuery) String() string {
	var b strings.Builder
	b.WriteString("OUT OF ")
	for i, c := range q.Components {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteString(" TAKE ")
	for i, t := range q.Take {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	return b.String()
}

func (c XNFComponent) String() string {
	if c.Relate != nil {
		return fmt.Sprintf("%s AS (%s)", quoteIdent(c.Name), c.Relate.String())
	}
	return fmt.Sprintf("%s AS (%s)", quoteIdent(c.Name), c.Select.String())
}

func (r *RelateClause) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RELATE %s", quoteIdent(r.Parent))
	if r.Role != "" {
		fmt.Fprintf(&b, " VIA %s", quoteIdent(r.Role))
	}
	for i, ch := range r.Children {
		fmt.Fprintf(&b, ", %s", quoteIdent(ch))
		if i < len(r.ChildAliases) && r.ChildAliases[i] != "" {
			fmt.Fprintf(&b, " AS %s", r.ChildAliases[i])
		}
	}
	if len(r.Using) > 0 {
		b.WriteString(" USING ")
		for i, u := range r.Using {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(u.String())
		}
	}
	if r.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", r.Where.String())
	}
	return b.String()
}

func (t TakeItem) String() string {
	if t.Star {
		return "*"
	}
	if len(t.Columns) > 0 {
		return fmt.Sprintf("%s (%s)", quoteIdent(t.Name), identList(t.Columns))
	}
	return quoteIdent(t.Name)
}

// --- expressions ---

func (e *Literal) String() string { return e.Value.SQLLiteral() }

func (e *ColumnRef) String() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

// binding powers for parenthesization during deparse; must agree with the
// parser's precedence table.
func prec(op string) int {
	switch op {
	case "OR":
		return 1
	case "AND":
		return 2
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return 4
	case "+", "-", "||":
		return 5
	case "*", "/", "%":
		return 6
	default:
		return 7
	}
}

func (e *BinaryExpr) String() string {
	l := e.L.String()
	r := e.R.String()
	if lb, ok := e.L.(*BinaryExpr); ok && prec(lb.Op) < prec(e.Op) {
		l = "(" + l + ")"
	}
	// Right side parenthesized on <= to preserve left associativity.
	if rb, ok := e.R.(*BinaryExpr); ok && prec(rb.Op) <= prec(e.Op) {
		r = "(" + r + ")"
	}
	return fmt.Sprintf("%s %s %s", l, e.Op, r)
}

func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return "NOT (" + e.X.String() + ")"
	}
	return e.Op + "(" + e.X.String() + ")"
}

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", e.Name, d, strings.Join(args, ", "))
}

func (e *SubqueryExpr) String() string {
	if e.Exists {
		if e.Not {
			return "NOT EXISTS (" + e.Select.String() + ")"
		}
		return "EXISTS (" + e.Select.String() + ")"
	}
	return "(" + e.Select.String() + ")"
}

func (e *InExpr) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	if e.Sub != nil {
		return fmt.Sprintf("%s %sIN (%s)", e.X.String(), not, e.Sub.String())
	}
	items := make([]string, len(e.List))
	for i, it := range e.List {
		items[i] = it.String()
	}
	return fmt.Sprintf("%s %sIN (%s)", e.X.String(), not, strings.Join(items, ", "))
}

func (e *BetweenExpr) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sBETWEEN %s AND %s", e.X.String(), not, e.Lo.String(), e.Hi.String())
}

func (e *IsNullExpr) String() string {
	if e.Not {
		return e.X.String() + " IS NOT NULL"
	}
	return e.X.String() + " IS NULL"
}

func (e *LikeExpr) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sLIKE %s", e.X.String(), not, e.Pattern.String())
}

func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond.String(), w.Result.String())
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

func (e *PathExpr) String() string { return strings.Join(e.Steps, ".") }

func (e *Placeholder) String() string { return "?" }
