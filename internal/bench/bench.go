// Package bench is the experiment harness behind cmd/xnfbench and the
// root bench_test.go: one function per table/figure/claim of the paper,
// each returning a report struct the callers time and print. Keeping the
// harness here guarantees the go-test benchmarks and the CLI regenerate
// the same numbers.
package bench

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"xnf/internal/ast"
	"xnf/internal/cocache"
	"xnf/internal/core"
	"xnf/internal/engine"
	"xnf/internal/exec"
	"xnf/internal/opt"
	"xnf/internal/rewrite"
	"xnf/internal/types"
	"xnf/internal/wire"
	"xnf/internal/workload"
)

// --- Experiment: Table 1 (derivation-cost comparison) ---

// Table1 regenerates the paper's Table 1 on a deps_ARC database.
func Table1() (*core.Table1, error) {
	db := engine.Open()
	if err := workload.LoadOrg(db, workload.DefaultOrg()); err != nil {
		return nil, err
	}
	v, _ := db.Catalog().View("deps_ARC")
	stmt, err := core.ParseViewText(v.Text)
	if err != nil {
		return nil, err
	}
	return core.AnalyzeTable1(db.Catalog(), stmt, rewrite.DefaultOptions())
}

// CompileDepsARC compiles the stored deps_ARC view of an org database.
func CompileDepsARC(db *engine.Database) (*core.Compiled, error) {
	return core.CompileView(db.Catalog(), "deps_ARC", db.RewriteOptions)
}

// BuildCache builds the client workspace from an extracted CO.
func BuildCache(res *core.COResult) (*cocache.Cache, error) { return cocache.Build(res) }

// StandaloneComponents performs the Table-1 strawman at runtime: derive
// every deps_ARC component with its own standalone query (no shared
// derivation). Used to measure the work ratio Table 1 predicts.
func StandaloneComponents(db *engine.Database) error {
	v, ok := db.Catalog().View("deps_ARC")
	if !ok {
		return fmt.Errorf("bench: deps_ARC not defined")
	}
	xq, err := core.ParseViewText(v.Text)
	if err != nil {
		return err
	}
	for _, comp := range xq.Components {
		sub := *xq
		sub.Take = nil
		sub.Take = append(sub.Take, astTake(comp.Name))
		compiled, err := core.Compile(db.Catalog(), &sub, rewrite.DefaultOptions())
		if err != nil {
			return err
		}
		if _, err := compiled.Execute(db.Store(), opt.DefaultOptions()); err != nil {
			return err
		}
	}
	return nil
}

func astTake(name string) ast.TakeItem { return ast.TakeItem{Name: name} }

// --- Experiment: Fig. 3 (existential subquery → join rewrite) ---

// Fig3Result compares the naive correlated execution of the paper's Fig. 3
// query against the rewritten join at one scale.
type Fig3Result struct {
	Emps, Depts  int
	NaiveTime    time.Duration
	RewireTime   time.Duration
	NaiveRuns    int64 // per-row subquery executions
	RewriteScans int64
	Speedup      float64
}

// Fig3DB builds the EMP/DEPT database for one scale.
func Fig3DB(depts, empsPerDept int) (*engine.Database, error) {
	db := engine.Open()
	err := workload.LoadOrg(db, workload.OrgParams{
		Depts: depts, EmpsPerDept: empsPerDept, ProjsPerDept: 1,
		Skills: 10, SkillsPerEmp: 1, SkillsPerProj: 1,
		ArcFraction: 0.1, Seed: 5,
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Fig3Query is the paper's Fig. 3 example.
const Fig3Query = `SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)`

// RunFig3Once executes the query in the given mode, returning the row
// count and the execution counters.
func RunFig3Once(db *engine.Database, naive bool) (int, exec.Counters, error) {
	savedOpt, savedRw := db.OptOptions, db.RewriteOptions
	defer func() { db.OptOptions, db.RewriteOptions = savedOpt, savedRw }()
	if naive {
		db.OptOptions = opt.NaiveOptions()
		db.RewriteOptions = rewrite.NoRewrite()
	} else {
		db.OptOptions = opt.DefaultOptions()
		db.RewriteOptions = rewrite.DefaultOptions()
	}
	res, err := db.Query(Fig3Query)
	if err != nil {
		return 0, exec.Counters{}, err
	}
	return len(res.Rows), res.Counters, nil
}

// Fig3 measures both modes at one scale.
func Fig3(depts, empsPerDept int) (*Fig3Result, error) {
	db, err := Fig3DB(depts, empsPerDept)
	if err != nil {
		return nil, err
	}
	r := &Fig3Result{Emps: depts * empsPerDept, Depts: depts}

	start := time.Now()
	nNaive, cNaive, err := RunFig3Once(db, true)
	if err != nil {
		return nil, err
	}
	r.NaiveTime = time.Since(start)
	r.NaiveRuns = cNaive.SubplanRuns

	start = time.Now()
	nFull, cFull, err := RunFig3Once(db, false)
	if err != nil {
		return nil, err
	}
	r.RewireTime = time.Since(start)
	r.RewriteScans = cFull.RowsScanned
	if nNaive != nFull {
		return nil, fmt.Errorf("bench: fig3 modes disagree: %d vs %d rows", nNaive, nFull)
	}
	if r.RewireTime > 0 {
		r.Speedup = float64(r.NaiveTime) / float64(r.RewireTime)
	}
	return r, nil
}

// --- Experiment: set-oriented vs fragmented extraction (Sect. 1) ---

// ExtractionResult compares one-query CO extraction against per-parent
// navigation at one scale over a real client/server connection.
type ExtractionResult struct {
	Depts, Tuples    int
	SetOriented      time.Duration
	SetRoundTrips    int
	Fragmented       time.Duration
	FragRoundTrips   int
	FragQueries      int
	Speedup          float64
	SimulatedLatency time.Duration
	SetModeledTime   time.Duration
	FragModeledTime  time.Duration
	ModeledSpeedup   float64
}

// StartServer boots a TCP server over a fresh org database at the given
// scale and returns its address plus a closer.
func StartServer(p workload.OrgParams) (string, func(), error) {
	db := engine.Open()
	if err := workload.LoadOrg(db, p); err != nil {
		return "", nil, err
	}
	srv := wire.NewServer(db)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(l)
	return l.Addr().String(), func() { srv.Close() }, nil
}

// FragmentedExtract performs the paper's strawman: follow parent/child
// relationships with one query per instance ("the process of data
// extraction is broken into fragmented queries where the number of
// fragments is in the order of number of instances", Sect. 1). It returns
// the number of tuples fetched and queries issued.
func FragmentedExtract(c *wire.Client) (tuples, queries int, err error) {
	q := func(sql string) ([]types.Row, error) {
		queries++
		return c.Query(sql)
	}
	depts, err := q("SELECT dno, dname, loc FROM DEPT WHERE loc = 'ARC'")
	if err != nil {
		return 0, queries, err
	}
	tuples += len(depts)
	seenSkill := make(map[int64]bool)
	for _, d := range depts {
		emps, err := q(fmt.Sprintf("SELECT eno, ename, edno, sal FROM EMP WHERE edno = %d", d[0].I))
		if err != nil {
			return 0, queries, err
		}
		tuples += len(emps)
		for _, e := range emps {
			skills, err := q(fmt.Sprintf(
				"SELECT s.sno, s.sname FROM SKILLS s, EMPSKILLS es WHERE es.eseno = %d AND es.essno = s.sno", e[0].I))
			if err != nil {
				return 0, queries, err
			}
			for _, s := range skills {
				if !seenSkill[s[0].I] {
					seenSkill[s[0].I] = true
					tuples++
				}
			}
		}
		projs, err := q(fmt.Sprintf("SELECT pno, pname, pdno, budget FROM PROJ WHERE pdno = %d", d[0].I))
		if err != nil {
			return 0, queries, err
		}
		tuples += len(projs)
		for _, p := range projs {
			skills, err := q(fmt.Sprintf(
				"SELECT s.sno, s.sname FROM SKILLS s, PROJSKILLS ps WHERE ps.pspno = %d AND ps.pssno = s.sno", p[0].I))
			if err != nil {
				return 0, queries, err
			}
			for _, s := range skills {
				if !seenSkill[s[0].I] {
					seenSkill[s[0].I] = true
					tuples++
				}
			}
		}
	}
	return tuples, queries, nil
}

// Extraction runs both extraction strategies against a server at the given
// scale with the given injected per-round-trip latency.
func Extraction(p workload.OrgParams, latency time.Duration) (*ExtractionResult, error) {
	addr, closer, err := StartServer(p)
	if err != nil {
		return nil, err
	}
	defer closer()

	r := &ExtractionResult{Depts: p.Depts, SimulatedLatency: latency}

	set, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer set.Close()
	set.Latency = latency
	start := time.Now()
	cache, err := set.QueryCO("deps_ARC", wire.ShipWhole())
	if err != nil {
		return nil, err
	}
	r.SetOriented = time.Since(start)
	r.SetRoundTrips = set.Stats.RoundTrips
	for _, comp := range cache.Components() {
		r.Tuples += comp.Len()
	}

	frag, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer frag.Close()
	frag.Latency = latency
	start = time.Now()
	fragTuples, queries, err := FragmentedExtract(frag)
	if err != nil {
		return nil, err
	}
	r.Fragmented = time.Since(start)
	r.FragRoundTrips = frag.Stats.RoundTrips
	r.FragQueries = queries
	if fragTuples != r.Tuples {
		return nil, fmt.Errorf("bench: extraction strategies disagree: %d vs %d tuples", fragTuples, r.Tuples)
	}
	if r.SetOriented > 0 {
		r.Speedup = float64(r.Fragmented) / float64(r.SetOriented)
	}
	// Modeled times for an arbitrary target latency (1ms WAN-ish RPC):
	// measured compute + roundTrips × target.
	const target = time.Millisecond
	r.SetModeledTime = r.SetOriented - time.Duration(r.SetRoundTrips)*latency + time.Duration(r.SetRoundTrips)*target
	r.FragModeledTime = r.Fragmented - time.Duration(r.FragRoundTrips)*latency + time.Duration(r.FragRoundTrips)*target
	if r.SetModeledTime > 0 {
		r.ModeledSpeedup = float64(r.FragModeledTime) / float64(r.SetModeledTime)
	}
	return r, nil
}

// --- Experiment: cache traversal rate (Sect. 5.2, Cattell OO1) ---

// TraversalResult reports the cache navigation rate.
type TraversalResult struct {
	Parts, Connections int
	LoadTime           time.Duration
	Visited            int
	Elapsed            time.Duration
	TuplesPerSecond    float64
}

// BuildOO1Cache loads the OO1 database and ships it into a cache.
func BuildOO1Cache(p workload.OO1Params) (*cocache.Cache, time.Duration, error) {
	db := engine.Open()
	if err := workload.LoadOO1(db, p); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	compiled, err := core.CompileView(db.Catalog(), "part_graph", rewrite.DefaultOptions())
	if err != nil {
		return nil, 0, err
	}
	res, err := compiled.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		return nil, 0, err
	}
	cache, err := cocache.Build(res)
	if err != nil {
		return nil, 0, err
	}
	return cache, time.Since(start), nil
}

// RunTraversal performs iters random depth-limited traversals and returns
// the visit count.
func RunTraversal(cache *cocache.Cache, iters, depth int, seed int64) int {
	comp, _ := cache.Component("xpart")
	objs := comp.Objects()
	r := rand.New(rand.NewSource(seed))
	total := 0
	for i := 0; i < iters; i++ {
		total += cache.Traverse(objs[r.Intn(len(objs))], "connected", depth, nil)
	}
	return total
}

// Traversal measures the OO1 traversal rate.
func Traversal(p workload.OO1Params, iters, depth int) (*TraversalResult, error) {
	cache, load, err := BuildOO1Cache(p)
	if err != nil {
		return nil, err
	}
	comp, _ := cache.Component("xpart")
	rel, _ := cache.Relationship("connected")
	r := &TraversalResult{Parts: comp.Len(), Connections: rel.Connections(), LoadTime: load}
	start := time.Now()
	r.Visited = RunTraversal(cache, iters, depth, 42)
	r.Elapsed = time.Since(start)
	if r.Elapsed > 0 {
		r.TuplesPerSecond = float64(r.Visited) / r.Elapsed.Seconds()
	}
	return r, nil
}

// --- Experiment: shipping modes (Sect. 5.1/5.3) ---

// ShippingRow is one shipping strategy's cost.
type ShippingRow struct {
	Mode       string
	Time       time.Duration
	RoundTrips int
	Messages   int
	BytesRecv  int
	Tuples     int
}

// Shipping compares whole-CO, block and tuple-at-a-time shipping, plus a
// projected variant (TAKE with column subsets — the "ship only requested
// attributes" point of Sect. 5.3).
func Shipping(p workload.OrgParams, latency time.Duration) ([]ShippingRow, error) {
	db := engine.Open()
	if err := workload.LoadOrg(db, p); err != nil {
		return nil, err
	}
	if _, err := db.Exec(`CREATE VIEW deps_slim AS
OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
       xemp AS EMP,
       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
TAKE xdept (dname), xemp (ename), employment`); err != nil {
		return nil, err
	}
	srv := wire.NewServer(db)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	defer srv.Close()

	run := func(label, view string, mode wire.ShipMode) (ShippingRow, error) {
		c, err := wire.Dial(l.Addr().String())
		if err != nil {
			return ShippingRow{}, err
		}
		defer c.Close()
		c.Latency = latency
		start := time.Now()
		if _, err := c.QueryCO(view, mode); err != nil {
			return ShippingRow{}, err
		}
		return ShippingRow{
			Mode: label, Time: time.Since(start),
			RoundTrips: c.Stats.RoundTrips, Messages: c.Stats.Messages,
			BytesRecv: c.Stats.BytesRecv, Tuples: c.Stats.TuplesRecv,
		}, nil
	}
	var rows []ShippingRow
	for _, cfg := range []struct {
		label, view string
		mode        wire.ShipMode
	}{
		{"whole-CO", "deps_ARC", wire.ShipWhole()},
		{"block-100", "deps_ARC", wire.ShipBlocks(100)},
		{"block-10", "deps_ARC", wire.ShipBlocks(10)},
		{"tuple-at-a-time", "deps_ARC", wire.ShipTupleAtATime()},
		{"projected (TAKE cols)", "deps_slim", wire.ShipWhole()},
	} {
		row, err := run(cfg.label, cfg.view, cfg.mode)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatShipping renders the shipping table.
func FormatShipping(rows []ShippingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %11s %9s %10s %7s\n", "mode", "time", "roundtrips", "messages", "bytes", "tuples")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12v %11d %9d %10d %7d\n", r.Mode, r.Time.Round(time.Microsecond), r.RoundTrips, r.Messages, r.BytesRecv, r.Tuples)
	}
	return b.String()
}
