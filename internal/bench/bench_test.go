package bench

import (
	"testing"
	"time"

	"xnf/internal/workload"
)

func TestTable1MatchesPaper(t *testing.T) {
	tbl, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.SQLTotal != 23 || tbl.ReplicatedTotal != 16 || tbl.XNFTotal != 7 {
		t.Errorf("Table 1 = %d/%d/%d, paper reports 23/16/7",
			tbl.SQLTotal, tbl.ReplicatedTotal, tbl.XNFTotal)
	}
}

func TestFig3ShapeHolds(t *testing.T) {
	r, err := Fig3(50, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.NaiveRuns != int64(r.Emps) {
		t.Errorf("naive mode ran the subquery %d times for %d employees", r.NaiveRuns, r.Emps)
	}
	if r.Speedup < 1 {
		t.Errorf("rewritten plan slower than naive (%.2fx)", r.Speedup)
	}
}

func TestExtractionShapeHolds(t *testing.T) {
	p := workload.OrgParams{
		Depts: 20, EmpsPerDept: 5, ProjsPerDept: 2,
		Skills: 50, SkillsPerEmp: 2, SkillsPerProj: 1,
		ArcFraction: 0.5, Seed: 4,
	}
	r, err := Extraction(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.SetRoundTrips >= r.FragRoundTrips {
		t.Errorf("set-oriented round trips (%d) must be far below fragmented (%d)",
			r.SetRoundTrips, r.FragRoundTrips)
	}
	// One query per parent instance: queries grow with the extracted
	// instances (1 + emps + projs + per-emp + per-proj fragments).
	if r.FragQueries < r.Depts {
		t.Errorf("fragmented issued only %d queries for %d parents", r.FragQueries, r.Depts)
	}
}

func TestTraversalAboveClaim(t *testing.T) {
	r, err := Traversal(workload.OO1Params{Parts: 2000, Conns: 3, Seed: 7}, 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.TuplesPerSecond < 100000 {
		t.Errorf("traversal rate %.0f below the paper's 100k tuples/s claim", r.TuplesPerSecond)
	}
}

func TestShippingShapeHolds(t *testing.T) {
	p := workload.OrgParams{
		Depts: 10, EmpsPerDept: 5, ProjsPerDept: 2,
		Skills: 40, SkillsPerEmp: 2, SkillsPerProj: 1,
		ArcFraction: 0.5, Seed: 4,
	}
	rows, err := Shipping(p, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]ShippingRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	whole := byMode["whole-CO"]
	tuple := byMode["tuple-at-a-time"]
	slim := byMode["projected (TAKE cols)"]
	if whole.RoundTrips >= tuple.RoundTrips {
		t.Errorf("whole (%d) vs tuple (%d) round trips", whole.RoundTrips, tuple.RoundTrips)
	}
	if tuple.RoundTrips < tuple.Tuples {
		t.Errorf("tuple-at-a-time: %d round trips for %d tuples", tuple.RoundTrips, tuple.Tuples)
	}
	if slim.BytesRecv >= whole.BytesRecv {
		t.Errorf("projection should ship fewer bytes: %d vs %d", slim.BytesRecv, whole.BytesRecv)
	}
}

func TestStandaloneComponents(t *testing.T) {
	db, err := Fig3DB(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := StandaloneComponents(db); err != nil {
		t.Fatal(err)
	}
}
