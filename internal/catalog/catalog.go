// Package catalog holds the database schema: table and column definitions,
// keys, index metadata, view texts and optimizer statistics. It corresponds
// to the catalog component of an RDBMS; the storage engine and the query
// compiler both consult it.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"xnf/internal/types"
)

// Column describes one column of a table.
type Column struct {
	Name    string
	Type    types.Type
	NotNull bool
}

// ForeignKey records that Columns of this table reference the primary key
// columns of RefTable. The XNF layer uses foreign keys to decide which
// relationship connect/disconnect operations are updatable.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// IndexKind distinguishes the physical index structures the storage engine
// provides.
type IndexKind uint8

// The index kinds.
const (
	HashIndex IndexKind = iota
	OrderedIndex
)

// Index is the catalog entry for an index.
type Index struct {
	Name    string
	Table   string
	Columns []string
	Kind    IndexKind
	Unique  bool
}

// StorageKind selects the physical row representation of a table.
type StorageKind uint8

// The storage kinds. RowStore (the zero value) is the slot-array heap;
// ColumnStore keeps the table column-major in colstore segments.
const (
	RowStore StorageKind = iota
	ColumnStore
)

// String returns the SQL spelling used by ALTER TABLE … SET STORAGE.
func (k StorageKind) String() string {
	if k == ColumnStore {
		return "COLUMN"
	}
	return "ROW"
}

// Table is the catalog entry for a base table.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
	Indexes     []*Index

	// Stats are maintained by the storage engine and read by the
	// optimizer; statsMu synchronizes them (DML and ANALYZE update
	// statistics while concurrent compilations read them). Access goes
	// through RowCount/SetRowCount/Cardinality/SetColCard.
	statsMu sync.RWMutex
	Stats   Stats

	// storage is the physical representation kind, maintained by the
	// storage engine (ALTER TABLE … SET STORAGE, ANALYZE auto-promotion).
	// Changing it bumps the catalog version like any DDL.
	storage atomic.Uint32
}

// StorageKind returns the table's physical representation.
func (t *Table) StorageKind() StorageKind { return StorageKind(t.storage.Load()) }

// SetStorageKind records the physical representation (storage engine only).
func (t *Table) SetStorageKind(k StorageKind) { t.storage.Store(uint32(k)) }

// RowCount returns the table's current row-count statistic.
func (t *Table) RowCount() int64 {
	t.statsMu.RLock()
	defer t.statsMu.RUnlock()
	return t.Stats.RowCount
}

// SetRowCount records the row-count statistic (storage engine only).
func (t *Table) SetRowCount(n int64) {
	t.statsMu.Lock()
	t.Stats.RowCount = n
	t.statsMu.Unlock()
}

// Stats carries the optimizer statistics for a table.
type Stats struct {
	RowCount int64
	// ColCard maps column name to its number of distinct values.
	ColCard map[string]int64
}

// View is a named stored query; Text is re-parsed on use. IsXNF marks
// composite-object views defined with OUT OF ... TAKE.
type View struct {
	Name  string
	Text  string
	IsXNF bool
}

// Catalog is the set of tables and views of one database. It is safe for
// concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View

	// version counts schema- and statistics-changing events (DDL, index
	// creation, ANALYZE). Compiled plans snapshot it as a cheap freshness
	// check: an equal version means nothing in the catalog changed.
	version atomic.Uint64

	// nameVers counts changes per table/view name. A plan that recorded
	// the versions of the names it depends on stays valid while those are
	// unchanged, even when unrelated DDL/ANALYZE bumped the global
	// version — the fix for eviction storms where one hot table's ANALYZE
	// used to invalidate every cached plan.
	nameVers map[string]uint64
}

// Version returns the current schema/statistics version.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// BumpVersion invalidates every plan compiled against the current version.
// Prefer BumpName when the change is scoped to one table or view; this
// whole-catalog bump remains for events without a single name.
func (c *Catalog) BumpVersion() { c.version.Add(1) }

// NameVersion returns the change counter of one table or view name (0 if
// the name has never changed). Plan revalidation compares it per
// dependency.
func (c *Catalog) NameVersion(name string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nameVers[norm(name)]
}

// BumpName records a change to one table or view (DDL, index creation,
// ANALYZE statistics refresh, storage switch): its per-name counter and
// the global version both advance, so plans depending on the name go
// stale while plans over other tables survive.
func (c *Catalog) BumpName(name string) {
	c.mu.Lock()
	c.nameVers[norm(name)]++
	c.mu.Unlock()
	c.version.Add(1)
}

// bumpNameLocked is BumpName for callers already holding mu.
func (c *Catalog) bumpNameLocked(name string) {
	c.nameVers[norm(name)]++
	c.version.Add(1)
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:   make(map[string]*Table),
		views:    make(map[string]*View),
		nameVers: make(map[string]uint64),
	}
}

// norm gives the case-insensitive lookup key for SQL identifiers.
func norm(name string) string { return strings.ToUpper(name) }

// Reset drops every table and view in place, preserving the Catalog's
// identity — the engine and storage layers share it by reference — while
// advancing the global version so any plan compiled against the discarded
// schema goes stale. Recovery uses it to wipe the partial state a failed
// checkpoint load left behind before retrying with an older checkpoint.
func (c *Catalog) Reset() {
	c.mu.Lock()
	c.tables = make(map[string]*Table)
	c.views = make(map[string]*View)
	for name := range c.nameVers {
		c.nameVers[name]++
	}
	c.mu.Unlock()
	c.version.Add(1)
}

// CreateTable registers a table definition. Column names must be unique and
// primary-key columns must exist.
func (c *Catalog) CreateTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table must have a name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %s must have at least one column", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		k := norm(col.Name)
		if seen[k] {
			return fmt.Errorf("catalog: duplicate column %s in table %s", col.Name, t.Name)
		}
		seen[k] = true
	}
	for _, pk := range t.PrimaryKey {
		if !seen[norm(pk)] {
			return fmt.Errorf("catalog: primary key column %s not in table %s", pk, t.Name)
		}
	}
	for _, fk := range t.ForeignKeys {
		for _, fc := range fk.Columns {
			if !seen[norm(fc)] {
				return fmt.Errorf("catalog: foreign key column %s not in table %s", fc, t.Name)
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := norm(t.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("catalog: a view named %s already exists", t.Name)
	}
	if t.Stats.ColCard == nil {
		t.Stats.ColCard = make(map[string]int64)
	}
	c.tables[k] = t
	c.bumpNameLocked(t.Name)
	return nil
}

// DropTable removes a table definition.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := norm(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	delete(c.tables, k)
	c.bumpNameLocked(name)
	return nil
}

// Table looks up a table definition by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[norm(name)]
	return t, ok
}

// Tables returns all table definitions sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateView registers a view; it shadows no table.
func (c *Catalog) CreateView(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := norm(v.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: a table named %s already exists", v.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("catalog: view %s already exists", v.Name)
	}
	c.views[k] = v
	c.bumpNameLocked(v.Name)
	return nil
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := norm(name)
	if _, ok := c.views[k]; !ok {
		return fmt.Errorf("catalog: view %s does not exist", name)
	}
	delete(c.views, k)
	c.bumpNameLocked(name)
	return nil
}

// View looks up a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[norm(name)]
	return v, ok
}

// Views returns all views sorted by name.
func (c *Catalog) Views() []*View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddIndex attaches index metadata to its table.
func (c *Catalog) AddIndex(idx *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[norm(idx.Table)]
	if !ok {
		return fmt.Errorf("catalog: table %s does not exist", idx.Table)
	}
	for _, existing := range t.Indexes {
		if norm(existing.Name) == norm(idx.Name) {
			return fmt.Errorf("catalog: index %s already exists", idx.Name)
		}
	}
	for _, col := range idx.Columns {
		if _, ok := t.ColumnIndex(col); !ok {
			return fmt.Errorf("catalog: index column %s not in table %s", col, idx.Table)
		}
	}
	t.Indexes = append(t.Indexes, idx)
	c.bumpNameLocked(idx.Table)
	return nil
}

// ColumnIndex returns the ordinal position of a column (case-insensitive).
func (t *Table) ColumnIndex(name string) (int, bool) {
	for i, col := range t.Columns {
		if strings.EqualFold(col.Name, name) {
			return i, true
		}
	}
	return 0, false
}

// ColumnNames returns the column names in table order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, col := range t.Columns {
		names[i] = col.Name
	}
	return names
}

// PKOrdinals resolves the primary key to column ordinals.
func (t *Table) PKOrdinals() []int {
	out := make([]int, 0, len(t.PrimaryKey))
	for _, pk := range t.PrimaryKey {
		if i, ok := t.ColumnIndex(pk); ok {
			out = append(out, i)
		}
	}
	return out
}

// IndexOn returns an index whose leading columns cover exactly the given
// column list prefix, preferring unique then ordered indexes.
func (t *Table) IndexOn(cols []string) *Index {
	var best *Index
	for _, idx := range t.Indexes {
		if len(idx.Columns) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if !strings.EqualFold(idx.Columns[i], c) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if best == nil || (idx.Unique && !best.Unique) {
			best = idx
		}
	}
	return best
}

// Cardinality returns the distinct-value estimate for a column, defaulting
// to a tenth of the row count when no statistic is recorded.
func (t *Table) Cardinality(col string) int64 {
	t.statsMu.RLock()
	defer t.statsMu.RUnlock()
	if t.Stats.ColCard != nil {
		if card, ok := t.Stats.ColCard[norm(col)]; ok && card > 0 {
			return card
		}
	}
	if t.Stats.RowCount > 10 {
		return t.Stats.RowCount / 10
	}
	if t.Stats.RowCount > 0 {
		return t.Stats.RowCount
	}
	return 1
}

// SetColCard records a distinct-value statistic.
func (t *Table) SetColCard(col string, card int64) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.Stats.ColCard == nil {
		t.Stats.ColCard = make(map[string]int64)
	}
	t.Stats.ColCard[norm(col)] = card
}
