package catalog

import (
	"testing"

	"xnf/internal/types"
)

func deptTable() *Table {
	return &Table{
		Name: "DEPT",
		Columns: []Column{
			{Name: "dno", Type: types.IntType, NotNull: true},
			{Name: "dname", Type: types.StringType},
			{Name: "loc", Type: types.StringType},
		},
		PrimaryKey: []string{"dno"},
	}
}

func TestCreateLookupDrop(t *testing.T) {
	c := New()
	if err := c.CreateTable(deptTable()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("dept"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if err := c.CreateTable(deptTable()); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := c.DropTable("DEPT"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("DEPT"); ok {
		t.Error("dropped table still present")
	}
	if err := c.DropTable("DEPT"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestTableValidation(t *testing.T) {
	c := New()
	if err := c.CreateTable(&Table{Name: "X"}); err == nil {
		t.Error("no columns should fail")
	}
	if err := c.CreateTable(&Table{}); err == nil {
		t.Error("no name should fail")
	}
	bad := deptTable()
	bad.Columns = append(bad.Columns, Column{Name: "DNO", Type: types.IntType})
	if err := c.CreateTable(bad); err == nil {
		t.Error("duplicate column (case-insensitive) should fail")
	}
	bad2 := deptTable()
	bad2.PrimaryKey = []string{"ghost"}
	if err := c.CreateTable(bad2); err == nil {
		t.Error("pk over missing column should fail")
	}
	bad3 := deptTable()
	bad3.ForeignKeys = []ForeignKey{{Columns: []string{"ghost"}, RefTable: "T", RefColumns: []string{"x"}}}
	if err := c.CreateTable(bad3); err == nil {
		t.Error("fk over missing column should fail")
	}
}

func TestViews(t *testing.T) {
	c := New()
	if err := c.CreateTable(deptTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(&View{Name: "DEPT", Text: "x"}); err == nil {
		t.Error("view shadowing table should fail")
	}
	if err := c.CreateView(&View{Name: "v1", Text: "SELECT", IsXNF: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(&View{Name: "V1"}); err == nil {
		t.Error("duplicate view should fail")
	}
	v, ok := c.View("v1")
	if !ok || !v.IsXNF {
		t.Error("view lookup failed")
	}
	if err := c.CreateTable(&Table{Name: "v1", Columns: []Column{{Name: "a", Type: types.IntType}}}); err == nil {
		t.Error("table shadowing view should fail")
	}
	if len(c.Views()) != 1 {
		t.Error("Views() wrong")
	}
	if err := c.DropView("v1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("v1"); err == nil {
		t.Error("double view drop should fail")
	}
}

func TestIndexes(t *testing.T) {
	c := New()
	c.CreateTable(deptTable())
	if err := c.AddIndex(&Index{Name: "i1", Table: "DEPT", Columns: []string{"loc"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&Index{Name: "I1", Table: "DEPT", Columns: []string{"dname"}}); err == nil {
		t.Error("duplicate index name should fail")
	}
	if err := c.AddIndex(&Index{Name: "i2", Table: "DEPT", Columns: []string{"ghost"}}); err == nil {
		t.Error("index over missing column should fail")
	}
	if err := c.AddIndex(&Index{Name: "i3", Table: "NOPE", Columns: []string{"x"}}); err == nil {
		t.Error("index over missing table should fail")
	}
	tbl, _ := c.Table("DEPT")
	if idx := tbl.IndexOn([]string{"LOC"}); idx == nil || idx.Name != "i1" {
		t.Error("IndexOn case-insensitive prefix failed")
	}
	if idx := tbl.IndexOn([]string{"dname"}); idx != nil {
		t.Error("no index on dname")
	}
	// Unique index preferred.
	c.AddIndex(&Index{Name: "u1", Table: "DEPT", Columns: []string{"loc"}, Unique: true})
	if idx := tbl.IndexOn([]string{"loc"}); !idx.Unique {
		t.Error("unique index should win")
	}
}

func TestColumnHelpers(t *testing.T) {
	tbl := deptTable()
	if i, ok := tbl.ColumnIndex("LOC"); !ok || i != 2 {
		t.Error("ColumnIndex")
	}
	if _, ok := tbl.ColumnIndex("nope"); ok {
		t.Error("missing column found")
	}
	if len(tbl.ColumnNames()) != 3 {
		t.Error("ColumnNames")
	}
	if pk := tbl.PKOrdinals(); len(pk) != 1 || pk[0] != 0 {
		t.Error("PKOrdinals")
	}
}

func TestCardinality(t *testing.T) {
	tbl := deptTable()
	tbl.Stats.RowCount = 1000
	if tbl.Cardinality("loc") != 100 {
		t.Errorf("default cardinality = %d", tbl.Cardinality("loc"))
	}
	tbl.SetColCard("loc", 5)
	if tbl.Cardinality("LOC") != 5 {
		t.Errorf("set cardinality = %d", tbl.Cardinality("LOC"))
	}
	tbl.Stats.RowCount = 4
	if tbl.Cardinality("dname") != 4 {
		t.Errorf("small-table cardinality = %d", tbl.Cardinality("dname"))
	}
	tbl.Stats.RowCount = 0
	if tbl.Cardinality("dname") != 1 {
		t.Errorf("empty-table cardinality = %d", tbl.Cardinality("dname"))
	}
}

func TestTablesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		c.CreateTable(&Table{Name: n, Columns: []Column{{Name: "a", Type: types.IntType}}})
	}
	names := []string{}
	for _, tbl := range c.Tables() {
		names = append(names, tbl.Name)
	}
	if names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("tables not sorted: %v", names)
	}
}
