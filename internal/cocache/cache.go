// Package cocache is the client-side CO cache of Sect. 5 (Fig. 7): the
// heterogeneous tuple stream delivered by the server is converted into a
// main-memory workspace where connections are virtual-memory pointers,
// giving OODBMS-class navigation speed (the paper reports >100,000 tuples
// per second through a pre-loaded cache). The cache also supports local
// updates with write-back (Sect. 2's update operators) and can be saved to
// disk for long transactions.
package cocache

import (
	"fmt"
	"strings"

	"xnf/internal/core"
	"xnf/internal/types"
)

// Object is one component tuple in the workspace. Its connections are
// direct pointers, so navigation never touches the server.
type Object struct {
	comp *Component
	Row  types.Row

	// children/parents hold the swizzled connections per relationship
	// name (upper-cased).
	children map[string][]*Object
	parents  map[string][]*Object

	dirty   bool
	origRow types.Row // pre-update image for write-back predicates
	deleted bool
	created bool
}

// Component returns the component table this object belongs to.
func (o *Object) Component() *Component { return o.comp }

// Get returns the value of the named column.
func (o *Object) Get(col string) (types.Value, error) {
	ord, ok := o.comp.colIndex(col)
	if !ok {
		return types.Null, fmt.Errorf("cocache: component %s has no column %s", o.comp.Name, col)
	}
	return o.Row[ord], nil
}

// MustGet is Get for known-good column names (panics otherwise); examples
// and tests use it for brevity.
func (o *Object) MustGet(col string) types.Value {
	v, err := o.Get(col)
	if err != nil {
		panic(err)
	}
	return v
}

// Key returns the object's identity key string.
func (o *Object) Key() string { return o.Row.Key(o.comp.KeyCols) }

// Children returns the objects connected to o as children through the
// named relationship (o playing the parent role).
func (o *Object) Children(rel string) []*Object { return o.children[strings.ToUpper(rel)] }

// Parents returns the objects connected to o as parents through the named
// relationship (o playing a child role).
func (o *Object) Parents(rel string) []*Object { return o.parents[strings.ToUpper(rel)] }

// Component is one component table of the cached CO.
type Component struct {
	Name     string
	ColNames []string
	ColTypes []types.Type
	KeyCols  []int

	// Updatability metadata carried over from the compiled view.
	BaseTable string
	BaseCols  []string

	objs  []*Object
	byKey map[string]*Object
	cols  map[string]int
}

// Len returns the number of live objects.
func (c *Component) Len() int {
	n := 0
	for _, o := range c.objs {
		if !o.deleted {
			n++
		}
	}
	return n
}

// Objects returns the live objects in arrival order.
func (c *Component) Objects() []*Object {
	out := make([]*Object, 0, len(c.objs))
	for _, o := range c.objs {
		if !o.deleted {
			out = append(out, o)
		}
	}
	return out
}

// Lookup finds an object by its key values.
func (c *Component) Lookup(key ...types.Value) (*Object, bool) {
	o, ok := c.byKey[types.Row(key).Key(seq(len(key)))]
	if !ok || o.deleted {
		return nil, false
	}
	return o, true
}

func (c *Component) colIndex(name string) (int, bool) {
	ord, ok := c.cols[strings.ToUpper(name)]
	return ord, ok
}

// Relationship is the schema of one cached relationship.
type Relationship struct {
	Name     string
	Parent   string
	Children []string
	Role     string

	// Write-back metadata.
	FKChildCols       []string
	ConnectTable      string
	ConnectParentCols []string
	ConnectChildCols  []string

	connections int
}

// Connections returns the number of materialized connections.
func (r *Relationship) Connections() int { return r.connections }

// Cache is the workspace holding one extracted CO.
type Cache struct {
	comps     []*Component
	compByKey map[string]*Component
	rels      []*Relationship
	relByKey  map[string]*Relationship

	// pending write-back operations in arrival order.
	log []writeOp

	// Stats counts what Build did (for the experiments).
	Stats BuildStats
}

// BuildStats reports cache-construction counters.
type BuildStats struct {
	Objects     int
	Connections int
	Dangling    int // connections dropped because a partner was absent
}

// Component looks up a component table by name.
func (c *Cache) Component(name string) (*Component, bool) {
	comp, ok := c.compByKey[strings.ToUpper(name)]
	return comp, ok
}

// Components lists the component tables in definition order.
func (c *Cache) Components() []*Component { return c.comps }

// Relationship looks up a relationship by name.
func (c *Cache) Relationship(name string) (*Relationship, bool) {
	r, ok := c.relByKey[strings.ToUpper(name)]
	return r, ok
}

// Relationships lists the relationships in definition order.
func (c *Cache) Relationships() []*Relationship { return c.rels }

// Build converts an extracted CO result into the pointer-linked workspace:
// component rows become objects (deduplicated on their identity key —
// object sharing), connection tuples and derived foreign keys become
// bidirectional pointers. Connections whose partner is absent (filtered by
// the child's local predicates or projected away) are dropped, which is
// exactly the reachability semantics.
func Build(res *core.COResult) (*Cache, error) {
	c := &Cache{
		compByKey: make(map[string]*Component),
		relByKey:  make(map[string]*Relationship),
	}
	// Pass 1: components.
	for i, out := range res.Outputs {
		if out.IsRel {
			continue
		}
		comp := &Component{
			Name:      out.Name,
			ColNames:  out.ColNames,
			ColTypes:  out.ColTypes,
			KeyCols:   append([]int{}, out.KeyCols...),
			BaseTable: out.BaseTable,
			BaseCols:  out.BaseCols,
			byKey:     make(map[string]*Object),
			cols:      make(map[string]int),
		}
		for ord, name := range out.ColNames {
			if _, dup := comp.cols[strings.ToUpper(name)]; !dup {
				comp.cols[strings.ToUpper(name)] = ord
			}
		}
		for _, row := range res.Rows[i] {
			key := row.Key(comp.KeyCols)
			if _, dup := comp.byKey[key]; dup {
				continue // set semantics: one object per identity
			}
			obj := &Object{
				comp: comp, Row: row,
				children: make(map[string][]*Object),
				parents:  make(map[string][]*Object),
			}
			comp.objs = append(comp.objs, obj)
			comp.byKey[key] = obj
			c.Stats.Objects++
		}
		c.comps = append(c.comps, comp)
		c.compByKey[strings.ToUpper(out.Name)] = comp
	}
	// Pass 2: relationships.
	for i, out := range res.Outputs {
		if !out.IsRel {
			continue
		}
		rel := &Relationship{
			Name: out.Name, Parent: out.Parent, Children: out.Children, Role: out.Role,
			FKChildCols:       out.FKChildCols,
			ConnectTable:      out.ConnectTable,
			ConnectParentCols: out.ConnectParentCols,
			ConnectChildCols:  out.ConnectChildCols,
		}
		parent, ok := c.compByKey[strings.ToUpper(out.Parent)]
		if !ok {
			return nil, fmt.Errorf("cocache: relationship %s references untaken parent %s", out.Name, out.Parent)
		}
		childComps := make([]*Component, len(out.Children))
		for ci, ch := range out.Children {
			childComps[ci], ok = c.compByKey[strings.ToUpper(ch)]
			if !ok {
				return nil, fmt.Errorf("cocache: relationship %s references untaken child %s", out.Name, ch)
			}
		}
		relKey := strings.ToUpper(out.Name)
		connect := func(p *Object, kids []*Object) {
			p.children[relKey] = append(p.children[relKey], kids...)
			for _, k := range kids {
				k.parents[relKey] = append(k.parents[relKey], p)
			}
			rel.connections += len(kids)
			c.Stats.Connections += len(kids)
		}
		if out.DerivedFrom != "" {
			child := c.compByKey[strings.ToUpper(out.DerivedFrom)]
			for _, obj := range child.objs {
				pkey := obj.Row.Key(out.DerivedParentOrds)
				p, ok := parent.byKey[pkey]
				if !ok {
					c.Stats.Dangling++
					continue
				}
				connect(p, []*Object{obj})
			}
		} else {
			for _, row := range res.Rows[i] {
				p, ok := parent.byKey[row.Key(out.ParentKeyOrds)]
				if !ok {
					c.Stats.Dangling++
					continue
				}
				kids := make([]*Object, 0, len(childComps))
				allFound := true
				for ci, cc := range childComps {
					k, ok := cc.byKey[row.Key(out.ChildKeyOrds[ci])]
					if !ok {
						allFound = false
						break
					}
					kids = append(kids, k)
				}
				if !allFound {
					c.Stats.Dangling++
					continue
				}
				connect(p, kids)
			}
		}
		c.rels = append(c.rels, rel)
		c.relByKey[relKey] = rel
	}
	return c, nil
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
