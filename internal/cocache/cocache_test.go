package cocache

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"xnf/internal/core"
	"xnf/internal/engine"
	"xnf/internal/opt"
	"xnf/internal/rewrite"
	"xnf/internal/types"
	"xnf/internal/workload"
)

func fig1DB(t testing.TB) *engine.Database {
	t.Helper()
	db := engine.Open()
	script := workload.OrgSchema + `
INSERT INTO DEPT VALUES (1, 'd1', 'ARC'), (2, 'd2', 'ARC'), (3, 'd3', 'HQ');
INSERT INTO EMP VALUES (1, 'e1', 1, 100), (2, 'e2', 1, 200), (3, 'e3', 2, 300), (9, 'e9', 3, 900);
INSERT INTO PROJ VALUES (1, 'p1', 1, 10), (2, 'p2', 2, 20), (9, 'p9', 3, 90);
INSERT INTO SKILLS VALUES (1, 's1'), (2, 's2'), (3, 's3'), (4, 's4'), (5, 's5');
INSERT INTO EMPSKILLS VALUES (1, 1), (2, 3), (3, 3), (3, 4), (9, 2);
INSERT INTO PROJSKILLS VALUES (1, 3), (2, 4), (2, 5), (9, 2);
` + workload.DepsARC + ";"
	if err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return db
}

func buildCache(t testing.TB, db *engine.Database) *Cache {
	t.Helper()
	c, err := core.CompileView(db.Catalog(), "deps_ARC", rewrite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cache, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	return cache
}

func TestBuildComponents(t *testing.T) {
	cache := buildCache(t, fig1DB(t))
	want := map[string]int{"xdept": 2, "xemp": 3, "xproj": 2, "xskills": 4}
	for name, n := range want {
		comp, ok := cache.Component(name)
		if !ok {
			t.Fatalf("missing component %s", name)
		}
		if comp.Len() != n {
			t.Errorf("%s has %d objects, want %d", name, comp.Len(), n)
		}
	}
	if len(cache.Relationships()) != 4 {
		t.Errorf("relationships = %d", len(cache.Relationships()))
	}
}

func TestSwizzledNavigation(t *testing.T) {
	cache := buildCache(t, fig1DB(t))
	xdept, _ := cache.Component("xdept")
	d1, ok := xdept.Lookup(types.NewInt(1))
	if !ok {
		t.Fatal("d1 not found")
	}
	emps := d1.Children("employment")
	if len(emps) != 2 {
		t.Fatalf("d1 employs %d, want 2", len(emps))
	}
	var names []string
	for _, e := range emps {
		names = append(names, e.MustGet("ename").S)
	}
	sort.Strings(names)
	if fmt.Sprint(names) != "[e1 e2]" {
		t.Errorf("d1 employees = %v", names)
	}
	// Upward navigation.
	if len(emps[0].Parents("employment")) != 1 {
		t.Error("child → parent pointer missing")
	}
	// Shared skill s3 has two parent employees.
	xskills, _ := cache.Component("xskills")
	s3, _ := xskills.Lookup(types.NewInt(3))
	if len(s3.Parents("empproperty")) != 2 {
		t.Errorf("s3 emp parents = %d, want 2 (e2 and e3)", len(s3.Parents("empproperty")))
	}
	if len(s3.Parents("projproperty")) != 1 {
		t.Errorf("s3 proj parents = %d, want 1 (p1)", len(s3.Parents("projproperty")))
	}
}

func TestIndependentAndDependentCursors(t *testing.T) {
	cache := buildCache(t, fig1DB(t))
	cur, err := cache.OpenCursor("xemp")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for o := cur.Next(); o != nil; o = cur.Next() {
		n++
		_ = o.MustGet("eno")
	}
	if n != 3 {
		t.Errorf("independent cursor saw %d", n)
	}
	cur.Reset()
	if cur.Next() == nil {
		t.Error("reset cursor should restart")
	}

	xdept, _ := cache.Component("xdept")
	d2, _ := xdept.Lookup(types.NewInt(2))
	dep, err := cache.OpenDependentCursor(d2, "employment")
	if err != nil {
		t.Fatal(err)
	}
	var kids []string
	for o := dep.Next(); o != nil; o = dep.Next() {
		kids = append(kids, o.MustGet("ename").S)
	}
	if fmt.Sprint(kids) != "[e3]" {
		t.Errorf("d2 children = %v", kids)
	}
	if _, err := cache.OpenCursor("ghost"); err == nil {
		t.Error("unknown component should fail")
	}
	if _, err := cache.OpenDependentCursor(d2, "ghost"); err == nil {
		t.Error("unknown relationship should fail")
	}
}

func TestPathExpressions(t *testing.T) {
	cache := buildCache(t, fig1DB(t))
	// The paper's path expressions denote reachable target tuples.
	skills, err := cache.PathString("xdept.xemp.xskills")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range skills {
		got = append(got, s.MustGet("sno").String())
	}
	sort.Strings(got)
	if fmt.Sprint(got) != "[1 3 4]" {
		t.Errorf("xdept.xemp.xskills = %v", got)
	}
	// Explicit relationship steps.
	skills2, err := cache.Path("xdept", "ownership", "projproperty")
	if err != nil {
		t.Fatal(err)
	}
	got = nil
	for _, s := range skills2 {
		got = append(got, s.MustGet("sno").String())
	}
	sort.Strings(got)
	if fmt.Sprint(got) != "[3 4 5]" {
		t.Errorf("ownership.projproperty = %v", got)
	}
	// Deduplication: s3 reachable from two employees appears once.
	seen := map[string]int{}
	for _, s := range skills {
		seen[s.Key()]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("path result duplicates %s ×%d", k, n)
		}
	}
	if _, err := cache.PathString("xemp.xdept"); err == nil {
		t.Error("path against relationship direction should fail")
	}
	if _, err := cache.PathString("nosuch.xemp"); err == nil {
		t.Error("unknown start should fail")
	}
}

func TestUpdateWriteBack(t *testing.T) {
	db := fig1DB(t)
	cache := buildCache(t, db)
	xemp, _ := cache.Component("xemp")
	e1, _ := xemp.Lookup(types.NewInt(1))
	if err := cache.Set(e1, "sal", types.NewFloat(150)); err != nil {
		t.Fatal(err)
	}
	if e1.MustGet("sal").F != 150 {
		t.Error("local update not applied")
	}
	if err := cache.SaveChanges(func(sql string) error {
		_, err := db.Exec(sql)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT sal FROM EMP WHERE eno = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].F != 150 {
		t.Errorf("server sal = %v", res.Rows[0][0])
	}
	if len(cache.Pending()) != 0 {
		t.Error("log should be clear after SaveChanges")
	}
}

func TestInsertDeleteWriteBack(t *testing.T) {
	db := fig1DB(t)
	cache := buildCache(t, db)
	_, err := cache.Insert("xemp", types.Row{
		types.NewInt(50), types.NewString("e50"), types.NewInt(1), types.NewFloat(500),
	})
	if err != nil {
		t.Fatal(err)
	}
	xemp, _ := cache.Component("xemp")
	if xemp.Len() != 4 {
		t.Errorf("len after insert = %d", xemp.Len())
	}
	e3, _ := xemp.Lookup(types.NewInt(3))
	if err := cache.Delete(e3); err != nil {
		t.Fatal(err)
	}
	if xemp.Len() != 3 {
		t.Errorf("len after delete = %d", xemp.Len())
	}
	// d2's employment children must no longer include e3.
	xdept, _ := cache.Component("xdept")
	d2, _ := xdept.Lookup(types.NewInt(2))
	if len(d2.Children("employment")) != 0 {
		t.Error("deleted object still connected")
	}
	if err := cache.SaveChanges(func(sql string) error {
		_, err := db.Exec(sql)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query("SELECT COUNT(*) FROM EMP WHERE eno = 50")
	if res.Rows[0][0].I != 1 {
		t.Error("insert not written back")
	}
	res, _ = db.Query("SELECT COUNT(*) FROM EMP WHERE eno = 3")
	if res.Rows[0][0].I != 0 {
		t.Error("delete not written back")
	}
}

func TestConnectDisconnectFK(t *testing.T) {
	db := fig1DB(t)
	cache := buildCache(t, db)
	xdept, _ := cache.Component("xdept")
	xemp, _ := cache.Component("xemp")
	d2, _ := xdept.Lookup(types.NewInt(2))
	e1, _ := xemp.Lookup(types.NewInt(1))
	d1, _ := xdept.Lookup(types.NewInt(1))

	// Move e1 from d1 to d2: disconnect + connect translate to FK updates.
	if err := cache.Disconnect("employment", d1, e1); err != nil {
		t.Fatal(err)
	}
	if err := cache.Connect("employment", d2, e1); err != nil {
		t.Fatal(err)
	}
	if len(d2.Children("employment")) != 2 {
		t.Errorf("d2 children = %d", len(d2.Children("employment")))
	}
	if err := cache.SaveChanges(func(sql string) error {
		_, err := db.Exec(sql)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query("SELECT edno FROM EMP WHERE eno = 1")
	if res.Rows[0][0].I != 2 {
		t.Errorf("server edno = %v (FK update lost)", res.Rows[0][0])
	}
}

func TestConnectDisconnectConnectTable(t *testing.T) {
	db := fig1DB(t)
	cache := buildCache(t, db)
	xemp, _ := cache.Component("xemp")
	xskills, _ := cache.Component("xskills")
	e1, _ := xemp.Lookup(types.NewInt(1))
	s4, _ := xskills.Lookup(types.NewInt(4))

	if err := cache.Connect("empproperty", e1, s4); err != nil {
		t.Fatal(err)
	}
	if len(e1.Children("empproperty")) != 2 {
		t.Errorf("e1 skills = %d", len(e1.Children("empproperty")))
	}
	s1, _ := xskills.Lookup(types.NewInt(1))
	if err := cache.Disconnect("empproperty", e1, s1); err != nil {
		t.Fatal(err)
	}
	if err := cache.SaveChanges(func(sql string) error {
		_, err := db.Exec(sql)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query("SELECT essno FROM EMPSKILLS WHERE eseno = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 4 {
		t.Errorf("connect table rows = %v", res.Rows)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cache := buildCache(t, fig1DB(t))
	var buf bytes.Buffer
	if err := cache.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range cache.Components() {
		lc, ok := loaded.Component(comp.Name)
		if !ok || lc.Len() != comp.Len() {
			t.Errorf("component %s lost in round trip", comp.Name)
		}
	}
	for _, rel := range cache.Relationships() {
		lr, ok := loaded.Relationship(rel.Name)
		if !ok || lr.Connections() != rel.Connections() {
			t.Errorf("relationship %s: %d connections, want %d", rel.Name, lr.Connections(), rel.Connections())
		}
	}
	// Navigation still works after re-swizzling.
	skills, err := loaded.PathString("xdept.xemp.xskills")
	if err != nil {
		t.Fatal(err)
	}
	if len(skills) != 3 {
		t.Errorf("path over loaded cache = %d objects", len(skills))
	}
}

// Reachability invariant: every cached non-root object has at least one
// parent pointer; no connection points at a missing object.
func TestReachabilityInvariant(t *testing.T) {
	cache := buildCache(t, fig1DB(t))
	roots := map[string]bool{"XDEPT": true}
	for _, comp := range cache.Components() {
		for _, o := range comp.Objects() {
			if roots[strings.ToUpper(comp.Name)] {
				continue
			}
			total := 0
			for _, rel := range cache.Relationships() {
				total += len(o.Parents(rel.Name))
			}
			if total == 0 {
				t.Errorf("object %s of %s is unreachable in the cache", o.Key(), comp.Name)
			}
		}
	}
	if cache.Stats.Dangling != 0 {
		t.Errorf("dangling connections = %d", cache.Stats.Dangling)
	}
}

func TestTraverse(t *testing.T) {
	cache := buildCache(t, fig1DB(t))
	xdept, _ := cache.Component("xdept")
	d1, _ := xdept.Lookup(types.NewInt(1))
	visited := 0
	n := cache.Traverse(d1, "employment", 1, func(o *Object, depth int) { visited++ })
	if n != 3 || visited != 3 { // d1 + e1 + e2
		t.Errorf("traverse visited %d/%d", visited, n)
	}
}

func TestRichViewNotUpdatable(t *testing.T) {
	db := fig1DB(t)
	if _, err := db.Exec(`CREATE VIEW agg_co AS
		OUT OF xdept AS (SELECT loc, COUNT(*) AS n FROM DEPT GROUP BY loc)
		TAKE *`); err != nil {
		t.Fatal(err)
	}
	c, err := core.CompileView(db.Catalog(), "agg_co", rewrite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cache, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := cache.Component("xdept")
	objs := comp.Objects()
	if len(objs) == 0 {
		t.Fatal("no rows")
	}
	if err := cache.Set(objs[0], "n", types.NewInt(99)); err == nil {
		t.Error("aggregated component must be read-only")
	}
	if _, err := cache.Insert("xdept", objs[0].Row); err == nil {
		t.Error("insert into rich view must fail")
	}
}
