package cocache

import (
	"fmt"
	"strings"
)

// Cursor is the XNF API's navigation primitive (Sect. 2): an iterator over
// objects. Independent cursors browse a whole component table; dependent
// cursors browse the children of a parent object along one relationship.
// Both are plain in-memory walks over swizzled pointers.
type Cursor struct {
	objs []*Object
	pos  int
}

// Next returns the next live object or nil at the end.
func (c *Cursor) Next() *Object {
	for c.pos < len(c.objs) {
		o := c.objs[c.pos]
		c.pos++
		if !o.deleted {
			return o
		}
	}
	return nil
}

// Reset rewinds the cursor.
func (c *Cursor) Reset() { c.pos = 0 }

// Len returns the number of objects the cursor ranges over (including any
// that are skipped as deleted during iteration).
func (c *Cursor) Len() int { return len(c.objs) }

// OpenCursor opens an independent cursor over a component table.
func (c *Cache) OpenCursor(component string) (*Cursor, error) {
	comp, ok := c.Component(component)
	if !ok {
		return nil, fmt.Errorf("cocache: unknown component %s", component)
	}
	return &Cursor{objs: comp.objs}, nil
}

// OpenDependentCursor opens a cursor over the children of parent along the
// named relationship.
func (c *Cache) OpenDependentCursor(parent *Object, rel string) (*Cursor, error) {
	if _, ok := c.Relationship(rel); !ok {
		return nil, fmt.Errorf("cocache: unknown relationship %s", rel)
	}
	return &Cursor{objs: parent.Children(rel)}, nil
}

// Path evaluates an XNF path expression over the cached CO: a sequence of
// component names (optionally interleaved with relationship names) starting
// at a component. It returns the set of objects of the final step reachable
// from some object of the first step — deduplicated, because shared objects
// are reachable along several paths (Sect. 2). Steps may name either the
// next component (any relationship connecting the two is followed) or an
// explicit relationship.
func (c *Cache) Path(steps ...string) ([]*Object, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("cocache: empty path expression")
	}
	first, ok := c.Component(steps[0])
	if !ok {
		return nil, fmt.Errorf("cocache: path must start at a component, %s is unknown", steps[0])
	}
	cur := first.Objects()
	curComp := first
	for _, step := range steps[1:] {
		var relNames []string
		var nextComp *Component
		if rel, ok := c.Relationship(step); ok {
			if !strings.EqualFold(rel.Parent, curComp.Name) {
				return nil, fmt.Errorf("cocache: relationship %s does not start at %s", step, curComp.Name)
			}
			relNames = []string{rel.Name}
			if len(rel.Children) != 1 {
				return nil, fmt.Errorf("cocache: path step %s is n-ary; name the target component instead", step)
			}
			nextComp, _ = c.Component(rel.Children[0])
		} else if comp, ok := c.Component(step); ok {
			nextComp = comp
			for _, r := range c.rels {
				if strings.EqualFold(r.Parent, curComp.Name) {
					for _, ch := range r.Children {
						if strings.EqualFold(ch, comp.Name) {
							relNames = append(relNames, r.Name)
						}
					}
				}
			}
			if len(relNames) == 0 {
				return nil, fmt.Errorf("cocache: no relationship connects %s to %s", curComp.Name, step)
			}
		} else {
			return nil, fmt.Errorf("cocache: unknown path step %s", step)
		}
		seen := make(map[*Object]bool)
		var next []*Object
		for _, o := range cur {
			for _, rn := range relNames {
				for _, k := range o.Children(rn) {
					if !k.deleted && !seen[k] {
						seen[k] = true
						next = append(next, k)
					}
				}
			}
		}
		cur = next
		curComp = nextComp
	}
	return cur, nil
}

// PathString evaluates a dotted path expression, e.g.
// "xdept.xemp.xskills".
func (c *Cache) PathString(path string) ([]*Object, error) {
	return c.Path(strings.Split(path, ".")...)
}

// Traverse performs a depth-first traversal from an object along a
// relationship, visiting each connection once per occurrence (the OO1
// traversal shape of Sect. 5.2), down to the given depth. The visit
// callback receives the object and its depth; traversal counts and returns
// the number of objects visited (connections traversed + 1).
func (c *Cache) Traverse(from *Object, rel string, depth int, visit func(o *Object, depth int)) int {
	count := 1
	if visit != nil {
		visit(from, depth)
	}
	if depth == 0 {
		return count
	}
	for _, k := range from.Children(rel) {
		count += c.Traverse(k, rel, depth-1, visit)
	}
	return count
}
