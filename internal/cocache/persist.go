package cocache

import (
	"encoding/gob"
	"fmt"
	"io"

	"xnf/internal/types"
)

// The disk format for long transactions (Sect. 5: "XNF allows the cache to
// be stored on disk and retrieved later, thereby protecting the cache from
// client machine's failure"). Connections are serialized as object-index
// pairs and re-swizzled into pointers on load.

type diskCache struct {
	Components []diskComponent
	Rels       []diskRel
	Pending    []string
}

type diskComponent struct {
	Name      string
	ColNames  []string
	ColTypes  []types.Type
	KeyCols   []int
	BaseTable string
	BaseCols  []string
	Rows      []types.Row
}

type diskRel struct {
	Name     string
	Parent   string
	Children []string
	Role     string

	FKChildCols       []string
	ConnectTable      string
	ConnectParentCols []string
	ConnectChildCols  []string

	// Edges are (parent object index, child component ordinal within
	// Children... flattened: one edge per parent-child pointer).
	ParentIdx []int
	ChildComp []int
	ChildIdx  []int
}

// Save writes the cache (including pending write-back operations) to w.
func (c *Cache) Save(w io.Writer) error {
	d := diskCache{Pending: c.Pending()}
	objIndex := make(map[*Object]int)
	for _, comp := range c.comps {
		dc := diskComponent{
			Name: comp.Name, ColNames: comp.ColNames, ColTypes: comp.ColTypes,
			KeyCols: comp.KeyCols, BaseTable: comp.BaseTable, BaseCols: comp.BaseCols,
		}
		for _, o := range comp.Objects() {
			objIndex[o] = len(dc.Rows)
			dc.Rows = append(dc.Rows, o.Row)
		}
		d.Components = append(d.Components, dc)
	}
	compOrd := make(map[string]int)
	for i, comp := range c.comps {
		compOrd[comp.Name] = i
	}
	for _, r := range c.rels {
		dr := diskRel{
			Name: r.Name, Parent: r.Parent, Children: r.Children, Role: r.Role,
			FKChildCols: r.FKChildCols, ConnectTable: r.ConnectTable,
			ConnectParentCols: r.ConnectParentCols, ConnectChildCols: r.ConnectChildCols,
		}
		parent, _ := c.Component(r.Parent)
		childOrd := make(map[string]int)
		for _, ch := range r.Children {
			comp, _ := c.Component(ch)
			childOrd[comp.Name] = compOrd[comp.Name]
		}
		for _, p := range parent.Objects() {
			for _, k := range p.Children(r.Name) {
				if k.deleted {
					continue
				}
				dr.ParentIdx = append(dr.ParentIdx, objIndex[p])
				dr.ChildComp = append(dr.ChildComp, compOrd[k.comp.Name])
				dr.ChildIdx = append(dr.ChildIdx, objIndex[k])
			}
		}
		d.Rels = append(d.Rels, dr)
	}
	return gob.NewEncoder(w).Encode(&d)
}

// Load reads a cache previously written with Save, re-swizzling the
// connections into pointers.
func Load(r io.Reader) (*Cache, error) {
	var d diskCache
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("cocache: load: %w", err)
	}
	c := &Cache{
		compByKey: make(map[string]*Component),
		relByKey:  make(map[string]*Relationship),
	}
	byOrd := make([]*Component, len(d.Components))
	for i, dc := range d.Components {
		comp := &Component{
			Name: dc.Name, ColNames: dc.ColNames, ColTypes: dc.ColTypes,
			KeyCols: dc.KeyCols, BaseTable: dc.BaseTable, BaseCols: dc.BaseCols,
			byKey: make(map[string]*Object),
			cols:  make(map[string]int),
		}
		for ord, name := range dc.ColNames {
			if _, dup := comp.cols[upper(name)]; !dup {
				comp.cols[upper(name)] = ord
			}
		}
		for _, row := range dc.Rows {
			obj := &Object{
				comp: comp, Row: row,
				children: make(map[string][]*Object),
				parents:  make(map[string][]*Object),
			}
			comp.objs = append(comp.objs, obj)
			comp.byKey[row.Key(comp.KeyCols)] = obj
			c.Stats.Objects++
		}
		byOrd[i] = comp
		c.comps = append(c.comps, comp)
		c.compByKey[upper(dc.Name)] = comp
	}
	for _, dr := range d.Rels {
		rel := &Relationship{
			Name: dr.Name, Parent: dr.Parent, Children: dr.Children, Role: dr.Role,
			FKChildCols: dr.FKChildCols, ConnectTable: dr.ConnectTable,
			ConnectParentCols: dr.ConnectParentCols, ConnectChildCols: dr.ConnectChildCols,
		}
		parent, ok := c.compByKey[upper(dr.Parent)]
		if !ok {
			return nil, fmt.Errorf("cocache: load: relationship %s references unknown parent %s", dr.Name, dr.Parent)
		}
		relKey := upper(dr.Name)
		for i := range dr.ParentIdx {
			if dr.ParentIdx[i] >= len(parent.objs) || dr.ChildComp[i] >= len(byOrd) {
				return nil, fmt.Errorf("cocache: load: relationship %s has out-of-range edge", dr.Name)
			}
			p := parent.objs[dr.ParentIdx[i]]
			cc := byOrd[dr.ChildComp[i]]
			if dr.ChildIdx[i] >= len(cc.objs) {
				return nil, fmt.Errorf("cocache: load: relationship %s has out-of-range child", dr.Name)
			}
			k := cc.objs[dr.ChildIdx[i]]
			p.children[relKey] = append(p.children[relKey], k)
			k.parents[relKey] = append(k.parents[relKey], p)
			rel.connections++
			c.Stats.Connections++
		}
		c.rels = append(c.rels, rel)
		c.relByKey[relKey] = rel
	}
	for _, sql := range d.Pending {
		c.log = append(c.log, writeOp{sql: sql})
	}
	return c, nil
}

func upper(s string) string {
	b := []byte(s)
	for i := range b {
		if 'a' <= b[i] && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}
