package cocache

import (
	"fmt"
	"strings"

	"xnf/internal/types"
)

// writeOp is one pending write-back operation, recorded in arrival order
// so SaveChanges replays user intent faithfully.
type writeOp struct {
	sql string
}

// The update operators of Sect. 2. Updates are applied locally (the cache
// is on the client) and recorded; SaveChanges ships them back to the
// server as SQL DML — node updates become base-table updates, connect and
// disconnect become foreign-key updates or connect-table inserts/deletes.

// Set updates a column of a cached object locally and queues the
// corresponding base-table UPDATE. The component must be updatable (a
// selection/projection of a single base table whose key is its primary
// key).
func (c *Cache) Set(o *Object, col string, v types.Value) error {
	comp := o.comp
	ord, ok := comp.colIndex(col)
	if !ok {
		return fmt.Errorf("cocache: component %s has no column %s", comp.Name, col)
	}
	if comp.BaseTable == "" || ord >= len(comp.BaseCols) || comp.BaseCols[ord] == "" {
		return fmt.Errorf("cocache: component %s is not updatable on %s (rich view)", comp.Name, col)
	}
	if !o.dirty {
		o.origRow = o.Row.Clone()
		o.dirty = true
	}
	newRow := o.Row.Clone()
	newRow[ord] = v
	oldKey := o.Key()
	o.Row = newRow
	if o.Key() != oldKey {
		// Identity columns may be updated; keep the key index coherent.
		delete(comp.byKey, oldKey)
		comp.byKey[o.Key()] = o
	}
	c.log = append(c.log, writeOp{sql: fmt.Sprintf(
		"UPDATE %s SET %s = %s WHERE %s",
		comp.BaseTable, comp.BaseCols[ord], v.SQLLiteral(), keyPredicate(comp, o.origRow),
	)})
	return nil
}

// Insert adds a new object to a component locally and queues the INSERT.
// The row must supply every shipped column.
func (c *Cache) Insert(component string, row types.Row) (*Object, error) {
	comp, ok := c.Component(component)
	if !ok {
		return nil, fmt.Errorf("cocache: unknown component %s", component)
	}
	if comp.BaseTable == "" {
		return nil, fmt.Errorf("cocache: component %s is not updatable (rich view)", comp.Name)
	}
	if len(row) != len(comp.ColNames) {
		return nil, fmt.Errorf("cocache: component %s expects %d columns, got %d", comp.Name, len(comp.ColNames), len(row))
	}
	key := row.Key(comp.KeyCols)
	if _, dup := comp.byKey[key]; dup {
		return nil, fmt.Errorf("cocache: component %s already holds an object with key %s", comp.Name, key)
	}
	obj := &Object{
		comp: comp, Row: row.Clone(),
		children: make(map[string][]*Object),
		parents:  make(map[string][]*Object),
		created:  true,
	}
	comp.objs = append(comp.objs, obj)
	comp.byKey[key] = obj

	var cols, vals []string
	for ord, base := range comp.BaseCols {
		if base == "" {
			continue
		}
		cols = append(cols, base)
		vals = append(vals, row[ord].SQLLiteral())
	}
	c.log = append(c.log, writeOp{sql: fmt.Sprintf(
		"INSERT INTO %s (%s) VALUES (%s)",
		comp.BaseTable, strings.Join(cols, ", "), strings.Join(vals, ", "),
	)})
	return obj, nil
}

// Delete removes an object locally (and its connections) and queues the
// DELETE.
func (c *Cache) Delete(o *Object) error {
	comp := o.comp
	if comp.BaseTable == "" {
		return fmt.Errorf("cocache: component %s is not updatable (rich view)", comp.Name)
	}
	if o.deleted {
		return fmt.Errorf("cocache: object already deleted")
	}
	o.deleted = true
	delete(comp.byKey, o.Key())
	for rel, kids := range o.children {
		for _, k := range kids {
			k.parents[rel] = removeObj(k.parents[rel], o)
		}
	}
	for rel, ps := range o.parents {
		for _, p := range ps {
			p.children[rel] = removeObj(p.children[rel], o)
		}
	}
	c.log = append(c.log, writeOp{sql: fmt.Sprintf(
		"DELETE FROM %s WHERE %s", comp.BaseTable, keyPredicate(comp, o.Row),
	)})
	return nil
}

func removeObj(list []*Object, o *Object) []*Object {
	out := list[:0]
	for _, x := range list {
		if x != o {
			out = append(out, x)
		}
	}
	return out
}

// Connect links child under parent through the named relationship locally
// and queues the write-back: a foreign-key update for FK relationships, a
// connect-table insert for USING relationships.
func (c *Cache) Connect(rel string, parent, child *Object) error {
	r, ok := c.Relationship(rel)
	if !ok {
		return fmt.Errorf("cocache: unknown relationship %s", rel)
	}
	relKey := strings.ToUpper(r.Name)
	switch {
	case len(r.FKChildCols) > 0:
		// Update the child's FK columns to the parent key.
		pkey := parentKeyValues(parent)
		for i, col := range r.FKChildCols {
			if err := c.Set(child, col, pkey[i]); err != nil {
				return err
			}
		}
	case r.ConnectTable != "":
		pkey := parentKeyValues(parent)
		ckey := parentKeyValues(child)
		var cols, vals []string
		for i, col := range r.ConnectParentCols {
			cols = append(cols, col)
			vals = append(vals, pkey[i].SQLLiteral())
		}
		for i, col := range r.ConnectChildCols {
			cols = append(cols, col)
			vals = append(vals, ckey[i].SQLLiteral())
		}
		c.log = append(c.log, writeOp{sql: fmt.Sprintf(
			"INSERT INTO %s (%s) VALUES (%s)",
			r.ConnectTable, strings.Join(cols, ", "), strings.Join(vals, ", "),
		)})
	default:
		return fmt.Errorf("cocache: relationship %s is not updatable (predicate-defined)", r.Name)
	}
	parent.children[relKey] = append(parent.children[relKey], child)
	child.parents[relKey] = append(child.parents[relKey], parent)
	r.connections++
	return nil
}

// Disconnect removes the connection between parent and child locally and
// queues the write-back (FK set to NULL, or connect-table delete).
func (c *Cache) Disconnect(rel string, parent, child *Object) error {
	r, ok := c.Relationship(rel)
	if !ok {
		return fmt.Errorf("cocache: unknown relationship %s", rel)
	}
	relKey := strings.ToUpper(r.Name)
	connected := false
	for _, k := range parent.children[relKey] {
		if k == child {
			connected = true
		}
	}
	if !connected {
		return fmt.Errorf("cocache: objects are not connected through %s", r.Name)
	}
	switch {
	case len(r.FKChildCols) > 0:
		for _, col := range r.FKChildCols {
			if err := c.Set(child, col, types.Null); err != nil {
				return err
			}
		}
	case r.ConnectTable != "":
		pkey := parentKeyValues(parent)
		ckey := parentKeyValues(child)
		var preds []string
		for i, col := range r.ConnectParentCols {
			preds = append(preds, fmt.Sprintf("%s = %s", col, pkey[i].SQLLiteral()))
		}
		for i, col := range r.ConnectChildCols {
			preds = append(preds, fmt.Sprintf("%s = %s", col, ckey[i].SQLLiteral()))
		}
		c.log = append(c.log, writeOp{sql: fmt.Sprintf(
			"DELETE FROM %s WHERE %s", r.ConnectTable, strings.Join(preds, " AND "),
		)})
	default:
		return fmt.Errorf("cocache: relationship %s is not updatable (predicate-defined)", r.Name)
	}
	parent.children[relKey] = removeObj(parent.children[relKey], child)
	child.parents[relKey] = removeObj(child.parents[relKey], parent)
	r.connections--
	return nil
}

// Pending returns the queued write-back statements.
func (c *Cache) Pending() []string {
	out := make([]string, len(c.log))
	for i, op := range c.log {
		out[i] = op.sql
	}
	return out
}

// SaveChanges ships the queued operations through apply (typically the
// server's Exec) and clears the log on full success.
func (c *Cache) SaveChanges(apply func(sql string) error) error {
	for i, op := range c.log {
		if err := apply(op.sql); err != nil {
			c.log = c.log[i:]
			return fmt.Errorf("cocache: write-back failed at %q: %w", op.sql, err)
		}
	}
	c.log = nil
	for _, comp := range c.comps {
		for _, o := range comp.objs {
			o.dirty = false
			o.created = false
			o.origRow = nil
		}
	}
	return nil
}

// keyPredicate renders the identity predicate of a row against the base
// table (using the pre-update image for dirty objects).
func keyPredicate(comp *Component, row types.Row) string {
	var preds []string
	for _, ord := range comp.KeyCols {
		preds = append(preds, fmt.Sprintf("%s = %s", comp.BaseCols[ord], row[ord].SQLLiteral()))
	}
	return strings.Join(preds, " AND ")
}

// parentKeyValues extracts an object's key values.
func parentKeyValues(o *Object) types.Row {
	out := make(types.Row, len(o.comp.KeyCols))
	for i, ord := range o.comp.KeyCols {
		out[i] = o.Row[ord]
	}
	return out
}
