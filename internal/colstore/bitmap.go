package colstore

import "math/bits"

// Bitmap is a fixed-capacity bit set sized for one segment (SegRows bits).
type Bitmap []uint64

// newBitmap returns an all-zero bitmap with capacity for n bits.
func newBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// clone returns an independent copy of the bitmap.
func (b Bitmap) clone() Bitmap {
	out := make(Bitmap, len(b))
	copy(out, b)
	return out
}
