package colstore

import (
	"fmt"
	"testing"

	"xnf/internal/types"
)

func intRow(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestAppendGetAcrossSegments(t *testing.T) {
	tb := New([]types.Type{types.IntType, types.StringType})
	n := SegRows*2 + 100
	for i := 0; i < n; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("s%d", i))}
		if i%7 == 0 {
			row[1] = types.Null
		}
		slot := tb.Append(row)
		if slot != i {
			t.Fatalf("slot %d, want %d", slot, i)
		}
	}
	if tb.Segments() != 3 {
		t.Fatalf("segments = %d, want 3", tb.Segments())
	}
	if tb.Slots() != n {
		t.Fatalf("slots = %d, want %d", tb.Slots(), n)
	}
	for _, i := range []int{0, 1, SegRows - 1, SegRows, 2*SegRows + 99} {
		row, ok := tb.Get(i)
		if !ok {
			t.Fatalf("slot %d not found", i)
		}
		if row[0].I != int64(i) {
			t.Fatalf("slot %d holds %v", i, row)
		}
		if i%7 == 0 {
			if !row[1].IsNull() {
				t.Fatalf("slot %d: expected NULL, got %v", i, row[1])
			}
		} else if row[1].S != fmt.Sprintf("s%d", i) {
			t.Fatalf("slot %d holds %v", i, row)
		}
	}
	if _, ok := tb.Get(n); ok {
		t.Fatal("out-of-range slot resolved")
	}
}

func TestDeleteRestoreSetRoundTrip(t *testing.T) {
	tb := New([]types.Type{types.IntType})
	for i := 0; i < 10; i++ {
		tb.Append(intRow(int64(i)))
	}
	tb.Delete(4)
	if _, ok := tb.Get(4); ok {
		t.Fatal("deleted slot still live")
	}
	if tb.Live(4) || !tb.Live(5) {
		t.Fatal("liveness wrong after delete")
	}
	tb.Restore(4, intRow(44))
	row, ok := tb.Get(4)
	if !ok || row[0].I != 44 {
		t.Fatalf("restored slot = %v (ok=%v)", row, ok)
	}
	tb.Set(4, intRow(45))
	row, _ = tb.Get(4)
	if row[0].I != 45 {
		t.Fatalf("set slot = %v", row)
	}
	// Restore past the end pads with tombstones (rollback of a delete after
	// the heap shrank through a representation switch).
	tb.Restore(25, intRow(7))
	if tb.Slots() != 26 {
		t.Fatalf("slots = %d, want 26", tb.Slots())
	}
	if _, ok := tb.Get(20); ok {
		t.Fatal("padding slot resolved as live")
	}
	row, ok = tb.Get(25)
	if !ok || row[0].I != 7 {
		t.Fatalf("restored tail slot = %v (ok=%v)", row, ok)
	}
}

func TestFromRowsPreservesHoles(t *testing.T) {
	rows := []types.Row{intRow(0), nil, intRow(2), nil, intRow(4)}
	tb := FromRows([]types.Type{types.IntType}, rows)
	if tb.Slots() != 5 {
		t.Fatalf("slots = %d", tb.Slots())
	}
	for i, r := range rows {
		got, ok := tb.Get(i)
		if (r == nil) == ok {
			t.Fatalf("slot %d liveness mismatch", i)
		}
		if r != nil && got[0].I != r[0].I {
			t.Fatalf("slot %d = %v, want %v", i, got, r)
		}
	}
	views := tb.Views()
	if len(views) != 1 {
		t.Fatalf("views = %d", len(views))
	}
	if views[0].Rows() != 3 || len(views[0].Sel) != 3 {
		t.Fatalf("view rows = %d sel = %v", views[0].Rows(), views[0].Sel)
	}
}

func TestViewSnapshotSemantics(t *testing.T) {
	tb := New([]types.Type{types.IntType})
	for i := 0; i < SegRows; i++ { // exactly one full segment → cached view
		tb.Append(intRow(int64(i)))
	}
	v1 := tb.Views()
	v2 := tb.Views()
	if &v1[0].Cols[0][0] != &v2[0].Cols[0][0] {
		t.Fatal("full unchanged segment should reuse its cached view")
	}
	// A mutation must not show through the already-built view…
	tb.Set(10, intRow(999))
	if v1[0].Cols[0][10].I != 10 {
		t.Fatal("mutation leaked into an existing view")
	}
	// …but must invalidate the cache for the next scan.
	v3 := tb.Views()
	if v3[0].Cols[0][10].I != 999 {
		t.Fatal("stale view served after mutation")
	}
	tb.Delete(20)
	v4 := tb.Views()
	if v4[0].Rows() != SegRows-1 {
		t.Fatalf("view rows = %d after delete", v4[0].Rows())
	}
}

func TestBitmap(t *testing.T) {
	b := newBitmap(SegRows)
	for _, i := range []int{0, 63, 64, 4095} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("count = %d", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 3 {
		t.Fatal("clear failed")
	}
}

func TestAutoPromoteThreshold(t *testing.T) {
	prev := SetAutoPromoteRows(1000)
	defer SetAutoPromoteRows(prev)
	if AutoPromote(999) {
		t.Fatal("promoted below threshold")
	}
	if !AutoPromote(1000) {
		t.Fatal("did not promote at threshold")
	}
	SetAutoPromoteRows(0)
	if AutoPromote(1 << 30) {
		t.Fatal("promotion enabled while disabled")
	}
}
