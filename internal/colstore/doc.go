// Package colstore is the column-major table representation that lives
// beneath storage.TableData: the storage-engine analog of the batch
// executor's column-at-a-time evaluation, so hot analytical tables feed
// vexec pipelines without a per-scan row→column transpose.
//
// # Layout
//
// A Table is a sequence of fixed-capacity segments of SegRows (4096) slots.
// Slot numbers are global and stable: slot s lives at offset s%SegRows of
// segment s/SegRows, so the storage layer's RIDs survive a row↔column
// representation switch and secondary indexes keep working unchanged.
//
// Each segment stores one typed vector per column — []int64 for INTEGER and
// BOOLEAN, []float64 for FLOAT, []string for VARCHAR — plus one null Bitmap
// per column (bit set = SQL NULL; the typed slot then holds the zero value)
// and one deleted Bitmap for the whole segment (bit set = the slot is a
// hole left by DELETE, or padding created by a rollback restore past the
// end of the heap). A live row therefore never materializes a types.Value
// until something reads it.
//
// # Views and zero-copy scans
//
// Scans do not gather rows. Segment.view materializes each column of a
// segment into a []types.Value exactly once per segment version and hands
// out View{Cols, Sel, N}: the batch executor slices those vectors directly
// into Batch columns (zero copy, no per-scan work beyond a pointer copy).
// Views are immutable once built; every mutation bumps the segment version
// so the next scan rebuilds. Full segments (n == SegRows) cache their view
// in an atomic pointer — the common case for loaded analytical tables,
// where repeated scans touch no per-row code at all. The mutable tail
// segment rebuilds its view per scan, which bounds staleness without
// locking writers out.
//
// Sel lists the live slot offsets when the segment has holes and is nil
// when every slot is live, matching the batch engine's selection-vector
// convention.
//
// # Promotion
//
// Tables switch representation explicitly (ALTER TABLE … SET STORAGE
// COLUMN/ROW) or automatically: ANALYZE consults AutoPromote with the fresh
// live row count and promotes row tables that crossed the configured
// threshold (SetAutoPromoteRows; 0, the default, disables the heuristic).
package colstore
