// Package colstore is the column-major table representation that lives
// beneath storage.TableData: the storage-engine analog of the batch
// executor's column-at-a-time evaluation, so hot analytical tables feed
// vexec pipelines without a per-scan row→column transpose.
//
// # Layout
//
// A Table is a sequence of fixed-capacity segments of SegRows (4096) slots.
// Slot numbers are global and stable: slot s lives at offset s%SegRows of
// segment s/SegRows, so the storage layer's RIDs survive a row↔column
// representation switch and secondary indexes keep working unchanged.
//
// Each segment stores one typed vector per column — []int64 for INTEGER and
// BOOLEAN, []float64 for FLOAT, []string for VARCHAR — plus one null Bitmap
// per column (bit set = SQL NULL; the typed slot then holds the zero value)
// and one deleted Bitmap for the whole segment (bit set = the slot is a
// hole left by DELETE, or padding created by a rollback restore past the
// end of the heap). A live row therefore never materializes a types.Value
// until something reads it.
//
// # Views and zero-copy scans
//
// Scans do not gather rows. The primary scan interface is the typed view:
// TypedViews snapshots each segment as TypedCol payload arrays plus null
// bitmaps (a copy of the raw arrays — never boxed), and the batch engine's
// typed kernels run comparisons, arithmetic and aggregation directly over
// them, boxing a types.Value only at projection/row boundaries. The legacy
// boxed View (each column materialized as []types.Value) remains as the
// measurement baseline and for callers that want boxed vectors up front.
//
// Views of either kind are immutable once built; every mutation bumps the
// segment version so the next scan rebuilds. Full segments (n == SegRows)
// cache both snapshots in atomic pointers — the common case for loaded
// analytical tables, where repeated scans touch no per-row code at all.
// The mutable tail segment rebuilds its view per scan, which bounds
// staleness without locking writers out.
//
// Sel lists the live slot offsets when the segment has holes and is nil
// when every slot is live, matching the batch engine's selection-vector
// convention. Segments whose every slot is deleted are skipped outright.
//
// # Zone maps and segment pruning
//
// Every segment keeps a per-column min/max summary (zone) of its non-NULL
// values. Writes widen the bounds incrementally — they never shrink on
// UPDATE or DELETE, so the zones stay conservative — and ANALYZE
// (Table.Maintain) recomputes them exactly. TypedViews accepts ColBound
// conjuncts derived from `col <op> constant` scan predicates and skips
// segments whose zones prove no row can qualify, before the segment is
// even decoded; an all-NULL (or empty) column prunes under any comparison,
// and a NULL comparison constant prunes everything. Pruning is refused for
// type pairings whose comparison could raise an error, so it can only skip
// work, never change semantics.
//
// # Compaction
//
// ANALYZE also hollows segments whose every slot is deleted: their payload
// vectors are freed while the slot space (and the deleted bitmap) is
// preserved, so RIDs, secondary indexes and undo-log restores stay valid.
// A hollow segment re-materializes zeroed storage on demand when a
// rollback restore or a tail append writes into it.
//
// # Promotion
//
// Tables switch representation explicitly (ALTER TABLE … SET STORAGE
// COLUMN/ROW) or automatically: ANALYZE consults AutoPromote with the fresh
// live row count and promotes row tables that crossed the configured
// threshold (SetAutoPromoteRows; 0, the default, disables the heuristic).
package colstore
