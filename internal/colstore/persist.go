package colstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"xnf/internal/enc"
	"xnf/internal/types"
)

// Checkpoint serialization of a column-major heap. The encoding is
// slot-exact: deleted slots, hollow segments and physical slot order all
// survive a round trip, so RIDs and secondary indexes built over the
// decoded heap are identical to the originals. Integrity is the
// checkpoint file's job (CRC over the whole payload in internal/wal);
// this codec still validates every length it reads so a corrupt prefix
// fails cleanly instead of allocating wildly.

// EncodeTable appends the binary encoding of t to buf.
func EncodeTable(buf []byte, t *Table) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t.typs)))
	for _, typ := range t.typs {
		buf = append(buf, byte(typ))
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.segs)))
	for _, seg := range t.segs {
		buf = encodeSegment(buf, seg)
	}
	return buf
}

// Segment header flags. Old (pre-encoding) images wrote a bare 0/1 hollow
// byte, which decodes identically under the flag reading — image version 2
// checkpoints load without migration.
const (
	segHollow  = 1 << 0
	segEncoded = 1 << 1 // at least one column persisted in compressed form
)

// Per-column payload kinds of encoded segments.
const (
	colRaw  = 0
	colDict = 1
	colPack = 2
)

func encodeSegment(buf []byte, s *segment) []byte {
	buf = binary.AppendUvarint(buf, uint64(s.n))
	buf = binary.AppendUvarint(buf, uint64(s.dead))
	flags := byte(0)
	if s.hollow {
		flags |= segHollow
	}
	encoded := false
	for c := range s.cols {
		if s.cols[c].encoded() {
			encoded = true
		}
	}
	if encoded {
		flags |= segEncoded
	}
	buf = append(buf, flags)
	buf = appendBitmap(buf, s.deleted, s.n)
	if s.hollow {
		return buf
	}
	for c := range s.cols {
		buf = appendBitmap(buf, s.nulls[c], s.n)
		vec := &s.cols[c]
		if encoded {
			// Encoded segments prefix every column with its payload kind and
			// persist compressed payloads verbatim — smaller images, and
			// recovery re-publishes the encoded form without re-analyzing.
			switch {
			case vec.dict != nil:
				buf = append(buf, colDict)
				buf = enc.AppendStringDict(buf, vec.dict)
				continue
			case vec.pack != nil:
				buf = append(buf, colPack)
				buf = enc.AppendIntPack(buf, vec.pack)
				continue
			default:
				buf = append(buf, colRaw)
			}
		}
		switch vec.typ {
		case types.FloatType:
			for i := 0; i < s.n; i++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(vec.floats[i]))
			}
		case types.StringType:
			for i := 0; i < s.n; i++ {
				buf = binary.AppendUvarint(buf, uint64(len(vec.strs[i])))
				buf = append(buf, vec.strs[i]...)
			}
		default:
			for i := 0; i < s.n; i++ {
				buf = binary.AppendVarint(buf, vec.ints[i])
			}
		}
	}
	return buf
}

// DecodeTable decodes a heap encoded by EncodeTable, returning the table
// and the remaining bytes. Zone maps (including live null counts) are
// recomputed exactly rather than persisted.
func DecodeTable(buf []byte) (*Table, []byte, error) {
	nc, k := binary.Uvarint(buf)
	if k <= 0 || nc > uint64(len(buf[k:])) {
		return nil, nil, fmt.Errorf("colstore: bad column count")
	}
	buf = buf[k:]
	typs := make([]types.Type, nc)
	for i := range typs {
		typs[i] = types.Type(buf[i])
	}
	buf = buf[nc:]
	ns, k := binary.Uvarint(buf)
	if k <= 0 || ns > uint64(len(buf[k:]))+1 {
		return nil, nil, fmt.Errorf("colstore: bad segment count")
	}
	buf = buf[k:]
	t := New(typs)
	t.segs = make([]*segment, 0, ns)
	var err error
	for i := uint64(0); i < ns; i++ {
		var seg *segment
		if seg, buf, err = decodeSegment(typs, buf); err != nil {
			return nil, nil, err
		}
		seg.recomputeZones()
		t.segs = append(t.segs, seg)
	}
	return t, buf, nil
}

func decodeSegment(typs []types.Type, buf []byte) (*segment, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || n > SegRows {
		return nil, nil, fmt.Errorf("colstore: bad segment size")
	}
	buf = buf[k:]
	dead, k := binary.Uvarint(buf)
	if k <= 0 || dead > n {
		return nil, nil, fmt.Errorf("colstore: bad dead count")
	}
	buf = buf[k:]
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("colstore: short segment header")
	}
	flags := buf[0]
	if flags&^(segHollow|segEncoded) != 0 {
		return nil, nil, fmt.Errorf("colstore: unknown segment flags %#x", flags)
	}
	hollow := flags&segHollow != 0
	encoded := flags&segEncoded != 0
	buf = buf[1:]

	s := newSegment(typs)
	s.n = int(n)
	s.dead = int(dead)
	var err error
	if s.deleted, buf, err = decodeBitmap(buf, int(n)); err != nil {
		return nil, nil, err
	}
	if hollow {
		// hollowOut leaves every null bit of the tombstoned slots set and
		// the payload vectors nil; reproduce that state exactly.
		if s.dead != s.n {
			return nil, nil, fmt.Errorf("colstore: hollow segment with live slots")
		}
		for c := range s.nulls {
			for i := 0; i < s.n; i++ {
				s.nulls[c].Set(i)
			}
			s.cols[c].ints, s.cols[c].floats, s.cols[c].strs = nil, nil, nil
		}
		s.hollow = true
		return s, buf, nil
	}
	for c := range s.cols {
		if s.nulls[c], buf, err = decodeBitmap(buf, int(n)); err != nil {
			return nil, nil, err
		}
		vec := &s.cols[c]
		if encoded {
			if len(buf) < 1 {
				return nil, nil, fmt.Errorf("colstore: short column kind")
			}
			kind := buf[0]
			buf = buf[1:]
			switch kind {
			case colDict:
				if vec.typ != types.StringType {
					return nil, nil, fmt.Errorf("colstore: dictionary payload on non-string column")
				}
				var d *enc.StringDict
				if d, buf, err = enc.DecodeStringDict(buf); err != nil {
					return nil, nil, err
				}
				if d.Len() != int(n) {
					return nil, nil, fmt.Errorf("colstore: dictionary covers %d of %d slots", d.Len(), n)
				}
				vec.dict, vec.strs = d, nil
				continue
			case colPack:
				if vec.typ == types.StringType || vec.typ == types.FloatType {
					return nil, nil, fmt.Errorf("colstore: packed payload on non-int column")
				}
				var p *enc.IntPack
				if p, buf, err = enc.DecodeIntPack(buf); err != nil {
					return nil, nil, err
				}
				if p.Len() != int(n) {
					return nil, nil, fmt.Errorf("colstore: packed column covers %d of %d slots", p.Len(), n)
				}
				vec.pack, vec.ints = p, nil
				continue
			case colRaw:
			default:
				return nil, nil, fmt.Errorf("colstore: unknown column kind %d", kind)
			}
		}
		switch vec.typ {
		case types.FloatType:
			vec.floats = make([]float64, n, SegRows)
			for i := 0; i < int(n); i++ {
				if len(buf) < 8 {
					return nil, nil, fmt.Errorf("colstore: short float payload")
				}
				vec.floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
				buf = buf[8:]
			}
		case types.StringType:
			vec.strs = make([]string, n, SegRows)
			for i := 0; i < int(n); i++ {
				sl, k := binary.Uvarint(buf)
				if k <= 0 || sl > uint64(len(buf[k:])) {
					return nil, nil, fmt.Errorf("colstore: bad string payload")
				}
				vec.strs[i] = string(buf[k : k+int(sl)])
				buf = buf[k+int(sl):]
			}
		default:
			vec.ints = make([]int64, n, SegRows)
			for i := 0; i < int(n); i++ {
				v, k := binary.Varint(buf)
				if k <= 0 {
					return nil, nil, fmt.Errorf("colstore: bad int payload")
				}
				vec.ints[i] = v
				buf = buf[k:]
			}
		}
	}
	return s, buf, nil
}

// appendBitmap encodes the words of b covering the first n slots.
func appendBitmap(buf []byte, b Bitmap, n int) []byte {
	nw := (n + 63) / 64
	buf = binary.AppendUvarint(buf, uint64(nw))
	for i := 0; i < nw; i++ {
		buf = binary.LittleEndian.AppendUint64(buf, b[i])
	}
	return buf
}

// decodeBitmap decodes a bitmap into a fresh SegRows-sized Bitmap.
func decodeBitmap(buf []byte, n int) (Bitmap, []byte, error) {
	nw, k := binary.Uvarint(buf)
	if k <= 0 || nw > uint64(SegRows/64) || int(nw) < (n+63)/64 {
		return nil, nil, fmt.Errorf("colstore: bad bitmap size")
	}
	buf = buf[k:]
	if len(buf) < int(nw)*8 {
		return nil, nil, fmt.Errorf("colstore: short bitmap")
	}
	b := newBitmap(SegRows)
	for i := 0; i < int(nw); i++ {
		b[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return b, buf[nw*8:], nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}
