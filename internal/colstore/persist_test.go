package colstore

import (
	"fmt"
	"testing"

	"xnf/internal/types"
)

// buildMessy returns a table exercising every persisted shape: multiple
// segments, NULLs, tombstones, revived slots and a hollowed-out segment.
func buildMessy() *Table {
	t := New([]types.Type{types.IntType, types.FloatType, types.StringType, types.BoolType})
	n := 2*SegRows + 500
	for i := 0; i < n; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(float64(i) / 3),
			types.NewString(fmt.Sprintf("s%d", i%37)),
			types.NewBool(i%2 == 0),
		}
		if i%5 == 0 {
			row[1] = types.Null
		}
		if i%11 == 0 {
			row[2] = types.Null
		}
		t.Append(row)
	}
	// Hollow out segment 0, scatter deletes in segment 1, revive a slot.
	for i := 0; i < SegRows; i++ {
		t.Delete(i)
	}
	t.Maintain()
	for i := SegRows; i < SegRows+200; i += 3 {
		t.Delete(i)
	}
	t.Restore(SegRows+3, types.Row{types.NewInt(-1), types.Null, types.NewString("revived"), types.NewBool(false)})
	return t
}

func tableDump(t *Table) string {
	var out string
	t.Scan(func(slot int, row types.Row) bool {
		out += fmt.Sprintf("%d:%s\n", slot, row.String())
		return true
	})
	return out
}

// TestEncodeDecodeTable round-trips a messy table through the checkpoint
// codec and checks contents, slot numbering, zone maps (via pruning
// behavior) and null counts all survive.
func TestEncodeDecodeTable(t *testing.T) {
	src := buildMessy()
	buf := EncodeTable(nil, src)
	got, rest, err := DecodeTable(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if got.Slots() != src.Slots() || got.Segments() != src.Segments() {
		t.Fatalf("shape: %d/%d slots, %d/%d segments", got.Slots(), src.Slots(), got.Segments(), src.Segments())
	}
	if got.HollowSegments() != src.HollowSegments() {
		t.Fatalf("hollow: %d vs %d", got.HollowSegments(), src.HollowSegments())
	}
	if tableDump(got) != tableDump(src) {
		t.Fatal("decoded table contents differ from source")
	}
	// Zone maps must be rebuilt: the same bounds must prune the same
	// segments on both sides.
	for _, b := range [][]ColBound{
		{{Col: 0, Lo: types.NewInt(int64(2*SegRows + 100)), HasLo: true}},
		{{Col: 1, NullOnly: true}},
		{{Col: 1, NotNull: true}},
		{{Col: 2, NullOnly: true}},
	} {
		_, p1 := src.TypedViews(b)
		_, p2 := got.TypedViews(b)
		if p1 != p2 {
			t.Errorf("bounds %+v: source prunes %d, decoded prunes %d", b, p1, p2)
		}
	}
	// The decoded table must accept further writes.
	slot := got.Append(types.Row{types.NewInt(9999), types.Null, types.Null, types.NewBool(true)})
	if row, ok := got.Get(slot); !ok || row[0].I != 9999 {
		t.Fatalf("append after decode: %v %v", row, ok)
	}
}

// TestDecodeTableRejectsCorruption flips every byte of a small encoded
// table and asserts the decoder fails cleanly or yields a structurally
// valid table — never panics.
func TestDecodeTableRejectsCorruption(t *testing.T) {
	src := New([]types.Type{types.IntType, types.StringType})
	for i := 0; i < 100; i++ {
		src.Append(types.Row{types.NewInt(int64(i)), types.NewString("x")})
	}
	buf := EncodeTable(nil, src)
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x55
		tab, _, err := DecodeTable(bad)
		if err != nil {
			continue
		}
		// Structurally valid: scanning must not panic.
		tab.Scan(func(int, types.Row) bool { return true })
	}
	for n := 0; n < len(buf); n += 7 {
		if _, _, err := DecodeTable(buf[:n]); err == nil && n < len(buf) {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
}
