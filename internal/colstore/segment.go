package colstore

import (
	"sync/atomic"

	"xnf/internal/enc"
	"xnf/internal/types"
)

// SegRows is the slot capacity of one segment: large enough that a segment
// view amortizes over several executor batches, small enough that one
// segment is a natural morsel for parallel scans.
const SegRows = 4096

// colVec is one column of one segment: a typed vector selected by the
// column's declared type. INTEGER and BOOLEAN share the int64 payload
// (exactly like types.Value), FLOAT uses float64, VARCHAR uses string.
// NULLs live in the segment's per-column bitmap; the typed slot of a NULL
// holds the zero value.
//
// A column of a full, Maintain'd segment may instead hold a compressed
// encoding — a sorted string dictionary or a frame-of-reference packed int
// vector — with the corresponding raw slice nil. Encoded payloads are
// immutable; any in-place write first rebuilds the raw vector (unencode).
type colVec struct {
	typ    types.Type
	ints   []int64
	floats []float64
	strs   []string

	dict *enc.StringDict
	pack *enc.IntPack
}

// encoded reports whether the column holds a compressed payload.
func (v *colVec) encoded() bool { return v.dict != nil || v.pack != nil }

func newColVec(typ types.Type) colVec {
	v := colVec{typ: typ}
	switch typ {
	case types.FloatType:
		v.floats = make([]float64, 0, SegRows)
	case types.StringType:
		v.strs = make([]string, 0, SegRows)
	default: // IntType, BoolType and anything value-coerced to them
		v.ints = make([]int64, 0, SegRows)
	}
	return v
}

// grow appends one zero slot.
func (v *colVec) grow() {
	switch v.typ {
	case types.FloatType:
		v.floats = append(v.floats, 0)
	case types.StringType:
		v.strs = append(v.strs, "")
	default:
		v.ints = append(v.ints, 0)
	}
}

// store encodes a non-NULL value into slot i. The storage layer coerces
// values to the declared column type before they reach the heap, so the
// value's runtime type matches the vector's.
func (v *colVec) store(i int, val types.Value) {
	switch v.typ {
	case types.FloatType:
		v.floats[i] = val.F
	case types.StringType:
		v.strs[i] = val.S
	default:
		v.ints[i] = val.I
	}
}

// zero clears slot i (deleted slots must not pin old strings). Encoded
// payloads are immutable and shared with published snapshots; tombstoned
// slots of an encoded column keep their codes and are masked by the
// deleted/null bitmaps instead.
func (v *colVec) zero(i int) {
	if v.encoded() {
		return
	}
	switch v.typ {
	case types.FloatType:
		v.floats[i] = 0
	case types.StringType:
		v.strs[i] = ""
	default:
		v.ints[i] = 0
	}
}

// load decodes slot i as a non-NULL value.
func (v *colVec) load(i int) types.Value {
	if v.dict != nil {
		return types.Value{T: types.StringType, S: v.dict.At(i)}
	}
	if v.pack != nil {
		return types.Value{T: v.typ, I: v.pack.At(i)}
	}
	switch v.typ {
	case types.FloatType:
		return types.Value{T: types.FloatType, F: v.floats[i]}
	case types.StringType:
		return types.Value{T: types.StringType, S: v.strs[i]}
	default:
		return types.Value{T: v.typ, I: v.ints[i]}
	}
}

// View is the scan-facing snapshot of one segment: fully decoded column
// vectors the batch executor slices with zero copy, plus the selection of
// live slots (nil when every slot of the segment is live). A View is
// immutable; mutations to the segment after the view was built are not
// visible through it (snapshot semantics, exactly like the row heap's
// Snapshot of row pointers).
type View struct {
	Cols [][]types.Value
	Sel  []int // live slot offsets; nil = all N slots live
	N    int   // physical slots covered
}

// Rows returns the live row count of the view.
func (v View) Rows() int {
	if v.Sel != nil {
		return len(v.Sel)
	}
	return v.N
}

// segment is one SegRows-slot chunk of a Table.
type segment struct {
	n       int // physical slots in use
	cols    []colVec
	nulls   []Bitmap // per column; bit set = NULL
	deleted Bitmap
	dead    int    // number of deleted slots
	version uint64 // bumped on every mutation; invalidates cached views
	hollow  bool   // all-deleted payload freed; rebuilt on demand

	// zones holds the per-column min/max summary used for scan pruning.
	// Bounds widen on every write (conservative across overwrites and
	// deletes) and are recomputed exactly by ANALYZE.
	zones []zone

	// view caches the decoded snapshot of a full segment, stamped with the
	// version it was built at. Readers build-and-publish racily (last write
	// wins — both candidates are equivalent), writers invalidate by bumping
	// version under the owning table's write lock. tview is the same cache
	// for the typed (unboxed) snapshot.
	view  atomic.Pointer[stampedView]
	tview atomic.Pointer[stampedTypedView]
}

type stampedView struct {
	version uint64
	v       View
}

type stampedTypedView struct {
	version uint64
	v       TypedView
}

func newSegment(typs []types.Type) *segment {
	s := &segment{
		cols:    make([]colVec, len(typs)),
		nulls:   make([]Bitmap, len(typs)),
		deleted: newBitmap(SegRows),
		zones:   make([]zone, len(typs)),
	}
	for i, t := range typs {
		s.cols[i] = newColVec(t)
		s.nulls[i] = newBitmap(SegRows)
	}
	return s
}

// grow extends the segment by one zero, non-deleted slot; the caller fills
// it via write or marks it deleted (rollback padding).
func (s *segment) grow() int {
	s.ensureStorage()
	i := s.n
	for c := range s.cols {
		s.cols[c].grow()
	}
	s.n++
	return i
}

// write stores row into slot i, which must exist and not be deleted (revive
// clears the tombstone and its null bits before calling write, so wasNull
// below always reflects a live slot's prior state).
func (s *segment) write(i int, row types.Row) {
	s.unencode()
	for c := range s.cols {
		wasNull := s.nulls[c].Get(i)
		if row[c].IsNull() {
			if !wasNull {
				s.zones[c].nulls++
			}
			s.nulls[c].Set(i)
			s.cols[c].zero(i)
		} else {
			if wasNull {
				s.zones[c].nulls--
			}
			s.nulls[c].Clear(i)
			s.cols[c].store(i, row[c])
			s.zones[c].widen(row[c])
		}
	}
	s.version++
}

// get decodes slot i; ok is false for deleted slots.
func (s *segment) get(i int) (types.Row, bool) {
	if i >= s.n || s.deleted.Get(i) {
		return nil, false
	}
	row := make(types.Row, len(s.cols))
	for c := range s.cols {
		if s.nulls[c].Get(i) {
			row[c] = types.Null
		} else {
			row[c] = s.cols[c].load(i)
		}
	}
	return row, true
}

// markDeleted tombstones slot i and drops its payload. The null bits it
// sets are tombstone markers, not live NULLs: any slot that was counted as
// a live NULL leaves the count here, and revive clears the bits again
// before rewriting.
func (s *segment) markDeleted(i int) {
	s.deleted.Set(i)
	s.dead++
	for c := range s.cols {
		if s.nulls[c].Get(i) {
			s.zones[c].nulls--
		}
		s.nulls[c].Set(i)
		s.cols[c].zero(i)
	}
	s.version++
}

// revive restores row into the previously deleted slot i (undo of delete).
func (s *segment) revive(i int, row types.Row) {
	s.ensureStorage()
	s.deleted.Clear(i)
	s.dead--
	// Clear the tombstone null bits so write's wasNull bookkeeping sees the
	// slot as freshly live (markDeleted already uncounted the old NULLs).
	for c := range s.nulls {
		s.nulls[c].Clear(i)
	}
	s.write(i, row) // bumps version
}

// hollowOut frees the payload of an all-deleted segment while preserving
// its slot space, so RIDs stay stable and an undo-log restore of one of its
// slots keeps working (ensureStorage rebuilds zeroed vectors on demand).
// ANALYZE-driven compaction calls it; callers hold the table's write lock.
func (s *segment) hollowOut() {
	if s.hollow || s.n == 0 || s.dead != s.n {
		return
	}
	for c := range s.cols {
		s.cols[c].ints, s.cols[c].floats, s.cols[c].strs = nil, nil, nil
		s.cols[c].dict, s.cols[c].pack = nil, nil
	}
	s.hollow = true
	s.zones = make([]zone, len(s.cols))
	s.view.Store(nil)
	s.tview.Store(nil)
	s.version++
}

// ensureStorage rebuilds the zeroed payload vectors of a hollowed segment
// before a write can land in it again (rollback restore, or appends into a
// hollow tail segment).
func (s *segment) ensureStorage() {
	if !s.hollow {
		return
	}
	for c := range s.cols {
		vec := &s.cols[c]
		switch vec.typ {
		case types.FloatType:
			vec.floats = make([]float64, s.n, SegRows)
		case types.StringType:
			vec.strs = make([]string, s.n, SegRows)
		default:
			vec.ints = make([]int64, s.n, SegRows)
		}
	}
	s.hollow = false
}

// encode compresses the eligible columns of a full, settled segment:
// strings to a sorted dictionary, ints/bools to frame-of-reference packed
// codes (enc's heuristics decide per column; floats and refused columns
// stay raw). Only full segments encode — the tail keeps taking raw DML
// writes until Maintain sees it full. NULL and tombstoned slots encode as
// code zero; they are masked by the bitmaps exactly as their raw zero
// values were. Callers hold the owning table's write lock.
func (s *segment) encode() {
	if s.hollow || s.n < SegRows || s.dead == s.n {
		return
	}
	changed := false
	for c := range s.cols {
		vec := &s.cols[c]
		if vec.encoded() {
			continue
		}
		nulls := s.nulls[c]
		skip := func(i int) bool { return nulls.Get(i) }
		switch vec.typ {
		case types.FloatType:
			// No float encoding; stays raw.
		case types.StringType:
			if d := enc.DictStrings(vec.strs, skip); d != nil {
				vec.dict, vec.strs = d, nil
				changed = true
			}
		default:
			if p := enc.PackInts(vec.ints, skip); p != nil {
				vec.pack, vec.ints = p, nil
				changed = true
			}
		}
	}
	if changed {
		s.view.Store(nil)
		s.tview.Store(nil)
		s.version++
	}
}

// unencode rebuilds raw payload vectors from any encoded columns before an
// in-place mutation. NULL and tombstoned slots come back as zero values
// (the raw invariant: deleted slots must not pin strings). Published
// snapshots keep the old immutable encoded payload; the version bump here
// invalidates the caches.
func (s *segment) unencode() {
	changed := false
	for c := range s.cols {
		vec := &s.cols[c]
		if !vec.encoded() {
			continue
		}
		nulls := s.nulls[c]
		if vec.dict != nil {
			strs := make([]string, s.n, SegRows)
			for i := 0; i < s.n; i++ {
				if !nulls.Get(i) {
					strs[i] = vec.dict.At(i)
				}
			}
			vec.strs, vec.dict = strs, nil
		} else {
			ints := make([]int64, s.n, SegRows)
			for i := 0; i < s.n; i++ {
				if !nulls.Get(i) {
					ints[i] = vec.pack.At(i)
				}
			}
			vec.ints, vec.pack = ints, nil
		}
		changed = true
	}
	if changed {
		s.view.Store(nil)
		s.tview.Store(nil)
		s.version++
	}
}

// recomputeZones rebuilds the exact per-column min/max and live null count
// over live slots (the ANALYZE pass; incremental widening only ever
// over-approximates min/max, and this re-derives the null counts from
// scratch as a self-check against drift).
func (s *segment) recomputeZones() {
	zs := make([]zone, len(s.cols))
	if !s.hollow {
		for c := range s.cols {
			vec := &s.cols[c]
			nulls := s.nulls[c]
			for i := 0; i < s.n; i++ {
				if s.deleted.Get(i) {
					continue
				}
				if nulls.Get(i) {
					zs[c].nulls++
					continue
				}
				zs[c].widen(vec.load(i))
			}
		}
	}
	s.zones = zs
}

// snapshot returns the current view of the segment, reusing the cached
// decode when the segment is full and unchanged since the cache was built.
// Callers must hold at least the owning table's read lock.
func (s *segment) snapshot() View {
	if s.n == SegRows {
		if sv := s.view.Load(); sv != nil && sv.version == s.version {
			return sv.v
		}
		v := s.decode()
		s.view.Store(&stampedView{version: s.version, v: v})
		return v
	}
	return s.decode()
}

// typedSnapshot is snapshot's unboxed counterpart: the typed payload and
// null bitmaps are copied (snapshot isolation — later in-place writes must
// not show through), never boxed. Full segments cache the copy per version,
// so steady-state scans of loaded tables touch no per-row code at all.
func (s *segment) typedSnapshot() TypedView {
	if s.n == SegRows {
		if sv := s.tview.Load(); sv != nil && sv.version == s.version {
			return sv.v
		}
		v := s.decodeTyped()
		s.tview.Store(&stampedTypedView{version: s.version, v: v})
		return v
	}
	return s.decodeTyped()
}

// decodeTyped snapshots every column of the segment in typed form.
func (s *segment) decodeTyped() TypedView {
	v := TypedView{Cols: make([]TypedCol, len(s.cols)), N: s.n}
	for c := range s.cols {
		vec := &s.cols[c]
		tc := TypedCol{Typ: vec.typ}
		switch {
		case vec.dict != nil:
			// Encoded payloads are immutable and replaced (never mutated) by
			// unencode/write, so sharing the pointer is snapshot-safe.
			tc.Dict = vec.dict
		case vec.pack != nil:
			tc.Pack = vec.pack
		case vec.typ == types.FloatType:
			tc.Floats = append([]float64(nil), vec.floats...)
		case vec.typ == types.StringType:
			tc.Strs = append([]string(nil), vec.strs...)
		default:
			tc.Ints = append([]int64(nil), vec.ints...)
		}
		if s.nulls[c].Count() > 0 {
			tc.Nulls = s.nulls[c].clone()
		}
		v.Cols[c] = tc
	}
	v.Sel = s.liveSel()
	return v
}

// liveSel returns the live slot selection, or nil when every slot is live.
func (s *segment) liveSel() []int {
	if s.dead == 0 {
		return nil
	}
	sel := make([]int, 0, s.n-s.dead)
	for i := 0; i < s.n; i++ {
		if !s.deleted.Get(i) {
			sel = append(sel, i)
		}
	}
	return sel
}

// decode materializes every column (and the live selection) of the segment.
func (s *segment) decode() View {
	v := View{Cols: make([][]types.Value, len(s.cols)), N: s.n}
	for c := range s.cols {
		out := make([]types.Value, s.n)
		vec := &s.cols[c]
		nulls := s.nulls[c]
		if vec.encoded() {
			for i := 0; i < s.n; i++ {
				if !nulls.Get(i) {
					out[i] = vec.load(i)
				}
			}
			v.Cols[c] = out
			continue
		}
		switch vec.typ {
		case types.FloatType:
			for i := 0; i < s.n; i++ {
				if !nulls.Get(i) {
					out[i] = types.Value{T: types.FloatType, F: vec.floats[i]}
				}
			}
		case types.StringType:
			for i := 0; i < s.n; i++ {
				if !nulls.Get(i) {
					out[i] = types.Value{T: types.StringType, S: vec.strs[i]}
				}
			}
		default:
			typ := vec.typ
			for i := 0; i < s.n; i++ {
				if !nulls.Get(i) {
					out[i] = types.Value{T: typ, I: vec.ints[i]}
				}
			}
		}
		v.Cols[c] = out
	}
	v.Sel = s.liveSel()
	return v
}
