package colstore

import (
	"sync/atomic"

	"xnf/internal/types"
)

// Table is the column-major heap of one table: a sequence of segments
// addressed by global slot number. It performs no locking and no schema
// validation of its own — storage.TableData owns the lock and coerces rows
// to the declared column types before they get here.
type Table struct {
	typs []types.Type
	segs []*segment
}

// New returns an empty column-major heap for columns of the given types.
func New(typs []types.Type) *Table {
	return &Table{typs: typs}
}

// FromRows builds a column-major heap from a slot array, preserving slot
// numbers: nil entries become deleted slots so existing RIDs and secondary
// indexes stay valid across a representation switch.
func FromRows(typs []types.Type, rows []types.Row) *Table {
	t := New(typs)
	for _, r := range rows {
		if r == nil {
			t.appendDeleted()
		} else {
			t.Append(r)
		}
	}
	return t
}

// Slots returns the total number of physical slots (live + deleted).
func (t *Table) Slots() int {
	if len(t.segs) == 0 {
		return 0
	}
	return (len(t.segs)-1)*SegRows + t.segs[len(t.segs)-1].n
}

// Segments returns the number of segments.
func (t *Table) Segments() int { return len(t.segs) }

// BytesResident reports the approximate heap bytes held by the table's
// column vectors: typed payload capacity plus string headers and bytes.
// Hollow segments (payload freed) contribute nothing; bitmaps and zone
// maps are negligible and ignored. Snapshot-time observability only —
// it walks every string of every VARCHAR column.
func (t *Table) BytesResident() int64 {
	var total int64
	for _, seg := range t.segs {
		if seg.hollow {
			continue
		}
		for c := range seg.cols {
			v := &seg.cols[c]
			total += int64(cap(v.ints))*8 + int64(cap(v.floats))*8
			total += int64(cap(v.strs)) * 16 // string headers
			for _, s := range v.strs {
				total += int64(len(s))
			}
			if v.dict != nil {
				total += v.dict.Bytes()
			}
			if v.pack != nil {
				total += v.pack.Bytes()
			}
		}
	}
	return total
}

// tail returns the last segment, allocating if none has free capacity.
func (t *Table) tail() *segment {
	if len(t.segs) == 0 || t.segs[len(t.segs)-1].n == SegRows {
		t.segs = append(t.segs, newSegment(t.typs))
	}
	return t.segs[len(t.segs)-1]
}

// Append stores row in a fresh slot and returns its global slot number.
func (t *Table) Append(row types.Row) int {
	seg := t.tail()
	i := seg.grow()
	seg.write(i, row)
	return (len(t.segs)-1)*SegRows + i
}

// appendDeleted extends the heap by one tombstoned slot.
func (t *Table) appendDeleted() {
	seg := t.tail()
	i := seg.grow()
	seg.deleted.Set(i)
	seg.dead++
	for c := range seg.nulls {
		seg.nulls[c].Set(i)
	}
	seg.version++
}

// locate splits a global slot number.
func (t *Table) locate(slot int) (*segment, int, bool) {
	si := slot / SegRows
	if si >= len(t.segs) {
		return nil, 0, false
	}
	return t.segs[si], slot % SegRows, true
}

// Get decodes the row at slot; ok is false for deleted or out-of-range slots.
func (t *Table) Get(slot int) (types.Row, bool) {
	if slot < 0 {
		return nil, false
	}
	seg, off, ok := t.locate(slot)
	if !ok {
		return nil, false
	}
	return seg.get(off)
}

// Live reports whether slot holds a live row, without decoding it.
func (t *Table) Live(slot int) bool {
	seg, off, ok := t.locate(slot)
	if !ok {
		return false
	}
	return off < seg.n && !seg.deleted.Get(off)
}

// Set overwrites the live row at slot.
func (t *Table) Set(slot int, row types.Row) {
	seg, off, ok := t.locate(slot)
	if !ok {
		return
	}
	seg.write(off, row)
}

// Delete tombstones the slot.
func (t *Table) Delete(slot int) {
	seg, off, ok := t.locate(slot)
	if !ok {
		return
	}
	seg.markDeleted(off)
}

// Restore revives a deleted slot with the given row, extending the heap
// with tombstoned padding if the slot lies past the end (transaction
// rollback of a delete).
func (t *Table) Restore(slot int, row types.Row) {
	for t.Slots() <= slot {
		t.appendDeleted()
	}
	seg, off, _ := t.locate(slot)
	seg.revive(off, row)
}

// Scan decodes every live row in slot order; returning false stops early.
func (t *Table) Scan(fn func(slot int, row types.Row) bool) {
	for si, seg := range t.segs {
		base := si * SegRows
		for i := 0; i < seg.n; i++ {
			if seg.deleted.Get(i) {
				continue
			}
			row, _ := seg.get(i)
			if !fn(base+i, row) {
				return
			}
		}
	}
}

// Views snapshots every segment for a boxed batch scan, skipping segments
// with no live rows. The returned views are immutable; concurrent DML after
// the call is not visible through them.
func (t *Table) Views() []View {
	out := make([]View, 0, len(t.segs))
	for _, seg := range t.segs {
		if seg.n == 0 || seg.dead == seg.n {
			continue
		}
		out = append(out, seg.snapshot())
	}
	return out
}

// TypedViews snapshots the segments for an unboxed batch scan, skipping
// segments with no live rows and — when bounds are given — segments whose
// zone maps prove no row can satisfy the scan predicate. pruned counts the
// zone-map skips (fully-deleted segments are not scans avoided by pruning
// and are not counted).
func (t *Table) TypedViews(bounds []ColBound) (views []TypedView, pruned int) {
	views = make([]TypedView, 0, len(t.segs))
	for _, seg := range t.segs {
		if seg.n == 0 || seg.dead == seg.n {
			continue
		}
		if len(bounds) > 0 && seg.prunable(t.typs, bounds) {
			pruned++
			continue
		}
		views = append(views, seg.typedSnapshot())
	}
	return views, pruned
}

// Maintain is the ANALYZE hook: it recomputes exact zone maps for every
// segment, hollows all-deleted segments — their payload vectors are
// freed while the slot space is preserved, so RIDs, secondary indexes and
// undo-log restores stay valid — and compresses eligible columns of full
// segments (dictionary strings, packed ints; DML since the last pass has
// already dropped mutated segments back to raw, so this is also the
// re-encode step). Returns the number of segments hollowed by this call.
// Callers hold the owning table's write lock.
func (t *Table) Maintain() int {
	hollowed := 0
	encode := segmentEncoding.Load()
	for _, seg := range t.segs {
		if !seg.hollow && seg.n > 0 && seg.dead == seg.n {
			seg.hollowOut()
			hollowed++
		}
		if encode {
			seg.encode()
		}
		seg.recomputeZones()
	}
	return hollowed
}

// EncodedColumns counts the segment columns currently held compressed, by
// kind (observability and tests).
func (t *Table) EncodedColumns() (dict, pack int) {
	for _, seg := range t.segs {
		for c := range seg.cols {
			if seg.cols[c].dict != nil {
				dict++
			}
			if seg.cols[c].pack != nil {
				pack++
			}
		}
	}
	return dict, pack
}

// HollowSegments reports how many segments currently have their payload
// freed (observability and tests).
func (t *Table) HollowSegments() int {
	n := 0
	for _, seg := range t.segs {
		if seg.hollow {
			n++
		}
	}
	return n
}

// --- segment encoding toggle ---

// segmentEncoding gates ANALYZE/Maintain-time segment compression
// (enabled by default; benchmarks and tests flip it to measure raw vs
// encoded).
var segmentEncoding atomic.Bool

func init() { segmentEncoding.Store(true) }

// SetSegmentEncoding enables or disables compression of full segments at
// Maintain time. Returns the previous setting so callers can restore it.
// Disabling does not decode already-encoded segments; re-enabling lets the
// next ANALYZE pick them up again.
func SetSegmentEncoding(on bool) bool { return segmentEncoding.Swap(on) }

// SegmentEncoding reports whether Maintain-time compression is enabled.
func SegmentEncoding() bool { return segmentEncoding.Load() }

// --- auto-promotion heuristic ---

// autoPromoteRows is the ANALYZE-driven promotion threshold; 0 disables.
var autoPromoteRows atomic.Int64

// SetAutoPromoteRows configures the auto-promotion heuristic: ANALYZE
// switches row-major tables whose live row count is at least n to columnar
// storage. n = 0 (the default) disables promotion. Returns the previous
// threshold so tests can restore it.
func SetAutoPromoteRows(n int64) int64 { return autoPromoteRows.Swap(n) }

// AutoPromote reports whether a row-major table with the given live row
// count should be promoted to columnar storage.
func AutoPromote(rows int64) bool {
	n := autoPromoteRows.Load()
	return n > 0 && rows >= n
}
