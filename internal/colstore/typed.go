package colstore

import (
	"xnf/internal/enc"
	"xnf/internal/types"
)

// TypedCol is one column of a typed segment view: the payload slice
// selected by Typ — []int64 for INTEGER and BOOLEAN, []float64 for FLOAT,
// []string for VARCHAR — plus the null bitmap (bit set = SQL NULL; the
// typed slot of a NULL holds the zero value). Nulls is nil when none of the
// covered slots is NULL, so kernels can skip the bitmap test entirely on
// NOT NULL data. A TypedCol is immutable once published.
//
// Columns of encoded segments carry Dict (VARCHAR) or Pack (INTEGER/
// BOOLEAN) instead of a raw slice; kernels that understand the encodings
// compare codes directly, everything else decodes per slot through
// StrAt/IntAt/Value.
type TypedCol struct {
	Typ    types.Type
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  Bitmap

	Dict *enc.StringDict
	Pack *enc.IntPack
}

// Encoded reports whether the column holds a compressed payload instead of
// a raw slice.
func (c *TypedCol) Encoded() bool { return c.Dict != nil || c.Pack != nil }

// IsNull reports whether slot i holds SQL NULL.
func (c *TypedCol) IsNull(i int) bool { return c.Nulls != nil && c.Nulls.Get(i) }

// StrAt reads string slot i, decoding through the dictionary if encoded.
func (c *TypedCol) StrAt(i int) string {
	if c.Dict != nil {
		return c.Dict.At(i)
	}
	return c.Strs[i]
}

// IntAt reads int/bool slot i, decoding the packed code if encoded.
func (c *TypedCol) IntAt(i int) int64 {
	if c.Pack != nil {
		return c.Pack.At(i)
	}
	return c.Ints[i]
}

// Value boxes slot i into a types.Value — the box-on-demand escape hatch at
// row/projection boundaries; kernels read the payload slices directly.
func (c *TypedCol) Value(i int) types.Value {
	if c.IsNull(i) {
		return types.Null
	}
	switch c.Typ {
	case types.FloatType:
		return types.Value{T: types.FloatType, F: c.Floats[i]}
	case types.StringType:
		return types.Value{T: types.StringType, S: c.StrAt(i)}
	default:
		return types.Value{T: c.Typ, I: c.IntAt(i)}
	}
}

// TypedView is the unboxed scan-facing snapshot of one segment: typed
// column vectors the batch executor reads without materializing a single
// types.Value, plus the selection of live slots (nil when every slot is
// live). Like View it is immutable; mutations to the segment after the view
// was built are not visible through it.
type TypedView struct {
	Cols []TypedCol
	Sel  []int // live slot offsets; nil = all N slots live
	N    int   // physical slots covered
}

// Rows returns the live row count of the view.
func (v TypedView) Rows() int {
	if v.Sel != nil {
		return len(v.Sel)
	}
	return v.N
}

// ColBound is one conjunctive pruning bound over a table column, derived
// from a scan predicate of the form `col <op> constant`: a segment whose
// zone map proves no value can fall inside [Lo, Hi] is skipped without
// being decoded. Never marks a bound whose comparison constant is NULL —
// such a predicate is Unknown for every row, so every segment prunes.
type ColBound struct {
	Col                int
	Lo, Hi             types.Value
	HasLo, HasHi       bool
	LoStrict, HiStrict bool // strict = exclusive bound (<, > rather than <=, >=)
	Never              bool
	NullOnly           bool // IS NULL: prune segments with zero live NULL slots
	NotNull            bool // IS NOT NULL: prune segments with no live non-NULL value
}

// zone is the min/max summary of the non-NULL values of one column of one
// segment, plus the exact count of live NULL slots. min is the NULL value
// while no non-NULL value has ever been recorded (an all-NULL or empty
// column prunes under any comparison, which is Unknown on every row).
// Bounds widen on every write and never shrink between ANALYZE passes, so
// they stay conservative across UPDATE/DELETE; nulls is maintained exactly
// at every write/delete/revive, so IS [NOT] NULL pruning needs no ANALYZE.
type zone struct {
	min, max types.Value
	nulls    int // live slots holding SQL NULL in this column
}

func (z *zone) empty() bool { return z.min.IsNull() }

func (z *zone) widen(v types.Value) {
	if z.empty() {
		z.min, z.max = v, v
		return
	}
	if types.Compare(v, z.min) < 0 {
		z.min = v
	}
	if types.Compare(v, z.max) > 0 {
		z.max = v
	}
}

// boundComparable reports whether comparing the bound value against values
// of the column's declared type can never raise a type error: only then is
// it safe to skip a segment (pruning must not suppress errors the filter
// would have surfaced).
func boundComparable(t types.Type, v types.Value) bool {
	if v.T == t {
		return true
	}
	numeric := func(x types.Type) bool { return x == types.IntType || x == types.FloatType }
	return numeric(t) && numeric(v.T)
}

// prunable reports whether the bounds prove that no live row of the segment
// can satisfy the scan predicate. It is deliberately conservative: unknown
// or type-mismatched bounds never prune.
func (s *segment) prunable(typs []types.Type, bounds []ColBound) bool {
	for _, b := range bounds {
		if b.Never {
			return true
		}
		if b.Col < 0 || b.Col >= len(s.zones) {
			continue
		}
		z := &s.zones[b.Col]
		if b.NullOnly {
			// IS NULL qualifies exactly the live NULL slots; the min/max
			// emptiness rule below must NOT apply (an all-NULL segment is
			// empty by that test yet satisfies IS NULL everywhere).
			if z.nulls == 0 {
				return true
			}
			continue
		}
		if b.NotNull {
			// IS NOT NULL needs a live non-NULL value; an empty zone proves
			// none exists (every non-NULL write widens the zone).
			if z.empty() {
				return true
			}
			continue
		}
		if z.empty() {
			// No non-NULL value recorded: the comparison is Unknown (or the
			// column empty) on every row, so nothing can qualify.
			return true
		}
		if (b.HasLo && !boundComparable(typs[b.Col], b.Lo)) ||
			(b.HasHi && !boundComparable(typs[b.Col], b.Hi)) {
			continue
		}
		if b.HasLo {
			if c := types.Compare(z.max, b.Lo); c < 0 || (b.LoStrict && c == 0) {
				return true
			}
		}
		if b.HasHi {
			if c := types.Compare(z.min, b.Hi); c > 0 || (b.HiStrict && c == 0) {
				return true
			}
		}
	}
	return false
}
