package colstore

import (
	"testing"

	"xnf/internal/types"
)

// zoneTable builds a two-column (INT, FLOAT) table with n sequential rows.
func zoneTable(n int) *Table {
	tb := New([]types.Type{types.IntType, types.FloatType})
	for i := 0; i < n; i++ {
		tb.Append(types.Row{types.NewInt(int64(i)), types.NewFloat(float64(i) / 2)})
	}
	return tb
}

func geBound(col int, v types.Value) ColBound {
	return ColBound{Col: col, Lo: v, HasLo: true}
}

func ltBound(col int, v types.Value) ColBound {
	return ColBound{Col: col, Hi: v, HasHi: true, HiStrict: true}
}

func TestTypedViewsZonePruning(t *testing.T) {
	tb := zoneTable(3 * SegRows)
	views, pruned := tb.TypedViews(nil)
	if len(views) != 3 || pruned != 0 {
		t.Fatalf("unbounded: %d views, %d pruned", len(views), pruned)
	}
	// id >= 2*SegRows lives entirely in the last segment.
	views, pruned = tb.TypedViews([]ColBound{geBound(0, types.NewInt(int64(2*SegRows)))})
	if len(views) != 1 || pruned != 2 {
		t.Fatalf("ge bound: %d views, %d pruned, want 1/2", len(views), pruned)
	}
	// id < 10 lives in the first segment.
	views, pruned = tb.TypedViews([]ColBound{ltBound(0, types.NewInt(10))})
	if len(views) != 1 || pruned != 2 {
		t.Fatalf("lt bound: %d views, %d pruned, want 1/2", len(views), pruned)
	}
	// A float bound against the int column prunes too (numeric comparable).
	views, pruned = tb.TypedViews([]ColBound{geBound(0, types.NewFloat(float64(2*SegRows)+0.5))})
	if len(views) != 1 || pruned != 2 {
		t.Fatalf("float-on-int bound: %d views, %d pruned, want 1/2", len(views), pruned)
	}
	// A string bound against the int column is not comparable: never prune.
	views, pruned = tb.TypedViews([]ColBound{geBound(0, types.NewString("zz"))})
	if len(views) != 3 || pruned != 0 {
		t.Fatalf("mismatched bound type pruned: %d views, %d pruned", len(views), pruned)
	}
	// A NULL comparison value qualifies nothing anywhere.
	views, pruned = tb.TypedViews([]ColBound{{Col: 0, Never: true}})
	if len(views) != 0 || pruned != 3 {
		t.Fatalf("Never bound: %d views, %d pruned, want 0/3", len(views), pruned)
	}
}

func TestZoneWideningAndAnalyze(t *testing.T) {
	tb := zoneTable(2 * SegRows)
	lo := geBound(0, types.NewInt(int64(2*SegRows+1000)))
	if views, pruned := tb.TypedViews([]ColBound{lo}); len(views) != 0 || pruned != 2 {
		t.Fatalf("initial: %d views, %d pruned", len(views), pruned)
	}
	// Overwriting a slot in segment 0 with a large value widens its zone:
	// the segment must stop pruning immediately.
	tb.Set(5, types.Row{types.NewInt(int64(2 * SegRows * 10)), types.NewFloat(0)})
	views, pruned := tb.TypedViews([]ColBound{lo})
	if len(views) != 1 || pruned != 1 {
		t.Fatalf("after widening write: %d views, %d pruned, want 1/1", len(views), pruned)
	}
	// Deleting that row leaves the zone conservatively wide — still no
	// pruning of segment 0 — until ANALYZE recomputes exact bounds.
	tb.Delete(5)
	if views, _ := tb.TypedViews([]ColBound{lo}); len(views) != 1 {
		t.Fatalf("conservative zone pruned a segment right after delete")
	}
	tb.Maintain()
	if views, pruned := tb.TypedViews([]ColBound{lo}); len(views) != 0 || pruned != 2 {
		t.Fatalf("after Maintain: %d views, %d pruned, want 0/2", len(views), pruned)
	}
}

func TestAllNullColumnPrunes(t *testing.T) {
	tb := New([]types.Type{types.IntType, types.IntType})
	for i := 0; i < 100; i++ {
		tb.Append(types.Row{types.NewInt(int64(i)), types.Null})
	}
	// Any comparison on the all-NULL column is Unknown everywhere.
	views, pruned := tb.TypedViews([]ColBound{geBound(1, types.NewInt(0))})
	if len(views) != 0 || pruned != 1 {
		t.Fatalf("all-NULL column: %d views, %d pruned, want 0/1", len(views), pruned)
	}
	// The populated column still scans.
	if views, _ := tb.TypedViews([]ColBound{geBound(0, types.NewInt(0))}); len(views) != 1 {
		t.Fatal("populated column wrongly pruned")
	}
}

func TestTypedViewSnapshotSemantics(t *testing.T) {
	tb := New([]types.Type{types.IntType, types.StringType})
	for i := 0; i < SegRows; i++ { // full segment → cached typed view
		tb.Append(types.Row{types.NewInt(int64(i)), types.NewString("x")})
	}
	views, _ := tb.TypedViews(nil)
	v := views[0]
	if v.Cols[0].Nulls != nil {
		t.Fatal("NOT NULL column carries a null bitmap")
	}
	// Mutations after the snapshot must not show through it.
	tb.Set(0, types.Row{types.NewInt(-777), types.Null})
	if got := v.Cols[0].Ints[0]; got != 0 {
		t.Fatalf("typed view saw later write: %d", got)
	}
	if v.Cols[0].IsNull(0) {
		t.Fatal("typed view saw later NULL")
	}
	// A fresh snapshot sees the write, with the null bitmap materialized.
	views, _ = tb.TypedViews(nil)
	if got := views[0].Cols[0].Ints[0]; got != -777 {
		t.Fatalf("fresh typed view missed the write: %d", got)
	}
	if !views[0].Cols[1].IsNull(0) {
		t.Fatal("fresh typed view missed the NULL")
	}
	// The cached view is reused while the segment is unchanged.
	again, _ := tb.TypedViews(nil)
	if &again[0].Cols[0].Ints[0] != &views[0].Cols[0].Ints[0] {
		t.Fatal("full unchanged segment rebuilt its typed view")
	}
}

func TestHollowSegmentLifecycle(t *testing.T) {
	tb := zoneTable(SegRows + 100)
	for i := 0; i < SegRows; i++ {
		tb.Delete(i)
	}
	if got := tb.HollowSegments(); got != 0 {
		t.Fatalf("hollowed before Maintain: %d", got)
	}
	if h := tb.Maintain(); h != 1 {
		t.Fatalf("Maintain hollowed %d segments, want 1", h)
	}
	if got := tb.HollowSegments(); got != 1 {
		t.Fatalf("HollowSegments = %d, want 1", got)
	}
	// The hollow segment is skipped by scans, and its slots read as dead.
	if views, _ := tb.TypedViews(nil); len(views) != 1 {
		t.Fatalf("hollow segment not skipped: %d views", len(views))
	}
	if _, ok := tb.Get(0); ok {
		t.Fatal("hollow slot returned a row")
	}
	// Restore (transaction rollback) re-materializes storage on demand.
	tb.Restore(7, types.Row{types.NewInt(7000), types.NewFloat(7.5)})
	if tb.HollowSegments() != 0 {
		t.Fatal("restore left the segment hollow")
	}
	row, ok := tb.Get(7)
	if !ok || row[0].I != 7000 || row[1].F != 7.5 {
		t.Fatalf("restored row = %v, %v", row, ok)
	}
	// Neighboring slots stay dead with zero payload.
	if _, ok := tb.Get(8); ok {
		t.Fatal("unrestored hollow slot came back alive")
	}
	if views, _ := tb.TypedViews(nil); len(views) != 2 {
		t.Fatalf("revived segment not scanned: %d views", len(views))
	}
}
