package core

import (
	"fmt"
	"strings"

	"xnf/internal/ast"
	"xnf/internal/catalog"
	"xnf/internal/qgm"
	"xnf/internal/rewrite"
)

// Table1Row is one line of the paper's Table 1 for one CO component: the
// operation count of deriving it with a standalone SQL query, how many of
// those operations replicate work other components also perform, and the
// operations attributable to it inside the shared XNF derivation DAG.
type Table1Row struct {
	Component  string
	SQLOps     int
	Replicated int
	XNFOps     int
}

// Table1 is the regenerated Table 1.
type Table1 struct {
	Rows []Table1Row
	// Summary row.
	SQLTotal, ReplicatedTotal, XNFTotal int
}

// AnalyzeTable1 regenerates the paper's Table 1 for an arbitrary
// (non-recursive) XNF query:
//
//   - the "XNF Derivation" column attributes each operation of the shared
//     compiled DAG to the first component (in definition order) whose
//     output needs it, so shared subexpressions are counted exactly once;
//   - the "SQL Derivation" column compiles, for every component, the
//     standalone query a relational application would run — the component's
//     ancestor closure with only that component taken (Fig. 6) — and counts
//     its operations with no cross-query sharing;
//   - "Replicated" is their difference: the work the single-query CO
//     derivation saves.
//
// The operation-counting convention (joins per extra quantifier, one per
// existential, one selection per restricted single-input box) is
// implemented by qgm.CountBoxOps; see EXPERIMENTS.md for the reconciliation
// with the paper's hand-tallied per-row numbers.
func AnalyzeTable1(cat *catalog.Catalog, xq *ast.XNFQuery, rwOpts rewrite.Options) (*Table1, error) {
	full, err := Compile(cat, takeAll(xq), rwOpts)
	if err != nil {
		return nil, err
	}
	if full.Recursive {
		return nil, fmt.Errorf("core: Table 1 analysis applies to non-recursive COs")
	}

	t := &Table1{}
	counted := make(map[int]bool)
	xnfOps := make(map[string]int)
	for _, out := range full.Outputs {
		ops := 0
		if out.Box != nil {
			for _, b := range qgm.ReachableFrom(out.Box) {
				if counted[b.ID] {
					continue
				}
				counted[b.ID] = true
				j, s := qgm.CountBoxOps(b)
				ops += j + s
			}
		}
		xnfOps[up(out.Name)] = ops
	}

	for _, comp := range xq.Components {
		standalone := &ast.XNFQuery{
			Components: closureComponents(xq, comp.Name),
			Take:       []ast.TakeItem{{Name: comp.Name}},
		}
		sc, err := Compile(cat, standalone, rwOpts)
		if err != nil {
			return nil, fmt.Errorf("core: standalone derivation of %s: %w", comp.Name, err)
		}
		ops := 0
		for _, o := range sc.Outputs {
			if o.Box != nil {
				ops += countTreeOps(o.Box, 0)
			}
		}
		row := Table1Row{
			Component: comp.Name,
			SQLOps:    ops,
			XNFOps:    xnfOps[up(comp.Name)],
		}
		row.Replicated = row.SQLOps - row.XNFOps
		t.Rows = append(t.Rows, row)
		t.SQLTotal += row.SQLOps
		t.ReplicatedTotal += row.Replicated
		t.XNFTotal += row.XNFOps
	}
	return t, nil
}

// countTreeOps counts the operations of a derivation as a 1994 SQL engine
// would evaluate it: every reference to a derived table (view) is expanded
// and computed independently, so a box shared in our DAG is counted once
// per consuming path. This models the "single component retrieval" column
// of Table 1, where the same dept_arc selection runs inside every query
// that mentions it. The depth guard only protects against malformed
// graphs; compiled DAGs are acyclic.
func countTreeOps(box *qgm.Box, depth int) int {
	if box == nil || depth > 64 {
		return 0
	}
	j, s := qgm.CountBoxOps(box)
	ops := j + s
	for _, q := range box.Quants {
		ops += countTreeOps(q.Input, depth+1)
	}
	for _, p := range box.Preds {
		qgm.WalkExpr(p, func(x qgm.Expr) {
			if sr, ok := x.(*qgm.SubqueryRef); ok {
				ops += countTreeOps(sr.Quant.Input, depth+1)
			}
		})
	}
	return ops
}

// takeAll rewrites the query to TAKE * so every component contributes an
// output to attribute against.
func takeAll(xq *ast.XNFQuery) *ast.XNFQuery {
	out := *xq
	out.Take = []ast.TakeItem{{Star: true}}
	return &out
}

// closureComponents returns the original components restricted to the
// derivation closure of the named component, preserving definition order:
// a node needs every incoming relationship's closure; a relationship needs
// its parent's closure plus its children as bare components.
func closureComponents(xq *ast.XNFQuery, name string) []ast.XNFComponent {
	incoming := make(map[string][]*ast.XNFComponent)
	byName := make(map[string]*ast.XNFComponent)
	for i := range xq.Components {
		c := &xq.Components[i]
		byName[up(c.Name)] = c
		if c.Relate != nil {
			for _, ch := range c.Relate.Children {
				incoming[up(ch)] = append(incoming[up(ch)], c)
			}
		}
	}
	need := make(map[string]bool)
	var visit func(n string)
	visit = func(n string) {
		if need[n] {
			return
		}
		need[n] = true
		c := byName[n]
		if c == nil {
			return
		}
		if c.Relate != nil {
			visit(up(c.Relate.Parent))
			for _, ch := range c.Relate.Children {
				need[up(ch)] = true
				// Children join the closure as bare components; their own
				// reachability inside this standalone query comes only
				// from this relationship.
			}
			return
		}
		for _, rel := range incoming[n] {
			visit(up(rel.Name))
		}
	}
	visit(up(name))
	var out []ast.XNFComponent
	for _, c := range xq.Components {
		if need[up(c.Name)] {
			out = append(out, c)
		}
	}
	return out
}

// Format renders the table in the paper's layout.
func (t *Table1) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %15s %17s %15s\n", "Component", "SQL Derivation", "Replicated Query", "XNF Derivation")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %15d %17d %15d\n", r.Component, r.SQLOps, r.Replicated, r.XNFOps)
	}
	fmt.Fprintf(&b, "%-14s %15d %17d %15d\n", "Summary", t.SQLTotal, t.ReplicatedTotal, t.XNFTotal)
	return b.String()
}
