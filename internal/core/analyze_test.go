package core_test

import (
	"strings"
	"testing"

	. "xnf/internal/core"

	"xnf/internal/ast"
	"xnf/internal/parser"
	"xnf/internal/rewrite"
)

// TestTable1DepsARC regenerates the paper's Table 1. The summary row must
// match the paper exactly (23 SQL-derivation operations, 16 replicated, 7
// XNF operations); the per-component XNF attribution must match the
// paper's XNF Derivation column. The per-component SQL numbers follow our
// uniform counting convention, which distributes the same 23 total
// slightly differently across rows (see EXPERIMENTS.md).
func TestTable1DepsARC(t *testing.T) {
	db := fig1DB(t)
	stmt, err := parser.Parse(strings.TrimSuffix(strings.TrimSpace(
		// reuse the stored view text
		mustViewText(t, db.Catalog().Views()[0].Text)), ";"))
	if err != nil {
		t.Fatal(err)
	}
	cv := stmt.(*ast.CreateViewStmt)
	table, err := AnalyzeTable1(db.Catalog(), cv.XNF, rewrite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table.Format())

	if table.SQLTotal != 23 {
		t.Errorf("SQL derivation total = %d, paper reports 23", table.SQLTotal)
	}
	if table.XNFTotal != 7 {
		t.Errorf("XNF derivation total = %d, paper reports 7", table.XNFTotal)
	}
	if table.ReplicatedTotal != 16 {
		t.Errorf("replicated total = %d, paper reports 16", table.ReplicatedTotal)
	}
	wantXNF := map[string]int{
		"xdept": 1, "xemp": 1, "xproj": 1, "xskills": 4,
		"employment": 0, "ownership": 0, "empproperty": 0, "projproperty": 0,
	}
	for _, r := range table.Rows {
		if want, ok := wantXNF[r.Component]; ok && r.XNFOps != want {
			t.Errorf("XNF ops for %s = %d, paper column says %d", r.Component, r.XNFOps, want)
		}
		if r.SQLOps < r.XNFOps {
			t.Errorf("%s: standalone SQL (%d) cannot be cheaper than shared XNF (%d)", r.Component, r.SQLOps, r.XNFOps)
		}
	}
	// The headline conclusion: XNF eliminates all redundant work — the
	// shared derivation does at most what the cheapest possible SQL plan
	// would (optimality w.r.t. common subexpressions, Sect. 4.2).
	if table.XNFTotal >= table.SQLTotal {
		t.Errorf("XNF (%d ops) must beat single-component SQL derivation (%d ops)", table.XNFTotal, table.SQLTotal)
	}
}

func mustViewText(t *testing.T, text string) string {
	t.Helper()
	if text == "" {
		t.Fatal("empty view text")
	}
	return text
}

// The analyzer must reject recursive COs.
func TestTable1RejectsRecursive(t *testing.T) {
	db := fig1DB(t)
	stmt, err := parser.Parse(`OUT OF xpart AS DEPT,
		r AS (RELATE xpart, xpart AS sub WHERE xpart.dno = sub.dno) TAKE *`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeTable1(db.Catalog(), stmt.(*ast.XNFQuery), rewrite.DefaultOptions()); err == nil {
		t.Error("recursive CO should be rejected by the Table 1 analyzer")
	}
}
