// Package core implements the paper's primary contribution: the XNF
// semantic rewrite (Sect. 4.2) that compiles a composite-object query down
// to plain NF QGM, plus the CO materializer and the derivation-cost
// analyzer behind Table 1.
//
// The rewrite removes the XNF operator box in two steps, exactly as the
// paper describes:
//
//  1. every non-root component table is wrapped in a reachability box: a
//     Select whose predicate demands, for each incoming relationship, the
//     existence of a matching tuple in the relationship's parent-side join
//     (Fig. 5). Components with several incoming relationships get the
//     disjunction. The parent-side joins are shared boxes, so deriving a
//     parent once serves its own output, every child's reachability and
//     the connection output — the common-subexpression property of
//     Table 1;
//
//  2. the TAKE projection becomes a multi-output Top whose outputs are the
//     component boxes plus connection boxes. Relationships whose predicate
//     equates the parent key with child columns ship no connection table
//     at all — the child tuples already carry the parent key (the output
//     optimization of Sect. 4.2's footnote) — and the cache reconstructs
//     the connections locally.
//
// Cyclic schema graphs (recursive COs, Sect. 2) cannot be compiled to a
// finite join DAG; Compile marks them and Execute runs a semi-naive
// fixpoint over the component and connection definitions instead.
package core

import (
	"fmt"
	"strings"

	"xnf/internal/ast"
	"xnf/internal/catalog"
	"xnf/internal/qgm"
	"xnf/internal/rewrite"
	"xnf/internal/semantics"
	"xnf/internal/types"
)

// Output describes one component of the compiled CO: either a node (a
// component table) or a relationship (a connection table, possibly derived
// client-side from a node stream).
type Output struct {
	Name   string
	CompID int

	IsRel    bool
	Parent   string
	Children []string
	Role     string

	// Box produces the shipped rows (node rows or connection tuples). It
	// is nil for derived relationships.
	Box *qgm.Box

	// KeyCols are the ordinals identifying a node tuple within its
	// shipped row.
	KeyCols []int

	// Connection-tuple layout for shipped relationships.
	ParentKeyOrds []int
	ChildKeyOrds  [][]int

	// Derived relationships ship nothing: the connection (parentKey,
	// childKey) pairs are read off the DerivedFrom node's rows —
	// DerivedParentOrds give the parent key, the node's own KeyCols give
	// the child key.
	DerivedFrom       string
	DerivedParentOrds []int

	// Shipped-row description (column names and types), filled for every
	// output that ships rows.
	ColNames []string
	ColTypes []types.Type

	// Updatability metadata (Sect. 2: node updates translate to base-table
	// updates; connect/disconnect to foreign-key updates or connect-table
	// inserts/deletes). Empty values mean the output is read-only.
	//
	// Nodes: BaseTable is the single base table the component projects,
	// BaseCols maps each shipped column to its base column ("" for
	// computed columns).
	BaseTable string
	BaseCols  []string
	// Derived (foreign-key) relationships: FKChildCols are the child
	// base-table columns holding the parent key.
	FKChildCols []string
	// USING (connect-table) relationships: inserting/deleting a row of
	// ConnectTable with ConnectParentCols=parent key, ConnectChildCols=
	// child key realizes connect/disconnect.
	ConnectTable      string
	ConnectParentCols []string
	ConnectChildCols  []string
}

// Compiled is a fully compiled CO query.
type Compiled struct {
	Graph     *qgm.Graph
	Outputs   []Output
	Recursive bool
	// Rec holds the pieces the fixpoint executor needs when Recursive.
	Rec *RecursiveQuery
	// Stats from the NF rewrite pass (rule firings), for EXPLAIN.
	RewriteStats rewrite.Stats
}

// relInfo is the analyzed form of one relationship during the rewrite.
type relInfo struct {
	out     qgm.XNFOutput
	box     *qgm.Box // the semantic-phase relationship box
	parentQ *qgm.Quantifier
	childQs []*qgm.Quantifier
	usingQs []*qgm.Quantifier
	// Per child: the parent-side box S_R used for reachability, the
	// existential quantifier over it and the link predicates.
	sideBoxes []*qgm.Box
	sideEqs   []*qgm.Quantifier
	sideLinks [][]qgm.Expr
	// Per child: the reachability wrapper quantifier the links reference.
	childWQs []*qgm.Quantifier
}

// Compile runs semantic analysis and the XNF semantic rewrite for an XNF
// query, producing a plain NF QGM graph with a multi-output Top, followed
// by the shared NF rewrite rules.
func Compile(cat *catalog.Catalog, xq *ast.XNFQuery, rwOpts rewrite.Options) (*Compiled, error) {
	g, err := semantics.BuildXNF(cat, xq)
	if err != nil {
		return nil, err
	}
	xnfBox := g.TopBox.Quants[0].Input
	if xnfBox.Kind != qgm.XNFOp {
		return nil, fmt.Errorf("core: expected XNF operator under Top, found %s", xnfBox.Kind)
	}
	takes, err := semantics.TakeFor(xq, xnfBox)
	if err != nil {
		return nil, err
	}

	if hasCycle(xnfBox) {
		rec, err := buildRecursive(g, xnfBox, takes)
		if err != nil {
			return nil, err
		}
		return &Compiled{Graph: g, Outputs: rec.Outputs, Recursive: true, Rec: rec}, nil
	}

	outs, err := rewriteXNF(g, xnfBox, takes)
	if err != nil {
		return nil, err
	}
	stats := rewrite.Apply(g, rwOpts)
	if errs := g.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("core: invalid QGM after XNF rewrite: %s", strings.Join(errs, "; "))
	}
	return &Compiled{Graph: g, Outputs: outs, RewriteStats: stats}, nil
}

// CompileView compiles a stored XNF view by name.
func CompileView(cat *catalog.Catalog, name string, rwOpts rewrite.Options) (*Compiled, error) {
	v, ok := cat.View(name)
	if !ok || !v.IsXNF {
		return nil, fmt.Errorf("core: %s is not an XNF view", name)
	}
	stmt, err := parseView(v.Text)
	if err != nil {
		return nil, err
	}
	return Compile(cat, stmt, rwOpts)
}

// hasCycle reports whether the schema graph (parent→child edges over node
// components) contains a cycle, which makes the CO recursive.
func hasCycle(xnfBox *qgm.Box) bool {
	edges := make(map[string][]string)
	for _, o := range xnfBox.XNFOutputs {
		if !o.IsRel {
			continue
		}
		for _, ch := range o.Children {
			edges[up(o.Parent)] = append(edges[up(o.Parent)], up(ch))
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, m := range edges[n] {
			switch color[m] {
			case gray:
				return true
			case white:
				if visit(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for n := range edges {
		if color[n] == white && visit(n) {
			return true
		}
	}
	return false
}

func up(s string) string { return strings.ToUpper(s) }

// rewriteXNF performs the XNF semantic rewrite on a DAG-shaped CO.
func rewriteXNF(g *qgm.Graph, xnfBox *qgm.Box, takes []semantics.TakeSpec) ([]Output, error) {
	// Index the XNF outputs.
	nodeBox := make(map[string]*qgm.Box)
	nodeKey := make(map[string][]int)
	var nodeOrder []string
	var rels []*relInfo
	for _, o := range xnfBox.XNFOutputs {
		if o.IsRel {
			ri, err := analyzeRel(o)
			if err != nil {
				return nil, err
			}
			rels = append(rels, ri)
			continue
		}
		nodeBox[up(o.Name)] = o.Box
		nodeKey[up(o.Name)] = nodeKeyCols(o.Box)
		nodeOrder = append(nodeOrder, o.Name)
	}

	// Step 1: wrap every reachable (non-root) node in a reachability box.
	// The wrapper starts as a pass-through Select; predicates arrive below.
	wrapper := make(map[string]*qgm.Box)
	wrapperQ := make(map[string]*qgm.Quantifier)
	for _, o := range xnfBox.XNFOutputs {
		if o.IsRel || !o.Reachable {
			continue
		}
		name := up(o.Name)
		inner := nodeBox[name]
		w := g.NewBox(qgm.Select, o.Name)
		wq := g.NewQuant(w, qgm.ForEach, o.Name, inner)
		for i, h := range inner.Head {
			w.Head = append(w.Head, qgm.HeadColumn{Name: h.Name, Type: h.Type, Expr: &qgm.ColRef{Q: wq, Ord: i}})
		}
		wrapper[name] = w
		wrapperQ[name] = wq
	}
	// Re-point relationship partner quantifiers at the wrappers so that
	// connections relate reachable tuples only.
	effective := func(name string) *qgm.Box {
		if w, ok := wrapper[up(name)]; ok {
			return w
		}
		return nodeBox[up(name)]
	}
	for _, ri := range rels {
		for _, q := range ri.box.Quants {
			if q.Input == nil {
				continue
			}
			for name, inner := range nodeBox {
				if q.Input == inner && wrapper[name] != nil {
					q.Input = wrapper[name]
				}
			}
		}
	}

	// Step 2: build each relationship's parent-side boxes S_R (one per
	// child) and attach the reachability predicates.
	reachPred := make(map[string]qgm.Expr) // child name → OR of exists
	for _, ri := range rels {
		for ci := range ri.childQs {
			childName := up(ri.out.Children[ci])
			w := wrapper[childName]
			if w == nil {
				return nil, fmt.Errorf("core: child component %s of %s has no reachability wrapper", ri.out.Children[ci], ri.out.Name)
			}
			side, eq, links, err := buildParentSide(g, ri, ci, wrapperQ[childName])
			if err != nil {
				return nil, err
			}
			ri.sideBoxes = append(ri.sideBoxes, side)
			ri.sideEqs = append(ri.sideEqs, eq)
			ri.sideLinks = append(ri.sideLinks, links)
			ri.childWQs = append(ri.childWQs, wrapperQ[childName])
			sr := &qgm.SubqueryRef{Quant: eq, Preds: links}
			if prev, ok := reachPred[childName]; ok {
				reachPred[childName] = &qgm.BinOp{Op: "OR", L: prev, R: sr}
			} else {
				reachPred[childName] = sr
			}
		}
	}
	for name, pred := range reachPred {
		wrapper[name].Preds = append(wrapper[name].Preds, pred)
	}

	// Step 3: assemble the Top outputs per the TAKE projection. Derived
	// (non-shipped) relationship outputs require the child's full rows, so
	// track which nodes are taken without column projection.
	takenNode := make(map[string]bool)
	for _, t := range takes {
		if !t.Output.IsRel && len(t.Columns) == 0 {
			takenNode[up(t.Output.Name)] = true
		}
	}
	top := g.NewBox(qgm.Top, "")
	top.Limit = -1
	var outs []Output
	for _, t := range takes {
		if t.Output.IsRel {
			var ri *relInfo
			for _, r := range rels {
				if up(r.out.Name) == up(t.Output.Name) {
					ri = r
				}
			}
			out, err := buildRelOutput(g, top, ri, effective, nodeKey, takenNode, len(outs))
			if err != nil {
				return nil, err
			}
			outs = append(outs, *out)
			continue
		}
		name := up(t.Output.Name)
		box := effective(name)
		keys := nodeKey[name]
		if len(t.Columns) > 0 {
			box, keys = projectNode(g, box, keys, t.Columns)
		}
		q := g.NewQuant(top, qgm.ForEach, t.Output.Name, box)
		top.Outputs = append(top.Outputs, qgm.TopOutput{
			Name: t.Output.Name, CompID: len(outs), Quant: q, KeyCols: keys,
		})
		outs = append(outs, Output{
			Name: t.Output.Name, CompID: len(outs), Box: box, KeyCols: keys,
		})
	}
	g.TopBox = top
	g.GC()
	fillOutputMeta(outs, rels)
	return outs, nil
}

// analyzeRel classifies the quantifiers of a semantic-phase relationship
// box into parent, children and USING. The semantic layer attaches them in
// a fixed order — parent, then children, then USING tables — so the
// classification is positional (robust against child aliases).
func analyzeRel(o qgm.XNFOutput) (*relInfo, error) {
	ri := &relInfo{out: o, box: o.Box}
	quants := o.Box.Quants
	if len(quants) < 1+len(o.Children) {
		return nil, fmt.Errorf("core: relationship %s: expected at least %d quantifiers, found %d",
			o.Name, 1+len(o.Children), len(quants))
	}
	ri.parentQ = quants[0]
	ri.childQs = quants[1 : 1+len(o.Children)]
	ri.usingQs = quants[1+len(o.Children):]
	return ri, nil
}

// buildParentSide constructs the parent-side box S_R for one child of a
// relationship: quantifiers over every partner except that child, carrying
// every relationship predicate that does not mention the child. It returns
// the box, an existential quantifier over it, and the link predicates (the
// child-mentioning conjuncts) with non-child references rewritten onto the
// existential quantifier's head and child references rewritten onto the
// child's reachability wrapper quantifier.
func buildParentSide(g *qgm.Graph, ri *relInfo, childIdx int, childWrapperQ *qgm.Quantifier) (*qgm.Box, *qgm.Quantifier, []qgm.Expr, error) {
	cq := ri.childQs[childIdx]
	side := g.NewBox(qgm.Select, ri.out.Name+"_side")
	eq := g.NewDetachedQuant(qgm.Exist, "reach_"+ri.out.Name, side)
	remap := make(map[*qgm.Quantifier]*qgm.Quantifier)
	for _, q := range ri.box.Quants {
		if q == cq {
			continue
		}
		nq := g.NewQuant(side, qgm.ForEach, q.Name, q.Input)
		remap[q] = nq
	}

	needed := make(map[string]int) // "quantID.ord" → head ordinal
	addCol := func(q *qgm.Quantifier, ord int) int {
		key := fmt.Sprintf("%d.%d", q.ID, ord)
		if ho, ok := needed[key]; ok {
			return ho
		}
		ho := len(side.Head)
		side.Head = append(side.Head, qgm.HeadColumn{
			Name: fmt.Sprintf("%s_%s", q.Name, q.Input.Head[ord].Name),
			Type: q.Input.Head[ord].Type,
			Expr: &qgm.ColRef{Q: q, Ord: ord},
		})
		needed[key] = ho
		return ho
	}
	// Parent keys are exposed first: the connection output reuses S_R and
	// expects them at the front.
	pq := remap[ri.parentQ]
	for _, ord := range nodeKeyCols(ri.parentQ.Input) {
		addCol(pq, ord)
	}

	// Predicates that avoid the child stay inside S_R (remapped); ones
	// that mention it become link predicates with their S_R-side columns
	// exposed through the head and referenced via eq.
	var links []qgm.Expr
	for _, p := range ri.box.Preds {
		mentionsChild := false
		for q := range qgm.QuantsIn(p) {
			if q == cq {
				mentionsChild = true
			}
		}
		if !mentionsChild {
			side.Preds = append(side.Preds, qgm.RewriteExpr(p, func(x qgm.Expr) qgm.Expr {
				if cr, ok := x.(*qgm.ColRef); ok {
					if nq, ok := remap[cr.Q]; ok {
						return &qgm.ColRef{Q: nq, Ord: cr.Ord}
					}
				}
				return x
			}))
			continue
		}
		links = append(links, qgm.RewriteExpr(p, func(x qgm.Expr) qgm.Expr {
			cr, ok := x.(*qgm.ColRef)
			if !ok {
				return x
			}
			if cr.Q == cq {
				return &qgm.ColRef{Q: childWrapperQ, Ord: cr.Ord}
			}
			if nq, ok := remap[cr.Q]; ok {
				return &qgm.ColRef{Q: eq, Ord: addCol(nq, cr.Ord)}
			}
			return x
		}))
	}
	return side, eq, links, nil
}

// projectNode wraps a node box in a projection keeping the TAKE columns;
// key columns missing from the projection are appended (they are needed
// to resolve connections) and the key ordinals are remapped.
func projectNode(g *qgm.Graph, box *qgm.Box, keys []int, cols []int) (*qgm.Box, []int) {
	proj := g.NewBox(qgm.Select, box.Name+"_take")
	q := g.NewQuant(proj, qgm.ForEach, box.Name, box)
	pos := make(map[int]int)
	for _, ord := range cols {
		if _, dup := pos[ord]; dup {
			continue
		}
		pos[ord] = len(proj.Head)
		h := box.Head[ord]
		proj.Head = append(proj.Head, qgm.HeadColumn{Name: h.Name, Type: h.Type, Expr: &qgm.ColRef{Q: q, Ord: ord}})
	}
	for _, k := range keys {
		if _, ok := pos[k]; !ok {
			pos[k] = len(proj.Head)
			h := box.Head[k]
			proj.Head = append(proj.Head, qgm.HeadColumn{Name: h.Name, Type: h.Type, Expr: &qgm.ColRef{Q: q, Ord: k}})
		}
	}
	newKeys := make([]int, len(keys))
	for i, k := range keys {
		newKeys[i] = pos[k]
	}
	return proj, newKeys
}

// nodeKeyCols exposes the component-identity ordinals of a node box.
func nodeKeyCols(box *qgm.Box) []int { return semantics.ComponentKeyOrds(box) }
