package core_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	. "xnf/internal/core"

	"xnf/internal/ast"
	"xnf/internal/engine"
	"xnf/internal/opt"
	"xnf/internal/parser"
	"xnf/internal/rewrite"
	"xnf/internal/types"
	"xnf/internal/workload"
)

// fig1DB builds exactly the instance shown in the paper's Fig. 1:
// departments d1, d2 at ARC; employees e1..e3; projects p1, p2; skills
// s1..s5 with s2 attached only to a non-ARC employee so reachability must
// exclude it, and e2, e3, p2, s3 shared between relationships.
func fig1DB(t testing.TB) *engine.Database {
	t.Helper()
	db := engine.Open()
	script := workload.OrgSchema + `
INSERT INTO DEPT VALUES (1, 'd1', 'ARC'), (2, 'd2', 'ARC'), (3, 'd3', 'HQ');
INSERT INTO EMP VALUES (1, 'e1', 1, 100), (2, 'e2', 1, 200), (3, 'e3', 2, 300), (9, 'e9', 3, 900);
INSERT INTO PROJ VALUES (1, 'p1', 1, 10), (2, 'p2', 2, 20), (9, 'p9', 3, 90);
INSERT INTO SKILLS VALUES (1, 's1'), (2, 's2'), (3, 's3'), (4, 's4'), (5, 's5');
INSERT INTO EMPSKILLS VALUES (1, 1), (2, 3), (3, 3), (3, 4), (9, 2);
INSERT INTO PROJSKILLS VALUES (1, 3), (2, 4), (2, 5), (9, 2);
` + workload.DepsARC + ";"
	if err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func compileDepsARC(t testing.TB, db *engine.Database) *Compiled {
	t.Helper()
	c, err := CompileView(db.Catalog(), "deps_ARC", rewrite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func rowsOf(res *COResult, name string) []types.Row {
	for i, o := range res.Outputs {
		if strings.EqualFold(o.Name, name) {
			return res.Rows[i]
		}
	}
	return nil
}

func outputOf(t testing.TB, c *Compiled, name string) *Output {
	t.Helper()
	for i := range c.Outputs {
		if strings.EqualFold(c.Outputs[i].Name, name) {
			return &c.Outputs[i]
		}
	}
	t.Fatalf("no output %s", name)
	return nil
}

func colVals(rows []types.Row, ord int) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[ord].String()
	}
	sort.Strings(out)
	return out
}

func TestDepsARCCompiles(t *testing.T) {
	db := fig1DB(t)
	c := compileDepsARC(t, db)
	if c.Recursive {
		t.Fatal("deps_ARC is a DAG, not recursive")
	}
	if len(c.Outputs) != 8 {
		t.Fatalf("outputs = %d", len(c.Outputs))
	}
	if errs := c.Graph.Validate(); len(errs) > 0 {
		t.Fatalf("invalid graph: %v", errs)
	}
	// The E→F conversion must fire for the single-parent reachability of
	// xemp and xproj, and SELECT merge must collapse the pass-through
	// boxes (the Fig. 5 discussion).
	if c.RewriteStats.Fired["E2F"] < 2 {
		t.Errorf("E2F fired %d times, want >= 2", c.RewriteStats.Fired["E2F"])
	}
	if c.RewriteStats.Fired["SelectMerge"] < 2 {
		t.Errorf("SelectMerge fired %d times, want >= 2", c.RewriteStats.Fired["SelectMerge"])
	}
}

func TestDepsARCOutputForms(t *testing.T) {
	db := fig1DB(t)
	c := compileDepsARC(t, db)
	// employment and ownership: simple foreign-key relationships are
	// derived client-side, shipping no connection table (Sect. 4.2
	// footnote).
	emp := outputOf(t, c, "employment")
	if emp.DerivedFrom == "" || emp.Box != nil {
		t.Errorf("employment should be a derived relationship: %+v", emp)
	}
	own := outputOf(t, c, "ownership")
	if own.DerivedFrom == "" {
		t.Errorf("ownership should be a derived relationship: %+v", own)
	}
	// empproperty/projproperty ship connection tuples from the shared
	// parent-side join boxes.
	ep := outputOf(t, c, "empproperty")
	if ep.Box == nil || len(ep.ParentKeyOrds) != 1 || len(ep.ChildKeyOrds) != 1 {
		t.Errorf("empproperty should ship connections: %+v", ep)
	}
	// Node outputs carry primary-key identities.
	xd := outputOf(t, c, "xdept")
	if len(xd.KeyCols) != 1 || xd.KeyCols[0] != 0 {
		t.Errorf("xdept keys = %v", xd.KeyCols)
	}
}

func TestDepsARCFig1Semantics(t *testing.T) {
	db := fig1DB(t)
	c := compileDepsARC(t, db)
	res, err := c.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := colVals(rowsOf(res, "xdept"), 0); fmt.Sprint(got) != "[1 2]" {
		t.Errorf("xdept = %v", got)
	}
	if got := colVals(rowsOf(res, "xemp"), 0); fmt.Sprint(got) != "[1 2 3]" {
		t.Errorf("xemp = %v (e9 must be unreachable)", got)
	}
	if got := colVals(rowsOf(res, "xproj"), 0); fmt.Sprint(got) != "[1 2]" {
		t.Errorf("xproj = %v", got)
	}
	// Fig. 1: s2 does not belong to the CO (only e9/p9 reference it);
	// s1, s3, s4, s5 are reachable, s3 shared by both sides.
	if got := colVals(rowsOf(res, "xskills"), 0); fmt.Sprint(got) != "[1 3 4 5]" {
		t.Errorf("xskills = %v (s2 must be excluded by reachability)", got)
	}
	// Shipped connections.
	ep := rowsOf(res, "empproperty")
	var pairs []string
	for _, r := range ep {
		pairs = append(pairs, r.String())
	}
	sort.Strings(pairs)
	if fmt.Sprint(pairs) != "[1|1 2|3 3|3 3|4]" {
		t.Errorf("empproperty connections = %v", pairs)
	}
	pp := rowsOf(res, "projproperty")
	pairs = nil
	for _, r := range pp {
		pairs = append(pairs, r.String())
	}
	sort.Strings(pairs)
	if fmt.Sprint(pairs) != "[1|3 2|4 2|5]" {
		t.Errorf("projproperty connections = %v", pairs)
	}
	// Derived relationships ship nothing.
	if rowsOf(res, "employment") != nil {
		t.Error("employment should ship no rows")
	}
}

// Object sharing: a component tuple used by several connections exists
// once in its component table (Sect. 2).
func TestObjectSharing(t *testing.T) {
	db := fig1DB(t)
	c := compileDepsARC(t, db)
	res, err := c.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	skills := rowsOf(res, "xskills")
	seen := make(map[string]int)
	for _, r := range skills {
		seen[r[0].String()]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("skill %s appears %d times; components are sets", k, n)
		}
	}
	// s3 participates in connections from both empproperty and
	// projproperty yet exists once.
	if seen["3"] != 1 {
		t.Errorf("shared skill s3 count = %d", seen["3"])
	}
}

func TestTakeProjection(t *testing.T) {
	db := fig1DB(t)
	stmt, err := parser.Parse(`OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
		xemp AS EMP,
		employment AS (RELATE xdept, xemp WHERE xdept.dno = xemp.edno)
		TAKE xdept (dname), xemp (ename), employment`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(db.Catalog(), stmt.(*ast.XNFQuery), rewrite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xd := outputOf(t, c, "xdept")
	rows := rowsOf(res, "xdept")
	if len(rows) != 2 || len(rows[0]) != 2 {
		t.Fatalf("projected xdept rows = %v (want dname + appended dno key)", rows)
	}
	if len(xd.KeyCols) != 1 || xd.KeyCols[0] != 1 {
		t.Errorf("projected key cols = %v", xd.KeyCols)
	}
	// The relationship ships because xemp is projected (derived form needs
	// full child rows) — connections must still resolve: 3 emps.
	emp := outputOf(t, c, "employment")
	if emp.DerivedFrom != "" {
		// Acceptable alternative: derived with ord mapping; current
		// implementation ships instead.
		t.Logf("employment derived from %s", emp.DerivedFrom)
	}
	total := 0
	for i, o := range res.Outputs {
		if o.IsRel {
			total += len(res.Rows[i])
		}
	}
	if total != 3 {
		t.Errorf("employment connections = %d, want 3", total)
	}
}

func TestTakeSubset(t *testing.T) {
	db := fig1DB(t)
	stmt, err := parser.Parse(`OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
		xemp AS EMP,
		employment AS (RELATE xdept, xemp WHERE xdept.dno = xemp.edno)
		TAKE xdept`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(db.Catalog(), stmt.(*ast.XNFQuery), rewrite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Outputs) != 1 {
		t.Fatalf("outputs = %d", len(c.Outputs))
	}
	res, err := c.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows[0]) != 2 {
		t.Errorf("xdept rows = %d", len(res.Rows[0]))
	}
}

// The multi-parent (shared child) reachability must be an OR: a skill is in
// the CO if reachable through employees OR projects.
func TestMultiParentReachability(t *testing.T) {
	db := fig1DB(t)
	// Remove all project skills: s5 (project-only) drops out, s1/s3/s4 stay.
	if _, err := db.Exec("DELETE FROM PROJSKILLS WHERE pspno >= 0"); err != nil {
		t.Fatal(err)
	}
	c := compileDepsARC(t, db)
	res, err := c.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := colVals(rowsOf(res, "xskills"), 0); fmt.Sprint(got) != "[1 3 4]" {
		t.Errorf("xskills = %v", got)
	}
}

// Execution must agree across optimizer modes (the rewrite is semantics-
// preserving).
func TestDepsARCModesAgree(t *testing.T) {
	modes := []struct {
		name string
		rw   rewrite.Options
		op   opt.Options
	}{
		{"full", rewrite.DefaultOptions(), opt.DefaultOptions()},
		{"no-nf-rewrite", rewrite.NoRewrite(), opt.DefaultOptions()},
		{"naive-exec", rewrite.DefaultOptions(), opt.NaiveOptions()},
		{"all-naive", rewrite.NoRewrite(), opt.NaiveOptions()},
	}
	var ref string
	for _, m := range modes {
		db := fig1DB(t)
		c, err := CompileView(db.Catalog(), "deps_ARC", m.rw)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		res, err := c.Execute(db.Store(), m.op)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		var lines []string
		for i, rows := range res.Rows {
			for _, r := range rows {
				lines = append(lines, fmt.Sprintf("%s:%s", res.Outputs[i].Name, r.String()))
			}
		}
		sort.Strings(lines)
		snapshot := strings.Join(lines, "\n")
		if ref == "" {
			ref = snapshot
			continue
		}
		if snapshot != ref {
			t.Errorf("mode %s produced different CO content", m.name)
		}
	}
}

// Parallel extraction must produce exactly the serial result, with shared
// fragments still materialized once.
func TestExecuteParallelMatchesSerial(t *testing.T) {
	db := fig1DB(t)
	c := compileDepsARC(t, db)
	serial, err := c.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		par, err := c.ExecuteParallel(db.Store(), opt.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Rows {
			a := append([]string{}, rowLines(serial.Rows[i])...)
			b := append([]string{}, rowLines(par.Rows[i])...)
			sort.Strings(a)
			sort.Strings(b)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("output %s differs under parallel extraction", serial.Outputs[i].Name)
			}
		}
	}
}

func rowLines(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// Recursive CO: parts explosion. Only parts reachable from root parts
// through ASSEMBLY edges belong to the CO.
func TestRecursivePartsExplosion(t *testing.T) {
	db := engine.Open()
	script := workload.PartsSchema + `
INSERT INTO PART VALUES (1, 'root1', 'root'), (2, 'a', 'comp'), (3, 'b', 'comp'),
                        (4, 'c', 'comp'), (5, 'orphan', 'comp'), (6, 'd', 'comp');
INSERT INTO ASSEMBLY VALUES (1, 2), (2, 3), (3, 4), (5, 6), (2, 4);
` + workload.PartsExplosion + ";"
	if err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	c, err := CompileView(db.Catalog(), "parts_explosion", rewrite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Recursive {
		t.Fatal("parts_explosion must be recursive (cyclic schema graph)")
	}
	res, err := c.Execute(db.Store(), opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Reachable: 2 (via toplevel), then 3, 4 via contains. Parts 5, 6 are
	// not reachable from the root. Part 1 is in xroot, not xpart... xpart
	// is a child component, so reachability applies: 1 is not a child of
	// anything via the relationships (no assembly edge points to 1).
	if got := colVals(rowsOf(res, "xpart"), 0); fmt.Sprint(got) != "[2 3 4]" {
		t.Errorf("xpart = %v", got)
	}
	if got := colVals(rowsOf(res, "xroot"), 0); fmt.Sprint(got) != "[1]" {
		t.Errorf("xroot = %v", got)
	}
	// contains connections: (2,3), (3,4), (2,4); (5,6) excluded.
	rows := rowsOf(res, "contains")
	var pairs []string
	for _, r := range rows {
		pairs = append(pairs, r.String())
	}
	sort.Strings(pairs)
	if fmt.Sprint(pairs) != "[2|3 2|4 3|4]" {
		t.Errorf("contains = %v", pairs)
	}
	// Fixpoint equals naive transitive closure: verified structurally by
	// the expected sets above (diamond 2→3→4 plus 2→4 shares part 4 once).
	counts := make(map[string]int)
	for _, r := range rowsOf(res, "xpart") {
		counts[r[0].String()]++
	}
	if counts["4"] != 1 {
		t.Errorf("shared part 4 appears %d times", counts["4"])
	}
}

// A self-relationship without an alias must be rejected with a helpful
// error.
func TestSelfRelationRequiresAlias(t *testing.T) {
	db := engine.Open()
	if err := db.ExecScript(workload.PartsSchema); err != nil {
		t.Fatal(err)
	}
	_, err := db.Exec(`CREATE VIEW bad AS OUT OF xpart AS PART,
		r AS (RELATE xpart, xpart USING ASSEMBLY a WHERE xpart.pno = a.super AND a.sub = xpart.pno)
		TAKE *`)
	if err == nil || !strings.Contains(err.Error(), "alias") {
		t.Errorf("expected alias error, got %v", err)
	}
}

func TestXNFViewErrors(t *testing.T) {
	db := fig1DB(t)
	// XNF views cannot be used in FROM.
	if _, err := db.Query("SELECT * FROM deps_ARC"); err == nil {
		t.Error("selecting from an XNF view should fail")
	}
	// Unknown TAKE target.
	if _, err := db.Exec(`CREATE VIEW bad2 AS OUT OF a AS DEPT TAKE nosuch`); err == nil {
		t.Error("TAKE of unknown component should fail")
	}
	// Relationship with unknown partner.
	if _, err := db.Exec(`CREATE VIEW bad3 AS OUT OF a AS DEPT, r AS (RELATE a, ghost WHERE a.dno = ghost.x) TAKE *`); err == nil {
		t.Error("unknown child should fail")
	}
}

// Executing through the heterogeneous stream yields every shipped tuple
// tagged with its component.
func TestStream(t *testing.T) {
	db := fig1DB(t)
	c := compileDepsARC(t, db)
	byComp := make(map[int]int)
	res, err := c.Stream(db.Store(), opt.DefaultOptions(), func(compID int, row types.Row) error {
		byComp[compID]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rows := range res.Rows {
		if byComp[res.Outputs[i].CompID] != len(rows) {
			t.Errorf("component %s streamed %d rows, materialized %d",
				res.Outputs[i].Name, byComp[res.Outputs[i].CompID], len(rows))
		}
	}
}
