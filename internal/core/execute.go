package core

import (
	"fmt"
	"sync"

	"xnf/internal/exec"
	"xnf/internal/opt"
	"xnf/internal/storage"
	"xnf/internal/types"
)

// COResult is a fully extracted composite object: one row set per TAKEn
// output, in component order. Derived relationship outputs have a nil row
// set (the cache reconstructs their connections from the child rows).
type COResult struct {
	Outputs  []Output
	Rows     [][]types.Row
	Counters exec.Counters
}

// Execute materializes the CO set-oriented: every component table and
// every shipped connection table is produced by one multi-output plan over
// a single execution context, so boxes shared in the QGM DAG (parents used
// by their own output, by child reachability and by connections) are
// evaluated exactly once (Sect. 5.1's multiple-query optimization).
func (c *Compiled) Execute(store *storage.Store, opts opt.Options) (*COResult, error) {
	if c.Recursive {
		return c.Rec.execute(store, opts)
	}
	comp := opt.NewCompiler(store, c.Graph, opts)
	ctx := exec.NewCtx(store)
	res := &COResult{Outputs: c.Outputs, Rows: make([][]types.Row, len(c.Outputs))}
	for i, out := range c.Outputs {
		if out.Box == nil {
			continue // derived relationship: nothing shipped
		}
		plan, _, err := comp.CompileBox(out.Box, nil)
		if err != nil {
			return nil, fmt.Errorf("core: compiling output %s: %w", out.Name, err)
		}
		rows, err := exec.Collect(ctx, plan)
		if err != nil {
			return nil, fmt.Errorf("core: executing output %s: %w", out.Name, err)
		}
		res.Rows[i] = rows
	}
	res.Counters = ctx.Counters
	return res, nil
}

// ExecuteParallel materializes the CO with one goroutine per output — the
// intra-query parallelism the paper's outlook (Sect. 6) names as the next
// extension that "becomes automatically available to XNF". Shared boxes
// are spooled exactly once (the execution context synchronizes the spool),
// so the parallel run does the same total work as the serial one with the
// independent outputs overlapped.
func (c *Compiled) ExecuteParallel(store *storage.Store, opts opt.Options) (*COResult, error) {
	if c.Recursive {
		return c.Rec.execute(store, opts)
	}
	comp := opt.NewCompiler(store, c.Graph, opts)
	ctx := exec.NewCtx(store)
	res := &COResult{Outputs: c.Outputs, Rows: make([][]types.Row, len(c.Outputs))}
	// Plans are compiled serially (the compiler is not concurrent), then
	// driven in parallel.
	plans := make([]exec.Plan, len(c.Outputs))
	for i, out := range c.Outputs {
		if out.Box == nil {
			continue
		}
		plan, _, err := comp.CompileBox(out.Box, nil)
		if err != nil {
			return nil, fmt.Errorf("core: compiling output %s: %w", out.Name, err)
		}
		plans[i] = plan
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.Outputs))
	for i := range c.Outputs {
		if plans[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, err := exec.Collect(ctx, plans[i])
			if err != nil {
				errs[i] = fmt.Errorf("core: executing output %s: %w", c.Outputs[i].Name, err)
				return
			}
			res.Rows[i] = rows
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Counters = ctx.Counters
	return res, nil
}

// Stream delivers the CO as the heterogeneous tuple stream of Sect. 3:
// every tuple tagged with its component number. The wire layer sits on
// top of this.
func (c *Compiled) Stream(store *storage.Store, opts opt.Options, fn func(compID int, row types.Row) error) (*COResult, error) {
	res, err := c.Execute(store, opts)
	if err != nil {
		return nil, err
	}
	for i, rows := range res.Rows {
		for _, r := range rows {
			if err := fn(res.Outputs[i].CompID, r); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
