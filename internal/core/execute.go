package core

import (
	"fmt"
	"sync"

	"xnf/internal/exec"
	"xnf/internal/opt"
	"xnf/internal/storage"
	"xnf/internal/types"
)

// COResult is a fully extracted composite object: one row set per TAKEn
// output, in component order. Derived relationship outputs have a nil row
// set (the cache reconstructs their connections from the child rows).
type COResult struct {
	Outputs  []Output
	Rows     [][]types.Row
	Counters exec.Counters
}

// PlanTemplates compiles one physical plan per shipped output: the
// multi-output plan set of the paper's Sect. 5.1 in reusable template form.
// Templates carry no execution state of their own but plans hold iterator
// state in their nodes, so every execution must run private clones —
// ExecuteTemplates does that. The engine caches templates per catalog
// version (the CO analog of the SQL plan cache), and with vectorization
// enabled each leg's scan→filter→project pipeline is lowered to the batch
// engine.
func (c *Compiled) PlanTemplates(store *storage.Store, opts opt.Options) ([]exec.Plan, error) {
	if c.Recursive {
		return nil, fmt.Errorf("core: recursive COs run the fixpoint executor and have no plan templates")
	}
	comp := opt.NewCompiler(store, c.Graph, opts)
	plans := make([]exec.Plan, len(c.Outputs))
	for i, out := range c.Outputs {
		if out.Box == nil {
			continue // derived relationship: nothing shipped
		}
		plan, err := comp.CompileOutput(out.Box)
		if err != nil {
			return nil, fmt.Errorf("core: compiling output %s: %w", out.Name, err)
		}
		plans[i] = plan
	}
	return plans, nil
}

// ExecuteTemplates materializes the CO from compiled plan templates over a
// single execution context, so boxes shared in the QGM DAG (parents used
// by their own output, by child reachability and by connections) are
// spooled exactly once (Sect. 5.1's multiple-query optimization). Each
// template is cloned first, so callers may share templates between
// concurrent executions. With parallel set, one goroutine drives each
// output — the intra-query parallelism of the paper's Sect. 6 outlook;
// results are identical to the serial run.
func (c *Compiled) ExecuteTemplates(store *storage.Store, plans []exec.Plan, parallel bool) (*COResult, error) {
	clones := make([]exec.Plan, len(plans))
	for i, p := range plans {
		if p != nil {
			clones[i] = exec.ClonePlan(p)
		}
	}
	return c.executePlans(store, clones, parallel)
}

// executePlans drives plans that the caller owns outright (freshly
// compiled, or already cloned from shared templates).
func (c *Compiled) executePlans(store *storage.Store, clones []exec.Plan, parallel bool) (*COResult, error) {
	ctx := exec.NewCtx(store)
	res := &COResult{Outputs: c.Outputs, Rows: make([][]types.Row, len(c.Outputs))}
	if !parallel {
		for i, plan := range clones {
			if plan == nil {
				continue
			}
			rows, err := exec.Collect(ctx, plan)
			if err != nil {
				return nil, fmt.Errorf("core: executing output %s: %w", c.Outputs[i].Name, err)
			}
			res.Rows[i] = rows
		}
		res.Counters = ctx.Counters
		return res, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(clones))
	for i := range clones {
		if clones[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, err := exec.Collect(ctx, clones[i])
			if err != nil {
				errs[i] = fmt.Errorf("core: executing output %s: %w", c.Outputs[i].Name, err)
				return
			}
			res.Rows[i] = rows
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Counters = ctx.Counters
	return res, nil
}

// Execute materializes the CO set-oriented: every component table and
// every shipped connection table is produced by one multi-output plan over
// a single execution context.
func (c *Compiled) Execute(store *storage.Store, opts opt.Options) (*COResult, error) {
	if c.Recursive {
		return c.Rec.execute(store, opts)
	}
	plans, err := c.PlanTemplates(store, opts)
	if err != nil {
		return nil, err
	}
	// Freshly compiled plans are private to this call: no clone needed.
	return c.executePlans(store, plans, false)
}

// ExecuteParallel materializes the CO with one goroutine per output.
// Shared boxes are spooled exactly once (the execution context
// synchronizes the spool), so the parallel run does the same total work as
// the serial one with the independent outputs overlapped.
func (c *Compiled) ExecuteParallel(store *storage.Store, opts opt.Options) (*COResult, error) {
	if c.Recursive {
		return c.Rec.execute(store, opts)
	}
	plans, err := c.PlanTemplates(store, opts)
	if err != nil {
		return nil, err
	}
	return c.executePlans(store, plans, true)
}

// Stream delivers the CO as the heterogeneous tuple stream of Sect. 3:
// every tuple tagged with its component number. The wire layer sits on
// top of this.
func (c *Compiled) Stream(store *storage.Store, opts opt.Options, fn func(compID int, row types.Row) error) (*COResult, error) {
	res, err := c.Execute(store, opts)
	if err != nil {
		return nil, err
	}
	for i, rows := range res.Rows {
		for _, r := range rows {
			if err := fn(res.Outputs[i].CompID, r); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
