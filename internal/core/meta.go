package core

import (
	"xnf/internal/qgm"
)

// fillOutputMeta populates the shipped-row description and updatability
// metadata of the compiled outputs. Nodes are processed first so derived
// relationships can map their parent-key ordinals through the child's
// base-column mapping.
func fillOutputMeta(outs []Output, rels []*relInfo) {
	byName := make(map[string]*Output, len(outs))
	for i := range outs {
		byName[up(outs[i].Name)] = &outs[i]
	}
	for i := range outs {
		o := &outs[i]
		if o.Box != nil {
			o.ColNames = o.Box.HeadNames()
			o.ColTypes = o.Box.HeadTypes()
		}
		if !o.IsRel {
			o.BaseTable, o.BaseCols = traceBase(o.Box)
		}
	}
	for i := range outs {
		o := &outs[i]
		if !o.IsRel {
			continue
		}
		if o.DerivedFrom != "" {
			if child, ok := byName[up(o.DerivedFrom)]; ok && child.BaseTable != "" {
				cols := make([]string, len(o.DerivedParentOrds))
				valid := true
				for j, ord := range o.DerivedParentOrds {
					if ord >= len(child.BaseCols) || child.BaseCols[ord] == "" {
						valid = false
						break
					}
					cols[j] = child.BaseCols[ord]
				}
				if valid {
					o.FKChildCols = cols
				}
			}
			continue
		}
		// USING-based relationships: recover the connect table when the
		// connection head maps straight onto one base table's columns.
		for _, ri := range rels {
			if up(ri.out.Name) != up(o.Name) || len(ri.usingQs) != 1 {
				continue
			}
			fillConnectMeta(o, ri)
		}
	}
}

// traceBase follows a single-quantifier Select chain down to a base table
// and maps each head column to its base column name. It returns ("", nil)
// when the component is not a plain projection/restriction of one table
// (join, aggregate, union — the paper's non-updatable rich views).
func traceBase(box *qgm.Box) (string, []string) {
	if box == nil {
		return "", nil
	}
	if box.Kind == qgm.BaseTable {
		return box.Table, box.HeadNames()
	}
	if box.Kind != qgm.Select || len(box.Quants) != 1 || box.Quants[0].Type != qgm.ForEach {
		return "", nil
	}
	innerTable, innerCols := traceBase(box.Quants[0].Input)
	if innerTable == "" {
		return "", nil
	}
	cols := make([]string, len(box.Head))
	for i, h := range box.Head {
		if cr, ok := h.Expr.(*qgm.ColRef); ok && cr.Q == box.Quants[0] && cr.Ord < len(innerCols) {
			cols[i] = innerCols[cr.Ord]
		}
	}
	return innerTable, cols
}

// fillConnectMeta extracts the connect-table mapping of a (b)-form USING
// relationship: the connection row's parent-key and child-key columns must
// each trace to a column of the single USING base table or be joined to it
// by the parent-side predicates.
func fillConnectMeta(o *Output, ri *relInfo) {
	if o.Box == nil || len(ri.sideBoxes) == 0 || o.Box != ri.sideBoxes[0] {
		return
	}
	side := ri.sideBoxes[0]
	uq := findUsingQuant(side, ri)
	if uq == nil || uq.Input.Kind != qgm.BaseTable {
		return
	}
	colOf := func(headOrd int) string {
		if headOrd >= len(side.Head) {
			return ""
		}
		cr, ok := side.Head[headOrd].Expr.(*qgm.ColRef)
		if !ok {
			return ""
		}
		if cr.Q == uq {
			return uq.Input.Head[cr.Ord].Name
		}
		// A parent-key head column: find a side predicate equating it to a
		// USING column.
		for _, p := range side.Preds {
			eq, ok := p.(*qgm.BinOp)
			if !ok || eq.Op != "=" {
				continue
			}
			l, lok := eq.L.(*qgm.ColRef)
			r, rok := eq.R.(*qgm.ColRef)
			if !lok || !rok {
				continue
			}
			if l.Q == cr.Q && l.Ord == cr.Ord && r.Q == uq {
				return uq.Input.Head[r.Ord].Name
			}
			if r.Q == cr.Q && r.Ord == cr.Ord && l.Q == uq {
				return uq.Input.Head[l.Ord].Name
			}
		}
		return ""
	}
	parentCols := make([]string, len(o.ParentKeyOrds))
	for i, ord := range o.ParentKeyOrds {
		if parentCols[i] = colOf(ord); parentCols[i] == "" {
			return
		}
	}
	if len(o.ChildKeyOrds) != 1 {
		return
	}
	childCols := make([]string, len(o.ChildKeyOrds[0]))
	for i, ord := range o.ChildKeyOrds[0] {
		if childCols[i] = colOf(ord); childCols[i] == "" {
			return
		}
	}
	o.ConnectTable = uq.Input.Table
	o.ConnectParentCols = parentCols
	o.ConnectChildCols = childCols
}

// findUsingQuant locates the side-box quantifier ranging over the USING
// table (the one whose input matches the relationship's USING input).
func findUsingQuant(side *qgm.Box, ri *relInfo) *qgm.Quantifier {
	if len(ri.usingQs) != 1 {
		return nil
	}
	target := ri.usingQs[0].Input
	for _, q := range side.Quants {
		if q.Input == target {
			return q
		}
	}
	return nil
}
