package core

import (
	"fmt"

	"xnf/internal/exec"
	"xnf/internal/opt"
	"xnf/internal/qgm"
	"xnf/internal/semantics"
	"xnf/internal/storage"
	"xnf/internal/types"
)

// RecursiveQuery is the compiled form of a cyclic CO (Sect. 2: "An XNF
// query may also specify a recursive CO being identified by a cycle in the
// query's schema graph"). The components and connections are evaluated
// over their *local* definitions, then reachability is computed by a
// breadth-first fixpoint from the root tuples along the connections.
type RecursiveQuery struct {
	Outputs []Output
	g       *qgm.Graph
	nodes   []recNode
	rels    []recRel
}

type recNode struct {
	name    string
	box     *qgm.Box
	keyCols []int
	root    bool
}

type recRel struct {
	name     string
	box      *qgm.Box
	parent   string
	children []string
	// connection-tuple layout: parent keys first, then each child's keys.
	parentKey []int
	childKeys [][]int
}

// buildRecursive prepares the fixpoint execution of a cyclic CO. The
// semantic-phase boxes are used unmodified (no reachability rewrite); the
// Top box is rebuilt to reference every component so compilation sees all
// of them.
func buildRecursive(g *qgm.Graph, xnfBox *qgm.Box, takes []semantics.TakeSpec) (*RecursiveQuery, error) {
	for _, t := range takes {
		if len(t.Columns) > 0 {
			return nil, fmt.Errorf("core: TAKE column projection is not supported on recursive COs")
		}
	}
	rq := &RecursiveQuery{g: g}
	isChild := make(map[string]bool)
	for _, o := range xnfBox.XNFOutputs {
		if o.IsRel {
			for _, ch := range o.Children {
				isChild[up(ch)] = true
			}
		}
	}
	nodeKey := make(map[string][]int)
	var firstNode string
	anyRoot := false
	for _, o := range xnfBox.XNFOutputs {
		if o.IsRel {
			continue
		}
		if firstNode == "" {
			firstNode = o.Name
		}
		keys := semantics.ComponentKeyOrds(o.Box)
		nodeKey[up(o.Name)] = keys
		root := !isChild[up(o.Name)]
		if root {
			anyRoot = true
		}
		rq.nodes = append(rq.nodes, recNode{name: o.Name, box: o.Box, keyCols: keys, root: root})
	}
	if !anyRoot {
		// A pure cycle has no in-degree-zero node; the first component
		// anchors the CO (documented convention).
		for i := range rq.nodes {
			if rq.nodes[i].name == firstNode {
				rq.nodes[i].root = true
			}
		}
	}
	for _, o := range xnfBox.XNFOutputs {
		if !o.IsRel {
			continue
		}
		rr := recRel{name: o.Name, box: o.Box, parent: o.Parent, children: o.Children}
		at := 0
		pk := nodeKey[up(o.Parent)]
		rr.parentKey = seq(at, len(pk))
		at += len(pk)
		for _, ch := range o.Children {
			ck := nodeKey[up(ch)]
			rr.childKeys = append(rr.childKeys, seq(at, len(ck)))
			at += len(ck)
		}
		if at != len(o.Box.Head) {
			return nil, fmt.Errorf("core: recursive relationship %s: head arity mismatch", o.Name)
		}
		rq.rels = append(rq.rels, rr)
	}

	// Rebuild the Top to reference every component and connection box so
	// Reachable()/Validate see the whole graph.
	top := g.NewBox(qgm.Top, "")
	top.Limit = -1
	for _, t := range takes {
		o := t.Output
		q := g.NewQuant(top, qgm.ForEach, o.Name, o.Box)
		spec := qgm.TopOutput{Name: o.Name, CompID: len(rq.Outputs), Quant: q, IsRel: o.IsRel,
			Parent: o.Parent, Children: o.Children, Role: o.Role}
		out := Output{Name: o.Name, CompID: len(rq.Outputs), IsRel: o.IsRel,
			Parent: o.Parent, Children: o.Children, Role: o.Role, Box: o.Box}
		if o.IsRel {
			for _, rr := range rq.rels {
				if rr.name == o.Name {
					out.ParentKeyOrds = rr.parentKey
					out.ChildKeyOrds = rr.childKeys
				}
			}
		} else {
			out.KeyCols = nodeKey[up(o.Name)]
		}
		top.Outputs = append(top.Outputs, spec)
		rq.Outputs = append(rq.Outputs, out)
	}
	g.TopBox = top
	g.GC()
	fillOutputMeta(rq.Outputs, nil)
	return rq, nil
}

func seq(from, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = from + i
	}
	return out
}

// execute runs the fixpoint: materialize local components and connections,
// seed the roots, propagate reachability along connections, then filter.
func (rq *RecursiveQuery) execute(store *storage.Store, opts opt.Options) (*COResult, error) {
	comp := opt.NewCompiler(store, rq.g, opts)
	ctx := exec.NewCtx(store)

	materialize := func(box *qgm.Box) ([]types.Row, error) {
		plan, _, err := comp.CompileBox(box, nil)
		if err != nil {
			return nil, err
		}
		return exec.Collect(ctx, plan)
	}

	type nodeState struct {
		rec   *recNode
		rows  []types.Row
		byKey map[string]int
		reach map[string]bool
	}
	nodes := make(map[string]*nodeState)
	for i := range rq.nodes {
		n := &rq.nodes[i]
		rows, err := materialize(n.box)
		if err != nil {
			return nil, fmt.Errorf("core: recursive component %s: %w", n.name, err)
		}
		st := &nodeState{rec: n, rows: rows, byKey: make(map[string]int, len(rows)), reach: make(map[string]bool)}
		for ri, r := range rows {
			st.byKey[r.Key(n.keyCols)] = ri
		}
		nodes[up(n.name)] = st
	}
	type connSet struct {
		rec  *recRel
		rows []types.Row
		// byParent indexes connection rows by parent key.
		byParent map[string][]int
	}
	conns := make([]*connSet, len(rq.rels))
	for i := range rq.rels {
		rr := &rq.rels[i]
		rows, err := materialize(rr.box)
		if err != nil {
			return nil, fmt.Errorf("core: recursive relationship %s: %w", rr.name, err)
		}
		cs := &connSet{rec: rr, rows: rows, byParent: make(map[string][]int)}
		for ri, r := range rows {
			k := r.Key(rr.parentKey)
			cs.byParent[k] = append(cs.byParent[k], ri)
		}
		conns[i] = cs
	}

	// Seed roots and propagate (breadth-first; terminates because the
	// reachable sets only grow within finite local populations).
	type item struct {
		node string
		key  string
	}
	var queue []item
	for _, st := range nodes {
		if !st.rec.root {
			continue
		}
		for _, r := range st.rows {
			k := r.Key(st.rec.keyCols)
			if !st.reach[k] {
				st.reach[k] = true
				queue = append(queue, item{node: up(st.rec.name), key: k})
			}
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, cs := range conns {
			if up(cs.rec.parent) != cur.node {
				continue
			}
			for _, ri := range cs.byParent[cur.key] {
				row := cs.rows[ri]
				for ci, ch := range cs.rec.children {
					chState := nodes[up(ch)]
					ck := row.Key(cs.rec.childKeys[ci])
					if _, exists := chState.byKey[ck]; !exists {
						continue
					}
					if !chState.reach[ck] {
						chState.reach[ck] = true
						queue = append(queue, item{node: up(ch), key: ck})
					}
				}
			}
		}
	}

	res := &COResult{Outputs: rq.Outputs, Rows: make([][]types.Row, len(rq.Outputs))}
	for i, out := range rq.Outputs {
		if !out.IsRel {
			st := nodes[up(out.Name)]
			for _, r := range st.rows {
				if st.reach[r.Key(st.rec.keyCols)] {
					res.Rows[i] = append(res.Rows[i], r)
				}
			}
			continue
		}
		for _, cs := range conns {
			if cs.rec.name != out.Name {
				continue
			}
			pState := nodes[up(cs.rec.parent)]
			for _, r := range cs.rows {
				if pState.reach[r.Key(cs.rec.parentKey)] {
					res.Rows[i] = append(res.Rows[i], r)
				}
			}
		}
	}
	res.Counters = ctx.Counters
	return res, nil
}
