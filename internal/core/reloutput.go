package core

import (
	"fmt"

	"xnf/internal/ast"
	"xnf/internal/parser"
	"xnf/internal/qgm"
)

// buildRelOutput constructs the Top output for one TAKEn relationship,
// applying the paper's output optimizations in order of preference:
//
//	(a) derived: a binary relationship whose predicate equates the parent
//	    key with child columns ships nothing — the connection is read off
//	    the child's own rows (the footnote optimization of Sect. 4.2);
//	(b) parent-side: when every child key is equated to a parent/USING
//	    column, the shared S_R box doubles as the connection table (no
//	    extra operations — this is what makes empproperty cost 0 in
//	    Table 1);
//	(c) full join: the semantic-phase relationship box joins all partners
//	    and ships explicit key pairs.
func buildRelOutput(g *qgm.Graph, top *qgm.Box, ri *relInfo,
	effective func(string) *qgm.Box, nodeKey map[string][]int,
	takenNode map[string]bool, compID int) (*Output, error) {

	if ri == nil {
		return nil, fmt.Errorf("core: internal: relationship info missing")
	}
	parentKeys := nodeKey[up(ri.out.Parent)]

	// (a) derived form.
	if len(ri.childQs) == 1 && len(ri.usingQs) == 0 && takenNode[up(ri.out.Children[0])] {
		if childOrds := derivedParentOrds(ri, parentKeys); childOrds != nil {
			return &Output{
				Name: ri.out.Name, CompID: compID, IsRel: true,
				Parent: ri.out.Parent, Children: ri.out.Children, Role: ri.out.Role,
				DerivedFrom:       ri.out.Children[0],
				DerivedParentOrds: childOrds,
			}, nil
		}
	}

	// (a') the same condition but with the child not shipped in full: the
	// connection is a pure projection of the child's (reachable) rows — no
	// join work at all.
	if len(ri.childQs) == 1 && len(ri.usingQs) == 0 {
		if childOrds := derivedParentOrds(ri, parentKeys); childOrds != nil {
			childBox := effective(ri.out.Children[0])
			childKeys := nodeKey[up(ri.out.Children[0])]
			proj := g.NewBox(qgm.Select, ri.out.Name+"_conn")
			cq := g.NewQuant(proj, qgm.ForEach, ri.out.Children[0], childBox)
			add := func(ord int) int {
				ho := len(proj.Head)
				h := childBox.Head[ord]
				proj.Head = append(proj.Head, qgm.HeadColumn{Name: h.Name, Type: h.Type, Expr: &qgm.ColRef{Q: cq, Ord: ord}})
				return ho
			}
			pk := make([]int, len(childOrds))
			for i, co := range childOrds {
				pk[i] = add(co)
			}
			ck := make([]int, len(childKeys))
			for i, kc := range childKeys {
				ck[i] = add(kc)
			}
			proj.Distinct = true
			q := g.NewQuant(top, qgm.ForEach, ri.out.Name, proj)
			out := &Output{
				Name: ri.out.Name, CompID: compID, IsRel: true,
				Parent: ri.out.Parent, Children: ri.out.Children, Role: ri.out.Role,
				Box: proj, ParentKeyOrds: pk, ChildKeyOrds: [][]int{ck},
			}
			top.Outputs = append(top.Outputs, qgm.TopOutput{
				Name: ri.out.Name, CompID: compID, Quant: q, IsRel: true,
				Parent: ri.out.Parent, Children: ri.out.Children, Role: ri.out.Role,
				ParentKeyCols: pk, ChildKeyCols: [][]int{ck},
			})
			return out, nil
		}
	}

	// (b) parent-side form (binary relationships).
	if len(ri.childQs) == 1 {
		childKeys := nodeKey[up(ri.out.Children[0])]
		if childOrds := parentSideChildKeyOrds(ri, 0, childKeys); childOrds != nil {
			side := ri.sideBoxes[0]
			side.Distinct = true // connections are a set
			q := g.NewQuant(top, qgm.ForEach, ri.out.Name, side)
			pk := make([]int, len(parentKeys))
			for i := range parentKeys {
				pk[i] = i // buildParentSide exposes parent keys first
			}
			out := &Output{
				Name: ri.out.Name, CompID: compID, IsRel: true,
				Parent: ri.out.Parent, Children: ri.out.Children, Role: ri.out.Role,
				Box: side, ParentKeyOrds: pk, ChildKeyOrds: [][]int{childOrds},
			}
			top.Outputs = append(top.Outputs, qgm.TopOutput{
				Name: ri.out.Name, CompID: compID, Quant: q, IsRel: true,
				Parent: ri.out.Parent, Children: ri.out.Children, Role: ri.out.Role,
				ParentKeyCols: pk, ChildKeyCols: [][]int{childOrds},
			})
			return out, nil
		}
	}

	// (c) full-join form: the semantic relationship box already carries
	// parent keys then child keys in its head.
	box := ri.box
	pk := make([]int, len(parentKeys))
	for i := range parentKeys {
		pk[i] = i
	}
	var childOrds [][]int
	at := len(parentKeys)
	for _, ch := range ri.out.Children {
		ck := nodeKey[up(ch)]
		ords := make([]int, len(ck))
		for i := range ck {
			ords[i] = at
			at++
		}
		childOrds = append(childOrds, ords)
	}
	if at != len(box.Head) {
		return nil, fmt.Errorf("core: relationship %s: connection head has %d columns, expected %d", ri.out.Name, len(box.Head), at)
	}
	q := g.NewQuant(top, qgm.ForEach, ri.out.Name, box)
	out := &Output{
		Name: ri.out.Name, CompID: compID, IsRel: true,
		Parent: ri.out.Parent, Children: ri.out.Children, Role: ri.out.Role,
		Box: box, ParentKeyOrds: pk, ChildKeyOrds: childOrds,
	}
	top.Outputs = append(top.Outputs, qgm.TopOutput{
		Name: ri.out.Name, CompID: compID, Quant: q, IsRel: true,
		Parent: ri.out.Parent, Children: ri.out.Children, Role: ri.out.Role,
		ParentKeyCols: pk, ChildKeyCols: childOrds,
	})
	return out, nil
}

// derivedParentOrds checks the (a)-form condition: every relationship
// predicate is an equality between a parent column and a child column, and
// those parent columns cover the parent key exactly. It returns, per
// parent-key ordinal, the child-head ordinal carrying the parent key.
func derivedParentOrds(ri *relInfo, parentKeys []int) []int {
	cq := ri.childQs[0]
	pq := ri.parentQ
	byParentOrd := make(map[int]int)
	for _, p := range ri.box.Preds {
		eq, ok := p.(*qgm.BinOp)
		if !ok || eq.Op != "=" {
			return nil
		}
		l, lok := eq.L.(*qgm.ColRef)
		r, rok := eq.R.(*qgm.ColRef)
		if !lok || !rok {
			return nil
		}
		switch {
		case l.Q == pq && r.Q == cq:
			byParentOrd[l.Ord] = r.Ord
		case r.Q == pq && l.Q == cq:
			byParentOrd[r.Ord] = l.Ord
		default:
			return nil
		}
	}
	out := make([]int, len(parentKeys))
	for i, pk := range parentKeys {
		co, ok := byParentOrd[pk]
		if !ok {
			return nil
		}
		out[i] = co
	}
	return out
}

// parentSideChildKeyOrds checks the (b)-form condition for one child: each
// of its key columns is equated (by a link predicate) to a column exposed
// on the parent-side box's head. It returns the S_R head ordinals carrying
// the child key, in key order.
func parentSideChildKeyOrds(ri *relInfo, ci int, childKeys []int) []int {
	wq := ri.childWQs[ci]
	eq := ri.sideEqs[ci]
	byChildOrd := make(map[int]int)
	for _, l := range ri.sideLinks[ci] {
		b, ok := l.(*qgm.BinOp)
		if !ok || b.Op != "=" {
			return nil
		}
		lc, lok := b.L.(*qgm.ColRef)
		rc, rok := b.R.(*qgm.ColRef)
		if !lok || !rok {
			return nil
		}
		switch {
		case lc.Q == eq && rc.Q == wq:
			byChildOrd[rc.Ord] = lc.Ord
		case rc.Q == eq && lc.Q == wq:
			byChildOrd[lc.Ord] = rc.Ord
		default:
			return nil
		}
	}
	out := make([]int, len(childKeys))
	for i, ck := range childKeys {
		ho, ok := byChildOrd[ck]
		if !ok {
			return nil
		}
		out[i] = ho
	}
	return out
}

// ParseViewText re-parses a stored XNF view's text into its query.
func ParseViewText(text string) (*ast.XNFQuery, error) { return parseView(text) }

// parseView re-parses a stored XNF view's text.
func parseView(text string) (*ast.XNFQuery, error) {
	stmt, err := parser.Parse(text)
	if err != nil {
		return nil, err
	}
	cv, ok := stmt.(*ast.CreateViewStmt)
	if !ok || cv.XNF == nil {
		return nil, fmt.Errorf("core: stored view is not an XNF view")
	}
	return cv.XNF, nil
}
