package enc

import (
	"encoding/binary"
	"fmt"
)

// Checkpoint serialization of encoded payloads. The checkpoint file's CRC
// guards integrity end to end; this codec still validates every length,
// width and code it reads, so a torn or corrupt payload fails with an
// error instead of panicking or silently mis-decoding — the recovery path
// depends on that to fall back to an older checkpoint.

// AppendIntPack appends the binary encoding of p.
func AppendIntPack(buf []byte, p *IntPack) []byte {
	buf = binary.AppendVarint(buf, p.Min)
	buf = append(buf, p.Codes.W)
	buf = binary.AppendUvarint(buf, uint64(p.Codes.N))
	for _, w := range p.Codes.Words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// DecodeIntPack decodes an IntPack, returning the remaining bytes.
func DecodeIntPack(buf []byte) (*IntPack, []byte, error) {
	min, k := binary.Varint(buf)
	if k <= 0 {
		return nil, nil, fmt.Errorf("enc: bad pack min")
	}
	buf = buf[k:]
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("enc: short pack header")
	}
	w := buf[0]
	buf = buf[1:]
	if w > MaxPackBits {
		return nil, nil, fmt.Errorf("enc: pack width %d out of range", w)
	}
	bits, buf, err := decodeBits(buf, w, "pack")
	if err != nil {
		return nil, nil, err
	}
	return &IntPack{Min: min, Codes: bits}, buf, nil
}

// AppendStringDict appends the binary encoding of d.
func AppendStringDict(buf []byte, d *StringDict) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.Vals)))
	for _, v := range d.Vals {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	buf = append(buf, d.Codes.W)
	buf = binary.AppendUvarint(buf, uint64(d.Codes.N))
	for _, w := range d.Codes.Words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// DecodeStringDict decodes a StringDict, validating that the dictionary is
// strictly sorted and unique (Find depends on it) and every code is in
// range, and returning the remaining bytes.
func DecodeStringDict(buf []byte) (*StringDict, []byte, error) {
	card, k := binary.Uvarint(buf)
	if k <= 0 || card > MaxDictCard {
		return nil, nil, fmt.Errorf("enc: bad dict cardinality")
	}
	buf = buf[k:]
	vals := make([]string, card)
	for i := range vals {
		sl, k := binary.Uvarint(buf)
		if k <= 0 || sl > uint64(len(buf[k:])) {
			return nil, nil, fmt.Errorf("enc: bad dict value")
		}
		vals[i] = string(buf[k : k+int(sl)])
		buf = buf[k+int(sl):]
		if i > 0 && vals[i-1] >= vals[i] {
			return nil, nil, fmt.Errorf("enc: dictionary not sorted/unique")
		}
	}
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("enc: short dict header")
	}
	w := buf[0]
	buf = buf[1:]
	if w != dictWidth(int(card)) {
		return nil, nil, fmt.Errorf("enc: dict width %d does not match cardinality %d", w, card)
	}
	bits, buf, err := decodeBits(buf, w, "dict")
	if err != nil {
		return nil, nil, err
	}
	d := &StringDict{Vals: vals, Codes: bits}
	if card > 0 {
		for i := 0; i < d.Codes.N; i++ {
			if d.Codes.Get(i) >= card {
				return nil, nil, fmt.Errorf("enc: dict code out of range at slot %d", i)
			}
		}
	} else if d.Codes.N != 0 && d.Codes.W != 0 {
		return nil, nil, fmt.Errorf("enc: empty dictionary with nonzero codes")
	}
	return d, buf, nil
}

// decodeBits decodes a [n uvarint][words] code vector of the given width,
// checking the word count against the declared slot count exactly.
func decodeBits(buf []byte, w uint8, what string) (BitVec, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || n > MaxLen {
		return BitVec{}, nil, fmt.Errorf("enc: bad %s length", what)
	}
	buf = buf[k:]
	nw := bitWords(int(n), w)
	if len(buf) < nw*8 {
		return BitVec{}, nil, fmt.Errorf("enc: short %s payload", what)
	}
	b := BitVec{W: w, N: int(n), Words: make([]uint64, nw)}
	for i := 0; i < nw; i++ {
		b.Words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return b, buf[nw*8:], nil
}
