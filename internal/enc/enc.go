// Package enc provides per-segment compressed column encodings for the
// column store: dictionary encoding for strings (a sorted, unique value
// dictionary plus a bit-packed code vector — the sort order makes code
// order equal string order, so equality AND range predicates evaluate as
// integer compares on codes) and frame-of-reference bit packing for
// integers (values stored as deltas from the segment minimum, packed to
// the minimal bit width). Encodings are chosen per column per segment at
// ANALYZE/Maintain time by the heuristics here, with raw storage as the
// universal fallback. Encoded payloads are immutable once built; the
// column store drops back to raw vectors before any in-place write.
package enc

import (
	"math/bits"
	"sort"
)

// MaxPackBits is the widest frame-of-reference code worth packing: above
// it the space win shrinks below 25% and the shift/mask decode stops
// paying for itself, so such columns stay raw.
const MaxPackBits = 48

// MaxDictCard is the largest dictionary a segment column may carry.
// Cardinalities above it are not "low-cardinality tags" anymore; raw
// storage keeps them.
const MaxDictCard = 2048

// MaxLen bounds the slot count a decoded payload may claim, so a corrupt
// length prefix cannot drive a huge allocation. Segments are 4096 slots;
// the bound leaves headroom without trusting the input.
const MaxLen = 1 << 16

// BitVec is a vector of n fixed-width codes packed least-significant-bit
// first into 64-bit words. Width 0 means every code is zero (a constant
// column) and no words are stored.
type BitVec struct {
	W     uint8 // bits per code; 0..63
	N     int
	Words []uint64
}

func newBitVec(n int, w uint8) BitVec {
	return BitVec{W: w, N: n, Words: make([]uint64, bitWords(n, w))}
}

// bitWords returns the word count needed for n codes of width w.
func bitWords(n int, w uint8) int {
	return (n*int(w) + 63) / 64
}

// Get returns code i. Codes may straddle a word boundary.
func (b *BitVec) Get(i int) uint64 {
	w := uint(b.W)
	if w == 0 {
		return 0
	}
	bit := uint(i) * w
	off := bit & 63
	v := b.Words[bit>>6] >> off
	if off+w > 64 {
		v |= b.Words[(bit>>6)+1] << (64 - off)
	}
	return v & (1<<w - 1)
}

func (b *BitVec) set(i int, v uint64) {
	w := uint(b.W)
	if w == 0 {
		return
	}
	bit := uint(i) * w
	off := bit & 63
	b.Words[bit>>6] |= v << off
	if off+w > 64 {
		b.Words[(bit>>6)+1] |= v >> (64 - off)
	}
}

// IntPack is a frame-of-reference packed integer column: value i is
// Min + code(i), with codes packed to the minimal bit width. The addition
// wraps in uint64 space, so columns spanning the int64 limits round-trip
// bit-exactly.
type IntPack struct {
	Min   int64
	Codes BitVec
}

// Len returns the slot count.
func (p *IntPack) Len() int { return p.Codes.N }

// At decodes slot i.
func (p *IntPack) At(i int) int64 {
	return int64(uint64(p.Min) + p.Codes.Get(i))
}

// Bytes reports the resident size of the packed payload.
func (p *IntPack) Bytes() int64 { return int64(len(p.Codes.Words))*8 + 16 }

// PackInts packs vals to the minimal frame-of-reference width. skip marks
// slots whose payload is meaningless (NULL or tombstoned slots hold zero
// values); they pack as the frame minimum and are never read back through
// the null bitmap. Returns nil when the value range needs more than
// MaxPackBits bits — the caller keeps the raw vector.
func PackInts(vals []int64, skip func(int) bool) *IntPack {
	var min, max int64
	seen := false
	for i, v := range vals {
		if skip != nil && skip(i) {
			continue
		}
		if !seen || v < min {
			min = v
		}
		if !seen || v > max {
			max = v
		}
		seen = true
	}
	if !seen {
		// Every slot is NULL/tombstoned: a zero-width constant column.
		return &IntPack{Min: 0, Codes: newBitVec(len(vals), 0)}
	}
	urange := uint64(max) - uint64(min) // two's-complement safe across sign
	w := uint8(bits.Len64(urange))
	if w > MaxPackBits {
		return nil
	}
	p := &IntPack{Min: min, Codes: newBitVec(len(vals), w)}
	for i, v := range vals {
		if skip != nil && skip(i) {
			continue // packs as code 0 == Min
		}
		p.Codes.set(i, uint64(v)-uint64(min))
	}
	return p
}

// StringDict is a dictionary-encoded string column: Vals is the sorted,
// unique dictionary and Codes holds one dictionary index per slot. Because
// Vals is sorted, comparing codes compares strings.
type StringDict struct {
	Vals  []string
	Codes BitVec
}

// Len returns the slot count.
func (d *StringDict) Len() int { return d.Codes.N }

// Card returns the dictionary cardinality.
func (d *StringDict) Card() int { return len(d.Vals) }

// CodeAt returns the dictionary code of slot i.
func (d *StringDict) CodeAt(i int) int { return int(d.Codes.Get(i)) }

// At decodes slot i. An empty dictionary (every slot NULL) decodes as "".
func (d *StringDict) At(i int) string {
	if len(d.Vals) == 0 {
		return ""
	}
	return d.Vals[d.Codes.Get(i)]
}

// Find locates s in the dictionary: the insertion position in code order,
// and whether s is present. Kernels turn any comparison against a constant
// into integer compares on codes with this — for found constants the code
// compares directly; otherwise codes >= pos are greater than s and codes
// < pos are smaller.
func (d *StringDict) Find(s string) (int, bool) {
	pos := sort.SearchStrings(d.Vals, s)
	return pos, pos < len(d.Vals) && d.Vals[pos] == s
}

// Bytes reports the resident size of the dictionary payload.
func (d *StringDict) Bytes() int64 {
	total := int64(len(d.Codes.Words))*8 + int64(len(d.Vals))*16 + 16
	for _, s := range d.Vals {
		total += int64(len(s))
	}
	return total
}

// dictWidth is the minimal code width for a dictionary of the given
// cardinality (0 for constant or empty columns).
func dictWidth(card int) uint8 {
	if card <= 1 {
		return 0
	}
	return uint8(bits.Len64(uint64(card - 1)))
}

// DictStrings dictionary-encodes vals if profitable: the distinct count
// must stay within MaxDictCard and at most half the meaningful slot count
// (above that the dictionary plus codes stop being clearly smaller than
// raw headers, and code-compare kernels stop being clearly faster).
// skip marks NULL/tombstoned slots; they take code 0 and are never read
// back. Returns nil when raw storage should stay.
func DictStrings(vals []string, skip func(int) bool) *StringDict {
	distinct := make(map[string]struct{}, 64)
	n := 0
	for i, v := range vals {
		if skip != nil && skip(i) {
			continue
		}
		n++
		distinct[v] = struct{}{}
		if len(distinct) > MaxDictCard {
			return nil
		}
	}
	if n == 0 {
		return &StringDict{Codes: newBitVec(len(vals), 0)}
	}
	if 2*len(distinct) > n {
		return nil
	}
	d := &StringDict{Vals: make([]string, 0, len(distinct))}
	for v := range distinct {
		d.Vals = append(d.Vals, v)
	}
	sort.Strings(d.Vals)
	codeOf := make(map[string]uint64, len(d.Vals))
	for c, v := range d.Vals {
		codeOf[v] = uint64(c)
	}
	d.Codes = newBitVec(len(vals), dictWidth(len(d.Vals)))
	for i, v := range vals {
		if skip != nil && skip(i) {
			continue // code 0
		}
		d.Codes.set(i, codeOf[v])
	}
	return d
}
