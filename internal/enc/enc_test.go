package enc

import (
	"fmt"
	"math"
	"testing"
)

func TestPackIntsRoundTrip(t *testing.T) {
	cases := [][]int64{
		{},
		{0},
		{5, 5, 5, 5},
		{-3, -1, 0, 7, 1000},
		{math.MinInt64, math.MinInt64 + 100}, // near the low limit
		{math.MaxInt64 - 50, math.MaxInt64},  // near the high limit
		{1 << 40, 1<<40 + 1<<47, 1 << 40},    // wide but packable
		{-(1 << 46), 1 << 46},                // crosses zero, 47-48 bits
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, // dense small
	}
	for ci, vals := range cases {
		p := PackInts(vals, nil)
		if p == nil {
			t.Fatalf("case %d: expected packable", ci)
		}
		if p.Len() != len(vals) {
			t.Fatalf("case %d: len %d != %d", ci, p.Len(), len(vals))
		}
		for i, want := range vals {
			if got := p.At(i); got != want {
				t.Fatalf("case %d slot %d: %d != %d", ci, i, got, want)
			}
		}
		buf := AppendIntPack(nil, p)
		q, rest, err := DecodeIntPack(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("case %d: decode err=%v rest=%d", ci, err, len(rest))
		}
		for i, want := range vals {
			if got := q.At(i); got != want {
				t.Fatalf("case %d decoded slot %d: %d != %d", ci, i, got, want)
			}
		}
	}
}

func TestPackIntsRejectsWideRanges(t *testing.T) {
	if p := PackInts([]int64{math.MinInt64, math.MaxInt64}, nil); p != nil {
		t.Fatal("full-range column must stay raw")
	}
	if p := PackInts([]int64{0, 1 << 49}, nil); p != nil {
		t.Fatal("range over MaxPackBits must stay raw")
	}
}

func TestPackIntsSkip(t *testing.T) {
	vals := []int64{0, 100, 0, 102, 0} // zeros are NULL payload slots
	skip := func(i int) bool { return i%2 == 0 }
	p := PackInts(vals, skip)
	if p == nil {
		t.Fatal("expected packable")
	}
	// Width reflects only meaningful slots: range [100,102] is 2 bits.
	if p.Codes.W > 2 {
		t.Fatalf("width %d, want <= 2 (skip slots must not widen the frame)", p.Codes.W)
	}
	if p.At(1) != 100 || p.At(3) != 102 {
		t.Fatalf("meaningful slots corrupted: %d %d", p.At(1), p.At(3))
	}
	// All-skip packs as a constant column.
	q := PackInts(vals, func(int) bool { return true })
	if q == nil || q.Codes.W != 0 {
		t.Fatalf("all-skip column should pack to width 0, got %+v", q)
	}
}

func TestDictStringsRoundTripAndOrder(t *testing.T) {
	vals := make([]string, 400)
	for i := range vals {
		vals[i] = fmt.Sprintf("tag%02d", i%13)
	}
	d := DictStrings(vals, nil)
	if d == nil {
		t.Fatal("low-cardinality column must encode")
	}
	if d.Card() != 13 {
		t.Fatalf("cardinality %d, want 13", d.Card())
	}
	for i, want := range vals {
		if got := d.At(i); got != want {
			t.Fatalf("slot %d: %q != %q", i, got, want)
		}
	}
	// Sorted dictionary: code order is string order.
	for i := 1; i < len(d.Vals); i++ {
		if d.Vals[i-1] >= d.Vals[i] {
			t.Fatalf("dictionary not sorted at %d: %q >= %q", i, d.Vals[i-1], d.Vals[i])
		}
	}
	// Find: present and absent probes bracket correctly.
	if pos, ok := d.Find("tag05"); !ok || d.Vals[pos] != "tag05" {
		t.Fatalf("Find present: pos=%d ok=%v", pos, ok)
	}
	if pos, ok := d.Find("tag05x"); ok || pos != 6 {
		t.Fatalf("Find absent: pos=%d ok=%v, want 6 false", pos, ok)
	}
	buf := AppendStringDict(nil, d)
	q, rest, err := DecodeStringDict(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode err=%v rest=%d", err, len(rest))
	}
	for i, want := range vals {
		if got := q.At(i); got != want {
			t.Fatalf("decoded slot %d: %q != %q", i, got, want)
		}
	}
}

func TestDictStringsRejectsHighCardinality(t *testing.T) {
	vals := make([]string, 100)
	for i := range vals {
		vals[i] = fmt.Sprintf("unique-%d", i)
	}
	if d := DictStrings(vals, nil); d != nil {
		t.Fatal("all-distinct column must stay raw")
	}
}

func TestDictStringsAllNull(t *testing.T) {
	vals := make([]string, 10)
	d := DictStrings(vals, func(int) bool { return true })
	if d == nil || d.Card() != 0 {
		t.Fatalf("all-null column should carry an empty dictionary: %+v", d)
	}
	if d.At(3) != "" {
		t.Fatal("empty dictionary must decode as empty string")
	}
	buf := AppendStringDict(nil, d)
	if _, rest, err := DecodeStringDict(buf); err != nil || len(rest) != 0 {
		t.Fatalf("decode err=%v rest=%d", err, len(rest))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	vals := []string{"a", "b", "a", "c", "b", "a", "a", "b"}
	d := DictStrings(vals, nil)
	good := AppendStringDict(nil, d)
	// Truncations at every boundary must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := DecodeStringDict(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	p := PackInts([]int64{1, 2, 3, 1 << 30}, nil)
	goodP := AppendIntPack(nil, p)
	for cut := 0; cut < len(goodP); cut++ {
		if _, _, err := DecodeIntPack(goodP[:cut]); err == nil {
			t.Fatalf("pack truncation at %d decoded successfully", cut)
		}
	}
	// An unsorted dictionary must be rejected (Find would silently break).
	bad := AppendStringDict(nil, &StringDict{Vals: []string{"b", "a"}, Codes: newBitVec(4, 1)})
	if _, _, err := DecodeStringDict(bad); err == nil {
		t.Fatal("unsorted dictionary accepted")
	}
	// Out-of-range codes must be rejected.
	oob := &StringDict{Vals: []string{"a", "b", "c"}, Codes: newBitVec(4, 2)}
	oob.Codes.set(2, 3) // code 3 with card 3
	if _, _, err := DecodeStringDict(AppendStringDict(nil, oob)); err == nil {
		t.Fatal("out-of-range code accepted")
	}
}

func TestBitVecStraddlesWords(t *testing.T) {
	// Width 7 codes cross every word boundary shape within 128 slots.
	b := newBitVec(128, 7)
	for i := 0; i < 128; i++ {
		b.set(i, uint64(i))
	}
	for i := 0; i < 128; i++ {
		if got := b.Get(i); got != uint64(i) {
			t.Fatalf("slot %d: %d", i, got)
		}
	}
}
