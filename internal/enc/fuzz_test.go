package enc

import (
	"bytes"
	"testing"
)

// FuzzSegmentCodec hammers the encoded-payload decoders with arbitrary
// bytes: they must never panic or allocate unboundedly, and anything they
// accept must re-encode and re-decode to the same logical content
// (round-trip stability — recovery re-reads what checkpoints wrote).
// The first input byte selects the codec under test.
func FuzzSegmentCodec(f *testing.F) {
	// Seed with well-formed payloads of each kind plus mutations.
	ints := PackInts([]int64{-5, 0, 7, 1 << 33, -(1 << 20)}, nil)
	f.Add(append([]byte{0}, AppendIntPack(nil, ints)...))
	constant := PackInts([]int64{9, 9, 9, 9}, nil)
	f.Add(append([]byte{0}, AppendIntPack(nil, constant)...))
	dict := DictStrings([]string{"a", "b", "a", "c", "b", "a", "c", "b"}, nil)
	f.Add(append([]byte{1}, AppendStringDict(nil, dict)...))
	empty := DictStrings(make([]string, 6), func(int) bool { return true })
	f.Add(append([]byte{1}, AppendStringDict(nil, empty)...))
	f.Add([]byte{0})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		kind, payload := data[0], data[1:]
		switch kind % 2 {
		case 0:
			p, rest, err := DecodeIntPack(payload)
			if err != nil {
				return
			}
			if p.Len() > MaxLen {
				t.Fatalf("accepted pack claiming %d slots", p.Len())
			}
			re := AppendIntPack(nil, p)
			q, _, err := DecodeIntPack(re)
			if err != nil {
				t.Fatalf("re-decode of accepted pack failed: %v", err)
			}
			for i := 0; i < p.Len(); i++ {
				if p.At(i) != q.At(i) {
					t.Fatalf("pack round-trip drift at %d: %d != %d", i, p.At(i), q.At(i))
				}
			}
			_ = rest
		case 1:
			d, rest, err := DecodeStringDict(payload)
			if err != nil {
				return
			}
			if d.Len() > MaxLen || d.Card() > MaxDictCard {
				t.Fatalf("accepted dict with %d slots / %d card", d.Len(), d.Card())
			}
			re := AppendStringDict(nil, d)
			q, _, err := DecodeStringDict(re)
			if err != nil {
				t.Fatalf("re-decode of accepted dict failed: %v", err)
			}
			if !bytes.Equal(re, AppendStringDict(nil, q)) {
				t.Fatal("dict re-encode not stable")
			}
			for i := 0; i < d.Len(); i++ {
				if d.At(i) != q.At(i) {
					t.Fatalf("dict round-trip drift at %d: %q != %q", i, d.At(i), q.At(i))
				}
			}
			_ = rest
		}
	})
}
