package engine

import (
	"context"
	"errors"

	"xnf/internal/core"
	"xnf/internal/exec"
	"xnf/internal/opt"
	"xnf/internal/types"
)

// ErrCORecursive reports that a CO view runs the fixpoint executor and
// cannot stream; callers fall back to the materializing extraction.
var ErrCORecursive = errors.New("engine: recursive CO views cannot stream")

// COStream is a lazily driven CO view extraction: the per-output plans of
// the view are cloned from the engine's template cache and drained one
// output at a time as the consumer pulls, so server-side memory per
// extraction is one batch — never the CO. All plans share one execution
// context, so boxes shared in the QGM DAG (parents used by their own
// output, by child reachability and by connections) are still spooled
// exactly once, preserving the multiple-query optimization of the
// materializing path.
//
// The contract mirrors engine.Rows: Next returns (compID, row, nil) per
// tuple and (0, nil, nil) at the end of the stream; Close is idempotent and
// releases plan resources and memory reservations.
type COStream struct {
	outputs []core.Output
	plans   []exec.Plan
	ectx    *exec.Ctx
	cctx    context.Context
	idx     int  // output currently being drained
	opened  bool // plans[idx] is open
	done    bool
	err     error
}

// StreamCOView opens a streaming extraction of a stored CO view. The
// compilation and plan templates come from the engine's CO caches (compiled
// once per catalog version); only plan cloning and execution happen per
// call. Memory reservations charge the session accountant carried by ctx
// (WithMem), or the process accountant; ctx cancellation aborts the stream
// at the next batch boundary. Recursive views return ErrCORecursive.
func (db *Database) StreamCOView(ctx context.Context, name string) (*COStream, error) {
	return db.StreamCOViewOpts(ctx, name, db.OptOptions)
}

// StreamCOViewOpts is StreamCOView under explicit optimizer options. With
// the database's own options the cached plan templates serve the call;
// overridden options (a bench harness flipping baselines) compile fresh
// templates per call instead of poisoning the shared cache.
func (db *Database) StreamCOViewOpts(ctx context.Context, name string, opts opt.Options) (*COStream, error) {
	compiled, err := db.CompileCOView(name)
	if err != nil {
		return nil, err
	}
	if compiled.Recursive {
		return nil, ErrCORecursive
	}
	var templates []exec.Plan
	if opts == db.OptOptions {
		templates, err = db.coPlanTemplates(name, compiled)
	} else {
		templates, err = compiled.PlanTemplates(db.store, opts)
	}
	if err != nil {
		return nil, err
	}
	plans := make([]exec.Plan, len(templates))
	for i, p := range templates {
		if p != nil {
			plans[i] = exec.ClonePlan(p)
		}
	}
	parent := memFromContext(ctx)
	if parent == nil {
		parent = db.mem
	}
	ectx := exec.NewCtx(db.store)
	ectx.Mem = parent.Child("co-stream", 0)
	ectx.Interrupt = ctx.Err
	return &COStream{outputs: compiled.Outputs, plans: plans, ectx: ectx, cctx: ctx}, nil
}

// Outputs returns the view's compiled output metadata.
func (s *COStream) Outputs() []core.Output { return s.outputs }

// HasRows reports whether output i ships rows (false for derived
// relationships, which have no plan).
func (s *COStream) HasRows(i int) bool { return s.plans[i] != nil }

// Next returns the next tagged tuple of the heterogeneous stream, or
// (0, nil, nil) once every output is drained. Outputs stream in component
// order; each plan opens on first demand and closes at its end.
func (s *COStream) Next() (int, types.Row, error) {
	if s.err != nil {
		return 0, nil, s.err
	}
	for !s.done {
		if s.idx >= len(s.plans) {
			s.shutdown()
			return 0, nil, nil
		}
		plan := s.plans[s.idx]
		if plan == nil {
			s.idx++
			continue
		}
		if !s.opened {
			if err := s.cctx.Err(); err != nil {
				return 0, nil, s.fail(err)
			}
			if err := plan.Open(s.ectx, nil); err != nil {
				return 0, nil, s.fail(err)
			}
			s.opened = true
		}
		row, err := plan.Next(s.ectx)
		if err != nil {
			return 0, nil, s.fail(err)
		}
		if row == nil {
			if err := plan.Close(s.ectx); err != nil {
				return 0, nil, s.fail(err)
			}
			s.plans[s.idx] = nil
			s.opened = false
			s.idx++
			continue
		}
		return s.outputs[s.idx].CompID, row, nil
	}
	return 0, nil, nil
}

// Counters snapshots the execution counters accumulated so far.
func (s *COStream) Counters() exec.Counters { return s.ectx.Counters }

// fail records the first stream error and releases everything.
func (s *COStream) fail(err error) error {
	s.err = err
	s.shutdown()
	return err
}

// shutdown closes the currently open plan (never-opened clones hold no
// resources and are simply dropped) and the stream's accountant.
func (s *COStream) shutdown() {
	if s.done {
		return
	}
	s.done = true
	if s.opened && s.idx < len(s.plans) && s.plans[s.idx] != nil {
		if cerr := s.plans[s.idx].Close(s.ectx); cerr != nil && s.err == nil {
			s.err = cerr
		}
	}
	s.opened = false
	for i := range s.plans {
		s.plans[i] = nil
	}
	s.ectx.Mem.Close()
}

// Close releases the stream's plans and memory reservations. Idempotent;
// safe at any point of the stream.
func (s *COStream) Close() error {
	s.shutdown()
	return s.err
}
