package engine

import (
	"fmt"

	"xnf/internal/ast"
	"xnf/internal/exec"
	"xnf/internal/opt"
	"xnf/internal/semantics"
	"xnf/internal/storage"
	"xnf/internal/types"
)

func (db *Database) execInsert(s *ast.InsertStmt, args types.Row) (int64, error) {
	return db.execInsertWith(s, args, nil, nil)
}

// compileInsertRows compiles the VALUES expressions of an INSERT once; the
// prepared-statement path caches the result so repeated executions skip
// per-row semantic analysis.
func (db *Database) compileInsertRows(s *ast.InsertStmt) ([][]exec.Expr, []string, error) {
	rows := make([][]exec.Expr, len(s.Rows))
	var deps []string
	for ri, exprRow := range s.Rows {
		row := make([]exec.Expr, len(exprRow))
		for i, e := range exprRow {
			ce, exprDeps, err := db.compileConstExpr(e)
			if err != nil {
				return nil, nil, err
			}
			row[i] = ce
			for _, d := range exprDeps {
				deps = mergeDep(deps, d)
			}
		}
		rows[ri] = row
	}
	return rows, deps, nil
}

// execInsertWith runs an INSERT; plan, when non-nil, is the prepared
// compiled template of s.Select and is cloned instead of recompiled;
// valueRows, when non-nil, are the precompiled VALUES expressions.
func (db *Database) execInsertWith(s *ast.InsertStmt, args types.Row, plan exec.Plan, valueRows [][]exec.Expr) (int64, error) {
	t, ok := db.cat.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %s", s.Table)
	}
	// Column-subset mapping: target ordinal for each supplied value.
	target := make([]int, 0, len(t.Columns))
	if len(s.Columns) == 0 {
		for i := range t.Columns {
			target = append(target, i)
		}
	} else {
		for _, name := range s.Columns {
			ord, ok := t.ColumnIndex(name)
			if !ok {
				return 0, fmt.Errorf("engine: table %s has no column %s", s.Table, name)
			}
			target = append(target, ord)
		}
	}

	var sourceRows []types.Row
	if s.Select != nil {
		if plan == nil {
			compiled, err := db.CompileSelect(s.Select)
			if err != nil {
				return 0, err
			}
			plan = compiled
		} else {
			plan = exec.ClonePlan(plan)
		}
		rows, err := exec.CollectWith(exec.NewCtx(db.store), plan, args)
		if err != nil {
			return 0, err
		}
		sourceRows = rows
	} else {
		if valueRows == nil {
			compiled, _, err := db.compileInsertRows(s)
			if err != nil {
				return 0, err
			}
			valueRows = compiled
		}
		ctx := exec.NewCtx(db.store)
		env := exec.Env{Ctx: ctx, Params: args}
		for _, exprRow := range valueRows {
			row := make(types.Row, len(exprRow))
			for i, ce := range exprRow {
				v, err := exec.CloneExpr(ce).Eval(&env)
				if err != nil {
					return 0, err
				}
				row[i] = v
			}
			sourceRows = append(sourceRows, row)
		}
	}

	tx := db.store.Begin()
	var n int64
	for _, src := range sourceRows {
		if len(src) != len(target) {
			tx.Rollback()
			return 0, fmt.Errorf("engine: INSERT expects %d values, got %d", len(target), len(src))
		}
		full := make(types.Row, len(t.Columns))
		for i := range full {
			full[i] = types.Null
		}
		for i, ord := range target {
			full[ord] = src[i]
		}
		if _, err := tx.Insert(s.Table, full); err != nil {
			tx.Rollback()
			return 0, err
		}
		n++
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return n, nil
}

// compileConstExpr compiles an expression with no table context (INSERT
// VALUES items; scalar subqueries are allowed).
func (db *Database) compileConstExpr(e ast.Expr) (exec.Expr, []string, error) {
	rc, err := semantics.NewRowContextEmpty(db.cat)
	if err != nil {
		return nil, nil, err
	}
	qe, err := rc.Build(e)
	if err != nil {
		return nil, nil, err
	}
	comp := opt.NewCompiler(db.store, rc.Graph(), db.OptOptions)
	ce, err := comp.CompileRowExpr(rc.Quant(), qe)
	if err != nil {
		return nil, nil, err
	}
	return ce, rc.Graph().Deps, nil
}

// compiledMutation is the compiled form of an UPDATE/DELETE: the WHERE
// predicate and SET assignments bound against the schema once. Prepared
// statements cache one per catalog version (Revalidate recompiles after
// DDL/ANALYZE), so repeated executions skip semantic analysis entirely —
// the mutation analog of the SELECT plan cache. The expressions are
// immutable except for embedded subplans, which CloneExpr rebuilds per
// execution.
type compiledMutation struct {
	pred exec.Expr // nil = every row qualifies
	sets []compiledSet
	// deps are the catalog names the mutation resolved against (the target
	// table plus any tables reached through WHERE/SET subqueries), for
	// per-dependency plan-cache invalidation.
	deps []string
}

// compiledSet is one compiled UPDATE assignment.
type compiledSet struct {
	ord  int
	expr exec.Expr
}

// compileMutation binds the WHERE predicate and optional SET clauses of a
// mutation against the target table's current schema.
func (db *Database) compileMutation(table, alias string, where ast.Expr, set []ast.SetClause) (*compiledMutation, error) {
	rc, err := semantics.NewRowContext(db.cat, table, alias)
	if err != nil {
		return nil, err
	}
	comp := opt.NewCompiler(db.store, rc.Graph(), db.OptOptions)
	mut := &compiledMutation{}
	if where != nil {
		qe, err := rc.Build(where)
		if err != nil {
			return nil, err
		}
		mut.pred, err = comp.CompileRowExpr(rc.Quant(), qe)
		if err != nil {
			return nil, err
		}
	}
	if len(set) > 0 {
		t, ok := db.cat.Table(table)
		if !ok {
			return nil, fmt.Errorf("engine: unknown table %s", table)
		}
		for _, sc := range set {
			ord, ok := t.ColumnIndex(sc.Column)
			if !ok {
				return nil, fmt.Errorf("engine: table %s has no column %s", table, sc.Column)
			}
			qe, err := rc.Build(sc.Value)
			if err != nil {
				return nil, err
			}
			ce, err := comp.CompileRowExpr(rc.Quant(), qe)
			if err != nil {
				return nil, err
			}
			mut.sets = append(mut.sets, compiledSet{ord: ord, expr: ce})
		}
	}
	g := rc.Graph()
	g.AddDep(table)
	mut.deps = g.Deps
	return mut, nil
}

// mutationTargets evaluates a compiled predicate over a table and returns
// the matching RIDs and row images.
func (db *Database) mutationTargets(table string, pred exec.Expr, args types.Row) ([]storage.RID, []types.Row, error) {
	td, err := db.store.Table(table)
	if err != nil {
		return nil, nil, err
	}
	ctx := exec.NewCtx(db.store)
	env := exec.Env{Ctx: ctx, Params: args}
	var rids []storage.RID
	var rows []types.Row
	var scanErr error
	td.Scan(func(rid storage.RID, row types.Row) bool {
		env.Row = row
		ok, err := exec.EvalPred(pred, &env)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			rids = append(rids, rid)
			rows = append(rows, row)
		}
		return true
	})
	if scanErr != nil {
		return nil, nil, scanErr
	}
	return rids, rows, nil
}

func (db *Database) execUpdate(s *ast.UpdateStmt, args types.Row) (int64, error) {
	mut, err := db.compileMutation(s.Table, s.Alias, s.Where, s.Set)
	if err != nil {
		return 0, err
	}
	return db.runUpdate(s, mut, args)
}

// runUpdate applies a compiled UPDATE. Predicate and assignments are
// cloned per run so a cached mutation stays safe under concurrency.
func (db *Database) runUpdate(s *ast.UpdateStmt, mut *compiledMutation, args types.Row) (int64, error) {
	rids, rows, err := db.mutationTargets(s.Table, exec.CloneExpr(mut.pred), args)
	if err != nil {
		return 0, err
	}
	sets := make([]compiledSet, len(mut.sets))
	for i, sc := range mut.sets {
		sets[i] = compiledSet{ord: sc.ord, expr: exec.CloneExpr(sc.expr)}
	}
	ctx := exec.NewCtx(db.store)
	env := exec.Env{Ctx: ctx, Params: args}
	tx := db.store.Begin()
	for i, rid := range rids {
		old := rows[i]
		env.Row = old
		updated := old.Clone()
		for _, sc := range sets {
			v, err := sc.expr.Eval(&env)
			if err != nil {
				tx.Rollback()
				return 0, err
			}
			updated[sc.ord] = v
		}
		if err := tx.Update(s.Table, rid, updated); err != nil {
			tx.Rollback()
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return int64(len(rids)), nil
}

func (db *Database) execDelete(s *ast.DeleteStmt, args types.Row) (int64, error) {
	mut, err := db.compileMutation(s.Table, s.Alias, s.Where, nil)
	if err != nil {
		return 0, err
	}
	return db.runDelete(s, mut, args)
}

// runDelete applies a compiled DELETE.
func (db *Database) runDelete(s *ast.DeleteStmt, mut *compiledMutation, args types.Row) (int64, error) {
	rids, _, err := db.mutationTargets(s.Table, exec.CloneExpr(mut.pred), args)
	if err != nil {
		return 0, err
	}
	tx := db.store.Begin()
	for _, rid := range rids {
		if err := tx.Delete(s.Table, rid); err != nil {
			tx.Rollback()
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return int64(len(rids)), nil
}
