package engine

import (
	"time"

	"xnf/internal/storage"
	"xnf/internal/wal"
)

// DurabilityOptions tunes the durable variant of the engine.
type DurabilityOptions struct {
	// GroupCommit batches the fsyncs of concurrent committers (default
	// true — see wal.Options).
	GroupCommit bool
	// NoSync skips fsync entirely; tests only.
	NoSync bool
	// CheckpointInterval is the cadence of the background checkpoint
	// loop; 0 disables the loop (manual Checkpoint still works). A
	// checkpoint is skipped when nothing was committed since the last.
	CheckpointInterval time.Duration
}

// DefaultDurabilityOptions returns the production defaults: group
// commit on, fsync on, checkpoints every 30 seconds.
func DefaultDurabilityOptions() DurabilityOptions {
	return DurabilityOptions{GroupCommit: true, CheckpointInterval: 30 * time.Second}
}

// OpenDir opens a durable database rooted at dir: existing state there
// is recovered (checkpoint + log suffix), and every later commit is
// written ahead to the log. dir is created if missing. Close flushes
// and detaches the log; a killed process recovers on the next OpenDir.
func OpenDir(dir string) (*Database, error) {
	return OpenDirOptions(dir, DefaultDurabilityOptions())
}

// OpenDirOptions is OpenDir with explicit durability tuning.
func OpenDirOptions(dir string, opts DurabilityOptions) (*Database, error) {
	db := Open()
	if err := db.store.OpenDurable(dir, wal.Options{GroupCommit: opts.GroupCommit, NoSync: opts.NoSync}); err != nil {
		return nil, err
	}
	// Recovery replayed DDL through the store, bumping the catalog
	// version as it went; plans compiled from here on see fresh state.
	if opts.CheckpointInterval > 0 {
		db.ckptStop = make(chan struct{})
		db.ckptWG.Add(1)
		go db.checkpointLoop(opts.CheckpointInterval)
	}
	return db, nil
}

// checkpointLoop periodically cuts the log. A tick with no new commits
// since the last checkpoint is a no-op, so an idle database does not
// rewrite its snapshot forever.
func (db *Database) checkpointLoop(every time.Duration) {
	defer db.ckptWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	var lastCommits uint64
	for {
		select {
		case <-db.ckptStop:
			return
		case <-t.C:
			st := db.store.WALStats()
			if !st.Attached || st.Commits == lastCommits {
				continue
			}
			if err := db.Checkpoint(); err == nil {
				lastCommits = st.Commits
			}
		}
	}
}

// Checkpoint persists the full store image and truncates the log (see
// storage.Store.Checkpoint for the protocol). It is an error on a
// purely in-memory database.
func (db *Database) Checkpoint() error { return db.store.Checkpoint() }

// WALStats reports the durability counters; Attached is false for an
// in-memory database.
func (db *Database) WALStats() storage.WALStats { return db.store.WALStats() }

// Close stops the checkpoint loop and flushes + detaches the WAL. It is
// a no-op (returning nil) on an in-memory database, and idempotent.
func (db *Database) Close() error {
	db.closeOnce.Do(func() {
		if db.ckptStop != nil {
			close(db.ckptStop)
			db.ckptWG.Wait()
		}
		db.closeErr = db.store.CloseDurability()
	})
	return db.closeErr
}
