package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"xnf/internal/catalog"
	"xnf/internal/types"
)

// openTest opens a durable engine with fsync and the background checkpoint
// loop disabled (tests control checkpoints explicitly).
func openTest(t *testing.T, dir string) *Database {
	t.Helper()
	db, err := OpenDirOptions(dir, DurabilityOptions{GroupCommit: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// tableState renders a query result as a canonical string for equality
// checks across restarts.
func tableState(t *testing.T, db *Database, sql string) string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func mustExec(t *testing.T, db *Database, sql string, args ...types.Value) {
	t.Helper()
	if _, err := db.Exec(sql, args...); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// TestRestartRoundTrip drives DDL + DML of every logged kind through a
// durable database, closes it, reopens the directory and checks the full
// state — schema, secondary indexes, views, storage kinds, data — survived.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir)
	mustExec(t, db, "CREATE TABLE dept (dno INT NOT NULL, dname TEXT, PRIMARY KEY (dno))")
	mustExec(t, db, "CREATE TABLE emp (eno INT NOT NULL, ename TEXT, sal FLOAT, edno INT, PRIMARY KEY (eno), FOREIGN KEY (edno) REFERENCES dept (dno))")
	mustExec(t, db, "CREATE INDEX emp_edno ON emp (edno)")
	mustExec(t, db, "ALTER TABLE emp SET STORAGE COLUMN")
	mustExec(t, db, "CREATE VIEW welldone AS SELECT ename FROM emp WHERE sal > 100")
	for i := 1; i <= 3; i++ {
		mustExec(t, db, "INSERT INTO dept VALUES (?, ?)", types.NewInt(int64(i)), types.NewString(fmt.Sprintf("d%d", i)))
	}
	for i := 1; i <= 50; i++ {
		mustExec(t, db, "INSERT INTO emp VALUES (?, ?, ?, ?)",
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("e%d", i)),
			types.NewFloat(float64(i*10)), types.NewInt(int64(i%3+1)))
	}
	mustExec(t, db, "UPDATE emp SET sal = 999 WHERE eno = 7")
	mustExec(t, db, "DELETE FROM emp WHERE eno = 13")
	mustExec(t, db, "CREATE TABLE scratch (a INT)")
	mustExec(t, db, "DROP TABLE scratch")

	wantEmp := tableState(t, db, "SELECT eno, ename, sal, edno FROM emp ORDER BY eno")
	wantView := tableState(t, db, "SELECT * FROM welldone ORDER BY 1")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openTest(t, dir)
	defer db2.Close()
	if got := tableState(t, db2, "SELECT eno, ename, sal, edno FROM emp ORDER BY eno"); got != wantEmp {
		t.Fatalf("emp after restart:\n%s\nwant:\n%s", got, wantEmp)
	}
	if got := tableState(t, db2, "SELECT * FROM welldone ORDER BY 1"); got != wantView {
		t.Fatalf("view after restart:\n%s\nwant:\n%s", got, wantView)
	}
	td, err := db2.store.Table("emp")
	if err != nil {
		t.Fatal(err)
	}
	if td.StorageKind() != catalog.ColumnStore {
		t.Fatalf("emp storage kind = %v after restart, want COLUMN", td.StorageKind())
	}
	if _, err := td.IndexLookup("emp_edno", types.Row{types.NewInt(1)}); err != nil {
		t.Fatalf("secondary index lost across restart: %v", err)
	}
	if _, ok := db2.cat.Table("scratch"); ok {
		t.Fatal("dropped table resurrected by recovery")
	}
	// The recovered database must accept new work.
	mustExec(t, db2, "INSERT INTO emp VALUES (1000, 'post', 1.5, 1)")
}

// TestCheckpointThenRestart checks a checkpoint shortens replay: after a
// checkpoint plus a few more commits, recovery loads the snapshot and
// replays only the suffix — and an un-Closed (crashed) database recovers.
func TestCheckpointThenRestart(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir)
	mustExec(t, db, "CREATE TABLE kv (k INT NOT NULL, v TEXT, PRIMARY KEY (k))")
	for i := 1; i <= 200; i++ {
		mustExec(t, db, "INSERT INTO kv VALUES (?, ?)", types.NewInt(int64(i)), types.NewString(fmt.Sprintf("v%d", i)))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 201; i <= 210; i++ {
		mustExec(t, db, "INSERT INTO kv VALUES (?, ?)", types.NewInt(int64(i)), types.NewString(fmt.Sprintf("v%d", i)))
	}
	want := tableState(t, db, "SELECT k, v FROM kv ORDER BY k")
	// No Close: simulate a crash. The files on disk are all recovery gets.

	db2 := openTest(t, dir)
	defer db2.Close()
	if got := tableState(t, db2, "SELECT k, v FROM kv ORDER BY k"); got != want {
		t.Fatalf("state after crash-recovery differs:\n%s\nwant:\n%s", got, want)
	}
	st := db2.WALStats()
	// 10 post-checkpoint inserts at 3 records each ([begin][insert][commit]).
	if st.RecoveredRecords != 30 {
		t.Fatalf("recovery replayed %d records, want 30 (checkpoint should absorb the first 200 inserts)", st.RecoveredRecords)
	}
	if st.RecoveredTx != 10 {
		t.Fatalf("recovery replayed %d transactions, want 10", st.RecoveredTx)
	}
}

// TestCursorSnapshotAcrossCheckpointAndDML opens a streaming cursor, then —
// while it is only partially drained — checkpoints and runs DML. The cursor
// must drain to its pinned snapshot (the data as of open), and the writers
// must not block on the open cursor.
func TestCursorSnapshotAcrossCheckpointAndDML(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir)
	defer db.Close()
	mustExec(t, db, "CREATE TABLE seq (n INT NOT NULL, PRIMARY KEY (n))")
	mustExec(t, db, "ALTER TABLE seq SET STORAGE COLUMN")
	const rows = 5000
	for i := 1; i <= rows; i++ {
		mustExec(t, db, "INSERT INTO seq VALUES (?)", types.NewInt(int64(i)))
	}

	cur, err := db.QueryRows("SELECT n FROM seq")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// Pull one row so the scan has pinned its snapshot.
	first, err := cur.Next()
	if err != nil || first == nil {
		t.Fatalf("first row: %v %v", first, err)
	}
	got := 1

	// Writers and a checkpoint run to completion while the cursor is open;
	// if the cursor held a table lock this would deadlock, not just fail.
	for i := rows + 1; i <= rows+100; i++ {
		mustExec(t, db, "INSERT INTO seq VALUES (?)", types.NewInt(int64(i)))
	}
	mustExec(t, db, "DELETE FROM seq WHERE n <= 10")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	for {
		r, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
		got++
	}
	if got != rows {
		t.Fatalf("cursor drained %d rows, want its snapshot of %d (writers ran concurrently)", got, rows)
	}
	// The post-cursor state reflects the DML.
	res, err := db.Query("SELECT COUNT(*) FROM seq")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].I; n != rows+100-10 {
		t.Fatalf("live row count = %d, want %d", n, rows+100-10)
	}
}

// TestConcurrentCommitAndCheckpoint hammers one durable database with
// parallel writers (distinct keys) while checkpoints run, then reopens and
// verifies every committed row survived. Run with -race in CI.
func TestConcurrentCommitAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir)
	mustExec(t, db, "CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	const writers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := int64(w*per + i)
				if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)", types.NewInt(k), types.NewInt(k*2)); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	want := tableState(t, db, "SELECT k, v FROM kv ORDER BY k")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openTest(t, dir)
	defer db2.Close()
	if got := tableState(t, db2, "SELECT k, v FROM kv ORDER BY k"); got != want {
		t.Fatalf("recovered state differs from committed state")
	}
	res, err := db2.Query("SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].I; n != writers*per {
		t.Fatalf("recovered %d rows, want %d", n, writers*per)
	}
}

// usable proves a recovered database accepts new commits: insert into
// rowkv when it survived recovery, otherwise into a fresh table.
func usable(t *testing.T, d *Database, key int) {
	t.Helper()
	if _, ok := d.cat.Table("rowkv"); ok {
		mustExec(t, d, "INSERT INTO rowkv VALUES (?, 'after-recovery')", types.NewInt(int64(key)))
		return
	}
	mustExec(t, d, "CREATE TABLE fresh (a INT)")
	mustExec(t, d, "INSERT INTO fresh VALUES (1)")
}

// TestTortureTruncateAndCorrupt is the kill-at-any-point test: a workload
// of small transactions is committed to a WAL, then for every truncation
// point near the tail (and a sweep of single-byte corruptions mid-file) the
// damaged log is recovered into a fresh engine. The recovered state must be
// EXACTLY the state after some prefix of the commits — committed
// transactions wholly present, uncommitted (cut) transactions wholly
// absent — and the database must accept new work afterwards.
func TestTortureTruncateAndCorrupt(t *testing.T) {
	srcDir := t.TempDir()
	db := openTest(t, srcDir)

	// stateOf renders both tables; a damaged log may end before a table's
	// CREATE, so a missing table is part of the state, not an error.
	stateOf := func(d *Database) string {
		var b strings.Builder
		for _, tbl := range []string{"rowkv", "colkv"} {
			if _, ok := d.cat.Table(tbl); !ok {
				b.WriteString("<no " + tbl + ">")
			} else {
				b.WriteString(tableState(t, d, "SELECT k, v FROM "+tbl+" ORDER BY k"))
			}
			b.WriteByte('|')
		}
		return b.String()
	}
	// snapshots[i] is the canonical state after the first i commits
	// (DDL statements are self-committing log records, so they count).
	snapshots := []string{stateOf(db)}
	step := func(sql string, args ...types.Value) {
		mustExec(t, db, sql, args...)
		snapshots = append(snapshots, stateOf(db))
	}
	step("CREATE TABLE rowkv (k INT NOT NULL, v TEXT, PRIMARY KEY (k))")
	step("CREATE TABLE colkv (k INT NOT NULL, v FLOAT, PRIMARY KEY (k))")
	step("ALTER TABLE colkv SET STORAGE COLUMN")
	for i := 1; i <= 12; i++ {
		step("INSERT INTO rowkv VALUES (?, ?)", types.NewInt(int64(i)), types.NewString(fmt.Sprintf("row-%d", i)))
		step("INSERT INTO colkv VALUES (?, ?)", types.NewInt(int64(i)), types.NewFloat(float64(i)+0.5))
	}
	step("UPDATE rowkv SET v = 'rewritten' WHERE k <= 4")
	step("DELETE FROM colkv WHERE k > 9")
	step("INSERT INTO rowkv VALUES (100, NULL)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	logs, err := filepath.Glob(filepath.Join(srcDir, "wal-*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("expected exactly one log file, got %v (%v)", logs, err)
	}
	walBytes, err := os.ReadFile(logs[0])
	if err != nil {
		t.Fatal(err)
	}
	walName := filepath.Base(logs[0])

	// recoverFrom writes a damaged WAL into a fresh dir and opens it.
	recoverFrom := func(t *testing.T, damaged []byte) *Database {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		return openTest(t, dir)
	}
	assertPrefixState := func(t *testing.T, d *Database, what string) int {
		t.Helper()
		got := stateOf(d)
		for i := len(snapshots) - 1; i >= 0; i-- {
			if got == snapshots[i] {
				return i
			}
		}
		t.Fatalf("%s: recovered state matches no commit prefix:\n%s", what, got)
		return -1
	}

	// Truncation at every byte boundary over the tail (covering several
	// whole transactions plus every intra-record cut).
	tail := 400
	if tail > len(walBytes) {
		tail = len(walBytes)
	}
	prevPrefix := -1
	for cut := len(walBytes) - tail; cut <= len(walBytes); cut++ {
		d := recoverFrom(t, walBytes[:cut])
		p := assertPrefixState(t, d, fmt.Sprintf("cut at %d/%d", cut, len(walBytes)))
		if p < prevPrefix {
			t.Fatalf("cut at %d recovered prefix %d, shorter than the %d a shorter log yielded", cut, p, prevPrefix)
		}
		prevPrefix = p
		usable(t, d, 2000+cut)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if prevPrefix != len(snapshots)-1 {
		t.Fatalf("full-length log recovered prefix %d, want %d", prevPrefix, len(snapshots)-1)
	}

	// Single-byte corruption sweep: flip one byte mid-file; recovery must
	// still land exactly on a commit prefix (the CRC stops replay at the
	// damage) and never crash.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		off := rng.Intn(len(walBytes))
		damaged := append([]byte(nil), walBytes...)
		damaged[off] ^= byte(1 + rng.Intn(255))
		d := recoverFrom(t, damaged)
		assertPrefixState(t, d, fmt.Sprintf("corrupt byte %d", off))
		usable(t, d, 3000+trial)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
