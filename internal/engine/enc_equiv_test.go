package engine

import (
	"fmt"
	"testing"

	"xnf/internal/colstore"
	"xnf/internal/types"
)

// encCorpus stresses the shapes segment encodings specialize: equality and
// ranges on a low-cardinality dictionary column (probe keys present and
// absent from the dictionary), a high-cardinality column that must stay
// raw, narrow / negative / wide int ranges (bit-packing and its refusal),
// NULL-bearing dict columns, grouping and joining on encoded keys.
var encCorpus = []string{
	// Dictionary strings: equality, both sides of a range, absent keys.
	"SELECT COUNT(*) FROM ET WHERE lc = 'val3'",
	"SELECT COUNT(*) FROM ET WHERE lc <> 'val3'",
	"SELECT COUNT(*) FROM ET WHERE lc >= 'val2' AND lc < 'val7'",
	"SELECT COUNT(*) FROM ET WHERE lc = 'absent'",
	"SELECT COUNT(*) FROM ET WHERE lc > 'val'",  // between dictionary entries
	"SELECT COUNT(*) FROM ET WHERE lc < 'val0'", // below every entry
	"SELECT COUNT(*) FROM ET WHERE lc >= 'zzz'", // above every entry
	"SELECT lc, COUNT(*) FROM ET GROUP BY lc",
	"SELECT COUNT(DISTINCT lc), MIN(lc), MAX(lc) FROM ET",
	// High cardinality: stays raw, results must agree regardless.
	"SELECT COUNT(*) FROM ET WHERE hc = 'u123'",
	"SELECT COUNT(DISTINCT hc) FROM ET",
	// Packed ints: narrow, negative, and a range too wide to pack.
	"SELECT COUNT(*) FROM ET WHERE nar = 3",
	"SELECT SUM(nar), MIN(nar), MAX(nar), AVG(nar) FROM ET",
	"SELECT COUNT(*) FROM ET WHERE nar > 2.5", // packed int vs float literal
	"SELECT COUNT(*) FROM ET WHERE neg < -10",
	"SELECT SUM(neg) FROM ET WHERE neg >= -50 AND neg < 0",
	"SELECT MIN(wide), MAX(wide), SUM(wide) FROM ET",
	"SELECT COUNT(*) FROM ET WHERE wide > 0",
	"SELECT nar, COUNT(*), SUM(neg) FROM ET GROUP BY nar",
	// NULLs ride the dictionary's null bitmap, never a sentinel value.
	"SELECT COUNT(*) FROM ET WHERE lcn IS NULL",
	"SELECT COUNT(*) FROM ET WHERE lcn IS NOT NULL AND lcn <= 'n2'",
	"SELECT COUNT(*) FROM ET WHERE lcn = 'n1'",
	"SELECT lcn, COUNT(*) FROM ET GROUP BY lcn",
	// Hash join keyed on encoded columns (dict string, packed int).
	"SELECT a.lc, COUNT(*) FROM ET a, ET b WHERE a.lc = b.lc AND a.id = b.id GROUP BY a.lc",
	"SELECT COUNT(*) FROM ET a, ET b WHERE a.nar = b.nar AND a.id < 100 AND b.id < 100",
	// Mixed predicates across encodings.
	"SELECT lc, SUM(nar) FROM ET WHERE neg < -5 AND lc >= 'val1' GROUP BY lc",
	"SELECT COUNT(*) FROM ET WHERE lc = 'val5' AND nar = 5",
}

// encDB builds a column-stored table covering every encoding decision:
// a low-cardinality string (dictionary), a high-cardinality string (raw),
// a narrow int (packed), a negative range (frame-of-reference packing), a
// range wider than MaxPackBits (raw), and a NULL-bearing low-card string.
// ANALYZE runs Maintain, which encodes full segments — or leaves them raw
// when SetSegmentEncoding(false) is in effect.
func encDB(t testing.TB, n int) *Database {
	t.Helper()
	db := Open()
	if err := db.ExecScript("CREATE TABLE ET (id INT NOT NULL, lc VARCHAR, hc VARCHAR, nar INT, neg INT, wide INT, lcn VARCHAR, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	td, err := db.Store().Table("ET")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		lcn := types.NewString(fmt.Sprintf("n%d", i%5))
		if i%3 == 0 {
			lcn = types.Null
		}
		wide := int64(1) << 60 // spread > 2^48: packing must refuse
		if i%2 == 0 {
			wide = -wide + int64(i)
		}
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("val%d", i%9)),
			types.NewString(fmt.Sprintf("u%d", i)),
			types.NewInt(int64(i % 10)),
			types.NewInt(-int64(i%100) - 1),
			types.NewInt(wide),
			lcn,
		}
		if _, err := td.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("ALTER TABLE ET SET STORAGE COLUMN"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ANALYZE ET"); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestEncodedKernelEquivalence is the encoded-vs-raw-vs-row gate: the same
// corpus runs on (1) the row executor, (2) a column store whose segments
// were kept raw (encoding disabled at Maintain), and (3) a column store
// with encoded segments, both boxed and typed — every path must agree
// exactly.
func TestEncodedKernelEquivalence(t *testing.T) {
	defer colstore.SetSegmentEncoding(colstore.SetSegmentEncoding(false))
	rawDB := encDB(t, colstore.SegRows+1500)
	if td, _ := rawDB.Store().Table("ET"); td != nil {
		if d, p := td.EncodedColumns(); d != 0 || p != 0 {
			t.Fatalf("encoding disabled but dict=%d pack=%d columns encoded", d, p)
		}
	}
	colstore.SetSegmentEncoding(true)
	encDB := encDB(t, colstore.SegRows+1500)
	td, _ := encDB.Store().Table("ET")
	if d, p := td.EncodedColumns(); d == 0 || p == 0 {
		t.Fatalf("expected both encodings in play, dict=%d pack=%d", d, p)
	}

	prevRaw, prevEnc := rawDB.OptOptions, encDB.OptOptions
	defer func() { rawDB.OptOptions, encDB.OptOptions = prevRaw, prevEnc }()
	for _, q := range encCorpus {
		encDB.OptOptions.Vectorize = false
		want := queryStrings(t, encDB, q)

		rawDB.OptOptions.Vectorize = true
		rawDB.OptOptions.TypedKernels = true
		sortedEqual(t, queryStrings(t, rawDB, q), want)

		encDB.OptOptions.Vectorize = true
		encDB.OptOptions.TypedKernels = false
		sortedEqual(t, queryStrings(t, encDB, q), want)
		encDB.OptOptions.TypedKernels = true
		sortedEqual(t, queryStrings(t, encDB, q), want)
	}
}

// TestEncodedDMLReencode interleaves DML with Maintain re-encoding: updates
// and deletes force encoded segments back to raw in place, fresh inserts
// land in the unencoded tail, ANALYZE re-encodes what refilled — and after
// every step the typed path over whatever mix of encoded/raw segments
// exists must agree with the row engine.
func TestEncodedDMLReencode(t *testing.T) {
	db := encDB(t, 2*colstore.SegRows+300)
	td, _ := db.Store().Table("ET")
	if d, _ := td.EncodedColumns(); d == 0 {
		t.Fatal("fixture did not encode")
	}
	probes := []string{
		"SELECT lc, COUNT(*) FROM ET GROUP BY lc",
		"SELECT COUNT(*), SUM(nar) FROM ET WHERE lc >= 'val4'",
		"SELECT COUNT(*) FROM ET WHERE lcn IS NULL",
		"SELECT MIN(neg), MAX(wide) FROM ET",
		"SELECT COUNT(*) FROM ET WHERE lc = 'patched'",
	}
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()
	check := func(step string) {
		t.Helper()
		for _, q := range probes {
			db.OptOptions.Vectorize = false
			want := queryStrings(t, db, q)
			db.OptOptions.Vectorize = true
			db.OptOptions.TypedKernels = true
			got := queryStrings(t, db, q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("after %s, %q: typed %v, row %v", step, q, got, want)
			}
		}
	}
	check("initial encode")

	// In-place update inside an encoded segment: the column reverts to raw
	// (a value outside the dictionary must be storable) without disturbing
	// its neighbors.
	if _, err := db.Exec("UPDATE ET SET lc = 'patched' WHERE id >= 100 AND id < 160"); err != nil {
		t.Fatal(err)
	}
	check("update inside encoded segment")

	// Deletes mark rows dead; surviving encoded rows must still decode.
	if _, err := db.Exec("DELETE FROM ET WHERE id >= 4000 AND id < 4200"); err != nil {
		t.Fatal(err)
	}
	check("delete straddling a segment boundary")

	// Fresh inserts go to the unencoded tail.
	if _, err := db.Exec(fmt.Sprintf("INSERT INTO ET VALUES (%d, 'val1', 'ux', 4, -7, 12, 'n2')", 10_000_000)); err != nil {
		t.Fatal(err)
	}
	check("tail insert")

	// Maintain re-encodes whatever is full and intact again.
	if _, err := db.Exec("ANALYZE ET"); err != nil {
		t.Fatal(err)
	}
	if d, p := td.EncodedColumns(); d == 0 || p == 0 {
		t.Fatalf("re-encode after DML left dict=%d pack=%d", d, p)
	}
	check("re-analyze")

	// Second wave: mutate a re-encoded segment again, then re-encode again.
	if _, err := db.Exec("UPDATE ET SET nar = 77 WHERE id >= 5000 AND id < 5050"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ANALYZE ET"); err != nil {
		t.Fatal(err)
	}
	check("second mutate and re-analyze")
}
