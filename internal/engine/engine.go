// Package engine is the database façade: it owns the catalog and the
// storage engine and drives the full compilation pipeline of Fig. 2
// (parse → semantic checking → rewrite → plan optimization → execution)
// for SQL statements. XNF queries are delegated to internal/core.
//
// Query results come in two shapes: Query materializes the whole result
// into a Result, and QueryRows returns a streaming Rows cursor that drives
// the plan lazily in bounded memory (see the Rows type for the full
// contract: Next until nil, check Err, always Close). Query is implemented
// on top of QueryRows.
package engine

import (
	"fmt"
	"strings"
	"sync"

	"xnf/internal/ast"
	"xnf/internal/catalog"
	"xnf/internal/exec"
	"xnf/internal/opt"
	"xnf/internal/parser"
	"xnf/internal/resource"
	"xnf/internal/rewrite"
	"xnf/internal/semantics"
	"xnf/internal/storage"
	"xnf/internal/types"
)

// Database is one in-memory database instance.
type Database struct {
	cat   *catalog.Catalog
	store *storage.Store

	// OptOptions and RewriteOptions control the optimizer; the benchmark
	// harness overrides them to produce the naive baselines. They are
	// configuration, not runtime state: set them before serving traffic
	// (or between single-threaded benchmark phases) — flipping them while
	// other goroutines execute statements is not synchronized.
	OptOptions     opt.Options
	RewriteOptions rewrite.Options

	// Options collects engine-level tuning knobs that do not affect plan
	// semantics (flipping them never invalidates cached plans).
	Options Options

	// Metrics counts compiles and plan-cache traffic.
	Metrics Metrics

	// stats is the per-database observability state: the metric registry
	// plus statement-path recording handles (see stats.go).
	stats *dbStats

	// mem is the process-level memory accountant; sessions and
	// statements derive children from it (see resource.go).
	mem *resource.Accountant

	// plans caches prepared statements keyed by normalized SQL; coViews
	// caches compiled CO views by name. Both are validated against the
	// catalog version (DDL and ANALYZE invalidate by bumping it).
	plans   *planCache
	coMu    sync.Mutex
	coViews map[string]*coEntry

	// Durable-database state (see durability.go): background checkpoint
	// loop lifecycle and idempotent Close.
	ckptStop  chan struct{}
	ckptWG    sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// Open creates an empty database.
func Open() *Database {
	cat := catalog.New()
	db := &Database{
		cat:            cat,
		store:          storage.NewStore(cat),
		OptOptions:     opt.DefaultOptions(),
		RewriteOptions: rewrite.DefaultOptions(),
		plans:          newPlanCache(defaultPlanCacheCap),
		coViews:        make(map[string]*coEntry),
		mem:            resource.NewRoot("process", 0),
	}
	db.stats = newDBStats(db)
	return db
}

// Catalog exposes the catalog (read-mostly).
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// Store exposes the storage engine.
func (db *Database) Store() *storage.Store { return db.store }

// Result is a fully materialized query result. For large results prefer
// the streaming cursor (Database.QueryRows / Stmt.QueryRows), which holds
// one batch in memory instead of every row; Query is a materializing
// wrapper over it.
type Result struct {
	Cols []exec.Column
	Rows []types.Row
	// Counters from the execution context (rows scanned etc.).
	Counters exec.Counters
}

// Exec runs any statement; for queries it returns no rows (use Query).
// The int result is the number of rows affected by DML. Args bind `?`
// placeholders; parameterized DML is parse-cached (and INSERT … SELECT
// keeps its compiled source plan), so repeated Exec of the same text
// skips that work. Literal one-shot DML is deliberately not cached.
func (db *Database) Exec(sql string, args ...types.Value) (int64, error) {
	stmt, err := db.Prepare(sql)
	if err != nil {
		return 0, err
	}
	return stmt.Exec(args...)
}

// ExecStmt runs a parsed statement.
func (db *Database) ExecStmt(stmt ast.Statement) (int64, error) {
	switch s := stmt.(type) {
	case *ast.CreateTableStmt:
		return 0, db.createTable(s)
	case *ast.CreateIndexStmt:
		kind := catalog.HashIndex
		if s.Ordered {
			kind = catalog.OrderedIndex
		}
		return 0, db.store.CreateIndex(&catalog.Index{
			Name: s.Name, Table: s.Table, Columns: s.Columns, Kind: kind, Unique: s.Unique,
		})
	case *ast.CreateViewStmt:
		return 0, db.createView(s)
	case *ast.DropStmt:
		if s.Kind == "TABLE" {
			return 0, db.store.DropTable(s.Name)
		}
		return 0, db.store.DropView(s.Name)
	case *ast.AnalyzeStmt:
		// Statistics refresh bumps the catalog version inside the store,
		// exactly like the Go API Database.Analyze.
		if s.Table == "" {
			return 0, db.store.AnalyzeAll()
		}
		return 0, db.store.Analyze(s.Table)
	case *ast.AlterTableStmt:
		kind := catalog.RowStore
		if s.Storage == "COLUMN" {
			kind = catalog.ColumnStore
		}
		return 0, db.store.SetTableStorage(s.Table, kind)
	case *ast.InsertStmt:
		return db.execInsert(s, nil)
	case *ast.UpdateStmt:
		return db.execUpdate(s, nil)
	case *ast.DeleteStmt:
		return db.execDelete(s, nil)
	case *ast.SelectStmt:
		return 0, fmt.Errorf("engine: use Query for SELECT statements")
	case *ast.XNFQuery:
		return 0, fmt.Errorf("engine: use the CO API for XNF queries")
	default:
		return 0, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// ExecScript runs a semicolon-separated script (DDL + DML).
func (db *Database) ExecScript(sql string) error {
	stmts, err := parser.ParseScript(sql)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		if sel, ok := stmt.(*ast.SelectStmt); ok {
			if _, err := db.QueryStmt(sel); err != nil {
				return err
			}
			continue
		}
		if _, err := db.ExecStmt(stmt); err != nil {
			return fmt.Errorf("engine: %s: %w", firstWords(stmt.String(), 6), err)
		}
	}
	return nil
}

func firstWords(s string, n int) string {
	parts := strings.Fields(s)
	if len(parts) > n {
		parts = parts[:n]
	}
	return strings.Join(parts, " ")
}

// Query compiles and runs a SELECT, returning the materialized result.
// Args bind `?` placeholders. Plans are served from the shared plan cache:
// the first execution of a statement text compiles it, later executions
// (from any goroutine) clone the cached plan and run immediately.
func (db *Database) Query(sql string, args ...types.Value) (*Result, error) {
	stmt, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.Query(args...)
}

// QueryStmt compiles and runs a parsed SELECT.
func (db *Database) QueryStmt(sel *ast.SelectStmt) (*Result, error) {
	plan, err := db.CompileSelect(sel)
	if err != nil {
		return nil, err
	}
	ctx := exec.NewCtx(db.store)
	rows, err := exec.Collect(ctx, plan)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: plan.Columns(), Rows: rows, Counters: ctx.Counters}, nil
}

// CompileSelect runs the full compile pipeline for a SELECT and returns
// the physical plan.
func (db *Database) CompileSelect(sel *ast.SelectStmt) (exec.Plan, error) {
	plan, _, err := db.compileSelectDeps(sel)
	return plan, err
}

// compileSelectDeps is CompileSelect plus the catalog names (tables and
// views) the query resolved against, which the plan cache uses for
// per-dependency invalidation.
func (db *Database) compileSelectDeps(sel *ast.SelectStmt) (exec.Plan, []string, error) {
	db.Metrics.Compiles.Add(1)
	g, err := semantics.BuildSelect(db.cat, sel)
	if err != nil {
		return nil, nil, err
	}
	rewrite.Apply(g, db.RewriteOptions)
	if errs := g.Validate(); len(errs) > 0 {
		return nil, nil, fmt.Errorf("engine: invalid QGM after rewrite: %s", strings.Join(errs, "; "))
	}
	comp := opt.NewCompiler(db.store, g, db.OptOptions)
	plan, err := comp.CompileTop()
	if err != nil {
		return nil, nil, err
	}
	return plan, g.Deps, nil
}

// Explain returns the physical plan text for a SELECT.
func (db *Database) Explain(sql string) (string, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok {
		return "", fmt.Errorf("engine: EXPLAIN requires a SELECT statement")
	}
	plan, err := db.CompileSelect(sel)
	if err != nil {
		return "", err
	}
	return plan.Explain(0), nil
}

// ExplainAnalyze compiles and executes a SELECT (streaming, the result is
// discarded) and returns the physical plan text followed by the runtime
// counters of the execution — rows produced and scanned, index probes, and
// zone-map pruning effectiveness (segments skipped before decoding). Args
// bind `?` placeholders.
func (db *Database) ExplainAnalyze(sql string, args ...types.Value) (string, error) {
	stmt, err := db.Prepare(sql)
	if err != nil {
		return "", err
	}
	if !stmt.IsQuery() {
		return "", fmt.Errorf("engine: EXPLAIN ANALYZE requires a SELECT statement")
	}
	rows, err := stmt.QueryRows(args...)
	if err != nil {
		return "", err
	}
	defer rows.Close()
	n := 0
	for {
		row, err := rows.Next()
		if err != nil {
			return "", err
		}
		if row == nil {
			break
		}
		n++
	}
	c := rows.Counters()
	out := fmt.Sprintf("%s-- %d row(s); rows_scanned=%d index_lookups=%d segments_pruned=%d spools=%d subplan_runs=%d join_build=%d join_probe=%d pool_workers=%d pool_fallbacks=%d segments_scanned=%d mem_reserved=%d mem_fallbacks=%d encoded_cmp_rows=%d encoded_hash_rows=%d\n",
		stmt.plan.Explain(0), n, c.RowsScanned, c.IndexLookups, c.SegmentsPruned, c.SpoolMaterial, c.SubplanRuns,
		c.JoinBuildRows, c.JoinProbeRows, c.PoolWorkers, c.PoolFallbacks, c.SegmentsScanned, c.MemReserved, c.MemFallbacks,
		c.EncodedCmpRows, c.EncodedHashRows)
	if ws := db.store.WALStats(); ws.Attached {
		group := float64(0)
		if ws.Fsyncs > 0 {
			group = float64(ws.GroupSum) / float64(ws.Fsyncs)
		}
		out += fmt.Sprintf("-- wal: records=%d bytes=%d fsyncs=%d commits=%d group_mean=%.1f group_max=%d checkpoints=%d recovery_ms=%d\n",
			ws.Records, ws.Bytes, ws.Fsyncs, ws.Commits, group, ws.MaxGroup, ws.Checkpoints, ws.RecoveryMillis)
	}
	return out, nil
}

func (db *Database) createTable(s *ast.CreateTableStmt) error {
	t := &catalog.Table{Name: s.Name, PrimaryKey: s.PrimaryKey}
	for _, c := range s.Columns {
		t.Columns = append(t.Columns, catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
	}
	for _, fk := range s.ForeignKeys {
		t.ForeignKeys = append(t.ForeignKeys, catalog.ForeignKey{
			Columns: fk.Columns, RefTable: fk.RefTable, RefColumns: fk.RefColumns,
		})
	}
	return db.store.CreateTable(t)
}

func (db *Database) createView(s *ast.CreateViewStmt) error {
	if ast.NumPlaceholders(s) > 0 {
		return fmt.Errorf("engine: placeholders are not allowed in view definitions")
	}
	// Validate the view body compiles before storing its text.
	if s.XNF != nil {
		if _, err := semantics.BuildXNF(db.cat, s.XNF); err != nil {
			return err
		}
		return db.store.CreateView(&catalog.View{Name: s.Name, Text: s.String(), IsXNF: true})
	}
	if _, err := semantics.BuildSelect(db.cat, s.Select); err != nil {
		return err
	}
	return db.store.CreateView(&catalog.View{Name: s.Name, Text: s.String()})
}

// Analyze refreshes optimizer statistics for all tables.
func (db *Database) Analyze() error { return db.store.AnalyzeAll() }
