package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"xnf/internal/opt"
	"xnf/internal/rewrite"
	"xnf/internal/types"
)

// orgDB builds the paper's running-example schema (Fig. 1) with a small
// deterministic population.
func orgDB(t testing.TB) *Database {
	t.Helper()
	db := Open()
	ddl := `
CREATE TABLE DEPT (dno INT NOT NULL, dname VARCHAR, loc VARCHAR, PRIMARY KEY (dno));
CREATE TABLE EMP (eno INT NOT NULL, ename VARCHAR, edno INT, sal FLOAT, PRIMARY KEY (eno));
CREATE TABLE PROJ (pno INT NOT NULL, pname VARCHAR, pdno INT, budget FLOAT, PRIMARY KEY (pno));
CREATE TABLE SKILLS (sno INT NOT NULL, sname VARCHAR, PRIMARY KEY (sno));
CREATE TABLE EMPSKILLS (eseno INT NOT NULL, essno INT NOT NULL);
CREATE TABLE PROJSKILLS (pspno INT NOT NULL, pssno INT NOT NULL);
INSERT INTO DEPT VALUES (1, 'db', 'ARC'), (2, 'os', 'ARC'), (3, 'apps', 'HQ');
INSERT INTO EMP VALUES (1, 'e1', 1, 100), (2, 'e2', 1, 200), (3, 'e3', 2, 300), (4, 'e4', 3, 400), (5, 'e5', NULL, 500);
INSERT INTO PROJ VALUES (1, 'p1', 1, 10), (2, 'p2', 2, 20), (3, 'p3', 3, 30);
INSERT INTO SKILLS VALUES (1, 'sql'), (2, 'c'), (3, 'go'), (4, 'ml'), (5, 'ui');
INSERT INTO EMPSKILLS VALUES (1, 1), (2, 3), (3, 3), (3, 4);
INSERT INTO PROJSKILLS VALUES (1, 3), (2, 4), (2, 5), (3, 2);
`
	if err := db.ExecScript(ddl); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func queryStrings(t testing.TB, db *Database, sql string) []string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	return out
}

func sortedEqual(t *testing.T, got, want []string) {
	t.Helper()
	g := append([]string{}, got...)
	w := append([]string{}, want...)
	sort.Strings(g)
	sort.Strings(w)
	if len(g) != len(w) {
		t.Fatalf("row count %d != %d\n got: %v\nwant: %v", len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d: %q != %q\n got: %v\nwant: %v", i, g[i], w[i], g, w)
		}
	}
}

func TestSelectScanFilter(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT ename FROM EMP WHERE sal > 250")
	sortedEqual(t, got, []string{"e3", "e4", "e5"})
}

func TestProjectionExpressions(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT eno * 10 + 1, UPPER(ename) FROM EMP WHERE eno <= 2")
	sortedEqual(t, got, []string{"11|E1", "21|E2"})
}

func TestJoin(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'")
	sortedEqual(t, got, []string{"e1|db", "e2|db", "e3|os"})
}

func TestJoinSyntax(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT e.ename FROM EMP e JOIN DEPT d ON e.edno = d.dno WHERE d.loc = 'HQ'")
	sortedEqual(t, got, []string{"e4"})
}

func TestThreeWayJoin(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, `SELECT e.ename, s.sname FROM EMP e, EMPSKILLS es, SKILLS s
		WHERE e.eno = es.eseno AND es.essno = s.sno`)
	sortedEqual(t, got, []string{"e1|sql", "e2|go", "e3|go", "e3|ml"})
}

func TestExistsSubquery(t *testing.T) {
	db := orgDB(t)
	// The paper's Fig. 3 query.
	got := queryStrings(t, db, `SELECT ename FROM EMP e
		WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)`)
	sortedEqual(t, got, []string{"e1", "e2", "e3"})
}

func TestExistsAllOptimizerModes(t *testing.T) {
	q := `SELECT ename FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)`
	want := []string{"e1", "e2", "e3"}
	modes := []struct {
		name string
		rw   rewrite.Options
		op   opt.Options
	}{
		{"full", rewrite.DefaultOptions(), opt.DefaultOptions()},
		{"no-rewrite", rewrite.NoRewrite(), opt.DefaultOptions()},
		{"naive", rewrite.NoRewrite(), opt.NaiveOptions()},
		{"rewrite-naive-exec", rewrite.DefaultOptions(), opt.NaiveOptions()},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			db := orgDB(t)
			db.RewriteOptions = m.rw
			db.OptOptions = m.op
			sortedEqual(t, queryStrings(t, db, q), want)
		})
	}
}

func TestNotExists(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, `SELECT ename FROM EMP e
		WHERE NOT EXISTS (SELECT 1 FROM EMPSKILLS es WHERE es.eseno = e.eno)`)
	sortedEqual(t, got, []string{"e4", "e5"})
}

func TestInSubquery(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT ename FROM EMP WHERE edno IN (SELECT dno FROM DEPT WHERE loc = 'ARC')")
	sortedEqual(t, got, []string{"e1", "e2", "e3"})
}

func TestNotInWithNulls(t *testing.T) {
	db := orgDB(t)
	// e5 has NULL edno: NULL NOT IN (...) is UNKNOWN, so e5 is excluded.
	got := queryStrings(t, db, "SELECT ename FROM EMP WHERE edno NOT IN (SELECT dno FROM DEPT WHERE loc = 'ARC')")
	sortedEqual(t, got, []string{"e4"})
	// NOT IN against a set containing NULL excludes everything.
	if _, err := db.Exec("INSERT INTO DEPT VALUES (99, 'x', NULL)"); err != nil {
		t.Fatal(err)
	}
	got = queryStrings(t, db, "SELECT ename FROM EMP WHERE edno NOT IN (SELECT loc FROM DEPT)")
	if len(got) != 0 {
		t.Fatalf("NOT IN over a NULL-containing set must be empty, got %v", got)
	}
}

func TestScalarSubquery(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT ename FROM EMP WHERE sal = (SELECT MAX(sal) FROM EMP)")
	sortedEqual(t, got, []string{"e5"})
	// Correlated scalar subquery.
	got = queryStrings(t, db, `SELECT d.dname FROM DEPT d
		WHERE (SELECT COUNT(*) FROM EMP e WHERE e.edno = d.dno) = 2`)
	sortedEqual(t, got, []string{"db"})
	// Scalar subquery with more than one row errors.
	if _, err := db.Query("SELECT (SELECT dno FROM DEPT) FROM EMP"); err == nil {
		t.Error("multi-row scalar subquery should error")
	}
}

func TestGroupByHaving(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, `SELECT edno, COUNT(*), SUM(sal), MIN(sal), MAX(sal)
		FROM EMP WHERE edno IS NOT NULL GROUP BY edno`)
	sortedEqual(t, got, []string{"1|2|300|100|200", "2|1|300|300|300", "3|1|400|400|400"})
	got = queryStrings(t, db, `SELECT edno FROM EMP GROUP BY edno HAVING COUNT(*) > 1`)
	sortedEqual(t, got, []string{"1"})
}

func TestGlobalAggregates(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT COUNT(*), AVG(sal) FROM EMP")
	sortedEqual(t, got, []string{"5|300"})
	// Empty input still yields one row.
	got = queryStrings(t, db, "SELECT COUNT(*), SUM(sal) FROM EMP WHERE eno > 100")
	sortedEqual(t, got, []string{"0|NULL"})
	// COUNT(DISTINCT).
	got = queryStrings(t, db, "SELECT COUNT(DISTINCT edno) FROM EMP")
	sortedEqual(t, got, []string{"3"})
}

func TestAggregateOverJoinGroupedByExpr(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, `SELECT d.loc, COUNT(*) FROM EMP e, DEPT d
		WHERE e.edno = d.dno GROUP BY d.loc`)
	sortedEqual(t, got, []string{"ARC|3", "HQ|1"})
}

func TestDistinct(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT DISTINCT loc FROM DEPT")
	sortedEqual(t, got, []string{"ARC", "HQ"})
}

func TestOrderByLimit(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT ename FROM EMP ORDER BY sal DESC LIMIT 2")
	if len(got) != 2 || got[0] != "e5" || got[1] != "e4" {
		t.Fatalf("got %v", got)
	}
	got = queryStrings(t, db, "SELECT ename, sal FROM EMP ORDER BY 2")
	if got[0] != "e1|100" {
		t.Fatalf("ordinal order by: %v", got)
	}
}

func TestUnion(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT loc FROM DEPT UNION SELECT ename FROM EMP WHERE eno = 1")
	sortedEqual(t, got, []string{"ARC", "HQ", "e1"})
	got = queryStrings(t, db, "SELECT loc FROM DEPT UNION ALL SELECT loc FROM DEPT")
	if len(got) != 6 {
		t.Fatalf("UNION ALL should keep duplicates: %v", got)
	}
}

func TestDerivedTable(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, `SELECT s.dname FROM (SELECT dname, loc FROM DEPT WHERE loc = 'ARC') s`)
	sortedEqual(t, got, []string{"db", "os"})
}

func TestViews(t *testing.T) {
	db := orgDB(t)
	if _, err := db.Exec("CREATE VIEW arc_depts AS SELECT * FROM DEPT WHERE loc = 'ARC'"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT e.ename FROM EMP e, arc_depts d WHERE e.edno = d.dno")
	sortedEqual(t, got, []string{"e1", "e2", "e3"})
	// View over view.
	if _, err := db.Exec("CREATE VIEW arc_names AS SELECT dname FROM arc_depts"); err != nil {
		t.Fatal(err)
	}
	sortedEqual(t, queryStrings(t, db, "SELECT * FROM arc_names"), []string{"db", "os"})
	if _, err := db.Exec("DROP VIEW arc_names"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT * FROM arc_names"); err == nil {
		t.Error("dropped view should be gone")
	}
}

func TestCaseLikeBetween(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, `SELECT ename, CASE WHEN sal < 250 THEN 'low' ELSE 'high' END FROM EMP WHERE ename LIKE 'e%' AND eno BETWEEN 1 AND 3`)
	sortedEqual(t, got, []string{"e1|low", "e2|low", "e3|high"})
}

func TestUpdateDelete(t *testing.T) {
	db := orgDB(t)
	n, err := db.Exec("UPDATE EMP SET sal = sal * 2 WHERE edno = 1")
	if err != nil || n != 2 {
		t.Fatalf("update: %d, %v", n, err)
	}
	sortedEqual(t, queryStrings(t, db, "SELECT sal FROM EMP WHERE edno = 1"), []string{"200", "400"})

	// Correlated subquery in UPDATE WHERE.
	n, err = db.Exec(`UPDATE EMP e SET ename = 'arc_emp' WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.dno = e.edno AND d.loc = 'ARC')`)
	if err != nil || n != 3 {
		t.Fatalf("correlated update: %d, %v", n, err)
	}
	n, err = db.Exec("DELETE FROM EMP WHERE sal >= 400")
	if err != nil || n != 3 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	sortedEqual(t, queryStrings(t, db, "SELECT ename FROM EMP"), []string{"arc_emp", "arc_emp"})
}

func TestInsertSelectAndSubsets(t *testing.T) {
	db := orgDB(t)
	if _, err := db.Exec("CREATE TABLE EMP2 (eno INT NOT NULL, ename VARCHAR, edno INT, sal FLOAT, PRIMARY KEY (eno))"); err != nil {
		t.Fatal(err)
	}
	n, err := db.Exec("INSERT INTO EMP2 SELECT * FROM EMP WHERE sal > 250")
	if err != nil || n != 3 {
		t.Fatalf("insert-select: %d, %v", n, err)
	}
	n, err = db.Exec("INSERT INTO EMP2 (eno, ename) VALUES (100, 'partial')")
	if err != nil || n != 1 {
		t.Fatalf("partial insert: %d, %v", n, err)
	}
	sortedEqual(t, queryStrings(t, db, "SELECT ename, edno FROM EMP2 WHERE eno = 100"), []string{"partial|NULL"})
}

func TestIndexUse(t *testing.T) {
	db := orgDB(t)
	if _, err := db.Exec("CREATE INDEX emp_edno ON EMP (edno)"); err != nil {
		t.Fatal(err)
	}
	plan, err := db.Explain("SELECT e.ename FROM DEPT d, EMP e WHERE d.dno = e.edno AND d.loc = 'HQ'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexLookup EMP") {
		t.Errorf("expected index nested-loop join, got plan:\n%s", plan)
	}
	got := queryStrings(t, db, "SELECT e.ename FROM DEPT d, EMP e WHERE d.dno = e.edno AND d.loc = 'HQ'")
	sortedEqual(t, got, []string{"e4"})
	// Constant lookup through the primary-key index.
	plan, _ = db.Explain("SELECT ename FROM EMP WHERE eno = 3")
	if !strings.Contains(plan, "IndexLookup EMP.EMP_PK") {
		t.Errorf("expected PK lookup, got:\n%s", plan)
	}
}

func TestExplainShapes(t *testing.T) {
	db := orgDB(t)
	plan, err := db.Explain("SELECT e.ename FROM EMP e, DEPT d WHERE e.edno = d.dno")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "HashJoin") && !strings.Contains(plan, "NLJoin") {
		t.Errorf("plan missing join:\n%s", plan)
	}
	db.OptOptions = opt.NaiveOptions()
	plan, err = db.Explain("SELECT e.ename FROM EMP e, DEPT d WHERE e.edno = d.dno")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "HashJoin") || strings.Contains(plan, "IndexLookup") {
		t.Errorf("naive plan must not use hash/index joins:\n%s", plan)
	}
}

// Property-style check: every optimizer mode returns the same multiset for
// a corpus of queries.
func TestOptimizerModesAgree(t *testing.T) {
	corpus := []string{
		"SELECT * FROM EMP",
		"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno",
		"SELECT e.ename FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.dno = e.edno AND d.loc = 'ARC')",
		"SELECT ename FROM EMP WHERE edno IN (SELECT dno FROM DEPT WHERE loc = 'ARC')",
		"SELECT ename FROM EMP WHERE edno NOT IN (SELECT dno FROM DEPT WHERE loc = 'ARC')",
		"SELECT d.loc, COUNT(*) FROM EMP e, DEPT d WHERE e.edno = d.dno GROUP BY d.loc",
		"SELECT e.ename, s.sname FROM EMP e, EMPSKILLS es, SKILLS s WHERE e.eno = es.eseno AND es.essno = s.sno",
		"SELECT ename FROM EMP e WHERE NOT EXISTS (SELECT 1 FROM EMPSKILLS es WHERE es.eseno = e.eno)",
		"SELECT DISTINCT loc FROM DEPT UNION SELECT ename FROM EMP WHERE sal > 400",
		"SELECT ename FROM EMP WHERE sal = (SELECT MAX(sal) FROM EMP)",
		"SELECT d.dname FROM DEPT d WHERE (SELECT COUNT(*) FROM EMP e WHERE e.edno = d.dno) >= 1",
	}
	type mode struct {
		name string
		rw   rewrite.Options
		op   opt.Options
	}
	modes := []mode{
		{"full", rewrite.DefaultOptions(), opt.DefaultOptions()},
		{"no-rewrite", rewrite.NoRewrite(), opt.DefaultOptions()},
		{"naive", rewrite.NoRewrite(), opt.NaiveOptions()},
		{"spool-off", rewrite.DefaultOptions(), opt.Options{HashJoin: true, IndexNL: true, HashedSubplans: true, JoinOrdering: true}},
	}
	for qi, q := range corpus {
		var ref []string
		for _, m := range modes {
			db := orgDB(t)
			db.Exec("CREATE INDEX emp_edno ON EMP (edno)")
			db.RewriteOptions = m.rw
			db.OptOptions = m.op
			got := queryStrings(t, db, q)
			sort.Strings(got)
			if m.name == "full" {
				ref = got
				continue
			}
			if fmt.Sprint(got) != fmt.Sprint(ref) {
				t.Errorf("query %d under %s differs:\n full: %v\n %s: %v\n query: %s", qi, m.name, ref, m.name, got, q)
			}
		}
	}
}

func TestDDLErrors(t *testing.T) {
	db := orgDB(t)
	if _, err := db.Exec("CREATE TABLE DEPT (x INT)"); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := db.Query("SELECT * FROM nosuch"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := db.Query("SELECT nosuchcol FROM EMP"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := db.Query("SELECT eno FROM EMP, DEPT WHERE dname = ename AND eno = dno GROUP BY eno HAVING ename > 'a'"); err == nil {
		t.Error("HAVING over non-grouped column should fail")
	}
	if _, err := db.Query("SELECT ename FROM EMP WHERE sal = 'text'"); err == nil {
		t.Error("type mismatch should fail")
	}
}

func TestSelectNoFrom(t *testing.T) {
	db := orgDB(t)
	got := queryStrings(t, db, "SELECT 1 + 2, 'x'")
	sortedEqual(t, got, []string{"3|x"})
}

var _ = types.Null
