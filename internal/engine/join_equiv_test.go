package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xnf/internal/types"
	"xnf/internal/vexec"
)

// joinEquivCorpus is the row-vs-batch corpus for the operators that lower
// natively since the batch join/sort/distinct work: hash joins (NULL keys,
// duplicate keys, empty build sides, mixed int/float and string keys,
// residual predicates), ORDER BY asc/desc over NULLs with LIMIT, DISTINCT,
// UNION / UNION ALL, and joins feeding grouped aggregates.
var joinEquivCorpus = []string{
	// Basic equi-joins; EMP e5 has a NULL edno that must never join.
	"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno",
	"SELECT e.ename FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'",
	"SELECT e.eno, p.pno FROM EMP e, PROJ p WHERE e.edno = p.pdno",
	// Duplicate keys on both sides (dept 1 employs two, locs repeat).
	"SELECT d1.dname, d2.dname FROM DEPT d1, DEPT d2 WHERE d1.loc = d2.loc",
	"SELECT e1.ename, e2.ename FROM EMP e1, EMP e2 WHERE e1.edno = e2.edno",
	// Empty build side: the pushed-down filter kills every build row.
	"SELECT e.ename FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'NOWHERE'",
	// Float keys, and int-vs-float key comparisons (2 joins 2.0).
	"SELECT e.ename, p.pname FROM EMP e, PROJ p WHERE e.sal = p.budget * 10",
	"SELECT e.ename, p.pname FROM EMP e, PROJ p WHERE e.eno = p.budget / 10",
	// Residual predicates evaluated over the joined row.
	"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno AND e.sal > d.dno * 100",
	"SELECT e.ename, p.pname FROM EMP e, PROJ p WHERE e.edno = p.pdno AND e.sal + p.budget > 120",
	// Multi-way joins (string and int keys through link tables).
	"SELECT e.ename, s.sname FROM EMP e, EMPSKILLS es, SKILLS s WHERE e.eno = es.eseno AND es.essno = s.sno",
	"SELECT s.sname, p.pname FROM SKILLS s, PROJSKILLS ps, PROJ p WHERE s.sno = ps.pssno AND ps.pspno = p.pno",
	// Sorts: asc and desc over a NULL-bearing key, compound keys, LIMIT.
	"SELECT ename, edno FROM EMP ORDER BY edno",
	"SELECT ename, edno FROM EMP ORDER BY edno DESC",
	"SELECT ename FROM EMP ORDER BY edno DESC, sal",
	"SELECT ename FROM EMP ORDER BY sal DESC LIMIT 2",
	"SELECT ename, sal FROM EMP WHERE sal > 150 ORDER BY sal",
	"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno ORDER BY e.sal DESC",
	"SELECT e.ename FROM EMP e, DEPT d WHERE e.edno = d.dno ORDER BY d.dname, e.ename LIMIT 3",
	// DISTINCT over scans and join outputs.
	"SELECT DISTINCT edno FROM EMP",
	"SELECT DISTINCT d.loc FROM DEPT d, EMP e WHERE e.edno = d.dno",
	"SELECT DISTINCT sal > 250 FROM EMP",
	// UNION dedups across children, UNION ALL concatenates.
	"SELECT ename FROM EMP WHERE sal < 200 UNION SELECT ename FROM EMP WHERE sal > 400",
	"SELECT edno FROM EMP UNION SELECT dno FROM DEPT",
	"SELECT edno FROM EMP UNION ALL SELECT dno FROM DEPT",
	"SELECT dno FROM DEPT UNION ALL SELECT dno FROM DEPT",
	// Joins feeding grouped aggregates end-to-end in batch form.
	"SELECT d.dname, COUNT(*), SUM(e.sal) FROM EMP e, DEPT d WHERE e.edno = d.dno GROUP BY d.dname",
	"SELECT d.loc, COUNT(DISTINCT e.eno) FROM EMP e, DEPT d WHERE e.edno = d.dno GROUP BY d.loc",
	"SELECT p.pname, MIN(e.sal), MAX(e.sal) FROM EMP e, PROJ p WHERE e.edno = p.pdno GROUP BY p.pname HAVING COUNT(*) >= 1",
}

// TestJoinSortDistinctEquivalence runs the corpus through both executors on
// row storage and column storage; ORDER BY / LIMIT queries compare
// positionally, the rest as multisets.
func TestJoinSortDistinctEquivalence(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		name := "row-storage"
		if columnar {
			name = "column-storage"
		}
		t.Run(name, func(t *testing.T) {
			db := orgDB(t)
			if columnar {
				toColumnStorage(t, db)
			}
			for _, q := range joinEquivCorpus {
				rowRes, batchRes, ordered := runBoth(t, db, q)
				if ordered {
					if fmt.Sprint(rowRes) != fmt.Sprint(batchRes) {
						t.Errorf("%q: ordered results differ\nrow:   %v\nbatch: %v", q, rowRes, batchRes)
					}
					continue
				}
				sortedEqual(t, batchRes, rowRes)
			}
		})
	}
}

// TestJoinLowering pins that representative shapes actually lower to the
// batch operators (rather than silently riding the row fallback, which the
// equivalence test would not notice).
func TestJoinLowering(t *testing.T) {
	db := orgDB(t)
	cases := []struct{ q, op string }{
		{"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno", "BatchHashJoin"},
		{"SELECT ename FROM EMP ORDER BY sal DESC", "BatchSort"},
		{"SELECT DISTINCT edno FROM EMP", "BatchDistinct"},
		{"SELECT edno FROM EMP UNION SELECT dno FROM DEPT", "BatchUnion"},
		{"SELECT d.dname, COUNT(*) FROM EMP e, DEPT d WHERE e.edno = d.dno GROUP BY d.dname", "BatchHashJoin"},
	}
	for _, c := range cases {
		plan, err := db.Explain(c.q)
		if err != nil {
			t.Fatalf("Explain(%q): %v", c.q, err)
		}
		if !strings.Contains(plan, c.op) {
			t.Errorf("%q did not lower to %s:\n%s", c.q, c.op, plan)
		}
	}
}

// TestJoinEquivalencePrepared exercises parameterized joins through cloned
// cached plans, with parameters in keys, pushed-down build filters, and
// residuals.
func TestJoinEquivalencePrepared(t *testing.T) {
	db := orgDB(t)
	cases := []struct {
		q    string
		args [][]types.Value
	}{
		{"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = ?", [][]types.Value{
			{types.NewString("ARC")}, {types.NewString("HQ")}, {types.NewString("NOWHERE")},
		}},
		{"SELECT e.ename FROM EMP e, DEPT d WHERE e.edno = d.dno AND e.sal > ?", [][]types.Value{
			{types.NewFloat(150)}, {types.NewFloat(1e6)},
		}},
		{"SELECT ename FROM EMP WHERE sal > ? ORDER BY sal DESC", [][]types.Value{
			{types.NewFloat(0)}, {types.NewFloat(250)},
		}},
	}
	for _, c := range cases {
		for _, args := range c.args {
			rowRes, batchRes, ordered := runBoth(t, db, c.q, args...)
			if ordered {
				if fmt.Sprint(rowRes) != fmt.Sprint(batchRes) {
					t.Errorf("%q %v: ordered results differ\nrow:   %v\nbatch: %v", c.q, args, rowRes, batchRes)
				}
				continue
			}
			sortedEqual(t, batchRes, rowRes)
		}
	}
}

// TestBatchJoinBigTables pushes the batch join past several batch
// boundaries on both sides, with skew (one hot key), NULL keys scattered
// through both inputs, and a parallel build over a column-stored build
// side.
func TestBatchJoinBigTables(t *testing.T) {
	db := Open()
	if err := db.ExecScript(`
CREATE TABLE FACT (id INT NOT NULL, k INT, v INT, PRIMARY KEY (id));
CREATE TABLE DIM (k INT NOT NULL, name VARCHAR, grp INT, PRIMARY KEY (k));
`); err != nil {
		t.Fatal(err)
	}
	fact, err := db.Store().Table("FACT")
	if err != nil {
		t.Fatal(err)
	}
	dim, err := db.Store().Table("DIM")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if _, err := dim.Insert(types.Row{
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("d%d", i)), types.NewInt(int64(i % 5)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 7000; i++ {
		k := types.NewInt(int64(i % 900)) // ~1/3 of probe keys miss
		if i%10 == 0 {
			k = types.NewInt(7) // hot key
		}
		if i%37 == 0 {
			k = types.Null
		}
		if _, err := fact.Insert(types.Row{types.NewInt(int64(i)), k, types.NewInt(int64(i % 100))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("ALTER TABLE DIM SET STORAGE COLUMN"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE FACT SET STORAGE COLUMN"); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT f.id, d.name FROM FACT f, DIM d WHERE f.k = d.k AND d.grp = 2",
		"SELECT d.grp, COUNT(*), SUM(f.v) FROM FACT f, DIM d WHERE f.k = d.k GROUP BY d.grp",
		"SELECT COUNT(*) FROM FACT f, DIM d WHERE f.k = d.k AND f.v > d.grp * 10",
	}
	run := func(parallel bool) {
		prev := db.OptOptions
		defer func() { db.OptOptions = prev }()
		db.OptOptions.ParallelScan = parallel
		db.OptOptions.ParallelWorkers = 4
		db.OptOptions.ParallelMinRows = 1
		for _, q := range queries {
			rowRes, batchRes, _ := runBoth(t, db, q)
			sortedEqual(t, batchRes, rowRes)
		}
	}
	run(false)
	run(true) // morsel-parallel hash build over the column-stored build side
}

// TestJoinParallelMinRows pins the admission threshold: joins over tables
// below Options.ParallelMinRows must not touch the worker pool even with
// parallelism enabled, while a large build side above the threshold does.
func TestJoinParallelMinRows(t *testing.T) {
	db := orgDB(t) // tiny tables
	toColumnStorage(t, db)
	db.OptOptions.ParallelScan = true
	db.OptOptions.ParallelWorkers = 4
	// Default ParallelMinRows (16384) far exceeds every org table.
	res, err := db.Query("SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno")
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.PoolWorkers != 0 || res.Counters.PoolFallbacks != 0 {
		t.Fatalf("tiny join touched the worker pool: %+v", res.Counters)
	}

	// Join on non-indexed keys so the planner picks a hash join (a PK key
	// would compile to an index nested-loop instead).
	big := Open()
	if err := big.ExecScript(`
CREATE TABLE F (id INT NOT NULL, k INT, PRIMARY KEY (id));
CREATE TABLE D (id INT NOT NULL, k INT, PRIMARY KEY (id));
`); err != nil {
		t.Fatal(err)
	}
	ftd, err := big.Store().Table("F")
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := big.Store().Table("D")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9000; i++ {
		if _, err := ftd.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 3000))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		if _, err := dtd.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tbl := range []string{"F", "D"} {
		if _, err := big.Exec("ALTER TABLE " + tbl + " SET STORAGE COLUMN"); err != nil {
			t.Fatal(err)
		}
	}
	big.OptOptions.ParallelScan = true
	big.OptOptions.ParallelWorkers = 4
	big.OptOptions.ParallelMinRows = 1
	res, err = big.Query("SELECT COUNT(*) FROM F f, D d WHERE f.k = d.k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.PoolWorkers == 0 && res.Counters.PoolFallbacks == 0 {
		t.Fatalf("large parallel join never requested pool workers: %+v", res.Counters)
	}
	// One side builds, the other probes; the planner picks which.
	if got := res.Counters.JoinBuildRows + res.Counters.JoinProbeRows; got != 12000 {
		t.Fatalf("join_build+join_probe=%d, want 12000 (counters: %+v)", got, res.Counters)
	}
}

// TestJoinCountersRowBatchParity checks that both executors account the
// same build/probe row counts (NULL keys excluded on both sides).
func TestJoinCountersRowBatchParity(t *testing.T) {
	db := orgDB(t)
	const q = "SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno"
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()
	db.OptOptions.Vectorize = false
	rowRes, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	db.OptOptions.Vectorize = true
	batchRes, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// The planner picked EMP (5 rows, one NULL edno → 4 keyed) as build and
	// DEPT (3 rows) as probe; both executors must account identically.
	for _, res := range []*Result{rowRes, batchRes} {
		if res.Counters.JoinBuildRows != 4 {
			t.Fatalf("join_build=%d, want 4 (counters: %+v)", res.Counters.JoinBuildRows, res.Counters)
		}
		if res.Counters.JoinProbeRows != 3 {
			t.Fatalf("join_probe=%d, want 3 (counters: %+v)", res.Counters.JoinProbeRows, res.Counters)
		}
	}
}

// TestBatchJoinConcurrentRace hammers one cached batch-join plan from many
// goroutines against a bounded shared pool with the admission threshold
// forced to 1, so parallel builds, pool admission and sequential fallbacks
// all interleave under the race detector.
func TestBatchJoinConcurrentRace(t *testing.T) {
	vexec.SetWorkers(4)
	defer vexec.SetWorkers(0)

	db := Open()
	if err := db.ExecScript(`
CREATE TABLE FACT (id INT NOT NULL, k INT, v INT, PRIMARY KEY (id));
CREATE TABLE DIM (k INT NOT NULL, grp INT, PRIMARY KEY (k));
`); err != nil {
		t.Fatal(err)
	}
	fact, _ := db.Store().Table("FACT")
	dim, _ := db.Store().Table("DIM")
	for i := 0; i < 400; i++ {
		if _, err := dim.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6000; i++ {
		if _, err := fact.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 500)), types.NewInt(int64(i % 100))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("ALTER TABLE DIM SET STORAGE COLUMN"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE FACT SET STORAGE COLUMN"); err != nil {
		t.Fatal(err)
	}
	db.OptOptions.ParallelScan = true
	db.OptOptions.ParallelWorkers = 4
	db.OptOptions.ParallelMinRows = 1
	stmt, err := db.Prepare("SELECT d.grp, COUNT(*), SUM(f.v) FROM FACT f, DIM d WHERE f.k = d.k AND f.v >= ? GROUP BY d.grp")
	if err != nil {
		t.Fatal(err)
	}
	want, err := stmt.Query(types.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := stmt.Query(types.NewInt(0))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != len(want.Rows) {
					errs <- fmt.Errorf("goroutine %d: %d groups, want %d", g, len(res.Rows), len(want.Rows))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := vexec.Shared.Stats(); st.Peak > 4 {
		t.Fatalf("pool peak %d exceeded configured bound 4", st.Peak)
	}
}
