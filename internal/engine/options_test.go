package engine

import (
	"fmt"
	"testing"
)

// floodCache prepares n distinct one-shot statements, each entering the
// plan cache with zero hits.
func floodCache(t *testing.T, db *Database, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := db.Query(fmt.Sprintf("SELECT ename FROM EMP WHERE eno = %d", 1000+i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWeightedEvictionKeepsHotPlans contrasts the two eviction policies on
// the same workload: a hot statement followed by a flood of one-shot
// statements. Pure LRU pushes the hot plan out; weighted eviction keeps it
// because its hit count dominates the weight of the zero-hit flood entries.
func TestWeightedEvictionKeepsHotPlans(t *testing.T) {
	const hot = "SELECT ename FROM EMP WHERE eno = 1"

	run := func(weighted bool) bool {
		db := orgDB(t)
		db.SetPlanCacheCapacity(4)
		db.Options.WeightedEviction = weighted
		for i := 0; i < 50; i++ {
			if _, err := db.Query(hot); err != nil {
				t.Fatal(err)
			}
		}
		floodCache(t, db, 16)
		before := db.Metrics.CacheHits.Load()
		if _, err := db.Query(hot); err != nil {
			t.Fatal(err)
		}
		return db.Metrics.CacheHits.Load() == before+1 // still cached?
	}

	if run(false) {
		t.Fatal("pure LRU unexpectedly kept the hot plan through the flood (test premise broken)")
	}
	if !run(true) {
		t.Fatal("weighted eviction dropped the hot plan despite 49 recorded hits")
	}
}

// TestWeightedEvictionStillBounds checks that the weighted policy respects
// the capacity bound.
func TestWeightedEvictionStillBounds(t *testing.T) {
	db := orgDB(t)
	db.SetPlanCacheCapacity(4)
	db.Options.WeightedEviction = true
	floodCache(t, db, 32)
	if n := db.PlanCacheLen(); n > 4 {
		t.Fatalf("cache grew to %d entries with capacity 4", n)
	}
}

// TestCacheStatsExposeCost verifies CacheStats carries the compile-cost
// input of the weighted policy.
func TestCacheStatsExposeCost(t *testing.T) {
	db := orgDB(t)
	if _, err := db.Query("SELECT ename FROM EMP WHERE sal > 100"); err != nil {
		t.Fatal(err)
	}
	stats := db.CacheStats()
	if len(stats) == 0 {
		t.Fatal("no cache entries")
	}
	if stats[0].CostNs <= 0 {
		t.Fatalf("entry cost = %d, want > 0", stats[0].CostNs)
	}
}
