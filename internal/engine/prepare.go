package engine

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xnf/internal/ast"
	"xnf/internal/core"
	"xnf/internal/exec"
	"xnf/internal/lexer"
	"xnf/internal/opt"
	"xnf/internal/parser"
	"xnf/internal/rewrite"
	"xnf/internal/types"
)

// Options collects engine-level tuning knobs that do not affect plan
// semantics — unlike OptOptions, flipping them never invalidates a cached
// plan, so they can change between executions without recompiles.
type Options struct {
	// WeightedEviction switches the plan cache from pure LRU to weighted
	// eviction: the victim is the entry in the LRU tail window with the
	// smallest compile-cost × hit-count weight, so an expensive or hot
	// plan survives a sweep of cheap one-shot statements. Recency still
	// matters — only the coldest EvictionWindow entries compete.
	WeightedEviction bool
	// EvictionWindow bounds how many LRU-tail entries compete when
	// WeightedEviction is set. 0 means the default (8).
	EvictionWindow int
	// StatementTimeout bounds the wall time of a streaming statement
	// execution (0 = none). It applies only when the caller's context
	// carries no deadline of its own, so per-session SET overrides —
	// delivered as context deadlines — replace it in either direction.
	// The deadline is checked between rows and at batch boundaries
	// inside blocking operators (sort, hash build, aggregation).
	StatementTimeout time.Duration
}

// defaultEvictionWindow is the LRU tail window weighted eviction examines.
const defaultEvictionWindow = 8

// Metrics counts compilation and cache activity. The prepared-statement
// tests and the bench harness read them to verify that repeated executions
// of a cached statement skip the compile pipeline entirely.
type Metrics struct {
	// Compiles counts full SELECT compile-pipeline runs
	// (parse → semantics → rewrite → opt).
	Compiles atomic.Int64
	// CacheHits / CacheMisses count plan-cache lookups.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// COCompiles / COCacheHits count CO view compilations and reuses.
	COCompiles  atomic.Int64
	COCacheHits atomic.Int64
	// COPlanCompiles / COPlanCacheHits count per-output physical plan
	// template compilations for CO views and their reuses.
	COPlanCompiles  atomic.Int64
	COPlanCacheHits atomic.Int64
}

// Stmt is a prepared statement: SQL text compiled once and executed many
// times with `?` placeholder arguments — the compile-once/navigate-many
// economics of the paper applied to the SQL request path. A Stmt is
// immutable after Prepare and safe for concurrent use; every execution
// runs a private clone of the compiled plan.
type Stmt struct {
	db         *Database
	text       string // original SQL
	norm       string // normalized cache key
	nparams    int
	version    atomic.Uint64 // catalog version the plan is known fresh at
	optOpts    opt.Options
	rwOpts     rewrite.Options
	sel        *ast.SelectStmt // non-nil for SELECT
	plan       exec.Plan       // compiled template (SELECT only)
	cols       []exec.Column
	other      ast.Statement     // non-nil for everything else
	mut        *compiledMutation // compiled UPDATE/DELETE predicate+assignments
	insertRows [][]exec.Expr     // compiled INSERT VALUES expressions
	cacheable  bool
	cost       int64 // compile wall time in nanoseconds (eviction weight)

	// deps / depVers record the catalog names (tables and views) the plan
	// was compiled against and the per-name versions observed then. When the
	// global catalog version moves but every dep is unchanged, the statement
	// is re-stamped fresh instead of recompiled — DDL/ANALYZE on unrelated
	// tables no longer evicts it. depsKnown=false disables the fast path
	// (DDL raced the compile, or the dependency set is not tracked). The
	// slices are immutable after prepareMiss; freshness is re-stamped by
	// storing the current catalog version into the atomic version field.
	deps      []string
	depVers   []uint64
	depsKnown bool

	// hits counts cache servings of this entry (CacheStats observability).
	hits atomic.Int64
}

// NumParams returns the number of `?` placeholders the statement binds.
func (s *Stmt) NumParams() int { return s.nparams }

// IsQuery reports whether the statement is a SELECT (use Query) rather
// than DML/DDL (use Exec).
func (s *Stmt) IsQuery() bool { return s.sel != nil }

// SQL returns the original statement text.
func (s *Stmt) SQL() string { return s.text }

// Columns describes the output of a prepared SELECT (nil otherwise).
func (s *Stmt) Columns() []exec.Column { return s.cols }

// Query executes a prepared SELECT with the given placeholder arguments and
// materializes the whole result. It is a thin wrapper over QueryRows — the
// streaming cursor is the primary execution path; use it directly when the
// result may be large. The statement revalidates itself against the catalog
// version first (a few atomic loads while nothing changed), so a handle
// retained across DDL/ANALYZE re-prepares instead of silently running a
// stale plan.
func (s *Stmt) Query(args ...types.Value) (*Result, error) {
	rows, err := s.QueryRows(args...)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []types.Row
	for {
		row, err := rows.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		out = append(out, row)
	}
	return &Result{Cols: rows.Columns(), Rows: out, Counters: rows.Counters()}, nil
}

// Exec executes a prepared DML or DDL statement with the given placeholder
// arguments, returning the number of affected rows. Like Query, it
// revalidates the statement against the catalog version first.
func (s *Stmt) Exec(args ...types.Value) (int64, error) {
	s, err := s.Revalidate()
	if err != nil {
		return 0, err
	}
	if s.sel != nil {
		return 0, fmt.Errorf("engine: use Query for SELECT statements")
	}
	if len(args) != s.nparams {
		return 0, fmt.Errorf("engine: statement wants %d arguments, got %d", s.nparams, len(args))
	}
	start := time.Now()
	var n int64
	verb := byte(0)
	switch st := s.other.(type) {
	case *ast.InsertStmt:
		verb = 'I'
		n, err = s.db.execInsertWith(st, types.Row(args), s.plan, s.insertRows)
	case *ast.UpdateStmt:
		// The mutation was compiled at Prepare; Revalidate guarantees it
		// matches the current catalog version.
		verb = 'U'
		n, err = s.db.runUpdate(st, s.mut, types.Row(args))
	case *ast.DeleteStmt:
		verb = 'D'
		n, err = s.db.runDelete(st, s.mut, types.Row(args))
	default:
		// DDL never carries placeholders (Prepare rejects it); run as-is.
		n, err = s.db.ExecStmt(s.other)
	}
	s.db.stats.observeStatement(verb, s.text, start, n, exec.Counters{}, err)
	return n, err
}

// Revalidate returns a statement that is fresh against the current catalog
// version and optimizer options: the receiver itself while still valid
// (a few atomic loads — the hot path), or a re-Prepare of its text after
// DDL/ANALYZE/option changes. Query and Exec call it automatically; the
// wire server also calls it to refresh its session statement tables.
//
// A version mismatch alone no longer forces the recompile: if every catalog
// name the plan depends on is at the version recorded at compile time, the
// change was unrelated DDL and the statement is re-stamped fresh. The
// global version is read BEFORE the per-dep checks, so a dependency bumped
// concurrently leaves the stored version behind the catalog's and the
// statement detectably stale on the next call.
func (s *Stmt) Revalidate() (*Stmt, error) {
	if s.optOpts == s.db.OptOptions && s.rwOpts == s.db.RewriteOptions {
		cur := s.db.cat.Version()
		if s.version.Load() == cur {
			return s, nil
		}
		if s.depsKnown && s.depsFresh() {
			s.version.Store(cur)
			return s, nil
		}
	}
	return s.db.Prepare(s.text)
}

// depsFresh reports whether every recorded dependency is still at the
// version observed at compile time.
func (s *Stmt) depsFresh() bool {
	for i, d := range s.deps {
		if s.db.cat.NameVersion(d) != s.depVers[i] {
			return false
		}
	}
	return true
}

// recordDeps snapshots the per-name catalog versions for the given
// dependency names (already upper-cased by the semantic layer).
func (s *Stmt) recordDeps(deps []string) {
	s.deps = deps
	s.depVers = make([]uint64, len(deps))
	for i, d := range deps {
		s.depVers[i] = s.db.cat.NameVersion(d)
	}
	s.depsKnown = true
}

// mergeDep appends a catalog name (upper-cased, deduped) to a dep list.
func mergeDep(deps []string, name string) []string {
	key := strings.ToUpper(name)
	for _, d := range deps {
		if d == key {
			return deps
		}
	}
	return append(deps, key)
}

// Prepare compiles a statement against the current catalog, consulting and
// populating the database's plan cache. Two textually different but
// token-equivalent SQL strings (whitespace, keyword/identifier case) share
// one cache entry. The returned Stmt stays valid across DDL: every
// Query/Exec revalidates it against the catalog version and transparently
// re-prepares when stale.
func (db *Database) Prepare(sql string) (*Stmt, error) {
	norm, err := normalizeSQL(sql)
	if err != nil {
		db.stats.stmtErrors.Inc()
		return nil, err
	}
	if st := db.plans.get(norm, db.cat.Version(), db.OptOptions, db.RewriteOptions); st != nil {
		db.Metrics.CacheHits.Add(1)
		return st, nil
	}
	db.Metrics.CacheMisses.Add(1)
	st, err := db.prepareMiss(sql, norm)
	if err != nil {
		db.stats.stmtErrors.Inc()
	}
	return st, err
}

func (db *Database) prepareMiss(sql, norm string) (*Stmt, error) {
	start := time.Now()
	parsed, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	ver := db.cat.Version()
	st := &Stmt{
		db:      db,
		text:    sql,
		norm:    norm,
		nparams: ast.NumPlaceholders(parsed),
		optOpts: db.OptOptions,
		rwOpts:  db.RewriteOptions,
	}
	st.version.Store(ver)
	switch s := parsed.(type) {
	case *ast.SelectStmt:
		plan, deps, err := db.compileSelectDeps(s)
		if err != nil {
			return nil, err
		}
		st.sel = s
		st.plan = plan
		st.cols = plan.Columns()
		st.cacheable = true
		st.recordDeps(deps)
	case *ast.InsertStmt:
		// INSERT … SELECT precompiles the source query (the expensive
		// pipeline) and plain VALUES precompiles its expressions; only
		// value evaluation and constraint checking remain per execution.
		// Like UPDATE/DELETE, unparameterized VALUES inserts are not
		// admitted to the cache (see below).
		if s.Select != nil {
			plan, deps, err := db.compileSelectDeps(s.Select)
			if err != nil {
				return nil, err
			}
			st.plan = plan
			st.recordDeps(mergeDep(deps, s.Table))
		} else {
			rows, deps, err := db.compileInsertRows(s)
			if err != nil {
				return nil, err
			}
			st.insertRows = rows
			st.recordDeps(mergeDep(deps, s.Table))
		}
		st.other = parsed
		st.cacheable = st.nparams > 0 || s.Select != nil
	case *ast.UpdateStmt:
		// UPDATE/DELETE compile the predicate and assignments once per
		// catalog version — repeated executions skip semantic analysis
		// entirely. Unparameterized DML is still not admitted to the
		// cache: a bulk load of distinct literal statements would flush
		// every hot compiled SELECT out of the LRU.
		mut, err := db.compileMutation(s.Table, s.Alias, s.Where, s.Set)
		if err != nil {
			return nil, err
		}
		st.mut = mut
		st.other = parsed
		st.cacheable = st.nparams > 0
		st.recordDeps(mut.deps)
	case *ast.DeleteStmt:
		mut, err := db.compileMutation(s.Table, s.Alias, s.Where, nil)
		if err != nil {
			return nil, err
		}
		st.mut = mut
		st.other = parsed
		st.cacheable = st.nparams > 0
		st.recordDeps(mut.deps)
	default:
		if st.nparams > 0 {
			return nil, fmt.Errorf("engine: placeholders are only allowed in SELECT, INSERT, UPDATE and DELETE statements")
		}
		// DDL is never cached: it self-invalidates by bumping the catalog
		// version, so caching it would only churn the LRU.
		st.other = parsed
	}
	if db.cat.Version() != ver {
		// DDL overtook the compile: the per-name versions read by
		// recordDeps may postdate the plan, so the dep fast path could
		// wrongly vouch for it. Fall back to whole-version invalidation.
		st.deps, st.depVers, st.depsKnown = nil, nil, false
	}
	if st.cacheable {
		st.cost = int64(time.Since(start))
		db.plans.put(st, db.Options)
	}
	return st, nil
}

// normalizeSQL renders the token stream back to a canonical string: one
// space between tokens, keywords and identifiers upper-cased (the engine
// resolves identifiers case-insensitively), string literals re-quoted.
// Used only as the plan-cache key; the original text is what gets parsed.
func normalizeSQL(sql string) (string, error) {
	toks, err := lexer.Lex(sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(sql))
	for _, t := range toks {
		if t.Kind == lexer.EOF {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch t.Kind {
		case lexer.Ident:
			b.WriteString(strings.ToUpper(t.Text))
		case lexer.String:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
			b.WriteByte('\'')
		default:
			b.WriteString(t.Text)
		}
	}
	return b.String(), nil
}

// --- plan cache ---

// defaultPlanCacheCap bounds the number of cached statements per database.
const defaultPlanCacheCap = 256

// planCache is a concurrent LRU of prepared statements keyed by normalized
// SQL. Entries are validated against the catalog version and the optimizer
// options they were compiled under; a stale entry is evicted on lookup.
// Invalidation is per dependency: DDL and ANALYZE bump both the global
// catalog version and the changed name's own version, and an entry whose
// dependencies are all unchanged survives a global bump (it is merely
// re-stamped), so churn on one table does not flush plans over others.
type planCache struct {
	mu        sync.Mutex
	cap       int
	lru       *list.List // of *Stmt, front = most recently used
	byKey     map[string]*list.Element
	evictions atomic.Int64 // entries evicted to make room
}

// metrics snapshots the cache size and cumulative eviction count.
func (pc *planCache) metrics() (size, evictions int64) {
	pc.mu.Lock()
	size = int64(pc.lru.Len())
	pc.mu.Unlock()
	return size, pc.evictions.Load()
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, lru: list.New(), byKey: make(map[string]*list.Element)}
}

func (pc *planCache) get(key string, version uint64, optOpts opt.Options, rwOpts rewrite.Options) *Stmt {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.byKey[key]
	if !ok {
		return nil
	}
	st := el.Value.(*Stmt)
	if st.optOpts != optOpts || st.rwOpts != rwOpts {
		pc.lru.Remove(el)
		delete(pc.byKey, key)
		return nil
	}
	if st.version.Load() != version {
		// The catalog moved since the plan was stamped. If none of the
		// plan's own dependencies changed, the DDL was unrelated — re-stamp
		// and serve; otherwise evict. `version` was read by the caller
		// before the dep checks, so a dep bumped concurrently leaves the
		// entry stale relative to the catalog and caught on the next get.
		if !st.depsKnown || !st.depsFresh() {
			pc.lru.Remove(el)
			delete(pc.byKey, key)
			return nil
		}
		st.version.Store(version)
	}
	pc.lru.MoveToFront(el)
	st.hits.Add(1)
	return st
}

// stats snapshots the per-entry hit counters in MRU order.
func (pc *planCache) stats() []CacheEntryStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make([]CacheEntryStats, 0, pc.lru.Len())
	for el := pc.lru.Front(); el != nil; el = el.Next() {
		st := el.Value.(*Stmt)
		out = append(out, CacheEntryStats{SQL: st.norm, Hits: st.hits.Load(), CostNs: st.cost})
	}
	return out
}

func (pc *planCache) put(st *Stmt, opts Options) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.cap <= 0 {
		return
	}
	if el, ok := pc.byKey[st.norm]; ok {
		el.Value = st
		pc.lru.MoveToFront(el)
		return
	}
	pc.byKey[st.norm] = pc.lru.PushFront(st)
	for pc.lru.Len() > pc.cap {
		victim := pc.lru.Back()
		if opts.WeightedEviction {
			victim = pc.weightedVictim(opts.EvictionWindow)
		}
		pc.lru.Remove(victim)
		delete(pc.byKey, victim.Value.(*Stmt).norm)
		pc.evictions.Add(1)
	}
}

// weightedVictim picks the eviction victim among the window coldest
// entries: the one whose compile cost × servings is smallest. Cheap
// statements that never hit again go first; a plan that took long to
// compile — or that the cache serves constantly — survives even from the
// LRU tail. Recency stays in the policy through the window bound, and the
// front (MRU) entry is never a candidate — it is the statement just
// inserted, which must get a chance to accumulate hits before competing.
func (pc *planCache) weightedVictim(window int) *list.Element {
	if window <= 0 {
		window = defaultEvictionWindow
	}
	front := pc.lru.Front()
	victim := pc.lru.Back()
	best := victim.Value.(*Stmt).weight()
	el := victim.Prev()
	for i := 1; i < window && el != nil && el != front; i++ {
		if w := el.Value.(*Stmt).weight(); w < best {
			victim, best = el, w
		}
		el = el.Prev()
	}
	return victim
}

// weight is the retention score of a cached statement: compile cost scaled
// by how many executions the entry has served (+1 so a never-hit entry
// still ranks by its cost).
func (s *Stmt) weight() int64 {
	cost := s.cost
	if cost <= 0 {
		cost = 1
	}
	return cost * (s.hits.Load() + 1)
}

func (pc *planCache) reset(capacity int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.cap = capacity
	pc.lru.Init()
	pc.byKey = make(map[string]*list.Element)
}

func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}

// SetPlanCacheCapacity resizes the plan cache, dropping every cached plan.
// Capacity 0 disables caching (every Query/Exec/Prepare recompiles) — the
// bench harness uses that as the per-call baseline.
func (db *Database) SetPlanCacheCapacity(n int) { db.plans.reset(n) }

// PlanCacheLen reports the number of cached statements.
func (db *Database) PlanCacheLen() int { return db.plans.len() }

// CacheEntryStats describes one cached plan for observability: the
// normalized statement text, how many executions it has served, and what
// it cost to compile. Hits and CostNs are exactly the inputs of the
// weighted eviction policy (Options.WeightedEviction).
type CacheEntryStats struct {
	SQL    string
	Hits   int64
	CostNs int64
}

// CacheStats snapshots the plan cache's per-entry hit counters, most
// recently used first. The xnfsql shell surfaces it through \cache.
func (db *Database) CacheStats() []CacheEntryStats { return db.plans.stats() }

// --- compiled CO view cache ---

// coEntry is one cached CO view compilation, together with the lazily
// compiled per-output physical plan templates (the CO analog of the SQL
// plan cache: Execute used to re-run opt per call; now it clones the
// cached templates via exec.ClonePlan).
type coEntry struct {
	compiled *core.Compiled
	version  uint64
	rwOpts   rewrite.Options

	plans    []exec.Plan
	planOpts opt.Options
}

// CompileCOView returns the compiled form of a stored CO view, reusing the
// cached compilation while the catalog version is unchanged. core.Compiled
// is read-only after compilation (Execute builds fresh plans per run), so
// one compilation serves concurrent QueryCO/ExtractCOParallel callers.
func (db *Database) CompileCOView(name string) (*core.Compiled, error) {
	key := strings.ToUpper(name)
	ver := db.cat.Version()
	db.coMu.Lock()
	if e, ok := db.coViews[key]; ok && e.version == ver && e.rwOpts == db.RewriteOptions {
		db.coMu.Unlock()
		db.Metrics.COCacheHits.Add(1)
		return e.compiled, nil
	}
	db.coMu.Unlock()
	db.Metrics.COCompiles.Add(1)
	compiled, err := core.CompileView(db.cat, name, db.RewriteOptions)
	if err != nil {
		return nil, err
	}
	db.coMu.Lock()
	// Dropped or superseded views leave stale entries behind; sweep them
	// on insert so create/query/drop churn cannot grow the map unboundedly.
	// Both the sweep and the admission use the version re-read under the
	// lock: entries fresher than this compilation must survive, and a
	// compilation overtaken by DDL mid-flight is not admitted at all.
	cur := db.cat.Version()
	for k, e := range db.coViews {
		if e.version != cur {
			delete(db.coViews, k)
		}
	}
	if ver == cur {
		db.coViews[key] = &coEntry{compiled: compiled, version: ver, rwOpts: db.RewriteOptions}
	}
	db.coMu.Unlock()
	return compiled, nil
}

// ExtractCOView extracts a stored CO view through cached per-output plan
// templates: the first extraction per catalog version (and optimizer
// options) runs opt once per output, later ones clone the templates and go
// straight to execution — completing the compile-once story for the CO
// path (QueryCO, ExtractCOParallel and the wire server all route here).
// Recursive COs run the fixpoint executor, which has no reusable plans.
func (db *Database) ExtractCOView(name string, parallel bool) (*core.COResult, error) {
	compiled, err := db.CompileCOView(name)
	if err != nil {
		return nil, err
	}
	if compiled.Recursive {
		return compiled.Execute(db.store, db.OptOptions)
	}
	plans, err := db.coPlanTemplates(name, compiled)
	if err != nil {
		return nil, err
	}
	return compiled.ExecuteTemplates(db.store, plans, parallel)
}

// coPlanTemplates returns the cached plan templates for a compiled CO
// view, compiling them on first use. compiled must be the entry's own
// compilation (identity-checked), so templates never mix catalog versions.
func (db *Database) coPlanTemplates(name string, compiled *core.Compiled) ([]exec.Plan, error) {
	key := strings.ToUpper(name)
	// One snapshot serves the cache check, the compile and the store, so
	// plans are never filed under options they were not compiled with.
	opts := db.OptOptions
	db.coMu.Lock()
	if e, ok := db.coViews[key]; ok && e.compiled == compiled && e.plans != nil && e.planOpts == opts {
		plans := e.plans
		db.coMu.Unlock()
		db.Metrics.COPlanCacheHits.Add(1)
		return plans, nil
	}
	db.coMu.Unlock()
	db.Metrics.COPlanCompiles.Add(1)
	plans, err := compiled.PlanTemplates(db.store, opts)
	if err != nil {
		return nil, err
	}
	db.coMu.Lock()
	if e, ok := db.coViews[key]; ok && e.compiled == compiled {
		e.plans = plans
		e.planOpts = opts
	}
	db.coMu.Unlock()
	return plans, nil
}
