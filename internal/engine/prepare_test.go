package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xnf/internal/types"
)

func TestPlaceholderQuery(t *testing.T) {
	db := orgDB(t)
	stmt, err := db.Prepare("SELECT ename FROM EMP WHERE edno = ? AND sal > ?")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", stmt.NumParams())
	}
	res, err := stmt.Query(types.NewInt(1), types.NewFloat(50))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		got[i] = r.String()
	}
	sortedEqual(t, got, []string{"e1", "e2"})

	// Same statement, different binding — no recompile, different result.
	before := db.Metrics.Compiles.Load()
	res, err = stmt.Query(types.NewInt(1), types.NewFloat(150))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].String() != "e2" {
		t.Fatalf("rebinding: got %v", res.Rows)
	}
	if db.Metrics.Compiles.Load() != before {
		t.Fatalf("rebinding recompiled: %d -> %d", before, db.Metrics.Compiles.Load())
	}
}

func TestPlaceholderInSubquery(t *testing.T) {
	db := orgDB(t)
	// The placeholder sits inside a correlated subquery: it must be routed
	// through the subplan's parameter frame, not read from the top frame.
	res, err := db.Query(
		"SELECT dname FROM DEPT d WHERE EXISTS (SELECT 1 FROM EMP e WHERE e.edno = d.dno AND e.sal > ?)",
		types.NewFloat(250))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		got[i] = r.String()
	}
	sortedEqual(t, got, []string{"apps", "os"})

	// And inside an IN subquery, which keeps the hashed subplan strategy
	// (see TestPlaceholderSubqueryKeepsHashedStrategy).
	res, err = db.Query(
		"SELECT ename FROM EMP WHERE edno IN (SELECT dno FROM DEPT WHERE loc = ?)",
		types.NewString("ARC"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("IN subquery with placeholder: got %d rows, want 3", len(res.Rows))
	}
}

func TestPlaceholderDML(t *testing.T) {
	db := orgDB(t)
	ins, err := db.Prepare("INSERT INTO SKILLS VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 13; i++ {
		if _, err := ins.Exec(types.NewInt(int64(i)), types.NewString(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := queryStrings(t, db, "SELECT sname FROM SKILLS WHERE sno >= 10"); len(got) != 3 {
		t.Fatalf("prepared INSERT: got %v", got)
	}
	if _, err := db.Exec("UPDATE SKILLS SET sname = ? WHERE sno = ?", types.NewString("zzz"), types.NewInt(10)); err != nil {
		t.Fatal(err)
	}
	sortedEqual(t, queryStrings(t, db, "SELECT sname FROM SKILLS WHERE sno = 10"), []string{"zzz"})
	if n, err := db.Exec("DELETE FROM SKILLS WHERE sno >= ?", types.NewInt(10)); err != nil || n != 3 {
		t.Fatalf("prepared DELETE: n=%d err=%v", n, err)
	}
}

func TestArgCountMismatch(t *testing.T) {
	db := orgDB(t)
	stmt, err := db.Prepare("SELECT * FROM EMP WHERE eno = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(); err == nil {
		t.Fatal("missing argument accepted")
	}
	if _, err := stmt.Query(types.NewInt(1), types.NewInt(2)); err == nil {
		t.Fatal("extra argument accepted")
	}
}

func TestPlaceholderRejectedInViewsAndDDL(t *testing.T) {
	db := orgDB(t)
	if _, err := db.Exec("CREATE VIEW v1 AS SELECT * FROM EMP WHERE sal > ?"); err == nil {
		t.Fatal("placeholder in view definition accepted")
	}
}

func TestPlanCacheSkipsCompile(t *testing.T) {
	db := orgDB(t)
	const q = "SELECT ename FROM EMP WHERE sal > 250"
	first := queryStrings(t, db, q)
	compiles := db.Metrics.Compiles.Load()
	for i := 0; i < 5; i++ {
		sortedEqual(t, queryStrings(t, db, q), first)
	}
	if got := db.Metrics.Compiles.Load(); got != compiles {
		t.Fatalf("cached statement recompiled: %d -> %d", compiles, got)
	}
	// Token-equivalent text (case, whitespace) shares the entry.
	sortedEqual(t, queryStrings(t, db, "select  ename  from emp\nwhere SAL > 250"), first)
	if got := db.Metrics.Compiles.Load(); got != compiles {
		t.Fatalf("normalized variant recompiled: %d -> %d", compiles, got)
	}
	if hits := db.Metrics.CacheHits.Load(); hits < 6 {
		t.Fatalf("expected ≥6 cache hits, got %d", hits)
	}
}

func TestDDLAndAnalyzeInvalidatePlans(t *testing.T) {
	db := orgDB(t)
	const q = "SELECT ename FROM EMP WHERE edno = 2"
	queryStrings(t, db, q)
	base := db.Metrics.Compiles.Load()

	// DDL must invalidate: after the index exists the plan should change
	// (and at minimum be recompiled).
	if _, err := db.Exec("CREATE INDEX emp_edno ON EMP (edno)"); err != nil {
		t.Fatal(err)
	}
	queryStrings(t, db, q)
	afterIdx := db.Metrics.Compiles.Load()
	if afterIdx == base {
		t.Fatal("CREATE INDEX did not invalidate the cached plan")
	}
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexLookup") {
		t.Fatalf("expected IndexLookup after CREATE INDEX, got:\n%s", plan)
	}

	// ANALYZE must invalidate (fresh statistics change costing).
	pre := db.Metrics.Compiles.Load()
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	queryStrings(t, db, q)
	if db.Metrics.Compiles.Load() == pre {
		t.Fatal("ANALYZE did not invalidate the cached plan")
	}

	// DROP + re-CREATE with a different shape: the stale plan must not
	// leak the old schema.
	if err := db.ExecScript(`
DROP TABLE SKILLS;
CREATE TABLE SKILLS (sno INT NOT NULL, sname VARCHAR, level INT, PRIMARY KEY (sno));
INSERT INTO SKILLS VALUES (1, 'sql', 9);
`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT * FROM SKILLS")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 3 {
		t.Fatalf("stale plan survived DROP/CREATE: %d columns", len(res.Cols))
	}
}

func TestOptimizerOptionsInvalidatePlans(t *testing.T) {
	db := orgDB(t)
	const q = "SELECT e.ename FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'"
	queryStrings(t, db, q)
	base := db.Metrics.Compiles.Load()
	// Flipping the optimizer options must not serve the old plan.
	db.OptOptions.HashJoin = false
	db.OptOptions.IndexNL = false
	queryStrings(t, db, q)
	if db.Metrics.Compiles.Load() == base {
		t.Fatal("option flip served a stale plan")
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	db := orgDB(t)
	db.SetPlanCacheCapacity(4)
	for i := 0; i < 10; i++ {
		queryStrings(t, db, fmt.Sprintf("SELECT ename FROM EMP WHERE eno = %d", i))
	}
	if n := db.PlanCacheLen(); n != 4 {
		t.Fatalf("cache len = %d, want 4", n)
	}
	// Capacity 0 disables caching entirely.
	db.SetPlanCacheCapacity(0)
	pre := db.Metrics.Compiles.Load()
	queryStrings(t, db, "SELECT ename FROM EMP WHERE eno = 1")
	queryStrings(t, db, "SELECT ename FROM EMP WHERE eno = 1")
	if got := db.Metrics.Compiles.Load(); got != pre+2 {
		t.Fatalf("disabled cache still caching: %d compiles, want %d", got-pre, 2)
	}
}

// TestPlanCacheConcurrency hammers one database's plan cache from many
// goroutines with a mix of prepared queries, ad-hoc queries, DML, DDL and
// ANALYZE. Run with -race; correctness here is "no race, no error, right
// row shape", not specific rows (DDL churn happens mid-flight).
func TestPlanCacheConcurrency(t *testing.T) {
	db := orgDB(t)
	const goroutines = 8
	const iters = 60
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stmt, err := db.Prepare("SELECT ename FROM EMP WHERE edno = ?")
			if err != nil {
				errc <- err
				return
			}
			private := fmt.Sprintf("T_%d", g)
			for i := 0; i < iters; i++ {
				switch i % 6 {
				case 0, 1:
					if _, err := stmt.Query(types.NewInt(int64(i%4 + 1))); err != nil {
						errc <- err
						return
					}
				case 2:
					res, err := db.Query("SELECT ename, sal FROM EMP WHERE sal > ?", types.NewFloat(float64(i)))
					if err != nil {
						errc <- err
						return
					}
					for _, r := range res.Rows {
						if len(r) != 2 {
							errc <- fmt.Errorf("row width %d, want 2", len(r))
							return
						}
					}
				case 3:
					// Private-table DDL churn: bumps the catalog version and
					// invalidates everyone's cached plans mid-flight.
					if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (a INT NOT NULL, PRIMARY KEY (a))", private)); err != nil {
						errc <- err
						return
					}
					if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (?)", private), types.NewInt(int64(i))); err != nil {
						errc <- err
						return
					}
					if _, err := db.Exec(fmt.Sprintf("DROP TABLE %s", private)); err != nil {
						errc <- err
						return
					}
				case 4:
					if err := db.Analyze(); err != nil {
						errc <- err
						return
					}
				case 5:
					if _, err := db.Prepare("SELECT COUNT(*) FROM DEPT WHERE loc = ?"); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestPreparedInsertSelectCompilesOnce(t *testing.T) {
	db := orgDB(t)
	if err := db.ExecScript(`CREATE TABLE EMPCOPY (eno INT NOT NULL, ename VARCHAR, PRIMARY KEY (eno))`); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("INSERT INTO EMPCOPY SELECT eno + ?, ename FROM EMP WHERE edno = 1")
	if err != nil {
		t.Fatal(err)
	}
	base := db.Metrics.Compiles.Load()
	for i := 0; i < 3; i++ {
		if n, err := stmt.Exec(types.NewInt(int64(i * 100))); err != nil || n != 2 {
			t.Fatalf("exec %d: n=%d err=%v", i, n, err)
		}
	}
	if got := db.Metrics.Compiles.Load(); got != base {
		t.Fatalf("prepared INSERT…SELECT recompiled per exec: %d -> %d", base, got)
	}
	if got := queryStrings(t, db, "SELECT COUNT(*) FROM EMPCOPY"); got[0] != "6" {
		t.Fatalf("rows inserted = %v, want 6", got)
	}
}

func TestPlaceholderSubqueryKeepsHashedStrategy(t *testing.T) {
	db := orgDB(t)
	// Plain IN/EXISTS forms are rewritten to joins regardless of
	// placeholders; NOT IN is where the hashed-subplan strategy carries
	// the load, and the prepared form must not degrade to per-row rerun —
	// placeholders are execution constants, not correlation.
	const lit = "SELECT ename FROM EMP WHERE edno NOT IN (SELECT dno FROM DEPT WHERE loc = 'ARC')"
	const ph = "SELECT ename FROM EMP WHERE edno NOT IN (SELECT dno FROM DEPT WHERE loc = ?)"
	litPlan, err := db.Explain(lit)
	if err != nil {
		t.Fatal(err)
	}
	phPlan, err := db.Explain(ph)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(litPlan, "hashed") {
		t.Fatalf("literal form not hashed:\n%s", litPlan)
	}
	if !strings.Contains(phPlan, "hashed") {
		t.Fatalf("placeholder form lost the hashed strategy:\n%s", phPlan)
	}
	// And the bound execution matches the literal form per binding
	// (including three-valued logic: e5's NULL edno never qualifies).
	res, err := db.Query(ph, types.NewString("ARC"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		got[i] = r.String()
	}
	sortedEqual(t, got, []string{"e4"})
	res, err = db.Query(ph, types.NewString("HQ"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("HQ binding rows = %d, want 3", len(res.Rows))
	}
}

func TestUnparameterizedDMLNotCached(t *testing.T) {
	db := orgDB(t)
	db.SetPlanCacheCapacity(4)
	queryStrings(t, db, "SELECT COUNT(*) FROM DEPT") // hot compiled plan
	if db.PlanCacheLen() != 1 {
		t.Fatalf("cache len = %d", db.PlanCacheLen())
	}
	// A bulk load of distinct literal inserts must not flush the LRU.
	for i := 600; i < 650; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO SKILLS VALUES (%d, 's')", i)); err != nil {
			t.Fatal(err)
		}
	}
	if db.PlanCacheLen() != 1 {
		t.Fatalf("literal DML polluted the cache: len = %d", db.PlanCacheLen())
	}
	pre := db.Metrics.Compiles.Load()
	queryStrings(t, db, "SELECT COUNT(*) FROM DEPT")
	if db.Metrics.Compiles.Load() != pre {
		t.Fatal("hot plan was evicted by literal DML")
	}
}

func TestRetainedStmtRevalidatesAfterDDL(t *testing.T) {
	db := orgDB(t)
	if err := db.ExecScript(`
CREATE TABLE RT (a INT NOT NULL, b VARCHAR, PRIMARY KEY (a));
INSERT INTO RT VALUES (1, 'one');
`); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("SELECT a, b FROM RT WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query(types.NewInt(1))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("before DDL: %v, %v", res, err)
	}
	// Recreate the table with a permuted column order: a retained handle
	// must re-prepare, not evaluate the old ordinals (which would silently
	// return no rows).
	if err := db.ExecScript(`
DROP TABLE RT;
CREATE TABLE RT (b VARCHAR, a INT NOT NULL, extra INT, PRIMARY KEY (a));
INSERT INTO RT VALUES ('one', 1, 99);
`); err != nil {
		t.Fatal(err)
	}
	res, err = stmt.Query(types.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].String() != "1|one" {
		t.Fatalf("retained handle ran a stale plan: %v", res.Rows)
	}
	// Dropping the table gives a clean error, not a stale execution.
	if _, err := db.Exec("DROP TABLE RT"); err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(types.NewInt(1)); err == nil {
		t.Fatal("query against dropped table should fail")
	}
}
