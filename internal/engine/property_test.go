package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"xnf/internal/opt"
	"xnf/internal/rewrite"
	"xnf/internal/types"
)

// randomDB builds a small random two-table database (with NULLs and
// duplicate join keys) for equivalence testing.
func randomDB(t *testing.T, seed int64) *Database {
	t.Helper()
	db := Open()
	if err := db.ExecScript(`
CREATE TABLE R (a INT, b INT, c VARCHAR);
CREATE TABLE S (x INT, y INT);
`); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	rt, _ := db.store.Table("R")
	st, _ := db.store.Table("S")
	letters := []string{"p", "q", "r"}
	maybeNullInt := func() types.Value {
		if r.Intn(5) == 0 {
			return types.Null
		}
		return types.NewInt(int64(r.Intn(6)))
	}
	for i := 0; i < 10+r.Intn(20); i++ {
		rt.Insert(types.Row{maybeNullInt(), maybeNullInt(), types.NewString(letters[r.Intn(3)])})
	}
	for i := 0; i < 5+r.Intn(15); i++ {
		st.Insert(types.Row{maybeNullInt(), maybeNullInt()})
	}
	db.Analyze()
	return db
}

// queryCorpus is a set of shapes covering joins, subqueries (EXISTS / NOT
// EXISTS / IN / NOT IN / scalar), aggregation, union, distinct and NULL
// traps.
var queryCorpus = []string{
	"SELECT a, b FROM R WHERE a > 2",
	"SELECT r.a, s.y FROM R r, S s WHERE r.a = s.x",
	"SELECT a FROM R WHERE EXISTS (SELECT 1 FROM S WHERE S.x = R.a)",
	"SELECT a FROM R WHERE NOT EXISTS (SELECT 1 FROM S WHERE S.x = R.a AND S.y > R.b)",
	"SELECT a FROM R WHERE a IN (SELECT x FROM S)",
	"SELECT a FROM R WHERE a NOT IN (SELECT x FROM S)",
	"SELECT a FROM R WHERE b = (SELECT MAX(y) FROM S WHERE S.x = R.a)",
	"SELECT c, COUNT(*), SUM(a) FROM R GROUP BY c",
	"SELECT DISTINCT a FROM R UNION SELECT x FROM S",
	"SELECT a FROM R WHERE a BETWEEN 1 AND 4 AND c LIKE 'p%'",
	"SELECT a FROM R WHERE a IN (1, 3, 5) OR b IS NULL",
	"SELECT r1.a FROM R r1, R r2 WHERE r1.a = r2.b AND r1.c = 'p'",
	"SELECT c FROM R GROUP BY c HAVING COUNT(*) >= 2",
	"SELECT a, CASE WHEN b > 2 THEN 'hi' ELSE 'lo' END FROM R",
}

// TestRewritePreservesSemanticsRandom runs the corpus over random
// databases comparing the fully optimized engine against the naive one;
// the result multisets must agree exactly.
func TestRewritePreservesSemanticsRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		dbFull := randomDB(t, seed)
		dbNaive := randomDB(t, seed)
		dbNaive.OptOptions = opt.NaiveOptions()
		dbNaive.RewriteOptions = rewrite.NoRewrite()
		for _, q := range queryCorpus {
			full, err := dbFull.Query(q)
			if err != nil {
				t.Fatalf("seed %d full %q: %v", seed, q, err)
			}
			naive, err := dbNaive.Query(q)
			if err != nil {
				t.Fatalf("seed %d naive %q: %v", seed, q, err)
			}
			a := rowStrings(full.Rows)
			b := rowStrings(naive.Rows)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Errorf("seed %d: %q differs\n full:  %v\n naive: %v", seed, q, a, b)
			}
		}
	}
}

func rowStrings(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestDMLThenQueryConsistency interleaves random DML with queries under
// both optimizer modes.
func TestDMLThenQueryConsistency(t *testing.T) {
	dbFull := randomDB(t, 99)
	dbNaive := randomDB(t, 99)
	dbNaive.OptOptions = opt.NaiveOptions()
	dbNaive.RewriteOptions = rewrite.NoRewrite()
	ops := []string{
		"UPDATE R SET b = b + 1 WHERE a = 2",
		"DELETE FROM S WHERE y IS NULL",
		"INSERT INTO S VALUES (2, 7), (3, 8)",
		"UPDATE R SET c = 'z' WHERE EXISTS (SELECT 1 FROM S WHERE S.x = R.a)",
	}
	for _, op := range ops {
		n1, err := dbFull.Exec(op)
		if err != nil {
			t.Fatalf("full %q: %v", op, err)
		}
		n2, err := dbNaive.Exec(op)
		if err != nil {
			t.Fatalf("naive %q: %v", op, err)
		}
		if n1 != n2 {
			t.Fatalf("%q affected %d vs %d rows", op, n1, n2)
		}
		for _, q := range queryCorpus[:6] {
			full, err := dbFull.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := dbNaive.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(rowStrings(full.Rows)) != fmt.Sprint(rowStrings(naive.Rows)) {
				t.Errorf("after %q, query %q differs", op, q)
			}
		}
	}
}
