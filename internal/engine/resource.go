package engine

import (
	"context"

	"xnf/internal/resource"
)

// memKey carries a session-level accountant through a statement context.
type memKey struct{}

// WithMem returns a context whose statement executions charge their
// memory reservations to mem (typically a per-session child of the
// database's process accountant). Without it, statements charge the
// process accountant directly.
func WithMem(ctx context.Context, mem *resource.Accountant) context.Context {
	if mem == nil {
		return ctx
	}
	return context.WithValue(ctx, memKey{}, mem)
}

func memFromContext(ctx context.Context) *resource.Accountant {
	if ctx == nil {
		return nil
	}
	mem, _ := ctx.Value(memKey{}).(*resource.Accountant)
	return mem
}

// MemRoot returns the process-level memory accountant. The wire server
// derives one child per session from it; SetMemBudget arms the budget.
func (db *Database) MemRoot() *resource.Accountant { return db.mem }

// SetMemBudget caps the bytes the engine's governed allocators (hash
// joins, sorts, distinct/aggregate tables, cursor blocks) may hold at
// once, process-wide. 0 disables enforcement; accounting always runs.
// Statements that would exceed the budget fail with an error wrapping
// resource.ErrResourceExhausted after degrading where possible.
func (db *Database) SetMemBudget(n int64) { db.mem.SetLimit(n) }

// MemBudget reports the process budget (0 = unlimited).
func (db *Database) MemBudget() int64 { return db.mem.Limit() }

// MemUsed reports the bytes currently reserved process-wide.
func (db *Database) MemUsed() int64 { return db.mem.Used() }
