package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"xnf/internal/resource"
	"xnf/internal/types"
)

// TestRevalidateDepInvalidation exercises per-dependency plan invalidation:
// a prepared statement survives DDL and ANALYZE on tables it never touches
// (re-stamped in place, no recompile), and is recompiled the moment one of
// its own dependencies changes.
func TestRevalidateDepInvalidation(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE ta (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	mustExec(t, db, "CREATE TABLE tb (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	mustExec(t, db, "INSERT INTO ta VALUES (1, 10)")
	mustExec(t, db, "INSERT INTO tb VALUES (1, 20)")

	st, err := db.Prepare("SELECT v FROM ta WHERE k = ?")
	if err != nil {
		t.Fatal(err)
	}
	if !st.depsKnown || len(st.deps) != 1 || st.deps[0] != "TA" {
		t.Fatalf("deps = %v (known=%v), want [TA]", st.deps, st.depsKnown)
	}

	// Unrelated DDL and ANALYZE bump the global catalog version but not
	// TA's: revalidation must keep the compiled plan.
	mustExec(t, db, "CREATE TABLE tc (k INT NOT NULL, PRIMARY KEY (k))")
	mustExec(t, db, "ANALYZE tb")
	st2, err := st.Revalidate()
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st {
		t.Fatal("DDL/ANALYZE on unrelated tables recompiled the statement")
	}

	// ANALYZE on the dependency itself must force a recompile.
	mustExec(t, db, "ANALYZE ta")
	st3, err := st.Revalidate()
	if err != nil {
		t.Fatal(err)
	}
	if st3 == st {
		t.Fatal("ANALYZE on a dependency did not recompile the statement")
	}
	res, err := st3.Query(types.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 10 {
		t.Fatalf("recompiled statement returned %v, want [[10]]", res.Rows)
	}
}

// TestRevalidateViewDeps checks that a statement over a view depends on the
// view AND its underlying tables, so ANALYZE on the base table invalidates
// plans compiled through the view.
func TestRevalidateViewDeps(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE base (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	mustExec(t, db, "INSERT INTO base VALUES (1, 7)")
	mustExec(t, db, "CREATE VIEW vw AS SELECT k, v FROM base")

	st, err := db.Prepare("SELECT v FROM vw WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	has := func(name string) bool {
		for _, d := range st.deps {
			if d == name {
				return true
			}
		}
		return false
	}
	if !st.depsKnown || !has("VW") || !has("BASE") {
		t.Fatalf("deps = %v, want both VW and BASE", st.deps)
	}
	mustExec(t, db, "ANALYZE base")
	st2, err := st.Revalidate()
	if err != nil {
		t.Fatal(err)
	}
	if st2 == st {
		t.Fatal("ANALYZE on the view's base table did not invalidate the plan")
	}
}

// TestPlanCacheDepInvalidation covers the implicit cache behind Query/Exec:
// unrelated catalog churn must keep serving the cached plan, dependency
// churn must evict it.
func TestPlanCacheDepInvalidation(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE ta (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	mustExec(t, db, "CREATE TABLE tb (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	mustExec(t, db, "INSERT INTO ta VALUES (1, 10)")

	const q = "SELECT v FROM ta WHERE k = 1"
	norm, err := normalizeSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	hits := func() int64 {
		for _, e := range db.CacheStats() {
			if e.SQL == norm {
				return e.Hits
			}
		}
		return -1
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	before := hits()
	if before < 1 {
		t.Fatalf("cache hits = %d after a repeat, want >= 1", before)
	}

	// Churn on TB: the TA plan must be served from cache, not recompiled.
	mustExec(t, db, "ANALYZE tb")
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if after := hits(); after != before+1 {
		t.Fatalf("hits went %d -> %d across unrelated ANALYZE, want a cache hit", before, after)
	}

	// Churn on TA: the entry must be evicted and recompiled fresh.
	mustExec(t, db, "ANALYZE ta")
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if after := hits(); after >= before+2 {
		t.Fatalf("hits = %d after dependency ANALYZE, want a recompile (fresh entry)", after)
	}
}

// TestStatementTimeoutOption proves Options.StatementTimeout cuts off a
// long statement with a deadline error the wire layer maps to CodeTimeout.
func TestStatementTimeoutOption(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE big (k INT NOT NULL, PRIMARY KEY (k))")
	for i := int64(0); i < 100; i++ {
		mustExec(t, db, "INSERT INTO big VALUES (?)", types.NewInt(i))
	}
	db.Options.StatementTimeout = time.Millisecond
	start := time.Now()
	_, err := db.Query("SELECT A.k FROM big A, big B, big C ORDER BY A.k DESC")
	if err == nil {
		t.Fatal("a 1ms timeout let a million-row cross join finish")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout surfaced as %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("statement ran %v past its 1ms deadline", d)
	}
}

// TestMemBudgetTypedError: when the process budget cannot hold a statement
// even in degraded mode, the failure is the typed retryable kind.
func TestMemBudgetTypedError(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE big (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	for i := int64(0); i < 2000; i++ {
		mustExec(t, db, "INSERT INTO big VALUES (?, ?)", types.NewInt(i), types.NewInt(i%17))
	}
	db.SetMemBudget(2048)
	defer db.SetMemBudget(0)
	_, err := db.Query("SELECT k, v FROM big ORDER BY v, k DESC")
	if err == nil {
		t.Fatal("a 2KB budget admitted a 2000-row sort")
	}
	if !errors.Is(err, resource.ErrResourceExhausted) {
		t.Fatalf("budget failure surfaced as %v, want ErrResourceExhausted", err)
	}
	if n := db.MemUsed(); n != 0 {
		t.Fatalf("reserved bytes after failed statement = %d, want 0", n)
	}
}
