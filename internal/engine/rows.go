package engine

import (
	"context"
	"fmt"
	"time"

	"xnf/internal/exec"
	"xnf/internal/types"
)

// Rows is a streaming query result: a pull-based cursor over an executing
// plan. Unlike Result, which materializes every row up front, a Rows drives
// the plan lazily — each Next call pulls one row, and vectorized pipeline
// fragments underneath produce their batches incrementally — so the peak
// memory of a SELECT is one batch, not the whole result set.
//
// Contract:
//
//   - Next returns (row, nil) for each row and (nil, nil) at the end of the
//     stream. After an error, Next returns (nil, err) forever.
//   - Err reports the first error seen by Next (nil after a clean end of
//     stream), so drain loops can test rows == nil and check Err once.
//   - Close must be called when the caller abandons the stream early; it
//     releases plan resources (pooled batches and vectors return to their
//     pools) and is idempotent. Draining to end of stream releases the same
//     resources automatically, but calling Close anyway is always safe —
//     `defer rows.Close()` is the intended shape.
//   - Counters snapshots the execution counters accumulated so far; after
//     the stream is drained it covers the whole execution.
//   - A Rows is bound to one execution and is not safe for concurrent use.
type Rows struct {
	cols   []exec.Column
	plan   exec.Plan
	ectx   *exec.Ctx
	cctx   context.Context
	cancel context.CancelFunc // non-nil when a statement timeout armed the context
	open   bool
	err    error

	// Observability: the statement is observed exactly once, when the
	// stream finishes (drained, failed, or abandoned via Close).
	db       *Database
	sql      string
	start    time.Time
	returned int64
	observed bool
}

// Columns describes the output row.
func (r *Rows) Columns() []exec.Column { return r.cols }

// Next returns the next row, or (nil, nil) at the end of the stream. When
// the Rows was opened with QueryRowsContext, a canceled context surfaces
// here as its error and the plan is closed immediately — mid-stream
// cancellation returns pooled resources right away.
func (r *Rows) Next() (types.Row, error) {
	if r.err != nil {
		return nil, r.err
	}
	if !r.open {
		return nil, nil
	}
	if r.cctx != nil {
		if err := r.cctx.Err(); err != nil {
			return nil, r.fail(err)
		}
	}
	row, err := r.plan.Next(r.ectx)
	if err != nil {
		return nil, r.fail(err)
	}
	if row == nil {
		// End of stream: release plan resources eagerly; Err stays nil.
		r.closePlan()
		return nil, nil
	}
	r.returned++
	return row, nil
}

// Err returns the first error encountered by Next (nil after a clean end of
// stream). A failed Close also surfaces here.
func (r *Rows) Err() error { return r.err }

// Counters snapshots the execution counters accumulated so far.
func (r *Rows) Counters() exec.Counters { return r.ectx.Counters }

// Close releases the plan's resources. It is idempotent and safe to call at
// any point of the stream; after Close, Next returns (nil, Err()).
func (r *Rows) Close() error {
	if !r.open {
		return nil
	}
	r.open = false
	err := r.plan.Close(r.ectx)
	if err != nil && r.err == nil {
		r.err = err
	}
	r.observe()
	return err
}

// fail records the first stream error and closes the plan.
func (r *Rows) fail(err error) error {
	r.err = err
	r.closePlan()
	return err
}

func (r *Rows) closePlan() {
	if r.open {
		r.open = false
		if cerr := r.plan.Close(r.ectx); cerr != nil && r.err == nil {
			r.err = cerr
		}
		r.observe()
	}
}

// observe records the finished statement in the database's registry and
// returns its memory reservations — once per Rows, on whichever close
// path ran first.
func (r *Rows) observe() {
	if r.observed {
		return
	}
	r.observed = true
	if r.cancel != nil {
		r.cancel()
	}
	// Closing the statement accountant releases anything an operator
	// still held (a failed Open, an abandoned stream), so the session
	// and process accountants read zero after drain.
	r.ectx.Mem.Close()
	if r.db != nil {
		r.db.stats.observeStatement('S', r.sql, r.start, r.returned, r.ectx.Counters, r.err)
	}
}

// QueryRows compiles (or fetches from the plan cache) a SELECT and returns
// a streaming cursor over its result. Args bind `?` placeholders. The
// caller must drain or Close the returned Rows.
func (db *Database) QueryRows(sql string, args ...types.Value) (*Rows, error) {
	stmt, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.QueryRows(args...)
}

// QueryRowsContext is QueryRows with cancellation: Next checks the context
// between rows and aborts the stream (closing the plan and returning pooled
// resources) once the context is done.
func (db *Database) QueryRowsContext(ctx context.Context, sql string, args ...types.Value) (*Rows, error) {
	stmt, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.QueryRowsContext(ctx, args...)
}

// QueryRows executes a prepared SELECT and returns a streaming cursor over
// its result. Like Query, the statement revalidates itself against the
// catalog version first. The caller must drain or Close the returned Rows.
func (s *Stmt) QueryRows(args ...types.Value) (*Rows, error) {
	return s.QueryRowsContext(context.Background(), args...)
}

// QueryRowsContext is QueryRows with cancellation (see
// Database.QueryRowsContext).
func (s *Stmt) QueryRowsContext(ctx context.Context, args ...types.Value) (*Rows, error) {
	start := time.Now()
	s, err := s.Revalidate()
	if err != nil {
		return nil, err
	}
	if s.sel == nil {
		return nil, fmt.Errorf("engine: QueryRows requires a SELECT statement")
	}
	if len(args) != s.nparams {
		return nil, fmt.Errorf("engine: statement wants %d arguments, got %d", s.nparams, len(args))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Default statement timeout: applied only when the caller's context
	// has no deadline of its own, so a per-session SET override (which
	// arrives as a context deadline) fully replaces it.
	var cancel context.CancelFunc
	if d := s.db.Options.StatementTimeout; d > 0 {
		if _, has := ctx.Deadline(); !has {
			ctx, cancel = context.WithTimeout(ctx, d)
		}
	}
	// The statement's reservations charge a session accountant when the
	// context carries one, the process accountant otherwise.
	parent := memFromContext(ctx)
	if parent == nil {
		parent = s.db.mem
	}
	plan := exec.ClonePlan(s.plan)
	ectx := exec.NewCtx(s.db.store)
	ectx.Mem = parent.Child("statement", 0)
	ectx.Interrupt = ctx.Err
	r := &Rows{
		cols: s.cols, plan: plan, ectx: ectx, cctx: ctx, cancel: cancel, open: true,
		db: s.db, sql: s.text, start: start,
	}
	if err := plan.Open(ectx, types.Row(args)); err != nil {
		r.err = err
		r.observe()
		return nil, err
	}
	return r, nil
}
