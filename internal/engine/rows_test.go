package engine

import (
	"context"
	"strings"
	"sync"
	"testing"

	"xnf/internal/types"
)

// drainRows pulls a Rows to the end, returning the rendered rows.
func drainRows(t *testing.T, rows *Rows) []string {
	t.Helper()
	var out []string
	for {
		row, err := rows.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if row == nil {
			return out
		}
		out = append(out, row.String())
	}
}

// TestQueryRowsEquivalence drives the full row-vs-batch corpus through the
// streaming cursor and diffs it row for row against the materialized Query
// path. Both run the same compiled plan, so even hash orders must agree.
func TestQueryRowsEquivalence(t *testing.T) {
	db := orgDB(t)
	for _, q := range equivCorpus {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("Query(%q): %v", q, err)
		}
		rows, err := db.QueryRows(q)
		if err != nil {
			t.Fatalf("QueryRows(%q): %v", q, err)
		}
		got := drainRows(t, rows)
		if err := rows.Err(); err != nil {
			t.Fatalf("%q: Err after drain: %v", q, err)
		}
		if len(got) != len(res.Rows) {
			t.Errorf("%q: QueryRows returned %d rows, Query %d", q, len(got), len(res.Rows))
			continue
		}
		for i, r := range res.Rows {
			if got[i] != r.String() {
				t.Errorf("%q row %d: QueryRows %s, Query %s", q, i, got[i], r.String())
				break
			}
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("%q: Close after drain: %v", q, err)
		}
	}
}

// TestQueryRowsContract pins the Rows API contract: Next after end of
// stream and after Close keeps returning (nil, nil), Err stays nil on a
// clean stream, Close is idempotent, and non-SELECT statements are
// rejected up front.
func TestQueryRowsContract(t *testing.T) {
	db := orgDB(t)
	rows, err := db.QueryRows("SELECT eno FROM EMP WHERE eno <= ?", types.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rows.Columns()); got != 1 {
		t.Fatalf("Columns() = %d, want 1", got)
	}
	n := len(drainRows(t, rows))
	if n != 2 {
		t.Fatalf("drained %d rows, want 2", n)
	}
	// End of stream is sticky and clean.
	for i := 0; i < 3; i++ {
		row, err := rows.Next()
		if row != nil || err != nil {
			t.Fatalf("Next after EOF = (%v, %v)", row, err)
		}
	}
	if rows.Err() != nil {
		t.Fatalf("Err after clean drain: %v", rows.Err())
	}
	if rows.Counters().RowsScanned == 0 {
		t.Fatal("Counters() empty after drain")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}

	// Close mid-stream, then Next returns (nil, nil).
	rows, err = db.QueryRows("SELECT eno FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if row, err := rows.Next(); row != nil || err != nil {
		t.Fatalf("Next after Close = (%v, %v)", row, err)
	}

	if _, err := db.QueryRows("INSERT INTO DEPT VALUES (9, 'x', 'y')"); err == nil {
		t.Fatal("QueryRows on DML should fail")
	}
	if _, err := db.QueryRows("SELECT eno FROM EMP WHERE eno = ?"); err == nil {
		t.Fatal("argument-count mismatch should fail")
	}
}

// TestQueryRowsLazy asserts that the cursor drives the plan incrementally:
// after pulling a handful of rows of a large scan, only a small prefix of
// the table has been scanned — the property that bounds server memory when
// the cursor is exposed over the wire.
func TestQueryRowsLazy(t *testing.T) {
	db := Open()
	if err := db.ExecScript("CREATE TABLE BIG (a INT NOT NULL, b INT, PRIMARY KEY (a))"); err != nil {
		t.Fatal(err)
	}
	td, err := db.Store().Table("BIG")
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	for i := 0; i < n; i++ {
		if _, err := td.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.QueryRows("SELECT a, b FROM BIG")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for i := 0; i < 10; i++ {
		if _, err := rows.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if scanned := rows.Counters().RowsScanned; scanned > n/4 {
		t.Fatalf("after 10 rows the plan already scanned %d of %d rows — not lazy", scanned, n)
	}
}

// TestQueryRowsCancellation cancels a context mid-stream: Next must surface
// the context error, close the plan (returning pooled batches), and stay in
// the error state.
func TestQueryRowsCancellation(t *testing.T) {
	db := orgDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryRowsContext(ctx, "SELECT eno, ename FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := rows.Next(); err != context.Canceled {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	if rows.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
	if _, err := rows.Next(); err != context.Canceled {
		t.Fatal("error must be sticky")
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close after cancel: %v", err)
	}

	// A context canceled before the query starts fails fast.
	if _, err := db.QueryRowsContext(ctx, "SELECT eno FROM EMP"); err != context.Canceled {
		t.Fatalf("QueryRowsContext on canceled ctx = %v", err)
	}
}

// TestQueryRowsConcurrentCancelRace hammers the cursor from many goroutines
// — partial drains, mid-stream cancellations, full drains — under -race,
// verifying that pooled batch storage returns cleanly and executions never
// share state.
func TestQueryRowsConcurrentCancelRace(t *testing.T) {
	db := typedDB(t, 20_000)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("SELECT v, g, f FROM TT WHERE v >= ?")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				rows, err := stmt.QueryRowsContext(ctx, types.NewInt(int64(i*100)))
				if err != nil {
					cancel()
					errc <- err
					return
				}
				stop := (g + i) % 3 // 0: cancel early, 1: close early, 2: drain
				for k := 0; ; k++ {
					row, err := rows.Next()
					if err != nil || row == nil {
						break
					}
					if stop == 0 && k == 5 {
						cancel()
					}
					if stop == 1 && k == 9 {
						rows.Close()
						break
					}
				}
				rows.Close()
				cancel()
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestQueryRowsDMLBetweenPulls interleaves DML with an open cursor: the
// stream keeps iterating the snapshot it opened on, and a new cursor sees
// the new data.
func TestQueryRowsDMLBetweenPulls(t *testing.T) {
	db := orgDB(t)
	before, err := db.Query("SELECT COUNT(*) FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	want := before.Rows[0][0].I

	rows, err := db.QueryRows("SELECT eno FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM EMP WHERE eno >= 0"); err != nil {
		t.Fatal(err)
	}
	got := int64(1 + len(drainRows(t, rows)))
	if got != want {
		t.Fatalf("open cursor saw %d rows after concurrent DELETE, want the %d-row snapshot", got, want)
	}
	after, err := db.Query("SELECT COUNT(*) FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	if after.Rows[0][0].I != 0 {
		t.Fatalf("new query sees %d rows, want 0", after.Rows[0][0].I)
	}
}

// TestExplainAnalyzeCounters checks the EXPLAIN ANALYZE footer carries the
// runtime counters (rows scanned; zone-map pruning shows up on column
// tables).
func TestExplainAnalyzeCounters(t *testing.T) {
	db := typedDB(t, 20_000)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	out, err := db.ExplainAnalyze("SELECT COUNT(*) FROM TT WHERE v >= 19000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rows_scanned=") || !strings.Contains(out, "segments_pruned=") {
		t.Fatalf("ExplainAnalyze output missing counters:\n%s", out)
	}
	if strings.Contains(out, "segments_pruned=0") {
		t.Fatalf("expected pruned segments on the selective range scan:\n%s", out)
	}
	if _, err := db.ExplainAnalyze("DELETE FROM TT"); err == nil {
		t.Fatal("ExplainAnalyze on DML should fail")
	}
}
