package engine

import (
	"strings"
	"testing"

	"xnf/internal/types"
)

// TestAnalyzeStatement covers the ANALYZE SQL verb: whole-database and
// single-table forms, statistics refresh, and catalog-version bumping
// (cached plans must recompile afterwards, exactly like the Go API).
func TestAnalyzeStatement(t *testing.T) {
	db := orgDB(t)
	queryStrings(t, db, "SELECT ename FROM EMP WHERE sal > 250")
	before := db.cat.Version()
	compiles := db.Metrics.Compiles.Load()

	if _, err := db.Exec("ANALYZE"); err != nil {
		t.Fatalf("ANALYZE: %v", err)
	}
	if db.cat.Version() == before {
		t.Fatal("ANALYZE did not bump the catalog version")
	}
	queryStrings(t, db, "SELECT ename FROM EMP WHERE sal > 250")
	if db.Metrics.Compiles.Load() == compiles {
		t.Fatal("ANALYZE did not invalidate the cached plan")
	}

	// Single-table form refreshes that table's column stats.
	if _, err := db.Exec("INSERT INTO DEPT VALUES (4, 'qa', 'LAB')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ANALYZE DEPT"); err != nil {
		t.Fatalf("ANALYZE DEPT: %v", err)
	}
	tbl, _ := db.cat.Table("DEPT")
	if got := tbl.Cardinality("loc"); got != 3 {
		t.Fatalf("ANALYZE DEPT did not refresh stats: loc cardinality = %d, want 3", got)
	}
	if _, err := db.Exec("ANALYZE NOSUCH"); err == nil {
		t.Fatal("ANALYZE of a missing table must fail")
	}
	// ANALYZE also arrives through scripts (the shell path).
	if err := db.ExecScript("ANALYZE; ANALYZE EMP;"); err != nil {
		t.Fatalf("scripted ANALYZE: %v", err)
	}
}

// TestPreparedDMLCompiledOnce verifies that prepared UPDATE/DELETE (and
// INSERT VALUES) carry their compiled predicate/assignments with the
// statement and stay correct across executions and DDL invalidation.
func TestPreparedDMLCompiledOnce(t *testing.T) {
	db := orgDB(t)
	up, err := db.Prepare("UPDATE EMP SET sal = sal + ? WHERE edno = ?")
	if err != nil {
		t.Fatal(err)
	}
	if up.mut == nil {
		t.Fatal("prepared UPDATE did not precompile its mutation")
	}
	if n, err := up.Exec(types.NewFloat(10), types.NewInt(1)); err != nil || n != 2 {
		t.Fatalf("prepared UPDATE: n=%d err=%v", n, err)
	}
	if n, err := up.Exec(types.NewFloat(10), types.NewInt(1)); err != nil || n != 2 {
		t.Fatalf("prepared UPDATE rerun: n=%d err=%v", n, err)
	}
	got := queryStrings(t, db, "SELECT sal FROM EMP WHERE eno = 1")
	sortedEqual(t, got, []string{"120"})

	del, err := db.Prepare("DELETE FROM EMP WHERE sal > ?")
	if err != nil {
		t.Fatal(err)
	}
	if del.mut == nil {
		t.Fatal("prepared DELETE did not precompile its mutation")
	}
	if n, err := del.Exec(types.NewFloat(450)); err != nil || n != 1 {
		t.Fatalf("prepared DELETE: n=%d err=%v", n, err)
	}

	ins, err := db.Prepare("INSERT INTO EMP VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.insertRows == nil {
		t.Fatal("prepared INSERT did not precompile its VALUES expressions")
	}
	if n, err := ins.Exec(types.NewInt(10), types.NewString("e10"), types.NewInt(2), types.NewFloat(50)); err != nil || n != 1 {
		t.Fatalf("prepared INSERT: n=%d err=%v", n, err)
	}

	// DDL invalidates: the retained handle must recompile and keep working.
	if _, err := db.Exec("CREATE INDEX emp_edno ON EMP (edno)"); err != nil {
		t.Fatal(err)
	}
	if n, err := up.Exec(types.NewFloat(5), types.NewInt(2)); err != nil || n != 2 {
		t.Fatalf("prepared UPDATE after DDL: n=%d err=%v", n, err)
	}
}

// TestCOPlanTemplateCache verifies that repeated extraction of a stored CO
// view compiles the per-output physical plans once and reuses them until
// the catalog version changes.
func TestCOPlanTemplateCache(t *testing.T) {
	db := orgDB(t)
	if err := db.ExecScript(`CREATE VIEW deps AS
OUT OF d AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
       e AS EMP,
       employs AS (RELATE d, e WHERE d.dno = e.edno)
TAKE *`); err != nil {
		t.Fatal(err)
	}
	res1, err := db.ExtractCOView("deps", false)
	if err != nil {
		t.Fatal(err)
	}
	if db.Metrics.COPlanCompiles.Load() != 1 {
		t.Fatalf("first extraction compiled %d plan sets, want 1", db.Metrics.COPlanCompiles.Load())
	}
	res2, err := db.ExtractCOView("deps", true)
	if err != nil {
		t.Fatal(err)
	}
	if db.Metrics.COPlanCompiles.Load() != 1 {
		t.Fatalf("second extraction recompiled plans (%d sets)", db.Metrics.COPlanCompiles.Load())
	}
	if db.Metrics.COPlanCacheHits.Load() == 0 {
		t.Fatal("second extraction did not hit the plan-template cache")
	}
	// Serial and parallel runs over shared templates agree.
	for i := range res1.Rows {
		if len(res1.Rows[i]) != len(res2.Rows[i]) {
			t.Fatalf("output %d: serial %d rows, parallel %d rows", i, len(res1.Rows[i]), len(res2.Rows[i]))
		}
	}
	// DDL invalidates the templates along with the compilation.
	if _, err := db.Exec("ANALYZE"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExtractCOView("deps", false); err != nil {
		t.Fatal(err)
	}
	if db.Metrics.COPlanCompiles.Load() != 2 {
		t.Fatalf("extraction after ANALYZE reused stale templates (%d sets)", db.Metrics.COPlanCompiles.Load())
	}
}

// TestCacheStatsHitCounters verifies the per-entry observability the
// eviction-tuning roadmap item needs: hit counts per normalized statement,
// MRU-first.
func TestCacheStatsHitCounters(t *testing.T) {
	db := orgDB(t)
	const q = "SELECT ename FROM EMP WHERE sal > 250"
	for i := 0; i < 3; i++ {
		queryStrings(t, db, q)
	}
	queryStrings(t, db, "SELECT COUNT(*) FROM DEPT")
	stats := db.CacheStats()
	if len(stats) < 2 {
		t.Fatalf("CacheStats returned %d entries, want >= 2", len(stats))
	}
	if !strings.Contains(stats[0].SQL, "COUNT") {
		t.Fatalf("MRU entry = %q, want the COUNT query first", stats[0].SQL)
	}
	var hits int64 = -1
	for _, e := range stats {
		if strings.Contains(e.SQL, "SAL > 250") {
			hits = e.Hits
		}
	}
	if hits != 2 {
		t.Fatalf("hot entry hits = %d, want 2 (three runs, first is the compile miss)", hits)
	}
}
