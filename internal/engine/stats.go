package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"xnf/internal/exec"
	"xnf/internal/metrics"
	"xnf/internal/resource"
	"xnf/internal/vexec"
)

// DefaultSlowQueryThreshold is the statement duration above which a query
// is recorded in the slow-query log unless overridden (xnfserver -slow).
const DefaultSlowQueryThreshold = 250 * time.Millisecond

// slowLogCap bounds the slow-query ring buffer.
const slowLogCap = 32

// SlowQuery is one slow-query log entry: the statement text, how long it
// ran, what it returned and the execution counters it accumulated.
type SlowQuery struct {
	SQL      string        `json:"sql"`
	Duration time.Duration `json:"duration_ns"`
	Rows     int64         `json:"rows"`
	Counters exec.Counters `json:"counters"`
	When     time.Time     `json:"when"`
}

// dbStats is the per-database observability state: the metric registry
// plus the handles the statement path records through. One per Database,
// created in Open; the wire server registers its own families in the same
// registry, so /metrics and FrameStats expose both layers in one
// snapshot.
type dbStats struct {
	reg *metrics.Registry

	stmtSelect *metrics.Counter
	stmtInsert *metrics.Counter
	stmtUpdate *metrics.Counter
	stmtDelete *metrics.Counter
	stmtDDL    *metrics.Counter
	stmtErrors *metrics.Counter

	// Resource governance: statements rejected over budget, statements
	// that hit their deadline, and operators that degraded to a cheaper
	// strategy instead of failing.
	stmtExhausted *metrics.Counter
	stmtTimeout   *metrics.Counter
	memFallbacks  *metrics.Counter
	memReserved   *metrics.Counter

	rowsReturned *metrics.Counter
	rowsAffected *metrics.Counter
	rowsScanned  *metrics.Counter
	segsScanned  *metrics.Counter
	segsPruned   *metrics.Counter

	// Compressed execution: rows whose comparisons / hash-key work ran
	// directly on encoded segment data (dictionary codes, packed ints).
	encodedCmp  *metrics.Counter
	encodedHash *metrics.Counter

	latency *metrics.Histogram

	slowTotal     *metrics.Counter
	slowThreshold atomic.Int64 // nanoseconds; <= 0 disables the slow log
	slowMu        sync.Mutex
	slow          []SlowQuery // ring buffer, slowNext is the write cursor
	slowNext      int
}

// newDBStats builds the registry for one database and registers the
// engine-owned metric families. Subsystems that keep their own totals
// (plan cache, worker pool, WAL, column store) are exposed through
// counter/gauge funcs evaluated at snapshot time.
func newDBStats(db *Database) *dbStats {
	reg := metrics.NewRegistry()
	st := &dbStats{
		reg:          reg,
		stmtSelect:   reg.Counter("xnf_statements_select_total", "SELECT statements executed."),
		stmtInsert:   reg.Counter("xnf_statements_insert_total", "INSERT statements executed."),
		stmtUpdate:   reg.Counter("xnf_statements_update_total", "UPDATE statements executed."),
		stmtDelete:   reg.Counter("xnf_statements_delete_total", "DELETE statements executed."),
		stmtDDL:      reg.Counter("xnf_statements_ddl_total", "DDL and other statements executed."),
		stmtErrors:   reg.Counter("xnf_statement_errors_total", "Statements that failed."),
		rowsReturned: reg.Counter("xnf_rows_returned_total", "Result rows returned to callers."),
		rowsAffected: reg.Counter("xnf_rows_affected_total", "Rows affected by DML."),
		rowsScanned:  reg.Counter("xnf_rows_scanned_total", "Rows read by scans."),
		segsScanned:  reg.Counter("xnf_segments_scanned_total", "Column-store segments read by scans."),
		segsPruned:   reg.Counter("xnf_segments_pruned_total", "Column-store segments skipped by zone maps."),
		encodedCmp:   reg.Counter("xnf_encoded_cmp_rows_total", "Rows compared directly on encoded segment data."),
		encodedHash:  reg.Counter("xnf_encoded_hash_rows_total", "Rows hashed for agg/join keys from encoded segment data."),
		latency:      reg.Histogram("xnf_statement_latency_ns", "Statement wall time in nanoseconds."),
		slowTotal:    reg.Counter("xnf_slow_queries_total", "Statements slower than the slow-query threshold."),

		stmtExhausted: reg.Counter("xnf_statements_exhausted_total", "Statements rejected over memory budget (retryable)."),
		stmtTimeout:   reg.Counter("xnf_statements_timeout_total", "Statements canceled by deadline or caller."),
		memFallbacks:  reg.Counter("xnf_mem_fallbacks_total", "Operators degraded to a cheaper strategy under memory pressure."),
		memReserved:   reg.Counter("xnf_mem_reserved_bytes_total", "Bytes reserved by governed allocators (cumulative demand)."),
	}
	st.slowThreshold.Store(int64(DefaultSlowQueryThreshold))

	// Memory accountant (instantaneous; budget 0 = unlimited).
	reg.GaugeFunc("xnf_mem_used_bytes", "Bytes currently reserved process-wide.",
		func() int64 { return db.mem.Used() })
	reg.GaugeFunc("xnf_mem_budget_bytes", "Process memory budget (0 = unlimited).",
		func() int64 { return db.mem.Limit() })
	reg.CounterFunc("xnf_mem_denied_total", "Reservations rejected by the process budget.",
		func() int64 { return db.mem.Denied() })

	// Plan cache (totals owned by db.Metrics / planCache).
	reg.CounterFunc("xnf_plan_cache_hits_total", "Plan-cache hits.",
		func() int64 { return db.Metrics.CacheHits.Load() })
	reg.CounterFunc("xnf_plan_cache_misses_total", "Plan-cache misses.",
		func() int64 { return db.Metrics.CacheMisses.Load() })
	reg.CounterFunc("xnf_plan_cache_evictions_total", "Plan-cache entries evicted.",
		func() int64 { _, ev := db.plans.metrics(); return ev })
	reg.GaugeFunc("xnf_plan_cache_entries", "Plans currently cached.",
		func() int64 { size, _ := db.plans.metrics(); return size })
	reg.CounterFunc("xnf_compiles_total", "Full SELECT compile-pipeline runs.",
		func() int64 { return db.Metrics.Compiles.Load() })

	// Shared worker pool (process-wide; totals owned by vexec.Shared).
	reg.GaugeFunc("xnf_pool_workers", "Extra worker capacity of the shared pool.",
		func() int64 { return int64(vexec.Shared.Stats().Workers) })
	reg.GaugeFunc("xnf_pool_in_use", "Shared-pool workers currently granted.",
		func() int64 { return int64(vexec.Shared.Stats().InUse) })
	reg.GaugeFunc("xnf_pool_active_ops", "Parallel operators currently holding grants.",
		func() int64 { return int64(vexec.Shared.Stats().Active) })
	reg.CounterFunc("xnf_pool_admissions_total", "Parallel operators granted extra workers.",
		func() int64 { return int64(vexec.Shared.Stats().Admits) })
	reg.CounterFunc("xnf_pool_fallbacks_total", "Parallel operators that ran sequentially (pool saturated).",
		func() int64 { return int64(vexec.Shared.Stats().Fallbacks) })

	// Durability (totals owned by the WAL; all zero without -data).
	reg.CounterFunc("xnf_wal_commits_total", "Transactions made durable.",
		func() int64 { return int64(db.store.WALStats().Commits) })
	reg.CounterFunc("xnf_wal_fsyncs_total", "WAL fsyncs issued.",
		func() int64 { return int64(db.store.WALStats().Fsyncs) })
	reg.CounterFunc("xnf_wal_records_total", "WAL records appended.",
		func() int64 { return int64(db.store.WALStats().Records) })
	reg.CounterFunc("xnf_wal_bytes_total", "WAL bytes appended.",
		func() int64 { return int64(db.store.WALStats().Bytes) })
	reg.CounterFunc("xnf_wal_group_commit_sum_total", "Sum of group-commit batch sizes (divide by fsyncs for the mean).",
		func() int64 { return int64(db.store.WALStats().GroupSum) })
	reg.GaugeFunc("xnf_wal_group_commit_max", "Largest commit group retired by one fsync.",
		func() int64 { return int64(db.store.WALStats().MaxGroup) })
	reg.CounterFunc("xnf_wal_checkpoints_total", "Checkpoints completed.",
		func() int64 { return int64(db.store.WALStats().Checkpoints) })
	reg.GaugeFunc("xnf_wal_last_checkpoint_ms", "Wall time of the latest checkpoint in milliseconds.",
		func() int64 { return db.store.WALStats().LastCkptMillis })
	reg.GaugeFunc("xnf_wal_replayed_records", "WAL records replayed by recovery at open.",
		func() int64 { return int64(db.store.WALStats().RecoveredRecords) })

	// Column store (instantaneous footprint).
	reg.GaugeFunc("xnf_colstore_segments", "Column-store segments resident across all tables.",
		func() int64 { segs, _ := db.store.ColStoreStats(); return int64(segs) })
	reg.GaugeFunc("xnf_colstore_bytes_resident", "Approximate heap bytes held by column vectors.",
		func() int64 { _, bytes := db.store.ColStoreStats(); return bytes })
	reg.GaugeFunc("xnf_colstore_dict_columns", "Segment columns held dictionary-encoded.",
		func() int64 { d, _ := db.store.EncodedColumnStats(); return int64(d) })
	reg.GaugeFunc("xnf_colstore_pack_columns", "Segment columns held bit-packed.",
		func() int64 { _, p := db.store.EncodedColumnStats(); return int64(p) })

	return st
}

// Registry returns the database's metric registry. The wire server
// registers its session/frame families here, and every exposure path
// (/metrics, /debug/vars, FrameStats, \metrics, the stats logger) reads
// the same instance.
func (db *Database) Registry() *metrics.Registry { return db.stats.reg }

// SetSlowQueryThreshold sets the duration above which statements are
// recorded in the slow-query log; d <= 0 disables recording.
func (db *Database) SetSlowQueryThreshold(d time.Duration) {
	db.stats.slowThreshold.Store(int64(d))
}

// SlowQueries returns the retained slow-query log entries, newest first.
func (db *Database) SlowQueries() []SlowQuery {
	s := db.stats
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	out := make([]SlowQuery, 0, len(s.slow))
	// slowNext-1 is the newest entry; walk backwards around the ring.
	for i := 0; i < len(s.slow); i++ {
		idx := (s.slowNext - 1 - i) % len(s.slow)
		if idx < 0 {
			idx += len(s.slow)
		}
		out = append(out, s.slow[idx])
	}
	return out
}

// observeStatement records one finished statement: verb and error
// counters, the latency histogram, rows and scan counters, and — when
// the statement ran longer than the threshold — a slow-query log entry.
// It is the single choke point both execution paths (Stmt.Exec for
// DML/DDL, the Rows cursor for SELECT) funnel through.
func (s *dbStats) observeStatement(verb byte, sql string, start time.Time, rows int64, c exec.Counters, err error) {
	elapsed := time.Since(start)
	switch verb {
	case 'S':
		s.stmtSelect.Inc()
	case 'I':
		s.stmtInsert.Inc()
	case 'U':
		s.stmtUpdate.Inc()
	case 'D':
		s.stmtDelete.Inc()
	default:
		s.stmtDDL.Inc()
	}
	if err != nil {
		s.stmtErrors.Inc()
		switch {
		case errors.Is(err, resource.ErrResourceExhausted):
			s.stmtExhausted.Inc()
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.stmtTimeout.Inc()
		}
	}
	s.latency.Observe(int64(elapsed))
	if verb == 'S' {
		s.rowsReturned.Add(rows)
	} else {
		s.rowsAffected.Add(rows)
	}
	s.rowsScanned.Add(c.RowsScanned)
	s.segsScanned.Add(c.SegmentsScanned)
	s.segsPruned.Add(c.SegmentsPruned)
	s.encodedCmp.Add(c.EncodedCmpRows)
	s.encodedHash.Add(c.EncodedHashRows)
	s.memFallbacks.Add(c.MemFallbacks)
	s.memReserved.Add(c.MemReserved)

	thresh := s.slowThreshold.Load()
	if thresh <= 0 || int64(elapsed) < thresh || err != nil {
		return
	}
	s.slowTotal.Inc()
	entry := SlowQuery{SQL: sql, Duration: elapsed, Rows: rows, Counters: c, When: time.Now()}
	s.slowMu.Lock()
	if len(s.slow) < slowLogCap {
		s.slow = append(s.slow, entry)
		s.slowNext = len(s.slow) % slowLogCap
	} else {
		s.slow[s.slowNext] = entry
		s.slowNext = (s.slowNext + 1) % slowLogCap
	}
	s.slowMu.Unlock()
}

// DebugVars returns the extra /debug/vars entries for this database —
// currently the slow-query log. Pass it to metrics.Handler.
func (db *Database) DebugVars() map[string]any {
	return map[string]any{"slow_queries": db.SlowQueries()}
}
