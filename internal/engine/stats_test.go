package engine

import (
	"strings"
	"testing"

	"xnf/internal/types"
)

func statsDB(t *testing.T) *Database {
	t.Helper()
	db := Open()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE t (id INT NOT NULL, v TEXT, PRIMARY KEY (id))")
	mustExec("ALTER TABLE t SET STORAGE COLUMN")
	for i := 1; i <= 5; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, ?)",
			types.Value{T: types.IntType, I: int64(i)}, types.Value{T: types.StringType, S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestStatementMetrics(t *testing.T) {
	db := statsDB(t)
	reg := db.Registry()

	if _, err := db.Query("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE t SET v = 'y' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM t WHERE id = 5"); err != nil {
		t.Fatal(err)
	}

	want := map[string]int64{
		"xnf_statements_select_total": 1,
		"xnf_statements_insert_total": 5,
		"xnf_statements_update_total": 1,
		"xnf_statements_delete_total": 1,
		"xnf_statements_ddl_total":    2, // CREATE TABLE + ALTER STORAGE
		"xnf_rows_returned_total":     5,
		"xnf_rows_affected_total":     7, // 5 inserts + 1 update + 1 delete
	}
	for name, v := range want {
		if got, ok := reg.Value(name); !ok || got != v {
			t.Errorf("%s = %d (ok=%v), want %d", name, got, ok, v)
		}
	}
	// Latency histogram saw one observation per statement.
	if got, _ := reg.Value("xnf_statement_latency_ns"); got != 10 {
		t.Errorf("latency count = %d, want 10", got)
	}

	// Abandoning a cursor mid-stream still observes the statement once.
	rows, err := db.QueryRows("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	rows.Close() // idempotent: must not double-observe
	if got, _ := reg.Value("xnf_statements_select_total"); got != 2 {
		t.Errorf("select count after abandoned cursor = %d, want 2", got)
	}

	// Failed statements count as errors.
	if _, err := db.Query("SELECT nope FROM t"); err == nil {
		t.Fatal("expected error")
	}
	if got, _ := reg.Value("xnf_statement_errors_total"); got < 1 {
		t.Errorf("error count = %d, want >= 1", got)
	}
}

func TestSlowQueryLog(t *testing.T) {
	db := statsDB(t)
	db.SetSlowQueryThreshold(1) // 1ns: everything is slow
	if _, err := db.Query("SELECT id FROM t WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	slow := db.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("no slow queries recorded")
	}
	if !strings.Contains(slow[0].SQL, "SELECT id FROM t") {
		t.Errorf("slow entry SQL = %q", slow[0].SQL)
	}
	if slow[0].Rows != 1 || slow[0].Duration <= 0 {
		t.Errorf("slow entry rows/duration = %d/%v", slow[0].Rows, slow[0].Duration)
	}

	// Threshold <= 0 disables recording.
	db.SetSlowQueryThreshold(0)
	before := len(db.SlowQueries())
	if _, err := db.Query("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	if got := len(db.SlowQueries()); got != before {
		t.Errorf("slow log grew with threshold disabled: %d -> %d", before, got)
	}

	// The ring keeps the newest entries, newest first.
	db.SetSlowQueryThreshold(1)
	for i := 0; i < slowLogCap+5; i++ {
		if _, err := db.Query("SELECT v FROM t WHERE id = 3"); err != nil {
			t.Fatal(err)
		}
	}
	slow = db.SlowQueries()
	if len(slow) != slowLogCap {
		t.Fatalf("ring size = %d, want %d", len(slow), slowLogCap)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].When.After(slow[i-1].When) {
			t.Fatalf("slow log not newest-first at %d", i)
		}
	}
}

func TestPlanCacheMetricsFuncs(t *testing.T) {
	db := statsDB(t)
	reg := db.Registry()
	for i := 0; i < 3; i++ {
		if _, err := db.Query("SELECT id FROM t WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	hits, _ := reg.Value("xnf_plan_cache_hits_total")
	misses, _ := reg.Value("xnf_plan_cache_misses_total")
	if hits < 2 || misses < 1 {
		t.Errorf("cache hits/misses = %d/%d, want >=2/>=1", hits, misses)
	}
	if entries, ok := reg.Value("xnf_plan_cache_entries"); !ok || entries < 1 {
		t.Errorf("cache entries = %d (ok=%v)", entries, ok)
	}
	if segs, ok := reg.Value("xnf_colstore_segments"); !ok || segs < 1 {
		t.Errorf("colstore segments = %d (ok=%v)", segs, ok)
	}
	if b, ok := reg.Value("xnf_colstore_bytes_resident"); !ok || b <= 0 {
		t.Errorf("colstore bytes = %d (ok=%v)", b, ok)
	}
}
