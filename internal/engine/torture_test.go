package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"syscall"
	"testing"

	"xnf/internal/faultfs"
	"xnf/internal/types"
	"xnf/internal/wal"
)

// TestCrashTortureInjectedWriteFailures is the kill -9 story with the disk
// itself misbehaving: commits run against a WAL whose writes/fsyncs fail —
// cleanly or torn mid-record — at a seeded random point. The process
// "dies" (the Database is abandoned without Close), the fault is cleared,
// and recovery must surface every transaction that was acknowledged before
// the failure. Each seed replays identically.
func TestCrashTortureInjectedWriteFailures(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.New(faultfs.OS, seed)
			prev := wal.SetFS(inj)
			defer wal.SetFS(prev)

			db, err := OpenDirOptions(dir, DurabilityOptions{GroupCommit: seed%2 == 0})
			if err != nil {
				t.Fatal(err)
			}
			mustExec(t, db, "CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k))")

			// Arm one failure at a seeded point in the commit stream. Odd
			// seeds tear the write mid-buffer (the torn-tail case CRC
			// framing must catch); seeds divisible by 3 kill the fsync
			// instead of the write.
			rng := rand.New(rand.NewSource(seed))
			rule := faultfs.Rule{Op: faultfs.OpWrite, Path: dir, After: 5 + rng.Intn(40)}
			if seed%2 == 1 {
				rule.Mode = faultfs.Partial
			}
			if seed%3 == 0 {
				rule.Op = faultfs.OpSync
			}
			inj.Add(rule)

			var committed []int64
			for i := int64(0); i < 200; i++ {
				if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)", types.NewInt(i), types.NewInt(i*i)); err != nil {
					break // the crash point: this commit was never acknowledged
				}
				committed = append(committed, i)
			}
			if inj.Injected() == 0 {
				t.Fatal("fault never fired")
			}
			if len(committed) == 200 {
				t.Fatal("expected the workload to die at the injected fault")
			}

			// kill -9: abandon db (no Close), clear the fault, recover.
			inj.Reset()
			db2, err := OpenDirOptions(dir, DurabilityOptions{GroupCommit: true})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer db2.Close()
			res, err := db2.Query("SELECT k, v FROM kv ORDER BY k")
			if err != nil {
				t.Fatal(err)
			}
			have := make(map[int64]int64, len(res.Rows))
			for _, r := range res.Rows {
				have[r[0].Int()] = r[1].Int()
			}
			for _, k := range committed {
				v, ok := have[k]
				if !ok {
					t.Fatalf("acknowledged commit k=%d lost in recovery (recovered %d rows)", k, len(have))
				}
				if v != k*k {
					t.Fatalf("k=%d recovered with v=%d, want %d", k, v, k*k)
				}
			}
			// The recovered database must accept new commits.
			mustExec(t, db2, "INSERT INTO kv VALUES (?, ?)", types.NewInt(1000), types.NewInt(1000000))
		})
	}
}

// TestCheckpointENOSPCLeavesStoreUsable fills the "disk" during a
// checkpoint: the snapshot write reports ENOSPC. The checkpoint must fail
// without poisoning the live log — commits keep flowing — and the rotated
// log files must still carry every transaction across a restart.
func TestCheckpointENOSPCLeavesStoreUsable(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, 1)
	prev := wal.SetFS(inj)
	defer wal.SetFS(prev)

	db, err := OpenDirOptions(dir, DurabilityOptions{GroupCommit: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE kv (k INT NOT NULL, PRIMARY KEY (k))")
	for i := int64(0); i < 20; i++ {
		mustExec(t, db, "INSERT INTO kv VALUES (?)", types.NewInt(i))
	}

	inj.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: ".ckpt", Mode: faultfs.NoSpace})
	if err := db.Checkpoint(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint: got %v, want ENOSPC", err)
	}

	// Space comes back; the store never stopped accepting commits.
	inj.Reset()
	for i := int64(20); i < 40; i++ {
		mustExec(t, db, "INSERT INTO kv VALUES (?)", types.NewInt(i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDirOptions(dir, DurabilityOptions{GroupCommit: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query("SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].Int(); n != 40 {
		t.Fatalf("recovered %d rows, want 40", n)
	}
}

// TestTortureSlowFsyncUnderGroupCommit stalls fsyncs: group commit must
// absorb the latency (many commits per fsync) and nothing may be lost.
func TestTortureSlowFsyncUnderGroupCommit(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, 3)
	prev := wal.SetFS(inj)
	defer wal.SetFS(prev)

	db, err := OpenDirOptions(dir, DurabilityOptions{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE kv (k INT NOT NULL, PRIMARY KEY (k))")
	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Path: dir, Mode: faultfs.Slow, Delay: 2e6}) // 2ms per fsync

	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 10 && err == nil; i++ {
				_, err = db.Exec("INSERT INTO kv VALUES (?)", types.NewInt(int64(w*100+i)))
			}
			done <- err
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	inj.Reset()
	db2, err := OpenDirOptions(dir, DurabilityOptions{GroupCommit: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query("SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].Int(); n != 80 {
		t.Fatalf("recovered %d rows, want 80", n)
	}
}
