package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xnf/internal/types"
)

// typedCorpus extends the golden corpus with shapes the typed kernels
// specialize: NULL-heavy columns, int64 overflow (wrapping must match the
// boxed path bit for bit), mixed int/float comparisons and arithmetic,
// string and boolean columns, and null-bitmap-driven IS [NOT] NULL.
var typedCorpus = []string{
	"SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM TT",
	"SELECT g, COUNT(*), SUM(f), MIN(f), MAX(f) FROM TT GROUP BY g",
	"SELECT COUNT(*) FROM TT WHERE v > 500",
	"SELECT COUNT(*) FROM TT WHERE f > 25.5",
	"SELECT COUNT(*) FROM TT WHERE v > f",              // int column vs float column
	"SELECT COUNT(*) FROM TT WHERE v >= 10 AND f < 80", // two prunable conjuncts
	"SELECT COUNT(*) FROM TT WHERE v > 3.5",            // int column vs float literal
	"SELECT COUNT(*) FROM TT WHERE f = 10",             // float column vs int literal
	"SELECT ok, COUNT(g) FROM TT GROUP BY ok",          // NULL-skipping COUNT(col)
	"SELECT COUNT(*) FROM TT WHERE g IS NULL",
	"SELECT COUNT(*) FROM TT WHERE g IS NOT NULL AND v < 300",
	"SELECT SUM(v + big), SUM(big * 3) FROM TT",        // int64 overflow wraps identically
	"SELECT SUM(v * 2 + 1), SUM(f / 2) FROM TT",        // typed arithmetic chains
	"SELECT MIN(s), MAX(s), COUNT(DISTINCT s) FROM TT", // string column aggregates
	"SELECT COUNT(*) FROM TT WHERE s >= 'tag3'",
	"SELECT ok, COUNT(*) FROM TT GROUP BY ok", // boolean group keys
	"SELECT COUNT(*) FROM TT WHERE ok = TRUE",
	"SELECT -v, -f FROM TT WHERE v < 5",
	"SELECT v - big FROM TT WHERE v > 995",
	"SELECT g + 1 FROM TT WHERE v < 10",       // NULL propagation through typed arith
	"SELECT COUNT(*) FROM TT WHERE v % 7 = 0", // typed modulo
	"SELECT COUNT(*) FROM TT WHERE 100 > v",   // scalar on the left
}

// typedDB builds a column-stored table covering every kernel type: int key,
// nullable int group, float measure, string tag, boolean flag, and an int
// column near the int64 limits for overflow parity.
func typedDB(t testing.TB, n int) *Database {
	t.Helper()
	db := Open()
	if err := db.ExecScript("CREATE TABLE TT (v INT NOT NULL, g INT, f FLOAT, s VARCHAR, ok BOOLEAN, big INT, PRIMARY KEY (v))"); err != nil {
		t.Fatal(err)
	}
	td, err := db.Store().Table("TT")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		g := types.NewInt(int64(i % 11))
		if i%7 == 0 {
			g = types.Null
		}
		big := types.NewInt((int64(1) << 62) + int64(i)) // SUM wraps
		row := types.Row{
			types.NewInt(int64(i)),
			g,
			types.NewFloat(float64(i%97) / 1.7),
			types.NewString(fmt.Sprintf("tag%d", i%13)),
			types.NewBool(i%3 == 0),
			big,
		}
		if _, err := td.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("ALTER TABLE TT SET STORAGE COLUMN"); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTypedKernelEquivalence is the typed-vs-boxed-vs-row gate: every query
// runs (1) on the row executor, (2) batched with typed kernels disabled
// (the boxed PR 3 path), and (3) batched with typed kernels — all three
// must agree exactly, on both the base corpus tables and the typed table.
func TestTypedKernelEquivalence(t *testing.T) {
	check := func(t *testing.T, db *Database, queries []string) {
		t.Helper()
		prev := db.OptOptions
		defer func() { db.OptOptions = prev }()
		for _, q := range queries {
			db.OptOptions.Vectorize = false
			want := queryStrings(t, db, q)
			db.OptOptions.Vectorize = true
			db.OptOptions.TypedKernels = false
			boxed := queryStrings(t, db, q)
			db.OptOptions.TypedKernels = true
			typed := queryStrings(t, db, q)
			sortedEqual(t, boxed, want)
			sortedEqual(t, typed, want)
		}
	}
	t.Run("org-corpus", func(t *testing.T) {
		db := orgDB(t)
		toColumnStorage(t, db)
		check(t, db, equivCorpus)
	})
	t.Run("typed-corpus", func(t *testing.T) {
		check(t, typedDB(t, 2000), typedCorpus)
	})
	t.Run("typed-corpus-parallel", func(t *testing.T) {
		db := typedDB(t, 2000)
		db.OptOptions.ParallelMinRows = 1
		db.OptOptions.ParallelWorkers = 4
		check(t, db, typedCorpus)
	})
}

// TestTypedKernelErrorParity pins typed-vs-boxed error behavior: division
// by zero inside typed arithmetic must surface (or stay guarded) exactly
// like the boxed and row paths, and comparing incompatible types must
// error identically instead of being silently mis-pruned or mis-compared.
func TestTypedKernelErrorParity(t *testing.T) {
	db := typedDB(t, 100)
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()
	cases := []struct {
		q       string
		wantErr bool
	}{
		{"SELECT COUNT(*) FROM TT WHERE v / (v - v) > 0", true},
		{"SELECT COUNT(*) FROM TT WHERE v - v <> 0 AND v / (v - v) > 0", false},
		{"SELECT COUNT(*) FROM TT WHERE s > 5", true},  // VARCHAR vs INTEGER comparison
		{"SELECT COUNT(*) FROM TT WHERE ok > 1", true}, // BOOLEAN vs INTEGER comparison
		{"SELECT SUM(s + 1) FROM TT", true},            // arithmetic on strings
		{"SELECT COUNT(*) FROM TT WHERE f % 2 = 0", true},
	}
	for _, c := range cases {
		for _, typed := range []bool{false, true} {
			db.OptOptions.Vectorize = true
			db.OptOptions.TypedKernels = typed
			_, err := db.Query(c.q)
			if c.wantErr && err == nil {
				t.Errorf("typed=%v %q: expected an error", typed, c.q)
			}
			if !c.wantErr && err != nil {
				t.Errorf("typed=%v %q: unexpected error %v", typed, c.q, err)
			}
		}
	}
}

// pruneDB builds a multi-segment column table whose id column is sorted by
// insertion order — the shape zone maps exploit.
func pruneDB(t testing.TB, n int) *Database {
	t.Helper()
	db := Open()
	if err := db.ExecScript("CREATE TABLE P (id INT NOT NULL, grp INT, val FLOAT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	td, err := db.Store().Table("P")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 13)), types.NewFloat(float64(i) / 3)}
		if _, err := td.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("ALTER TABLE P SET STORAGE COLUMN"); err != nil {
		t.Fatal(err)
	}
	return db
}

// queryWithCounters runs a query and returns rendered rows plus counters.
func queryWithCounters(t *testing.T, db *Database, q string, args ...types.Value) ([]string, int64) {
	t.Helper()
	res, err := db.Query(q, args...)
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r.String())
	}
	return out, res.Counters.SegmentsPruned
}

// TestZoneMapPruning checks that selective range and equality filters on a
// sorted-ish column skip whole segments — and that pruned results agree
// exactly with pruning disabled, including through prepared statements with
// parameters and NULL parameters.
func TestZoneMapPruning(t *testing.T) {
	const n = 20000 // 5 segments of 4096
	db := pruneDB(t, n)
	segs, _ := db.Store().Table("P")
	total := segs.Segments()
	if total < 4 {
		t.Fatalf("expected a multi-segment table, got %d segments", total)
	}
	cases := []struct {
		q         string
		minPruned int64
	}{
		{"SELECT COUNT(*), SUM(val) FROM P WHERE id >= 18000", int64(total) - 1},
		{"SELECT COUNT(*) FROM P WHERE id < 3000", int64(total) - 1},
		{"SELECT grp, COUNT(*) FROM P WHERE id > 4096 AND id <= 8192 GROUP BY grp", int64(total) - 2},
		// Equality pruning on a non-indexed column (the PK takes the index
		// path and never reaches the scan): val grows with id, so one
		// segment covers any given value.
		{"SELECT COUNT(*) FROM P WHERE val = 1000", int64(total) - 1},
		{"SELECT COUNT(*) FROM P WHERE id >= 999999", int64(total)}, // nothing qualifies anywhere
	}
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()
	for _, c := range cases {
		db.OptOptions.ZonePruning = false
		want, pruned0 := queryWithCounters(t, db, c.q)
		if pruned0 != 0 {
			t.Fatalf("%q: pruned %d segments with pruning disabled", c.q, pruned0)
		}
		db.OptOptions.ZonePruning = true
		got, pruned := queryWithCounters(t, db, c.q)
		sortedEqual(t, got, want)
		if pruned < c.minPruned {
			t.Errorf("%q: pruned %d segments, want >= %d (of %d)", c.q, pruned, c.minPruned, total)
		}
	}

	// Prepared statements resolve bounds from the parameter frame at Open.
	stmt, err := db.Prepare("SELECT COUNT(*) FROM P WHERE id >= ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query(types.NewInt(18000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SegmentsPruned < int64(total)-1 {
		t.Errorf("prepared: pruned %d segments, want >= %d", res.Counters.SegmentsPruned, total-1)
	}
	if res.Rows[0][0].I != 2000 {
		t.Errorf("prepared: COUNT = %v, want 2000", res.Rows[0][0])
	}
	// A NULL parameter makes the comparison Unknown everywhere: every
	// segment prunes and the result is an empty aggregate input.
	res, err = stmt.Query(types.Null)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SegmentsPruned != int64(total) {
		t.Errorf("NULL param: pruned %d segments, want all %d", res.Counters.SegmentsPruned, total)
	}
	if res.Rows[0][0].I != 0 {
		t.Errorf("NULL param: COUNT = %v, want 0", res.Rows[0][0])
	}
}

// TestZoneMapPruningUnderDML drives pruning correctness while the table
// mutates: updates widen zones incrementally, deletes stay conservative,
// rolled-back statements must leave zones that never prune live rows, and
// ANALYZE re-tightens. Every probe compares pruned vs unpruned results.
func TestZoneMapPruningUnderDML(t *testing.T) {
	db := pruneDB(t, 13000) // 4 segments
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()
	probes := []string{
		"SELECT COUNT(*), SUM(val) FROM P WHERE id >= 12000",
		"SELECT COUNT(*) FROM P WHERE id < 100",
		"SELECT grp, COUNT(*) FROM P WHERE id > 999900 GROUP BY grp",
		"SELECT COUNT(*) FROM P WHERE id = 1000000",
	}
	check := func(step string) {
		t.Helper()
		for _, q := range probes {
			db.OptOptions.ZonePruning = false
			want, _ := queryWithCounters(t, db, q)
			db.OptOptions.ZonePruning = true
			got, _ := queryWithCounters(t, db, q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("after %s, %q: pruned %v, unpruned %v", step, q, got, want)
			}
		}
	}
	check("initial")

	// Move a row from the first segment out past every zone: the first
	// segment's zone widens (no stale pruning), and id = 1000000 must be
	// found even though it lives in a segment whose original range was
	// [0, 4095].
	if _, err := db.Exec("UPDATE P SET id = 1000000 WHERE id = 50"); err != nil {
		t.Fatal(err)
	}
	check("update widening first segment")
	db.OptOptions.ZonePruning = true
	got, _ := queryWithCounters(t, db, "SELECT COUNT(*) FROM P WHERE id = 1000000")
	if got[0] != "1" {
		t.Fatalf("widened row not found under pruning: %v", got)
	}

	// Delete the tail range; conservative zones may stop pruning but must
	// never drop rows. ANALYZE then recomputes exact zones.
	if _, err := db.Exec("DELETE FROM P WHERE id >= 12000 AND id < 13000"); err != nil {
		t.Fatal(err)
	}
	check("tail delete")
	if _, err := db.Exec("ANALYZE P"); err != nil {
		t.Fatal(err)
	}
	check("analyze after delete")

	// A failing multi-row INSERT (duplicate PK in the second row) rolls
	// back the first row; the revive/undo path widens zones, so the
	// transient row must neither survive nor corrupt pruning.
	if _, err := db.Exec("INSERT INTO P VALUES (2000000, 1, 1.0), (100, 1, 1.0)"); err == nil {
		t.Fatal("duplicate key insert unexpectedly succeeded")
	}
	check("rolled-back insert")
	db.OptOptions.ZonePruning = true
	got, _ = queryWithCounters(t, db, "SELECT COUNT(*) FROM P WHERE id = 2000000")
	if got[0] != "0" {
		t.Fatalf("rolled-back row visible under pruning: %v", got)
	}

	// Fresh inserts into the tail keep qualifying.
	if _, err := db.Exec("INSERT INTO P VALUES (3000000, 2, 9.5)"); err != nil {
		t.Fatal(err)
	}
	probes = append(probes, "SELECT COUNT(*) FROM P WHERE id >= 3000000")
	check("fresh tail insert")
}

// TestDeletedSegmentSkipAndCompact covers the delete-heavy satellite: scans
// skip fully-deleted segments without decoding them, ANALYZE hollows their
// payload (slot space preserved), and the table keeps answering correctly —
// including fresh inserts that land in a hollowed tail segment.
func TestDeletedSegmentSkipAndCompact(t *testing.T) {
	db := pruneDB(t, 13000) // 4 segments: [0,4096) [4096,8192) [8192,12288) [12288,13000)
	td, _ := db.Store().Table("P")

	// Wipe out the second segment entirely, plus the partial tail.
	if _, err := db.Exec("DELETE FROM P WHERE id >= 4096 AND id < 8192"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM P WHERE id >= 12288"); err != nil {
		t.Fatal(err)
	}
	want := queryStrings(t, db, "SELECT COUNT(*), MIN(id), MAX(id) FROM P")
	if want[0] != fmt.Sprintf("%d|%d|%d", 2*4096, 0, 12287) {
		t.Fatalf("unexpected baseline after deletes: %v", want)
	}

	if _, err := db.Exec("ANALYZE P"); err != nil {
		t.Fatal(err)
	}
	if h := td.HollowSegments(); h != 2 {
		t.Fatalf("ANALYZE hollowed %d segments, want 2", h)
	}
	sortedEqual(t, queryStrings(t, db, "SELECT COUNT(*), MIN(id), MAX(id) FROM P"), want)

	// Appends land in the hollowed tail segment: storage is rebuilt on
	// demand and the rows are immediately visible.
	if _, err := db.Exec("INSERT INTO P VALUES (12500, 5, 1.5), (12501, 5, 2.5)"); err != nil {
		t.Fatal(err)
	}
	sortedEqual(t, queryStrings(t, db, "SELECT id FROM P WHERE id >= 12288"),
		[]string{"12500", "12501"})
	// The reused tail is live again; the fully-deleted middle segment stays hollow.
	if h := td.HollowSegments(); h != 1 {
		t.Fatalf("expected 1 hollow segment after tail reuse, got %d", h)
	}
	sortedEqual(t, queryStrings(t, db, "SELECT COUNT(*) FROM P WHERE id >= 4096 AND id < 8192"), []string{"0"})
}

// TestVexecPoolRace hammers cached typed, boxed and parallel plans from
// many goroutines against concurrent DML: the shared slice pools must never
// leak one execution's data into another (reset-on-put), which the race
// detector and the result sanity checks verify together.
func TestVexecPoolRace(t *testing.T) {
	db := typedDB(t, 6000)
	db.OptOptions.ParallelMinRows = 1
	db.OptOptions.ParallelWorkers = 4
	stmtTyped, err := db.Prepare("SELECT g, COUNT(*), SUM(v), SUM(f) FROM TT WHERE v >= ? GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	stmtProj, err := db.Prepare("SELECT v * 2, s, v + f FROM TT WHERE v < ?")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent writer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec("UPDATE TT SET f = f + 1 WHERE v = ?", types.NewInt(int64(i%6000))); err != nil {
				errs <- err
				return
			}
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; i < 40; i++ {
				res, err := stmtTyped.Query(types.NewInt(int64(100 * (g % 4))))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) == 0 {
					errs <- fmt.Errorf("goroutine %d: empty aggregate", g)
					return
				}
				pres, err := stmtProj.Query(types.NewInt(50))
				if err != nil {
					errs <- err
					return
				}
				if len(pres.Rows) != 50 {
					errs <- fmt.Errorf("goroutine %d: projection returned %d rows, want 50", g, len(pres.Rows))
					return
				}
				for _, r := range pres.Rows {
					if !strings.HasPrefix(r[1].S, "tag") {
						errs <- fmt.Errorf("goroutine %d: corrupted string column %q", g, r[1].S)
						return
					}
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
