package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xnf/internal/catalog"
	"xnf/internal/colstore"
	"xnf/internal/types"
)

// equivCorpus is the golden row-vs-batch query corpus: every query runs
// through both executors and the results must agree exactly. It leans on
// the shapes the lowering pass touches — scans, filters (including NULL
// three-valued logic and selection-vector edge cases), projections,
// aggregates, limits, joins, sorts, unions — plus shapes that must fall
// back (correlated subqueries, spools) so bridge boundaries are exercised
// too. joinEquivCorpus extends this with the join/sort/distinct shapes.
var equivCorpus = []string{
	// Plain scans and projections.
	"SELECT * FROM EMP",
	"SELECT ename, sal FROM EMP",
	"SELECT eno * 10 + 1, sal / 2 FROM EMP",
	"SELECT eno, -eno, eno - sal FROM EMP",
	// Filters: comparisons, boolean connectives, NULL semantics.
	"SELECT ename FROM EMP WHERE sal > 250",
	"SELECT ename FROM EMP WHERE sal >= 300 AND eno < 5",
	"SELECT ename FROM EMP WHERE edno = 1 OR edno = 3",
	"SELECT ename FROM EMP WHERE NOT (sal > 250)",
	"SELECT ename FROM EMP WHERE edno IS NULL",
	"SELECT ename FROM EMP WHERE edno IS NOT NULL AND sal < 450",
	"SELECT ename FROM EMP WHERE ename LIKE 'e%'",
	"SELECT ename FROM EMP WHERE ename LIKE '%3'",
	"SELECT ename FROM EMP WHERE sal BETWEEN 200 AND 400",
	// Selection-vector edge cases: nothing passes, everything passes.
	"SELECT ename FROM EMP WHERE sal > 10000",
	"SELECT ename FROM EMP WHERE sal > 0",
	"SELECT ename FROM EMP WHERE eno <> eno",
	// NULL propagation through expressions and predicates.
	"SELECT edno + 1 FROM EMP",
	"SELECT ename FROM EMP WHERE edno + 1 > 1",
	"SELECT ename FROM EMP WHERE edno > 0 OR sal > 450",
	// Index lookups (PK) with residual filters.
	"SELECT ename FROM EMP WHERE eno = 3",
	"SELECT ename FROM EMP WHERE eno = 3 AND sal > 1000",
	"SELECT ename FROM EMP WHERE eno = 99",
	// Aggregates: global, grouped, empty input, DISTINCT, NULL skipping.
	"SELECT COUNT(*) FROM EMP",
	"SELECT COUNT(edno) FROM EMP",
	"SELECT COUNT(*), SUM(sal), MIN(sal), MAX(sal), AVG(sal) FROM EMP",
	"SELECT COUNT(*) FROM EMP WHERE sal > 10000",
	"SELECT SUM(sal) FROM EMP WHERE sal > 10000",
	"SELECT edno, COUNT(*), SUM(sal) FROM EMP GROUP BY edno",
	"SELECT edno, AVG(sal) FROM EMP WHERE eno < 5 GROUP BY edno",
	"SELECT COUNT(DISTINCT edno) FROM EMP",
	"SELECT edno, COUNT(DISTINCT ename) FROM EMP GROUP BY edno",
	"SELECT edno, COUNT(*) FROM EMP GROUP BY edno HAVING COUNT(*) > 1",
	// LIMIT with and without ORDER BY (both paths preserve scan order).
	"SELECT ename FROM EMP LIMIT 2",
	"SELECT ename FROM EMP WHERE sal > 150 LIMIT 2",
	"SELECT ename FROM EMP ORDER BY sal DESC LIMIT 3",
	"SELECT ename FROM EMP LIMIT 0",
	// DISTINCT, ORDER BY (batch operators since the join/sort lowering).
	"SELECT DISTINCT edno FROM EMP",
	"SELECT ename FROM EMP ORDER BY ename DESC",
	// Joins and derived tables.
	"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno",
	"SELECT e.ename FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'",
	"SELECT d.dname, COUNT(*) FROM EMP e, DEPT d WHERE e.edno = d.dno GROUP BY d.dname",
	"SELECT a.dno FROM (SELECT dno FROM DEPT WHERE loc = 'ARC') a, (SELECT dno FROM DEPT WHERE loc = 'ARC') b WHERE a.dno = b.dno",
	// Subqueries (row path with batched inner fragments).
	"SELECT ename FROM EMP WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.dno = EMP.edno AND d.loc = 'ARC')",
	"SELECT ename FROM EMP WHERE edno IN (SELECT dno FROM DEPT WHERE loc = 'ARC')",
	"SELECT ename FROM EMP WHERE edno NOT IN (SELECT dno FROM DEPT WHERE loc = 'HQ')",
	"SELECT ename FROM EMP WHERE sal > (SELECT AVG(sal) FROM EMP)",
	// Unions.
	"SELECT ename FROM EMP WHERE sal < 200 UNION SELECT ename FROM EMP WHERE sal > 400",
	"SELECT edno FROM EMP UNION ALL SELECT dno FROM DEPT",
	// Scalar functions and CASE lower to per-element batch kernels
	// (vFunc/vCase); these queries exercise them against the row path.
	"SELECT UPPER(ename), LENGTH(ename) FROM EMP WHERE sal > 100",
	"SELECT LOWER(ename), ABS(-sal) FROM EMP",
	"SELECT CASE WHEN sal > 300 THEN 'hi' ELSE 'lo' END FROM EMP",
	"SELECT CASE WHEN edno IS NULL THEN 0 WHEN edno > 1 THEN edno ELSE -1 END FROM EMP",
	// CASE arms must stay lazy per mask: the division runs only where its
	// guard matched, exactly like the row executor.
	"SELECT CASE WHEN sal - sal <> 0 THEN sal / (sal - sal) ELSE -1 END FROM EMP",
}

// runBoth executes one query under the row executor and the batch engine
// and returns both result sets rendered as strings.
func runBoth(t *testing.T, db *Database, q string, args ...types.Value) (rowRes, batchRes []string, ordered bool) {
	t.Helper()
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()

	db.OptOptions.Vectorize = false
	r1, err := db.Query(q, args...)
	if err != nil {
		t.Fatalf("row executor %q: %v", q, err)
	}
	db.OptOptions.Vectorize = true
	r2, err := db.Query(q, args...)
	if err != nil {
		t.Fatalf("batch executor %q: %v", q, err)
	}
	for _, r := range r1.Rows {
		rowRes = append(rowRes, r.String())
	}
	for _, r := range r2.Rows {
		batchRes = append(batchRes, r.String())
	}
	up := strings.ToUpper(q)
	ordered = strings.Contains(up, "ORDER BY") || strings.Contains(up, "LIMIT")
	return rowRes, batchRes, ordered
}

// TestRowBatchEquivalence runs the corpus through both executors and
// diffs the results. ORDER BY / LIMIT queries compare position by
// position; the rest compare as multisets (join and hash orders are not
// part of the contract).
func TestRowBatchEquivalence(t *testing.T) {
	db := orgDB(t)
	for _, q := range equivCorpus {
		rowRes, batchRes, ordered := runBoth(t, db, q)
		if ordered {
			if len(rowRes) != len(batchRes) {
				t.Errorf("%q: row executor returned %d rows, batch %d", q, len(rowRes), len(batchRes))
				continue
			}
			for i := range rowRes {
				if rowRes[i] != batchRes[i] {
					t.Errorf("%q: row %d differs: row executor %q, batch %q", q, i, rowRes[i], batchRes[i])
					break
				}
			}
			continue
		}
		sortedEqual(t, batchRes, rowRes)
	}
}

// TestRowBatchEquivalencePrepared repeats the parameterized shapes through
// prepared statements, so the batch path is exercised with parameter
// frames and cloned cached plans.
func TestRowBatchEquivalencePrepared(t *testing.T) {
	db := orgDB(t)
	cases := []struct {
		q    string
		args [][]types.Value
	}{
		{"SELECT ename FROM EMP WHERE sal > ?", [][]types.Value{
			{types.NewFloat(250)}, {types.NewFloat(0)}, {types.NewFloat(1e6)},
		}},
		{"SELECT edno, COUNT(*) FROM EMP WHERE sal >= ? GROUP BY edno", [][]types.Value{
			{types.NewFloat(100)}, {types.NewFloat(400)},
		}},
		{"SELECT ename FROM EMP WHERE eno = ?", [][]types.Value{
			{types.NewInt(3)}, {types.NewInt(42)},
		}},
	}
	for _, c := range cases {
		for _, args := range c.args {
			rowRes, batchRes, _ := runBoth(t, db, c.q, args...)
			sortedEqual(t, batchRes, rowRes)
		}
	}
}

// TestRowBatchEquivalenceBigTable pushes both executors past several batch
// boundaries (multiple 1024-row chunks, partially selected tail batch) and
// checks a grouped aggregate and a limit suffix.
func TestRowBatchEquivalenceBigTable(t *testing.T) {
	db := Open()
	if err := db.ExecScript("CREATE TABLE BIG (id INT NOT NULL, g INT, v FLOAT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	td, err := db.Store().Table("BIG")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		g := types.NewInt(int64(i % 7))
		v := types.NewFloat(float64(i % 100))
		if i%31 == 0 {
			g = types.Null // NULL group keys must aggregate identically
		}
		if _, err := td.Insert(types.Row{types.NewInt(int64(i)), g, v}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		"SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM BIG GROUP BY g",
		"SELECT COUNT(*) FROM BIG WHERE v > 50",
		"SELECT id FROM BIG WHERE v = 99 AND g = 3",
		"SELECT id FROM BIG WHERE v > 97 LIMIT 2000",
		"SELECT id FROM BIG LIMIT 1500",
	} {
		rowRes, batchRes, ordered := runBoth(t, db, q)
		if ordered {
			if fmt.Sprint(rowRes) != fmt.Sprint(batchRes) {
				t.Errorf("%q: ordered results differ (%d vs %d rows)", q, len(rowRes), len(batchRes))
			}
			continue
		}
		sortedEqual(t, batchRes, rowRes)
	}
}

// TestRowBatchErrorParity pins down evaluation-order parity for errors:
// AND evaluates its right side wherever the left is not false — including
// NULL (unknown) left operands — so a query whose right side errors on
// such a row must fail identically on both executors.
func TestRowBatchErrorParity(t *testing.T) {
	db := orgDB(t) // EMP row e5 has edno NULL
	const q = "SELECT ename FROM EMP WHERE edno > 99 AND sal / (sal - sal) > 0"
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()
	db.OptOptions.Vectorize = false
	_, rowErr := db.Query(q)
	db.OptOptions.Vectorize = true
	_, batchErr := db.Query(q)
	if rowErr == nil || batchErr == nil {
		t.Fatalf("expected division-by-zero on both paths: row=%v batch=%v", rowErr, batchErr)
	}
	// And the guarded form must succeed on both.
	const guarded = "SELECT ename FROM EMP WHERE sal - sal <> 0 AND sal / (sal - sal) > 0"
	db.OptOptions.Vectorize = false
	if _, err := db.Query(guarded); err != nil {
		t.Fatalf("row executor evaluated a guarded division: %v", err)
	}
	db.OptOptions.Vectorize = true
	if _, err := db.Query(guarded); err != nil {
		t.Fatalf("batch executor evaluated a guarded division: %v", err)
	}
}

// TestRowBatchLimitLaziness pins down that LIMIT keeps projection
// expressions lazy on the batch path: an error in a projected expression
// of a row beyond the limit must not surface (the limit is pushed beneath
// the projection during lowering).
func TestRowBatchLimitLaziness(t *testing.T) {
	db := Open()
	if err := db.ExecScript("CREATE TABLE LZ (x INT); INSERT INTO LZ VALUES (5), (0);"); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT 10 / x FROM LZ LIMIT 1"
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()
	for _, vec := range []bool{false, true} {
		db.OptOptions.Vectorize = vec
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("vectorize=%v: %v (limit did not stay lazy)", vec, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
			t.Fatalf("vectorize=%v: rows = %v, want [2]", vec, res.Rows)
		}
	}
}

// orgTables is every base table of the Fig. 1 schema.
var orgTables = []string{"DEPT", "EMP", "PROJ", "SKILLS", "EMPSKILLS", "PROJSKILLS"}

// toColumnStorage flips every base table of the org schema to columnar.
func toColumnStorage(t testing.TB, db *Database) {
	t.Helper()
	for _, tbl := range orgTables {
		if _, err := db.Exec("ALTER TABLE " + tbl + " SET STORAGE COLUMN"); err != nil {
			t.Fatalf("ALTER %s: %v", tbl, err)
		}
	}
}

// TestRowColumnStorageEquivalence runs the full corpus against both storage
// kinds: the row-stored database (row executor) is ground truth; the
// column-stored database must agree under both executors — including the
// zero-copy segment-view scan path and all fallback bridges.
func TestRowColumnStorageEquivalence(t *testing.T) {
	ref := orgDB(t)
	ref.OptOptions.Vectorize = false
	col := orgDB(t)
	toColumnStorage(t, col)
	for _, tbl := range orgTables {
		td, err := col.Store().Table(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if td.StorageKind() != catalog.ColumnStore {
			t.Fatalf("%s not column-stored after ALTER", tbl)
		}
	}
	for _, q := range equivCorpus {
		want := queryStrings(t, ref, q)
		rowRes, batchRes, ordered := runBoth(t, col, q)
		if ordered {
			if fmt.Sprint(want) != fmt.Sprint(rowRes) || fmt.Sprint(want) != fmt.Sprint(batchRes) {
				t.Errorf("%q: ordered results differ\nrow-store:  %v\ncol row:    %v\ncol batch:  %v", q, want, rowRes, batchRes)
			}
			continue
		}
		sortedEqual(t, rowRes, want)
		sortedEqual(t, batchRes, want)
	}
}

// TestColumnStorageDML interleaves INSERT/UPDATE/DELETE with scans on a
// column-stored database, mirroring every statement on a row-stored twin:
// after each mutation both databases must agree on a set of probe queries
// under both executors. A multi-row INSERT with a duplicate key checks that
// transaction rollback restores column segments exactly.
func TestColumnStorageDML(t *testing.T) {
	rowDB := orgDB(t)
	colDB := orgDB(t)
	toColumnStorage(t, colDB)

	probes := []string{
		"SELECT * FROM EMP",
		"SELECT ename FROM EMP WHERE sal > 250",
		"SELECT edno, COUNT(*), SUM(sal) FROM EMP GROUP BY edno",
		"SELECT ename FROM EMP WHERE eno = 3",
		"SELECT ename FROM EMP WHERE edno IS NULL",
		"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno",
	}
	check := func(step string) {
		t.Helper()
		for _, q := range probes {
			want := queryStrings(t, rowDB, q)
			rowRes, batchRes, _ := runBoth(t, colDB, q)
			sortedEqual(t, rowRes, want)
			sortedEqual(t, batchRes, want)
		}
		_ = step
	}

	dml := []string{
		"INSERT INTO EMP VALUES (6, 'e6', 2, 150)",
		"UPDATE EMP SET sal = sal + 50 WHERE edno = 1",
		"DELETE FROM EMP WHERE eno = 2",
		"INSERT INTO EMP VALUES (7, 'e7', NULL, 700), (8, 'e8', 3, 80)",
		"UPDATE EMP SET edno = 3 WHERE edno IS NULL",
		"DELETE FROM EMP WHERE sal > 600",
		"INSERT INTO EMP VALUES (9, 'e9', 1, 90)",
	}
	check("initial")
	for _, stmt := range dml {
		nRow, err := rowDB.Exec(stmt)
		if err != nil {
			t.Fatalf("row db %q: %v", stmt, err)
		}
		nCol, err := colDB.Exec(stmt)
		if err != nil {
			t.Fatalf("col db %q: %v", stmt, err)
		}
		if nRow != nCol {
			t.Fatalf("%q affected %d rows on row storage, %d on column storage", stmt, nRow, nCol)
		}
		check(stmt)
	}
	// A failing multi-row INSERT (duplicate PK in the second row) must roll
	// back the first row on both storage kinds.
	const bad = "INSERT INTO EMP VALUES (50, 'x', 1, 1), (9, 'dup', 1, 1)"
	if _, err := rowDB.Exec(bad); err == nil {
		t.Fatal("row db accepted duplicate key")
	}
	if _, err := colDB.Exec(bad); err == nil {
		t.Fatal("col db accepted duplicate key")
	}
	check("after rollback")
}

// TestAutoPromoteOnAnalyze drives the colstore.AutoPromote heuristic:
// ANALYZE of a row table at/above the threshold switches it to columnar,
// with identical query results before and after.
func TestAutoPromoteOnAnalyze(t *testing.T) {
	db := orgDB(t) // orgDB's own Analyze runs with promotion still disabled
	prev := colstore.SetAutoPromoteRows(4)
	defer colstore.SetAutoPromoteRows(prev)
	td, err := db.Store().Table("EMP")
	if err != nil {
		t.Fatal(err)
	}
	if td.StorageKind() != catalog.RowStore {
		t.Fatal("EMP should start row-stored")
	}
	before := queryStrings(t, db, "SELECT edno, COUNT(*) FROM EMP GROUP BY edno")
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if td.StorageKind() != catalog.ColumnStore {
		t.Fatal("ANALYZE did not promote EMP (5 rows ≥ threshold 4)")
	}
	dept, _ := db.Store().Table("DEPT")
	if dept.StorageKind() != catalog.RowStore {
		t.Fatal("ANALYZE promoted DEPT below the threshold (3 rows < 4)")
	}
	sortedEqual(t, queryStrings(t, db, "SELECT edno, COUNT(*) FROM EMP GROUP BY edno"), before)
}

// TestMorselParallelDeterminism pins the parallel aggregate's output
// against the sequential fold on a multi-segment table: integer aggregates
// are exact, so the results (including group order) must match bit for bit.
func TestMorselParallelDeterminism(t *testing.T) {
	db := Open()
	db.OptOptions.ParallelMinRows = 1
	if err := db.ExecScript("CREATE TABLE T (id INT NOT NULL, g INT, v INT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	td, err := db.Store().Table("T")
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		g := types.NewInt(int64(i % 23))
		if i%41 == 0 {
			g = types.Null
		}
		if _, err := td.Insert(types.Row{types.NewInt(int64(i)), g, types.NewInt(int64(i % 100))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("ALTER TABLE T SET STORAGE COLUMN"); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), COUNT(DISTINCT v) FROM T WHERE v > 3 GROUP BY g"

	db.OptOptions.ParallelScan = false
	seq, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	db.OptOptions.ParallelScan = true
	if plan, err := db.Explain(q); err != nil || !strings.Contains(plan, "BatchParallelAggScan") {
		t.Fatalf("query did not lower to the parallel operator (err=%v):\n%s", err, plan)
	}
	for _, workers := range []int{2, 4, 8} {
		db.OptOptions.ParallelScan = true
		db.OptOptions.ParallelWorkers = workers
		par, err := db.Query(q)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Rows) != len(seq.Rows) {
			t.Fatalf("workers=%d: %d groups vs %d sequential", workers, len(par.Rows), len(seq.Rows))
		}
		for i := range seq.Rows {
			if par.Rows[i].String() != seq.Rows[i].String() {
				t.Fatalf("workers=%d: row %d = %q, sequential %q", workers, i, par.Rows[i], seq.Rows[i])
			}
		}
	}
	// Float aggregates: parallel FP reduction reorders additions, so the
	// result may differ from the sequential fold by an ulp — but the static
	// morsel striding makes it bit-reproducible for a fixed worker count.
	const fq = "SELECT g, SUM(v * 0.1), AVG(v * 0.1) FROM T GROUP BY g"
	db.OptOptions.ParallelWorkers = 4
	first, err := db.Query(fq)
	if err != nil {
		t.Fatal(err)
	}
	second, err := db.Query(fq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Rows {
		if first.Rows[i].String() != second.Rows[i].String() {
			t.Fatalf("float aggregate not reproducible: run 1 row %d = %q, run 2 = %q", i, first.Rows[i], second.Rows[i])
		}
	}
}

// TestMorselParallelScanRace hammers one cached parallel-aggregate plan
// from many goroutines while a writer mutates the column-stored table —
// the race detector proves segment views, per-worker states and the merge
// are properly isolated. Results are only sanity-checked (the table is a
// moving target); exactness is TestMorselParallelDeterminism's job.
func TestMorselParallelScanRace(t *testing.T) {
	db := Open()
	db.OptOptions.ParallelMinRows = 1
	if err := db.ExecScript("CREATE TABLE T (id INT NOT NULL, g INT, v INT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	td, err := db.Store().Table("T")
	if err != nil {
		t.Fatal(err)
	}
	const n = 12000
	for i := 0; i < n; i++ {
		if _, err := td.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 7)), types.NewInt(int64(i % 100))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("ALTER TABLE T SET STORAGE COLUMN"); err != nil {
		t.Fatal(err)
	}
	db.OptOptions.ParallelWorkers = 4
	stmt, err := db.Prepare("SELECT g, COUNT(*), SUM(v) FROM T WHERE v >= ? GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 32)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() { // writer: updates, deletes and inserts against live scans
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				if _, err := db.Exec("UPDATE T SET v = v + 1 WHERE id = ?", types.NewInt(int64(i%n))); err != nil {
					errs <- err
					return
				}
			case 1:
				if _, err := db.Exec("DELETE FROM T WHERE id = ?", types.NewInt(int64(n+i))); err != nil {
					errs <- err
					return
				}
			default:
				if _, err := db.Exec("INSERT INTO T VALUES (?, 1, 1)", types.NewInt(int64(n+i))); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 6; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; i < 30; i++ {
				res, err := stmt.Query(types.NewInt(int64(g % 3)))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) == 0 {
					errs <- fmt.Errorf("goroutine %d: empty aggregate result", g)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestVexecRaceConcurrentExecutions runs many concurrent executions of one
// cached batched plan (and one cached CO view) to prove the clone-per-
// execution story under the race detector: templates are shared, iterator
// state is private.
func TestVexecRaceConcurrentExecutions(t *testing.T) {
	db := orgDB(t)
	stmt, err := db.Prepare("SELECT edno, COUNT(*), SUM(sal) FROM EMP WHERE sal > ? GROUP BY edno")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := stmt.Query(types.NewFloat(float64(50 * (g % 4))))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) == 0 {
					errs <- fmt.Errorf("goroutine %d: empty aggregate result", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
