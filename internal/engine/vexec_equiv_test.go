package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xnf/internal/types"
)

// equivCorpus is the golden row-vs-batch query corpus: every query runs
// through both executors and the results must agree exactly. It leans on
// the shapes the lowering pass touches — scans, filters (including NULL
// three-valued logic and selection-vector edge cases), projections,
// aggregates, limits — plus shapes that must fall back (joins, sorts,
// subqueries, unions, functions) so bridge boundaries are exercised too.
var equivCorpus = []string{
	// Plain scans and projections.
	"SELECT * FROM EMP",
	"SELECT ename, sal FROM EMP",
	"SELECT eno * 10 + 1, sal / 2 FROM EMP",
	"SELECT eno, -eno, eno - sal FROM EMP",
	// Filters: comparisons, boolean connectives, NULL semantics.
	"SELECT ename FROM EMP WHERE sal > 250",
	"SELECT ename FROM EMP WHERE sal >= 300 AND eno < 5",
	"SELECT ename FROM EMP WHERE edno = 1 OR edno = 3",
	"SELECT ename FROM EMP WHERE NOT (sal > 250)",
	"SELECT ename FROM EMP WHERE edno IS NULL",
	"SELECT ename FROM EMP WHERE edno IS NOT NULL AND sal < 450",
	"SELECT ename FROM EMP WHERE ename LIKE 'e%'",
	"SELECT ename FROM EMP WHERE ename LIKE '%3'",
	"SELECT ename FROM EMP WHERE sal BETWEEN 200 AND 400",
	// Selection-vector edge cases: nothing passes, everything passes.
	"SELECT ename FROM EMP WHERE sal > 10000",
	"SELECT ename FROM EMP WHERE sal > 0",
	"SELECT ename FROM EMP WHERE eno <> eno",
	// NULL propagation through expressions and predicates.
	"SELECT edno + 1 FROM EMP",
	"SELECT ename FROM EMP WHERE edno + 1 > 1",
	"SELECT ename FROM EMP WHERE edno > 0 OR sal > 450",
	// Index lookups (PK) with residual filters.
	"SELECT ename FROM EMP WHERE eno = 3",
	"SELECT ename FROM EMP WHERE eno = 3 AND sal > 1000",
	"SELECT ename FROM EMP WHERE eno = 99",
	// Aggregates: global, grouped, empty input, DISTINCT, NULL skipping.
	"SELECT COUNT(*) FROM EMP",
	"SELECT COUNT(edno) FROM EMP",
	"SELECT COUNT(*), SUM(sal), MIN(sal), MAX(sal), AVG(sal) FROM EMP",
	"SELECT COUNT(*) FROM EMP WHERE sal > 10000",
	"SELECT SUM(sal) FROM EMP WHERE sal > 10000",
	"SELECT edno, COUNT(*), SUM(sal) FROM EMP GROUP BY edno",
	"SELECT edno, AVG(sal) FROM EMP WHERE eno < 5 GROUP BY edno",
	"SELECT COUNT(DISTINCT edno) FROM EMP",
	"SELECT edno, COUNT(DISTINCT ename) FROM EMP GROUP BY edno",
	"SELECT edno, COUNT(*) FROM EMP GROUP BY edno HAVING COUNT(*) > 1",
	// LIMIT with and without ORDER BY (both paths preserve scan order).
	"SELECT ename FROM EMP LIMIT 2",
	"SELECT ename FROM EMP WHERE sal > 150 LIMIT 2",
	"SELECT ename FROM EMP ORDER BY sal DESC LIMIT 3",
	"SELECT ename FROM EMP LIMIT 0",
	// DISTINCT, ORDER BY (row fallbacks above batched scans).
	"SELECT DISTINCT edno FROM EMP",
	"SELECT ename FROM EMP ORDER BY ename DESC",
	// Joins and derived tables: batch legs under row join operators.
	"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno",
	"SELECT e.ename FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'",
	"SELECT d.dname, COUNT(*) FROM EMP e, DEPT d WHERE e.edno = d.dno GROUP BY d.dname",
	"SELECT a.dno FROM (SELECT dno FROM DEPT WHERE loc = 'ARC') a, (SELECT dno FROM DEPT WHERE loc = 'ARC') b WHERE a.dno = b.dno",
	// Subqueries (row path with batched inner fragments).
	"SELECT ename FROM EMP WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.dno = EMP.edno AND d.loc = 'ARC')",
	"SELECT ename FROM EMP WHERE edno IN (SELECT dno FROM DEPT WHERE loc = 'ARC')",
	"SELECT ename FROM EMP WHERE edno NOT IN (SELECT dno FROM DEPT WHERE loc = 'HQ')",
	"SELECT ename FROM EMP WHERE sal > (SELECT AVG(sal) FROM EMP)",
	// Unions.
	"SELECT ename FROM EMP WHERE sal < 200 UNION SELECT ename FROM EMP WHERE sal > 400",
	"SELECT edno FROM EMP UNION ALL SELECT dno FROM DEPT",
	// Scalar functions and CASE stay on the row path but sit above scans.
	"SELECT UPPER(ename), LENGTH(ename) FROM EMP WHERE sal > 100",
	"SELECT CASE WHEN sal > 300 THEN 'hi' ELSE 'lo' END FROM EMP",
}

// runBoth executes one query under the row executor and the batch engine
// and returns both result sets rendered as strings.
func runBoth(t *testing.T, db *Database, q string, args ...types.Value) (rowRes, batchRes []string, ordered bool) {
	t.Helper()
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()

	db.OptOptions.Vectorize = false
	r1, err := db.Query(q, args...)
	if err != nil {
		t.Fatalf("row executor %q: %v", q, err)
	}
	db.OptOptions.Vectorize = true
	r2, err := db.Query(q, args...)
	if err != nil {
		t.Fatalf("batch executor %q: %v", q, err)
	}
	for _, r := range r1.Rows {
		rowRes = append(rowRes, r.String())
	}
	for _, r := range r2.Rows {
		batchRes = append(batchRes, r.String())
	}
	up := strings.ToUpper(q)
	ordered = strings.Contains(up, "ORDER BY") || strings.Contains(up, "LIMIT")
	return rowRes, batchRes, ordered
}

// TestRowBatchEquivalence runs the corpus through both executors and
// diffs the results. ORDER BY / LIMIT queries compare position by
// position; the rest compare as multisets (join and hash orders are not
// part of the contract).
func TestRowBatchEquivalence(t *testing.T) {
	db := orgDB(t)
	for _, q := range equivCorpus {
		rowRes, batchRes, ordered := runBoth(t, db, q)
		if ordered {
			if len(rowRes) != len(batchRes) {
				t.Errorf("%q: row executor returned %d rows, batch %d", q, len(rowRes), len(batchRes))
				continue
			}
			for i := range rowRes {
				if rowRes[i] != batchRes[i] {
					t.Errorf("%q: row %d differs: row executor %q, batch %q", q, i, rowRes[i], batchRes[i])
					break
				}
			}
			continue
		}
		sortedEqual(t, batchRes, rowRes)
	}
}

// TestRowBatchEquivalencePrepared repeats the parameterized shapes through
// prepared statements, so the batch path is exercised with parameter
// frames and cloned cached plans.
func TestRowBatchEquivalencePrepared(t *testing.T) {
	db := orgDB(t)
	cases := []struct {
		q    string
		args [][]types.Value
	}{
		{"SELECT ename FROM EMP WHERE sal > ?", [][]types.Value{
			{types.NewFloat(250)}, {types.NewFloat(0)}, {types.NewFloat(1e6)},
		}},
		{"SELECT edno, COUNT(*) FROM EMP WHERE sal >= ? GROUP BY edno", [][]types.Value{
			{types.NewFloat(100)}, {types.NewFloat(400)},
		}},
		{"SELECT ename FROM EMP WHERE eno = ?", [][]types.Value{
			{types.NewInt(3)}, {types.NewInt(42)},
		}},
	}
	for _, c := range cases {
		for _, args := range c.args {
			rowRes, batchRes, _ := runBoth(t, db, c.q, args...)
			sortedEqual(t, batchRes, rowRes)
		}
	}
}

// TestRowBatchEquivalenceBigTable pushes both executors past several batch
// boundaries (multiple 1024-row chunks, partially selected tail batch) and
// checks a grouped aggregate and a limit suffix.
func TestRowBatchEquivalenceBigTable(t *testing.T) {
	db := Open()
	if err := db.ExecScript("CREATE TABLE BIG (id INT NOT NULL, g INT, v FLOAT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	td, err := db.Store().Table("BIG")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		g := types.NewInt(int64(i % 7))
		v := types.NewFloat(float64(i % 100))
		if i%31 == 0 {
			g = types.Null // NULL group keys must aggregate identically
		}
		if _, err := td.Insert(types.Row{types.NewInt(int64(i)), g, v}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		"SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM BIG GROUP BY g",
		"SELECT COUNT(*) FROM BIG WHERE v > 50",
		"SELECT id FROM BIG WHERE v = 99 AND g = 3",
		"SELECT id FROM BIG WHERE v > 97 LIMIT 2000",
		"SELECT id FROM BIG LIMIT 1500",
	} {
		rowRes, batchRes, ordered := runBoth(t, db, q)
		if ordered {
			if fmt.Sprint(rowRes) != fmt.Sprint(batchRes) {
				t.Errorf("%q: ordered results differ (%d vs %d rows)", q, len(rowRes), len(batchRes))
			}
			continue
		}
		sortedEqual(t, batchRes, rowRes)
	}
}

// TestRowBatchErrorParity pins down evaluation-order parity for errors:
// AND evaluates its right side wherever the left is not false — including
// NULL (unknown) left operands — so a query whose right side errors on
// such a row must fail identically on both executors.
func TestRowBatchErrorParity(t *testing.T) {
	db := orgDB(t) // EMP row e5 has edno NULL
	const q = "SELECT ename FROM EMP WHERE edno > 99 AND sal / (sal - sal) > 0"
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()
	db.OptOptions.Vectorize = false
	_, rowErr := db.Query(q)
	db.OptOptions.Vectorize = true
	_, batchErr := db.Query(q)
	if rowErr == nil || batchErr == nil {
		t.Fatalf("expected division-by-zero on both paths: row=%v batch=%v", rowErr, batchErr)
	}
	// And the guarded form must succeed on both.
	const guarded = "SELECT ename FROM EMP WHERE sal - sal <> 0 AND sal / (sal - sal) > 0"
	db.OptOptions.Vectorize = false
	if _, err := db.Query(guarded); err != nil {
		t.Fatalf("row executor evaluated a guarded division: %v", err)
	}
	db.OptOptions.Vectorize = true
	if _, err := db.Query(guarded); err != nil {
		t.Fatalf("batch executor evaluated a guarded division: %v", err)
	}
}

// TestRowBatchLimitLaziness pins down that LIMIT keeps projection
// expressions lazy on the batch path: an error in a projected expression
// of a row beyond the limit must not surface (the limit is pushed beneath
// the projection during lowering).
func TestRowBatchLimitLaziness(t *testing.T) {
	db := Open()
	if err := db.ExecScript("CREATE TABLE LZ (x INT); INSERT INTO LZ VALUES (5), (0);"); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT 10 / x FROM LZ LIMIT 1"
	prev := db.OptOptions
	defer func() { db.OptOptions = prev }()
	for _, vec := range []bool{false, true} {
		db.OptOptions.Vectorize = vec
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("vectorize=%v: %v (limit did not stay lazy)", vec, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
			t.Fatalf("vectorize=%v: rows = %v, want [2]", vec, res.Rows)
		}
	}
}

// TestVexecRaceConcurrentExecutions runs many concurrent executions of one
// cached batched plan (and one cached CO view) to prove the clone-per-
// execution story under the race detector: templates are shared, iterator
// state is private.
func TestVexecRaceConcurrentExecutions(t *testing.T) {
	db := orgDB(t)
	stmt, err := db.Prepare("SELECT edno, COUNT(*), SUM(sal) FROM EMP WHERE sal > ? GROUP BY edno")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := stmt.Query(types.NewFloat(float64(50 * (g % 4))))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) == 0 {
					errs <- fmt.Errorf("goroutine %d: empty aggregate result", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
