package engine

import (
	"fmt"
	"testing"

	"xnf/internal/colstore"
	"xnf/internal/types"
)

// nullDB builds a column table whose NULL distribution is segment-shaped:
// column nv is NULL only in the first segment, and column av is NULL
// everywhere except the first segment. 4 segments total.
func nullDB(t testing.TB) (*Database, int) {
	t.Helper()
	const segs = 4
	n := segs * colstore.SegRows
	db := Open()
	if err := db.ExecScript("CREATE TABLE NT (k INT NOT NULL, nv INT, av INT, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	td, err := db.Store().Table("NT")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		nv, av := types.NewInt(int64(i)), types.Null
		if i < colstore.SegRows {
			nv, av = types.Null, types.NewInt(int64(i))
		}
		if _, err := td.Insert(types.Row{types.NewInt(int64(i)), nv, av}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("ALTER TABLE NT SET STORAGE COLUMN"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db, segs
}

// TestZoneMapNullPruning: IS NULL prunes segments whose live null count is
// zero, IS NOT NULL prunes segments that are entirely NULL — and every
// query returns exactly the unpruned result.
func TestZoneMapNullPruning(t *testing.T) {
	db, segs := nullDB(t)
	cases := []struct {
		q         string
		minPruned int64
	}{
		// nv is NULL only in segment 0: the other 3 prune.
		{"SELECT COUNT(*) FROM NT WHERE nv IS NULL", int64(segs - 1)},
		// av is non-NULL only in segment 0: the other 3 prune.
		{"SELECT COUNT(av) FROM NT WHERE av IS NOT NULL", int64(segs - 1)},
		// nv IS NOT NULL refutes only segment 0.
		{"SELECT COUNT(*) FROM NT WHERE nv IS NOT NULL", 1},
		// Conjunct with a range: both prune terms apply.
		{"SELECT COUNT(*) FROM NT WHERE nv IS NULL AND k < 100", int64(segs - 1)},
		// No segment is all-NULL in k (NOT NULL column): nothing prunes.
		{"SELECT COUNT(*) FROM NT WHERE k IS NOT NULL", 0},
	}
	for _, tc := range cases {
		db.OptOptions.ZonePruning = false
		want, err := db.Query(tc.q)
		if err != nil {
			t.Fatalf("%q (pruning off): %v", tc.q, err)
		}
		db.OptOptions.ZonePruning = true
		got, err := db.Query(tc.q)
		if err != nil {
			t.Fatalf("%q (pruning on): %v", tc.q, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Errorf("%q: %d rows pruned vs %d unpruned", tc.q, len(got.Rows), len(want.Rows))
			continue
		}
		for i := range want.Rows {
			if got.Rows[i].String() != want.Rows[i].String() {
				t.Errorf("%q row %d: pruned %s, unpruned %s", tc.q, i, got.Rows[i], want.Rows[i])
			}
		}
		if got.Counters.SegmentsPruned < tc.minPruned {
			t.Errorf("%q: pruned %d segments, want >= %d", tc.q, got.Counters.SegmentsPruned, tc.minPruned)
		}
		if tc.minPruned == 0 && got.Counters.SegmentsPruned != 0 {
			t.Errorf("%q: unexpected pruning (%d segments)", tc.q, got.Counters.SegmentsPruned)
		}
	}
}

// TestNullPruningAfterDML: the per-segment null counts must track deletes,
// updates and revived slots exactly — after DML rewrites the NULL shape,
// IS NULL pruning must still return the unpruned answer.
func TestNullPruningAfterDML(t *testing.T) {
	db, _ := nullDB(t)
	// Delete all the NULL nv rows (segment 0), making nv IS NULL empty, and
	// NULL out one row in segment 2.
	if _, err := db.Exec(fmt.Sprintf("DELETE FROM NT WHERE k < %d", colstore.SegRows)); err != nil {
		t.Fatal(err)
	}
	target := 2*colstore.SegRows + 17
	if _, err := db.Exec(fmt.Sprintf("UPDATE NT SET nv = NULL WHERE k = %d", target)); err != nil {
		t.Fatal(err)
	}
	// Re-insert into the freed slots (revive path) with non-NULL nv.
	for i := 0; i < 100; i++ {
		if _, err := db.Exec("INSERT INTO NT VALUES (?, ?, ?)",
			types.NewInt(int64(1_000_000+i)), types.NewInt(int64(i)), types.Null); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		"SELECT COUNT(*) FROM NT WHERE nv IS NULL",
		"SELECT k FROM NT WHERE nv IS NULL ORDER BY k",
		"SELECT COUNT(*) FROM NT WHERE nv IS NOT NULL",
		"SELECT COUNT(*) FROM NT WHERE av IS NOT NULL",
	} {
		db.OptOptions.ZonePruning = false
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("%q (pruning off): %v", q, err)
		}
		db.OptOptions.ZonePruning = true
		got, err := db.Query(q)
		if err != nil {
			t.Fatalf("%q (pruning on): %v", q, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%q: %d rows pruned vs %d unpruned", q, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			if got.Rows[i].String() != want.Rows[i].String() {
				t.Fatalf("%q row %d: pruned %s, unpruned %s", q, i, got.Rows[i], want.Rows[i])
			}
		}
	}
	// The single NULL planted in segment 2 must be found (not pruned away).
	res, err := db.Query("SELECT k FROM NT WHERE nv IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != int64(target) {
		t.Fatalf("nv IS NULL found %v, want the one row k=%d", res.Rows, target)
	}
}
