package engine

import (
	"testing"
)

// TestZoneMapORPruning covers the OR-hull extension of the prune extractor:
// IN lists and OR'd BETWEEN ranges on the insertion-sorted key column must
// skip segments outside their bounding hull, while OR shapes that span
// different columns extract nothing — and every query must return exactly
// the unpruned result.
func TestZoneMapORPruning(t *testing.T) {
	db := typedDB(t, 40_000)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q          string
		wantPruned bool
	}{
		// IN list: hull [100, 300] — only the first segment can qualify.
		{"SELECT COUNT(*), SUM(f) FROM TT WHERE v IN (100, 200, 300)", true},
		// IN list containing NULL: the NULL branch can never be true and
		// must not widen (or break) the hull.
		{"SELECT COUNT(*) FROM TT WHERE v IN (150, NULL, 250)", true},
		// OR of BETWEEN ranges: hull [1000, 2200].
		{"SELECT COUNT(*) FROM TT WHERE (v BETWEEN 1000 AND 1200) OR (v BETWEEN 2000 AND 2200)", true},
		// OR of half-open ranges: only a shared upper bound survives.
		{"SELECT COUNT(*) FROM TT WHERE v < 100 OR (v >= 500 AND v < 600)", true},
		// Branches on different columns: no common bounded column, no hull.
		{"SELECT COUNT(*) FROM TT WHERE v < 100 OR g = 5", false},
		// One branch unbounded below: no lower hull; upper hull still cuts
		// the tail segments.
		{"SELECT COUNT(*) FROM TT WHERE v IN (10, 20) OR v < 5", true},
	}
	for _, tc := range cases {
		db.OptOptions.ZonePruning = false
		want, err := db.Query(tc.q)
		if err != nil {
			t.Fatalf("%q (pruning off): %v", tc.q, err)
		}
		db.OptOptions.ZonePruning = true
		got, err := db.Query(tc.q)
		if err != nil {
			t.Fatalf("%q (pruning on): %v", tc.q, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Errorf("%q: %d rows pruned vs %d unpruned", tc.q, len(got.Rows), len(want.Rows))
			continue
		}
		for i := range want.Rows {
			if got.Rows[i].String() != want.Rows[i].String() {
				t.Errorf("%q row %d: pruned %s, unpruned %s", tc.q, i, got.Rows[i], want.Rows[i])
			}
		}
		if tc.wantPruned && got.Counters.SegmentsPruned == 0 {
			t.Errorf("%q: expected zone-map pruning, 0 segments pruned", tc.q)
		}
		if !tc.wantPruned && got.Counters.SegmentsPruned != 0 {
			t.Errorf("%q: unexpected pruning (%d segments) from a non-hull OR", tc.q, got.Counters.SegmentsPruned)
		}
	}
}
