package exec

import (
	"fmt"
	"sort"
	"strings"

	"xnf/internal/types"
)

// AggSpec describes one aggregate computed by an AggPlan.
type AggSpec struct {
	Name     string // COUNT, SUM, AVG, MIN, MAX
	Star     bool   // COUNT(*)
	Distinct bool
	Arg      Expr // nil for COUNT(*)
}

// AggPlan is a hash aggregation: it groups its input on the group
// expressions and computes the aggregate specs per group. With no group
// expressions it is a global aggregate producing exactly one row even for
// empty input (SQL semantics).
type AggPlan struct {
	Child  Plan
	Groups []Expr
	Aggs   []AggSpec
	Cols   []Column

	out []types.Row
	pos int
}

// AggState accumulates one aggregate for one group: the SQL folding rules
// (NULL skipping, DISTINCT dedup, AVG as SUM/COUNT) in one place. Both the
// row executor's AggPlan and the batch engine's HashAggBatch fold through
// it, so the two executors cannot drift.
type AggState struct {
	name     string
	star     bool
	distinct bool
	count    int64
	sum      types.Value
	min      types.Value
	max      types.Value
	started  bool
	seen     map[uint64][]types.Value // for DISTINCT
}

// NewAggState returns a fresh accumulator for one aggregate function.
func NewAggState(name string, star, distinct bool) *AggState {
	s := &AggState{name: strings.ToUpper(name), star: star, distinct: distinct}
	if distinct {
		s.seen = make(map[uint64][]types.Value)
	}
	return s
}

// Add folds one input value (ignored for COUNT(*), which counts rows).
func (s *AggState) Add(v types.Value) {
	if s.star {
		s.count++
		return
	}
	if v.IsNull() {
		return // aggregates ignore NULLs
	}
	if s.distinct {
		h := v.Hash()
		for _, prev := range s.seen[h] {
			if types.Equal(prev, v) {
				return
			}
		}
		s.seen[h] = append(s.seen[h], v)
	}
	s.count++
	if !s.started {
		s.sum, s.min, s.max = v, v, v
		s.started = true
		return
	}
	if sum, err := types.Arith("+", s.sum, v); err == nil {
		s.sum = sum
	}
	if types.Compare(v, s.min) < 0 {
		s.min = v
	}
	if types.Compare(v, s.max) > 0 {
		s.max = v
	}
}

// AddInt folds one non-NULL INTEGER without boxing — the batch engine's
// typed aggregate kernels call it per element. Semantics are exactly
// Add(types.NewInt(v)): the inline sum matches types.Arith's int+int and
// float+int rules, and min/max keep the total order of types.Compare.
func (s *AggState) AddInt(v int64) {
	if s.star {
		s.count++
		return
	}
	if s.distinct {
		s.Add(types.NewInt(v))
		return
	}
	s.count++
	if !s.started {
		val := types.NewInt(v)
		s.sum, s.min, s.max = val, val, val
		s.started = true
		return
	}
	switch s.sum.T {
	case types.IntType:
		s.sum.I += v
	case types.FloatType:
		s.sum.F += float64(v)
	default:
		if sum, err := types.Arith("+", s.sum, types.NewInt(v)); err == nil {
			s.sum = sum
		}
	}
	if s.min.T == types.IntType {
		if v < s.min.I {
			s.min.I = v
		}
	} else if types.Compare(types.NewInt(v), s.min) < 0 {
		s.min = types.NewInt(v)
	}
	if s.max.T == types.IntType {
		if v > s.max.I {
			s.max.I = v
		}
	} else if types.Compare(types.NewInt(v), s.max) > 0 {
		s.max = types.NewInt(v)
	}
}

// AddFloat is AddInt's FLOAT counterpart: exactly Add(types.NewFloat(f)).
func (s *AggState) AddFloat(f float64) {
	if s.star {
		s.count++
		return
	}
	if s.distinct {
		s.Add(types.NewFloat(f))
		return
	}
	s.count++
	if !s.started {
		val := types.NewFloat(f)
		s.sum, s.min, s.max = val, val, val
		s.started = true
		return
	}
	switch s.sum.T {
	case types.FloatType:
		s.sum.F += f
	case types.IntType:
		// Arith promotes int+float to FLOAT; mirror it.
		s.sum = types.NewFloat(float64(s.sum.I) + f)
	default:
		if sum, err := types.Arith("+", s.sum, types.NewFloat(f)); err == nil {
			s.sum = sum
		}
	}
	if s.min.T == types.FloatType {
		if f < s.min.F {
			s.min.F = f
		}
	} else if types.Compare(types.NewFloat(f), s.min) < 0 {
		s.min = types.NewFloat(f)
	}
	if s.max.T == types.FloatType {
		if f > s.max.F {
			s.max.F = f
		}
	} else if types.Compare(types.NewFloat(f), s.max) > 0 {
		s.max = types.NewFloat(f)
	}
}

// Merge folds another accumulator of the same aggregate spec into s — the
// combine step of morsel-parallel aggregation, where each worker folds its
// morsels into private states that are merged at the end. DISTINCT states
// merge by re-adding the other side's distinct values, which unions the
// dedup sets and recomputes the derived count/sum/min/max in one pass.
func (s *AggState) Merge(o *AggState) {
	if s.star {
		s.count += o.count
		return
	}
	if s.distinct {
		// Map iteration order is nondeterministic; fold the other side's
		// distinct values in sorted order so floating-point sums stay
		// bit-reproducible across runs (the parallel scan's guarantee).
		vals := make([]types.Value, 0, len(o.seen))
		for _, vs := range o.seen {
			vals = append(vals, vs...)
		}
		sort.Slice(vals, func(i, j int) bool { return types.Compare(vals[i], vals[j]) < 0 })
		for _, v := range vals {
			s.Add(v)
		}
		return
	}
	s.count += o.count
	if !o.started {
		return
	}
	if !s.started {
		s.sum, s.min, s.max = o.sum, o.min, o.max
		s.started = true
		return
	}
	if sum, err := types.Arith("+", s.sum, o.sum); err == nil {
		s.sum = sum
	}
	if types.Compare(o.min, s.min) < 0 {
		s.min = o.min
	}
	if types.Compare(o.max, s.max) > 0 {
		s.max = o.max
	}
}

// Result finalizes the aggregate.
func (s *AggState) Result() types.Value {
	switch s.name {
	case "COUNT":
		return types.NewInt(s.count)
	case "SUM":
		if !s.started {
			return types.Null
		}
		return s.sum
	case "AVG":
		if !s.started || s.count == 0 {
			return types.Null
		}
		return types.NewFloat(s.sum.Float() / float64(s.count))
	case "MIN":
		if !s.started {
			return types.Null
		}
		return s.min
	case "MAX":
		if !s.started {
			return types.Null
		}
		return s.max
	default:
		return types.Null
	}
}

// Open implements Plan; the aggregation is computed eagerly.
func (a *AggPlan) Open(ctx *Ctx, params types.Row) error {
	if err := a.Child.Open(ctx, params); err != nil {
		return err
	}
	env := Env{Params: params, Ctx: ctx}
	type group struct {
		key    types.Row
		states []*AggState
	}
	groups := make(map[uint64][]*group)
	var order []*group // deterministic output order: first appearance
	newStates := func() []*AggState {
		states := make([]*AggState, len(a.Aggs))
		for i := range a.Aggs {
			states[i] = NewAggState(a.Aggs[i].Name, a.Aggs[i].Star, a.Aggs[i].Distinct)
		}
		return states
	}
	for {
		row, err := a.Child.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		env.Row = row
		key := make(types.Row, len(a.Groups))
		for i, g := range a.Groups {
			v, err := g.Eval(&env)
			if err != nil {
				return err
			}
			key[i] = v
		}
		h := hashKey(key)
		var grp *group
		for _, g := range groups[h] {
			if types.EqualRows(g.key, key) {
				grp = g
				break
			}
		}
		if grp == nil {
			grp = &group{key: key, states: newStates()}
			groups[h] = append(groups[h], grp)
			order = append(order, grp)
		}
		for i, spec := range a.Aggs {
			var v types.Value
			if !spec.Star {
				val, err := spec.Arg.Eval(&env)
				if err != nil {
					return err
				}
				v = val
			}
			grp.states[i].Add(v)
		}
	}
	if err := a.Child.Close(ctx); err != nil {
		return err
	}
	if len(order) == 0 && len(a.Groups) == 0 {
		// Global aggregate over empty input yields one row.
		order = append(order, &group{states: newStates()})
	}
	a.out = a.out[:0]
	for _, g := range order {
		row := make(types.Row, 0, len(g.key)+len(g.states))
		row = append(row, g.key...)
		for _, st := range g.states {
			row = append(row, st.Result())
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

// Next implements Plan.
func (a *AggPlan) Next(*Ctx) (types.Row, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, nil
}

// Close implements Plan.
func (a *AggPlan) Close(*Ctx) error {
	a.out = nil
	return nil
}

// Columns implements Plan.
func (a *AggPlan) Columns() []Column { return a.Cols }

// Explain implements Plan.
func (a *AggPlan) Explain(indent int) string {
	gs := make([]string, len(a.Groups))
	for i, g := range a.Groups {
		gs[i] = g.String()
	}
	as := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		if s.Star {
			as[i] = s.Name + "(*)"
		} else if s.Distinct {
			as[i] = fmt.Sprintf("%s(DISTINCT %s)", s.Name, s.Arg.String())
		} else {
			as[i] = fmt.Sprintf("%s(%s)", s.Name, s.Arg.String())
		}
	}
	return fmt.Sprintf("%sAgg groups=(%s) aggs=(%s)\n%s", pad(indent),
		strings.Join(gs, ", "), strings.Join(as, ", "), a.Child.Explain(indent+1))
}
