package exec

import "fmt"

// ClonePlan deep-copies a plan tree's structure so the clone can run
// concurrently with (and independently of) the original. Plans carry their
// iterator state in struct fields, so a compiled plan is reusable but not
// shareable between executions in flight; the plan cache hands every
// execution a private clone of the cached template.
//
// Shared nodes of a plan DAG (a SpoolPlan child consumed by several
// outputs) stay shared in the clone — the memo map preserves object
// identity. Expressions are immutable with one exception, Subplan, which
// embeds a nested plan; cloneExpr rebuilds every expression node on the
// path to a Subplan and shares the rest.
func ClonePlan(p Plan) Plan {
	return (&cloner{plans: make(map[Plan]Plan)}).plan(p)
}

// SelfCloner lets plan nodes defined outside this package (the vexec
// batch-pipeline operators) participate in ClonePlan: the node deep-copies
// itself, using cloneChild for any embedded row plans so DAG sharing and
// memoization stay intact.
type SelfCloner interface {
	Plan
	CloneWith(cloneChild func(Plan) Plan) Plan
}

// CloneExpr deep-copies an expression for an independent execution. Only
// Subplan-carrying trees are rebuilt (a Subplan embeds a stateful nested
// plan); pure expression trees are returned as-is, so the call is free for
// the common case. The prepared-DML path uses it to reuse compiled
// predicates and assignments across executions.
func CloneExpr(e Expr) Expr {
	return (&cloner{plans: make(map[Plan]Plan)}).expr(e)
}

// ExprHasSubplan reports whether the expression tree embeds a Subplan.
// The batch lowering pass refuses such expressions: subplans carry their
// own iterator state and stay on the row path.
func ExprHasSubplan(e Expr) bool { return containsSubplan(e) }

type cloner struct {
	plans map[Plan]Plan
}

func (c *cloner) plan(p Plan) Plan {
	if p == nil {
		return nil
	}
	if dup, ok := c.plans[p]; ok {
		return dup
	}
	var dup Plan
	switch n := p.(type) {
	case *ScanPlan:
		dup = &ScanPlan{Table: n.Table, Filter: c.expr(n.Filter), Cols: n.Cols}
	case *IndexLookupPlan:
		dup = &IndexLookupPlan{Table: n.Table, Index: n.Index, Keys: c.exprs(n.Keys), Filter: c.expr(n.Filter), Cols: n.Cols}
	case *ValuesPlan:
		rows := make([][]Expr, len(n.Rows))
		for i, r := range n.Rows {
			rows[i] = c.exprs(r)
		}
		dup = &ValuesPlan{Rows: rows, Cols: n.Cols}
	case *FilterPlan:
		dup = &FilterPlan{Child: c.plan(n.Child), Pred: c.expr(n.Pred)}
	case *ProjectPlan:
		dup = &ProjectPlan{Child: c.plan(n.Child), Exprs: c.exprs(n.Exprs), Cols: n.Cols}
	case *DistinctPlan:
		dup = &DistinctPlan{Child: c.plan(n.Child)}
	case *SortPlan:
		dup = &SortPlan{Child: c.plan(n.Child), Keys: c.exprs(n.Keys), Desc: n.Desc}
	case *LimitPlan:
		dup = &LimitPlan{Child: c.plan(n.Child), N: n.N}
	case *UnionPlan:
		children := make([]Plan, len(n.Children))
		for i, ch := range n.Children {
			children[i] = c.plan(ch)
		}
		dup = &UnionPlan{Children: children, Distinct: n.Distinct}
	case *SpoolPlan:
		dup = &SpoolPlan{ID: n.ID, Child: c.plan(n.Child)}
	case *NLJoinPlan:
		dup = &NLJoinPlan{Left: c.plan(n.Left), Right: c.plan(n.Right), Pred: c.expr(n.Pred), RightParams: c.exprs(n.RightParams)}
	case *HashJoinPlan:
		dup = &HashJoinPlan{Left: c.plan(n.Left), Right: c.plan(n.Right), LeftKeys: c.exprs(n.LeftKeys), RightKeys: c.exprs(n.RightKeys), Residual: c.expr(n.Residual)}
	case *AggPlan:
		aggs := make([]AggSpec, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = AggSpec{Name: a.Name, Star: a.Star, Distinct: a.Distinct, Arg: c.expr(a.Arg)}
		}
		dup = &AggPlan{Child: c.plan(n.Child), Groups: c.exprs(n.Groups), Aggs: aggs, Cols: n.Cols}
	case SelfCloner:
		dup = n.CloneWith(c.plan)
	default:
		panic(fmt.Sprintf("exec: ClonePlan: unknown plan type %T", p))
	}
	c.plans[p] = dup
	return dup
}

// expr clones an expression: nodes that contain (or are) a Subplan are
// rebuilt, everything else is shared — Slot, Param, TailParam, Const and
// pure operator trees are stateless and safe to share between executions.
func (c *cloner) expr(e Expr) Expr {
	if e == nil || !containsSubplan(e) {
		return e
	}
	switch n := e.(type) {
	case *Subplan:
		return &Subplan{
			ID: n.ID, Mode: n.Mode, Plan: c.plan(n.Plan),
			Params: c.exprs(n.Params), Hashed: n.Hashed,
			Probe: c.exprs(n.Probe), Build: c.exprs(n.Build),
			InStyle: n.InStyle,
		}
	case *Bin:
		return &Bin{Op: n.Op, L: c.expr(n.L), R: c.expr(n.R)}
	case *Un:
		return &Un{Op: n.Op, X: c.expr(n.X)}
	case *ScalarFunc:
		return &ScalarFunc{Name: n.Name, Args: c.exprs(n.Args)}
	case *CaseExpr:
		whens := make([]CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			whens[i] = CaseWhen{Cond: c.expr(w.Cond), Result: c.expr(w.Result)}
		}
		return &CaseExpr{Whens: whens, Else: c.expr(n.Else)}
	default:
		return e
	}
}

func (c *cloner) exprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = c.expr(e)
	}
	return out
}

// containsSubplan reports whether the expression tree holds a Subplan.
func containsSubplan(e Expr) bool {
	switch n := e.(type) {
	case nil:
		return false
	case *Subplan:
		return true
	case *Bin:
		return containsSubplan(n.L) || containsSubplan(n.R)
	case *Un:
		return containsSubplan(n.X)
	case *ScalarFunc:
		for _, a := range n.Args {
			if containsSubplan(a) {
				return true
			}
		}
		return false
	case *CaseExpr:
		for _, w := range n.Whens {
			if containsSubplan(w.Cond) || containsSubplan(w.Result) {
				return true
			}
		}
		return containsSubplan(n.Else)
	default:
		return false
	}
}
