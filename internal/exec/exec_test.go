package exec

import (
	"sort"
	"testing"

	"xnf/internal/catalog"
	"xnf/internal/storage"
	"xnf/internal/types"
)

func testStore(t testing.TB) *storage.Store {
	t.Helper()
	s := storage.NewStore(catalog.New())
	if err := s.CreateTable(&catalog.Table{
		Name: "T",
		Columns: []catalog.Column{
			{Name: "a", Type: types.IntType},
			{Name: "b", Type: types.StringType},
		},
	}); err != nil {
		t.Fatal(err)
	}
	td, _ := s.Table("T")
	for i := int64(1); i <= 5; i++ {
		name := "x"
		if i%2 == 0 {
			name = "y"
		}
		td.Insert(types.Row{types.NewInt(i), types.NewString(name)})
	}
	return s
}

func collect(t *testing.T, s *storage.Store, p Plan) []types.Row {
	t.Helper()
	rows, err := Collect(NewCtx(s), p)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func scanT() *ScanPlan {
	return &ScanPlan{Table: "T", Cols: []Column{{Name: "a", Type: types.IntType}, {Name: "b", Type: types.StringType}}}
}

func TestScanAndFilter(t *testing.T) {
	s := testStore(t)
	rows := collect(t, s, scanT())
	if len(rows) != 5 {
		t.Fatalf("scan = %d rows", len(rows))
	}
	f := &FilterPlan{Child: scanT(), Pred: &Bin{Op: ">", L: &Slot{Idx: 0}, R: &Const{V: types.NewInt(3)}}}
	rows = collect(t, s, f)
	if len(rows) != 2 {
		t.Fatalf("filter = %d rows", len(rows))
	}
}

func TestProjectAndExprs(t *testing.T) {
	s := testStore(t)
	p := &ProjectPlan{
		Child: scanT(),
		Exprs: []Expr{
			&Bin{Op: "*", L: &Slot{Idx: 0}, R: &Const{V: types.NewInt(10)}},
			&ScalarFunc{Name: "UPPER", Args: []Expr{&Slot{Idx: 1}}},
			&CaseExpr{Whens: []CaseWhen{{
				Cond:   &Bin{Op: "=", L: &Slot{Idx: 1}, R: &Const{V: types.NewString("x")}},
				Result: &Const{V: types.NewInt(1)},
			}}, Else: &Const{V: types.NewInt(0)}},
		},
		Cols: []Column{{Name: "a10"}, {Name: "ub"}, {Name: "isx"}},
	}
	rows := collect(t, s, p)
	if rows[0].String() != "10|X|1" || rows[1].String() != "20|Y|0" {
		t.Fatalf("project rows = %v", rows)
	}
}

func TestSortLimitDistinct(t *testing.T) {
	s := testStore(t)
	sorted := &SortPlan{Child: scanT(), Keys: []Expr{&Slot{Idx: 0}}, Desc: []bool{true}}
	rows := collect(t, s, sorted)
	if rows[0][0].I != 5 || rows[4][0].I != 1 {
		t.Fatalf("sort desc = %v", rows)
	}
	lim := &LimitPlan{Child: &SortPlan{Child: scanT(), Keys: []Expr{&Slot{Idx: 0}}}, N: 2}
	rows = collect(t, s, lim)
	if len(rows) != 2 || rows[0][0].I != 1 {
		t.Fatalf("limit = %v", rows)
	}
	dist := &DistinctPlan{Child: &ProjectPlan{
		Child: scanT(),
		Exprs: []Expr{&Slot{Idx: 1}},
		Cols:  []Column{{Name: "b"}},
	}}
	rows = collect(t, s, dist)
	if len(rows) != 2 {
		t.Fatalf("distinct = %v", rows)
	}
}

func TestNLJoinAndHashJoin(t *testing.T) {
	s := testStore(t)
	pred := &Bin{Op: "=", L: &Slot{Idx: 1}, R: &Slot{Idx: 3}} // t1.b = t2.b
	nl := &NLJoinPlan{Left: scanT(), Right: scanT(), Pred: pred}
	nlRows := collect(t, s, nl)
	hj := &HashJoinPlan{
		Left: scanT(), Right: scanT(),
		LeftKeys: []Expr{&Slot{Idx: 1}}, RightKeys: []Expr{&Slot{Idx: 1}},
	}
	hjRows := collect(t, s, hj)
	// 3 x's and 2 y's → 9 + 4 = 13 pairs.
	if len(nlRows) != 13 || len(hjRows) != 13 {
		t.Fatalf("nl = %d, hash = %d, want 13", len(nlRows), len(hjRows))
	}
	a := rowsToStrings(nlRows)
	b := rowsToStrings(hjRows)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("join strategies disagree at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func rowsToStrings(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func TestHashJoinNullKeys(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("T")
	td.Insert(types.Row{types.NewInt(99), types.Null})
	hj := &HashJoinPlan{
		Left: scanT(), Right: scanT(),
		LeftKeys: []Expr{&Slot{Idx: 1}}, RightKeys: []Expr{&Slot{Idx: 1}},
	}
	rows := collect(t, s, hj)
	for _, r := range rows {
		if r[1].IsNull() || r[3].IsNull() {
			t.Fatal("NULL keys must not join")
		}
	}
}

func TestAggPlan(t *testing.T) {
	s := testStore(t)
	agg := &AggPlan{
		Child:  scanT(),
		Groups: []Expr{&Slot{Idx: 1}},
		Aggs: []AggSpec{
			{Name: "COUNT", Star: true},
			{Name: "SUM", Arg: &Slot{Idx: 0}},
			{Name: "MIN", Arg: &Slot{Idx: 0}},
			{Name: "MAX", Arg: &Slot{Idx: 0}},
			{Name: "AVG", Arg: &Slot{Idx: 0}},
		},
		Cols: []Column{{Name: "b"}, {Name: "n"}, {Name: "s"}, {Name: "mn"}, {Name: "mx"}, {Name: "av"}},
	}
	rows := collect(t, s, agg)
	got := rowsToStrings(rows)
	want := []string{"x|3|9|1|5|3", "y|2|6|2|4|3"}
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("agg rows = %v", got)
		}
	}
	// Global aggregate over empty input: one row.
	empty := &AggPlan{
		Child: &FilterPlan{Child: scanT(), Pred: &Const{V: types.NewBool(false)}},
		Aggs:  []AggSpec{{Name: "COUNT", Star: true}, {Name: "SUM", Arg: &Slot{Idx: 0}}},
		Cols:  []Column{{Name: "n"}, {Name: "s"}},
	}
	rows = collect(t, s, empty)
	if len(rows) != 1 || rows[0].String() != "0|NULL" {
		t.Fatalf("empty agg = %v", rows)
	}
}

func TestAggDistinct(t *testing.T) {
	s := testStore(t)
	agg := &AggPlan{
		Child: scanT(),
		Aggs:  []AggSpec{{Name: "COUNT", Distinct: true, Arg: &Slot{Idx: 1}}},
		Cols:  []Column{{Name: "n"}},
	}
	rows := collect(t, s, agg)
	if rows[0][0].I != 2 {
		t.Fatalf("count distinct = %v", rows[0])
	}
}

func TestUnionPlan(t *testing.T) {
	s := testStore(t)
	proj := func() Plan {
		return &ProjectPlan{Child: scanT(), Exprs: []Expr{&Slot{Idx: 1}}, Cols: []Column{{Name: "b"}}}
	}
	all := &UnionPlan{Children: []Plan{proj(), proj()}}
	if rows := collect(t, s, all); len(rows) != 10 {
		t.Fatalf("union all = %d", len(rows))
	}
	dist := &UnionPlan{Children: []Plan{proj(), proj()}, Distinct: true}
	if rows := collect(t, s, dist); len(rows) != 2 {
		t.Fatalf("union distinct = %d", len(rows))
	}
}

func TestSpoolSharing(t *testing.T) {
	s := testStore(t)
	ctx := NewCtx(s)
	mk := func() Plan { return &SpoolPlan{ID: 7, Child: scanT()} }
	p1, p2 := mk(), mk()
	r1, err := Collect(ctx, p1)
	if err != nil {
		t.Fatal(err)
	}
	scans := ctx.Counters.RowsScanned
	r2, err := Collect(ctx, p2)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Counters.RowsScanned != scans {
		t.Error("second spool consumer re-scanned the table")
	}
	if ctx.Counters.SpoolMaterial != 1 {
		t.Errorf("spool materialized %d times", ctx.Counters.SpoolMaterial)
	}
	if len(r1) != len(r2) {
		t.Error("spool replay mismatch")
	}
}

func TestSubplanRerunVsHashed(t *testing.T) {
	s := testStore(t)
	// EXISTS (SELECT … FROM T t2 WHERE t2.a = outer.a): via rerun and via
	// hashed, both as a filter predicate over a scan.
	mkSub := func(hashed bool) *Subplan {
		sub := &Subplan{
			ID:   41,
			Mode: ModeExists,
			Plan: &FilterPlan{Child: scanT(), Pred: &Bin{Op: "<", L: &Slot{Idx: 0}, R: &Const{V: types.NewInt(3)}}},
		}
		if hashed {
			sub.ID = 42
			sub.Hashed = true
			sub.Probe = []Expr{&Slot{Idx: 0}}
			sub.Build = []Expr{&Slot{Idx: 0}}
		} else {
			sub.Probe = []Expr{&Slot{Idx: 0}}
			sub.Build = []Expr{&Slot{Idx: 0}}
		}
		return sub
	}
	for _, hashed := range []bool{false, true} {
		f := &FilterPlan{Child: scanT(), Pred: mkSub(hashed)}
		rows := collect(t, s, f)
		if len(rows) != 2 { // a ∈ {1,2}
			t.Fatalf("hashed=%v rows=%d", hashed, len(rows))
		}
	}
}

func TestSubplanScalar(t *testing.T) {
	s := testStore(t)
	// Scalar subquery returning MAX(a) — uncorrelated, hashed (cached).
	scalar := &Subplan{
		ID:   50,
		Mode: ModeScalar,
		Plan: &AggPlan{Child: scanT(), Aggs: []AggSpec{{Name: "MAX", Arg: &Slot{Idx: 0}}}, Cols: []Column{{Name: "m"}}},
	}
	f := &FilterPlan{Child: scanT(), Pred: &Bin{Op: "=", L: &Slot{Idx: 0}, R: scalar}}
	rows := collect(t, s, f)
	if len(rows) != 1 || rows[0][0].I != 5 {
		t.Fatalf("scalar subplan rows = %v", rows)
	}
}

func TestThreeValuedLogicInPreds(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("T")
	td.Insert(types.Row{types.Null, types.NewString("z")})
	// a > 3 is UNKNOWN for NULL → excluded.
	f := &FilterPlan{Child: scanT(), Pred: &Bin{Op: ">", L: &Slot{Idx: 0}, R: &Const{V: types.NewInt(0)}}}
	rows := collect(t, s, f)
	if len(rows) != 5 {
		t.Fatalf("NULL row leaked through predicate: %d", len(rows))
	}
	// IS NULL finds it.
	f2 := &FilterPlan{Child: scanT(), Pred: &Un{Op: "ISNULL", X: &Slot{Idx: 0}}}
	rows = collect(t, s, f2)
	if len(rows) != 1 {
		t.Fatalf("IS NULL = %d", len(rows))
	}
}

func TestIndexLookupPlan(t *testing.T) {
	s := testStore(t)
	if err := s.CreateIndex(&catalog.Index{Name: "ta", Table: "T", Columns: []string{"a"}, Kind: catalog.HashIndex}); err != nil {
		t.Fatal(err)
	}
	p := &IndexLookupPlan{
		Table: "T", Index: "ta",
		Keys: []Expr{&Const{V: types.NewInt(3)}},
		Cols: []Column{{Name: "a"}, {Name: "b"}},
	}
	rows := collect(t, s, p)
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("index lookup = %v", rows)
	}
}

func TestExplainNonEmpty(t *testing.T) {
	plans := []Plan{
		scanT(),
		&FilterPlan{Child: scanT(), Pred: &Const{V: types.NewBool(true)}},
		&NLJoinPlan{Left: scanT(), Right: scanT()},
		&HashJoinPlan{Left: scanT(), Right: scanT(), LeftKeys: []Expr{&Slot{Idx: 0}}, RightKeys: []Expr{&Slot{Idx: 0}}},
		&AggPlan{Child: scanT(), Aggs: []AggSpec{{Name: "COUNT", Star: true}}},
		&SortPlan{Child: scanT(), Keys: []Expr{&Slot{Idx: 0}}},
		&UnionPlan{Children: []Plan{scanT(), scanT()}},
		&SpoolPlan{ID: 1, Child: scanT()},
		&LimitPlan{Child: scanT(), N: 1},
		&DistinctPlan{Child: scanT()},
	}
	for _, p := range plans {
		if p.Explain(0) == "" {
			t.Errorf("%T has empty explain", p)
		}
	}
}
