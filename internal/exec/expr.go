// Package exec is the query evaluation system (QES): demand-driven,
// pipelined iterators over physical plans — the paper's "table queue
// evaluation" (Sect. 3.1). Each operator interprets one plan node, taking
// tuple streams in and producing a tuple stream out. Plans are produced
// from QGM by internal/opt.
package exec

import (
	"fmt"
	"strings"

	"xnf/internal/types"
)

// Env is the evaluation environment of an expression: the current input
// row of the operator and the parameter frame passed from an enclosing
// plan (correlated subqueries, index-join key bindings).
type Env struct {
	Row    types.Row
	Params types.Row
	Ctx    *Ctx
}

// Expr is a compiled runtime expression.
type Expr interface {
	Eval(env *Env) (types.Value, error)
	String() string
}

// Slot reads column Idx of the operator's current input row.
type Slot struct {
	Idx  int
	Name string
}

// Eval implements Expr.
func (s *Slot) Eval(env *Env) (types.Value, error) {
	if s.Idx >= len(env.Row) {
		return types.Null, fmt.Errorf("exec: slot %d out of range (row width %d)", s.Idx, len(env.Row))
	}
	return env.Row[s.Idx], nil
}

func (s *Slot) String() string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("$%d", s.Idx)
}

// Param reads column Idx of the current parameter frame.
type Param struct {
	Idx  int
	Name string
}

// Eval implements Expr.
func (p *Param) Eval(env *Env) (types.Value, error) {
	if p.Idx >= len(env.Params) {
		return types.Null, fmt.Errorf("exec: parameter %d out of range (frame width %d)", p.Idx, len(env.Params))
	}
	return env.Params[p.Idx], nil
}

func (p *Param) String() string { return fmt.Sprintf("?%d(%s)", p.Idx, p.Name) }

// TailParam reads the parameter frame from the end: Back=0 is the last
// value. Nested-loop joins append their per-row bindings to the frame, so
// operators directly beneath a rebinding join (index lookups keyed by the
// driving row) address those bindings tail-relative, which stays correct
// however wide the enclosing subquery frame is.
type TailParam struct {
	Back int
	Name string
}

// Eval implements Expr.
func (p *TailParam) Eval(env *Env) (types.Value, error) {
	idx := len(env.Params) - 1 - p.Back
	if idx < 0 {
		return types.Null, fmt.Errorf("exec: tail parameter %d out of range (frame width %d)", p.Back, len(env.Params))
	}
	return env.Params[idx], nil
}

func (p *TailParam) String() string { return fmt.Sprintf("?tail%d(%s)", p.Back, p.Name) }

// Const is a literal.
type Const struct {
	V types.Value
}

// Eval implements Expr.
func (c *Const) Eval(*Env) (types.Value, error) { return c.V, nil }

func (c *Const) String() string { return c.V.SQLLiteral() }

// Bin applies a binary operator with SQL three-valued logic for the
// logical and comparison operators.
type Bin struct {
	Op   string
	L, R Expr
}

// Eval implements Expr.
func (b *Bin) Eval(env *Env) (types.Value, error) {
	switch b.Op {
	case "AND":
		lv, err := b.L.Eval(env)
		if err != nil {
			return types.Null, err
		}
		lt := types.TruthOf(lv)
		if lt == types.False {
			return types.NewBool(false), nil
		}
		rv, err := b.R.Eval(env)
		if err != nil {
			return types.Null, err
		}
		return lt.And(types.TruthOf(rv)).ToValue(), nil
	case "OR":
		lv, err := b.L.Eval(env)
		if err != nil {
			return types.Null, err
		}
		lt := types.TruthOf(lv)
		if lt == types.True {
			return types.NewBool(true), nil
		}
		rv, err := b.R.Eval(env)
		if err != nil {
			return types.Null, err
		}
		return lt.Or(types.TruthOf(rv)).ToValue(), nil
	}
	lv, err := b.L.Eval(env)
	if err != nil {
		return types.Null, err
	}
	rv, err := b.R.Eval(env)
	if err != nil {
		return types.Null, err
	}
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		t, err := types.CompareTri(b.Op, lv, rv)
		if err != nil {
			return types.Null, err
		}
		return t.ToValue(), nil
	case "LIKE":
		t, err := types.Like(lv, rv)
		if err != nil {
			return types.Null, err
		}
		return t.ToValue(), nil
	default:
		return types.Arith(b.Op, lv, rv)
	}
}

func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L.String(), b.Op, b.R.String())
}

// Un applies NOT, unary minus, ISNULL or ISNOTNULL.
type Un struct {
	Op string
	X  Expr
}

// Eval implements Expr.
func (u *Un) Eval(env *Env) (types.Value, error) {
	v, err := u.X.Eval(env)
	if err != nil {
		return types.Null, err
	}
	switch u.Op {
	case "NOT":
		return types.TruthOf(v).Not().ToValue(), nil
	case "-":
		return types.Neg(v)
	case "ISNULL":
		return types.NewBool(v.IsNull()), nil
	case "ISNOTNULL":
		return types.NewBool(!v.IsNull()), nil
	default:
		return types.Null, fmt.Errorf("exec: unknown unary operator %q", u.Op)
	}
}

func (u *Un) String() string { return fmt.Sprintf("%s(%s)", u.Op, u.X.String()) }

// ScalarFunc applies a built-in scalar function.
type ScalarFunc struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (f *ScalarFunc) Eval(env *Env) (types.Value, error) {
	args := make([]types.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(env)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	switch strings.ToUpper(f.Name) {
	case "UPPER":
		return types.Upper(args[0])
	case "LOWER":
		return types.Lower(args[0])
	case "LENGTH":
		return types.Length(args[0])
	case "ABS":
		return types.Abs(args[0])
	default:
		return types.Null, fmt.Errorf("exec: unknown scalar function %s", f.Name)
	}
}

func (f *ScalarFunc) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(args, ", "))
}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one arm.
type CaseWhen struct {
	Cond, Result Expr
}

// Eval implements Expr.
func (c *CaseExpr) Eval(env *Env) (types.Value, error) {
	for _, w := range c.Whens {
		v, err := w.Cond.Eval(env)
		if err != nil {
			return types.Null, err
		}
		if types.TruthOf(v) == types.True {
			return w.Result.Eval(env)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(env)
	}
	return types.Null, nil
}

func (c *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond.String(), w.Result.String())
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// EvalPred evaluates an expression as a predicate (NULL counts as false).
func EvalPred(e Expr, env *Env) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	return types.TruthOf(v) == types.True, nil
}

// AndExprs conjoins compiled predicates; nil means always-true.
func AndExprs(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &Bin{Op: "AND", L: out, R: p}
		}
	}
	return out
}
