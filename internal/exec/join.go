package exec

import (
	"fmt"
	"strings"

	"xnf/internal/types"
)

// NLJoinPlan is a nested-loop join. For every left row it re-opens the
// right subtree with the left row appended to the parameter frame, which
// is how correlated access paths (index lookups keyed by the outer row)
// receive their bindings.
type NLJoinPlan struct {
	Left, Right Plan
	Pred        Expr // evaluated over the concatenated row
	// RightParams, when non-nil, are evaluated against the current left
	// row and passed as the right subtree's parameter frame (appended to
	// the incoming frame). When nil the right side is re-opened with the
	// incoming frame unchanged.
	RightParams []Expr

	params  types.Row
	curLeft types.Row
	opened  bool
	iter    int
}

// Open implements Plan.
func (j *NLJoinPlan) Open(ctx *Ctx, params types.Row) error {
	j.params = params
	j.curLeft = nil
	j.opened = false
	j.iter = 0
	return j.Left.Open(ctx, params)
}

// Next implements Plan.
func (j *NLJoinPlan) Next(ctx *Ctx) (types.Row, error) {
	env := Env{Params: j.params, Ctx: ctx}
	for {
		// The scans under a cross join are often spooled (materialized
		// once, replayed from memory), so the scan-level interrupt poll
		// never fires during the quadratic replay. Poll here too: this
		// loop is the hot path of every nested-loop shape.
		j.iter++
		if j.iter&1023 == 0 {
			if err := ctx.Interrupted(); err != nil {
				return nil, err
			}
		}
		if j.curLeft == nil {
			left, err := j.Left.Next(ctx)
			if err != nil {
				return nil, err
			}
			if left == nil {
				return nil, nil
			}
			j.curLeft = left
			rp := j.params
			if j.RightParams != nil {
				env.Row = left
				frame := make(types.Row, 0, len(j.params)+len(j.RightParams))
				frame = append(frame, j.params...)
				for _, e := range j.RightParams {
					v, err := e.Eval(&env)
					if err != nil {
						return nil, err
					}
					frame = append(frame, v)
				}
				rp = frame
			}
			if j.opened {
				if err := j.Right.Close(ctx); err != nil {
					return nil, err
				}
			}
			if err := j.Right.Open(ctx, rp); err != nil {
				return nil, err
			}
			j.opened = true
		}
		right, err := j.Right.Next(ctx)
		if err != nil {
			return nil, err
		}
		if right == nil {
			j.curLeft = nil
			continue
		}
		joined := j.curLeft.Concat(right)
		env.Row = joined
		ok, err := EvalPred(j.Pred, &env)
		if err != nil {
			return nil, err
		}
		if ok {
			return joined, nil
		}
	}
}

// Close implements Plan.
func (j *NLJoinPlan) Close(ctx *Ctx) error {
	var first error
	if err := j.Left.Close(ctx); err != nil {
		first = err
	}
	if j.opened {
		if err := j.Right.Close(ctx); err != nil && first == nil {
			first = err
		}
		j.opened = false
	}
	return first
}

// Columns implements Plan.
func (j *NLJoinPlan) Columns() []Column {
	return append(append([]Column{}, j.Left.Columns()...), j.Right.Columns()...)
}

// Explain implements Plan.
func (j *NLJoinPlan) Explain(indent int) string {
	p := ""
	if j.Pred != nil {
		p = " on " + j.Pred.String()
	}
	rebind := ""
	if j.RightParams != nil {
		keys := make([]string, len(j.RightParams))
		for i, e := range j.RightParams {
			keys[i] = e.String()
		}
		rebind = fmt.Sprintf(" rebind=(%s)", strings.Join(keys, ", "))
	}
	return fmt.Sprintf("%sNLJoin%s%s\n%s%s", pad(indent), p, rebind,
		j.Left.Explain(indent+1), j.Right.Explain(indent+1))
}

// HashJoinPlan is an equi-join: the right (build) side is hashed on its
// keys, the left (probe) side streams.
type HashJoinPlan struct {
	Left, Right Plan
	LeftKeys    []Expr // over left rows
	RightKeys   []Expr // over right rows
	Residual    Expr   // over concatenated rows

	params  types.Row
	table   map[uint64][]types.Row
	curLeft types.Row
	curKey  types.Row
	bucket  []types.Row
	bpos    int
}

// Open implements Plan.
func (j *HashJoinPlan) Open(ctx *Ctx, params types.Row) error {
	j.params = params
	j.curLeft = nil
	j.bucket = nil
	j.table = make(map[uint64][]types.Row)
	if err := j.Right.Open(ctx, params); err != nil {
		return err
	}
	env := Env{Params: params, Ctx: ctx}
	built := int64(0)
	for {
		row, err := j.Right.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		env.Row = row
		key := make(types.Row, len(j.RightKeys))
		null := false
		for i, k := range j.RightKeys {
			v, err := k.Eval(&env)
			if err != nil {
				return err
			}
			if v.IsNull() {
				null = true
			}
			key[i] = v
		}
		if null {
			continue // NULL keys never join
		}
		h := hashKey(key)
		j.table[h] = append(j.table[h], append(key, row...))
		built++
	}
	add(&ctx.Counters.HashBuilds, 1)
	add(&ctx.Counters.JoinBuildRows, built)
	if err := j.Right.Close(ctx); err != nil {
		return err
	}
	return j.Left.Open(ctx, params)
}

func hashKey(key types.Row) uint64 {
	ords := make([]int, len(key))
	for i := range ords {
		ords[i] = i
	}
	return key.Hash(ords)
}

// Next implements Plan.
func (j *HashJoinPlan) Next(ctx *Ctx) (types.Row, error) {
	env := Env{Params: j.params, Ctx: ctx}
	nkeys := len(j.RightKeys)
	for {
		for j.bpos < len(j.bucket) {
			entry := j.bucket[j.bpos]
			j.bpos++
			ekey, erow := entry[:nkeys], entry[nkeys:]
			if !types.EqualRows(ekey, j.curKey) {
				continue
			}
			joined := j.curLeft.Concat(erow)
			env.Row = joined
			ok, err := EvalPred(j.Residual, &env)
			if err != nil {
				return nil, err
			}
			if ok {
				return joined, nil
			}
		}
		left, err := j.Left.Next(ctx)
		if err != nil {
			return nil, err
		}
		if left == nil {
			return nil, nil
		}
		env.Row = left
		key := make(types.Row, len(j.LeftKeys))
		null := false
		for i, k := range j.LeftKeys {
			v, err := k.Eval(&env)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
			}
			key[i] = v
		}
		if null {
			continue
		}
		add(&ctx.Counters.JoinProbeRows, 1)
		j.curLeft = left
		j.curKey = key
		j.bucket = j.table[hashKey(key)]
		j.bpos = 0
	}
}

// Close implements Plan.
func (j *HashJoinPlan) Close(ctx *Ctx) error {
	j.table = nil
	j.bucket = nil
	return j.Left.Close(ctx)
}

// Columns implements Plan.
func (j *HashJoinPlan) Columns() []Column {
	return append(append([]Column{}, j.Left.Columns()...), j.Right.Columns()...)
}

// Explain implements Plan.
func (j *HashJoinPlan) Explain(indent int) string {
	lk := make([]string, len(j.LeftKeys))
	for i, k := range j.LeftKeys {
		lk[i] = k.String()
	}
	rk := make([]string, len(j.RightKeys))
	for i, k := range j.RightKeys {
		rk[i] = k.String()
	}
	res := ""
	if j.Residual != nil {
		res = " residual=" + j.Residual.String()
	}
	return fmt.Sprintf("%sHashJoin (%s)=(%s)%s\n%s%s", pad(indent),
		strings.Join(lk, ", "), strings.Join(rk, ", "), res,
		j.Left.Explain(indent+1), j.Right.Explain(indent+1))
}
