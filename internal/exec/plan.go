package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"xnf/internal/resource"
	"xnf/internal/storage"
	"xnf/internal/types"
)

// Counters accumulates runtime statistics; the benchmark harness reads
// them to report rows scanned, subquery probes and so on. Increment
// through the add method — parallel CO extraction shares one context
// across goroutines.
type Counters struct {
	RowsScanned   int64
	IndexLookups  int64
	SubplanRuns   int64
	HashBuilds    int64
	RowsProduced  int64
	SpoolMaterial int64
	// SegmentsScanned / SegmentsPruned count column-store segments the
	// scan actually read versus segments skipped by zone maps.
	SegmentsScanned int64
	SegmentsPruned  int64
	// JoinBuildRows / JoinProbeRows count hash-join build rows inserted
	// into the table and probe rows that probed it (NULL-key rows, which
	// never join, count on neither side). Both executors maintain them.
	JoinBuildRows int64
	JoinProbeRows int64
	// PoolWorkers counts extra workers granted by the shared vexec worker
	// pool; PoolFallbacks counts parallel operators that ran sequentially
	// because the pool was saturated.
	PoolWorkers   int64
	PoolFallbacks int64
	// MemReserved is the total bytes this statement reserved from its
	// memory accountant (a high-water of demand, not of residency);
	// MemFallbacks counts operators that degraded to a cheaper strategy
	// (chunked sort merge, sequential build) under memory pressure.
	MemReserved  int64
	MemFallbacks int64
	// EncodedCmpRows counts rows whose comparison predicate ran directly
	// on encoded segment data (dictionary code compares, packed ints);
	// EncodedHashRows counts rows grouped or joined with at least one key
	// column read from encoded data. Together they show how often scans
	// stay on the compressed path instead of decoding.
	EncodedCmpRows  int64
	EncodedHashRows int64
}

func add(c *int64, n int64) { atomic.AddInt64(c, n) }

// spoolEntry materializes a shared fragment exactly once even when several
// consumers race (parallel extraction of CO outputs).
type spoolEntry struct {
	once sync.Once
	rows []types.Row
	err  error
}

// Ctx is the runtime context of one statement execution. It may be shared
// by several goroutines each driving an independent plan tree (the
// parallel CO extraction of the paper's Sect. 6 outlook); the shared
// spool and subplan caches are synchronized.
type Ctx struct {
	Store    *storage.Store
	Counters Counters

	// Mem is the statement's memory accountant; nil accounts nothing.
	// Operators that materialize (hash tables, sort runs, distinct sets)
	// reserve their estimates through Ctx.Reserve so one statement
	// cannot exceed its budget chain.
	Mem *resource.Accountant

	// Interrupt, when set, reports why the statement should stop
	// (deadline exceeded, cancellation). Blocking operators poll it at
	// batch boundaries via Interrupted.
	Interrupt func() error

	mu sync.Mutex
	// spool holds materialized results of shared plan fragments, keyed by
	// spool ID (one per shared QGM box).
	spool map[int]*spoolEntry
	// subplanCache holds hash tables built for subplan probes.
	subplanCache map[int]*spoolSubplan
}

type spoolSubplan struct {
	once sync.Once
	tbl  *subplanTable
	err  error
}

// NewCtx returns a fresh runtime context over a store.
func NewCtx(store *storage.Store) *Ctx {
	return &Ctx{
		Store:        store,
		spool:        make(map[int]*spoolEntry),
		subplanCache: make(map[int]*spoolSubplan),
	}
}

// Reserve charges n bytes against the statement's memory accountant.
// The typed failure wraps resource.ErrResourceExhausted; operators with
// a cheaper strategy fall back on it, everything else propagates it.
func (c *Ctx) Reserve(n int64) error {
	if c.Mem == nil || n <= 0 {
		return nil
	}
	if err := c.Mem.Reserve(n); err != nil {
		return err
	}
	add(&c.Counters.MemReserved, n)
	return nil
}

// Release returns n bytes to the accountant chain.
func (c *Ctx) Release(n int64) {
	if c.Mem != nil && n > 0 {
		c.Mem.Release(n)
	}
}

// Interrupted reports the statement's cancellation state (nil when the
// statement may keep running). Cheap enough to poll per batch.
func (c *Ctx) Interrupted() error {
	if c.Interrupt == nil {
		return nil
	}
	return c.Interrupt()
}

// Plan is a physical operator: a pull-based iterator.
type Plan interface {
	// Open prepares the iterator; params is the frame visible to the
	// subtree (correlation values).
	Open(ctx *Ctx, params types.Row) error
	// Next returns the next row or nil at end of stream.
	Next(ctx *Ctx) (types.Row, error)
	// Close releases resources; the plan may be re-Opened afterwards.
	Close(ctx *Ctx) error
	// Columns describes the output row.
	Columns() []Column
	// Explain renders the subtree, one node per line with indent.
	Explain(indent int) string
}

// Column describes one output column of a plan.
type Column struct {
	Name string
	Type types.Type
}

func pad(n int) string { return strings.Repeat("  ", n) }

func colNames(cols []Column) string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return strings.Join(names, ", ")
}

// Collect drains a plan into a slice (convenience for callers and tests).
func Collect(ctx *Ctx, p Plan) ([]types.Row, error) {
	return CollectWith(ctx, p, nil)
}

// CollectWith drains a plan opened with an explicit top-level parameter
// frame — the statement arguments of a prepared-statement execution.
func CollectWith(ctx *Ctx, p Plan, params types.Row) ([]types.Row, error) {
	if err := p.Open(ctx, params); err != nil {
		return nil, err
	}
	defer p.Close(ctx)
	var out []types.Row
	for {
		r, err := p.Next(ctx)
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, r)
	}
}

// --- Scan ---

// ScanPlan scans a stored table, applying an optional pushed-down filter.
type ScanPlan struct {
	Table  string
	Filter Expr
	Cols   []Column

	rows   []types.Row
	pos    int
	params types.Row
}

// Open implements Plan.
func (s *ScanPlan) Open(ctx *Ctx, params types.Row) error {
	td, err := ctx.Store.Table(s.Table)
	if err != nil {
		return err
	}
	s.rows = td.Snapshot()
	s.pos = 0
	s.params = params
	return nil
}

// Next implements Plan.
func (s *ScanPlan) Next(ctx *Ctx) (types.Row, error) {
	env := Env{Params: s.params, Ctx: ctx}
	for s.pos < len(s.rows) {
		// Every row-engine plan pulls from scans, so polling the
		// statement's cancellation here bounds how long any plan shape —
		// including a cross join re-scanning its inner — outlives its
		// deadline, without each operator polling individually.
		if s.pos&1023 == 0 {
			if err := ctx.Interrupted(); err != nil {
				return nil, err
			}
		}
		row := s.rows[s.pos]
		s.pos++
		add(&ctx.Counters.RowsScanned, 1)
		env.Row = row
		ok, err := EvalPred(s.Filter, &env)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
	return nil, nil
}

// Close implements Plan.
func (s *ScanPlan) Close(*Ctx) error {
	s.rows = nil
	return nil
}

// Columns implements Plan.
func (s *ScanPlan) Columns() []Column { return s.Cols }

// Explain implements Plan.
func (s *ScanPlan) Explain(indent int) string {
	f := ""
	if s.Filter != nil {
		f = " filter=" + s.Filter.String()
	}
	return fmt.Sprintf("%sScan %s%s\n", pad(indent), s.Table, f)
}

// --- IndexLookup ---

// IndexLookupPlan probes an index with key expressions evaluated against
// the parameter frame (the driving row of an index nested-loop join, or
// constants).
type IndexLookupPlan struct {
	Table  string
	Index  string
	Keys   []Expr // evaluated with Params only
	Filter Expr
	Cols   []Column

	matches []types.Row
	pos     int
	params  types.Row
}

// Open implements Plan.
func (p *IndexLookupPlan) Open(ctx *Ctx, params types.Row) error {
	td, err := ctx.Store.Table(p.Table)
	if err != nil {
		return err
	}
	env := Env{Params: params, Ctx: ctx}
	key := make(types.Row, len(p.Keys))
	for i, k := range p.Keys {
		v, err := k.Eval(&env)
		if err != nil {
			return err
		}
		key[i] = v
	}
	rids, err := td.IndexLookup(p.Index, key)
	if err != nil {
		return err
	}
	add(&ctx.Counters.IndexLookups, 1)
	p.matches = p.matches[:0]
	for _, rid := range rids {
		if row, ok := td.Get(rid); ok {
			// Hash indexes may return collisions; verify the key columns.
			p.matches = append(p.matches, row)
		}
	}
	p.pos = 0
	p.params = params
	return nil
}

// Next implements Plan.
func (p *IndexLookupPlan) Next(ctx *Ctx) (types.Row, error) {
	env := Env{Params: p.params, Ctx: ctx}
	for p.pos < len(p.matches) {
		row := p.matches[p.pos]
		p.pos++
		env.Row = row
		ok, err := EvalPred(p.Filter, &env)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
	return nil, nil
}

// Close implements Plan.
func (p *IndexLookupPlan) Close(*Ctx) error { return nil }

// Columns implements Plan.
func (p *IndexLookupPlan) Columns() []Column { return p.Cols }

// Explain implements Plan.
func (p *IndexLookupPlan) Explain(indent int) string {
	keys := make([]string, len(p.Keys))
	for i, k := range p.Keys {
		keys[i] = k.String()
	}
	f := ""
	if p.Filter != nil {
		f = " filter=" + p.Filter.String()
	}
	return fmt.Sprintf("%sIndexLookup %s.%s keys=(%s)%s\n", pad(indent), p.Table, p.Index, strings.Join(keys, ", "), f)
}

// --- Values ---

// ValuesPlan emits fixed rows (SELECT without FROM emits one empty row
// that the projection fills in).
type ValuesPlan struct {
	Rows [][]Expr
	Cols []Column

	pos    int
	params types.Row
}

// Open implements Plan.
func (v *ValuesPlan) Open(_ *Ctx, params types.Row) error {
	v.pos = 0
	v.params = params
	return nil
}

// Next implements Plan.
func (v *ValuesPlan) Next(ctx *Ctx) (types.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	exprs := v.Rows[v.pos]
	v.pos++
	env := Env{Params: v.params, Ctx: ctx}
	row := make(types.Row, len(exprs))
	for i, e := range exprs {
		val, err := e.Eval(&env)
		if err != nil {
			return nil, err
		}
		row[i] = val
	}
	return row, nil
}

// Close implements Plan.
func (v *ValuesPlan) Close(*Ctx) error { return nil }

// Columns implements Plan.
func (v *ValuesPlan) Columns() []Column { return v.Cols }

// Explain implements Plan.
func (v *ValuesPlan) Explain(indent int) string {
	return fmt.Sprintf("%sValues %d row(s)\n", pad(indent), len(v.Rows))
}

// --- Filter ---

// FilterPlan drops rows not satisfying the predicate.
type FilterPlan struct {
	Child Plan
	Pred  Expr

	params types.Row
}

// Open implements Plan.
func (f *FilterPlan) Open(ctx *Ctx, params types.Row) error {
	f.params = params
	return f.Child.Open(ctx, params)
}

// Next implements Plan.
func (f *FilterPlan) Next(ctx *Ctx) (types.Row, error) {
	env := Env{Params: f.params, Ctx: ctx}
	for {
		row, err := f.Child.Next(ctx)
		if err != nil || row == nil {
			return row, err
		}
		env.Row = row
		ok, err := EvalPred(f.Pred, &env)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

// Close implements Plan.
func (f *FilterPlan) Close(ctx *Ctx) error { return f.Child.Close(ctx) }

// Columns implements Plan.
func (f *FilterPlan) Columns() []Column { return f.Child.Columns() }

// Explain implements Plan.
func (f *FilterPlan) Explain(indent int) string {
	return fmt.Sprintf("%sFilter %s\n%s", pad(indent), f.Pred.String(), f.Child.Explain(indent+1))
}

// --- Project ---

// ProjectPlan computes the output expressions.
type ProjectPlan struct {
	Child Plan
	Exprs []Expr
	Cols  []Column

	params types.Row
}

// Open implements Plan.
func (p *ProjectPlan) Open(ctx *Ctx, params types.Row) error {
	p.params = params
	return p.Child.Open(ctx, params)
}

// Next implements Plan.
func (p *ProjectPlan) Next(ctx *Ctx) (types.Row, error) {
	row, err := p.Child.Next(ctx)
	if err != nil || row == nil {
		return nil, err
	}
	env := Env{Row: row, Params: p.params, Ctx: ctx}
	out := make(types.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(&env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Plan.
func (p *ProjectPlan) Close(ctx *Ctx) error { return p.Child.Close(ctx) }

// Columns implements Plan.
func (p *ProjectPlan) Columns() []Column { return p.Cols }

// Explain implements Plan.
func (p *ProjectPlan) Explain(indent int) string {
	exprs := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		exprs[i] = e.String()
	}
	return fmt.Sprintf("%sProject %s\n%s", pad(indent), strings.Join(exprs, ", "), p.Child.Explain(indent+1))
}

// --- Distinct ---

// DistinctPlan removes duplicate rows (hash-based).
type DistinctPlan struct {
	Child Plan

	seen map[uint64][]types.Row
	all  []int
}

// Open implements Plan.
func (d *DistinctPlan) Open(ctx *Ctx, params types.Row) error {
	d.seen = make(map[uint64][]types.Row)
	d.all = nil
	for i := range d.Child.Columns() {
		d.all = append(d.all, i)
	}
	return d.Child.Open(ctx, params)
}

// Next implements Plan.
func (d *DistinctPlan) Next(ctx *Ctx) (types.Row, error) {
	for {
		row, err := d.Child.Next(ctx)
		if err != nil || row == nil {
			return row, err
		}
		h := row.Hash(d.all)
		dup := false
		for _, prev := range d.seen[h] {
			if types.EqualRows(prev, row) {
				dup = true
				break
			}
		}
		if !dup {
			d.seen[h] = append(d.seen[h], row)
			return row, nil
		}
	}
}

// Close implements Plan.
func (d *DistinctPlan) Close(ctx *Ctx) error {
	d.seen = nil
	return d.Child.Close(ctx)
}

// Columns implements Plan.
func (d *DistinctPlan) Columns() []Column { return d.Child.Columns() }

// Explain implements Plan.
func (d *DistinctPlan) Explain(indent int) string {
	return fmt.Sprintf("%sDistinct\n%s", pad(indent), d.Child.Explain(indent+1))
}

// --- Sort ---

// SortPlan fully materializes and sorts its input.
type SortPlan struct {
	Child Plan
	Keys  []Expr
	Desc  []bool

	rows []types.Row
	pos  int
}

// Open implements Plan.
func (s *SortPlan) Open(ctx *Ctx, params types.Row) error {
	if err := s.Child.Open(ctx, params); err != nil {
		return err
	}
	s.rows = nil
	s.pos = 0
	env := Env{Params: params, Ctx: ctx}
	type keyed struct {
		row types.Row
		key types.Row
	}
	var data []keyed
	for {
		row, err := s.Child.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		env.Row = row
		key := make(types.Row, len(s.Keys))
		for i, k := range s.Keys {
			v, err := k.Eval(&env)
			if err != nil {
				return err
			}
			key[i] = v
		}
		data = append(data, keyed{row: row, key: key})
	}
	ords := make([]int, len(s.Keys))
	for i := range ords {
		ords[i] = i
	}
	sort.SliceStable(data, func(i, j int) bool {
		return types.CompareRows(data[i].key, data[j].key, ords, s.Desc) < 0
	})
	for _, d := range data {
		s.rows = append(s.rows, d.row)
	}
	return s.Child.Close(ctx)
}

// Next implements Plan.
func (s *SortPlan) Next(*Ctx) (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Plan.
func (s *SortPlan) Close(*Ctx) error {
	s.rows = nil
	return nil
}

// Columns implements Plan.
func (s *SortPlan) Columns() []Column { return s.Child.Columns() }

// Explain implements Plan.
func (s *SortPlan) Explain(indent int) string {
	keys := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		keys[i] = k.String()
		if i < len(s.Desc) && s.Desc[i] {
			keys[i] += " DESC"
		}
	}
	return fmt.Sprintf("%sSort %s\n%s", pad(indent), strings.Join(keys, ", "), s.Child.Explain(indent+1))
}

// --- Limit ---

// LimitPlan stops the stream after N rows.
type LimitPlan struct {
	Child Plan
	N     int

	emitted int
}

// Open implements Plan.
func (l *LimitPlan) Open(ctx *Ctx, params types.Row) error {
	l.emitted = 0
	return l.Child.Open(ctx, params)
}

// Next implements Plan.
func (l *LimitPlan) Next(ctx *Ctx) (types.Row, error) {
	if l.emitted >= l.N {
		return nil, nil
	}
	row, err := l.Child.Next(ctx)
	if err != nil || row == nil {
		return row, err
	}
	l.emitted++
	return row, nil
}

// Close implements Plan.
func (l *LimitPlan) Close(ctx *Ctx) error { return l.Child.Close(ctx) }

// Columns implements Plan.
func (l *LimitPlan) Columns() []Column { return l.Child.Columns() }

// Explain implements Plan.
func (l *LimitPlan) Explain(indent int) string {
	return fmt.Sprintf("%sLimit %d\n%s", pad(indent), l.N, l.Child.Explain(indent+1))
}

// --- Union ---

// UnionPlan concatenates branch streams; Distinct adds set semantics.
type UnionPlan struct {
	Children []Plan
	Distinct bool

	cur  int
	dset map[uint64][]types.Row
	all  []int
}

// Open implements Plan.
func (u *UnionPlan) Open(ctx *Ctx, params types.Row) error {
	u.cur = 0
	if u.Distinct {
		u.dset = make(map[uint64][]types.Row)
		u.all = nil
		for i := range u.Columns() {
			u.all = append(u.all, i)
		}
	}
	for _, c := range u.Children {
		if err := c.Open(ctx, params); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Plan.
func (u *UnionPlan) Next(ctx *Ctx) (types.Row, error) {
	for u.cur < len(u.Children) {
		row, err := u.Children[u.cur].Next(ctx)
		if err != nil {
			return nil, err
		}
		if row == nil {
			u.cur++
			continue
		}
		if u.Distinct {
			h := row.Hash(u.all)
			dup := false
			for _, prev := range u.dset[h] {
				if types.EqualRows(prev, row) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			u.dset[h] = append(u.dset[h], row)
		}
		return row, nil
	}
	return nil, nil
}

// Close implements Plan.
func (u *UnionPlan) Close(ctx *Ctx) error {
	u.dset = nil
	var first error
	for _, c := range u.Children {
		if err := c.Close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Columns implements Plan.
func (u *UnionPlan) Columns() []Column { return u.Children[0].Columns() }

// Explain implements Plan.
func (u *UnionPlan) Explain(indent int) string {
	kind := "UnionAll"
	if u.Distinct {
		kind = "Union"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s\n", pad(indent), kind)
	for _, c := range u.Children {
		b.WriteString(c.Explain(indent + 1))
	}
	return b.String()
}

// --- Spool ---

// SpoolPlan materializes a shared fragment once per execution context and
// replays it to every consumer — the runtime realization of a common
// subexpression shared in the QGM DAG (Sect. 4.2 / Table 1 of the paper).
type SpoolPlan struct {
	ID    int
	Child Plan

	rows []types.Row
	pos  int
}

// Open implements Plan. The first consumer to arrive materializes the
// fragment; concurrent consumers (parallel CO extraction) block on the
// entry's once and then replay the shared rows.
func (s *SpoolPlan) Open(ctx *Ctx, params types.Row) error {
	ctx.mu.Lock()
	entry, ok := ctx.spool[s.ID]
	if !ok {
		entry = &spoolEntry{}
		ctx.spool[s.ID] = entry
	}
	ctx.mu.Unlock()
	entry.once.Do(func() {
		if err := s.Child.Open(ctx, params); err != nil {
			entry.err = err
			return
		}
		var rows []types.Row
		for {
			row, err := s.Child.Next(ctx)
			if err != nil {
				entry.err = err
				return
			}
			if row == nil {
				break
			}
			rows = append(rows, row)
		}
		if err := s.Child.Close(ctx); err != nil {
			entry.err = err
			return
		}
		add(&ctx.Counters.SpoolMaterial, 1)
		entry.rows = rows
	})
	if entry.err != nil {
		return entry.err
	}
	s.rows = entry.rows
	s.pos = 0
	return nil
}

// Next implements Plan.
func (s *SpoolPlan) Next(*Ctx) (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Plan.
func (s *SpoolPlan) Close(*Ctx) error {
	s.rows = nil
	return nil
}

// Columns implements Plan.
func (s *SpoolPlan) Columns() []Column { return s.Child.Columns() }

// Explain implements Plan.
func (s *SpoolPlan) Explain(indent int) string {
	return fmt.Sprintf("%sSpool #%d (shared)\n%s", pad(indent), s.ID, s.Child.Explain(indent+1))
}
