package exec

import (
	"fmt"
	"strings"

	"xnf/internal/types"
)

// SubplanMode distinguishes how a nested plan is used in an expression.
type SubplanMode uint8

// The subplan modes.
const (
	ModeExists SubplanMode = iota
	ModeAnti
	ModeScalar
)

// Subplan evaluates a nested plan inside an expression: EXISTS, NOT
// EXISTS, IN, NOT IN and scalar subqueries. Two strategies exist:
//
//   - Rerun: the plan is re-executed per evaluation with Params bound from
//     the caller's row — the naive correlated strategy the paper's Sect.
//     3.2 warns about. It is the fallback for arbitrary correlation and
//     the explicit target of the Fig. 3 benchmark with rewriting disabled.
//   - Hashed: the plan must be uncorrelated; its result is materialized
//     once per execution context, hashed on BuildKeys, and probed with
//     ProbeKeys — a hash semijoin.
//
// ProbeKeys/BuildKeys carry the equality linking outer and inner rows;
// both empty means a bare EXISTS. InStyle marks IN-derived subplans whose
// NULL semantics differ from EXISTS under three-valued logic.
type Subplan struct {
	ID      int
	Mode    SubplanMode
	Plan    Plan
	Params  []Expr // evaluated in the caller's env; become the plan's frame
	Hashed  bool
	Probe   []Expr // over caller env
	Build   []Expr // over the subplan's output row
	InStyle bool
}

// subplanTable is the materialized+hashed form of an uncorrelated subplan.
type subplanTable struct {
	buckets map[uint64][]types.Row // key ++ row
	nkeys   int
	hasNull bool
	total   int
}

// Eval implements Expr.
func (s *Subplan) Eval(env *Env) (types.Value, error) {
	if s.Mode == ModeScalar {
		return s.evalScalar(env)
	}
	tri, err := s.evalExists(env)
	if err != nil {
		return types.Null, err
	}
	if s.Mode == ModeAnti {
		tri = tri.Not()
	}
	return tri.ToValue(), nil
}

func (s *Subplan) evalExists(env *Env) (types.TriBool, error) {
	probe, probeNull, err := s.evalKeys(s.Probe, env)
	if err != nil {
		return types.Unknown, err
	}
	var matched, innerNull bool
	var total int
	if s.Hashed {
		tbl, err := s.table(env)
		if err != nil {
			return types.Unknown, err
		}
		total = tbl.total
		innerNull = tbl.hasNull
		if !probeNull && total > 0 {
			if len(probe) == 0 {
				matched = total > 0
			} else {
				for _, entry := range tbl.buckets[hashKey(probe)] {
					if types.EqualRows(entry[:tbl.nkeys], probe) {
						matched = true
						break
					}
				}
			}
		}
	} else {
		add(&env.Ctx.Counters.SubplanRuns, 1)
		frame, err := s.evalFrame(env)
		if err != nil {
			return types.Unknown, err
		}
		if err := s.Plan.Open(env.Ctx, frame); err != nil {
			return types.Unknown, err
		}
		defer s.Plan.Close(env.Ctx)
		for {
			row, err := s.Plan.Next(env.Ctx)
			if err != nil {
				return types.Unknown, err
			}
			if row == nil {
				break
			}
			total++
			if len(s.Build) == 0 {
				matched = true
				break
			}
			key, keyNull, err := s.evalKeys(s.Build, &Env{Row: row, Params: frame, Ctx: env.Ctx})
			if err != nil {
				return types.Unknown, err
			}
			if keyNull {
				innerNull = true
				continue
			}
			if !probeNull && types.EqualRows(key, probe) {
				matched = true
				if !s.InStyle {
					break
				}
				break
			}
		}
	}
	switch {
	case matched:
		return types.True, nil
	case s.InStyle && total > 0 && (probeNull || innerNull):
		// x IN (…) with NULL on either side and no definite match is
		// UNKNOWN, which matters under the NOT of NOT IN.
		return types.Unknown, nil
	default:
		return types.False, nil
	}
}

func (s *Subplan) evalScalar(env *Env) (types.Value, error) {
	if s.Hashed {
		tbl, err := s.table(env)
		if err != nil {
			return types.Null, err
		}
		probe, probeNull, err := s.evalKeys(s.Probe, env)
		if err != nil {
			return types.Null, err
		}
		if probeNull {
			return types.Null, nil
		}
		var found *types.Row
		var count int
		if len(probe) == 0 {
			for _, bucket := range tbl.buckets {
				for i := range bucket {
					count++
					if found == nil {
						r := bucket[i][tbl.nkeys:]
						found = &r
					}
				}
			}
		} else {
			for _, entry := range tbl.buckets[hashKey(probe)] {
				if types.EqualRows(entry[:tbl.nkeys], probe) {
					count++
					if found == nil {
						r := entry[tbl.nkeys:]
						found = &r
					}
				}
			}
		}
		if count > 1 {
			return types.Null, fmt.Errorf("exec: scalar subquery returned %d rows", count)
		}
		if found == nil {
			return types.Null, nil
		}
		return (*found)[0], nil
	}
	add(&env.Ctx.Counters.SubplanRuns, 1)
	frame, err := s.evalFrame(env)
	if err != nil {
		return types.Null, err
	}
	if err := s.Plan.Open(env.Ctx, frame); err != nil {
		return types.Null, err
	}
	defer s.Plan.Close(env.Ctx)
	first, err := s.Plan.Next(env.Ctx)
	if err != nil {
		return types.Null, err
	}
	if first == nil {
		return types.Null, nil
	}
	second, err := s.Plan.Next(env.Ctx)
	if err != nil {
		return types.Null, err
	}
	if second != nil {
		return types.Null, fmt.Errorf("exec: scalar subquery returned more than one row")
	}
	return first[0], nil
}

// table returns (building on first use) the hashed materialization; the
// build happens once per execution context even under concurrency.
func (s *Subplan) table(env *Env) (*subplanTable, error) {
	env.Ctx.mu.Lock()
	entry, ok := env.Ctx.subplanCache[s.ID]
	if !ok {
		entry = &spoolSubplan{}
		env.Ctx.subplanCache[s.ID] = entry
	}
	env.Ctx.mu.Unlock()
	entry.once.Do(func() {
		tbl := &subplanTable{buckets: make(map[uint64][]types.Row), nkeys: len(s.Build)}
		// Hashed subplans are uncorrelated per-row, but may carry statement
		// placeholders: the frame is execution-constant, so evaluating it
		// from the first caller is correct for every consumer of the entry.
		frame, err := s.evalFrame(env)
		if err != nil {
			entry.err = err
			return
		}
		if err := s.Plan.Open(env.Ctx, frame); err != nil {
			entry.err = err
			return
		}
		defer s.Plan.Close(env.Ctx)
		for {
			row, err := s.Plan.Next(env.Ctx)
			if err != nil {
				entry.err = err
				return
			}
			if row == nil {
				break
			}
			tbl.total++
			key, keyNull, err := s.evalKeys(s.Build, &Env{Row: row, Params: frame, Ctx: env.Ctx})
			if err != nil {
				entry.err = err
				return
			}
			if keyNull {
				tbl.hasNull = true
				continue
			}
			tbl.buckets[hashKey(key)] = append(tbl.buckets[hashKey(key)], append(key, row...))
		}
		add(&env.Ctx.Counters.HashBuilds, 1)
		entry.tbl = tbl
	})
	if entry.err != nil {
		return nil, entry.err
	}
	return entry.tbl, nil
}

func (s *Subplan) evalKeys(keys []Expr, env *Env) (types.Row, bool, error) {
	out := make(types.Row, len(keys))
	anyNull := false
	for i, k := range keys {
		v, err := k.Eval(env)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			anyNull = true
		}
		out[i] = v
	}
	return out, anyNull, nil
}

func (s *Subplan) evalFrame(env *Env) (types.Row, error) {
	frame := make(types.Row, len(s.Params))
	for i, p := range s.Params {
		v, err := p.Eval(env)
		if err != nil {
			return nil, err
		}
		frame[i] = v
	}
	return frame, nil
}

func (s *Subplan) String() string {
	mode := map[SubplanMode]string{ModeExists: "EXISTS", ModeAnti: "NOT-EXISTS", ModeScalar: "SCALAR"}[s.Mode]
	strat := "rerun"
	if s.Hashed {
		strat = "hashed"
	}
	var keys string
	if len(s.Probe) > 0 {
		ps := make([]string, len(s.Probe))
		for i, p := range s.Probe {
			ps[i] = p.String()
		}
		keys = " probe=(" + strings.Join(ps, ", ") + ")"
	}
	return fmt.Sprintf("%s[%s #%d%s]", mode, strat, s.ID, keys)
}

// ExplainSubplans renders the nested plans referenced by an expression
// tree (used by EXPLAIN output).
func ExplainSubplans(e Expr, indent int) string {
	var b strings.Builder
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case *Subplan:
			fmt.Fprintf(&b, "%ssubplan #%d:\n%s", pad(indent), n.ID, n.Plan.Explain(indent+1))
		case *Bin:
			walk(n.L)
			walk(n.R)
		case *Un:
			walk(n.X)
		case *ScalarFunc:
			for _, a := range n.Args {
				walk(a)
			}
		case *CaseExpr:
			for _, w := range n.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			if n.Else != nil {
				walk(n.Else)
			}
		}
	}
	walk(e)
	return b.String()
}
