// Package faultfs is a failpoint layer between the durability subsystem
// and the operating system. The WAL and checkpoint writers perform every
// file operation through the FS interface; production uses the passthrough
// OS implementation, while crash-torture tests wrap it in an Injector that
// makes chosen operations fail, stall, write short, or report a full disk —
// deterministically (trigger the Nth matching op) or probabilistically from
// a fixed seed, so every torture run is replayable.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// File is the slice of *os.File the durability layer needs.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS abstracts the file operations the WAL and checkpoint code performs.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so renames and creates inside it are
	// durable; best-effort on filesystems that refuse directory fsync.
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return nil // some filesystems refuse directory fsync; not fatal
	}
	return nil
}

// Op identifies one class of file operation a rule can target.
type Op uint8

// The fault-injectable operations.
const (
	OpOpen Op = iota
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpSyncDir
	OpRead
	opCount
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpSyncDir:
		return "syncdir"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Mode is what happens when a rule fires.
type Mode uint8

// The failure modes. Fail returns the rule's error (ErrInjected by
// default). Partial writes a prefix of the buffer, then fails — the torn
// tail the WAL's CRC framing must detect on replay. NoSpace reports
// ENOSPC. Slow delays the operation, then lets it through — the stall that
// statement timeouts and group commit must tolerate.
const (
	Fail Mode = iota
	Partial
	NoSpace
	Slow
)

// ErrInjected is the default error returned by fired Fail/Partial rules.
var ErrInjected = errors.New("faultfs: injected fault")

// Rule arms one failpoint. Zero values mean: match any path, fire on the
// first matching operation, fire every time after that, Fail with
// ErrInjected.
type Rule struct {
	Op   Op     // operation class to match
	Path string // substring the path must contain ("" = any)

	After int     // skip this many matching ops before firing
	Count int     // fire at most this many times (0 = unlimited)
	Prob  float64 // fire with this probability (0 = always)

	Mode  Mode
	Err   error         // overrides the mode's default error
	Delay time.Duration // Slow: how long to stall
}

type armedRule struct {
	Rule
	matched int // matching ops seen
	fired   int // times fired
}

// Injector wraps a base FS and applies armed rules to matching
// operations. All decisions that involve chance draw from one seeded
// generator, so a failing torture run replays exactly from its seed.
type Injector struct {
	base FS

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*armedRule
	injected uint64
}

// New wraps base with an injector whose probabilistic rules draw from
// seed.
func New(base FS, seed int64) *Injector {
	return &Injector{base: base, rng: rand.New(rand.NewSource(seed))}
}

// Add arms a rule.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &armedRule{Rule: r})
}

// Reset disarms every rule (already-failed files stay failed — the WAL is
// poisoned by its first error by design).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Injected reports how many faults have fired.
func (in *Injector) Injected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// verdict is the outcome of consulting the rules for one operation.
type verdict struct {
	err     error
	partial int           // Partial write: bytes to let through first
	delay   time.Duration // Slow: stall before proceeding
}

func (in *Injector) check(op Op, path string, size int) verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.matched++
		if r.matched <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && in.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		in.injected++
		switch r.Mode {
		case Slow:
			return verdict{delay: r.Delay}
		case Partial:
			n := 0
			if size > 0 {
				n = in.rng.Intn(size) // strictly short: [0, size)
			}
			return verdict{err: ruleErr(r), partial: n}
		case NoSpace:
			err := r.Err
			if err == nil {
				err = syscall.ENOSPC
			}
			return verdict{err: fmt.Errorf("faultfs: injected %s on %s: %w", r.Mode.modeName(), path, err)}
		default:
			return verdict{err: ruleErr(r)}
		}
	}
	return verdict{}
}

func ruleErr(r *armedRule) error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

func (m Mode) modeName() string {
	switch m {
	case Partial:
		return "partial-write"
	case NoSpace:
		return "enospc"
	case Slow:
		return "latency"
	default:
		return "fail"
	}
}

func (in *Injector) apply(op Op, path string) error {
	v := in.check(op, path, 0)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	return v.err
}

// OpenFile implements FS.
func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := in.apply(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, path: name}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.apply(OpRename, newpath); err != nil {
		return err
	}
	return in.base.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if err := in.apply(OpRemove, name); err != nil {
		return err
	}
	return in.base.Remove(name)
}

// Truncate implements FS.
func (in *Injector) Truncate(name string, size int64) error {
	if err := in.apply(OpTruncate, name); err != nil {
		return err
	}
	return in.base.Truncate(name, size)
}

// ReadFile implements FS. Fail rules surface a read error; Partial rules
// hand back a strictly-short prefix of the data with no error — the
// silently truncated checkpoint or log a recovering open must detect by
// framing/CRC and fall back from, never trust.
func (in *Injector) ReadFile(name string) ([]byte, error) {
	data, err := in.base.ReadFile(name)
	if err != nil {
		return nil, err
	}
	v := in.check(OpRead, name, len(data))
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		if v.partial > 0 {
			return data[:v.partial], nil
		}
		return nil, v.err
	}
	return data, nil
}

// ReadDir implements FS (never faulted).
func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return in.base.ReadDir(name) }

// SyncDir implements FS.
func (in *Injector) SyncDir(dir string) error {
	if err := in.apply(OpSyncDir, dir); err != nil {
		return err
	}
	return in.base.SyncDir(dir)
}

// injFile applies write/sync rules to one open file.
type injFile struct {
	in   *Injector
	f    File
	path string
}

func (f *injFile) Write(p []byte) (int, error) {
	v := f.in.check(OpWrite, f.path, len(p))
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		n := 0
		if v.partial > 0 {
			// A torn write: part of the buffer reaches the disk before the
			// failure. Recovery must stop at the intact prefix.
			n, _ = f.f.Write(p[:v.partial])
		}
		return n, v.err
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	v := f.in.check(OpSync, f.path, 0)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		return v.err
	}
	return f.f.Sync()
}

func (f *injFile) Close() error { return f.f.Close() }
