package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func writeThrough(t *testing.T, fs FS, path string, data []byte) error {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

func TestNthOpTrigger(t *testing.T) {
	dir := t.TempDir()
	inj := New(OS, 1)
	inj.Add(Rule{Op: OpWrite, After: 2, Count: 1})

	path := filepath.Join(dir, "f")
	for i := 0; i < 2; i++ {
		if err := writeThrough(t, inj, path, []byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := writeThrough(t, inj, path, []byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd write: got %v, want ErrInjected", err)
	}
	// Count=1: the rule is spent, writes succeed again.
	if err := writeThrough(t, inj, path, []byte("ok")); err != nil {
		t.Fatalf("4th write: %v", err)
	}
	if got := inj.Injected(); got != 1 {
		t.Fatalf("injected = %d, want 1", got)
	}
}

func TestPathFilter(t *testing.T) {
	dir := t.TempDir()
	inj := New(OS, 1)
	inj.Add(Rule{Op: OpWrite, Path: "wal-"})

	if err := writeThrough(t, inj, filepath.Join(dir, "other.log"), []byte("x")); err != nil {
		t.Fatalf("non-matching path failed: %v", err)
	}
	if err := writeThrough(t, inj, filepath.Join(dir, "wal-1.log"), []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching path: got %v, want ErrInjected", err)
	}
}

func TestPartialWriteLeavesShortPrefix(t *testing.T) {
	dir := t.TempDir()
	inj := New(OS, 7)
	inj.Add(Rule{Op: OpWrite, Mode: Partial, Count: 1})

	path := filepath.Join(dir, "f")
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	err := writeThrough(t, inj, path, payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(data) >= len(payload) {
		t.Fatalf("partial write persisted %d bytes, want < %d", len(data), len(payload))
	}
}

func TestNoSpace(t *testing.T) {
	dir := t.TempDir()
	inj := New(OS, 1)
	inj.Add(Rule{Op: OpSync, Mode: NoSpace})
	err := writeThrough(t, inj, filepath.Join(dir, "f"), []byte("x"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("got %v, want ENOSPC", err)
	}
}

func TestSlowDelaysButSucceeds(t *testing.T) {
	dir := t.TempDir()
	inj := New(OS, 1)
	inj.Add(Rule{Op: OpWrite, Mode: Slow, Delay: 30 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := writeThrough(t, inj, filepath.Join(dir, "f"), []byte("x")); err != nil {
		t.Fatalf("slow write failed: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write returned after %v, want >= 30ms", d)
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		inj := New(OS, seed)
		inj.Add(Rule{Op: OpWrite, Prob: 0.5})
		var outcomes []bool
		for i := 0; i < 32; i++ {
			err := writeThrough(t, inj, filepath.Join(dir, "f"), []byte("x"))
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs between identically-seeded runs", i)
		}
	}
}

func TestRenameAndSyncDirFaults(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := New(OS, 1)
	inj.Add(Rule{Op: OpRename, Count: 1})
	inj.Add(Rule{Op: OpSyncDir, Count: 1})
	if err := inj.Rename(src, filepath.Join(dir, "b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: got %v, want ErrInjected", err)
	}
	if err := inj.SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("syncdir: got %v, want ErrInjected", err)
	}
	// Spent rules: both pass through now.
	if err := inj.Rename(src, filepath.Join(dir, "b")); err != nil {
		t.Fatalf("rename passthrough: %v", err)
	}
	if err := inj.SyncDir(dir); err != nil {
		t.Fatalf("syncdir passthrough: %v", err)
	}
}
