package lexer

import "testing"

// FuzzLex asserts the lexer never panics and either returns tokens or a
// clean error for arbitrary byte strings — including invalid UTF-8,
// unterminated literals, and deeply repeated operator characters.
func FuzzLex(f *testing.F) {
	seeds := []string{
		"",
		"SELECT * FROM EMP",
		"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno",
		"SELECT COUNT(*), SUM(sal) FROM EMP GROUP BY edno HAVING COUNT(*) > 1",
		"INSERT INTO T VALUES (1, 'it''s', 2.5, NULL, TRUE)",
		"SELECT * FROM T WHERE a <> 1 AND b <= 2 OR NOT c >= 3",
		"OUT OF d AS (SELECT * FROM DEPT), e AS EMP, r AS (RELATE d, e WHERE d.dno = e.edno) TAKE *",
		"-- comment\nSELECT 1;",
		"'unterminated",
		"\"quoted ident\"",
		"1e309 .5 0x 9999999999999999999999999",
		"SELECT ?",
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := Lex(input)
		if err != nil {
			return
		}
		// A successful lex must yield tokens with sane positions.
		for _, tok := range toks {
			if tok.Pos < 0 || tok.Pos > len(input) {
				t.Fatalf("token %q has position %d outside input of length %d",
					tok.Text, tok.Pos, len(input))
			}
		}
	})
}
