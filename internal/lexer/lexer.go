// Package lexer tokenizes SQL/XNF text. Identifiers and keywords are
// case-insensitive; string literals use single quotes with ” escaping.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword
	Int
	Float
	String
	Symbol // operators and punctuation
)

// Token is one lexical unit with its source position (1-based).
type Token struct {
	Kind Kind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int
	Line int
}

// keywords recognized by the parser; everything else alphabetic is an Ident.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"DISTINCT": true, "ALL": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "TRUE": true, "FALSE": true, "IS": true,
	"IN": true, "BETWEEN": true, "LIKE": true, "EXISTS": true, "UNION": true,
	"CREATE": true, "TABLE": true, "VIEW": true, "INDEX": true, "UNIQUE": true,
	"ORDERED": true, "ON": true, "DROP": true, "PRIMARY": true, "KEY": true,
	"FOREIGN": true, "REFERENCES": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"JOIN": true, "INNER": true, "ANALYZE": true, "ALTER": true,
	// XNF extension keywords (Sect. 2 of the paper).
	"OUT": true, "OF": true, "TAKE": true, "RELATE": true, "VIA": true,
	"USING": true,
}

// Lex tokenizes the input or reports the first lexical error.
func Lex(input string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: Keyword, Text: up, Pos: start, Line: line})
			} else {
				toks = append(toks, Token{Kind: Ident, Text: word, Pos: start, Line: line})
			}
		case c >= '0' && c <= '9':
			start := i
			isFloat := false
			for i < n && (input[i] >= '0' && input[i] <= '9') {
				i++
			}
			if i < n && input[i] == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' {
				isFloat = true
				i++
				for i < n && (input[i] >= '0' && input[i] <= '9') {
					i++
				}
			}
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && input[j] >= '0' && input[j] <= '9' {
					isFloat = true
					i = j
					for i < n && (input[i] >= '0' && input[i] <= '9') {
						i++
					}
				}
			}
			kind := Int
			if isFloat {
				kind = Float
			}
			toks = append(toks, Token{Kind: kind, Text: input[start:i], Pos: start, Line: line})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				if input[i] == '\n' {
					line++
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("lexer: unterminated string literal at line %d", line)
			}
			toks = append(toks, Token{Kind: String, Text: sb.String(), Pos: start, Line: line})
		default:
			// multi-char symbols first
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=", "||":
				toks = append(toks, Token{Kind: Symbol, Text: two, Pos: i, Line: line})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '.', '*', '+', '-', '/', '%', '=', '<', '>', ';', '?':
				toks = append(toks, Token{Kind: Symbol, Text: string(c), Pos: i, Line: line})
				i++
			default:
				return nil, fmt.Errorf("lexer: unexpected character %q at line %d", c, line)
			}
		}
	}
	toks = append(toks, Token{Kind: EOF, Pos: n, Line: line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
