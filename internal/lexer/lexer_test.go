package lexer

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks, err := Lex("SELECT * FROM emp WHERE sal >= 10.5 AND name = 'o''brien'")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind Kind
		text string
	}{
		{Keyword, "SELECT"}, {Symbol, "*"}, {Keyword, "FROM"}, {Ident, "emp"},
		{Keyword, "WHERE"}, {Ident, "sal"}, {Symbol, ">="}, {Float, "10.5"},
		{Keyword, "AND"}, {Ident, "name"}, {Symbol, "="}, {String, "o'brien"},
		{EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = {%d %q}, want {%d %q}", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestXNFKeywords(t *testing.T) {
	toks, err := Lex("OUT OF xdept AS DEPT TAKE * RELATE VIA USING")
	if err != nil {
		t.Fatal(err)
	}
	kws := 0
	for _, tok := range toks {
		if tok.Kind == Keyword {
			kws++
		}
	}
	if kws != 8 { // OUT OF AS DEPT? no DEPT is ident; OUT OF AS TAKE RELATE VIA USING = 7... count below
		// OUT, OF, AS, TAKE, RELATE, VIA, USING = 7 keywords; xdept and DEPT idents
		if kws != 7 {
			t.Errorf("keyword count = %d", kws)
		}
	}
}

func TestComments(t *testing.T) {
	toks, err := Lex("SELECT 1 -- a comment\n, 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 { // SELECT 1 , 2 EOF
		t.Errorf("comment not skipped: %v", toks)
	}
	if toks[3].Line != 2 {
		t.Errorf("line tracking wrong: %d", toks[3].Line)
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Lex("1 2.5 3e2 4E-1 5.")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{Int, Float, Float, Float, Int, Symbol, EOF} // "5." lexes as 5 then .
	got := kinds(toks)
	if len(got) != len(wantKinds) {
		t.Fatalf("got %v", toks)
	}
	for i := range wantKinds {
		if got[i] != wantKinds[i] {
			t.Errorf("token %d kind = %d, want %d (%v)", i, got[i], wantKinds[i], toks[i])
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	toks, err := Lex("select Select SELECT sElEcT")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if toks[i].Kind != Keyword || toks[i].Text != "SELECT" {
			t.Errorf("token %d = %v", i, toks[i])
		}
	}
}

func TestSymbols(t *testing.T) {
	toks, err := Lex("<> <= >= != || ( ) . ; %")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<>", "<=", ">=", "!=", "||", "(", ")", ".", ";", "%"}
	for i, w := range want {
		if toks[i].Kind != Symbol || toks[i].Text != w {
			t.Errorf("symbol %d = %v, want %q", i, toks[i], w)
		}
	}
}
