package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// Handler returns the observability HTTP mux for a registry:
//
//	/metrics       Prometheus text exposition of every registered metric
//	/debug/vars    expvar-style JSON snapshot: metrics, runtime.MemStats
//	               highlights, goroutine count and whatever extra returns
//	/debug/pprof/  the standard net/http/pprof profile endpoints
//	               (heap, goroutine, profile, trace, …)
//
// extra, when non-nil, is evaluated per /debug/vars request and merged
// into the JSON document (the engine uses it to expose the slow-query
// log). Mount the handler on its own listener (xnfserver -http) so
// profiling traffic never contends with the wire protocol.
func Handler(r *Registry, extra func() map[string]any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(r.Vars(extra))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Vars renders the /debug/vars JSON document: every metric (histograms
// flattened like Snapshot), a MemStats digest and the goroutine count,
// merged with the extra callback's entries.
func (r *Registry) Vars(extra func() map[string]any) []byte {
	doc := make(map[string]any)
	vals := make(map[string]float64, 64)
	for _, s := range r.Snapshot() {
		vals[s.Name] = s.Value
	}
	doc["metrics"] = vals
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	doc["memstats"] = map[string]uint64{
		"heap_alloc":    m.HeapAlloc,
		"heap_sys":      m.HeapSys,
		"heap_idle":     m.HeapIdle,
		"heap_released": m.HeapReleased,
		"total_alloc":   m.TotalAlloc,
		"num_gc":        uint64(m.NumGC),
	}
	doc["goroutines"] = runtime.NumGoroutine()
	if extra != nil {
		for k, v := range extra() {
			doc[k] = v
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(out, '\n')
}
