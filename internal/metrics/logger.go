package metrics

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// StatsLine renders one periodic stats line: for each selected metric its
// current value — with the per-second rate since prev for cumulative
// counters — followed by a heap/goroutine digest. names selects and orders
// the metrics; nil means every registered counter and gauge, name-sorted.
// The returned map is the snapshot to pass as prev on the next call.
func (r *Registry) StatsLine(names []string, prev map[string]int64, elapsed time.Duration) (string, map[string]int64) {
	entries := r.sorted()
	byName := make(map[string]*entry, len(entries))
	for _, e := range entries {
		byName[e.name] = e
	}
	if names == nil {
		names = make([]string, 0, len(entries))
		for _, e := range entries {
			if e.kind != kindHistogram {
				names = append(names, e.name)
			}
		}
		sort.Strings(names)
	}
	next := make(map[string]int64, len(names))
	var b strings.Builder
	for _, name := range names {
		e, ok := byName[name]
		if !ok {
			continue
		}
		v := e.value()
		next[name] = v
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if e.cumulative() && elapsed > 0 {
			rate := float64(v-prev[name]) / elapsed.Seconds()
			fmt.Fprintf(&b, "%s=%d(%.0f/s)", strings.TrimPrefix(name, "xnf_"), v, rate)
		} else {
			fmt.Fprintf(&b, "%s=%d", strings.TrimPrefix(name, "xnf_"), v)
		}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	fmt.Fprintf(&b, " heap=%dMB goroutines=%d", m.HeapAlloc>>20, runtime.NumGoroutine())
	return b.String(), next
}

// LogLoop writes a timestamped one-line health log to w every interval
// until stop closes. names selects the
// reported metrics (nil = all counters and gauges). Run it on its own
// goroutine; it never blocks metric recording.
func (r *Registry) LogLoop(w io.Writer, every time.Duration, names []string, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	prev := make(map[string]int64)
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			var line string
			line, prev = r.StatsLine(names, prev, now.Sub(last))
			last = now
			fmt.Fprintf(w, "%s stats: %s\n", now.Format("2006/01/02 15:04:05"), line)
		}
	}
}
