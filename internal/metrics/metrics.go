// Package metrics is the runtime observability layer: a registry of named
// counters, gauges and latency histograms that every other layer (wire
// server, engine, worker pool, WAL, column store) threads its counters
// through. The hot path is lock-free — recording is one or two atomic adds
// with zero allocation — while snapshots (the /metrics endpoint, the
// FrameStats wire frame, the periodic stats line) walk the registry under a
// read lock.
//
// Registration is get-or-create: asking for an existing name returns the
// existing metric, so two servers over one database share counters instead
// of colliding. Derived metrics (plan-cache hit rate, pool occupancy, WAL
// commit counts owned by other subsystems) register as CounterFunc/
// GaugeFunc callbacks and are evaluated at snapshot time.
//
// Exposure paths, all reading the same registry:
//
//   - WritePrometheus: the Prometheus text format, served at /metrics.
//   - WriteVars: an expvar-style JSON snapshot (plus MemStats and the
//     goroutine count), served at /debug/vars.
//   - Snapshot: a flat, sorted []Sample — the payload of the FrameStats
//     wire frame and of xnfsql's \metrics.
//   - LogLoop: a periodic one-line stats logger with per-interval rates.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is a programming error; it is
// applied as-is to keep Add branch-free).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of histogram buckets. Bucket i counts
// observations v with UpperBound(i-1) < v <= UpperBound(i), where
// UpperBound(i) = 2^i; the last bucket is unbounded. With nanosecond
// observations the range spans 1ns to ~9 minutes before the overflow
// bucket, which covers any statement latency worth histogramming.
const HistBuckets = 40

// Histogram is a fixed log-scale (power-of-two bounds) latency histogram.
// Observe is wait-free: two atomic adds and one atomic bucket increment,
// no allocation. Quantiles are extracted from the bucket counts and
// reported as the upper bound of the bucket holding the requested rank —
// exact whenever observations fall on bucket bounds, otherwise within one
// power of two.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// UpperBound returns the inclusive upper bound of bucket i (2^i), or
// math.MaxInt64 for the final overflow bucket.
func UpperBound(i int) int64 {
	if i >= HistBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// bucketOf returns the index of the bucket counting v: the smallest i with
// v <= 2^i, clamped to the overflow bucket.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // ceil(log2(v))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing the ceil(q*count)-th smallest observation, or 0 for an
// empty histogram. Concurrent Observes may make the snapshot approximate
// by a few observations; bounds never regress.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return UpperBound(i)
		}
	}
	return UpperBound(HistBuckets - 1)
}

// Buckets returns a snapshot of the per-bucket counts.
func (h *Histogram) Buckets() [HistBuckets]int64 {
	var out [HistBuckets]int64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// kind tags what a registry entry holds.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind kind
	c    *Counter
	g    *Gauge
	f    func() int64
	h    *Histogram
}

// value evaluates the entry's current scalar (histograms report count).
func (e *entry) value() int64 {
	switch e.kind {
	case kindCounter:
		return e.c.Load()
	case kindGauge:
		return e.g.Load()
	case kindCounterFunc, kindGaugeFunc:
		return e.f()
	case kindHistogram:
		return e.h.Count()
	}
	return 0
}

// cumulative reports whether the entry is a counter (rates make sense).
func (e *entry) cumulative() bool {
	return e.kind == kindCounter || e.kind == kindCounterFunc
}

// Registry holds named metrics. All registration methods are get-or-create
// and safe for concurrent use; recording through the returned handles is
// lock-free.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// register returns the existing entry for name (validating its kind) or
// installs the given one.
func (r *Registry) register(e *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[e.name]; ok {
		if old.kind != e.kind {
			panic(fmt.Sprintf("metrics: %q re-registered as a different kind", e.name))
		}
		return old
	}
	r.byName[e.name] = e
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(&entry{name: name, help: help, kind: kindCounter, c: &Counter{}}).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(&entry{name: name, help: help, kind: kindGauge, g: &Gauge{}}).g
}

// CounterFunc registers a callback evaluated at snapshot time as a
// cumulative counter (a subsystem that already keeps its own totals).
func (r *Registry) CounterFunc(name, help string, f func() int64) {
	r.register(&entry{name: name, help: help, kind: kindCounterFunc, f: f})
}

// GaugeFunc registers a callback evaluated at snapshot time as an
// instantaneous gauge.
func (r *Registry) GaugeFunc(name, help string, f func() int64) {
	r.register(&entry{name: name, help: help, kind: kindGaugeFunc, f: f})
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(&entry{name: name, help: help, kind: kindHistogram, h: &Histogram{}}).h
}

// Sample is one snapshot entry. Histograms flatten into four samples:
// name_count, name_sum, name_p50 and name_p99.
type Sample struct {
	Name  string
	Value float64
}

// sorted returns the entries sorted by name (stable output everywhere).
func (r *Registry) sorted() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.byName))
	for _, e := range r.byName {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Snapshot returns every metric as a flat, name-sorted sample list — the
// payload of the FrameStats wire frame and of xnfsql's \metrics.
func (r *Registry) Snapshot() []Sample {
	entries := r.sorted()
	out := make([]Sample, 0, len(entries)+8)
	for _, e := range entries {
		if e.kind == kindHistogram {
			out = append(out,
				Sample{Name: e.name + "_count", Value: float64(e.h.Count())},
				Sample{Name: e.name + "_sum", Value: float64(e.h.Sum())},
				Sample{Name: e.name + "_p50", Value: float64(e.h.Quantile(0.50))},
				Sample{Name: e.name + "_p99", Value: float64(e.h.Quantile(0.99))},
			)
			continue
		}
		out = append(out, Sample{Name: e.name, Value: float64(e.value())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Value returns the current scalar value of the named metric (histogram
// names report their observation count); ok is false for unknown names.
func (r *Registry) Value(name string) (int64, bool) {
	r.mu.RLock()
	e, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return e.value(), true
}
