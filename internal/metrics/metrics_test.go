package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// Bucket i covers (2^(i-1), 2^i]; values on the bound land in bucket i,
	// values one past it in bucket i+1.
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11},
		{1 << 38, 38}, {1<<38 + 1, 39},
		{math.MaxInt64, HistBuckets - 1},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		got := -1
		for i, n := range h.Buckets() {
			if n != 0 {
				got = i
			}
		}
		if got != c.want {
			t.Errorf("Observe(%d) landed in bucket %d, want %d", c.v, got, c.want)
		}
	}
	if UpperBound(0) != 1 || UpperBound(10) != 1024 || UpperBound(HistBuckets-1) != math.MaxInt64 {
		t.Fatalf("UpperBound wrong: %d %d %d", UpperBound(0), UpperBound(10), UpperBound(HistBuckets-1))
	}
}

func TestHistogramQuantileExact(t *testing.T) {
	// Observations placed exactly on bucket upper bounds make quantiles
	// exact: 90 at 128ns, 9 at 1024ns, 1 at 65536ns.
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(128)
	}
	for i := 0; i < 9; i++ {
		h.Observe(1024)
	}
	h.Observe(65536)
	if got := h.Quantile(0.50); got != 128 {
		t.Errorf("p50 = %d, want 128", got)
	}
	if got := h.Quantile(0.90); got != 128 {
		t.Errorf("p90 = %d, want 128 (rank 90 of 100 is the last 128)", got)
	}
	if got := h.Quantile(0.99); got != 1024 {
		t.Errorf("p99 = %d, want 1024", got)
	}
	if got := h.Quantile(1.0); got != 65536 {
		t.Errorf("p100 = %d, want 65536", got)
	}
	if h.Count() != 100 || h.Sum() != 90*128+9*1024+65536 {
		t.Errorf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Errorf("empty histogram p99 = %d, want 0", empty.Quantile(0.99))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	// Concurrent recording (run under -race in CI): counts must balance.
	var h Histogram
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var total int64
	for _, n := range h.Buckets() {
		total += n
	}
	if total != workers*per {
		t.Fatalf("bucket sum = %d, want %d", total, workers*per)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("xnf_test_total", "help")
	b := r.Counter("xnf_test_total", "help")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	if v, ok := r.Value("xnf_test_total"); !ok || v != 3 {
		t.Fatalf("Value = %d, %v", v, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("xnf_test_total", "help")
}

// promLine matches one Prometheus sample line: name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{le="(\+Inf|\d+)"\})? -?\d+(\.\d+)?(e[+-]\d+)?$`)

func TestPrometheusOutputParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("xnf_frames_in_total", "Frames received.").Add(7)
	r.Gauge("xnf_sessions_active", "Connected sessions.").Set(2)
	r.GaugeFunc("xnf_pool_in_use", "Pool tokens out.", func() int64 { return 1 })
	r.CounterFunc("xnf_wal_commits_total", "Commits.", func() int64 { return 9 })
	h := r.Histogram("xnf_statement_latency_ns", "Latency.")
	h.Observe(100)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Every non-comment line must parse; TYPE lines must precede samples.
	seenType := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad TYPE %q", f[3])
			}
			seenType[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && seenType[strings.TrimSuffix(name, suf)] {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if !seenType[base] {
			t.Fatalf("sample %q has no preceding TYPE", name)
		}
	}

	// Stable metric names: the families the scrape contract promises.
	for _, want := range []string{
		"xnf_frames_in_total 7",
		"xnf_sessions_active 2",
		"xnf_pool_in_use 1",
		"xnf_wal_commits_total 9",
		`xnf_statement_latency_ns_bucket{le="+Inf"} 2`,
		"xnf_statement_latency_ns_count 2",
		"xnf_statement_latency_ns_sum 5100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Histogram buckets must be cumulative: the 5000 observation is
	// included in every le >= 8192 bucket.
	if !strings.Contains(out, `xnf_statement_latency_ns_bucket{le="8192"} 2`) {
		t.Error("histogram buckets not cumulative")
	}

	// Output must be deterministic (sorted by name).
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("prometheus output not stable across calls")
	}
}

func TestSnapshotFlattensHistograms(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("xnf_lat_ns", "")
	for i := 0; i < 100; i++ {
		h.Observe(128)
	}
	r.Counter("xnf_ops_total", "").Add(5)
	snap := r.Snapshot()
	got := map[string]float64{}
	for _, s := range snap {
		got[s.Name] = s.Value
	}
	for name, want := range map[string]float64{
		"xnf_lat_ns_count": 100, "xnf_lat_ns_sum": 12800,
		"xnf_lat_ns_p50": 128, "xnf_lat_ns_p99": 128,
		"xnf_ops_total": 5,
	} {
		if got[name] != want {
			t.Errorf("%s = %v, want %v", name, got[name], want)
		}
	}
	// Sorted by name.
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q >= %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestVarsJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("xnf_ops_total", "").Add(2)
	data := r.Vars(func() map[string]any { return map[string]any{"slow_queries": []string{"SELECT 1"}} })
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("vars not valid JSON: %v", err)
	}
	m, ok := doc["metrics"].(map[string]any)
	if !ok || m["xnf_ops_total"] != float64(2) {
		t.Fatalf("metrics section wrong: %v", doc["metrics"])
	}
	if _, ok := doc["memstats"]; !ok {
		t.Fatal("memstats missing")
	}
	if _, ok := doc["goroutines"]; !ok {
		t.Fatal("goroutines missing")
	}
	if _, ok := doc["slow_queries"]; !ok {
		t.Fatal("extra vars not merged")
	}
}

func TestStatsLineRates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("xnf_ops_total", "")
	g := r.Gauge("xnf_open", "")
	c.Add(10)
	g.Set(3)
	line, snap := r.StatsLine(nil, nil, 0)
	if !strings.Contains(line, "ops_total=10") || !strings.Contains(line, "open=3") {
		t.Fatalf("line = %q", line)
	}
	if !strings.Contains(line, "goroutines=") {
		t.Fatalf("line missing runtime digest: %q", line)
	}
	c.Add(20)
	line, _ = r.StatsLine([]string{"xnf_ops_total"}, snap, 2*time.Second)
	if !strings.Contains(line, "ops_total=30(10/s)") {
		t.Fatalf("rate line = %q", line)
	}
}
