package metrics

import (
	"fmt"
	"io"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers followed by samples, metrics
// sorted by name, histograms as cumulative _bucket series with le labels
// plus _sum and _count. Counter-func and gauge-func callbacks are
// evaluated inline.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, e := range r.sorted() {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		typ := "gauge"
		if e.cumulative() {
			typ = "counter"
		}
		if e.kind == kindHistogram {
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, typ); err != nil {
			return err
		}
		if e.kind != kindHistogram {
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name, e.value()); err != nil {
				return err
			}
			continue
		}
		counts := e.h.Buckets()
		var cum int64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < HistBuckets-1 {
				le = fmt.Sprintf("%d", UpperBound(i))
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", e.name, e.h.Sum(), e.name, e.h.Count()); err != nil {
			return err
		}
	}
	return nil
}
