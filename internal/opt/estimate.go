package opt

import (
	"sort"

	"xnf/internal/qgm"
)

// chooseOrder picks a join order for a Select box's quantifiers: greedy
// smallest-effective-cardinality first, preferring quantifiers connected
// to the bound set by an equality predicate — the classic avoid-cross-
// products heuristic. With JoinOrdering disabled the syntactic order is
// kept (the naive baseline).
func (c *Compiler) chooseOrder(quants []*qgm.Quantifier, preds []qgm.Expr) []*qgm.Quantifier {
	if !c.opts.JoinOrdering || len(quants) <= 1 {
		return quants
	}
	eff := make(map[*qgm.Quantifier]float64, len(quants))
	for _, q := range quants {
		card := float64(c.estimateBox(q.Input))
		for _, p := range preds {
			if containsSubquery(p) {
				continue
			}
			refs := qgm.QuantsIn(p)
			if len(refs) == 1 && refs[q] {
				card *= c.selectivity(p)
			}
		}
		if card < 1 {
			card = 1
		}
		eff[q] = card
	}
	connected := func(q *qgm.Quantifier, bound map[*qgm.Quantifier]bool) bool {
		for _, p := range preds {
			if containsSubquery(p) {
				continue
			}
			refs := qgm.QuantsIn(p)
			if !refs[q] {
				continue
			}
			for r := range refs {
				if r != q && bound[r] {
					return true
				}
			}
		}
		return false
	}

	remaining := append([]*qgm.Quantifier{}, quants...)
	sort.SliceStable(remaining, func(i, j int) bool { return eff[remaining[i]] < eff[remaining[j]] })
	var order []*qgm.Quantifier
	bound := make(map[*qgm.Quantifier]bool)
	for len(remaining) > 0 {
		pick := -1
		for i, q := range remaining {
			if len(order) == 0 || connected(q, bound) {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = 0 // forced cross product: take the smallest
		}
		q := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		order = append(order, q)
		bound[q] = true
	}
	return order
}

// estimateBox returns a rough output-cardinality estimate for a box, used
// only for ordering decisions.
func (c *Compiler) estimateBox(box *qgm.Box) int64 {
	return c.estimateBoxDepth(box, 0)
}

func (c *Compiler) estimateBoxDepth(box *qgm.Box, depth int) int64 {
	if depth > 16 {
		return 1000
	}
	switch box.Kind {
	case qgm.BaseTable:
		if box.RowEst > 0 {
			return box.RowEst
		}
		return 1000
	case qgm.Select:
		est := 1.0
		for _, q := range box.Quants {
			est *= float64(c.estimateBoxDepth(q.Input, depth+1))
		}
		for _, p := range box.Preds {
			if !containsSubquery(p) {
				est *= c.selectivity(p)
			} else {
				est *= 0.5
			}
		}
		if est < 1 {
			return 1
		}
		return int64(est)
	case qgm.GroupBy:
		in := c.estimateBoxDepth(box.Quants[0].Input, depth+1)
		if len(box.GroupExprs) == 0 {
			return 1
		}
		est := in / 2
		if est < 1 {
			return 1
		}
		return est
	case qgm.Union:
		var sum int64
		for _, q := range box.Quants {
			sum += c.estimateBoxDepth(q.Input, depth+1)
		}
		return sum
	default:
		return 1000
	}
}

// selectivity estimates the fraction of rows a predicate retains.
func (c *Compiler) selectivity(p qgm.Expr) float64 {
	bo, ok := p.(*qgm.BinOp)
	if !ok {
		return 0.5
	}
	switch bo.Op {
	case "=":
		card := int64(1)
		if cr, ok := bo.L.(*qgm.ColRef); ok {
			if cc := colCard(cr); cc > card {
				card = cc
			}
		}
		if cr, ok := bo.R.(*qgm.ColRef); ok {
			if cc := colCard(cr); cc > card {
				card = cc
			}
		}
		if card <= 1 {
			return 0.1
		}
		return 1.0 / float64(card)
	case "<", "<=", ">", ">=":
		return 0.3
	case "<>":
		return 0.9
	case "LIKE":
		return 0.25
	case "AND":
		return c.selectivity(bo.L) * c.selectivity(bo.R)
	case "OR":
		s := c.selectivity(bo.L) + c.selectivity(bo.R)
		if s > 1 {
			return 1
		}
		return s
	default:
		return 0.5
	}
}

// colCard returns the distinct-value estimate of a column reference when
// it bottoms out at a base table.
func colCard(cr *qgm.ColRef) int64 {
	if cr.Q == nil || cr.Q.Input == nil {
		return 0
	}
	box := cr.Q.Input
	ord := cr.Ord
	for depth := 0; depth < 16; depth++ {
		switch box.Kind {
		case qgm.BaseTable:
			if ord < len(box.ColCard) {
				return box.ColCard[ord]
			}
			return 0
		case qgm.Select:
			if ord >= len(box.Head) || box.Head[ord].Expr == nil {
				return 0
			}
			inner, ok := box.Head[ord].Expr.(*qgm.ColRef)
			if !ok {
				return 0
			}
			box = inner.Q.Input
			ord = inner.Ord
		default:
			return 0
		}
	}
	return 0
}
