package opt

import (
	"fmt"
	"strings"

	"xnf/internal/exec"
	"xnf/internal/qgm"
)

// colEnv maps quantifiers to slot bases in the row layout of the plan
// fragment being compiled. References to quantifiers not bound locally are
// correlated and are routed to the paramCollector of the enclosing
// subquery compilation.
type colEnv struct {
	slots map[*qgm.Quantifier]int
	outer *paramCollector
}

func newColEnv(outer *paramCollector) *colEnv {
	return &colEnv{slots: make(map[*qgm.Quantifier]int), outer: outer}
}

func (e *colEnv) bind(q *qgm.Quantifier, base int) { e.slots[q] = base }

// paramCollector gathers the outer references of one subquery compilation.
// Each distinct outer column becomes one parameter slot; the caller-side
// expressions (params) are evaluated in the caller's environment to build
// the frame passed to the subplan.
type paramCollector struct {
	callerEnv *colEnv
	compiler  *Compiler
	params    []exec.Expr
	keys      []string
	index     map[string]int
}

func newParamCollector(c *Compiler, callerEnv *colEnv) *paramCollector {
	return &paramCollector{compiler: c, callerEnv: callerEnv, index: make(map[string]int)}
}

func (pc *paramCollector) paramFor(cr *qgm.ColRef) (exec.Expr, error) {
	key := fmt.Sprintf("q%d.%d", cr.Q.ID, cr.Ord)
	if idx, ok := pc.index[key]; ok {
		return &exec.Param{Idx: idx, Name: cr.String()}, nil
	}
	callerSide, err := pc.compiler.compileExpr(cr, pc.callerEnv)
	if err != nil {
		return nil, err
	}
	idx := len(pc.params)
	pc.params = append(pc.params, callerSide)
	pc.keys = append(pc.keys, key)
	pc.index[key] = idx
	return &exec.Param{Idx: idx, Name: cr.String()}, nil
}

// placeholderFor routes a statement parameter through a subquery frame:
// like an outer column it claims one slot of the subplan's parameter frame,
// with the caller side re-compiled in the caller's environment (which
// recurses outward until the statement frame is reached).
func (pc *paramCollector) placeholderFor(ph *qgm.Placeholder) (exec.Expr, error) {
	key := fmt.Sprintf("ph.%d", ph.Idx)
	if idx, ok := pc.index[key]; ok {
		return &exec.Param{Idx: idx, Name: ph.String()}, nil
	}
	callerSide, err := pc.compiler.compileExpr(ph, pc.callerEnv)
	if err != nil {
		return nil, err
	}
	idx := len(pc.params)
	pc.params = append(pc.params, callerSide)
	pc.keys = append(pc.keys, key)
	pc.index[key] = idx
	return &exec.Param{Idx: idx, Name: ph.String()}, nil
}

// compileExpr lowers a QGM expression to a runtime expression under env.
func (c *Compiler) compileExpr(e qgm.Expr, env *colEnv) (exec.Expr, error) {
	switch n := e.(type) {
	case *qgm.Const:
		return &exec.Const{V: n.V}, nil
	case *qgm.Placeholder:
		if env.outer == nil {
			// Top-level compilation: the statement arguments are the plan's
			// parameter frame (exec.CollectWith).
			return &exec.Param{Idx: n.Idx, Name: n.String()}, nil
		}
		return env.outer.placeholderFor(n)
	case *qgm.ColRef:
		if base, ok := env.slots[n.Q]; ok {
			name := ""
			if n.Q.Input != nil && n.Ord < len(n.Q.Input.Head) {
				name = n.Q.Name + "." + n.Q.Input.Head[n.Ord].Name
			}
			return &exec.Slot{Idx: base + n.Ord, Name: name}, nil
		}
		if env.outer == nil {
			return nil, fmt.Errorf("opt: unbound column reference %s", n.String())
		}
		return env.outer.paramFor(n)
	case *qgm.BinOp:
		l, err := c.compileExpr(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(n.R, env)
		if err != nil {
			return nil, err
		}
		return &exec.Bin{Op: n.Op, L: l, R: r}, nil
	case *qgm.UnOp:
		x, err := c.compileExpr(n.X, env)
		if err != nil {
			return nil, err
		}
		return &exec.Un{Op: n.Op, X: x}, nil
	case *qgm.Func:
		args := make([]exec.Expr, len(n.Args))
		for i, a := range n.Args {
			x, err := c.compileExpr(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = x
		}
		return &exec.ScalarFunc{Name: n.Name, Args: args}, nil
	case *qgm.Case:
		out := &exec.CaseExpr{}
		for _, w := range n.Whens {
			cond, err := c.compileExpr(w.Cond, env)
			if err != nil {
				return nil, err
			}
			res, err := c.compileExpr(w.Result, env)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, exec.CaseWhen{Cond: cond, Result: res})
		}
		if n.Else != nil {
			el, err := c.compileExpr(n.Else, env)
			if err != nil {
				return nil, err
			}
			out.Else = el
		}
		return out, nil
	case *qgm.SubqueryRef:
		return c.compileSubquery(n, env)
	default:
		return nil, fmt.Errorf("opt: cannot compile expression %T", e)
	}
}

// link is one IN-style equality between a caller-side expression and a
// head column of the subquery.
type link struct {
	callerSide qgm.Expr
	subOrd     int
}

// extracted is one correlation equality pulled out of a subquery box: the
// outer side becomes a probe key, the local side is appended to the
// subquery's output as build-key column appendedOrd.
type extracted struct {
	outerSide   qgm.Expr
	localSide   qgm.Expr
	appendedOrd int
}

// compileSubquery lowers a quantified subquery to an exec.Subplan, picking
// the hashed-semijoin strategy when the subquery is uncorrelated once its
// equality links are extracted, and the naive re-execution strategy
// otherwise (or when hashed subplans are disabled).
func (c *Compiler) compileSubquery(sr *qgm.SubqueryRef, env *colEnv) (exec.Expr, error) {
	sub := sr.Quant.Input
	mode := exec.ModeExists
	switch sr.Quant.Type {
	case qgm.AntiExist:
		mode = exec.ModeAnti
	case qgm.Scalar:
		mode = exec.ModeScalar
	}
	inStyle := len(sr.Preds) > 0

	// Split the SubqueryRef predicates (IN-style links: callerExpr =
	// sub.col) into probe/build pairs; anything else is residual.
	var links []link
	var residual []qgm.Expr
	for _, p := range sr.Preds {
		if eq, ok := p.(*qgm.BinOp); ok && eq.Op == "=" {
			if cr, ok := eq.R.(*qgm.ColRef); ok && cr.Q == sr.Quant && exprAvoidsQuant(eq.L, sr.Quant) {
				links = append(links, link{callerSide: eq.L, subOrd: cr.Ord})
				continue
			}
			if cr, ok := eq.L.(*qgm.ColRef); ok && cr.Q == sr.Quant && exprAvoidsQuant(eq.R, sr.Quant) {
				links = append(links, link{callerSide: eq.R, subOrd: cr.Ord})
				continue
			}
		}
		residual = append(residual, p)
	}

	// Attempt the hashed strategy: extract correlation equalities from the
	// subquery body (EXISTS style) so the remainder compiles uncorrelated.
	if c.opts.HashedSubplans && len(residual) == 0 && mode != exec.ModeScalar || // exists/anti
		c.opts.HashedSubplans && mode == exec.ModeScalar { // scalar: only if it happens to be uncorrelated
		var exts []extracted
		remainder := sub.Preds
		if sub.Kind == qgm.Select && mode != exec.ModeScalar {
			exts, remainder = c.extractCorrelation(sub, env)
		}
		pc := newParamCollector(c, env)
		var plan exec.Plan
		var err error
		if sub.Kind == qgm.Select {
			extraOut := make([]qgm.Expr, len(exts))
			for i := range exts {
				exts[i].appendedOrd = len(sub.Head) + i
				extraOut[i] = exts[i].localSide
			}
			plan, err = c.compileSelectCustom(sub, remainder, extraOut, pc)
		} else {
			plan, err = c.compileBox(sub, pc)
		}
		if err != nil {
			return nil, err
		}
		if onlyPlaceholderParams(pc) && len(residual) == 0 {
			// Statement placeholders are constant for the whole execution,
			// so a subquery whose only "correlation" is placeholders still
			// materializes+hashes once per context — a prepared query must
			// not lose the hashed strategy its literal form would get.
			sp := &exec.Subplan{ID: c.newID(), Mode: mode, Plan: plan, InStyle: inStyle, Hashed: true, Params: pc.params}
			for _, l := range links {
				probe, err := c.compileExpr(l.callerSide, env)
				if err != nil {
					return nil, err
				}
				sp.Probe = append(sp.Probe, probe)
				sp.Build = append(sp.Build, &exec.Slot{Idx: l.subOrd})
			}
			for _, ex := range exts {
				probe, err := c.compileExpr(ex.outerSide, env)
				if err != nil {
					return nil, err
				}
				sp.Probe = append(sp.Probe, probe)
				sp.Build = append(sp.Build, &exec.Slot{Idx: ex.appendedOrd})
			}
			return sp, nil
		}
	}

	// Rerun strategy: the subquery executes per evaluation with its
	// correlation bound through parameters. IN links and residual
	// predicates are applied as a filter over the subquery's output —
	// except for NULL-aware NOT IN, whose links must stay outside the plan
	// so three-valued logic is preserved.
	pc := newParamCollector(c, env)
	plan, err := c.compileBox(sub, pc)
	if err != nil {
		return nil, err
	}
	keepOutside := sr.Quant.NullAware && len(residual) == 0
	var filterPreds []qgm.Expr
	var outsideLinks []link
	if keepOutside {
		outsideLinks = links
		filterPreds = residual
	} else {
		for _, l := range links {
			filterPreds = append(filterPreds, &qgm.BinOp{Op: "=", L: l.callerSide, R: &qgm.ColRef{Q: sr.Quant, Ord: l.subOrd}})
		}
		filterPreds = append(filterPreds, residual...)
	}
	if len(filterPreds) > 0 {
		fenv := newColEnv(pc)
		fenv.bind(sr.Quant, 0)
		var compiled []exec.Expr
		for _, p := range filterPreds {
			ce, err := c.compileExpr(p, fenv)
			if err != nil {
				return nil, err
			}
			compiled = append(compiled, ce)
		}
		plan = &exec.FilterPlan{Child: plan, Pred: exec.AndExprs(compiled)}
	}
	sp := &exec.Subplan{ID: c.newID(), Mode: mode, Plan: plan, InStyle: inStyle, Params: pc.params}
	for _, l := range outsideLinks {
		probe, err := c.compileExpr(l.callerSide, env)
		if err != nil {
			return nil, err
		}
		sp.Probe = append(sp.Probe, probe)
		sp.Build = append(sp.Build, &exec.Slot{Idx: l.subOrd})
	}
	return sp, nil
}

// extractCorrelation scans a Select box's predicates for equality
// conjuncts of the form outerExpr = localExpr, where the outer side
// references only quantifiers outside the box and the local side only the
// box's own quantifiers. It returns the extracted pairs and the remaining
// predicates.
func (c *Compiler) extractCorrelation(sub *qgm.Box, env *colEnv) ([]extracted, []qgm.Expr) {
	local := make(map[*qgm.Quantifier]bool)
	for _, q := range sub.Quants {
		local[q] = true
	}
	isLocal := func(e qgm.Expr) bool {
		ok := true
		any := false
		qgm.WalkExpr(e, func(x qgm.Expr) {
			if cr, isCR := x.(*qgm.ColRef); isCR {
				any = true
				if !local[cr.Q] {
					ok = false
				}
			}
			if _, isSub := x.(*qgm.SubqueryRef); isSub {
				ok = false
			}
		})
		return ok && any
	}
	isOuter := func(e qgm.Expr) bool {
		ok := true
		any := false
		qgm.WalkExpr(e, func(x qgm.Expr) {
			if cr, isCR := x.(*qgm.ColRef); isCR {
				any = true
				if local[cr.Q] {
					ok = false
				}
			}
			if _, isSub := x.(*qgm.SubqueryRef); isSub {
				ok = false
			}
		})
		return ok && any
	}
	var exts []extracted
	var remainder []qgm.Expr
	for _, p := range sub.Preds {
		if eq, ok := p.(*qgm.BinOp); ok && eq.Op == "=" {
			switch {
			case isOuter(eq.L) && isLocal(eq.R):
				exts = append(exts, extracted{outerSide: eq.L, localSide: eq.R})
				continue
			case isOuter(eq.R) && isLocal(eq.L):
				exts = append(exts, extracted{outerSide: eq.R, localSide: eq.L})
				continue
			}
		}
		remainder = append(remainder, p)
	}
	return exts, remainder
}

// onlyPlaceholderParams reports whether every outer reference the subquery
// compilation collected is a statement placeholder (key "ph.N") — i.e. the
// subplan frame is execution-constant, never per-row.
func onlyPlaceholderParams(pc *paramCollector) bool {
	for _, k := range pc.keys {
		if !strings.HasPrefix(k, "ph.") {
			return false
		}
	}
	return true
}

func (c *Compiler) newID() int {
	c.nextID++
	return c.nextID
}

// exprAvoidsQuant reports whether e never references q.
func exprAvoidsQuant(e qgm.Expr, q *qgm.Quantifier) bool {
	ok := true
	qgm.WalkExpr(e, func(x qgm.Expr) {
		if cr, isCR := x.(*qgm.ColRef); isCR && cr.Q == q {
			ok = false
		}
	})
	return ok
}
