// Package opt is the plan optimization and plan refinement stage (Fig. 2):
// it lowers a (rewritten) QGM graph to a physical exec.Plan, choosing join
// orders greedily from catalog statistics, selecting access paths (scan vs
// index lookup), picking hash joins for equi-predicates, spooling shared
// common subexpressions, and deciding subquery strategies (hashed semijoin
// vs naive re-execution). All choices can be disabled through Options so
// the benchmark harness can reproduce the paper's naive baselines.
package opt

import (
	"fmt"

	"xnf/internal/exec"
	"xnf/internal/qgm"
	"xnf/internal/storage"
)

// Options controls which optimizations the compiler may use.
type Options struct {
	HashJoin       bool // use hash joins for equi-predicates
	IndexNL        bool // use index nested-loop joins
	HashedSubplans bool // evaluate uncorrelated subqueries as hash semijoins
	Spool          bool // materialize shared QGM boxes once
	JoinOrdering   bool // greedy cost-based join ordering (else syntax order)
	Vectorize      bool // lower pipeline prefixes to the vexec batch engine
	// TypedKernels runs lowered pipelines directly on typed column-store
	// segment arrays ([]int64/[]float64/[]string with null bitmaps as
	// masks), boxing values only at projection/row boundaries; off keeps
	// the boxed vectors — the measurement baseline. Part of the plan-cache
	// key (Options equality), like every field here.
	TypedKernels bool
	// ZonePruning skips column-store segments whose per-segment min/max
	// refutes a `col <op> constant` conjunct of the scan predicate.
	ZonePruning  bool
	ParallelScan bool // morsel-parallel scan→filter→aggregate pipelines
	// ParallelWorkers bounds the morsel worker pool; 0 means GOMAXPROCS.
	// Only consulted when ParallelScan is set.
	ParallelWorkers int
	// ParallelMinRows is the live row count below which a parallel scan
	// folds sequentially; 0 means vexec.DefaultParallelMinRows.
	ParallelMinRows int64
}

// DefaultOptions enables everything.
func DefaultOptions() Options {
	return Options{HashJoin: true, IndexNL: true, HashedSubplans: true, Spool: true, JoinOrdering: true, Vectorize: true, TypedKernels: true, ZonePruning: true, ParallelScan: true}
}

// NaiveOptions disables every optimization: syntax-order nested-loop joins
// and re-executed subqueries — the strawman execution strategy of Sect. 3.2.
func NaiveOptions() Options { return Options{} }

// Compiler lowers one QGM graph.
type Compiler struct {
	opts      Options
	store     *storage.Store
	g         *qgm.Graph
	consumers map[int]int
	nextID    int
}

// NewCompiler prepares a compiler for a graph.
func NewCompiler(store *storage.Store, g *qgm.Graph, opts Options) *Compiler {
	return &Compiler{opts: opts, store: store, g: g, consumers: g.Consumers(), nextID: 1 << 20}
}

// CompileTop compiles the graph's Top box (single-output SQL queries):
// the output quantifier's box plus ORDER BY / LIMIT.
func (c *Compiler) CompileTop() (exec.Plan, error) {
	top := c.g.TopBox
	if top == nil || len(top.Outputs) != 1 {
		return nil, fmt.Errorf("opt: CompileTop requires a single-output Top box")
	}
	out := top.Outputs[0]
	plan, _, err := c.CompileBox(out.Quant.Input, nil)
	if err != nil {
		return nil, err
	}
	if len(top.OrderBy) > 0 {
		keys := make([]exec.Expr, len(top.OrderBy))
		desc := make([]bool, len(top.OrderBy))
		env := newColEnv(nil)
		env.bind(out.Quant, 0)
		for i, o := range top.OrderBy {
			k, err := c.compileExpr(o.Expr, env)
			if err != nil {
				return nil, err
			}
			keys[i] = k
			desc[i] = o.Desc
		}
		plan = &exec.SortPlan{Child: plan, Keys: keys, Desc: desc}
	}
	if top.HiddenCols > 0 {
		// Strip trailing hidden sort columns.
		cols := plan.Columns()
		keep := len(cols) - top.HiddenCols
		exprs := make([]exec.Expr, keep)
		for i := 0; i < keep; i++ {
			exprs[i] = &exec.Slot{Idx: i, Name: cols[i].Name}
		}
		plan = &exec.ProjectPlan{Child: plan, Exprs: exprs, Cols: cols[:keep]}
	}
	if top.Limit >= 0 {
		plan = &exec.LimitPlan{Child: plan, N: top.Limit}
	}
	if c.opts.Vectorize {
		plan = vectorizePlan(plan, c.opts)
	}
	return plan, nil
}

// CompileOutput compiles a top-level output box — the CO extraction legs
// core drives one plan per TAKEn output — applying the same batch lowering
// as CompileTop. Callers that compile boxes as subtrees of a larger plan
// keep using CompileBox, which leaves lowering to the enclosing entry
// point so pipelines fuse maximally.
func (c *Compiler) CompileOutput(box *qgm.Box) (exec.Plan, error) {
	plan, _, err := c.CompileBox(box, nil)
	if err != nil {
		return nil, err
	}
	if c.opts.Vectorize {
		plan = vectorizePlan(plan, c.opts)
	}
	return plan, nil
}

// CompileRowExpr compiles a QGM expression evaluated against a single row
// bound to quantifier q at slot base 0 — the UPDATE/DELETE predicate and
// assignment path.
func (c *Compiler) CompileRowExpr(q *qgm.Quantifier, e qgm.Expr) (exec.Expr, error) {
	env := newColEnv(nil)
	env.bind(q, 0)
	return c.compileExpr(e, env)
}

// CompileBox compiles any non-Top box into a plan producing its head. The
// collector receives correlated outer references; pass nil for top-level
// boxes. The bool result reports whether the subtree is correlated (uses
// outer parameters), which disqualifies it from spooling.
func (c *Compiler) CompileBox(box *qgm.Box, outer *paramCollector) (exec.Plan, bool, error) {
	before := 0
	if outer != nil {
		before = len(outer.params)
	}
	plan, err := c.compileBox(box, outer)
	if err != nil {
		return nil, false, err
	}
	correlated := outer != nil && len(outer.params) > before
	if c.opts.Spool && !correlated && c.consumers[box.ID] > 1 {
		plan = &exec.SpoolPlan{ID: box.ID, Child: plan}
	}
	return plan, correlated, nil
}

func (c *Compiler) compileBox(box *qgm.Box, outer *paramCollector) (exec.Plan, error) {
	switch box.Kind {
	case qgm.BaseTable:
		return &exec.ScanPlan{Table: box.Table, Cols: headColumns(box)}, nil
	case qgm.Select:
		return c.compileSelect(box, outer)
	case qgm.GroupBy:
		return c.compileGroupBy(box, outer)
	case qgm.Union:
		return c.compileUnion(box, outer)
	default:
		return nil, fmt.Errorf("opt: cannot compile %s box %d", box.Kind, box.ID)
	}
}

func headColumns(box *qgm.Box) []exec.Column {
	cols := make([]exec.Column, len(box.Head))
	for i, h := range box.Head {
		cols[i] = exec.Column{Name: h.Name, Type: h.Type}
	}
	return cols
}

func (c *Compiler) compileUnion(box *qgm.Box, outer *paramCollector) (exec.Plan, error) {
	var children []exec.Plan
	for _, q := range box.Quants {
		p, _, err := c.CompileBox(q.Input, outer)
		if err != nil {
			return nil, err
		}
		children = append(children, p)
	}
	return &exec.UnionPlan{Children: children, Distinct: box.Distinct}, nil
}

func (c *Compiler) compileGroupBy(box *qgm.Box, outer *paramCollector) (exec.Plan, error) {
	in := box.Quants[0]
	child, _, err := c.CompileBox(in.Input, outer)
	if err != nil {
		return nil, err
	}
	env := newColEnv(outer)
	env.bind(in, 0)
	var groups []exec.Expr
	for _, ge := range box.GroupExprs {
		g, err := c.compileExpr(ge, env)
		if err != nil {
			return nil, err
		}
		groups = append(groups, g)
	}
	var aggs []exec.AggSpec
	// The head is group columns followed by aggregate columns (the shape
	// the semantic layer builds); verify and translate.
	for i, h := range box.Head {
		if i < len(box.GroupExprs) {
			if !qgm.EqualExpr(h.Expr, box.GroupExprs[i]) {
				return nil, fmt.Errorf("opt: GroupBy head column %d does not match group expression", i)
			}
			continue
		}
		f, ok := h.Expr.(*qgm.Func)
		if !ok {
			return nil, fmt.Errorf("opt: GroupBy head column %s is not an aggregate", h.Name)
		}
		spec := exec.AggSpec{Name: f.Name, Star: f.Star, Distinct: f.Distinct}
		if !f.Star {
			arg, err := c.compileExpr(f.Args[0], env)
			if err != nil {
				return nil, err
			}
			spec.Arg = arg
		}
		aggs = append(aggs, spec)
	}
	return &exec.AggPlan{Child: child, Groups: groups, Aggs: aggs, Cols: headColumns(box)}, nil
}
