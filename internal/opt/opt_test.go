package opt

import (
	"strings"
	"testing"

	"xnf/internal/ast"
	"xnf/internal/catalog"
	"xnf/internal/exec"
	"xnf/internal/parser"
	"xnf/internal/semantics"
	"xnf/internal/storage"
	"xnf/internal/types"
)

// testStore builds DEPT/EMP with statistics that make DEPT the small side.
func testStore(t testing.TB) *storage.Store {
	t.Helper()
	s := storage.NewStore(catalog.New())
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.CreateTable(&catalog.Table{
		Name: "DEPT",
		Columns: []catalog.Column{
			{Name: "dno", Type: types.IntType}, {Name: "loc", Type: types.StringType},
		},
		PrimaryKey: []string{"dno"},
	}))
	must(s.CreateTable(&catalog.Table{
		Name: "EMP",
		Columns: []catalog.Column{
			{Name: "eno", Type: types.IntType}, {Name: "edno", Type: types.IntType},
		},
		PrimaryKey: []string{"eno"},
	}))
	dept, _ := s.Table("DEPT")
	for i := int64(1); i <= 5; i++ {
		loc := "HQ"
		if i <= 2 {
			loc = "ARC"
		}
		dept.Insert(types.Row{types.NewInt(i), types.NewString(loc)})
	}
	emp, _ := s.Table("EMP")
	for i := int64(1); i <= 100; i++ {
		emp.Insert(types.Row{types.NewInt(i), types.NewInt(i%5 + 1)})
	}
	must(s.AnalyzeAll())
	return s
}

func compile(t *testing.T, s *storage.Store, sql string, opts Options) exec.Plan {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := semantics.BuildSelect(s.Catalog(), stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(s, g, opts)
	plan, err := c.CompileTop()
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func run(t *testing.T, s *storage.Store, plan exec.Plan) []types.Row {
	t.Helper()
	rows, err := exec.Collect(exec.NewCtx(s), plan)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestJoinOrderingPutsSmallSideFirst(t *testing.T) {
	s := testStore(t)
	plan := compile(t, s, "SELECT e.eno FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'", DefaultOptions())
	expl := plan.Explain(0)
	// With ordering, DEPT (5 rows, filtered) drives; EMP is probed via its
	// PK? No index on edno, so a hash join with DEPT built or probe side —
	// we only assert the plan is a hash join and produces 40 rows.
	if !strings.Contains(expl, "HashJoin") && !strings.Contains(expl, "IndexLookup") {
		t.Errorf("expected hash or index join:\n%s", expl)
	}
	rows := run(t, s, plan)
	if len(rows) != 40 {
		t.Errorf("rows = %d, want 40", len(rows))
	}
}

func TestNaivePlanShape(t *testing.T) {
	s := testStore(t)
	plan := compile(t, s, "SELECT e.eno FROM EMP e, DEPT d WHERE e.edno = d.dno", NaiveOptions())
	expl := plan.Explain(0)
	if strings.Contains(expl, "HashJoin") || strings.Contains(expl, "IndexLookup") || strings.Contains(expl, "Spool") {
		t.Errorf("naive plan uses optimizations:\n%s", expl)
	}
	if !strings.Contains(expl, "NLJoin") {
		t.Errorf("naive plan missing nested loop:\n%s", expl)
	}
	if len(run(t, s, plan)) != 100 {
		t.Error("naive join wrong")
	}
}

func TestIndexNLJoinChosenWithIndex(t *testing.T) {
	s := testStore(t)
	if err := s.CreateIndex(&catalog.Index{Name: "emp_edno", Table: "EMP", Columns: []string{"edno"}, Kind: catalog.HashIndex}); err != nil {
		t.Fatal(err)
	}
	plan := compile(t, s, "SELECT e.eno FROM DEPT d, EMP e WHERE d.dno = e.edno AND d.loc = 'ARC'", DefaultOptions())
	expl := plan.Explain(0)
	if !strings.Contains(expl, "IndexLookup EMP.emp_edno") {
		t.Errorf("index NL join not chosen:\n%s", expl)
	}
	if len(run(t, s, plan)) != 40 {
		t.Error("index join wrong result")
	}
}

func TestConstIndexLookup(t *testing.T) {
	s := testStore(t)
	plan := compile(t, s, "SELECT eno FROM EMP WHERE eno = 7", DefaultOptions())
	if !strings.Contains(plan.Explain(0), "IndexLookup EMP.EMP_PK") {
		t.Errorf("PK lookup not chosen:\n%s", plan.Explain(0))
	}
	rows := run(t, s, plan)
	if len(rows) != 1 || rows[0][0].I != 7 {
		t.Errorf("rows = %v", rows)
	}
}

func TestSubqueryStrategySelection(t *testing.T) {
	s := testStore(t)
	sql := "SELECT eno FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.dno = e.edno AND d.loc = 'ARC')"
	// Hashed strategy under default options (rewrite disabled here, so the
	// subquery survives to the compiler).
	stmt, _ := parser.Parse(sql)
	g, err := semantics.BuildSelect(s.Catalog(), stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewCompiler(s, g, DefaultOptions()).CompileTop()
	if err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewCtx(s)
	rows, err := exec.Collect(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 40 {
		t.Fatalf("hashed exists rows = %d", len(rows))
	}
	if ctx.Counters.SubplanRuns != 0 {
		t.Errorf("hashed strategy reran the subplan %d times", ctx.Counters.SubplanRuns)
	}
	// Naive options force rerun-per-row.
	g2, _ := semantics.BuildSelect(s.Catalog(), stmt.(*ast.SelectStmt))
	plan2, err := NewCompiler(s, g2, NaiveOptions()).CompileTop()
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := exec.NewCtx(s)
	rows2, err := exec.Collect(ctx2, plan2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 40 {
		t.Fatalf("naive exists rows = %d", len(rows2))
	}
	if ctx2.Counters.SubplanRuns != 100 {
		t.Errorf("naive strategy ran the subplan %d times, want one per outer row (100)", ctx2.Counters.SubplanRuns)
	}
}

func TestSpoolForSharedBoxes(t *testing.T) {
	s := testStore(t)
	// The same derived table twice: the spool should materialize once.
	sql := `SELECT a.dno FROM (SELECT dno FROM DEPT WHERE loc = 'ARC') a,
	                      (SELECT dno FROM DEPT WHERE loc = 'ARC') b
	        WHERE a.dno = b.dno`
	// Two textual derived tables build two boxes — sharing arises from the
	// single base-table box instead. Verify base scans are spooled when
	// shared... base tables are cheap; our compiler spools only boxes with
	// >1 consumers, which includes the DEPT base box here.
	plan := compile(t, s, sql, DefaultOptions())
	if !strings.Contains(plan.Explain(0), "Spool") {
		t.Errorf("shared base table not spooled:\n%s", plan.Explain(0))
	}
	if len(run(t, s, plan)) != 2 {
		t.Error("spooled query wrong")
	}
}

func TestCompileRowExpr(t *testing.T) {
	s := testStore(t)
	rc, err := semantics.NewRowContext(s.Catalog(), "EMP", "e")
	if err != nil {
		t.Fatal(err)
	}
	expr, _ := parser.ParseExpr("e.edno * 10")
	qe, err := rc.Build(expr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(s, rc.Graph(), DefaultOptions())
	ce, err := c.CompileRowExpr(rc.Quant(), qe)
	if err != nil {
		t.Fatal(err)
	}
	env := exec.Env{Row: types.Row{types.NewInt(1), types.NewInt(4)}, Ctx: exec.NewCtx(s)}
	v, err := ce.Eval(&env)
	if err != nil || v.I != 40 {
		t.Errorf("row expr = %v, %v", v, err)
	}
}

func TestEstimates(t *testing.T) {
	s := testStore(t)
	stmt, _ := parser.Parse("SELECT * FROM EMP e, DEPT d WHERE e.edno = d.dno")
	g, _ := semantics.BuildSelect(s.Catalog(), stmt.(*ast.SelectStmt))
	c := NewCompiler(s, g, DefaultOptions())
	for _, b := range g.Reachable() {
		est := c.estimateBox(b)
		if est < 1 {
			t.Errorf("estimate for box %d = %d", b.ID, est)
		}
	}
}
