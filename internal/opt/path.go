package opt

import (
	"xnf/internal/exec"
	"xnf/internal/qgm"
)

// accessPath compiles the first quantifier of a join order: a base-table
// index lookup when a usable equality predicate and index exist, otherwise
// a scan (or the compiled input box) with the local predicates filtered.
// env must already bind q at slot base 0.
func (c *Compiler) accessPath(q *qgm.Quantifier, qPreds []qgm.Expr, env *colEnv) (exec.Plan, error) {
	if q.Input.Kind == qgm.BaseTable && c.opts.IndexNL {
		if idx, keyExpr, rest := c.matchIndexEquality(q, qPreds, nil); idx != "" {
			key, err := c.compileExpr(keyExpr, env)
			if err != nil {
				return nil, err
			}
			var filter exec.Expr
			if len(rest) > 0 {
				compiled, err := c.compileAll(rest, env)
				if err != nil {
					return nil, err
				}
				filter = exec.AndExprs(compiled)
			}
			return &exec.IndexLookupPlan{
				Table: q.Input.Table, Index: idx,
				Keys: []exec.Expr{key}, Filter: filter,
				Cols: headColumns(q.Input),
			}, nil
		}
	}
	child, _, err := c.CompileBox(q.Input, env.outer)
	if err != nil {
		return nil, err
	}
	if len(qPreds) == 0 {
		return child, nil
	}
	compiled, err := c.compileAll(qPreds, env)
	if err != nil {
		return nil, err
	}
	pred := exec.AndExprs(compiled)
	// Fold the filter into a scan when the child is a bare scan.
	if scan, ok := child.(*exec.ScanPlan); ok && scan.Filter == nil {
		scan.Filter = pred
		return scan, nil
	}
	return &exec.FilterPlan{Child: child, Pred: pred}, nil
}

// matchIndexEquality looks for a predicate col = expr where col is a bare
// column of q with an index whose leading column matches, and expr does
// not reference q (nor any still-unbound local quantifier — callers pass
// only bindable predicates). boundOnly optionally restricts the expr side
// to reference at least one bound quantifier (join keys) — nil accepts
// constants and parameters too. It returns the index name, the key
// expression and the remaining predicates.
func (c *Compiler) matchIndexEquality(q *qgm.Quantifier, qPreds []qgm.Expr, boundOnly map[*qgm.Quantifier]bool) (string, qgm.Expr, []qgm.Expr) {
	table, ok := c.store.Catalog().Table(q.Input.Table)
	if !ok {
		return "", nil, qPreds
	}
	for i, p := range qPreds {
		eq, ok := p.(*qgm.BinOp)
		if !ok || eq.Op != "=" {
			continue
		}
		try := func(colSide, keySide qgm.Expr) (string, qgm.Expr) {
			cr, ok := colSide.(*qgm.ColRef)
			if !ok || cr.Q != q || !exprAvoidsQuant(keySide, q) {
				return "", nil
			}
			if boundOnly != nil {
				usesBound := false
				for r := range qgm.QuantsIn(keySide) {
					if boundOnly[r] {
						usesBound = true
					}
				}
				if !usesBound {
					return "", nil
				}
			}
			idx := table.IndexOn([]string{q.Input.Head[cr.Ord].Name})
			if idx == nil {
				return "", nil
			}
			return idx.Name, keySide
		}
		if name, key := try(eq.L, eq.R); name != "" {
			rest := append(append([]qgm.Expr{}, qPreds[:i]...), qPreds[i+1:]...)
			return name, key, rest
		}
		if name, key := try(eq.R, eq.L); name != "" {
			rest := append(append([]qgm.Expr{}, qPreds[:i]...), qPreds[i+1:]...)
			return name, key, rest
		}
	}
	return "", nil, qPreds
}

func (c *Compiler) compileAll(preds []qgm.Expr, env *colEnv) ([]exec.Expr, error) {
	out := make([]exec.Expr, 0, len(preds))
	for _, p := range preds {
		ce, err := c.compileExpr(p, env)
		if err != nil {
			return nil, err
		}
		out = append(out, ce)
	}
	return out, nil
}

// joinStep joins the next quantifier onto the current plan, choosing index
// nested-loop, hash join or plain nested-loop. env gains q's binding at
// slot base `width`.
func (c *Compiler) joinStep(left exec.Plan, q *qgm.Quantifier, qPreds []qgm.Expr, env *colEnv, width int) (exec.Plan, error) {
	// Classify predicates.
	var rightLocal []qgm.Expr // reference only q (and correlation)
	var equi []*qgm.BinOp     // left-side expr = right-side expr over q
	var mixed []qgm.Expr
	// A predicate is right-local when the only bound quantifier it
	// references is q itself (outer correlation references are fine —
	// they become parameters).
	isRightLocal := func(p qgm.Expr) bool {
		for r := range qgm.QuantsIn(p) {
			if r == q {
				continue
			}
			if _, bound := env.slots[r]; bound {
				return false
			}
		}
		return true
	}
	for _, p := range qPreds {
		refsQ := false
		for r := range qgm.QuantsIn(p) {
			if r == q {
				refsQ = true
			}
		}
		if !refsQ || isRightLocal(p) {
			if !refsQ {
				mixed = append(mixed, p) // predicate over earlier quants that became bindable late
				continue
			}
			rightLocal = append(rightLocal, p)
			continue
		}
		if eq, ok := p.(*qgm.BinOp); ok && eq.Op == "=" {
			if exprAvoidsQuant(eq.L, q) && refsOnlyQuant(eq.R, q) {
				equi = append(equi, eq)
				continue
			}
			if exprAvoidsQuant(eq.R, q) && refsOnlyQuant(eq.L, q) {
				equi = append(equi, &qgm.BinOp{Op: "=", L: eq.R, R: eq.L})
				continue
			}
		}
		mixed = append(mixed, p)
	}

	// Index nested-loop join: the right side is a base table probed with a
	// join key from the driving row.
	if c.opts.IndexNL && q.Input.Kind == qgm.BaseTable && len(equi) > 0 {
		if table, ok := c.store.Catalog().Table(q.Input.Table); ok {
			for i, eq := range equi {
				cr, ok := eq.R.(*qgm.ColRef)
				if !ok || cr.Q != q {
					continue
				}
				idx := table.IndexOn([]string{q.Input.Head[cr.Ord].Name})
				if idx == nil {
					continue
				}
				leftKey, err := c.compileExpr(eq.L, env)
				if err != nil {
					return nil, err
				}
				env.bind(q, width)
				// Remaining equalities and right-local predicates filter
				// the lookup result (row layout: the base table row).
				renv := newColEnv(env.outer)
				renv.bind(q, 0)
				var lookupFilter []exec.Expr
				for _, p := range rightLocal {
					ce, err := c.compileExpr(p, renv)
					if err != nil {
						return nil, err
					}
					lookupFilter = append(lookupFilter, ce)
				}
				var joinPred []exec.Expr
				for j, other := range equi {
					if j == i {
						continue
					}
					ce, err := c.compileExpr(other, env)
					if err != nil {
						return nil, err
					}
					joinPred = append(joinPred, ce)
				}
				for _, p := range mixed {
					ce, err := c.compileExpr(p, env)
					if err != nil {
						return nil, err
					}
					joinPred = append(joinPred, ce)
				}
				right := &exec.IndexLookupPlan{
					Table: q.Input.Table, Index: idx.Name,
					Keys:   []exec.Expr{&exec.TailParam{Back: 0, Name: eq.L.String()}},
					Filter: exec.AndExprs(lookupFilter),
					Cols:   headColumns(q.Input),
				}
				return &exec.NLJoinPlan{
					Left: left, Right: right,
					Pred:        exec.AndExprs(joinPred),
					RightParams: []exec.Expr{leftKey},
				}, nil
			}
		}
	}

	// Compile the right side with its local predicates pushed down.
	renv := newColEnv(env.outer)
	renv.bind(q, 0)
	var right exec.Plan
	if q.Input.Kind == qgm.BaseTable && c.opts.IndexNL {
		p, err := c.accessPath(q, rightLocal, renv)
		if err != nil {
			return nil, err
		}
		right = p
	} else {
		child, _, err := c.CompileBox(q.Input, env.outer)
		if err != nil {
			return nil, err
		}
		right = child
		if len(rightLocal) > 0 {
			compiled, err := c.compileAll(rightLocal, renv)
			if err != nil {
				return nil, err
			}
			right = &exec.FilterPlan{Child: right, Pred: exec.AndExprs(compiled)}
		}
	}

	if c.opts.HashJoin && len(equi) > 0 {
		var lkeys, rkeys []exec.Expr
		for _, eq := range equi {
			lk, err := c.compileExpr(eq.L, env)
			if err != nil {
				return nil, err
			}
			rk, err := c.compileExpr(eq.R, renv)
			if err != nil {
				return nil, err
			}
			lkeys = append(lkeys, lk)
			rkeys = append(rkeys, rk)
		}
		env.bind(q, width)
		residual, err := c.compileAll(mixed, env)
		if err != nil {
			return nil, err
		}
		return &exec.HashJoinPlan{
			Left: left, Right: right,
			LeftKeys: lkeys, RightKeys: rkeys,
			Residual: exec.AndExprs(residual),
		}, nil
	}

	env.bind(q, width)
	var predExprs []exec.Expr
	for _, eq := range equi {
		ce, err := c.compileExpr(eq, env)
		if err != nil {
			return nil, err
		}
		predExprs = append(predExprs, ce)
	}
	rest, err := c.compileAll(mixed, env)
	if err != nil {
		return nil, err
	}
	predExprs = append(predExprs, rest...)
	return &exec.NLJoinPlan{Left: left, Right: right, Pred: exec.AndExprs(predExprs)}, nil
}

func refsOnlyQuant(e qgm.Expr, q *qgm.Quantifier) bool {
	ok := true
	any := false
	qgm.WalkExpr(e, func(x qgm.Expr) {
		if cr, isCR := x.(*qgm.ColRef); isCR {
			any = true
			if cr.Q != q {
				ok = false
			}
		}
	})
	return ok && any
}
