package opt

import (
	"fmt"

	"xnf/internal/exec"
	"xnf/internal/qgm"
)

func (c *Compiler) compileSelect(box *qgm.Box, outer *paramCollector) (exec.Plan, error) {
	return c.compileSelectCustom(box, box.Preds, nil, outer)
}

// compileSelectCustom compiles a Select box with an overridable predicate
// list and optional extra output expressions (used by subquery correlation
// extraction). Join order, join method and access path selection happen
// here.
func (c *Compiler) compileSelectCustom(box *qgm.Box, preds []qgm.Expr, extraOut []qgm.Expr, outer *paramCollector) (exec.Plan, error) {
	env := newColEnv(outer)
	quants := box.Quants

	var plan exec.Plan
	used := make(map[int]bool) // indexes into preds already applied

	if len(quants) == 0 {
		plan = &exec.ValuesPlan{Rows: [][]exec.Expr{{}}}
	} else {
		order := c.chooseOrder(quants, preds)
		localAll := make(map[*qgm.Quantifier]bool, len(quants))
		for _, q := range quants {
			localAll[q] = true
		}
		bound := make(map[*qgm.Quantifier]bool, len(quants))
		width := 0
		for step, q := range order {
			bound[q] = true
			qPreds, qIdx := bindablePreds(preds, used, localAll, bound)
			if step == 0 {
				env.bind(q, 0)
				p, err := c.accessPath(q, qPreds, env)
				if err != nil {
					return nil, err
				}
				width = len(q.Input.Head)
				plan = p
				markUsed(used, qIdx)
				continue
			}
			p, err := c.joinStep(plan, q, qPreds, env, width)
			if err != nil {
				return nil, err
			}
			width += len(q.Input.Head)
			plan = p
			markUsed(used, qIdx)
		}
	}

	// Residual predicates (subqueries, degenerate predicates over
	// constants or outer parameters only).
	var residual []exec.Expr
	for i, p := range preds {
		if used[i] {
			continue
		}
		ce, err := c.compileExpr(p, env)
		if err != nil {
			return nil, err
		}
		residual = append(residual, ce)
	}
	if len(residual) > 0 {
		plan = &exec.FilterPlan{Child: plan, Pred: exec.AndExprs(residual)}
	}

	// Project the head (plus any extraction-appended columns).
	exprs := make([]exec.Expr, 0, len(box.Head)+len(extraOut))
	cols := make([]exec.Column, 0, len(box.Head)+len(extraOut))
	for _, h := range box.Head {
		if h.Expr == nil {
			return nil, fmt.Errorf("opt: select box %d head column %s has no expression", box.ID, h.Name)
		}
		e, err := c.compileExpr(h.Expr, env)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		cols = append(cols, exec.Column{Name: h.Name, Type: h.Type})
	}
	for i, ex := range extraOut {
		e, err := c.compileExpr(ex, env)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		cols = append(cols, exec.Column{Name: fmt.Sprintf("x%d", i+1), Type: qgm.ExprType(ex)})
	}
	plan = &exec.ProjectPlan{Child: plan, Exprs: exprs, Cols: cols}
	if box.Distinct {
		plan = &exec.DistinctPlan{Child: plan}
	}
	return plan, nil
}

func markUsed(used map[int]bool, idx []int) {
	for _, i := range idx {
		used[i] = true
	}
}

// bindablePreds returns the unused subquery-free predicates whose local
// quantifier references are all bound (references to quantifiers outside
// the box are correlation and always allowed — they become parameters).
// Subquery predicates always wait for the final filter so their evaluation
// sees the complete row.
func bindablePreds(preds []qgm.Expr, used map[int]bool, localAll, bound map[*qgm.Quantifier]bool) ([]qgm.Expr, []int) {
	var out []qgm.Expr
	var idx []int
	for i, p := range preds {
		if used[i] || containsSubquery(p) {
			continue
		}
		ok := true
		for r := range qgm.QuantsIn(p) {
			if localAll[r] && !bound[r] {
				ok = false
			}
		}
		if ok {
			out = append(out, p)
			idx = append(idx, i)
		}
	}
	return out, idx
}

func containsSubquery(e qgm.Expr) bool {
	found := false
	qgm.WalkExpr(e, func(x qgm.Expr) {
		if _, ok := x.(*qgm.SubqueryRef); ok {
			found = true
		}
	})
	return found
}
