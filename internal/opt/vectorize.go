package opt

import (
	"xnf/internal/exec"
	"xnf/internal/vexec"
)

// vectorizePlan lowers maximal pipeline prefixes of a compiled row plan
// into the batch engine: scan → filter → project → join → sort/distinct →
// aggregate/limit chains whose expressions the vectorized interpreter
// supports become one batch pipeline under a BatchToRow bridge; everything
// else (spools, subplan-carrying expressions, nested-loop joins) stays on
// the row path, with the pass recursing into children so lowered fragments
// appear wherever they help. The right side of a nested-loop join is
// deliberately left alone: it is re-Opened once per driving row, where
// batching buys nothing and the bridge would only add overhead.
func vectorizePlan(p exec.Plan, opts Options) exec.Plan {
	if bp, ok := lowerPlan(p, opts); ok {
		return &vexec.BatchToRow{Child: bp}
	}
	switch n := p.(type) {
	case *exec.FilterPlan:
		n.Child = vectorizePlan(n.Child, opts)
	case *exec.ProjectPlan:
		n.Child = vectorizePlan(n.Child, opts)
	case *exec.DistinctPlan:
		n.Child = vectorizePlan(n.Child, opts)
	case *exec.SortPlan:
		n.Child = vectorizePlan(n.Child, opts)
	case *exec.LimitPlan:
		n.Child = vectorizePlan(n.Child, opts)
	case *exec.SpoolPlan:
		n.Child = vectorizePlan(n.Child, opts)
	case *exec.UnionPlan:
		for i, c := range n.Children {
			n.Children[i] = vectorizePlan(c, opts)
		}
	case *exec.NLJoinPlan:
		n.Left = vectorizePlan(n.Left, opts)
	case *exec.HashJoinPlan:
		n.Left = vectorizePlan(n.Left, opts)
		n.Right = vectorizePlan(n.Right, opts)
	case *exec.AggPlan:
		n.Child = vectorizePlan(n.Child, opts)
	}
	return p
}

// lowerOrBridge lowers a subtree natively when it can, and otherwise wraps
// the (recursively vectorized) row subtree in a row → batch bridge. Used by
// operators like hash join whose own work vectorizes regardless of how its
// inputs arrive — a bridged input is still far cheaper than bridging the
// join output row by row.
func lowerOrBridge(p exec.Plan, opts Options) vexec.BatchPlan {
	if bp, ok := lowerPlan(p, opts); ok {
		return bp
	}
	return &vexec.RowSource{Plan: vectorizePlan(p, opts)}
}

// lowerPlan translates a row operator subtree into a batch pipeline. ok is
// false when the operator (or one of its expressions) is not vectorizable;
// the caller then recurses into children instead.
func lowerPlan(p exec.Plan, opts Options) (vexec.BatchPlan, bool) {
	switch n := p.(type) {
	case *exec.ScanPlan:
		pred, ok := vexec.CompileExpr(n.Filter)
		if !ok {
			return nil, false
		}
		sb := &vexec.ScanBatch{Table: n.Table, Pred: pred, Cols: n.Cols, Boxed: !opts.TypedKernels}
		if opts.ZonePruning {
			// Zone-map pruning: conjuncts of the form `col <op> constant`
			// are extracted once at compile time and resolved against the
			// parameter frame at Open.
			sb.Prune = vexec.ExtractPruneTerms(pred)
		}
		return sb, true
	case *exec.IndexLookupPlan:
		for _, k := range n.Keys {
			if exec.ExprHasSubplan(k) {
				return nil, false
			}
		}
		pred, ok := vexec.CompileExpr(n.Filter)
		if !ok {
			return nil, false
		}
		return &vexec.IndexLookupBatch{Table: n.Table, Index: n.Index, Keys: n.Keys, Pred: pred, Cols: n.Cols}, true
	case *exec.FilterPlan:
		child, ok := lowerPlan(n.Child, opts)
		if !ok {
			return nil, false
		}
		pred, ok := vexec.CompileExpr(n.Pred)
		if !ok {
			return nil, false
		}
		return &vexec.FilterBatch{Child: child, Pred: pred}, true
	case *exec.ProjectPlan:
		child, ok := lowerPlan(n.Child, opts)
		if !ok {
			return nil, false
		}
		exprs, ok := vexec.CompileExprs(n.Exprs)
		if !ok {
			return nil, false
		}
		return &vexec.ProjectBatch{Child: child, Exprs: exprs, Cols: n.Cols}, true
	case *exec.LimitPlan:
		// Push the limit beneath a projection: Project is 1:1, so
		// truncating first is equivalent — and it keeps the row executor's
		// laziness for projection expressions (a LIMIT 1 must not surface
		// an evaluation error from row 2, which eager whole-batch
		// projection would otherwise do).
		if proj, ok := n.Child.(*exec.ProjectPlan); ok {
			inner, ok := lowerPlan(proj.Child, opts)
			if !ok {
				return nil, false
			}
			exprs, ok := vexec.CompileExprs(proj.Exprs)
			if !ok {
				return nil, false
			}
			return &vexec.ProjectBatch{
				Child: &vexec.LimitBatch{Child: inner, N: n.N},
				Exprs: exprs, Cols: proj.Cols,
			}, true
		}
		child, ok := lowerPlan(n.Child, opts)
		if !ok {
			return nil, false
		}
		return &vexec.LimitBatch{Child: child, N: n.N}, true
	case *exec.HashJoinPlan:
		lk, ok := vexec.CompileExprs(n.LeftKeys)
		if !ok {
			return nil, false
		}
		rk, ok := vexec.CompileExprs(n.RightKeys)
		if !ok {
			return nil, false
		}
		res, ok := vexec.CompileExpr(n.Residual)
		if !ok {
			return nil, false
		}
		return &vexec.BatchHashJoin{
			Left:      lowerOrBridge(n.Left, opts),
			Right:     lowerOrBridge(n.Right, opts),
			LeftKeys:  lk,
			RightKeys: rk,
			Residual:  res,
			Parallel:  opts.ParallelScan,
			Workers:   opts.ParallelWorkers,
			MinRows:   opts.ParallelMinRows,
		}, true
	case *exec.SortPlan:
		// Sort only lowers when its input lowers natively: a bridged input
		// would mean row → batch → rows-again with the sort's own batching
		// buying nothing over the row sort.
		child, ok := lowerPlan(n.Child, opts)
		if !ok {
			return nil, false
		}
		keys, ok := vexec.CompileExprs(n.Keys)
		if !ok {
			return nil, false
		}
		return &vexec.BatchSort{
			Child: child, Keys: keys, Desc: n.Desc,
			Parallel: opts.ParallelScan,
			Workers:  opts.ParallelWorkers,
			MinRows:  opts.ParallelMinRows,
		}, true
	case *exec.DistinctPlan:
		child, ok := lowerPlan(n.Child, opts)
		if !ok {
			return nil, false
		}
		return &vexec.BatchDistinct{Child: child}, true
	case *exec.UnionPlan:
		children := make([]vexec.BatchPlan, len(n.Children))
		for i, c := range n.Children {
			child, ok := lowerPlan(c, opts)
			if !ok {
				return nil, false
			}
			children[i] = child
		}
		return &vexec.BatchUnion{Children: children, Distinct: n.Distinct}, true
	case *exec.AggPlan:
		groups, ok := vexec.CompileExprs(n.Groups)
		if !ok {
			return nil, false
		}
		aggs := make([]vexec.AggSpec, len(n.Aggs))
		for i, s := range n.Aggs {
			spec := vexec.AggSpec{Name: s.Name, Star: s.Star, Distinct: s.Distinct}
			if !s.Star {
				arg, ok := vexec.CompileExpr(s.Arg)
				if !ok {
					return nil, false
				}
				spec.Arg = arg
			}
			aggs[i] = spec
		}
		child, ok := lowerPlan(n.Child, opts)
		if !ok {
			// The aggregate itself vectorizes; feed it through the row →
			// batch bridge so join and spool outputs still aggregate in
			// batch form.
			child = &vexec.RowSource{Plan: vectorizePlan(n.Child, opts)}
		}
		agg := &vexec.HashAggBatch{Child: child, Groups: groups, Aggs: aggs, Cols: n.Cols}
		if opts.ParallelScan {
			// A scan→filter→aggregate pipeline over a base table splits
			// into morsels; the operator still folds sequentially below
			// vexec.ParallelMinRows, so small tables pay no pool overhead.
			if par, ok := vexec.ParallelizeAgg(agg, opts.ParallelWorkers, opts.ParallelMinRows); ok {
				if ps, isPar := par.(*vexec.ParallelAggScan); isPar && opts.ZonePruning {
					// The fused predicate folds downstream filters into the
					// scan, so re-extract — it can prune more than the
					// scan's own conjuncts alone.
					ps.Prune = vexec.ExtractPruneTerms(ps.Pred)
				}
				return par, true
			}
		}
		return agg, true
	default:
		return nil, false
	}
}
