package parser

import "testing"

// FuzzParse asserts the parser never panics on arbitrary input: every
// input must either produce a statement whose String rendering also does
// not panic, or a clean error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT * FROM EMP WHERE edno = ?",
		"SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno ORDER BY 1 DESC LIMIT 3",
		"SELECT DISTINCT region FROM CUST",
		"SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v",
		"SELECT COUNT(*), SUM(sal + 1) FROM EMP GROUP BY edno HAVING COUNT(*) > 1",
		"SELECT * FROM EMP WHERE edno IN (SELECT dno FROM DEPT WHERE loc = 'ARC')",
		"SELECT (SELECT MAX(sal) FROM EMP e2 WHERE e2.edno = e.edno) FROM EMP e",
		"CREATE TABLE T (a INT NOT NULL, b TEXT, c FLOAT, PRIMARY KEY (a))",
		"CREATE INDEX idx ON T (a, b)",
		"INSERT INTO T VALUES (1, 'x', 2.5), (2, NULL, NULL)",
		"UPDATE T SET b = 'y' WHERE a = 1",
		"DELETE FROM T WHERE a IS NOT NULL",
		"OUT OF d AS (SELECT * FROM DEPT), e AS EMP, r AS (RELATE d, e WHERE d.dno = e.edno) TAKE *",
		"SELECT CASE WHEN a = 1 THEN 'one' ELSE 'many' END FROM T",
		"SELECT * FROM ((((((((((t))))))))))",
		"SELECT",
		"((((((((((",
		"SELECT * FROM t WHERE a = 'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		if stmt != nil {
			_ = stmt.String()
		}
	})
}
