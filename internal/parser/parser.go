// Package parser implements a recursive-descent parser for the engine's SQL
// subset and the XNF composite-object constructor (OUT OF … RELATE … TAKE,
// Sect. 2 of the paper). It produces ast trees; semantic analysis happens
// later in internal/semantics.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"xnf/internal/ast"
	"xnf/internal/lexer"
	"xnf/internal/types"
)

// Parser holds the token stream position. nparams counts the `?`
// placeholder markers seen so far; each occurrence is numbered in order.
type Parser struct {
	toks    []lexer.Token
	pos     int
	nparams int
}

// New prepares a parser over the given text.
func New(input string) (*Parser, error) {
	toks, err := lexer.Lex(input)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// Parse parses a single statement and requires the input to be exhausted.
func Parse(input string) (ast.Statement, error) {
	p, err := New(input)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(lexer.Symbol, ";")
	if !p.at(lexer.EOF, "") {
		return nil, p.errf("unexpected input after statement: %q", p.cur().Text)
	}
	return stmt, nil
}

// ParseScript parses a sequence of semicolon-separated statements.
func ParseScript(input string) ([]ast.Statement, error) {
	p, err := New(input)
	if err != nil {
		return nil, err
	}
	var out []ast.Statement
	for {
		for p.accept(lexer.Symbol, ";") {
		}
		if p.at(lexer.EOF, "") {
			return out, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if !p.accept(lexer.Symbol, ";") && !p.at(lexer.EOF, "") {
			return nil, p.errf("expected ';' between statements, got %q", p.cur().Text)
		}
	}
}

// ParseExpr parses a standalone expression (used by tests and by the cache
// layer's restriction predicates).
func ParseExpr(input string) (ast.Expr, error) {
	p, err := New(input)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(lexer.EOF, "") {
		return nil, p.errf("unexpected input after expression: %q", p.cur().Text)
	}
	return e, nil
}

// --- token helpers ---

func (p *Parser) cur() lexer.Token { return p.toks[p.pos] }

func (p *Parser) peek(n int) lexer.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) at(kind lexer.Kind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) atKeyword(kw string) bool { return p.at(lexer.Keyword, kw) }

func (p *Parser) accept(kind lexer.Kind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptKeyword(kw string) bool { return p.accept(lexer.Keyword, kw) }

func (p *Parser) expect(kind lexer.Kind, text string) (lexer.Token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, p.errf("expected %s, got %q", want, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) expectKeyword(kw string) error {
	_, err := p.expect(lexer.Keyword, kw)
	return err
}

// ident accepts an identifier; a handful of non-reserved keywords are also
// allowed as identifiers where unambiguous (none currently).
func (p *Parser) ident() (string, error) {
	t := p.cur()
	if t.Kind != lexer.Ident {
		return "", p.errf("expected identifier, got %q", t.Text)
	}
	p.pos++
	return t.Text, nil
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("parser: line %d: %s", t.Line, fmt.Sprintf(format, args...))
}

// --- statements ---

func (p *Parser) parseStatement() (ast.Statement, error) {
	switch {
	case p.atKeyword("SELECT"):
		return p.parseSelect()
	case p.atKeyword("OUT"):
		return p.parseXNFQuery()
	case p.atKeyword("CREATE"):
		return p.parseCreate()
	case p.atKeyword("DROP"):
		return p.parseDrop()
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	case p.atKeyword("UPDATE"):
		return p.parseUpdate()
	case p.atKeyword("DELETE"):
		return p.parseDelete()
	case p.atKeyword("ANALYZE"):
		return p.parseAnalyze()
	case p.atKeyword("ALTER"):
		return p.parseAlter()
	default:
		return nil, p.errf("expected a statement, got %q", p.cur().Text)
	}
}

// parseAlter parses ALTER TABLE name SET STORAGE ROW|COLUMN. STORAGE, ROW
// and COLUMN are deliberately not reserved words — they arrive as plain
// identifiers and are matched by text, so columns named "row" keep working.
func (p *Parser) parseAlter() (ast.Statement, error) {
	if err := p.expectKeyword("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	word, err := p.ident()
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(word, "STORAGE") {
		return nil, p.errf("expected STORAGE after ALTER TABLE … SET, got %q", word)
	}
	kind, err := p.ident()
	if err != nil {
		return nil, err
	}
	up := strings.ToUpper(kind)
	if up != "ROW" && up != "COLUMN" {
		return nil, p.errf("expected ROW or COLUMN storage, got %q", kind)
	}
	return &ast.AlterTableStmt{Table: name, Storage: up}, nil
}

func (p *Parser) parseAnalyze() (ast.Statement, error) {
	if err := p.expectKeyword("ANALYZE"); err != nil {
		return nil, err
	}
	stmt := &ast.AnalyzeStmt{}
	if p.at(lexer.Ident, "") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.Table = name
	}
	return stmt, nil
}

func (p *Parser) parseCreate() (ast.Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.atKeyword("TABLE"):
		return p.parseCreateTable()
	case p.atKeyword("VIEW"):
		return p.parseCreateView()
	case p.atKeyword("INDEX") || p.atKeyword("UNIQUE") || p.atKeyword("ORDERED"):
		return p.parseCreateIndex()
	default:
		return nil, p.errf("expected TABLE, VIEW or INDEX after CREATE")
	}
}

func (p *Parser) parseCreateTable() (ast.Statement, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Symbol, "("); err != nil {
		return nil, err
	}
	stmt := &ast.CreateTableStmt{Name: name}
	for {
		switch {
		case p.atKeyword("PRIMARY"):
			p.pos++
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parenIdentList()
			if err != nil {
				return nil, err
			}
			stmt.PrimaryKey = cols
		case p.atKeyword("FOREIGN"):
			p.pos++
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parenIdentList()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.ident()
			if err != nil {
				return nil, err
			}
			refCols, err := p.parenIdentList()
			if err != nil {
				return nil, err
			}
			stmt.ForeignKeys = append(stmt.ForeignKeys, ast.FKDef{Columns: cols, RefTable: ref, RefColumns: refCols})
		default:
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			typeTok := p.cur()
			if typeTok.Kind != lexer.Ident && typeTok.Kind != lexer.Keyword {
				return nil, p.errf("expected a type name for column %s", colName)
			}
			p.pos++
			typ, err := types.ParseType(typeTok.Text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			col := ast.ColumnDef{Name: colName, Type: typ}
			if p.acceptKeyword("NOT") {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				col.NotNull = true
			}
			stmt.Columns = append(stmt.Columns, col)
		}
		if p.accept(lexer.Symbol, ",") {
			continue
		}
		if _, err := p.expect(lexer.Symbol, ")"); err != nil {
			return nil, err
		}
		return stmt, nil
	}
}

func (p *Parser) parenIdentList() ([]string, error) {
	if _, err := p.expect(lexer.Symbol, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.accept(lexer.Symbol, ",") {
			continue
		}
		if _, err := p.expect(lexer.Symbol, ")"); err != nil {
			return nil, err
		}
		return cols, nil
	}
}

func (p *Parser) parseCreateIndex() (ast.Statement, error) {
	stmt := &ast.CreateIndexStmt{}
	if p.acceptKeyword("UNIQUE") {
		stmt.Unique = true
	}
	if p.acceptKeyword("ORDERED") {
		stmt.Ordered = true
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	cols, err := p.parenIdentList()
	if err != nil {
		return nil, err
	}
	stmt.Columns = cols
	return stmt, nil
}

func (p *Parser) parseCreateView() (ast.Statement, error) {
	if err := p.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if p.atKeyword("OUT") {
		q, err := p.parseXNFQuery()
		if err != nil {
			return nil, err
		}
		return &ast.CreateViewStmt{Name: name, XNF: q}, nil
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &ast.CreateViewStmt{Name: name, Select: sel}, nil
}

func (p *Parser) parseDrop() (ast.Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	var kind string
	switch {
	case p.acceptKeyword("TABLE"):
		kind = "TABLE"
	case p.acceptKeyword("VIEW"):
		kind = "VIEW"
	default:
		return nil, p.errf("expected TABLE or VIEW after DROP")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &ast.DropStmt{Kind: kind, Name: name}, nil
}

func (p *Parser) parseInsert() (ast.Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &ast.InsertStmt{Table: table}
	if p.at(lexer.Symbol, "(") {
		cols, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		stmt.Columns = cols
	}
	if p.atKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Select = sel
		return stmt, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(lexer.Symbol, "("); err != nil {
			return nil, err
		}
		var row []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(lexer.Symbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(lexer.Symbol, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(lexer.Symbol, ",") {
			return stmt, nil
		}
	}
}

func (p *Parser) parseUpdate() (ast.Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &ast.UpdateStmt{Table: table}
	if p.at(lexer.Ident, "") {
		alias, _ := p.ident()
		stmt.Alias = alias
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Symbol, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, ast.SetClause{Column: col, Value: val})
		if !p.accept(lexer.Symbol, ",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *Parser) parseDelete() (ast.Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &ast.DeleteStmt{Table: table}
	if p.at(lexer.Ident, "") {
		alias, _ := p.ident()
		stmt.Alias = alias
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

// --- SELECT ---

func (p *Parser) parseSelect() (*ast.SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &ast.SelectStmt{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		stmt.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(lexer.Symbol, ",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, tr)
			// Desugar [INNER] JOIN … ON … into cross product + WHERE.
			for p.atKeyword("JOIN") || p.atKeyword("INNER") {
				p.acceptKeyword("INNER")
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				right, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				stmt.From = append(stmt.From, right)
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				stmt.Where = ast.And(stmt.Where, cond)
			}
			if !p.accept(lexer.Symbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = ast.And(w, stmt.Where)
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(lexer.Symbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("UNION") {
		u := &ast.UnionClause{All: p.acceptKeyword("ALL")}
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		u.Right = right
		stmt.Union = u
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(lexer.Symbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t, err := p.expect(lexer.Int, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, p.errf("bad LIMIT: %v", err)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *Parser) parseSelectItem() (ast.SelectItem, error) {
	if p.accept(lexer.Symbol, "*") {
		return ast.SelectItem{Star: true}, nil
	}
	// qualified star: ident . *
	if p.at(lexer.Ident, "") && p.peek(1).Kind == lexer.Symbol && p.peek(1).Text == "." &&
		p.peek(2).Kind == lexer.Symbol && p.peek(2).Text == "*" {
		q, _ := p.ident()
		p.pos += 2
		return ast.SelectItem{Star: true, Qualifier: q}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.at(lexer.Ident, "") {
		alias, _ := p.ident()
		item.Alias = alias
	}
	return item, nil
}

func (p *Parser) parseTableRef() (ast.TableRef, error) {
	if p.accept(lexer.Symbol, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return ast.TableRef{}, err
		}
		if _, err := p.expect(lexer.Symbol, ")"); err != nil {
			return ast.TableRef{}, err
		}
		tr := ast.TableRef{Subquery: sub}
		p.acceptKeyword("AS")
		if p.at(lexer.Ident, "") {
			alias, _ := p.ident()
			tr.Alias = alias
		} else {
			return tr, p.errf("derived table requires an alias")
		}
		return tr, nil
	}
	name, err := p.ident()
	if err != nil {
		return ast.TableRef{}, err
	}
	tr := ast.TableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Alias = alias
	} else if p.at(lexer.Ident, "") {
		alias, _ := p.ident()
		tr.Alias = alias
	}
	return tr, nil
}

// --- XNF ---

func (p *Parser) parseXNFQuery() (*ast.XNFQuery, error) {
	if err := p.expectKeyword("OUT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("OF"); err != nil {
		return nil, err
	}
	q := &ast.XNFQuery{}
	for {
		comp, err := p.parseXNFComponent()
		if err != nil {
			return nil, err
		}
		q.Components = append(q.Components, comp)
		if !p.accept(lexer.Symbol, ",") {
			break
		}
	}
	if err := p.expectKeyword("TAKE"); err != nil {
		return nil, err
	}
	for {
		if p.accept(lexer.Symbol, "*") {
			q.Take = append(q.Take, ast.TakeItem{Star: true})
		} else {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			item := ast.TakeItem{Name: name}
			if p.at(lexer.Symbol, "(") {
				cols, err := p.parenIdentList()
				if err != nil {
					return nil, err
				}
				item.Columns = cols
			}
			q.Take = append(q.Take, item)
		}
		if !p.accept(lexer.Symbol, ",") {
			break
		}
	}
	return q, nil
}

func (p *Parser) parseXNFComponent() (ast.XNFComponent, error) {
	name, err := p.ident()
	if err != nil {
		return ast.XNFComponent{}, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return ast.XNFComponent{}, err
	}
	comp := ast.XNFComponent{Name: name}
	if p.accept(lexer.Symbol, "(") {
		switch {
		case p.atKeyword("SELECT"):
			sel, err := p.parseSelect()
			if err != nil {
				return comp, err
			}
			comp.Select = sel
		case p.atKeyword("RELATE"):
			rel, err := p.parseRelate()
			if err != nil {
				return comp, err
			}
			comp.Relate = rel
		default:
			return comp, p.errf("expected SELECT or RELATE in XNF component %s", name)
		}
		if _, err := p.expect(lexer.Symbol, ")"); err != nil {
			return comp, err
		}
		return comp, nil
	}
	// Bare-table shortcut: `xemp AS EMP` means SELECT * FROM EMP (Fig. 1).
	table, err := p.ident()
	if err != nil {
		return comp, p.errf("expected a table expression or table name in XNF component %s", name)
	}
	comp.Select = &ast.SelectStmt{
		Items: []ast.SelectItem{{Star: true}},
		From:  []ast.TableRef{{Table: table}},
		Limit: -1,
	}
	return comp, nil
}

func (p *Parser) parseRelate() (*ast.RelateClause, error) {
	if err := p.expectKeyword("RELATE"); err != nil {
		return nil, err
	}
	parent, err := p.ident()
	if err != nil {
		return nil, err
	}
	rel := &ast.RelateClause{Parent: parent}
	if p.acceptKeyword("VIA") {
		role, err := p.ident()
		if err != nil {
			return nil, err
		}
		rel.Role = role
	}
	for p.accept(lexer.Symbol, ",") {
		child, err := p.ident()
		if err != nil {
			return nil, err
		}
		alias := ""
		if p.acceptKeyword("AS") {
			alias, err = p.ident()
			if err != nil {
				return nil, err
			}
		} else if p.at(lexer.Ident, "") {
			alias, _ = p.ident()
		}
		rel.Children = append(rel.Children, child)
		rel.ChildAliases = append(rel.ChildAliases, alias)
	}
	if len(rel.Children) == 0 {
		return nil, p.errf("RELATE requires at least one child component")
	}
	if p.acceptKeyword("USING") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			rel.Using = append(rel.Using, tr)
			if !p.accept(lexer.Symbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		rel.Where = w
	}
	return rel, nil
}

// --- expressions ---

func (p *Parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

// parsePredicate handles comparisons and the IS/IN/BETWEEN/LIKE suffixes.
func (p *Parser) parsePredicate() (ast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(lexer.Symbol, "="), p.at(lexer.Symbol, "<>"), p.at(lexer.Symbol, "!="),
			p.at(lexer.Symbol, "<"), p.at(lexer.Symbol, "<="), p.at(lexer.Symbol, ">"),
			p.at(lexer.Symbol, ">="):
			op := p.cur().Text
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.BinaryExpr{Op: op, L: l, R: r}
		case p.atKeyword("IS"):
			p.pos++
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &ast.IsNullExpr{X: l, Not: not}
		case p.atKeyword("IN"), p.atKeyword("NOT") && p.peek(1).Kind == lexer.Keyword && (p.peek(1).Text == "IN" || p.peek(1).Text == "BETWEEN" || p.peek(1).Text == "LIKE"):
			not := p.acceptKeyword("NOT")
			switch {
			case p.acceptKeyword("IN"):
				if _, err := p.expect(lexer.Symbol, "("); err != nil {
					return nil, err
				}
				in := &ast.InExpr{X: l, Not: not}
				if p.atKeyword("SELECT") {
					sub, err := p.parseSelect()
					if err != nil {
						return nil, err
					}
					in.Sub = sub
				} else {
					for {
						e, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						in.List = append(in.List, e)
						if !p.accept(lexer.Symbol, ",") {
							break
						}
					}
				}
				if _, err := p.expect(lexer.Symbol, ")"); err != nil {
					return nil, err
				}
				l = in
			case p.acceptKeyword("BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &ast.BetweenExpr{X: l, Not: not, Lo: lo, Hi: hi}
			case p.acceptKeyword("LIKE"):
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &ast.LikeExpr{X: l, Not: not, Pattern: pat}
			default:
				return nil, p.errf("expected IN, BETWEEN or LIKE after NOT")
			}
		case p.atKeyword("BETWEEN"):
			p.pos++
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.BetweenExpr{X: l, Lo: lo, Hi: hi}
		case p.atKeyword("LIKE"):
			p.pos++
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.LikeExpr{X: l, Pattern: pat}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.Symbol, "+") || p.at(lexer.Symbol, "-") || p.at(lexer.Symbol, "||") {
		op := p.cur().Text
		p.pos++
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.Symbol, "*") || p.at(lexer.Symbol, "/") || p.at(lexer.Symbol, "%") {
		op := p.cur().Text
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.accept(lexer.Symbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold a negated literal directly; keeps deparse round-trips exact.
		if lit, ok := x.(*ast.Literal); ok && lit.Value.IsNumeric() {
			v, err := types.Neg(lit.Value)
			if err == nil {
				return &ast.Literal{Value: v}, nil
			}
		}
		return &ast.UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == lexer.Int:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q: %v", t.Text, err)
		}
		return &ast.Literal{Value: types.NewInt(n)}, nil
	case t.Kind == lexer.Float:
		p.pos++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad float %q: %v", t.Text, err)
		}
		return &ast.Literal{Value: types.NewFloat(f)}, nil
	case t.Kind == lexer.String:
		p.pos++
		return &ast.Literal{Value: types.NewString(t.Text)}, nil
	case p.atKeyword("NULL"):
		p.pos++
		return &ast.Literal{Value: types.Null}, nil
	case p.atKeyword("TRUE"):
		p.pos++
		return &ast.Literal{Value: types.NewBool(true)}, nil
	case p.atKeyword("FALSE"):
		p.pos++
		return &ast.Literal{Value: types.NewBool(false)}, nil
	case t.Kind == lexer.Symbol && t.Text == "?":
		p.pos++
		ph := &ast.Placeholder{Idx: p.nparams}
		p.nparams++
		return ph, nil
	case p.atKeyword("EXISTS"):
		p.pos++
		if _, err := p.expect(lexer.Symbol, "("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Symbol, ")"); err != nil {
			return nil, err
		}
		return &ast.SubqueryExpr{Exists: true, Select: sub}, nil
	case p.atKeyword("CASE"):
		return p.parseCase()
	case t.Kind == lexer.Symbol && t.Text == "(":
		p.pos++
		if p.atKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.Symbol, ")"); err != nil {
				return nil, err
			}
			return &ast.SubqueryExpr{Select: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Symbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == lexer.Ident:
		name, _ := p.ident()
		// function call?
		if p.at(lexer.Symbol, "(") {
			p.pos++
			fc := &ast.FuncCall{Name: name}
			if p.accept(lexer.Symbol, "*") {
				fc.Star = true
				if _, err := p.expect(lexer.Symbol, ")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.acceptKeyword("DISTINCT") {
				fc.Distinct = true
			}
			if !p.at(lexer.Symbol, ")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if !p.accept(lexer.Symbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(lexer.Symbol, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// qualified reference: a.b, or a longer XNF path a.b.c…
		if p.at(lexer.Symbol, ".") {
			steps := []string{name}
			for p.accept(lexer.Symbol, ".") {
				next, err := p.ident()
				if err != nil {
					return nil, err
				}
				steps = append(steps, next)
			}
			if len(steps) == 2 {
				return &ast.ColumnRef{Qualifier: steps[0], Name: steps[1]}, nil
			}
			return &ast.PathExpr{Steps: steps}, nil
		}
		return &ast.ColumnRef{Name: name}, nil
	default:
		return nil, p.errf("unexpected token %q in expression", t.Text)
	}
}

func (p *Parser) parseCase() (ast.Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &ast.CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.WhenClause{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
