package parser

import (
	"strings"
	"testing"

	"xnf/internal/ast"
	"xnf/internal/types"
)

func mustParse(t *testing.T, sql string) ast.Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

// roundTrip checks the deparse property: parsing the deparsed text yields
// the same deparsed text again.
func roundTrip(t *testing.T, sql string) {
	t.Helper()
	s1 := mustParse(t, sql).String()
	s2 := mustParse(t, s1).String()
	if s1 != s2 {
		t.Errorf("round trip unstable:\n  first:  %s\n  second: %s", s1, s2)
	}
}

func TestSelectBasic(t *testing.T) {
	stmt := mustParse(t, "SELECT eno, name AS n FROM emp e WHERE sal > 100")
	sel := stmt.(*ast.SelectStmt)
	if len(sel.Items) != 2 || sel.Items[1].Alias != "n" {
		t.Errorf("items: %+v", sel.Items)
	}
	if len(sel.From) != 1 || sel.From[0].Name() != "e" || sel.From[0].Table != "emp" {
		t.Errorf("from: %+v", sel.From)
	}
	cmp, ok := sel.Where.(*ast.BinaryExpr)
	if !ok || cmp.Op != ">" {
		t.Errorf("where: %+v", sel.Where)
	}
}

func TestSelectStarAndQualifiedStar(t *testing.T) {
	sel := mustParse(t, "SELECT *, e.* FROM emp e").(*ast.SelectStmt)
	if !sel.Items[0].Star || sel.Items[0].Qualifier != "" {
		t.Errorf("item 0: %+v", sel.Items[0])
	}
	if !sel.Items[1].Star || sel.Items[1].Qualifier != "e" {
		t.Errorf("item 1: %+v", sel.Items[1])
	}
}

func TestOperatorPrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT 1 WHERE a OR b AND c = 1 + 2 * 3").(*ast.SelectStmt)
	or := sel.Where.(*ast.BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top op = %s", or.Op)
	}
	and := or.R.(*ast.BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("right of OR = %s", and.Op)
	}
	cmp := and.R.(*ast.BinaryExpr)
	if cmp.Op != "=" {
		t.Fatalf("cmp = %s", cmp.Op)
	}
	plus := cmp.R.(*ast.BinaryExpr)
	if plus.Op != "+" {
		t.Fatalf("plus = %s", plus.Op)
	}
	times := plus.R.(*ast.BinaryExpr)
	if times.Op != "*" {
		t.Fatalf("times = %s", times.Op)
	}
}

func TestParens(t *testing.T) {
	sel := mustParse(t, "SELECT 1 WHERE (a OR b) AND c").(*ast.SelectStmt)
	and := sel.Where.(*ast.BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("top = %s", and.Op)
	}
	if or := and.L.(*ast.BinaryExpr); or.Op != "OR" {
		t.Fatalf("left = %s", or.Op)
	}
}

func TestSubqueriesAndPredicates(t *testing.T) {
	sel := mustParse(t, `SELECT * FROM emp e WHERE EXISTS (SELECT 1 FROM dept d WHERE d.dno = e.edno) AND e.sal BETWEEN 1 AND 10 AND e.name LIKE 'a%' AND e.dno IN (1, 2, 3) AND e.x IS NOT NULL`).(*ast.SelectStmt)
	conj := ast.Conjuncts(sel.Where)
	if len(conj) != 5 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if sub, ok := conj[0].(*ast.SubqueryExpr); !ok || !sub.Exists {
		t.Errorf("conj 0: %T", conj[0])
	}
	if _, ok := conj[1].(*ast.BetweenExpr); !ok {
		t.Errorf("conj 1: %T", conj[1])
	}
	if _, ok := conj[2].(*ast.LikeExpr); !ok {
		t.Errorf("conj 2: %T", conj[2])
	}
	if in, ok := conj[3].(*ast.InExpr); !ok || len(in.List) != 3 {
		t.Errorf("conj 3: %T", conj[3])
	}
	if isn, ok := conj[4].(*ast.IsNullExpr); !ok || !isn.Not {
		t.Errorf("conj 4: %T", conj[4])
	}
}

func TestInSubquery(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM emp WHERE edno IN (SELECT dno FROM dept)").(*ast.SelectStmt)
	in := sel.Where.(*ast.InExpr)
	if in.Sub == nil {
		t.Fatal("expected IN subquery")
	}
}

func TestNotVariants(t *testing.T) {
	sel := mustParse(t, "SELECT 1 WHERE x NOT IN (1) AND y NOT LIKE 'a' AND z NOT BETWEEN 1 AND 2 AND NOT EXISTS (SELECT 1)").(*ast.SelectStmt)
	conj := ast.Conjuncts(sel.Where)
	if in := conj[0].(*ast.InExpr); !in.Not {
		t.Error("NOT IN lost")
	}
	if lk := conj[1].(*ast.LikeExpr); !lk.Not {
		t.Error("NOT LIKE lost")
	}
	if bt := conj[2].(*ast.BetweenExpr); !bt.Not {
		t.Error("NOT BETWEEN lost")
	}
	if not := conj[3].(*ast.UnaryExpr); not.Op != "NOT" {
		t.Error("NOT EXISTS should parse as NOT(EXISTS)")
	}
}

func TestGroupByHavingOrderLimit(t *testing.T) {
	sel := mustParse(t, "SELECT edno, COUNT(*) FROM emp GROUP BY edno HAVING COUNT(*) > 2 ORDER BY edno DESC LIMIT 5").(*ast.SelectStmt)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group/having lost")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Error("order lost")
	}
	if sel.Limit != 5 {
		t.Error("limit lost")
	}
	fc := sel.Items[1].Expr.(*ast.FuncCall)
	if !fc.Star || fc.Name != "COUNT" {
		t.Error("COUNT(*) lost")
	}
}

func TestUnion(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v").(*ast.SelectStmt)
	if sel.Union == nil || !sel.Union.All {
		t.Fatal("first union lost")
	}
	if sel.Union.Right.Union == nil || sel.Union.Right.Union.All {
		t.Fatal("second union lost")
	}
}

func TestJoinDesugar(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON b.y = c.y").(*ast.SelectStmt)
	if len(sel.From) != 3 {
		t.Fatalf("from = %d", len(sel.From))
	}
	if len(ast.Conjuncts(sel.Where)) != 2 {
		t.Fatalf("where = %v", sel.Where)
	}
}

func TestDerivedTable(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM (SELECT a FROM t) s WHERE s.a = 1").(*ast.SelectStmt)
	if sel.From[0].Subquery == nil || sel.From[0].Alias != "s" {
		t.Fatalf("derived table: %+v", sel.From[0])
	}
	if _, err := Parse("SELECT * FROM (SELECT a FROM t)"); err == nil {
		t.Error("derived table without alias should fail")
	}
}

func TestCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE emp (eno INT NOT NULL, name VARCHAR, sal FLOAT, PRIMARY KEY (eno), FOREIGN KEY (edno) REFERENCES dept (dno))`)
	ct := stmt.(*ast.CreateTableStmt)
	if len(ct.Columns) != 3 || !ct.Columns[0].NotNull {
		t.Errorf("columns: %+v", ct.Columns)
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "eno" {
		t.Errorf("pk: %v", ct.PrimaryKey)
	}
	if len(ct.ForeignKeys) != 1 || ct.ForeignKeys[0].RefTable != "dept" {
		t.Errorf("fk: %+v", ct.ForeignKeys)
	}
}

func TestCreateIndex(t *testing.T) {
	ci := mustParse(t, "CREATE UNIQUE ORDERED INDEX i ON t (a, b)").(*ast.CreateIndexStmt)
	if !ci.Unique || !ci.Ordered || len(ci.Columns) != 2 {
		t.Errorf("%+v", ci)
	}
}

func TestInsertForms(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*ast.InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Errorf("%+v", ins)
	}
	ins2 := mustParse(t, "INSERT INTO t SELECT * FROM u").(*ast.InsertStmt)
	if ins2.Select == nil {
		t.Error("insert-select lost")
	}
}

func TestUpdateDelete(t *testing.T) {
	up := mustParse(t, "UPDATE emp e SET sal = sal * 1.1, name = 'x' WHERE eno = 1").(*ast.UpdateStmt)
	if up.Alias != "e" || len(up.Set) != 2 || up.Where == nil {
		t.Errorf("%+v", up)
	}
	del := mustParse(t, "DELETE FROM emp WHERE eno = 1").(*ast.DeleteStmt)
	if del.Where == nil {
		t.Errorf("%+v", del)
	}
}

func TestCase(t *testing.T) {
	sel := mustParse(t, "SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END FROM t").(*ast.SelectStmt)
	c := sel.Items[0].Expr.(*ast.CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("%+v", c)
	}
}

// The paper's Fig. 1 query, verbatim modulo our grammar.
const depsARC = `CREATE VIEW deps_ARC AS
OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
       xemp AS EMP,
       xproj AS PROJ,
       xskills AS SKILLS,
       employment AS (RELATE xdept VIA EMPLOYS, xemp
                      WHERE xdept.dno = xemp.edno),
       ownership AS (RELATE xdept VIA HAS, xproj
                     WHERE xdept.dno = xproj.pdno),
       empproperty AS (RELATE xemp VIA POSSESSES, xskills
                       USING EMPSKILLS es
                       WHERE xemp.eno = es.eseno AND es.essno = xskills.sno),
       projproperty AS (RELATE xproj VIA NEEDS, xskills
                        USING PROJSKILLS ps
                        WHERE xproj.pno = ps.pspno AND ps.pssno = xskills.sno)
TAKE *`

func TestXNFDepsARC(t *testing.T) {
	cv := mustParse(t, depsARC).(*ast.CreateViewStmt)
	if cv.XNF == nil {
		t.Fatal("expected XNF view")
	}
	q := cv.XNF
	if len(q.Components) != 8 {
		t.Fatalf("components = %d", len(q.Components))
	}
	names := []string{"xdept", "xemp", "xproj", "xskills", "employment", "ownership", "empproperty", "projproperty"}
	for i, n := range names {
		if q.Components[i].Name != n {
			t.Errorf("component %d = %s, want %s", i, q.Components[i].Name, n)
		}
	}
	// Bare-table shortcut expands to SELECT *.
	if q.Components[1].Select == nil || q.Components[1].Select.From[0].Table != "EMP" {
		t.Errorf("shortcut: %+v", q.Components[1])
	}
	emp := q.Components[4].Relate
	if emp == nil || emp.Parent != "xdept" || emp.Role != "EMPLOYS" || emp.Children[0] != "xemp" {
		t.Errorf("employment: %+v", emp)
	}
	ep := q.Components[6].Relate
	if len(ep.Using) != 1 || ep.Using[0].Table != "EMPSKILLS" || ep.Using[0].Alias != "es" {
		t.Errorf("empproperty USING: %+v", ep.Using)
	}
	if len(q.Take) != 1 || !q.Take[0].Star {
		t.Errorf("take: %+v", q.Take)
	}
	roundTrip(t, depsARC)
}

func TestXNFDirectQueryAndProjection(t *testing.T) {
	q := mustParse(t, `OUT OF a AS T1, b AS T2, r AS (RELATE a, b WHERE a.x = b.y) TAKE a (c1, c2), r`).(*ast.XNFQuery)
	if len(q.Components) != 3 {
		t.Fatalf("components = %d", len(q.Components))
	}
	if q.Components[2].Relate.Role != "" {
		t.Error("VIA should be optional")
	}
	if len(q.Take) != 2 || q.Take[0].Columns[1] != "c2" {
		t.Errorf("take: %+v", q.Take)
	}
}

func TestXNFNaryRelate(t *testing.T) {
	q := mustParse(t, `OUT OF a AS T1, b AS T2, c AS T3, r AS (RELATE a VIA ROLE_X, b, c WHERE a.x = b.y AND b.y = c.z) TAKE *`).(*ast.XNFQuery)
	rel := q.Components[3].Relate
	if len(rel.Children) != 2 {
		t.Fatalf("n-ary children = %d", len(rel.Children))
	}
}

func TestPathExpr(t *testing.T) {
	e, err := ParseExpr("deps_ARC.xdept.xemp")
	if err != nil {
		t.Fatal(err)
	}
	pe := e.(*ast.PathExpr)
	if len(pe.Steps) != 3 {
		t.Errorf("%+v", pe)
	}
	e2, _ := ParseExpr("a.b")
	if _, ok := e2.(*ast.ColumnRef); !ok {
		t.Errorf("two-step should be a column ref: %T", e2)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"INSERT INTO t VALUES",
		"OUT OF TAKE *",
		"OUT OF a AS T TAKE",
		"OUT OF r AS (RELATE a) TAKE *", // no children
		"SELECT * FROM t extra garbage ,",
		"SELECT 1 WHERE CASE END",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestLiterals(t *testing.T) {
	sel := mustParse(t, "SELECT 1, 2.5, 'str', NULL, TRUE, FALSE, -3").(*ast.SelectStmt)
	vals := []types.Value{
		types.NewInt(1), types.NewFloat(2.5), types.NewString("str"),
		types.Null, types.NewBool(true), types.NewBool(false), types.NewInt(-3),
	}
	for i, want := range vals {
		lit := sel.Items[i].Expr.(*ast.Literal)
		if lit.Value.T != want.T || !types.Equal(lit.Value, want) {
			t.Errorf("literal %d = %v, want %v", i, lit.Value, want)
		}
	}
}

func TestRoundTripCorpus(t *testing.T) {
	corpus := []string{
		"SELECT * FROM t",
		"SELECT DISTINCT a, b AS c FROM t u WHERE a = 1 AND b < 2 OR NOT (c IS NULL)",
		"SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 3",
		"SELECT a FROM t WHERE a IN (SELECT b FROM u) UNION SELECT c FROM v",
		"SELECT (SELECT MAX(b) FROM u) FROM t",
		"SELECT a + b * c - d / e % f FROM t",
		"SELECT a || 'x' FROM t WHERE b LIKE '%y%' AND c BETWEEN 1 AND 2",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
		"UPDATE t SET a = a + 1 WHERE b = 'z'",
		"DELETE FROM t WHERE a IN (1, 2)",
		"CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR, PRIMARY KEY (a))",
		"CREATE UNIQUE INDEX i ON t (a)",
		"CREATE VIEW v AS SELECT a FROM t",
		"DROP TABLE t",
		"DROP VIEW v",
		"SELECT CASE WHEN a = 1 THEN 2 ELSE 3 END FROM t",
		"OUT OF a AS (SELECT * FROM T1), r AS (RELATE a VIA R, b USING M m WHERE a.x = m.y) TAKE a, r (x, y)",
		depsARC,
	}
	for _, sql := range corpus {
		roundTrip(t, sql)
	}
}

func TestDeparseParenthesization(t *testing.T) {
	// (a + b) * c must keep its parens through deparse.
	sel := mustParse(t, "SELECT (a + b) * c FROM t").(*ast.SelectStmt)
	s := sel.String()
	if !strings.Contains(s, "(a + b) * c") {
		t.Errorf("deparse lost parens: %s", s)
	}
	// a - (b - c) is not the same as a - b - c.
	sel2 := mustParse(t, "SELECT a - (b - c) FROM t").(*ast.SelectStmt)
	s2 := sel2.String()
	if !strings.Contains(s2, "a - (b - c)") {
		t.Errorf("right-assoc parens lost: %s", s2)
	}
}

func TestPlaceholders(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM emp WHERE edno = ? AND sal > ?").(*ast.SelectStmt)
	and := sel.Where.(*ast.BinaryExpr)
	p0 := and.L.(*ast.BinaryExpr).R.(*ast.Placeholder)
	p1 := and.R.(*ast.BinaryExpr).R.(*ast.Placeholder)
	if p0.Idx != 0 || p1.Idx != 1 {
		t.Errorf("placeholder indexes = %d, %d; want 0, 1", p0.Idx, p1.Idx)
	}
	if n := ast.NumPlaceholders(sel); n != 2 {
		t.Errorf("NumPlaceholders = %d, want 2", n)
	}
	roundTrip(t, "SELECT * FROM emp WHERE edno = ? AND sal > ?")
	roundTrip(t, "INSERT INTO skills VALUES (?, ?)")
	roundTrip(t, "UPDATE emp SET sal = ? WHERE eno = ?")
	roundTrip(t, "DELETE FROM emp WHERE eno = ?")

	// Placeholders inside subqueries are numbered in occurrence order and
	// found by the deep walker.
	nested := mustParse(t, "SELECT * FROM emp WHERE sal > ? AND edno IN (SELECT dno FROM dept WHERE loc = ?)")
	if n := ast.NumPlaceholders(nested); n != 2 {
		t.Errorf("nested NumPlaceholders = %d, want 2", n)
	}
}
