package qgm

import (
	"fmt"
	"strings"

	"xnf/internal/types"
)

// Expr is a resolved QGM expression. Unlike ast.Expr, column references
// point at quantifiers (possibly of an enclosing box — that is how QGM
// models correlation) and subqueries are bound to quantifiers.
type Expr interface {
	exprNode()
	String() string
}

// Const is a literal value.
type Const struct {
	V types.Value
}

// Placeholder is a statement parameter (`?` marker): slot Idx of the
// argument frame the caller supplies at execution. It is a leaf like Const,
// but its value is bound at Open time rather than compile time, which is
// what lets one compiled plan serve every execution of a prepared
// statement.
type Placeholder struct {
	Idx int
}

// ColRef reads column Ord of the row bound to quantifier Q.
type ColRef struct {
	Q   *Quantifier
	Ord int
}

// BinOp applies a binary operator: comparisons, arithmetic, AND, OR, LIKE.
type BinOp struct {
	Op   string
	L, R Expr
}

// UnOp applies NOT, unary minus, ISNULL or ISNOTNULL.
type UnOp struct {
	Op string
	X  Expr
}

// Func is a function call. Aggregates (COUNT/SUM/AVG/MIN/MAX) are only
// legal in GroupBy box heads; scalar functions anywhere.
type Func struct {
	Name     string
	Distinct bool
	Star     bool
	Args     []Expr
}

// Case is a searched CASE expression.
type Case struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one arm of a Case.
type CaseWhen struct {
	Cond, Result Expr
}

// SubqueryRef embeds a quantified subquery in an expression position:
// EXISTS(...) (Exist), NOT EXISTS / NOT IN (AntiExist) or a scalar
// subquery (Scalar). For Exist/AntiExist generated from IN, Preds carries
// the IN equality predicates to evaluate against each subquery row.
type SubqueryRef struct {
	Quant *Quantifier
	// Preds are evaluated with the subquery row bound to Quant; for a bare
	// EXISTS they are empty (any row satisfies).
	Preds []Expr
}

func (*Const) exprNode()       {}
func (*Placeholder) exprNode() {}
func (*ColRef) exprNode()      {}
func (*BinOp) exprNode()       {}
func (*UnOp) exprNode()        {}
func (*Func) exprNode()        {}
func (*Case) exprNode()        {}
func (*SubqueryRef) exprNode() {}

func (e *Const) String() string { return e.V.SQLLiteral() }

func (e *Placeholder) String() string { return fmt.Sprintf("?%d", e.Idx+1) }

func (e *ColRef) String() string {
	if e.Q == nil {
		return fmt.Sprintf("?.%d", e.Ord)
	}
	name := e.Q.Name
	if name == "" {
		name = fmt.Sprintf("q%d", e.Q.ID)
	}
	if e.Q.Input != nil && e.Ord < len(e.Q.Input.Head) {
		return name + "." + e.Q.Input.Head[e.Ord].Name
	}
	return fmt.Sprintf("%s.#%d", name, e.Ord)
}

func (e *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L.String(), e.Op, e.R.String())
}

func (e *UnOp) String() string {
	switch e.Op {
	case "ISNULL":
		return fmt.Sprintf("(%s IS NULL)", e.X.String())
	case "ISNOTNULL":
		return fmt.Sprintf("(%s IS NOT NULL)", e.X.String())
	default:
		return fmt.Sprintf("%s(%s)", e.Op, e.X.String())
	}
}

func (e *Func) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", e.Name, d, strings.Join(args, ", "))
}

func (e *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond.String(), w.Result.String())
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

func (e *SubqueryRef) String() string {
	kind := e.Quant.Type.String()
	box := "?"
	if e.Quant.Input != nil {
		box = fmt.Sprintf("box%d", e.Quant.Input.ID)
	}
	if len(e.Preds) == 0 {
		return fmt.Sprintf("%s(%s)", kind, box)
	}
	preds := make([]string, len(e.Preds))
	for i, p := range e.Preds {
		preds[i] = p.String()
	}
	return fmt.Sprintf("%s(%s | %s)", kind, box, strings.Join(preds, " AND "))
}

// WalkExpr visits e and all sub-expressions depth-first, including the
// predicates carried by SubqueryRefs (but not the subquery boxes).
func WalkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *BinOp:
		WalkExpr(n.L, visit)
		WalkExpr(n.R, visit)
	case *UnOp:
		WalkExpr(n.X, visit)
	case *Func:
		for _, a := range n.Args {
			WalkExpr(a, visit)
		}
	case *Case:
		for _, w := range n.Whens {
			WalkExpr(w.Cond, visit)
			WalkExpr(w.Result, visit)
		}
		WalkExpr(n.Else, visit)
	case *SubqueryRef:
		for _, p := range n.Preds {
			WalkExpr(p, visit)
		}
	}
}

// RewriteExpr rebuilds e bottom-up, replacing each node with fn's result.
// fn receives a node whose children are already rewritten.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *BinOp:
		return fn(&BinOp{Op: n.Op, L: RewriteExpr(n.L, fn), R: RewriteExpr(n.R, fn)})
	case *UnOp:
		return fn(&UnOp{Op: n.Op, X: RewriteExpr(n.X, fn)})
	case *Func:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = RewriteExpr(a, fn)
		}
		return fn(&Func{Name: n.Name, Distinct: n.Distinct, Star: n.Star, Args: args})
	case *Case:
		whens := make([]CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			whens[i] = CaseWhen{Cond: RewriteExpr(w.Cond, fn), Result: RewriteExpr(w.Result, fn)}
		}
		return fn(&Case{Whens: whens, Else: RewriteExpr(n.Else, fn)})
	case *SubqueryRef:
		preds := make([]Expr, len(n.Preds))
		for i, p := range n.Preds {
			preds[i] = RewriteExpr(p, fn)
		}
		return fn(&SubqueryRef{Quant: n.Quant, Preds: preds})
	default:
		return fn(e)
	}
}

// QuantsIn returns the set of quantifiers referenced by the expression
// (not descending into subquery boxes, but including subquery quantifiers).
func QuantsIn(e Expr) map[*Quantifier]bool {
	out := make(map[*Quantifier]bool)
	WalkExpr(e, func(x Expr) {
		switch n := x.(type) {
		case *ColRef:
			out[n.Q] = true
		case *SubqueryRef:
			out[n.Quant] = true
		}
	})
	return out
}

// RefersOnlyTo reports whether every quantifier referenced by e is in the
// allowed set.
func RefersOnlyTo(e Expr, allowed map[*Quantifier]bool) bool {
	ok := true
	for q := range QuantsIn(e) {
		if !allowed[q] {
			ok = false
		}
	}
	return ok
}

// SubstituteQuant rewrites column references over `from` into references
// over `to` with the ordinal mapped through ordMap (from-ordinal →
// to-ordinal). It is the workhorse of box merging.
func SubstituteQuant(e Expr, from, to *Quantifier, ordMap map[int]int) Expr {
	return RewriteExpr(e, func(x Expr) Expr {
		if c, ok := x.(*ColRef); ok && c.Q == from {
			if newOrd, ok := ordMap[c.Ord]; ok {
				return &ColRef{Q: to, Ord: newOrd}
			}
		}
		return x
	})
}

// InlineExpr replaces references to quantifier q with the corresponding
// head expressions of its input box (used when merging a child Select box
// into its consumer).
func InlineExpr(e Expr, q *Quantifier) Expr {
	return RewriteExpr(e, func(x Expr) Expr {
		if c, ok := x.(*ColRef); ok && c.Q == q {
			return q.Input.Head[c.Ord].Expr
		}
		return x
	})
}

// ExprType infers the result type of a QGM expression.
func ExprType(e Expr) types.Type {
	switch n := e.(type) {
	case *Const:
		return n.V.T
	case *ColRef:
		if n.Q != nil && n.Q.Input != nil && n.Ord < len(n.Q.Input.Head) {
			return n.Q.Input.Head[n.Ord].Type
		}
		return types.NullType
	case *BinOp:
		switch n.Op {
		case "AND", "OR", "=", "<>", "!=", "<", "<=", ">", ">=", "LIKE":
			return types.BoolType
		case "||":
			return types.StringType
		default:
			lt, rt := ExprType(n.L), ExprType(n.R)
			if lt == types.FloatType || rt == types.FloatType {
				return types.FloatType
			}
			return types.IntType
		}
	case *UnOp:
		switch n.Op {
		case "NOT", "ISNULL", "ISNOTNULL":
			return types.BoolType
		default:
			return ExprType(n.X)
		}
	case *Func:
		switch strings.ToUpper(n.Name) {
		case "COUNT":
			return types.IntType
		case "AVG":
			return types.FloatType
		case "SUM", "MIN", "MAX", "ABS":
			if len(n.Args) > 0 {
				return ExprType(n.Args[0])
			}
			return types.IntType
		case "UPPER", "LOWER":
			return types.StringType
		case "LENGTH":
			return types.IntType
		default:
			return types.NullType
		}
	case *Case:
		for _, w := range n.Whens {
			if t := ExprType(w.Result); t != types.NullType {
				return t
			}
		}
		return ExprType(n.Else)
	case *SubqueryRef:
		if n.Quant.Type == Scalar && n.Quant.Input != nil && len(n.Quant.Input.Head) > 0 {
			return n.Quant.Input.Head[0].Type
		}
		return types.BoolType
	default:
		return types.NullType
	}
}

// IsAggregate reports whether the expression contains an aggregate call.
func IsAggregate(e Expr) bool {
	agg := false
	WalkExpr(e, func(x Expr) {
		if f, ok := x.(*Func); ok {
			switch strings.ToUpper(f.Name) {
			case "COUNT", "SUM", "AVG", "MIN", "MAX":
				agg = true
			}
		}
	})
	return agg
}

// EqualExpr reports structural equality of two expressions (quantifier
// identity for column refs). Used for common-subexpression detection and
// GROUP BY matching.
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	switch x := a.(type) {
	case *Const:
		y, ok := b.(*Const)
		return ok && types.Equal(x.V, y.V) && x.V.T == y.V.T
	case *Placeholder:
		y, ok := b.(*Placeholder)
		return ok && x.Idx == y.Idx
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && x.Q == y.Q && x.Ord == y.Ord
	case *BinOp:
		y, ok := b.(*BinOp)
		return ok && x.Op == y.Op && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case *UnOp:
		y, ok := b.(*UnOp)
		return ok && x.Op == y.Op && EqualExpr(x.X, y.X)
	case *Func:
		y, ok := b.(*Func)
		if !ok || x.Name != y.Name || x.Distinct != y.Distinct || x.Star != y.Star || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !EqualExpr(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Case:
		y, ok := b.(*Case)
		if !ok || len(x.Whens) != len(y.Whens) {
			return false
		}
		for i := range x.Whens {
			if !EqualExpr(x.Whens[i].Cond, y.Whens[i].Cond) || !EqualExpr(x.Whens[i].Result, y.Whens[i].Result) {
				return false
			}
		}
		return EqualExpr(x.Else, y.Else)
	case *SubqueryRef:
		y, ok := b.(*SubqueryRef)
		return ok && x.Quant == y.Quant
	default:
		return false
	}
}

// AndAll conjoins predicates into a single expression (nil for empty).
func AndAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if out == nil {
			out = p
		} else {
			out = &BinOp{Op: "AND", L: out, R: p}
		}
	}
	return out
}
