package qgm

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders the reachable part of the graph as indented text, one box
// per stanza, in a stable order. EXPLAIN and the golden-structure tests in
// internal/core use it.
func (g *Graph) Dump() string {
	boxes := g.Reachable()
	sort.Slice(boxes, func(i, j int) bool { return boxes[i].ID < boxes[j].ID })
	var b strings.Builder
	for _, box := range boxes {
		b.WriteString(box.describe())
		b.WriteString("\n")
	}
	return b.String()
}

func (box *Box) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "box%d %s", box.ID, box.Kind)
	if box.Name != "" {
		fmt.Fprintf(&b, " %q", box.Name)
	}
	if box.Distinct {
		b.WriteString(" DISTINCT")
	}
	if box.Kind == BaseTable {
		fmt.Fprintf(&b, " table=%s", box.Table)
	}
	b.WriteString("\n")
	if len(box.Head) > 0 {
		b.WriteString("  head:")
		for _, h := range box.Head {
			if h.Expr != nil {
				fmt.Fprintf(&b, " %s=%s", h.Name, h.Expr.String())
			} else {
				fmt.Fprintf(&b, " %s", h.Name)
			}
		}
		b.WriteString("\n")
	}
	for _, q := range box.Quants {
		in := "-"
		if q.Input != nil {
			in = fmt.Sprintf("box%d", q.Input.ID)
		}
		fmt.Fprintf(&b, "  quant q%d(%s) %s over %s\n", q.ID, q.Type, q.Name, in)
	}
	for _, p := range box.Preds {
		fmt.Fprintf(&b, "  pred %s\n", p.String())
	}
	for _, ge := range box.GroupExprs {
		fmt.Fprintf(&b, "  group %s\n", ge.String())
	}
	for _, o := range box.XNFOutputs {
		kind := "node"
		if o.IsRel {
			kind = fmt.Sprintf("rel parent=%s children=%s role=%s", o.Parent, strings.Join(o.Children, "+"), o.Role)
		}
		r := ""
		if o.Reachable {
			r = " R"
		}
		fmt.Fprintf(&b, "  xnf-out %s (%s) box%d%s\n", o.Name, kind, o.Box.ID, r)
	}
	for _, o := range box.Outputs {
		in := "-"
		if o.Quant != nil && o.Quant.Input != nil {
			in = fmt.Sprintf("box%d", o.Quant.Input.ID)
		}
		rel := ""
		if o.IsRel {
			rel = fmt.Sprintf(" rel parent=%s children=%s role=%s", o.Parent, strings.Join(o.Children, "+"), o.Role)
		}
		fmt.Fprintf(&b, "  out #%d %s over %s%s\n", o.CompID, o.Name, in, rel)
	}
	return b.String()
}

// Validate checks structural invariants of the graph and returns the list
// of violations; tests assert it is empty after every compilation stage.
func (g *Graph) Validate() []string {
	var errs []string
	boxes := g.Reachable()
	boxSet := make(map[int]*Box, len(boxes))
	for _, b := range boxes {
		boxSet[b.ID] = b
	}
	// Every quantifier visible from a box must belong to some reachable box
	// (its own or an ancestor — correlation); its input must be reachable.
	owner := make(map[*Quantifier]*Box)
	for _, b := range boxes {
		for _, q := range b.Quants {
			owner[q] = b
		}
		for _, o := range b.Outputs {
			if o.Quant != nil {
				owner[o.Quant] = b
			}
		}
		for _, e := range allExprs(b) {
			WalkExpr(e, func(x Expr) {
				if sq, ok := x.(*SubqueryRef); ok {
					owner[sq.Quant] = b
				}
			})
		}
	}
	for _, b := range boxes {
		for _, e := range allExprs(b) {
			WalkExpr(e, func(x Expr) {
				if c, ok := x.(*ColRef); ok {
					if c.Q == nil {
						errs = append(errs, fmt.Sprintf("box%d: nil quantifier in %s", b.ID, e.String()))
						return
					}
					if _, ok := owner[c.Q]; !ok {
						errs = append(errs, fmt.Sprintf("box%d: reference to unowned quantifier q%d", b.ID, c.Q.ID))
					}
					if c.Q.Input != nil && c.Ord >= len(c.Q.Input.Head) {
						errs = append(errs, fmt.Sprintf("box%d: ordinal %d out of range for box%d", b.ID, c.Ord, c.Q.Input.ID))
					}
				}
			})
		}
		for _, q := range b.Quants {
			if q.Input == nil {
				errs = append(errs, fmt.Sprintf("box%d: quantifier q%d has no input", b.ID, q.ID))
			} else if _, ok := boxSet[q.Input.ID]; !ok {
				errs = append(errs, fmt.Sprintf("box%d: quantifier q%d ranges over unreachable box%d", b.ID, q.ID, q.Input.ID))
			}
		}
		switch b.Kind {
		case BaseTable:
			if b.Table == "" {
				errs = append(errs, fmt.Sprintf("box%d: base table without a table name", b.ID))
			}
			if len(b.Quants) != 0 {
				errs = append(errs, fmt.Sprintf("box%d: base table with quantifiers", b.ID))
			}
		case GroupBy:
			n := 0
			for _, q := range b.Quants {
				if q.Type == ForEach {
					n++
				}
			}
			if n != 1 {
				errs = append(errs, fmt.Sprintf("box%d: GroupBy needs exactly one F quantifier, has %d", b.ID, n))
			}
		case Union:
			if len(b.Quants) < 2 {
				errs = append(errs, fmt.Sprintf("box%d: Union with %d branches", b.ID, len(b.Quants)))
			}
		case Top:
			// Before XNF semantic rewrite a Top legitimately has no
			// outputs yet: it ranges over the XNF operator box.
			overXNF := false
			for _, q := range b.Quants {
				if q.Input != nil && q.Input.Kind == XNFOp {
					overXNF = true
				}
			}
			if len(b.Outputs) == 0 && !overXNF {
				errs = append(errs, fmt.Sprintf("box%d: Top without outputs", b.ID))
			}
		}
	}
	if g.TopBox == nil {
		errs = append(errs, "graph has no top box")
	} else if g.TopBox.Kind != Top {
		errs = append(errs, "top box is not a Top operator")
	}
	return errs
}

// CountBoxOps tallies one box's relational operations in the units of the
// paper's Table 1: a Select box with n F-quantifiers contributes n-1
// joins, every existential quantifier (reachability subquery) counts as
// one join, and a single-input box with local predicates counts one
// selection. Base tables, pure projections and Top boxes cost nothing.
func CountBoxOps(b *Box) (joins, selections int) {
	if b.Kind != Select && b.Kind != GroupBy {
		return 0, 0
	}
	f := 0
	subq := 0
	for _, q := range b.Quants {
		switch q.Type {
		case ForEach:
			f++
		case Exist, AntiExist:
			subq++
		}
	}
	for _, e := range allExprs(b) {
		WalkExpr(e, func(x Expr) {
			if _, ok := x.(*SubqueryRef); ok {
				subq++
			}
		})
	}
	if f > 1 {
		joins += f - 1
	}
	joins += subq
	if f <= 1 && subq == 0 && len(b.Preds) > 0 {
		selections++
	}
	return joins, selections
}

// CountOps sums CountBoxOps over the reachable graph.
func (g *Graph) CountOps() (joins, selections int) {
	for _, b := range g.Reachable() {
		j, s := CountBoxOps(b)
		joins += j
		selections += s
	}
	return joins, selections
}

// ReachableFrom returns the boxes reachable from a starting box through
// quantifiers and subquery references, in DFS pre-order.
func ReachableFrom(start *Box) []*Box {
	seen := make(map[int]bool)
	var out []*Box
	var visit func(b *Box)
	visit = func(b *Box) {
		if b == nil || seen[b.ID] {
			return
		}
		seen[b.ID] = true
		out = append(out, b)
		for _, q := range b.Quants {
			visit(q.Input)
		}
		for _, e := range allExprs(b) {
			WalkExpr(e, func(x Expr) {
				if sq, ok := x.(*SubqueryRef); ok {
					visit(sq.Quant.Input)
				}
			})
		}
	}
	visit(start)
	return out
}
