// Package qgm implements the Query Graph Model, the internal semantic
// network Starburst uses to represent queries during all compilation stages
// (Sect. 3.2 of the paper). Queries are a DAG of boxes — high-level table
// operators — connected by quantifiers that range over other boxes' outputs.
// The XNF extension adds one new operator kind (XNFOp) and multi-output
// tops; everything else is the standard NF model, which is exactly the
// reuse story the paper tells.
package qgm

import (
	"fmt"
	"strings"

	"xnf/internal/types"
)

// BoxKind enumerates the QGM operators.
type BoxKind uint8

// The box kinds. BaseTable boxes are leaves over stored tables; Select is
// the select-project-join operator; GroupBy groups one input; Union merges
// branches; XNFOp is the paper's new multi-output composite-object
// constructor; Top is the query/application interface operator.
const (
	BaseTable BoxKind = iota
	Select
	GroupBy
	Union
	XNFOp
	Top
)

func (k BoxKind) String() string {
	switch k {
	case BaseTable:
		return "BaseTable"
	case Select:
		return "Select"
	case GroupBy:
		return "GroupBy"
	case Union:
		return "Union"
	case XNFOp:
		return "XNF"
	case Top:
		return "Top"
	default:
		return fmt.Sprintf("BoxKind(%d)", uint8(k))
	}
}

// QuantType classifies quantifiers. F ("for each") is the range quantifier
// of ordinary joins; E is existential (EXISTS / IN subqueries); AntiE is
// the complement (NOT EXISTS / NOT IN); Scalar binds a single-row subquery
// value.
type QuantType uint8

// The quantifier types.
const (
	ForEach QuantType = iota
	Exist
	AntiExist
	Scalar
)

func (t QuantType) String() string {
	switch t {
	case ForEach:
		return "F"
	case Exist:
		return "E"
	case AntiExist:
		return "¬E"
	case Scalar:
		return "S"
	default:
		return "?"
	}
}

// Quantifier ranges over the output of Input inside the body of one box.
type Quantifier struct {
	ID    int
	Type  QuantType
	Name  string // correlation name, for diagnostics
	Input *Box
	// NullAware marks AntiExist quantifiers generated from NOT IN, whose
	// three-valued NULL semantics differ from NOT EXISTS.
	NullAware bool
}

// HeadColumn is one output column of a box.
type HeadColumn struct {
	Name string
	Type types.Type
	Expr Expr
}

// OrderSpec is one ORDER BY element attached to a Top box.
type OrderSpec struct {
	Expr Expr
	Desc bool
}

// TopOutput is one output table of a Top box. Plain SQL queries have one;
// XNF queries have one per TAKEn component, each tagged with a component
// number so the runtime can emit the heterogeneous stream (Sect. 4.1).
type TopOutput struct {
	Name   string
	CompID int
	Quant  *Quantifier
	// Relationship metadata (nil semantics for plain nodes): for an XNF
	// relationship output, Parent and Children name the partner components
	// and Role is the VIA name.
	IsRel    bool
	Parent   string
	Children []string
	Role     string
	// KeyCols are the head-column ordinals of Quant's input that identify a
	// tuple of this component (used by the cache to build connections).
	KeyCols []int
	// For relationships: the ordinals in the connection tuple that carry
	// the parent key and each child key.
	ParentKeyCols []int
	ChildKeyCols  [][]int
}

// XNFOutput is one named output of the XNF operator (before semantic
// rewrite replaces the operator with plain NF boxes).
type XNFOutput struct {
	Name  string
	IsRel bool
	Box   *Box
	// Relationship structure.
	Parent   string
	Children []string
	Role     string
	// Reachable marks components that must be restricted to tuples
	// reachable from a root (the 'R' marker in Fig. 4).
	Reachable bool
}

// Box is one QGM operator: a head (output description) and a body
// (quantifiers plus predicates showing how the output derives from the
// inputs).
type Box struct {
	ID   int
	Kind BoxKind
	Name string

	Head     []HeadColumn
	Distinct bool

	Quants []*Quantifier
	Preds  []Expr

	// GroupBy: grouping expressions (over the single F quantifier).
	GroupExprs []Expr

	// Union: true for UNION ALL.
	UnionAll bool

	// BaseTable: the stored table's catalog name and key ordinals.
	Table   string
	PKOrds  []int
	RowEst  int64 // optimizer estimate, filled from stats
	ColCard []int64

	// XNFOp: the composite object's outputs.
	XNFOutputs []XNFOutput

	// Top: the query's outputs plus result ordering. HiddenCols counts
	// trailing head columns of the output that exist only for sorting and
	// are stripped from the delivered rows.
	Outputs    []TopOutput
	OrderBy    []OrderSpec
	Limit      int // -1 = none
	HiddenCols int
}

// Graph owns the boxes of one query.
type Graph struct {
	TopBox *Box
	boxes  []*Box
	nextID int

	// Deps are the catalog names (tables and views, upper-cased, deduped)
	// this graph was compiled against. The plan cache revalidates cached
	// plans per dependency: a plan stays fresh while none of its Deps
	// changed, even when unrelated DDL bumped the global catalog version.
	Deps []string
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddDep records a catalog-name dependency (idempotent).
func (g *Graph) AddDep(name string) {
	key := strings.ToUpper(name)
	for _, d := range g.Deps {
		if d == key {
			return
		}
	}
	g.Deps = append(g.Deps, key)
}

// NewBox allocates a box registered with the graph.
func (g *Graph) NewBox(kind BoxKind, name string) *Box {
	b := &Box{ID: g.nextID, Kind: kind, Name: name, Limit: -1}
	g.nextID++
	g.boxes = append(g.boxes, b)
	return b
}

// NewQuant allocates a quantifier over input and attaches it to box.
func (g *Graph) NewQuant(box *Box, typ QuantType, name string, input *Box) *Quantifier {
	q := g.NewDetachedQuant(typ, name, input)
	box.Quants = append(box.Quants, q)
	return q
}

// NewDetachedQuant allocates a quantifier owned by an expression
// (subquery quantifiers) rather than a box body.
func (g *Graph) NewDetachedQuant(typ QuantType, name string, input *Box) *Quantifier {
	q := &Quantifier{ID: g.nextID, Type: typ, Name: name, Input: input}
	g.nextID++
	return q
}

// Boxes returns all registered boxes (including dead ones until GC).
func (g *Graph) Boxes() []*Box { return g.boxes }

// Reachable returns the boxes reachable from the top in a deterministic
// (DFS pre-order) order.
func (g *Graph) Reachable() []*Box {
	seen := make(map[int]bool)
	var out []*Box
	var visit func(b *Box)
	visit = func(b *Box) {
		if b == nil || seen[b.ID] {
			return
		}
		seen[b.ID] = true
		out = append(out, b)
		for _, q := range b.Quants {
			visit(q.Input)
		}
		for _, o := range b.XNFOutputs {
			visit(o.Box)
		}
		for _, o := range b.Outputs {
			if o.Quant != nil {
				visit(o.Quant.Input)
			}
		}
		// Correlated subquery boxes and scalar quantifier inputs are
		// reached through expressions too.
		for _, e := range allExprs(b) {
			WalkExpr(e, func(x Expr) {
				if sq, ok := x.(*SubqueryRef); ok {
					visit(sq.Quant.Input)
				}
			})
		}
	}
	visit(g.TopBox)
	return out
}

// GC drops boxes not reachable from the top (the paper's "removal of
// unused boxes" clean-up rule, Sect. 4.4).
func (g *Graph) GC() int {
	live := make(map[int]bool)
	for _, b := range g.Reachable() {
		live[b.ID] = true
	}
	kept := g.boxes[:0]
	removed := 0
	for _, b := range g.boxes {
		if live[b.ID] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	g.boxes = kept
	return removed
}

// Consumers counts how many quantifiers (and top outputs) range over each
// box; boxes with more than one consumer are shared common subexpressions.
func (g *Graph) Consumers() map[int]int {
	counts := make(map[int]int)
	for _, b := range g.Reachable() {
		for _, q := range b.Quants {
			if q.Input != nil {
				counts[q.Input.ID]++
			}
		}
		for _, e := range allExprs(b) {
			WalkExpr(e, func(x Expr) {
				if sq, ok := x.(*SubqueryRef); ok && sq.Quant.Input != nil {
					counts[sq.Quant.Input.ID]++
				}
			})
		}
	}
	return counts
}

// allExprs lists every expression held by a box (preds, head, group exprs,
// order specs).
func allExprs(b *Box) []Expr {
	var out []Expr
	out = append(out, b.Preds...)
	for _, h := range b.Head {
		if h.Expr != nil {
			out = append(out, h.Expr)
		}
	}
	out = append(out, b.GroupExprs...)
	for _, o := range b.OrderBy {
		out = append(out, o.Expr)
	}
	return out
}

// QuantByID finds a quantifier attached to the box by ID.
func (b *Box) QuantByID(id int) *Quantifier {
	for _, q := range b.Quants {
		if q.ID == id {
			return q
		}
	}
	return nil
}

// RemoveQuant detaches a quantifier from the box.
func (b *Box) RemoveQuant(q *Quantifier) {
	for i, x := range b.Quants {
		if x == q {
			b.Quants = append(b.Quants[:i], b.Quants[i+1:]...)
			return
		}
	}
}

// HeadIndex returns the ordinal of the named head column.
func (b *Box) HeadIndex(name string) (int, bool) {
	for i, h := range b.Head {
		if equalFold(h.Name, name) {
			return i, true
		}
	}
	return 0, false
}

// HeadNames returns the output column names.
func (b *Box) HeadNames() []string {
	out := make([]string, len(b.Head))
	for i, h := range b.Head {
		out[i] = h.Name
	}
	return out
}

// HeadTypes returns the output column types.
func (b *Box) HeadTypes() []types.Type {
	out := make([]types.Type, len(b.Head))
	for i, h := range b.Head {
		out[i] = h.Type
	}
	return out
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
