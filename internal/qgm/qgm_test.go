package qgm

import (
	"strings"
	"testing"

	"xnf/internal/types"
)

// tinyGraph builds: Top → Select A {F over BaseTable T, pred t.a = 1}.
func tinyGraph() (*Graph, *Box, *Box) {
	g := NewGraph()
	base := g.NewBox(BaseTable, "T")
	base.Table = "T"
	base.Head = []HeadColumn{{Name: "a", Type: types.IntType}, {Name: "b", Type: types.StringType}}
	sel := g.NewBox(Select, "A")
	q := g.NewQuant(sel, ForEach, "t", base)
	sel.Preds = append(sel.Preds, &BinOp{Op: "=", L: &ColRef{Q: q, Ord: 0}, R: &Const{V: types.NewInt(1)}})
	sel.Head = []HeadColumn{{Name: "a", Type: types.IntType, Expr: &ColRef{Q: q, Ord: 0}}}
	top := g.NewBox(Top, "")
	tq := g.NewQuant(top, ForEach, "out", sel)
	top.Outputs = []TopOutput{{Name: "out", Quant: tq}}
	g.TopBox = top
	return g, sel, base
}

func TestReachableAndGC(t *testing.T) {
	g, sel, base := tinyGraph()
	dead := g.NewBox(Select, "dead")
	_ = dead
	boxes := g.Reachable()
	if len(boxes) != 3 {
		t.Fatalf("reachable = %d", len(boxes))
	}
	removed := g.GC()
	if removed != 1 {
		t.Errorf("GC removed %d", removed)
	}
	_ = sel
	_ = base
}

func TestConsumers(t *testing.T) {
	g, sel, base := tinyGraph()
	// A second consumer of base: shared common subexpression.
	sel2 := g.NewBox(Select, "B")
	q2 := g.NewQuant(sel2, ForEach, "t2", base)
	sel2.Head = []HeadColumn{{Name: "b", Expr: &ColRef{Q: q2, Ord: 1}}}
	g.NewQuant(g.TopBox, ForEach, "out2", sel2)
	g.TopBox.Outputs = append(g.TopBox.Outputs, TopOutput{Name: "out2", Quant: g.TopBox.Quants[1]})
	consumers := g.Consumers()
	if consumers[base.ID] != 2 {
		t.Errorf("base consumers = %d", consumers[base.ID])
	}
	if consumers[sel.ID] != 1 {
		t.Errorf("sel consumers = %d", consumers[sel.ID])
	}
}

func TestValidateCatchesBrokenRefs(t *testing.T) {
	g, sel, _ := tinyGraph()
	if errs := g.Validate(); len(errs) != 0 {
		t.Fatalf("valid graph rejected: %v", errs)
	}
	// Out-of-range ordinal.
	sel.Preds = append(sel.Preds, &ColRef{Q: sel.Quants[0], Ord: 99})
	if errs := g.Validate(); len(errs) == 0 {
		t.Error("out-of-range ordinal not caught")
	}
	sel.Preds = sel.Preds[:1]
	// Reference to a quantifier owned by nobody.
	ghost := &Quantifier{ID: 999, Input: sel}
	sel.Preds = append(sel.Preds, &ColRef{Q: ghost, Ord: 0})
	if errs := g.Validate(); len(errs) == 0 {
		t.Error("unowned quantifier not caught")
	}
}

func TestExprHelpers(t *testing.T) {
	g, sel, _ := tinyGraph()
	q := sel.Quants[0]
	e := &BinOp{Op: "AND",
		L: &BinOp{Op: "=", L: &ColRef{Q: q, Ord: 0}, R: &Const{V: types.NewInt(1)}},
		R: &UnOp{Op: "NOT", X: &ColRef{Q: q, Ord: 1}},
	}
	quants := QuantsIn(e)
	if len(quants) != 1 || !quants[q] {
		t.Errorf("QuantsIn = %v", quants)
	}
	if !RefersOnlyTo(e, map[*Quantifier]bool{q: true}) {
		t.Error("RefersOnlyTo false negative")
	}
	if RefersOnlyTo(e, map[*Quantifier]bool{}) {
		t.Error("RefersOnlyTo false positive")
	}
	if !EqualExpr(e, e) {
		t.Error("EqualExpr self")
	}
	e2 := &BinOp{Op: "AND", L: e.L, R: e.R}
	if !EqualExpr(e, e2) {
		t.Error("EqualExpr structural")
	}
	if EqualExpr(e, e.L) {
		t.Error("EqualExpr different shapes")
	}
	_ = g
}

func TestRewriteAndSubstitute(t *testing.T) {
	_, sel, base := tinyGraph()
	q := sel.Quants[0]
	// Substitute q's refs onto a new quantifier with shifted ordinals.
	q2 := &Quantifier{ID: 100, Name: "n", Input: base}
	e := &BinOp{Op: "=", L: &ColRef{Q: q, Ord: 0}, R: &ColRef{Q: q, Ord: 1}}
	sub := SubstituteQuant(e, q, q2, map[int]int{0: 1, 1: 0})
	b := sub.(*BinOp)
	if b.L.(*ColRef).Q != q2 || b.L.(*ColRef).Ord != 1 {
		t.Errorf("substitute wrong: %s", sub.String())
	}
	// Inline through head exprs.
	w := &Quantifier{ID: 500, Name: "w", Input: sel}
	inlined := InlineExpr(&ColRef{Q: w, Ord: 0}, w)
	if cr, ok := inlined.(*ColRef); !ok || cr.Q != q {
		t.Errorf("inline wrong: %s", inlined.String())
	}
}

func TestExprType(t *testing.T) {
	_, sel, _ := tinyGraph()
	q := sel.Quants[0]
	cases := []struct {
		e    Expr
		want types.Type
	}{
		{&Const{V: types.NewInt(1)}, types.IntType},
		{&ColRef{Q: q, Ord: 1}, types.StringType},
		{&BinOp{Op: "=", L: &Const{V: types.NewInt(1)}, R: &Const{V: types.NewInt(2)}}, types.BoolType},
		{&BinOp{Op: "+", L: &Const{V: types.NewInt(1)}, R: &Const{V: types.NewFloat(2)}}, types.FloatType},
		{&BinOp{Op: "+", L: &Const{V: types.NewInt(1)}, R: &Const{V: types.NewInt(2)}}, types.IntType},
		{&Func{Name: "COUNT", Star: true}, types.IntType},
		{&Func{Name: "AVG", Args: []Expr{&ColRef{Q: q, Ord: 0}}}, types.FloatType},
		{&Func{Name: "UPPER", Args: []Expr{&ColRef{Q: q, Ord: 1}}}, types.StringType},
		{&UnOp{Op: "ISNULL", X: &ColRef{Q: q, Ord: 0}}, types.BoolType},
	}
	for _, c := range cases {
		if got := ExprType(c.e); got != c.want {
			t.Errorf("ExprType(%s) = %v, want %v", c.e.String(), got, c.want)
		}
	}
}

func TestIsAggregate(t *testing.T) {
	if !IsAggregate(&Func{Name: "sum", Args: []Expr{&Const{V: types.NewInt(1)}}}) {
		t.Error("sum is aggregate")
	}
	if IsAggregate(&Func{Name: "UPPER", Args: []Expr{&Const{V: types.NewString("x")}}}) {
		t.Error("UPPER is not aggregate")
	}
	if !IsAggregate(&BinOp{Op: "+", L: &Func{Name: "MAX", Args: []Expr{&Const{V: types.NewInt(1)}}}, R: &Const{V: types.NewInt(1)}}) {
		t.Error("nested aggregate missed")
	}
}

func TestCountBoxOps(t *testing.T) {
	g := NewGraph()
	base := g.NewBox(BaseTable, "T")
	base.Table = "T"
	base.Head = []HeadColumn{{Name: "a"}}
	// Selection box: 1 selection.
	sel := g.NewBox(Select, "")
	q := g.NewQuant(sel, ForEach, "t", base)
	sel.Preds = []Expr{&BinOp{Op: "=", L: &ColRef{Q: q, Ord: 0}, R: &Const{V: types.NewInt(1)}}}
	if j, s := CountBoxOps(sel); j != 0 || s != 1 {
		t.Errorf("selection box = %d joins, %d sels", j, s)
	}
	// Join box: 2 quants = 1 join, no selection even with preds.
	join := g.NewBox(Select, "")
	q1 := g.NewQuant(join, ForEach, "x", base)
	q2 := g.NewQuant(join, ForEach, "y", base)
	join.Preds = []Expr{&BinOp{Op: "=", L: &ColRef{Q: q1, Ord: 0}, R: &ColRef{Q: q2, Ord: 0}}}
	if j, s := CountBoxOps(join); j != 1 || s != 0 {
		t.Errorf("join box = %d joins, %d sels", j, s)
	}
	// Subquery counts as a join, even inside OR.
	subq := g.NewDetachedQuant(Exist, "e", base)
	orBox := g.NewBox(Select, "")
	g.NewQuant(orBox, ForEach, "t", base)
	orBox.Preds = []Expr{&BinOp{Op: "OR",
		L: &SubqueryRef{Quant: subq},
		R: &SubqueryRef{Quant: g.NewDetachedQuant(Exist, "e2", base)},
	}}
	if j, _ := CountBoxOps(orBox); j != 2 {
		t.Errorf("or-of-exists box = %d joins, want 2", j)
	}
	// Pure projection: 0 ops.
	proj := g.NewBox(Select, "")
	g.NewQuant(proj, ForEach, "t", base)
	if j, s := CountBoxOps(proj); j != 0 || s != 0 {
		t.Errorf("projection = %d/%d", j, s)
	}
	// Base tables cost nothing.
	if j, s := CountBoxOps(base); j != 0 || s != 0 {
		t.Errorf("base = %d/%d", j, s)
	}
}

func TestDump(t *testing.T) {
	g, _, _ := tinyGraph()
	d := g.Dump()
	for _, want := range []string{"BaseTable", "Select", "Top", "pred", "quant"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestHeadHelpers(t *testing.T) {
	_, sel, _ := tinyGraph()
	if i, ok := sel.HeadIndex("A"); !ok || i != 0 {
		t.Error("HeadIndex case-insensitive")
	}
	if _, ok := sel.HeadIndex("zz"); ok {
		t.Error("missing head col found")
	}
	if sel.HeadNames()[0] != "a" {
		t.Error("HeadNames")
	}
	if sel.HeadTypes()[0] != types.IntType {
		t.Error("HeadTypes")
	}
	q := sel.Quants[0]
	sel.RemoveQuant(q)
	if len(sel.Quants) != 0 {
		t.Error("RemoveQuant")
	}
}
