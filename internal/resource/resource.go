// Package resource implements hierarchical memory accounting: a tree of
// accountants (process → session → statement) where every reservation
// charges the whole ancestor chain, so one statement cannot push the
// process past its budget no matter how the load is distributed across
// sessions. Reservations are advisory byte estimates made by the big
// allocators (hash-join build slabs, sort key tuples, distinct/agg
// tables, cursor blocks); they are cheap (one CAS per tree level) and
// exact in aggregate: after every statement and session closes, the
// process accountant reads zero.
//
// An over-budget reservation fails with ErrResourceExhausted, a typed,
// retryable error: the statement that lost the race frees everything it
// reserved, the server stays up, and the client may retry after
// backoff. Operators with a cheaper execution strategy degrade first
// (parallel → sequential, one-shot sort → chunked merge) and only fail
// when even the degraded form does not fit.
package resource

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrResourceExhausted is the sentinel matched by errors.Is on every
// failed reservation. Callers treat it as retryable: the condition is a
// function of concurrent load, not of the statement itself.
var ErrResourceExhausted = errors.New("resource exhausted")

// ExhaustedError reports which accountant in the chain rejected a
// reservation and the sizes involved. It unwraps to
// ErrResourceExhausted.
type ExhaustedError struct {
	Scope     string // name of the accountant that rejected
	Requested int64  // bytes asked for
	Used      int64  // bytes charged at rejection time
	Limit     int64  // the scope's budget
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("%s memory budget exhausted: requested %d bytes, %d of %d in use: %v",
		e.Scope, e.Requested, e.Used, e.Limit, ErrResourceExhausted)
}

// Unwrap makes errors.Is(err, ErrResourceExhausted) true.
func (e *ExhaustedError) Unwrap() error { return ErrResourceExhausted }

// Accountant tracks reserved bytes at one level of the hierarchy. A nil
// *Accountant is valid everywhere and accounts nothing, so execution
// paths thread one without caring whether budgeting is enabled. All
// methods are safe for concurrent use.
type Accountant struct {
	name   string
	parent *Accountant
	limit  atomic.Int64 // 0 = unlimited
	used   atomic.Int64
	closed atomic.Bool

	// denied counts reservations this accountant rejected (not ones an
	// ancestor rejected) — the overload signal surfaced as a metric.
	denied atomic.Int64
}

// NewRoot returns a top-level accountant. limit <= 0 means unlimited —
// accounting still happens so Used stays meaningful.
func NewRoot(name string, limit int64) *Accountant {
	a := &Accountant{name: name}
	a.SetLimit(limit)
	return a
}

// Child derives a sub-accountant whose reservations also charge a (and
// every ancestor of a). A nil receiver yields a usable root so callers
// never branch.
func (a *Accountant) Child(name string, limit int64) *Accountant {
	if limit < 0 {
		limit = 0
	}
	c := &Accountant{name: name, parent: a}
	c.SetLimit(limit)
	return c
}

// SetLimit changes the budget (0 or negative = unlimited). Already-held
// reservations are never revoked; the new limit governs from the next
// Reserve on.
func (a *Accountant) SetLimit(limit int64) {
	if a == nil {
		return
	}
	if limit < 0 {
		limit = 0
	}
	a.limit.Store(limit)
}

// Name reports the scope label ("process", "session", "statement").
func (a *Accountant) Name() string {
	if a == nil {
		return ""
	}
	return a.name
}

// Used reports the bytes currently reserved at this level.
func (a *Accountant) Used() int64 {
	if a == nil {
		return 0
	}
	return a.used.Load()
}

// Limit reports the budget (0 = unlimited).
func (a *Accountant) Limit() int64 {
	if a == nil {
		return 0
	}
	return a.limit.Load()
}

// Denied reports how many reservations this level rejected.
func (a *Accountant) Denied() int64 {
	if a == nil {
		return 0
	}
	return a.denied.Load()
}

// reserveOne charges n at this single level, failing if it would exceed
// the limit.
func (a *Accountant) reserveOne(n int64) error {
	limit := a.limit.Load()
	for {
		cur := a.used.Load()
		next := cur + n
		if limit > 0 && next > limit {
			a.denied.Add(1)
			return &ExhaustedError{Scope: a.name, Requested: n, Used: cur, Limit: limit}
		}
		if a.used.CompareAndSwap(cur, next) {
			return nil
		}
	}
}

// Reserve charges n bytes here and at every ancestor. On failure at any
// level nothing stays charged and the returned error wraps
// ErrResourceExhausted, naming the level that rejected. Reserve(n<=0)
// is a no-op.
func (a *Accountant) Reserve(n int64) error {
	if a == nil || n <= 0 {
		return nil
	}
	for lvl := a; lvl != nil; lvl = lvl.parent {
		if err := lvl.reserveOne(n); err != nil {
			for undo := a; undo != lvl; undo = undo.parent {
				undo.used.Add(-n)
			}
			return err
		}
	}
	return nil
}

// Release returns n bytes here and at every ancestor. Releasing more
// than was reserved clamps at this level's zero (the ancestor chain is
// still debited by the clamped amount, keeping levels consistent).
func (a *Accountant) Release(n int64) {
	if a == nil || n <= 0 {
		return
	}
	// Clamp against this level so a double release cannot drive the
	// chain negative.
	for {
		cur := a.used.Load()
		m := n
		if m > cur {
			m = cur
		}
		if m == 0 {
			return
		}
		if a.used.CompareAndSwap(cur, cur-m) {
			for lvl := a.parent; lvl != nil; lvl = lvl.parent {
				lvl.used.Add(-m)
			}
			return
		}
	}
}

// Close releases everything still reserved at this level back to the
// ancestor chain — the leak-proofing step run when a statement or
// session ends, guaranteeing Used()==0 at the root after drain. Close
// is idempotent; the accountant must not be used afterwards.
func (a *Accountant) Close() {
	if a == nil || !a.closed.CompareAndSwap(false, true) {
		return
	}
	rem := a.used.Swap(0)
	if rem > 0 {
		for lvl := a.parent; lvl != nil; lvl = lvl.parent {
			lvl.used.Add(-rem)
		}
	}
}
