package resource

import (
	"errors"
	"sync"
	"testing"
)

func TestReserveRelease(t *testing.T) {
	root := NewRoot("process", 1000)
	sess := root.Child("session", 500)
	stmt := sess.Child("statement", 0)

	if err := stmt.Reserve(400); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if got := root.Used(); got != 400 {
		t.Fatalf("root used = %d, want 400", got)
	}
	if got := sess.Used(); got != 400 {
		t.Fatalf("session used = %d, want 400", got)
	}

	// Session limit rejects before the process limit.
	err := stmt.Reserve(200)
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("want ErrResourceExhausted, got %v", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Scope != "session" {
		t.Fatalf("want session scope, got %+v", ex)
	}
	// Failed reservation left nothing charged.
	if root.Used() != 400 || sess.Used() != 400 || stmt.Used() != 400 {
		t.Fatalf("leaked after failed reserve: %d/%d/%d", root.Used(), sess.Used(), stmt.Used())
	}

	stmt.Release(400)
	if root.Used() != 0 || sess.Used() != 0 || stmt.Used() != 0 {
		t.Fatalf("nonzero after release: %d/%d/%d", root.Used(), sess.Used(), stmt.Used())
	}
}

func TestRootLimitRejects(t *testing.T) {
	root := NewRoot("process", 100)
	a := root.Child("session", 0)
	b := root.Child("session", 0)
	if err := a.Reserve(80); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	err := b.Reserve(40)
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("want exhausted, got %v", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Scope != "process" {
		t.Fatalf("want process scope, got %+v", ex)
	}
	if b.Used() != 0 || root.Used() != 80 {
		t.Fatalf("rollback failed: b=%d root=%d", b.Used(), root.Used())
	}
	if root.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", root.Denied())
	}
}

func TestCloseReleasesRemainder(t *testing.T) {
	root := NewRoot("process", 0)
	sess := root.Child("session", 0)
	stmt := sess.Child("statement", 0)
	stmt.Reserve(300)
	stmt.Release(100)
	stmt.Close()
	stmt.Close() // idempotent
	if root.Used() != 0 || sess.Used() != 0 {
		t.Fatalf("close leaked: root=%d sess=%d", root.Used(), sess.Used())
	}
}

func TestOverRelease(t *testing.T) {
	root := NewRoot("process", 0)
	a := root.Child("x", 0)
	a.Reserve(10)
	a.Release(50) // clamps to 10
	if a.Used() != 0 || root.Used() != 0 {
		t.Fatalf("over-release drove negative: a=%d root=%d", a.Used(), root.Used())
	}
}

func TestNilAccountant(t *testing.T) {
	var a *Accountant
	if err := a.Reserve(100); err != nil {
		t.Fatalf("nil reserve: %v", err)
	}
	a.Release(100)
	a.Close()
	if a.Used() != 0 || a.Limit() != 0 || a.Name() != "" {
		t.Fatal("nil accessors")
	}
	c := a.Child("s", 10)
	if c == nil || c.Reserve(5) != nil {
		t.Fatal("nil child unusable")
	}
}

func TestConcurrentExact(t *testing.T) {
	root := NewRoot("process", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := root.Child("session", 0)
			for i := 0; i < 1000; i++ {
				st := s.Child("statement", 0)
				st.Reserve(64)
				st.Reserve(32)
				st.Release(16)
				st.Close()
			}
			s.Close()
		}()
	}
	wg.Wait()
	if root.Used() != 0 {
		t.Fatalf("root used = %d after drain, want 0", root.Used())
	}
}

func TestConcurrentLimitNeverExceeded(t *testing.T) {
	root := NewRoot("process", 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := root.Child("session", 0)
			defer s.Close()
			for i := 0; i < 500; i++ {
				if err := s.Reserve(4096); err == nil {
					if u := root.Used(); u > 1<<20 {
						t.Errorf("limit exceeded: %d", u)
					}
					s.Release(4096)
				}
			}
		}()
	}
	wg.Wait()
}
