// Package rewrite is the NF query-rewrite stage (Sect. 3.2 and [39] of the
// paper): a small rule engine applying QGM-to-QGM transformations until a
// fixed point. The two load-bearing rules are exactly the ones the paper
// walks through in Fig. 3:
//
//   - E→F quantifier conversion (ExistsToJoin): an existential subquery
//     whose linking predicates hit a unique key of the subquery — or whose
//     consumer eliminates duplicates anyway — becomes a join;
//   - SELECT merge: a Select box consumed by exactly one other Select box
//     is inlined into its consumer.
//
// Both the XNF semantic rewrite (internal/core) and the plain SQL path
// share this component, which is the reuse story of Sect. 4.3.
package rewrite

import (
	"fmt"

	"xnf/internal/qgm"
)

// Rule is one rewrite transformation. Apply returns whether it changed the
// graph (the engine loops until no rule fires).
type Rule struct {
	Name  string
	Apply func(g *qgm.Graph) bool
}

// Stats records rule firings for EXPLAIN and the experiment harness.
type Stats struct {
	Fired map[string]int
	Iters int
}

// Options selects which rules run.
type Options struct {
	ExistsToJoin bool
	SelectMerge  bool
}

// DefaultOptions enables all rules.
func DefaultOptions() Options { return Options{ExistsToJoin: true, SelectMerge: true} }

// NoRewrite disables everything (the naive baseline of Fig. 3a).
func NoRewrite() Options { return Options{} }

// Apply runs the enabled rules to a fixed point and garbage-collects
// unreferenced boxes.
func Apply(g *qgm.Graph, opts Options) Stats {
	stats := Stats{Fired: make(map[string]int)}
	var rules []Rule
	if opts.ExistsToJoin {
		rules = append(rules, Rule{Name: "E2F", Apply: existsToJoin})
	}
	if opts.SelectMerge {
		rules = append(rules, Rule{Name: "SelectMerge", Apply: selectMerge})
	}
	for iter := 0; iter < 100; iter++ {
		stats.Iters = iter + 1
		changed := false
		for _, r := range rules {
			if r.Apply(g) {
				stats.Fired[r.Name]++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	g.GC()
	return stats
}

// --- E→F quantifier conversion ---

// existsToJoin finds one applicable existential predicate and converts it
// to a join, returning true if it fired.
func existsToJoin(g *qgm.Graph) bool {
	consumers := g.Consumers()
	for _, box := range g.Reachable() {
		if box.Kind != qgm.Select {
			continue
		}
		for i, p := range box.Preds {
			sr, ok := p.(*qgm.SubqueryRef)
			if !ok || sr.Quant.Type != qgm.Exist {
				continue
			}
			if applyE2F(g, box, i, sr, consumers) {
				return true
			}
		}
	}
	return false
}

func applyE2F(g *qgm.Graph, box *qgm.Box, predIdx int, sr *qgm.SubqueryRef, consumers map[int]int) bool {
	sub := sr.Quant.Input
	if sub.Kind != qgm.Select {
		return false
	}
	// Split the subquery's own predicates into correlated equalities
	// (outer = local) and the rest.
	local := make(map[*qgm.Quantifier]bool)
	for _, q := range sub.Quants {
		local[q] = true
	}
	type corr struct {
		outerSide qgm.Expr
		localSide qgm.Expr
	}
	var corrs []corr
	var keepInside []qgm.Expr
	internallyCorrelated := false
	for _, sp := range sub.Preds {
		if eq, ok := sp.(*qgm.BinOp); ok && eq.Op == "=" {
			switch {
			case sideIs(eq.L, local, false) && sideIs(eq.R, local, true):
				corrs = append(corrs, corr{outerSide: eq.L, localSide: eq.R})
				continue
			case sideIs(eq.R, local, false) && sideIs(eq.L, local, true):
				corrs = append(corrs, corr{outerSide: eq.R, localSide: eq.L})
				continue
			}
		}
		keepInside = append(keepInside, sp)
		for q := range qgm.QuantsIn(sp) {
			if !local[q] {
				internallyCorrelated = true
			}
		}
	}
	if internallyCorrelated {
		return false // residual correlation cannot be pulled up
	}
	// Mutating the subquery box (head extension, predicate removal) is
	// only sound when we are its sole consumer.
	mutates := len(corrs) > 0
	if mutates && consumers[sub.ID] > 1 {
		return false
	}

	// Link predicates carried on the SubqueryRef (IN-style): outer = sub
	// head column.
	type headLink struct {
		outerSide qgm.Expr
		ord       int
	}
	var links []headLink
	for _, lp := range sr.Preds {
		if eq, ok := lp.(*qgm.BinOp); ok && eq.Op == "=" {
			if cr, ok := eq.R.(*qgm.ColRef); ok && cr.Q == sr.Quant && avoidsQuant(eq.L, sr.Quant) {
				links = append(links, headLink{outerSide: eq.L, ord: cr.Ord})
				continue
			}
			if cr, ok := eq.L.(*qgm.ColRef); ok && cr.Q == sr.Quant && avoidsQuant(eq.R, sr.Quant) {
				links = append(links, headLink{outerSide: eq.R, ord: cr.Ord})
				continue
			}
		}
		return false // non-equality link: leave as a semijoin
	}

	// Collect the head ordinals the join keys will use; extend the head
	// for correlation local sides when needed.
	keyOrds := make([]int, 0, len(corrs)+len(links))
	for _, l := range links {
		keyOrds = append(keyOrds, l.ord)
	}
	pendingHead := make([]qgm.HeadColumn, 0, len(corrs))
	corrOrds := make([]int, len(corrs))
	for i, c := range corrs {
		ord := -1
		for hi, h := range sub.Head {
			if qgm.EqualExpr(h.Expr, c.localSide) {
				ord = hi
				break
			}
		}
		if ord < 0 {
			ord = len(sub.Head) + len(pendingHead)
			pendingHead = append(pendingHead, qgm.HeadColumn{
				Name: fmt.Sprintf("jk%d", i+1),
				Type: qgm.ExprType(c.localSide),
				Expr: c.localSide,
			})
		}
		corrOrds[i] = ord
		keyOrds = append(keyOrds, ord)
	}

	// Safety: the conversion must not change multiplicities, so either the
	// join keys cover a unique key of the subquery or the consumer is a
	// set (DISTINCT) anyway.
	if !uniqueOnHead(sub, pendingHead, keyOrds) && !box.Distinct {
		return false
	}

	// Fire: extend head, strip correlations from the subquery, attach an F
	// quantifier, replace the predicate with the join equalities.
	sub.Head = append(sub.Head, pendingHead...)
	sub.Preds = keepInside
	jq := g.NewQuant(box, qgm.ForEach, "j_"+sub.Name, sub)
	var newPreds []qgm.Expr
	for _, l := range links {
		newPreds = append(newPreds, &qgm.BinOp{Op: "=", L: l.outerSide, R: &qgm.ColRef{Q: jq, Ord: l.ord}})
	}
	for i, c := range corrs {
		newPreds = append(newPreds, &qgm.BinOp{Op: "=", L: c.outerSide, R: &qgm.ColRef{Q: jq, Ord: corrOrds[i]}})
	}
	box.Preds = append(box.Preds[:predIdx], box.Preds[predIdx+1:]...)
	box.Preds = append(box.Preds, newPreds...)
	return true
}

// sideIs reports whether e references at least one quantifier and all its
// quantifier references are local (wantLocal) or all non-local.
func sideIs(e qgm.Expr, local map[*qgm.Quantifier]bool, wantLocal bool) bool {
	any := false
	ok := true
	qgm.WalkExpr(e, func(x qgm.Expr) {
		if cr, isCR := x.(*qgm.ColRef); isCR {
			any = true
			if local[cr.Q] != wantLocal {
				ok = false
			}
		}
		if _, isSub := x.(*qgm.SubqueryRef); isSub {
			ok = false
		}
	})
	return any && ok
}

func avoidsQuant(e qgm.Expr, q *qgm.Quantifier) bool {
	ok := true
	qgm.WalkExpr(e, func(x qgm.Expr) {
		if cr, isCR := x.(*qgm.ColRef); isCR && cr.Q == q {
			ok = false
		}
	})
	return ok
}

// uniqueOnHead reports whether the given head ordinals (over sub.Head ++
// pending) cover a primary key traced through the box to a base table, or
// the box is DISTINCT with every head column among the keys.
func uniqueOnHead(sub *qgm.Box, pending []qgm.HeadColumn, ords []int) bool {
	full := append(append([]qgm.HeadColumn{}, sub.Head...), pending...)
	if sub.Distinct && len(ords) >= len(full) {
		return true
	}
	if len(sub.Quants) != 1 || sub.Quants[0].Type != qgm.ForEach {
		return false
	}
	inner := sub.Quants[0].Input
	pk := tracePK(inner)
	if pk == nil {
		return false
	}
	covered := make(map[int]bool)
	for _, o := range ords {
		if o >= len(full) {
			return false
		}
		if cr, ok := full[o].Expr.(*qgm.ColRef); ok && cr.Q == sub.Quants[0] {
			covered[cr.Ord] = true
		}
	}
	for _, need := range pk {
		if !covered[need] {
			return false
		}
	}
	return true
}

// tracePK returns the head ordinals forming a unique key of the box, when
// provable: base-table primary keys traced through single-input Selects.
func tracePK(box *qgm.Box) []int {
	switch box.Kind {
	case qgm.BaseTable:
		if len(box.PKOrds) == 0 {
			return nil
		}
		return box.PKOrds
	case qgm.Select:
		if len(box.Quants) != 1 || box.Quants[0].Type != qgm.ForEach {
			return nil
		}
		inner := tracePK(box.Quants[0].Input)
		if inner == nil {
			return nil
		}
		var out []int
		for _, need := range inner {
			found := -1
			for i, h := range box.Head {
				if cr, ok := h.Expr.(*qgm.ColRef); ok && cr.Q == box.Quants[0] && cr.Ord == need {
					found = i
					break
				}
			}
			if found < 0 {
				return nil
			}
			out = append(out, found)
		}
		return out
	default:
		return nil
	}
}

// --- SELECT merge ---

// selectMerge inlines one single-consumer Select box into its consuming
// Select box (the box-merge clean-up of Sect. 4.4), returning true if it
// fired.
func selectMerge(g *qgm.Graph) bool {
	consumers := g.Consumers()
	for _, box := range g.Reachable() {
		if box.Kind != qgm.Select {
			continue
		}
		for _, q := range box.Quants {
			sub := q.Input
			if q.Type != qgm.ForEach || sub.Kind != qgm.Select || sub.Distinct {
				continue
			}
			if consumers[sub.ID] != 1 {
				continue
			}
			// Preserve single-box shape assumptions: do not merge a box
			// that would bring correlated subquery structure ambiguity —
			// all shapes here are safe because predicates and head
			// expressions move verbatim with their quantifiers.
			mergeInto(box, q)
			return true
		}
	}
	return false
}

// mergeInto inlines quantifier q's input box into box.
func mergeInto(box *qgm.Box, q *qgm.Quantifier) {
	sub := q.Input
	// Replace references to q in the consumer with the sub's head
	// expressions.
	inline := func(e qgm.Expr) qgm.Expr { return qgm.InlineExpr(e, q) }
	for i, p := range box.Preds {
		box.Preds[i] = inline(p)
	}
	for i := range box.Head {
		if box.Head[i].Expr != nil {
			box.Head[i].Expr = inline(box.Head[i].Expr)
		}
	}
	for i := range box.GroupExprs {
		box.GroupExprs[i] = inline(box.GroupExprs[i])
	}
	// Adopt the sub's quantifiers and predicates.
	box.RemoveQuant(q)
	box.Quants = append(box.Quants, sub.Quants...)
	box.Preds = append(box.Preds, sub.Preds...)
}
