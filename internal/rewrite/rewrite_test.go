package rewrite

import (
	"strings"
	"testing"

	"xnf/internal/ast"
	"xnf/internal/catalog"
	"xnf/internal/parser"
	"xnf/internal/qgm"
	"xnf/internal/semantics"
	"xnf/internal/types"
)

func cat(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.CreateTable(&catalog.Table{
		Name: "DEPT",
		Columns: []catalog.Column{
			{Name: "dno", Type: types.IntType}, {Name: "loc", Type: types.StringType},
		},
		PrimaryKey: []string{"dno"},
	}))
	must(c.CreateTable(&catalog.Table{
		Name: "EMP",
		Columns: []catalog.Column{
			{Name: "eno", Type: types.IntType}, {Name: "edno", Type: types.IntType},
		},
		PrimaryKey: []string{"eno"},
	}))
	must(c.CreateTable(&catalog.Table{
		Name: "LOG", // no primary key: uniqueness unprovable
		Columns: []catalog.Column{
			{Name: "what", Type: types.IntType},
		},
	}))
	return c
}

func build(t *testing.T, c *catalog.Catalog, sql string) *qgm.Graph {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := semantics.BuildSelect(c, stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// countSubqueryRefs counts SubqueryRef predicates in the reachable graph.
func countSubqueryRefs(g *qgm.Graph) int {
	n := 0
	for _, b := range g.Reachable() {
		for _, p := range b.Preds {
			qgm.WalkExpr(p, func(x qgm.Expr) {
				if _, ok := x.(*qgm.SubqueryRef); ok {
					n++
				}
			})
		}
	}
	return n
}

// The paper's Fig. 3 sequence: existential subquery → join (3b), then
// SELECT merge (3c) — the final graph is a single two-quantifier join box.
func TestFig3Sequence(t *testing.T) {
	c := cat(t)
	g := build(t, c, `SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)`)
	stats := Apply(g, DefaultOptions())
	if stats.Fired["E2F"] != 1 {
		t.Errorf("E2F fired %d times", stats.Fired["E2F"])
	}
	if stats.Fired["SelectMerge"] < 1 {
		t.Errorf("SelectMerge fired %d times", stats.Fired["SelectMerge"])
	}
	if countSubqueryRefs(g) != 0 {
		t.Error("existential subquery not converted")
	}
	// Find the main select box: must have two F quantifiers (EMP ⋈ DEPT).
	var mainBox *qgm.Box
	for _, b := range g.Reachable() {
		if b.Kind == qgm.Select && len(b.Quants) == 2 {
			mainBox = b
		}
	}
	if mainBox == nil {
		t.Fatalf("no two-quantifier join box after rewrite:\n%s", g.Dump())
	}
	if errs := g.Validate(); len(errs) > 0 {
		t.Fatalf("invalid graph after rewrite: %v", errs)
	}
}

// Without a provable unique key on the subquery side the conversion would
// change multiplicities and must not fire.
func TestE2FRequiresUniqueness(t *testing.T) {
	c := cat(t)
	g := build(t, c, `SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM LOG l WHERE l.what = e.eno)`)
	stats := Apply(g, DefaultOptions())
	if stats.Fired["E2F"] != 0 {
		t.Error("E2F fired despite non-unique subquery")
	}
	if countSubqueryRefs(g) != 1 {
		t.Error("subquery should remain")
	}
}

// NOT EXISTS must never convert (anti-join is not a join).
func TestAntiExistsNotConverted(t *testing.T) {
	c := cat(t)
	g := build(t, c, `SELECT * FROM EMP e WHERE NOT EXISTS (SELECT 1 FROM DEPT d WHERE d.dno = e.edno)`)
	stats := Apply(g, DefaultOptions())
	if stats.Fired["E2F"] != 0 {
		t.Error("E2F fired on NOT EXISTS")
	}
}

// An EXISTS inside OR is not a conjunct and must not convert.
func TestDisjunctiveExistsNotConverted(t *testing.T) {
	c := cat(t)
	g := build(t, c, `SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.dno = e.edno) OR e.eno = 1`)
	stats := Apply(g, DefaultOptions())
	if stats.Fired["E2F"] != 0 {
		t.Error("E2F fired on disjunctive EXISTS")
	}
}

// IN subqueries carry their link predicate on the SubqueryRef; conversion
// must produce the same join.
func TestInSubqueryConverted(t *testing.T) {
	c := cat(t)
	g := build(t, c, `SELECT * FROM EMP WHERE edno IN (SELECT dno FROM DEPT WHERE loc = 'ARC')`)
	stats := Apply(g, DefaultOptions())
	if stats.Fired["E2F"] != 1 {
		t.Errorf("E2F fired %d times for IN", stats.Fired["E2F"])
	}
	if countSubqueryRefs(g) != 0 {
		t.Error("IN subquery not converted")
	}
}

// DISTINCT consumers allow conversion even without provable uniqueness.
func TestDistinctEnablesE2F(t *testing.T) {
	c := cat(t)
	g := build(t, c, `SELECT DISTINCT eno FROM EMP e WHERE EXISTS (SELECT 1 FROM LOG l WHERE l.what = e.eno)`)
	stats := Apply(g, DefaultOptions())
	if stats.Fired["E2F"] != 1 {
		t.Errorf("E2F under DISTINCT fired %d times", stats.Fired["E2F"])
	}
}

// Merge must not fire for shared or DISTINCT subboxes.
func TestMergeGuards(t *testing.T) {
	c := cat(t)
	g := build(t, c, `SELECT * FROM (SELECT DISTINCT dno FROM DEPT) d, EMP e WHERE d.dno = e.edno`)
	before := len(g.Reachable())
	Apply(g, DefaultOptions())
	after := len(g.Reachable())
	// The DISTINCT derived table must survive.
	found := false
	for _, b := range g.Reachable() {
		if b.Kind == qgm.Select && b.Distinct {
			found = true
		}
	}
	if !found {
		t.Errorf("DISTINCT box merged away (boxes %d→%d):\n%s", before, after, g.Dump())
	}
}

func TestNoRewriteOptions(t *testing.T) {
	c := cat(t)
	g := build(t, c, `SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.dno = e.edno)`)
	stats := Apply(g, NoRewrite())
	if len(stats.Fired) != 0 {
		t.Errorf("rules fired with rewriting disabled: %v", stats.Fired)
	}
	if countSubqueryRefs(g) != 1 {
		t.Error("graph changed without rules")
	}
}

// Rewrite always terminates and leaves a valid graph on a corpus.
func TestRewriteTerminatesAndValidates(t *testing.T) {
	corpus := []string{
		"SELECT * FROM EMP",
		"SELECT e.eno FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'x'",
		"SELECT * FROM EMP WHERE edno IN (SELECT dno FROM DEPT) AND eno > 1",
		"SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.dno = e.edno AND EXISTS (SELECT 1 FROM LOG l WHERE l.what = d.dno))",
		"SELECT (SELECT MAX(dno) FROM DEPT) FROM EMP",
		"SELECT eno FROM EMP UNION SELECT dno FROM DEPT",
		"SELECT edno, COUNT(*) FROM EMP GROUP BY edno HAVING COUNT(*) > 1",
	}
	c := cat(t)
	for _, sql := range corpus {
		g := build(t, c, sql)
		stats := Apply(g, DefaultOptions())
		if stats.Iters >= 100 {
			t.Errorf("rewrite did not converge for %q", sql)
		}
		if errs := g.Validate(); len(errs) > 0 {
			t.Errorf("invalid graph for %q: %s", sql, strings.Join(errs, "; "))
		}
	}
}
