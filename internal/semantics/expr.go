package semantics

import (
	"fmt"
	"strings"

	"xnf/internal/ast"
	"xnf/internal/qgm"
	"xnf/internal/types"
)

// buildExpr resolves an AST expression to a QGM expression in the given
// scope, desugaring BETWEEN, IN-lists, IS NULL and NOT EXISTS along the way
// (three-valued-logic preserving rewrites only).
func (b *Builder) buildExpr(e ast.Expr, sc *scope) (qgm.Expr, error) {
	switch n := e.(type) {
	case *ast.Literal:
		return &qgm.Const{V: n.Value}, nil

	case *ast.Placeholder:
		// The placeholder's type is unknown until binding; it compares
		// freely like a NULL literal (checkBinOpTypes).
		return &qgm.Placeholder{Idx: n.Idx}, nil

	case *ast.ColumnRef:
		if n.Qualifier != "" {
			q := sc.lookupQualifier(n.Qualifier)
			if q == nil {
				return nil, fmt.Errorf("semantics: unknown table %s in %s.%s", n.Qualifier, n.Qualifier, n.Name)
			}
			ord, ok := q.Input.HeadIndex(n.Name)
			if !ok {
				return nil, fmt.Errorf("semantics: table %s has no column %s", n.Qualifier, n.Name)
			}
			return &qgm.ColRef{Q: q, Ord: ord}, nil
		}
		q, ord, err := sc.lookupColumn(n.Name)
		if err != nil {
			return nil, err
		}
		return &qgm.ColRef{Q: q, Ord: ord}, nil

	case *ast.BinaryExpr:
		l, err := b.buildExpr(n.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.buildExpr(n.R, sc)
		if err != nil {
			return nil, err
		}
		op := n.Op
		if op == "!=" {
			op = "<>"
		}
		if err := checkBinOpTypes(op, l, r); err != nil {
			return nil, err
		}
		return &qgm.BinOp{Op: op, L: l, R: r}, nil

	case *ast.UnaryExpr:
		x, err := b.buildExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		if n.Op == "NOT" {
			// NOT EXISTS(sub) normalizes to an anti-existential quantifier.
			if sq, ok := x.(*qgm.SubqueryRef); ok && sq.Quant.Type == qgm.Exist {
				sq.Quant.Type = qgm.AntiExist
				return sq, nil
			}
			return &qgm.UnOp{Op: "NOT", X: x}, nil
		}
		return &qgm.UnOp{Op: "-", X: x}, nil

	case *ast.IsNullExpr:
		x, err := b.buildExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		op := "ISNULL"
		if n.Not {
			op = "ISNOTNULL"
		}
		return &qgm.UnOp{Op: op, X: x}, nil

	case *ast.BetweenExpr:
		x, err := b.buildExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		lo, err := b.buildExpr(n.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := b.buildExpr(n.Hi, sc)
		if err != nil {
			return nil, err
		}
		rng := &qgm.BinOp{Op: "AND",
			L: &qgm.BinOp{Op: ">=", L: x, R: lo},
			R: &qgm.BinOp{Op: "<=", L: x, R: hi}}
		if n.Not {
			return &qgm.UnOp{Op: "NOT", X: rng}, nil
		}
		return rng, nil

	case *ast.LikeExpr:
		x, err := b.buildExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		pat, err := b.buildExpr(n.Pattern, sc)
		if err != nil {
			return nil, err
		}
		if err := checkBinOpTypes("LIKE", x, pat); err != nil {
			return nil, err
		}
		like := qgm.Expr(&qgm.BinOp{Op: "LIKE", L: x, R: pat})
		if n.Not {
			like = &qgm.UnOp{Op: "NOT", X: like}
		}
		return like, nil

	case *ast.InExpr:
		x, err := b.buildExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		if n.Sub == nil {
			// IN list desugars to an OR chain (exact under 3VL).
			var or qgm.Expr
			for _, item := range n.List {
				ie, err := b.buildExpr(item, sc)
				if err != nil {
					return nil, err
				}
				eq := &qgm.BinOp{Op: "=", L: x, R: ie}
				if or == nil {
					or = eq
				} else {
					or = &qgm.BinOp{Op: "OR", L: or, R: eq}
				}
			}
			if or == nil {
				return &qgm.Const{V: types.NewBool(false)}, nil
			}
			if n.Not {
				return &qgm.UnOp{Op: "NOT", X: or}, nil
			}
			return or, nil
		}
		sub, err := b.buildSelect(n.Sub, sc, true)
		if err != nil {
			return nil, err
		}
		if len(sub.Head) != 1 {
			return nil, fmt.Errorf("semantics: IN subquery must return one column, has %d", len(sub.Head))
		}
		typ := qgm.Exist
		if n.Not {
			typ = qgm.AntiExist
		}
		q := b.g.NewDetachedQuant(typ, "in", sub)
		q.NullAware = n.Not
		return &qgm.SubqueryRef{
			Quant: q,
			Preds: []qgm.Expr{&qgm.BinOp{Op: "=", L: x, R: &qgm.ColRef{Q: q, Ord: 0}}},
		}, nil

	case *ast.SubqueryExpr:
		sub, err := b.buildSelect(n.Select, sc, true)
		if err != nil {
			return nil, err
		}
		if n.Exists {
			typ := qgm.Exist
			if n.Not {
				typ = qgm.AntiExist
			}
			return &qgm.SubqueryRef{Quant: b.g.NewDetachedQuant(typ, "ex", sub)}, nil
		}
		if len(sub.Head) != 1 {
			return nil, fmt.Errorf("semantics: scalar subquery must return one column, has %d", len(sub.Head))
		}
		return &qgm.SubqueryRef{Quant: b.g.NewDetachedQuant(qgm.Scalar, "sq", sub)}, nil

	case *ast.FuncCall:
		name := strings.ToUpper(n.Name)
		if isAggName(name) {
			var args []qgm.Expr
			if !n.Star {
				for _, a := range n.Args {
					ae, err := b.buildExpr(a, sc)
					if err != nil {
						return nil, err
					}
					if qgm.IsAggregate(ae) {
						return nil, fmt.Errorf("semantics: aggregates cannot be nested")
					}
					args = append(args, ae)
				}
			}
			return &qgm.Func{Name: name, Distinct: n.Distinct, Star: n.Star, Args: args}, nil
		}
		switch name {
		case "UPPER", "LOWER", "LENGTH", "ABS":
			if len(n.Args) != 1 {
				return nil, fmt.Errorf("semantics: %s takes exactly one argument", name)
			}
			a, err := b.buildExpr(n.Args[0], sc)
			if err != nil {
				return nil, err
			}
			return &qgm.Func{Name: name, Args: []qgm.Expr{a}}, nil
		default:
			return nil, fmt.Errorf("semantics: unknown function %s", n.Name)
		}

	case *ast.CaseExpr:
		c := &qgm.Case{}
		for _, w := range n.Whens {
			cond, err := b.buildExpr(w.Cond, sc)
			if err != nil {
				return nil, err
			}
			res, err := b.buildExpr(w.Result, sc)
			if err != nil {
				return nil, err
			}
			c.Whens = append(c.Whens, qgm.CaseWhen{Cond: cond, Result: res})
		}
		if n.Else != nil {
			el, err := b.buildExpr(n.Else, sc)
			if err != nil {
				return nil, err
			}
			c.Else = el
		}
		return c, nil

	case *ast.PathExpr:
		return nil, fmt.Errorf("semantics: path expression %s is only valid against a CO cache", n.String())

	default:
		return nil, fmt.Errorf("semantics: unsupported expression %T", e)
	}
}

// checkBinOpTypes performs shallow type checking of comparisons and
// arithmetic where both operand types are known.
func checkBinOpTypes(op string, l, r qgm.Expr) error {
	lt, rt := qgm.ExprType(l), qgm.ExprType(r)
	if lt == types.NullType || rt == types.NullType {
		return nil // NULL literals and unresolved subqueries compare freely
	}
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		num := func(t types.Type) bool { return t == types.IntType || t == types.FloatType }
		if lt == rt || (num(lt) && num(rt)) {
			return nil
		}
		return fmt.Errorf("semantics: cannot compare %s with %s", lt, rt)
	case "+", "-", "*", "/", "%":
		num := func(t types.Type) bool { return t == types.IntType || t == types.FloatType }
		if num(lt) && num(rt) {
			return nil
		}
		if op == "+" && lt == types.StringType && rt == types.StringType {
			return nil
		}
		return fmt.Errorf("semantics: arithmetic %s requires numeric operands, got %s and %s", op, lt, rt)
	case "||":
		if lt == types.StringType && rt == types.StringType {
			return nil
		}
		return fmt.Errorf("semantics: || requires string operands")
	case "LIKE":
		if lt == types.StringType && rt == types.StringType {
			return nil
		}
		return fmt.Errorf("semantics: LIKE requires string operands")
	case "AND", "OR":
		if lt == types.BoolType && rt == types.BoolType {
			return nil
		}
		return fmt.Errorf("semantics: %s requires boolean operands", op)
	}
	return nil
}
