package semantics

import (
	"fmt"

	"xnf/internal/ast"
	"xnf/internal/catalog"
	"xnf/internal/qgm"
)

// RowContext resolves expressions against the row of a single base table —
// the name scope of UPDATE/DELETE statements. Subqueries in the expression
// may correlate with the table's row.
type RowContext struct {
	b     *Builder
	quant *qgm.Quantifier
	sc    *scope
}

// NewRowContext prepares resolution against table (exposed as alias when
// non-empty).
func NewRowContext(cat *catalog.Catalog, table, alias string) (*RowContext, error) {
	b := NewBuilder(cat)
	t, ok := cat.Table(table)
	if !ok {
		return nil, fmt.Errorf("semantics: unknown table %s", table)
	}
	base := b.baseTableBox(t)
	holder := b.g.NewBox(qgm.Select, "rowctx")
	name := alias
	if name == "" {
		name = table
	}
	q := b.g.NewQuant(holder, qgm.ForEach, name, base)
	sc := newScope(nil)
	if err := sc.add(name, q); err != nil {
		return nil, err
	}
	return &RowContext{b: b, quant: q, sc: sc}, nil
}

// NewRowContextEmpty prepares resolution with no table in scope (INSERT
// VALUES expressions, which may still contain subqueries).
func NewRowContextEmpty(cat *catalog.Catalog) (*RowContext, error) {
	b := NewBuilder(cat)
	holder := b.g.NewBox(qgm.Select, "rowctx")
	q := b.g.NewQuant(holder, qgm.ForEach, "empty", holder) // placeholder, never referenced
	return &RowContext{b: b, quant: q, sc: newScope(nil)}, nil
}

// Quant returns the quantifier bound to the table row.
func (rc *RowContext) Quant() *qgm.Quantifier { return rc.quant }

// Graph returns the underlying graph (needed to construct a compiler).
func (rc *RowContext) Graph() *qgm.Graph { return rc.b.Graph() }

// Build resolves one expression in the row scope.
func (rc *RowContext) Build(e ast.Expr) (qgm.Expr, error) {
	out, err := rc.b.buildExpr(e, rc.sc)
	if err != nil {
		return nil, err
	}
	if containsAggregate(out) {
		return nil, fmt.Errorf("semantics: aggregates are not allowed here")
	}
	return out, nil
}
