// Package semantics performs name resolution and type checking and builds
// the QGM representation of a query (the parse/semantic-checking stage of
// Fig. 2). Plain SELECTs become NF QGM; XNF queries become an XNF QGM graph
// whose XNF operator box carries the composite object's components exactly
// as in Fig. 4 of the paper. The XNF operator is compiled away later by
// internal/core (XNF semantic rewrite).
package semantics

import (
	"fmt"
	"strings"

	"xnf/internal/ast"
	"xnf/internal/catalog"
	"xnf/internal/parser"
	"xnf/internal/qgm"
	"xnf/internal/types"
)

// maxViewDepth bounds view expansion to catch cyclic view definitions.
const maxViewDepth = 32

// Builder compiles AST statements to QGM graphs against a catalog.
type Builder struct {
	cat       *catalog.Catalog
	g         *qgm.Graph
	baseBoxes map[string]*qgm.Box
	viewDepth int
}

// NewBuilder returns a Builder for one compilation.
func NewBuilder(cat *catalog.Catalog) *Builder {
	return &Builder{cat: cat, g: qgm.NewGraph(), baseBoxes: make(map[string]*qgm.Box)}
}

// Graph exposes the graph under construction.
func (b *Builder) Graph() *qgm.Graph { return b.g }

// BuildSelect compiles a SELECT statement into a complete NF QGM graph with
// a Top box.
func BuildSelect(cat *catalog.Catalog, sel *ast.SelectStmt) (*qgm.Graph, error) {
	b := NewBuilder(cat)
	sel, hidden := addHiddenSortColumns(sel)
	body, err := b.buildSelect(sel, nil, false)
	if err != nil {
		return nil, err
	}
	top := b.g.NewBox(qgm.Top, "")
	q := b.g.NewQuant(top, qgm.ForEach, "result", body)
	top.Outputs = []qgm.TopOutput{{Name: "result", CompID: 0, Quant: q}}
	top.HiddenCols = hidden
	if err := b.attachOrderLimit(top, body, q, sel); err != nil {
		return nil, err
	}
	b.g.TopBox = top
	b.g.GC()
	return b.g, nil
}

// addHiddenSortColumns rewrites a top-level SELECT so that every ORDER BY
// expression that is neither an output-column name nor an ordinal becomes a
// trailing hidden select item; the Top box strips them after sorting. The
// input statement is not mutated.
func addHiddenSortColumns(sel *ast.SelectStmt) (*ast.SelectStmt, int) {
	if len(sel.OrderBy) == 0 || sel.Union != nil || len(sel.GroupBy) > 0 || sel.Having != nil || sel.Distinct {
		// With DISTINCT/GROUP BY/UNION, ORDER BY must target output
		// columns anyway (hidden columns would change semantics).
		return sel, 0
	}
	aggregated := false
	for _, item := range sel.Items {
		if !item.Star && containsAggregate(item.Expr) {
			aggregated = true
		}
	}
	if aggregated {
		return sel, 0
	}
	outputName := func(name string) bool {
		for _, item := range sel.Items {
			if item.Star {
				continue
			}
			if strings.EqualFold(item.Alias, name) {
				return true
			}
			if cr, ok := item.Expr.(*ast.ColumnRef); ok && item.Alias == "" && strings.EqualFold(cr.Name, name) {
				return true
			}
		}
		return false
	}
	hasStar := false
	for _, item := range sel.Items {
		if item.Star {
			hasStar = true
		}
	}
	copied := *sel
	copied.Items = append([]ast.SelectItem{}, sel.Items...)
	copied.OrderBy = append([]ast.OrderItem{}, sel.OrderBy...)
	hidden := 0
	for i, o := range copied.OrderBy {
		if lit, ok := o.Expr.(*ast.Literal); ok && lit.Value.T == types.IntType {
			continue // ordinal
		}
		if cr, ok := o.Expr.(*ast.ColumnRef); ok && cr.Qualifier == "" {
			if outputName(cr.Name) {
				continue
			}
			if hasStar {
				// A bare star exposes every column, so the name resolves
				// against the head directly.
				continue
			}
		}
		alias := fmt.Sprintf("__sort%d", hidden+1)
		copied.Items = append(copied.Items, ast.SelectItem{Expr: o.Expr, Alias: alias})
		copied.OrderBy[i] = ast.OrderItem{Expr: &ast.ColumnRef{Name: alias}, Desc: o.Desc}
		hidden++
	}
	if hidden == 0 {
		return sel, 0
	}
	return &copied, hidden
}

// attachOrderLimit resolves top-level ORDER BY / LIMIT onto the Top box.
// ORDER BY expressions may name output columns (by alias) or be arbitrary
// expressions over the output row.
func (b *Builder) attachOrderLimit(top, body *qgm.Box, q *qgm.Quantifier, sel *ast.SelectStmt) error {
	for _, o := range sel.OrderBy {
		// An ORDER BY item that is a bare output-column name resolves
		// against the head; otherwise it must still resolve to a head
		// column by structural match after building in an output scope.
		var resolved qgm.Expr
		if cr, ok := o.Expr.(*ast.ColumnRef); ok && cr.Qualifier == "" {
			if ord, ok := body.HeadIndex(cr.Name); ok {
				resolved = &qgm.ColRef{Q: q, Ord: ord}
			}
		}
		if resolved == nil {
			// Allow ORDER BY <ordinal>.
			if lit, ok := o.Expr.(*ast.Literal); ok && lit.Value.T == types.IntType {
				ord := int(lit.Value.I) - 1
				if ord < 0 || ord >= len(body.Head) {
					return fmt.Errorf("semantics: ORDER BY position %d out of range", lit.Value.I)
				}
				resolved = &qgm.ColRef{Q: q, Ord: ord}
			}
		}
		if resolved == nil {
			return fmt.Errorf("semantics: ORDER BY expression %s must name an output column", o.Expr.String())
		}
		top.OrderBy = append(top.OrderBy, qgm.OrderSpec{Expr: resolved, Desc: o.Desc})
	}
	top.Limit = sel.Limit
	return nil
}

// scope is the name-resolution environment: quantifiers visible at the
// current query block, chained to enclosing blocks for correlation.
type scope struct {
	parent *scope
	quants []*qgm.Quantifier
	names  map[string]*qgm.Quantifier
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: make(map[string]*qgm.Quantifier)}
}

func (s *scope) add(name string, q *qgm.Quantifier) error {
	k := strings.ToUpper(name)
	if _, dup := s.names[k]; dup {
		return fmt.Errorf("semantics: duplicate correlation name %s", name)
	}
	s.names[k] = q
	s.quants = append(s.quants, q)
	return nil
}

func (s *scope) lookupQualifier(name string) *qgm.Quantifier {
	for sc := s; sc != nil; sc = sc.parent {
		if q, ok := sc.names[strings.ToUpper(name)]; ok {
			return q
		}
	}
	return nil
}

// lookupColumn resolves an unqualified column name: the innermost scope
// level containing a match wins; two matches at one level are ambiguous.
func (s *scope) lookupColumn(name string) (*qgm.Quantifier, int, error) {
	for sc := s; sc != nil; sc = sc.parent {
		var found *qgm.Quantifier
		ord := -1
		for _, q := range sc.quants {
			if q.Input == nil {
				continue
			}
			if i, ok := q.Input.HeadIndex(name); ok {
				if found != nil {
					return nil, 0, fmt.Errorf("semantics: ambiguous column %s", name)
				}
				found = q
				ord = i
			}
		}
		if found != nil {
			return found, ord, nil
		}
	}
	return nil, 0, fmt.Errorf("semantics: unknown column %s", name)
}

// buildSelect compiles a SELECT (with a possible UNION suffix).
// nested reports whether the statement appears in a subquery or derived
// table, where ORDER BY/LIMIT are rejected.
func (b *Builder) buildSelect(sel *ast.SelectStmt, outer *scope, nested bool) (*qgm.Box, error) {
	if nested && (len(sel.OrderBy) > 0 || sel.Limit >= 0) {
		return nil, fmt.Errorf("semantics: ORDER BY/LIMIT are only supported at the top level")
	}
	if sel.Union == nil {
		return b.buildSelectCore(sel, outer)
	}
	// Collect the UNION chain.
	var branches []*ast.SelectStmt
	all := true
	for cur := sel; cur != nil; {
		branches = append(branches, cur)
		u := cur.Union
		cur.Union = nil // detach while building; restored below
		if u == nil {
			break
		}
		if !u.All {
			all = false
		}
		cur = u.Right
		defer func(c *ast.SelectStmt, uc *ast.UnionClause) { c.Union = uc }(branches[len(branches)-1], u)
	}
	union := b.g.NewBox(qgm.Union, "")
	union.UnionAll = all
	union.Distinct = !all
	var first *qgm.Box
	for i, br := range branches {
		bx, err := b.buildSelectCore(br, outer)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = bx
		} else if len(bx.Head) != len(first.Head) {
			return nil, fmt.Errorf("semantics: UNION branches have %d and %d columns", len(first.Head), len(bx.Head))
		}
		b.g.NewQuant(union, qgm.ForEach, fmt.Sprintf("u%d", i), bx)
	}
	union.Head = make([]qgm.HeadColumn, len(first.Head))
	for i, h := range first.Head {
		union.Head[i] = qgm.HeadColumn{Name: h.Name, Type: h.Type}
	}
	return union, nil
}

// buildSelectCore compiles one query block without UNION handling.
func (b *Builder) buildSelectCore(sel *ast.SelectStmt, outer *scope) (*qgm.Box, error) {
	box := b.g.NewBox(qgm.Select, "")
	sc := newScope(outer)
	for _, tr := range sel.From {
		child, err := b.buildTableRef(tr)
		if err != nil {
			return nil, err
		}
		q := b.g.NewQuant(box, qgm.ForEach, tr.Name(), child)
		if err := sc.add(tr.Name(), q); err != nil {
			return nil, err
		}
	}
	if sel.Where != nil {
		pred, err := b.buildExpr(sel.Where, sc)
		if err != nil {
			return nil, err
		}
		box.Preds = append(box.Preds, splitConjuncts(pred)...)
	}

	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	if !hasAgg {
		for _, item := range sel.Items {
			if !item.Star && containsAggregate(item.Expr) {
				hasAgg = true
				break
			}
		}
	}
	if hasAgg {
		return b.buildAggregate(sel, box, sc)
	}

	head, err := b.buildHead(sel.Items, sc)
	if err != nil {
		return nil, err
	}
	box.Head = head
	box.Distinct = sel.Distinct
	return box, nil
}

// buildHead resolves the select list into head columns, expanding stars.
func (b *Builder) buildHead(items []ast.SelectItem, sc *scope) ([]qgm.HeadColumn, error) {
	var head []qgm.HeadColumn
	for _, item := range items {
		if item.Star {
			quants := sc.quants
			if item.Qualifier != "" {
				q := sc.lookupQualifier(item.Qualifier)
				if q == nil {
					return nil, fmt.Errorf("semantics: unknown table %s in %s.*", item.Qualifier, item.Qualifier)
				}
				quants = []*qgm.Quantifier{q}
			}
			if len(quants) == 0 {
				return nil, fmt.Errorf("semantics: SELECT * requires a FROM clause")
			}
			for _, q := range quants {
				for i, h := range q.Input.Head {
					head = append(head, qgm.HeadColumn{
						Name: h.Name, Type: h.Type, Expr: &qgm.ColRef{Q: q, Ord: i},
					})
				}
			}
			continue
		}
		e, err := b.buildExpr(item.Expr, sc)
		if err != nil {
			return nil, err
		}
		if containsAggregate(e) {
			return nil, fmt.Errorf("semantics: aggregate in select list requires GROUP BY context")
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*ast.ColumnRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("c%d", len(head)+1)
			}
		}
		head = append(head, qgm.HeadColumn{Name: name, Type: qgm.ExprType(e), Expr: e})
	}
	return head, nil
}

// buildAggregate lowers a grouped query block into the three-box pattern
// join → GroupBy → residual Select (having + final projection).
func (b *Builder) buildAggregate(sel *ast.SelectStmt, join *qgm.Box, sc *scope) (*qgm.Box, error) {
	// Resolve grouping expressions in the join scope.
	var groupExprs []qgm.Expr
	for _, ge := range sel.GroupBy {
		e, err := b.buildExpr(ge, sc)
		if err != nil {
			return nil, err
		}
		if containsAggregate(e) {
			return nil, fmt.Errorf("semantics: aggregates are not allowed in GROUP BY")
		}
		groupExprs = append(groupExprs, e)
	}
	// Resolve output and having expressions; collect aggregate calls.
	type pending struct {
		expr qgm.Expr
		name string
	}
	var outs []pending
	for i, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("semantics: SELECT * cannot be combined with GROUP BY")
		}
		e, err := b.buildExpr(item.Expr, sc)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*ast.ColumnRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("c%d", i+1)
			}
		}
		outs = append(outs, pending{expr: e, name: name})
	}
	var having qgm.Expr
	if sel.Having != nil {
		h, err := b.buildExpr(sel.Having, sc)
		if err != nil {
			return nil, err
		}
		having = h
	}

	var aggs []*qgm.Func
	collect := func(e qgm.Expr) {
		qgm.WalkExpr(e, func(x qgm.Expr) {
			if f, ok := x.(*qgm.Func); ok && isAggName(f.Name) {
				for _, a := range aggs {
					if qgm.EqualExpr(a, f) {
						return
					}
				}
				aggs = append(aggs, f)
			}
		})
	}
	for _, o := range outs {
		collect(o.expr)
	}
	collect(having)

	// The join box's head feeds the GroupBy: group expressions first, then
	// each aggregate's argument.
	join.Head = nil
	for i, ge := range groupExprs {
		join.Head = append(join.Head, qgm.HeadColumn{
			Name: fmt.Sprintf("g%d", i+1), Type: qgm.ExprType(ge), Expr: ge,
		})
	}
	argOrd := make([]int, len(aggs)) // head ordinal of each aggregate's arg in join box
	for i, f := range aggs {
		if f.Star {
			argOrd[i] = -1
			continue
		}
		if len(f.Args) != 1 {
			return nil, fmt.Errorf("semantics: aggregate %s takes exactly one argument", f.Name)
		}
		argOrd[i] = len(join.Head)
		join.Head = append(join.Head, qgm.HeadColumn{
			Name: fmt.Sprintf("a%d", i+1), Type: qgm.ExprType(f.Args[0]), Expr: f.Args[0],
		})
	}

	gb := b.g.NewBox(qgm.GroupBy, "")
	gq := b.g.NewQuant(gb, qgm.ForEach, "grp", join)
	for i := range groupExprs {
		gb.GroupExprs = append(gb.GroupExprs, &qgm.ColRef{Q: gq, Ord: i})
		gb.Head = append(gb.Head, qgm.HeadColumn{
			Name: join.Head[i].Name, Type: join.Head[i].Type, Expr: &qgm.ColRef{Q: gq, Ord: i},
		})
	}
	aggHeadOrd := make([]int, len(aggs))
	for i, f := range aggs {
		nf := &qgm.Func{Name: strings.ToUpper(f.Name), Distinct: f.Distinct, Star: f.Star}
		if argOrd[i] >= 0 {
			nf.Args = []qgm.Expr{&qgm.ColRef{Q: gq, Ord: argOrd[i]}}
		}
		aggHeadOrd[i] = len(gb.Head)
		gb.Head = append(gb.Head, qgm.HeadColumn{
			Name: fmt.Sprintf("agg%d", i+1), Type: qgm.ExprType(nf), Expr: nf,
		})
	}

	// Residual box: rewrite outputs/having over the GroupBy head. Group
	// expressions and aggregate calls are replaced by column references;
	// anything else referencing the join scope is an error.
	res := b.g.NewBox(qgm.Select, "")
	rq := b.g.NewQuant(res, qgm.ForEach, "res", gb)
	lift := func(e qgm.Expr) (qgm.Expr, error) {
		lifted := qgm.RewriteExpr(e, func(x qgm.Expr) qgm.Expr {
			for i, ge := range groupExprs {
				if qgm.EqualExpr(x, ge) {
					return &qgm.ColRef{Q: rq, Ord: i}
				}
			}
			if f, ok := x.(*qgm.Func); ok && isAggName(f.Name) {
				for i, a := range aggs {
					if qgm.EqualExpr(a, f) {
						return &qgm.ColRef{Q: rq, Ord: aggHeadOrd[i]}
					}
				}
			}
			return x
		})
		var bad error
		qgm.WalkExpr(lifted, func(x qgm.Expr) {
			if c, ok := x.(*qgm.ColRef); ok && c.Q != rq {
				// References to enclosing query blocks (correlation) are
				// legal; references to this block's join are not.
				for _, q := range sc.quants {
					if c.Q == q {
						bad = fmt.Errorf("semantics: column %s must appear in GROUP BY or inside an aggregate", x.String())
					}
				}
			}
		})
		return lifted, bad
	}
	for _, o := range outs {
		le, err := lift(o.expr)
		if err != nil {
			return nil, err
		}
		res.Head = append(res.Head, qgm.HeadColumn{Name: o.name, Type: qgm.ExprType(le), Expr: le})
	}
	if having != nil {
		lh, err := lift(having)
		if err != nil {
			return nil, err
		}
		res.Preds = append(res.Preds, splitConjuncts(lh)...)
	}
	res.Distinct = sel.Distinct
	return res, nil
}

func isAggName(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

func containsAggregate(e any) bool {
	switch x := e.(type) {
	case ast.Expr:
		found := false
		ast.Walk(x, func(n ast.Expr) {
			if f, ok := n.(*ast.FuncCall); ok && isAggName(f.Name) {
				found = true
			}
		})
		return found
	case qgm.Expr:
		return qgm.IsAggregate(x)
	}
	return false
}

// buildTableRef compiles one FROM element to its input box.
func (b *Builder) buildTableRef(tr ast.TableRef) (*qgm.Box, error) {
	if tr.Subquery != nil {
		return b.buildSelect(tr.Subquery, nil, true)
	}
	if t, ok := b.cat.Table(tr.Table); ok {
		b.g.AddDep(t.Name)
		return b.baseTableBox(t), nil
	}
	if v, ok := b.cat.View(tr.Table); ok {
		b.g.AddDep(v.Name)
		if v.IsXNF {
			return nil, fmt.Errorf("semantics: XNF view %s cannot be used as a table; query it with OUT OF or the CO API", v.Name)
		}
		if b.viewDepth >= maxViewDepth {
			return nil, fmt.Errorf("semantics: view nesting too deep expanding %s (cycle?)", v.Name)
		}
		stmt, err := parser.Parse(v.Text)
		if err != nil {
			return nil, fmt.Errorf("semantics: stored view %s: %v", v.Name, err)
		}
		cv, ok := stmt.(*ast.CreateViewStmt)
		if !ok || cv.Select == nil {
			return nil, fmt.Errorf("semantics: stored view %s has unexpected form", v.Name)
		}
		b.viewDepth++
		box, err := b.buildSelect(cv.Select, nil, true)
		b.viewDepth--
		if err != nil {
			return nil, err
		}
		box.Name = v.Name
		return box, nil
	}
	return nil, fmt.Errorf("semantics: unknown table or view %s", tr.Table)
}

// baseTableBox returns the (shared) leaf box for a base table. One box per
// table per graph: quantifiers ranging over the same table share it, which
// is what makes common subexpressions visible to the XNF rewrite.
func (b *Builder) baseTableBox(t *catalog.Table) *qgm.Box {
	key := strings.ToUpper(t.Name)
	if box, ok := b.baseBoxes[key]; ok {
		return box
	}
	box := b.g.NewBox(qgm.BaseTable, t.Name)
	box.Table = t.Name
	box.PKOrds = t.PKOrdinals()
	box.RowEst = t.RowCount()
	for _, col := range t.Columns {
		box.Head = append(box.Head, qgm.HeadColumn{Name: col.Name, Type: col.Type})
		box.ColCard = append(box.ColCard, t.Cardinality(col.Name))
	}
	b.baseBoxes[key] = box
	return box
}

// splitConjuncts flattens AND trees into a predicate list.
func splitConjuncts(e qgm.Expr) []qgm.Expr {
	if bo, ok := e.(*qgm.BinOp); ok && bo.Op == "AND" {
		return append(splitConjuncts(bo.L), splitConjuncts(bo.R)...)
	}
	return []qgm.Expr{e}
}
