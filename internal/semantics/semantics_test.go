package semantics

import (
	"strings"
	"testing"

	"xnf/internal/ast"
	"xnf/internal/catalog"
	"xnf/internal/parser"
	"xnf/internal/qgm"
	"xnf/internal/types"
)

func orgCat(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	add := func(name string, pk []string, cols ...catalog.Column) {
		if err := c.CreateTable(&catalog.Table{Name: name, Columns: cols, PrimaryKey: pk}); err != nil {
			t.Fatal(err)
		}
	}
	add("DEPT", []string{"dno"},
		catalog.Column{Name: "dno", Type: types.IntType},
		catalog.Column{Name: "dname", Type: types.StringType},
		catalog.Column{Name: "loc", Type: types.StringType})
	add("EMP", []string{"eno"},
		catalog.Column{Name: "eno", Type: types.IntType},
		catalog.Column{Name: "ename", Type: types.StringType},
		catalog.Column{Name: "edno", Type: types.IntType},
		catalog.Column{Name: "sal", Type: types.FloatType})
	add("EMPSKILLS", nil,
		catalog.Column{Name: "eseno", Type: types.IntType},
		catalog.Column{Name: "essno", Type: types.IntType})
	add("SKILLS", []string{"sno"},
		catalog.Column{Name: "sno", Type: types.IntType},
		catalog.Column{Name: "sname", Type: types.StringType})
	return c
}

func buildSel(t *testing.T, c *catalog.Catalog, sql string) *qgm.Graph {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildSelect(c, stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if errs := g.Validate(); len(errs) > 0 {
		t.Fatalf("invalid graph for %q: %v", sql, errs)
	}
	return g
}

func mustFail(t *testing.T, c *catalog.Catalog, sql, wantSubstr string) {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse(%q): %v", sql, err)
	}
	switch s := stmt.(type) {
	case *ast.SelectStmt:
		_, err = BuildSelect(c, s)
	case *ast.XNFQuery:
		_, err = BuildXNF(c, s)
	default:
		t.Fatalf("unexpected statement %T", stmt)
	}
	if err == nil {
		t.Fatalf("BuildSelect(%q) should fail", sql)
	}
	if wantSubstr != "" && !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSubstr)
	}
}

func TestStarExpansion(t *testing.T) {
	c := orgCat(t)
	g := buildSel(t, c, "SELECT * FROM EMP e, DEPT d")
	body := g.TopBox.Outputs[0].Quant.Input
	if len(body.Head) != 7 {
		t.Errorf("star head = %d cols", len(body.Head))
	}
	g = buildSel(t, c, "SELECT d.* FROM EMP e, DEPT d")
	body = g.TopBox.Outputs[0].Quant.Input
	if len(body.Head) != 3 || body.Head[0].Name != "dno" {
		t.Errorf("qualified star head = %v", body.HeadNames())
	}
}

func TestNameResolution(t *testing.T) {
	c := orgCat(t)
	// Unambiguous unqualified name across two tables.
	buildSel(t, c, "SELECT ename, dname FROM EMP, DEPT")
	mustFail(t, c, "SELECT nosuch FROM EMP", "unknown column")
	mustFail(t, c, "SELECT x.eno FROM EMP e", "unknown table")
	mustFail(t, c, "SELECT eno FROM EMP e, EMP e", "duplicate correlation")
	// dno is unambiguous; eno vs eseno fine; but a column in both scopes:
	c2 := orgCat(t)
	c2.CreateTable(&catalog.Table{Name: "D2", Columns: []catalog.Column{{Name: "dno", Type: types.IntType}}})
	mustFail(t, c2, "SELECT dno FROM DEPT, D2", "ambiguous")
}

func TestCorrelationResolvesThroughScopes(t *testing.T) {
	c := orgCat(t)
	g := buildSel(t, c, `SELECT ename FROM EMP e WHERE EXISTS (
		SELECT 1 FROM DEPT d WHERE d.dno = e.edno AND EXISTS (
			SELECT 1 FROM SKILLS s WHERE s.sno = e.eno AND s.sno = d.dno))`)
	// Deeply nested correlation must reference the outer quantifiers.
	subqs := 0
	for _, b := range g.Reachable() {
		for _, p := range b.Preds {
			qgm.WalkExpr(p, func(x qgm.Expr) {
				if _, ok := x.(*qgm.SubqueryRef); ok {
					subqs++
				}
			})
		}
	}
	if subqs != 2 {
		t.Errorf("nested subqueries = %d", subqs)
	}
}

func TestTypeChecking(t *testing.T) {
	c := orgCat(t)
	mustFail(t, c, "SELECT * FROM EMP WHERE ename = 1", "compare")
	mustFail(t, c, "SELECT * FROM EMP WHERE ename + 1 > 2", "numeric")
	mustFail(t, c, "SELECT * FROM EMP WHERE eno LIKE 'x'", "LIKE")
	mustFail(t, c, "SELECT * FROM EMP WHERE eno OR TRUE", "boolean")
	buildSel(t, c, "SELECT * FROM EMP WHERE sal > eno") // cross-numeric ok
}

func TestAggregateRules(t *testing.T) {
	c := orgCat(t)
	buildSel(t, c, "SELECT edno, COUNT(*) FROM EMP GROUP BY edno")
	buildSel(t, c, "SELECT edno + 1, MAX(sal) FROM EMP GROUP BY edno + 1")
	mustFail(t, c, "SELECT ename FROM EMP GROUP BY edno", "GROUP BY")
	mustFail(t, c, "SELECT edno FROM EMP GROUP BY edno HAVING ename > 'x'", "GROUP BY")
	mustFail(t, c, "SELECT MAX(COUNT(*)) FROM EMP GROUP BY edno", "")
	mustFail(t, c, "SELECT * FROM EMP GROUP BY edno", "")
	// Aggregates build the join → GroupBy → residual chain.
	g := buildSel(t, c, "SELECT edno, COUNT(*) FROM EMP WHERE sal > 0 GROUP BY edno HAVING COUNT(*) > 1")
	kinds := map[qgm.BoxKind]int{}
	for _, b := range g.Reachable() {
		kinds[b.Kind]++
	}
	if kinds[qgm.GroupBy] != 1 {
		t.Errorf("GroupBy boxes = %d", kinds[qgm.GroupBy])
	}
}

func TestSubqueryArityChecks(t *testing.T) {
	c := orgCat(t)
	mustFail(t, c, "SELECT * FROM EMP WHERE edno IN (SELECT dno, dname FROM DEPT)", "one column")
	mustFail(t, c, "SELECT (SELECT dno, dname FROM DEPT) FROM EMP", "one column")
	mustFail(t, c, "SELECT * FROM EMP WHERE edno IN (SELECT * FROM DEPT ORDER BY dno)", "top level")
}

func TestUnionChecks(t *testing.T) {
	c := orgCat(t)
	buildSel(t, c, "SELECT eno FROM EMP UNION SELECT dno FROM DEPT")
	mustFail(t, c, "SELECT eno FROM EMP UNION SELECT dno, dname FROM DEPT", "columns")
}

func TestBaseTableBoxSharing(t *testing.T) {
	c := orgCat(t)
	g := buildSel(t, c, "SELECT e1.eno FROM EMP e1, EMP e2 WHERE e1.eno = e2.edno")
	bases := 0
	for _, b := range g.Reachable() {
		if b.Kind == qgm.BaseTable {
			bases++
		}
	}
	if bases != 1 {
		t.Errorf("base table boxes = %d, want 1 shared box", bases)
	}
}

func TestXNFSemanticChecks(t *testing.T) {
	c := orgCat(t)
	mustFail(t, c, "OUT OF a AS EMP, a AS DEPT TAKE *", "duplicate")
	mustFail(t, c, "OUT OF r AS (RELATE x, y WHERE 1 = 1) TAKE *", "component table")
	mustFail(t, c, "OUT OF a AS EMP, r AS (RELATE ghost, a WHERE 1 = 1) TAKE *", "unknown parent")
	mustFail(t, c, "OUT OF a AS EMP, r AS (RELATE a, ghost WHERE 1 = 1) TAKE *", "unknown child")
	mustFail(t, c, "OUT OF a AS EMP TAKE ghost", "unknown component")
	mustFail(t, c, "OUT OF a AS EMP TAKE a (ghost)", "no column")
	mustFail(t, c, "OUT OF a AS NOSUCHTABLE TAKE *", "unknown table")
}

func TestXNFGraphShape(t *testing.T) {
	c := orgCat(t)
	stmt, err := parser.Parse(`OUT OF d AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
		e AS EMP,
		emp AS (RELATE d VIA EMPLOYS, e WHERE d.dno = e.edno)
		TAKE *`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildXNF(c, stmt.(*ast.XNFQuery))
	if err != nil {
		t.Fatal(err)
	}
	xnfBox := g.TopBox.Quants[0].Input
	if xnfBox.Kind != qgm.XNFOp {
		t.Fatalf("top input = %v", xnfBox.Kind)
	}
	if len(xnfBox.XNFOutputs) != 3 {
		t.Fatalf("xnf outputs = %d", len(xnfBox.XNFOutputs))
	}
	// d is root (not reachable-marked), e is marked R (Fig. 4).
	for _, o := range xnfBox.XNFOutputs {
		switch o.Name {
		case "d":
			if o.Reachable {
				t.Error("root d must not be marked reachable")
			}
		case "e":
			if !o.Reachable {
				t.Error("child e must be marked reachable")
			}
		case "emp":
			if !o.IsRel || o.Parent != "d" || o.Children[0] != "e" {
				t.Errorf("rel output wrong: %+v", o)
			}
		}
	}
	// Dump shows the XNF operator box.
	if !strings.Contains(g.Dump(), "XNF") {
		t.Error("dump missing XNF box")
	}
}

func TestComponentKeyOrds(t *testing.T) {
	c := orgCat(t)
	stmt, _ := parser.Parse(`OUT OF e AS (SELECT ename, eno FROM EMP) TAKE *`)
	g, err := BuildXNF(c, stmt.(*ast.XNFQuery))
	if err != nil {
		t.Fatal(err)
	}
	box := g.TopBox.Quants[0].Input.XNFOutputs[0].Box
	keys := ComponentKeyOrds(box)
	// eno is at position 1 of the projection and is the PK.
	if len(keys) != 1 || keys[0] != 1 {
		t.Errorf("key ords = %v", keys)
	}
	// A computed component falls back to full-row identity.
	stmt2, _ := parser.Parse(`OUT OF e AS (SELECT ename FROM EMP) TAKE *`)
	g2, err := BuildXNF(c, stmt2.(*ast.XNFQuery))
	if err != nil {
		t.Fatal(err)
	}
	box2 := g2.TopBox.Quants[0].Input.XNFOutputs[0].Box
	if keys := ComponentKeyOrds(box2); len(keys) != 1 || keys[0] != 0 {
		t.Errorf("fallback key ords = %v", keys)
	}
}

func TestRowContext(t *testing.T) {
	c := orgCat(t)
	rc, err := NewRowContext(c, "EMP", "e")
	if err != nil {
		t.Fatal(err)
	}
	expr, err := parser.ParseExpr("e.sal * 2 + eno")
	if err != nil {
		t.Fatal(err)
	}
	qe, err := rc.Build(expr)
	if err != nil {
		t.Fatal(err)
	}
	if qgm.ExprType(qe) != types.FloatType {
		t.Errorf("type = %v", qgm.ExprType(qe))
	}
	if _, err := NewRowContext(c, "NOSUCH", ""); err == nil {
		t.Error("unknown table should fail")
	}
	aggExpr, _ := parser.ParseExpr("MAX(sal)")
	if _, err := rc.Build(aggExpr); err == nil {
		t.Error("aggregate in row context should fail")
	}
}
