package semantics

import (
	"fmt"
	"strings"

	"xnf/internal/ast"
	"xnf/internal/catalog"
	"xnf/internal/qgm"
)

// BuildXNF compiles an XNF query (the CO constructor) into an XNF QGM graph
// faithful to Fig. 4 of the paper: a Top box over an XNF operator box whose
// body holds one derived-table box per component table and per relationship.
// Non-root node components carry the reachability marker 'R'. The TAKE
// projection is recorded on the XNF box for the semantic-rewrite stage.
func BuildXNF(cat *catalog.Catalog, xq *ast.XNFQuery) (*qgm.Graph, error) {
	b := NewBuilder(cat)
	g := b.g

	// Pass 0: validate the component list and split nodes from relationships.
	nodeDefs := make(map[string]*ast.XNFComponent)
	relDefs := make(map[string]*ast.XNFComponent)
	var order []string
	for i := range xq.Components {
		c := &xq.Components[i]
		key := strings.ToUpper(c.Name)
		if _, dup := nodeDefs[key]; dup {
			return nil, fmt.Errorf("semantics: duplicate XNF component %s", c.Name)
		}
		if _, dup := relDefs[key]; dup {
			return nil, fmt.Errorf("semantics: duplicate XNF component %s", c.Name)
		}
		if c.Relate != nil {
			relDefs[key] = c
		} else {
			nodeDefs[key] = c
		}
		order = append(order, c.Name)
	}
	if len(nodeDefs) == 0 {
		return nil, fmt.Errorf("semantics: XNF query needs at least one component table")
	}

	xnfBox := g.NewBox(qgm.XNFOp, "")

	// Pass 1: derive the component tables (paper's phase 1). Component
	// tables are sets — a shared tuple exists once in the view — so each
	// node box eliminates duplicates.
	nodeBoxes := make(map[string]*qgm.Box)
	for _, c := range xq.Components {
		if c.Relate != nil {
			continue
		}
		box, err := b.buildSelect(c.Select, nil, true)
		if err != nil {
			return nil, fmt.Errorf("semantics: component %s: %v", c.Name, err)
		}
		box.Name = c.Name
		box.Distinct = true
		nodeBoxes[strings.ToUpper(c.Name)] = box
	}

	// Pass 2: derive the relationship tables. A relationship box ranges
	// over its partner component boxes plus any USING tables and carries
	// the relationship predicate (phase 1 for relationships, Fig. 4).
	childOf := make(map[string][]string) // child comp → relationship names
	relBoxes := make(map[string]*qgm.Box)
	for _, c := range xq.Components {
		if c.Relate == nil {
			continue
		}
		rel := c.Relate
		parentBox, ok := nodeBoxes[strings.ToUpper(rel.Parent)]
		if !ok {
			return nil, fmt.Errorf("semantics: relationship %s: unknown parent component %s", c.Name, rel.Parent)
		}
		box := g.NewBox(qgm.Select, c.Name)
		sc := newScope(nil)
		pq := g.NewQuant(box, qgm.ForEach, rel.Parent, parentBox)
		if err := sc.add(rel.Parent, pq); err != nil {
			return nil, err
		}
		var childQs []*qgm.Quantifier
		for ci, childName := range rel.Children {
			childBox, ok := nodeBoxes[strings.ToUpper(childName)]
			if !ok {
				return nil, fmt.Errorf("semantics: relationship %s: unknown child component %s", c.Name, childName)
			}
			exposed := childName
			if ci < len(rel.ChildAliases) && rel.ChildAliases[ci] != "" {
				exposed = rel.ChildAliases[ci]
			}
			if strings.EqualFold(exposed, rel.Parent) {
				// A self-relationship must rename the child occurrence so
				// the predicate can tell the two apart.
				return nil, fmt.Errorf("semantics: relationship %s relates %s to itself; alias the child occurrence (e.g. %s AS sub)", c.Name, childName, childName)
			}
			cq := g.NewQuant(box, qgm.ForEach, exposed, childBox)
			if err := sc.add(exposed, cq); err != nil {
				return nil, err
			}
			childQs = append(childQs, cq)
			childOf[strings.ToUpper(childName)] = append(childOf[strings.ToUpper(childName)], c.Name)
		}
		for _, u := range rel.Using {
			ubox, err := b.buildTableRef(u)
			if err != nil {
				return nil, fmt.Errorf("semantics: relationship %s USING: %v", c.Name, err)
			}
			uq := g.NewQuant(box, qgm.ForEach, u.Name(), ubox)
			if err := sc.add(u.Name(), uq); err != nil {
				return nil, err
			}
		}
		if rel.Where != nil {
			pred, err := b.buildExpr(rel.Where, sc)
			if err != nil {
				return nil, fmt.Errorf("semantics: relationship %s: %v", c.Name, err)
			}
			box.Preds = append(box.Preds, splitConjuncts(pred)...)
		}
		// The connection head carries the partner keys: parent key columns
		// first, then each child's key columns.
		appendKeys := func(q *qgm.Quantifier, prefix string) {
			for _, ord := range ComponentKeyOrds(q.Input) {
				box.Head = append(box.Head, qgm.HeadColumn{
					Name: fmt.Sprintf("%s_%s", prefix, q.Input.Head[ord].Name),
					Type: q.Input.Head[ord].Type,
					Expr: &qgm.ColRef{Q: q, Ord: ord},
				})
			}
		}
		appendKeys(pq, rel.Parent)
		for i, cq := range childQs {
			appendKeys(cq, rel.Children[i])
		}
		box.Distinct = true
		relBoxes[strings.ToUpper(c.Name)] = box
	}

	// Pass 3: assemble the XNF operator's outputs. Roots are node
	// components that are nobody's child; every other node is marked
	// reachable (the default reachability of Sect. 2).
	for _, name := range order {
		key := strings.ToUpper(name)
		if def, ok := nodeDefs[key]; ok {
			box := nodeBoxes[key]
			out := qgm.XNFOutput{Name: def.Name, Box: box}
			if len(childOf[key]) > 0 {
				out.Reachable = true
			}
			xnfBox.XNFOutputs = append(xnfBox.XNFOutputs, out)
			continue
		}
		def := relDefs[key]
		xnfBox.XNFOutputs = append(xnfBox.XNFOutputs, qgm.XNFOutput{
			Name:     def.Name,
			IsRel:    true,
			Box:      relBoxes[key],
			Parent:   def.Relate.Parent,
			Children: def.Relate.Children,
			Role:     def.Relate.Role,
		})
	}
	if err := checkTake(xq, xnfBox); err != nil {
		return nil, err
	}

	// Phase 0/3 of the paper: the Top box is installed over the XNF
	// operator; output shaping happens during XNF semantic rewrite.
	top := g.NewBox(qgm.Top, "")
	g.NewQuant(top, qgm.ForEach, "co", xnfBox)
	g.TopBox = top
	g.GC()
	if errs := g.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("semantics: internal XNF QGM validation: %s", strings.Join(errs, "; "))
	}
	return g, nil
}

// TakeFor resolves which XNF outputs the TAKE clause projects, in component
// order, together with any column projections. It is used by the XNF
// semantic rewrite stage.
func TakeFor(xq *ast.XNFQuery, xnfBox *qgm.Box) ([]TakeSpec, error) {
	star := false
	byName := make(map[string]ast.TakeItem)
	for _, t := range xq.Take {
		if t.Star {
			star = true
			continue
		}
		byName[strings.ToUpper(t.Name)] = t
	}
	var out []TakeSpec
	for _, o := range xnfBox.XNFOutputs {
		item, named := byName[strings.ToUpper(o.Name)]
		if !star && !named {
			continue
		}
		spec := TakeSpec{Output: o}
		if named && len(item.Columns) > 0 {
			if o.IsRel {
				return nil, fmt.Errorf("semantics: TAKE column projection is not supported on relationship %s", o.Name)
			}
			for _, col := range item.Columns {
				ord, ok := o.Box.HeadIndex(col)
				if !ok {
					return nil, fmt.Errorf("semantics: TAKE: component %s has no column %s", o.Name, col)
				}
				spec.Columns = append(spec.Columns, ord)
			}
		}
		out = append(out, spec)
	}
	return out, nil
}

// TakeSpec pairs an XNF output with an optional column projection.
type TakeSpec struct {
	Output  qgm.XNFOutput
	Columns []int // nil = all columns
}

// checkTake validates TAKE names against the component list.
func checkTake(xq *ast.XNFQuery, xnfBox *qgm.Box) error {
	known := make(map[string]bool)
	for _, o := range xnfBox.XNFOutputs {
		known[strings.ToUpper(o.Name)] = true
	}
	for _, t := range xq.Take {
		if t.Star {
			continue
		}
		if !known[strings.ToUpper(t.Name)] {
			return fmt.Errorf("semantics: TAKE references unknown component %s", t.Name)
		}
	}
	_, err := TakeFor(xq, xnfBox)
	return err
}

// ComponentKeyOrds picks the head ordinals that identify a tuple of a node
// component: if the component's head exposes the full primary key of the
// single base table it derives from, those columns; otherwise the whole
// row (set semantics make full-row identity sound).
func ComponentKeyOrds(box *qgm.Box) []int {
	if ords := pkThroughBox(box); ords != nil {
		return ords
	}
	all := make([]int, len(box.Head))
	for i := range all {
		all[i] = i
	}
	return all
}

// pkThroughBox traces each head column of a single-input Select box to the
// base table beneath it and reports the head ordinals that cover the base
// table's primary key.
func pkThroughBox(box *qgm.Box) []int {
	switch box.Kind {
	case qgm.BaseTable:
		if len(box.PKOrds) == 0 {
			return nil
		}
		return append([]int(nil), box.PKOrds...)
	case qgm.Select:
		if len(box.Quants) != 1 || box.Quants[0].Type != qgm.ForEach {
			return nil
		}
		inner := pkThroughBox(box.Quants[0].Input)
		if inner == nil {
			return nil
		}
		var out []int
		for _, need := range inner {
			found := -1
			for i, h := range box.Head {
				if cr, ok := h.Expr.(*qgm.ColRef); ok && cr.Q == box.Quants[0] && cr.Ord == need {
					found = i
					break
				}
			}
			if found < 0 {
				return nil
			}
			out = append(out, found)
		}
		return out
	default:
		return nil
	}
}
