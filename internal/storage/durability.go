package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"

	"xnf/internal/catalog"
	"xnf/internal/colstore"
	"xnf/internal/types"
	"xnf/internal/wal"
)

// Durability glue: this file is where WAL records get meaning. The wal
// package owns files, framing and fsync; here the store produces records
// from transactions and DDL, replays them on startup, and encodes/decodes
// the full store image for checkpoints.
//
// The engine applies changes to the in-memory heaps eagerly and keeps an
// undo log for rollback, so nothing uncommitted ever reaches the durable
// state (no-steal): the WAL is redo-only. A transaction's records are
// buffered in memory and written as one contiguous [begin][ops][commit]
// run at Commit, holding the store's transaction gate in read mode; DDL
// and checkpoints take the gate exclusively, so the log never interleaves
// a transaction with a DDL record or a checkpoint cut.

// durability carries the attached WAL state of a Store.
type durability struct {
	dir string
	log *wal.Log

	ckptMu       sync.Mutex    // single-flight checkpoints
	checkpoints  uint64        // completed checkpoints (guarded by ckptMu)
	lastCkptTime time.Duration // wall time of the latest checkpoint (guarded by ckptMu)

	// recovery stats, written once during OpenDurable.
	recoveredRecords uint64
	recoveredTx      uint64
	recoveryDuration time.Duration
}

// WALStats is the observability snapshot of the durability layer.
type WALStats struct {
	Attached         bool
	Dir              string
	Records          uint64 // WAL records appended since open
	Bytes            uint64 // WAL bytes appended since open
	Fsyncs           uint64 // fsyncs issued
	Commits          uint64 // transactions made durable
	MaxGroup         uint64 // largest commit group retired by one fsync
	GroupSum         uint64 // sum of commit group sizes
	Checkpoints      uint64 // checkpoints completed since open
	LastCkptMillis   int64  // wall time the latest checkpoint took
	RecoveredRecords uint64 // records replayed by recovery at open
	RecoveredTx      uint64 // transactions replayed by recovery at open
	RecoveryMillis   int64  // wall time recovery took at open
}

// WALStats reports the durability counters; Attached is false (and the
// rest zero) for a purely in-memory store.
func (s *Store) WALStats() WALStats {
	d := s.dur.Load()
	if d == nil {
		return WALStats{}
	}
	ls := d.log.Stats()
	d.ckptMu.Lock()
	ckpts := d.checkpoints
	lastCkpt := d.lastCkptTime
	d.ckptMu.Unlock()
	return WALStats{
		Attached:         true,
		Dir:              d.dir,
		Records:          ls.Records,
		Bytes:            ls.Bytes,
		Fsyncs:           ls.Fsyncs,
		Commits:          ls.Commits,
		MaxGroup:         ls.MaxGroup,
		GroupSum:         ls.GroupSum,
		Checkpoints:      ckpts,
		LastCkptMillis:   lastCkpt.Milliseconds(),
		RecoveredRecords: d.recoveredRecords,
		RecoveredTx:      d.recoveredTx,
		RecoveryMillis:   d.recoveryDuration.Milliseconds(),
	}
}

// OpenDurable attaches a write-ahead log under dir to the store,
// recovering any existing state there first: the newest valid checkpoint
// is loaded, the log suffix replayed (uncommitted tails and torn records
// discarded), torn files truncated to their intact prefix, and only then
// does the log accept new appends. The store must be empty (fresh) when
// OpenDurable is called.
func (s *Store) OpenDurable(dir string, opts wal.Options) error {
	if s.dur.Load() != nil {
		return fmt.Errorf("storage: durability already attached")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d := &durability{dir: dir}
	start := time.Now()

	// 1. Load the newest checkpoint that both reads back and decodes.
	// A checkpoint whose read faults, whose CRC fails, or whose image
	// does not decode falls back to the next older one (checkpoint
	// removal is not atomic with the write, so crash windows can leave
	// several); with none usable, recovery degrades to a clean replay of
	// every surviving log file. Partially applied state from a failed
	// decode is wiped before each retry — a bad checkpoint can cost
	// recovery time, never correctness.
	ckptSeqs, err := wal.ListCheckpoints(dir)
	if err != nil {
		return err
	}
	haveCkpt := false
	var ckptSeq uint64
	for i := len(ckptSeqs) - 1; i >= 0 && !haveCkpt; i-- {
		payload, rerr := wal.ReadCheckpoint(dir, ckptSeqs[i])
		if rerr != nil {
			continue
		}
		if lerr := s.loadImage(payload); lerr != nil {
			s.resetState()
			continue
		}
		haveCkpt, ckptSeq = true, ckptSeqs[i]
	}

	// 2. Replay the log suffix. Files below the checkpoint sequence are
	// fully contained in the snapshot; files at or above it are redo.
	seqs, err := wal.ListLogs(dir)
	if err != nil {
		return err
	}
	openSeq := uint64(1)
	if haveCkpt {
		openSeq = ckptSeq
	}
	for _, seq := range seqs {
		if seq < openSeq {
			continue
		}
		recs, validLen, torn, err := wal.ReadLog(dir, seq)
		if err != nil {
			return err
		}
		if err := s.replay(d, recs); err != nil {
			return err
		}
		openSeq = seq
		if torn {
			// Crash wreckage: cut the file back to its intact prefix and
			// drop any later files (unreachable by replay).
			if err := wal.TruncateLog(dir, seq, validLen); err != nil {
				return err
			}
			if err := wal.RemoveLogsAbove(dir, seq); err != nil {
				return err
			}
			break
		}
	}
	d.recoveryDuration = time.Since(start)

	// 3. Open the live log and publish.
	log, err := wal.OpenLog(dir, openSeq, opts)
	if err != nil {
		return err
	}
	d.log = log
	s.dur.Store(d)
	return nil
}

// CloseDurability detaches and closes the WAL (final fsync included).
// The in-memory state stays usable; new writes are no longer logged.
func (s *Store) CloseDurability() error {
	d := s.dur.Swap(nil)
	if d == nil {
		return nil
	}
	// Let in-flight transactions drain before the log goes away.
	s.txGate.Lock()
	defer s.txGate.Unlock()
	return d.log.Close()
}

// Durable reports whether a WAL is attached.
func (s *Store) Durable() bool { return s.dur.Load() != nil }

// logDDL appends a self-committing DDL record. Callers hold the
// transaction gate exclusively, so the record's position in the log
// matches its position in the apply order.
func (s *Store) logDDL(r *wal.Record) error {
	d := s.dur.Load()
	if d == nil {
		return nil
	}
	return d.log.Append(r)
}

// --- replay ---

// replay applies a decoded record stream: DDL records apply immediately,
// DML records buffer per transaction and apply in log order when the
// transaction's commit marker arrives. Transactions with no commit
// marker in the stream evaporate — exactly the uncommitted tail a crash
// leaves behind.
func (s *Store) replay(d *durability, recs []*wal.Record) error {
	pending := make(map[uint64][]*wal.Record)
	for _, r := range recs {
		d.recoveredRecords++
		if r.TxID > s.nextTx.Load() {
			s.nextTx.Store(r.TxID)
		}
		switch r.Op {
		case wal.OpBegin:
			pending[r.TxID] = nil
		case wal.OpInsert, wal.OpUpdate, wal.OpDelete:
			pending[r.TxID] = append(pending[r.TxID], r)
		case wal.OpCommit:
			for _, op := range pending[r.TxID] {
				if err := s.applyDML(op); err != nil {
					return fmt.Errorf("storage: replay tx %d: %w", r.TxID, err)
				}
			}
			delete(pending, r.TxID)
			d.recoveredTx++
		default:
			if err := s.applyDDL(r); err != nil {
				return fmt.Errorf("storage: replay %s: %w", r.Op, err)
			}
			d.recoveredTx++
		}
	}
	return nil
}

// applyDML redoes one committed DML record. Rows in the log are the
// coerced images the heap stored originally, and committed history can
// hold no constraint violation, so inserts restore straight into their
// recorded slot (append would renumber around rolled-back slots' holes).
func (s *Store) applyDML(r *wal.Record) error {
	td, err := s.Table(r.Table)
	if err != nil {
		return err
	}
	switch r.Op {
	case wal.OpInsert:
		td.insertAt(RID(r.RID), r.Row)
		return nil
	case wal.OpUpdate:
		_, err := td.Update(RID(r.RID), r.Row)
		return err
	case wal.OpDelete:
		_, err := td.Delete(RID(r.RID))
		return err
	}
	return fmt.Errorf("storage: unexpected DML op %s", r.Op)
}

// applyDDL redoes one DDL record through the normal store entry points
// (durability is not yet attached during recovery, so nothing re-logs).
func (s *Store) applyDDL(r *wal.Record) error {
	switch r.Op {
	case wal.OpCreateTable:
		return s.CreateTable(defFromWAL(r.TableDef))
	case wal.OpDropTable:
		return s.DropTable(r.Name)
	case wal.OpCreateIndex:
		return s.CreateIndex(&catalog.Index{
			Name:    r.IndexDef.Name,
			Table:   r.IndexDef.Table,
			Columns: r.IndexDef.Columns,
			Kind:    catalog.IndexKind(r.IndexDef.Kind),
			Unique:  r.IndexDef.Unique,
		})
	case wal.OpSetStorage:
		return s.SetTableStorage(r.Table, catalog.StorageKind(r.Storage))
	case wal.OpCreateView:
		return s.CreateView(&catalog.View{Name: r.Name, Text: r.Text, IsXNF: r.IsXNF})
	case wal.OpDropView:
		return s.DropView(r.Name)
	}
	return fmt.Errorf("storage: unexpected DDL op %s", r.Op)
}

// --- catalog <-> WAL definitions ---

// defToWAL converts a catalog table to its WAL image. Secondary indexes
// are excluded: they have their own OpCreateIndex records, and the
// primary-key index is recreated implicitly by CreateTable.
func defToWAL(def *catalog.Table) *wal.TableDef {
	d := &wal.TableDef{
		Name:       def.Name,
		PrimaryKey: def.PrimaryKey,
		Storage:    uint8(def.StorageKind()),
	}
	for _, c := range def.Columns {
		d.Columns = append(d.Columns, wal.ColumnDef{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
	}
	for _, fk := range def.ForeignKeys {
		d.ForeignKeys = append(d.ForeignKeys, wal.FKDef{
			Columns: fk.Columns, RefTable: fk.RefTable, RefColumns: fk.RefColumns,
		})
	}
	return d
}

func defFromWAL(d *wal.TableDef) *catalog.Table {
	def := &catalog.Table{
		Name:       d.Name,
		PrimaryKey: d.PrimaryKey,
	}
	for _, c := range d.Columns {
		def.Columns = append(def.Columns, catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
	}
	for _, fk := range d.ForeignKeys {
		def.ForeignKeys = append(def.ForeignKeys, catalog.ForeignKey{
			Columns: fk.Columns, RefTable: fk.RefTable, RefColumns: fk.RefColumns,
		})
	}
	def.SetStorageKind(catalog.StorageKind(d.Storage))
	return def
}

// isAutoPKIndex reports whether idx is the implicit primary-key index
// CreateTable builds: those are recreated by replaying OpCreateTable and
// must not get their own OpCreateIndex record.
func isAutoPKIndex(def *catalog.Table, idx *catalog.Index) bool {
	if idx.Name != def.Name+"_PK" || !idx.Unique || len(idx.Columns) != len(def.PrimaryKey) {
		return false
	}
	for i, c := range idx.Columns {
		if c != def.PrimaryKey[i] {
			return false
		}
	}
	return true
}

// --- checkpoints ---

// Checkpoint cuts the log and persists the full store image:
//
//  1. quiesce transactions (exclusive gate — per-statement transactions
//     make this a short wait),
//  2. rotate the log to a fresh sequence S,
//  3. encode the store image (still quiesced, so it equals replaying
//     every log file below S),
//  4. release the gate, durably write checkpoint-S,
//  5. delete log files and checkpoints below S.
//
// Readers never touch the gate: streaming cursors opened before the
// checkpoint keep draining their immutable snapshots throughout.
func (s *Store) Checkpoint() error {
	d := s.dur.Load()
	if d == nil {
		return fmt.Errorf("storage: no durability attached")
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	start := time.Now()

	s.txGate.Lock()
	newSeq := d.log.Seq() + 1
	if err := d.log.Rotate(newSeq); err != nil {
		s.txGate.Unlock()
		return err
	}
	payload := s.encodeImage()
	s.txGate.Unlock()

	if err := wal.WriteCheckpoint(d.dir, newSeq, payload); err != nil {
		return err
	}
	if err := wal.RemoveLogsBelow(d.dir, newSeq); err != nil {
		return err
	}
	if err := wal.RemoveCheckpointsBelow(d.dir, newSeq); err != nil {
		return err
	}
	d.checkpoints++
	d.lastCkptTime = time.Since(start)
	return nil
}

// imageVersion versions the checkpoint payload format. v2 added persisted
// index payloads after each table's statistics; v3 persists compressed
// column-store segments (dictionary/packed payloads) verbatim. v2 images
// load unchanged — the colstore segment flags byte reads v2's bare 0/1
// hollow byte — so loadImage accepts both.
const (
	imageVersion    = 3
	minImageVersion = 2
)

// encodeImage serializes the whole store: a DDL section of framed WAL
// records (tables, secondary indexes, views) followed by each table's
// heap and statistics, in sorted table order. Callers hold the
// transaction gate exclusively.
func (s *Store) encodeImage() []byte {
	buf := []byte{imageVersion}
	buf = binary.AppendUvarint(buf, s.nextTx.Load())

	tables := s.cat.Tables()
	views := s.cat.Views()

	// DDL section.
	var ddl []byte
	nddl := 0
	for _, def := range tables {
		ddl = wal.AppendRecord(ddl, &wal.Record{Op: wal.OpCreateTable, TableDef: defToWAL(def)})
		nddl++
		for _, idx := range def.Indexes {
			if isAutoPKIndex(def, idx) {
				continue
			}
			ddl = wal.AppendRecord(ddl, &wal.Record{Op: wal.OpCreateIndex, IndexDef: &wal.IndexDef{
				Name: idx.Name, Table: idx.Table, Columns: idx.Columns,
				Kind: uint8(idx.Kind), Unique: idx.Unique,
			}})
			nddl++
		}
	}
	for _, v := range views {
		ddl = wal.AppendRecord(ddl, &wal.Record{Op: wal.OpCreateView, Name: v.Name, Text: v.Text, IsXNF: v.IsXNF})
		nddl++
	}
	buf = binary.AppendUvarint(buf, uint64(nddl))
	buf = append(buf, ddl...)

	// Heap section, in the same sorted order as the DDL section's tables.
	for _, def := range tables {
		s.mu.RLock()
		td := s.tables[key(def.Name)]
		s.mu.RUnlock()
		buf = td.encodeHeap(buf)
	}
	return buf
}

// resetState wipes the store and catalog back to empty in place (both are
// shared by reference with the engine, so neither can be reallocated).
// Recovery calls it between checkpoint-load attempts.
func (s *Store) resetState() {
	s.mu.Lock()
	s.tables = make(map[string]*TableData)
	s.mu.Unlock()
	s.cat.Reset()
	s.nextTx.Store(0)
}

// loadImage rebuilds the store from a checkpoint payload: the DDL
// section replays through the normal entry points, then each table's
// heap replaces the empty one and its indexes decode in bulk.
func (s *Store) loadImage(payload []byte) error {
	if len(payload) < 1 || payload[0] < minImageVersion || payload[0] > imageVersion {
		return fmt.Errorf("storage: unsupported checkpoint image version")
	}
	buf := payload[1:]
	nextTx, k := binary.Uvarint(buf)
	if k <= 0 {
		return fmt.Errorf("storage: bad checkpoint header")
	}
	buf = buf[k:]
	s.nextTx.Store(nextTx)

	nddl, k := binary.Uvarint(buf)
	if k <= 0 {
		return fmt.Errorf("storage: bad checkpoint DDL count")
	}
	buf = buf[k:]
	for i := uint64(0); i < nddl; i++ {
		r, rest, err := wal.DecodeRecord(buf)
		if err != nil {
			return err
		}
		if err := s.applyDDL(r); err != nil {
			return err
		}
		buf = rest
	}

	for _, def := range s.cat.Tables() {
		td, err := s.Table(def.Name)
		if err != nil {
			return err
		}
		if buf, err = td.decodeHeap(buf); err != nil {
			return fmt.Errorf("storage: table %s heap: %w", def.Name, err)
		}
	}
	if len(buf) != 0 {
		return fmt.Errorf("storage: %d trailing bytes in checkpoint image", len(buf))
	}
	return nil
}

// encodeHeap appends the table's physical heap and statistics.
func (t *TableData) encodeHeap(buf []byte) []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	buf = append(buf, byte(t.heap.kind()))
	switch h := t.heap.(type) {
	case *colHeap:
		buf = colstore.EncodeTable(buf, h.t)
	case *slotHeap:
		buf = binary.AppendUvarint(buf, uint64(len(h.rows)))
		for _, r := range h.rows {
			if r == nil {
				buf = append(buf, 0)
			} else {
				buf = append(buf, 1)
				buf = types.AppendBinaryRow(buf, r)
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(t.live))
	cards := make([]uint64, len(t.def.Columns))
	for i, c := range t.def.Columns {
		cards[i] = uint64(t.def.Cardinality(c.Name))
	}
	for _, card := range cards {
		buf = binary.AppendUvarint(buf, card)
	}

	// Index payloads, in catalog definition order. Persisting them makes
	// restore a bulk decode; rebuilding by scanning the heap boxed every
	// row and dominated recovery time on large tables.
	buf = binary.AppendUvarint(buf, uint64(len(t.def.Indexes)))
	for _, idef := range t.def.Indexes {
		buf = appendIndex(buf, t.indexes[key(idef.Name)])
	}
	return buf
}

// decodeHeap replaces the table's (empty) heap with the checkpointed one
// and restores its persisted index payloads.
func (t *TableData) decodeHeap(buf []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(buf) < 1 {
		return nil, fmt.Errorf("short heap header")
	}
	kind := catalog.StorageKind(buf[0])
	buf = buf[1:]
	switch kind {
	case catalog.ColumnStore:
		ct, rest, err := colstore.DecodeTable(buf)
		if err != nil {
			return nil, err
		}
		t.heap = &colHeap{t: ct}
		buf = rest
	case catalog.RowStore:
		n, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, fmt.Errorf("bad slot count")
		}
		buf = buf[k:]
		rows := make([]types.Row, n)
		for i := range rows {
			if len(buf) < 1 {
				return nil, fmt.Errorf("short slot")
			}
			present := buf[0] != 0
			buf = buf[1:]
			if !present {
				continue
			}
			var err error
			if rows[i], buf, err = types.DecodeBinaryRow(buf); err != nil {
				return nil, err
			}
		}
		t.heap = &slotHeap{rows: rows}
	default:
		return nil, fmt.Errorf("unknown heap kind %d", kind)
	}
	t.def.SetStorageKind(kind)

	live, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, fmt.Errorf("bad live count")
	}
	buf = buf[k:]
	t.live = int64(live)
	t.def.SetRowCount(t.live)
	for _, c := range t.def.Columns {
		card, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, fmt.Errorf("bad column cardinality")
		}
		buf = buf[k:]
		t.def.SetColCard(c.Name, int64(card))
	}

	// Restore the persisted index payloads (the DDL section built every
	// index over an empty heap; those throwaways are replaced here). The
	// absent marker — or a count mismatch against the replayed catalog —
	// falls back to rebuilding from the heap.
	nidx, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, fmt.Errorf("bad index count")
	}
	buf = buf[k:]
	if nidx != uint64(len(t.def.Indexes)) {
		return nil, fmt.Errorf("checkpoint has %d indexes, catalog has %d", nidx, len(t.def.Indexes))
	}
	t.indexes = make(map[string]index, nidx)
	for _, idef := range t.def.Indexes {
		ords, err := t.indexOrds(idef)
		if err != nil {
			return nil, err
		}
		idx, rest, err := decodeIndex(buf, ords)
		if err != nil {
			return nil, fmt.Errorf("index %s: %w", idef.Name, err)
		}
		buf = rest
		if idx == nil {
			if err := t.buildIndex(idef); err != nil {
				return nil, err
			}
			continue
		}
		t.indexes[key(idef.Name)] = idx
	}
	return buf, nil
}
