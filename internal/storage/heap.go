package storage

import (
	"xnf/internal/catalog"
	"xnf/internal/colstore"
	"xnf/internal/types"
)

// rowHeap abstracts the physical row representation of one table so
// TableData can keep rows either row-major (slot array) or column-major
// (colstore segments) behind one API. Implementations do no locking —
// TableData's mutex guards every call — and RIDs are stable slot numbers
// in both representations, so indexes survive a representation switch.
type rowHeap interface {
	// slots returns the physical slot count (live + deleted).
	slots() int
	// get decodes the live row at rid (false for holes/out of range).
	get(rid RID) (types.Row, bool)
	// live reports whether rid holds a live row, without decoding it.
	live(rid RID) bool
	// append stores a row in a fresh slot.
	append(row types.Row) RID
	// set overwrites the live row at rid.
	set(rid RID, row types.Row)
	// clear tombstones the slot at rid.
	clear(rid RID)
	// restore revives a deleted slot (transaction rollback), extending the
	// heap with holes if rid lies past the end.
	restore(rid RID, row types.Row)
	// scan visits every live row in slot order until fn returns false.
	scan(fn func(rid RID, row types.Row) bool)
	// kind reports which representation this heap is.
	kind() catalog.StorageKind
}

// --- row-major heap (slot array) ---

// slotHeap is the classic heap: a slot array of rows where deleted slots
// are nil. Slot order is insertion order, which gives deterministic scans.
type slotHeap struct {
	rows []types.Row
}

func (h *slotHeap) slots() int { return len(h.rows) }

func (h *slotHeap) get(rid RID) (types.Row, bool) {
	if rid < 0 || int(rid) >= len(h.rows) || h.rows[rid] == nil {
		return nil, false
	}
	return h.rows[rid], true
}

func (h *slotHeap) live(rid RID) bool {
	return rid >= 0 && int(rid) < len(h.rows) && h.rows[rid] != nil
}

func (h *slotHeap) append(row types.Row) RID {
	h.rows = append(h.rows, row)
	return RID(len(h.rows) - 1)
}

func (h *slotHeap) set(rid RID, row types.Row) { h.rows[rid] = row }

func (h *slotHeap) clear(rid RID) { h.rows[rid] = nil }

func (h *slotHeap) restore(rid RID, row types.Row) {
	for int(rid) >= len(h.rows) {
		h.rows = append(h.rows, nil)
	}
	h.rows[rid] = row
}

func (h *slotHeap) scan(fn func(rid RID, row types.Row) bool) {
	for i, r := range h.rows {
		if r == nil {
			continue
		}
		if !fn(RID(i), r) {
			return
		}
	}
}

func (h *slotHeap) kind() catalog.StorageKind { return catalog.RowStore }

// --- column-major heap (colstore segments) ---

// colHeap adapts a colstore.Table to the heap protocol.
type colHeap struct {
	t *colstore.Table
}

func (h *colHeap) slots() int { return h.t.Slots() }

func (h *colHeap) get(rid RID) (types.Row, bool) {
	return h.t.Get(int(rid))
}

func (h *colHeap) live(rid RID) bool { return rid >= 0 && h.t.Live(int(rid)) }

func (h *colHeap) append(row types.Row) RID { return RID(h.t.Append(row)) }

func (h *colHeap) set(rid RID, row types.Row) { h.t.Set(int(rid), row) }

func (h *colHeap) clear(rid RID) { h.t.Delete(int(rid)) }

func (h *colHeap) restore(rid RID, row types.Row) { h.t.Restore(int(rid), row) }

func (h *colHeap) scan(fn func(rid RID, row types.Row) bool) {
	h.t.Scan(func(slot int, row types.Row) bool { return fn(RID(slot), row) })
}

func (h *colHeap) kind() catalog.StorageKind { return catalog.ColumnStore }

// colTypes extracts the declared column types of a table definition.
func colTypes(def *catalog.Table) []types.Type {
	typs := make([]types.Type, len(def.Columns))
	for i, c := range def.Columns {
		typs[i] = c.Type
	}
	return typs
}

// newHeap builds an empty heap of the given kind.
func newHeap(def *catalog.Table, kind catalog.StorageKind) rowHeap {
	if kind == catalog.ColumnStore {
		return &colHeap{t: colstore.New(colTypes(def))}
	}
	return &slotHeap{}
}

// convertHeap rebuilds src in the target representation, preserving slot
// numbers (deleted slots stay deleted) so RIDs and indexes remain valid.
func convertHeap(def *catalog.Table, src rowHeap, kind catalog.StorageKind) rowHeap {
	if src.kind() == kind {
		return src
	}
	slots := make([]types.Row, src.slots())
	src.scan(func(rid RID, row types.Row) bool {
		slots[rid] = row
		return true
	})
	if kind == catalog.ColumnStore {
		return &colHeap{t: colstore.FromRows(colTypes(def), slots)}
	}
	return &slotHeap{rows: slots}
}
