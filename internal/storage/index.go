package storage

import (
	"encoding/binary"
	"fmt"
	"sort"

	"xnf/internal/types"
)

// index is the common interface of the physical index structures.
type index interface {
	insert(row types.Row, rid RID)
	remove(row types.Row, rid RID)
	// lookup returns candidate RIDs for an exact key match. Hash indexes
	// may return hash-collision false positives; callers re-check.
	lookup(key types.Row) []RID
}

// hashIndex buckets RIDs by the hash of the key columns.
type hashIndex struct {
	ords    []int
	buckets map[uint64][]RID
}

func newHashIndex(ords []int) *hashIndex {
	return &hashIndex{ords: ords, buckets: make(map[uint64][]RID)}
}

// newHashIndexCap presizes the bucket map for a bulk rebuild over a table
// of known row count (checkpoint restore, storage conversion), skipping the
// incremental map growth an empty-start build pays.
func newHashIndexCap(ords []int, n int) *hashIndex {
	return &hashIndex{ords: ords, buckets: make(map[uint64][]RID, n)}
}

func (h *hashIndex) keyHash(row types.Row) uint64 { return row.Hash(h.ords) }

func (h *hashIndex) insert(row types.Row, rid RID) {
	k := h.keyHash(row)
	h.buckets[k] = append(h.buckets[k], rid)
}

func (h *hashIndex) remove(row types.Row, rid RID) {
	k := h.keyHash(row)
	bucket := h.buckets[k]
	for i, r := range bucket {
		if r == rid {
			bucket[i] = bucket[len(bucket)-1]
			h.buckets[k] = bucket[:len(bucket)-1]
			return
		}
	}
}

func (h *hashIndex) lookup(key types.Row) []RID {
	ords := make([]int, len(key))
	for i := range key {
		ords[i] = i
	}
	return h.buckets[key.Hash(ords)]
}

// orderedIndex keeps (key, rid) entries sorted; maintenance is lazy — bulk
// loads append and the structure re-sorts on the first read after a write,
// which keeps index builds linear-ish instead of quadratic.
type orderedIndex struct {
	ords    []int
	entries []orderedEntry
	dirty   bool
}

type orderedEntry struct {
	key types.Row
	rid RID
}

func newOrderedIndex(ords []int) *orderedIndex { return &orderedIndex{ords: ords} }

func (o *orderedIndex) keyOf(row types.Row) types.Row {
	k := make(types.Row, len(o.ords))
	for i, ord := range o.ords {
		k[i] = row[ord]
	}
	return k
}

func (o *orderedIndex) insert(row types.Row, rid RID) {
	o.entries = append(o.entries, orderedEntry{key: o.keyOf(row), rid: rid})
	o.dirty = true
}

func (o *orderedIndex) remove(row types.Row, rid RID) {
	for i := range o.entries {
		if o.entries[i].rid == rid {
			o.entries = append(o.entries[:i], o.entries[i+1:]...)
			return
		}
	}
}

func (o *orderedIndex) ensureSorted() {
	if !o.dirty {
		return
	}
	all := make([]int, len(o.ords))
	for i := range all {
		all[i] = i
	}
	sort.SliceStable(o.entries, func(i, j int) bool {
		return types.CompareRows(o.entries[i].key, o.entries[j].key, all, nil) < 0
	})
	o.dirty = false
}

func (o *orderedIndex) lookup(key types.Row) []RID {
	o.ensureSorted()
	all := make([]int, len(key))
	for i := range all {
		all[i] = i
	}
	lo := sort.Search(len(o.entries), func(i int) bool {
		return types.CompareRows(o.entries[i].key, key, all, nil) >= 0
	})
	var out []RID
	for i := lo; i < len(o.entries); i++ {
		if types.CompareRows(o.entries[i].key, key, all, nil) != 0 {
			break
		}
		out = append(out, o.entries[i].rid)
	}
	return out
}

// --- checkpoint codec ---
//
// Checkpoint images persist the physical index payloads so restore is a
// bulk decode instead of a per-row rebuild over the heap (the rebuild's
// row boxing and incremental map growth dominated restore time). The
// index kind and key ordinals are not encoded — both are derived from
// the catalog definition, which the image's DDL section replays first.

const (
	idxPayloadHash    = 0
	idxPayloadOrdered = 1
	idxPayloadAbsent  = 2 // not built; restore falls back to a heap scan
)

// appendIndex serializes one physical index payload.
func appendIndex(buf []byte, idx index) []byte {
	switch h := idx.(type) {
	case nil:
		return append(buf, idxPayloadAbsent)
	case *hashIndex:
		buf = append(buf, idxPayloadHash)
		total := 0
		for _, b := range h.buckets {
			total += len(b)
		}
		buf = binary.AppendUvarint(buf, uint64(total))
		buf = binary.AppendUvarint(buf, uint64(len(h.buckets)))
		for hash, bucket := range h.buckets {
			buf = binary.LittleEndian.AppendUint64(buf, hash)
			buf = binary.AppendUvarint(buf, uint64(len(bucket)))
			for _, rid := range bucket {
				buf = binary.AppendUvarint(buf, uint64(rid))
			}
		}
		return buf
	case *orderedIndex:
		buf = append(buf, idxPayloadOrdered)
		if h.dirty {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(h.entries)))
		for _, e := range h.entries {
			buf = types.AppendBinaryRow(buf, e.key)
			buf = binary.AppendUvarint(buf, uint64(e.rid))
		}
		return buf
	}
	panic("storage: unknown index type")
}

// decodeIndex deserializes one index payload; a nil index with nil error
// means the payload was the absent marker and the caller must rebuild
// from the heap. ords comes from the catalog definition. All counts are
// bounded against the remaining payload before allocation, so a damaged
// image fails cleanly.
func decodeIndex(buf []byte, ords []int) (index, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("short index payload")
	}
	kind := buf[0]
	buf = buf[1:]
	switch kind {
	case idxPayloadAbsent:
		return nil, buf, nil
	case idxPayloadHash:
		total, k := binary.Uvarint(buf)
		if k <= 0 || total > uint64(len(buf)) {
			return nil, nil, fmt.Errorf("bad index rid total")
		}
		buf = buf[k:]
		nbuckets, k := binary.Uvarint(buf)
		// Each bucket costs at least 9 bytes (hash + count).
		if k <= 0 || nbuckets > uint64(len(buf))/9+1 {
			return nil, nil, fmt.Errorf("bad index bucket count")
		}
		buf = buf[k:]
		h := &hashIndex{ords: ords, buckets: make(map[uint64][]RID, nbuckets)}
		// One backing array for every bucket: restore costs O(1) allocations
		// instead of one per bucket. Buckets are cap-limited sub-slices, so
		// a later insert into one bucket reallocates rather than clobbering
		// its neighbor.
		backing := make([]RID, 0, total)
		for i := uint64(0); i < nbuckets; i++ {
			if len(buf) < 8 {
				return nil, nil, fmt.Errorf("short index bucket")
			}
			hash := binary.LittleEndian.Uint64(buf)
			buf = buf[8:]
			cnt, k := binary.Uvarint(buf)
			if k <= 0 || cnt > uint64(len(buf)) {
				return nil, nil, fmt.Errorf("bad index bucket size")
			}
			buf = buf[k:]
			start := len(backing)
			for j := uint64(0); j < cnt; j++ {
				rid, k := binary.Uvarint(buf)
				if k <= 0 {
					return nil, nil, fmt.Errorf("bad index rid")
				}
				buf = buf[k:]
				backing = append(backing, RID(rid))
			}
			h.buckets[hash] = backing[start:len(backing):len(backing)]
		}
		return h, buf, nil
	case idxPayloadOrdered:
		if len(buf) < 1 {
			return nil, nil, fmt.Errorf("short index dirty flag")
		}
		dirty := buf[0] != 0
		buf = buf[1:]
		n, k := binary.Uvarint(buf)
		if k <= 0 || n > uint64(len(buf)) {
			return nil, nil, fmt.Errorf("bad index entry count")
		}
		buf = buf[k:]
		o := &orderedIndex{ords: ords, entries: make([]orderedEntry, 0, n), dirty: dirty}
		for i := uint64(0); i < n; i++ {
			key, rest, err := types.DecodeBinaryRow(buf)
			if err != nil {
				return nil, nil, fmt.Errorf("index entry key: %w", err)
			}
			buf = rest
			rid, k := binary.Uvarint(buf)
			if k <= 0 {
				return nil, nil, fmt.Errorf("bad index entry rid")
			}
			buf = buf[k:]
			o.entries = append(o.entries, orderedEntry{key: key, rid: RID(rid)})
		}
		return o, buf, nil
	}
	return nil, nil, fmt.Errorf("unknown index payload kind %d", kind)
}

// rangeLookup returns RIDs whose leading key column is within [lo, hi];
// a NULL bound means unbounded on that side.
func (o *orderedIndex) rangeLookup(lo, hi types.Value) []RID {
	o.ensureSorted()
	start := 0
	if !lo.IsNull() {
		start = sort.Search(len(o.entries), func(i int) bool {
			return types.Compare(o.entries[i].key[0], lo) >= 0
		})
	}
	var out []RID
	for i := start; i < len(o.entries); i++ {
		if !hi.IsNull() && types.Compare(o.entries[i].key[0], hi) > 0 {
			break
		}
		out = append(out, o.entries[i].rid)
	}
	return out
}
