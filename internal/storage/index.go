package storage

import (
	"sort"

	"xnf/internal/types"
)

// index is the common interface of the physical index structures.
type index interface {
	insert(row types.Row, rid RID)
	remove(row types.Row, rid RID)
	// lookup returns candidate RIDs for an exact key match. Hash indexes
	// may return hash-collision false positives; callers re-check.
	lookup(key types.Row) []RID
}

// hashIndex buckets RIDs by the hash of the key columns.
type hashIndex struct {
	ords    []int
	buckets map[uint64][]RID
}

func newHashIndex(ords []int) *hashIndex {
	return &hashIndex{ords: ords, buckets: make(map[uint64][]RID)}
}

func (h *hashIndex) keyHash(row types.Row) uint64 { return row.Hash(h.ords) }

func (h *hashIndex) insert(row types.Row, rid RID) {
	k := h.keyHash(row)
	h.buckets[k] = append(h.buckets[k], rid)
}

func (h *hashIndex) remove(row types.Row, rid RID) {
	k := h.keyHash(row)
	bucket := h.buckets[k]
	for i, r := range bucket {
		if r == rid {
			bucket[i] = bucket[len(bucket)-1]
			h.buckets[k] = bucket[:len(bucket)-1]
			return
		}
	}
}

func (h *hashIndex) lookup(key types.Row) []RID {
	ords := make([]int, len(key))
	for i := range key {
		ords[i] = i
	}
	return h.buckets[key.Hash(ords)]
}

// orderedIndex keeps (key, rid) entries sorted; maintenance is lazy — bulk
// loads append and the structure re-sorts on the first read after a write,
// which keeps index builds linear-ish instead of quadratic.
type orderedIndex struct {
	ords    []int
	entries []orderedEntry
	dirty   bool
}

type orderedEntry struct {
	key types.Row
	rid RID
}

func newOrderedIndex(ords []int) *orderedIndex { return &orderedIndex{ords: ords} }

func (o *orderedIndex) keyOf(row types.Row) types.Row {
	k := make(types.Row, len(o.ords))
	for i, ord := range o.ords {
		k[i] = row[ord]
	}
	return k
}

func (o *orderedIndex) insert(row types.Row, rid RID) {
	o.entries = append(o.entries, orderedEntry{key: o.keyOf(row), rid: rid})
	o.dirty = true
}

func (o *orderedIndex) remove(row types.Row, rid RID) {
	for i := range o.entries {
		if o.entries[i].rid == rid {
			o.entries = append(o.entries[:i], o.entries[i+1:]...)
			return
		}
	}
}

func (o *orderedIndex) ensureSorted() {
	if !o.dirty {
		return
	}
	all := make([]int, len(o.ords))
	for i := range all {
		all[i] = i
	}
	sort.SliceStable(o.entries, func(i, j int) bool {
		return types.CompareRows(o.entries[i].key, o.entries[j].key, all, nil) < 0
	})
	o.dirty = false
}

func (o *orderedIndex) lookup(key types.Row) []RID {
	o.ensureSorted()
	all := make([]int, len(key))
	for i := range all {
		all[i] = i
	}
	lo := sort.Search(len(o.entries), func(i int) bool {
		return types.CompareRows(o.entries[i].key, key, all, nil) >= 0
	})
	var out []RID
	for i := lo; i < len(o.entries); i++ {
		if types.CompareRows(o.entries[i].key, key, all, nil) != 0 {
			break
		}
		out = append(out, o.entries[i].rid)
	}
	return out
}

// rangeLookup returns RIDs whose leading key column is within [lo, hi];
// a NULL bound means unbounded on that side.
func (o *orderedIndex) rangeLookup(lo, hi types.Value) []RID {
	o.ensureSorted()
	start := 0
	if !lo.IsNull() {
		start = sort.Search(len(o.entries), func(i int) bool {
			return types.Compare(o.entries[i].key[0], lo) >= 0
		})
	}
	var out []RID
	for i := start; i < len(o.entries); i++ {
		if !hi.IsNull() && types.Compare(o.entries[i].key[0], hi) > 0 {
			break
		}
		out = append(out, o.entries[i].rid)
	}
	return out
}
