package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"xnf/internal/catalog"
	"xnf/internal/colstore"
	"xnf/internal/faultfs"
	"xnf/internal/types"
	"xnf/internal/wal"
)

// buildCrashWindow builds a durable store whose directory looks like a
// crash between writing a new checkpoint and garbage-collecting the old
// one: two checkpoints (both with encoded column-store segments) plus the
// log files bridging them. Returns the expected final row set keyed by id.
func buildCrashWindow(t *testing.T, dir string, inj *faultfs.Injector) map[int64]string {
	t.Helper()
	want := make(map[int64]string)
	s := NewStore(catalog.New())
	if err := s.OpenDurable(dir, wal.Options{}); err != nil {
		t.Fatal(err)
	}
	err := s.CreateTable(&catalog.Table{
		Name: "T",
		Columns: []catalog.Column{
			{Name: "ID", Type: types.IntType, NotNull: true},
			{Name: "TAG", Type: types.StringType},
		},
		PrimaryKey: []string{"ID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetTableStorage("T", catalog.ColumnStore); err != nil {
		t.Fatal(err)
	}
	td, _ := s.Table("T")
	// Inserts go through committed transactions so the DML is WAL-logged:
	// rows added after a checkpoint must be replayable from the log.
	insert := func(lo, hi int64) {
		tx := s.Begin()
		for i := lo; i < hi; i++ {
			tag := fmt.Sprintf("tag%d", i%7)
			if _, err := tx.Insert("T", types.Row{types.NewInt(i), types.NewString(tag)}); err != nil {
				t.Fatal(err)
			}
			want[i] = tag
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	insert(0, colstore.SegRows+200)
	if err := s.Analyze("T"); err != nil { // Maintain: full segments encode
		t.Fatal(err)
	}
	if d, p := td.EncodedColumns(); d == 0 || p == 0 {
		t.Fatalf("expected encoded columns before checkpoint, dict=%d pack=%d", d, p)
	}
	if err := s.Checkpoint(); err != nil { // checkpoint A
		t.Fatal(err)
	}
	insert(colstore.SegRows+200, colstore.SegRows+300)

	// Checkpoint B: the snapshot lands, then old-file removal "crashes".
	inj.Add(faultfs.Rule{Op: faultfs.OpRemove, Path: dir, Mode: faultfs.Fail})
	if err := s.Checkpoint(); err == nil {
		t.Fatal("expected checkpoint GC to fail under the remove fault")
	}
	inj.Reset()
	insert(colstore.SegRows+300, colstore.SegRows+350)
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	ckpts, err := wal.ListCheckpoints(dir)
	if err != nil || len(ckpts) != 2 {
		t.Fatalf("want 2 checkpoints in the crash window, have %v (err=%v)", ckpts, err)
	}
	return want
}

// verifyRecovered reopens the directory and checks the full row set.
func verifyRecovered(t *testing.T, dir string, want map[int64]string) {
	t.Helper()
	s := NewStore(catalog.New())
	if err := s.OpenDurable(dir, wal.Options{}); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s.CloseDurability()
	td, err := s.Table("T")
	if err != nil {
		t.Fatalf("recovery lost the table: %v", err)
	}
	have := make(map[int64]string)
	td.Scan(func(rid RID, row types.Row) bool {
		have[row[0].I] = row[1].S
		return true
	})
	if len(have) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(have), len(want))
	}
	for id, tag := range want {
		if have[id] != tag {
			t.Fatalf("row %d recovered as %q, want %q", id, have[id], tag)
		}
	}
}

// newestCheckpointPath returns the path of the highest-sequence checkpoint.
func newestCheckpointPath(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no checkpoint files")
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1])
}

// TestRecoveryCheckpointReadFaultFallsBack injects a hard read error on
// the newest checkpoint file: open must fall back to the older checkpoint
// plus log replay and recover every committed row.
func TestRecoveryCheckpointReadFaultFallsBack(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, 1)
	prev := wal.SetFS(inj)
	defer wal.SetFS(prev)

	want := buildCrashWindow(t, dir, inj)
	newest := filepath.Base(newestCheckpointPath(t, dir))
	inj.Add(faultfs.Rule{Op: faultfs.OpRead, Path: newest, Mode: faultfs.Fail})
	verifyRecovered(t, dir, want)
	if inj.Injected() == 0 {
		t.Fatal("read fault never fired")
	}
}

// TestRecoveryCheckpointPartialReadFallsBack returns a silently truncated
// prefix of the newest checkpoint: the framing must reject it and open
// must fall back, never trust the short image.
func TestRecoveryCheckpointPartialReadFallsBack(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, 7)
	prev := wal.SetFS(inj)
	defer wal.SetFS(prev)

	want := buildCrashWindow(t, dir, inj)
	newest := filepath.Base(newestCheckpointPath(t, dir))
	inj.Add(faultfs.Rule{Op: faultfs.OpRead, Path: newest, Mode: faultfs.Partial})
	verifyRecovered(t, dir, want)
	if inj.Injected() == 0 {
		t.Fatal("partial-read fault never fired")
	}
}

// TestRecoveryImageDecodeFailureFallsBack corrupts the newest checkpoint
// payload while keeping its CRC frame valid, so the failure surfaces in
// the image decode (the colstore/segment layer), not the read: open must
// wipe the partial load and fall back to the older checkpoint.
func TestRecoveryImageDecodeFailureFallsBack(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, 3)
	prev := wal.SetFS(inj)
	defer wal.SetFS(prev)

	want := buildCrashWindow(t, dir, inj)

	// Rewrite the newest checkpoint with a poisoned version byte and a
	// recomputed CRC: the frame validates, loadImage rejects.
	path := newestCheckpointPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), data[8:]...)
	payload[0] = 99
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	out = append(out, payload...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	verifyRecovered(t, dir, want)
}

// TestRecoveryEncodedCheckpointRoundTrip is the no-fault baseline: a
// checkpoint image carrying encoded segments restores them still encoded,
// with identical rows.
func TestRecoveryEncodedCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, 5)
	prev := wal.SetFS(inj)
	defer wal.SetFS(prev)

	want := buildCrashWindow(t, dir, inj)
	verifyRecovered(t, dir, want)

	s := NewStore(catalog.New())
	if err := s.OpenDurable(dir, wal.Options{}); err != nil {
		t.Fatal(err)
	}
	defer s.CloseDurability()
	td, _ := s.Table("T")
	if d, p := td.EncodedColumns(); d == 0 || p == 0 {
		t.Fatalf("recovery dropped the encoded form, dict=%d pack=%d", d, p)
	}
}
