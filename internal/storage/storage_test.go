package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"xnf/internal/catalog"
	"xnf/internal/types"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(catalog.New())
	err := s.CreateTable(&catalog.Table{
		Name: "EMP",
		Columns: []catalog.Column{
			{Name: "ENO", Type: types.IntType, NotNull: true},
			{Name: "NAME", Type: types.StringType},
			{Name: "EDNO", Type: types.IntType},
			{Name: "SAL", Type: types.FloatType},
		},
		PrimaryKey: []string{"ENO"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func emp(eno int64, name string, dno int64, sal float64) types.Row {
	return types.Row{types.NewInt(eno), types.NewString(name), types.NewInt(dno), types.NewFloat(sal)}
}

func TestInsertGetScan(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("emp") // case-insensitive
	for i := int64(1); i <= 5; i++ {
		if _, err := td.Insert(emp(i, fmt.Sprintf("e%d", i), i%2, float64(i)*100)); err != nil {
			t.Fatal(err)
		}
	}
	if td.RowCount() != 5 {
		t.Fatalf("RowCount = %d", td.RowCount())
	}
	r, ok := td.Get(2)
	if !ok || r[0].I != 3 {
		t.Fatalf("Get(2) = %v, %v", r, ok)
	}
	var seen []int64
	td.Scan(func(rid RID, row types.Row) bool {
		seen = append(seen, row[0].I)
		return true
	})
	for i, v := range seen {
		if v != int64(i+1) {
			t.Fatalf("scan order broken: %v", seen)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("EMP")
	if _, err := td.Insert(types.Row{types.NewInt(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := td.Insert(types.Row{types.Null, types.NewString("x"), types.NewInt(1), types.NewFloat(0)}); err == nil {
		t.Error("NOT NULL violation should fail")
	}
	if _, err := td.Insert(types.Row{types.NewString("x"), types.NewString("x"), types.NewInt(1), types.NewFloat(0)}); err == nil {
		t.Error("type mismatch should fail")
	}
	// int → float coercion on SAL
	rid, err := td.Insert(types.Row{types.NewInt(1), types.NewString("a"), types.NewInt(1), types.NewInt(500)})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := td.Get(rid)
	if r[3].T != types.FloatType || r[3].F != 500 {
		t.Errorf("coercion failed: %v", r[3])
	}
	// duplicate PK
	if _, err := td.Insert(emp(1, "dup", 2, 1)); err == nil {
		t.Error("duplicate PK should fail")
	}
}

func TestUpdateDelete(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("EMP")
	rid, _ := td.Insert(emp(1, "a", 1, 100))
	rid2, _ := td.Insert(emp(2, "b", 1, 200))

	old, err := td.Update(rid, emp(1, "a2", 2, 150))
	if err != nil {
		t.Fatal(err)
	}
	if old[1].S != "a" {
		t.Errorf("old image = %v", old)
	}
	r, _ := td.Get(rid)
	if r[1].S != "a2" {
		t.Errorf("update not applied: %v", r)
	}
	// PK collision on update
	if _, err := td.Update(rid, emp(2, "x", 1, 1)); err == nil {
		t.Error("update to duplicate PK should fail")
	}
	// Update keeping same PK is fine.
	if _, err := td.Update(rid2, emp(2, "b2", 3, 250)); err != nil {
		t.Fatal(err)
	}

	if _, err := td.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, ok := td.Get(rid); ok {
		t.Error("deleted row still visible")
	}
	if td.RowCount() != 1 {
		t.Errorf("RowCount = %d", td.RowCount())
	}
	if _, err := td.Delete(rid); err == nil {
		t.Error("double delete should fail")
	}
	// PK slot is free again after delete.
	if _, err := td.Insert(emp(1, "anew", 1, 1)); err != nil {
		t.Errorf("reinsert after delete: %v", err)
	}
}

func TestPKIndexLookup(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("EMP")
	for i := int64(1); i <= 100; i++ {
		td.Insert(emp(i, "e", i%7, 0))
	}
	rids, err := td.IndexLookup("EMP_PK", types.Row{types.NewInt(42)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 {
		t.Fatalf("lookup returned %d rids", len(rids))
	}
	r, _ := td.Get(rids[0])
	if r[0].I != 42 {
		t.Errorf("wrong row: %v", r)
	}
}

func TestSecondaryIndexes(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("EMP")
	for i := int64(1); i <= 50; i++ {
		td.Insert(emp(i, fmt.Sprintf("e%d", i), i%5, float64(i)))
	}
	if err := s.CreateIndex(&catalog.Index{
		Name: "EMP_DNO", Table: "EMP", Columns: []string{"EDNO"}, Kind: catalog.HashIndex,
	}); err != nil {
		t.Fatal(err)
	}
	rids, err := td.IndexLookup("EMP_DNO", types.Row{types.NewInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 10 {
		t.Fatalf("dno=3 should have 10 rows, got %d", len(rids))
	}

	if err := s.CreateIndex(&catalog.Index{
		Name: "EMP_SAL", Table: "EMP", Columns: []string{"SAL"}, Kind: catalog.OrderedIndex,
	}); err != nil {
		t.Fatal(err)
	}
	rids, err = td.IndexRange("EMP_SAL", types.NewFloat(10), types.NewFloat(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 3 {
		t.Fatalf("range [10,12] should have 3 rows, got %d", len(rids))
	}
	// Index maintenance across update/delete.
	ridsAll, _ := td.IndexLookup("EMP_DNO", types.Row{types.NewInt(0)})
	victim := ridsAll[0]
	td.Update(victim, emp(1000, "moved", 3, 999))
	rids, _ = td.IndexLookup("EMP_DNO", types.Row{types.NewInt(3)})
	if len(rids) != 11 {
		t.Fatalf("after move dno=3 should have 11 rows, got %d", len(rids))
	}
	td.Delete(victim)
	rids, _ = td.IndexLookup("EMP_DNO", types.Row{types.NewInt(3)})
	if len(rids) != 10 {
		t.Fatalf("after delete dno=3 should have 10 rows, got %d", len(rids))
	}
	// Range over ordered index sees the update.
	rids, _ = td.IndexRange("EMP_SAL", types.NewFloat(998), types.Null)
	if len(rids) != 0 {
		t.Fatalf("deleted row should not appear in range, got %d", len(rids))
	}
}

func TestIndexRangeUnbounded(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("EMP")
	for i := int64(1); i <= 10; i++ {
		td.Insert(emp(i, "e", 0, float64(i)))
	}
	s.CreateIndex(&catalog.Index{Name: "I", Table: "EMP", Columns: []string{"SAL"}, Kind: catalog.OrderedIndex})
	lo, _ := td.IndexRange("I", types.NewFloat(8), types.Null)
	if len(lo) != 3 {
		t.Errorf("sal >= 8: %d", len(lo))
	}
	hi, _ := td.IndexRange("I", types.Null, types.NewFloat(2))
	if len(hi) != 2 {
		t.Errorf("sal <= 2: %d", len(hi))
	}
	all, _ := td.IndexRange("I", types.Null, types.Null)
	if len(all) != 10 {
		t.Errorf("unbounded: %d", len(all))
	}
}

func TestTransactions(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("EMP")
	td.Insert(emp(1, "keep", 1, 100))

	tx := s.Begin()
	rid2, err := tx.Insert("EMP", emp(2, "new", 1, 200))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("EMP", 0, emp(1, "changed", 2, 111)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("EMP", rid2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if td.RowCount() != 1 {
		t.Fatalf("RowCount after rollback = %d", td.RowCount())
	}
	r, _ := td.Get(0)
	if r[1].S != "keep" {
		t.Errorf("rollback did not restore: %v", r)
	}
	if err := tx.Commit(); err == nil {
		t.Error("finished tx should reject commit")
	}

	tx2 := s.Begin()
	tx2.Insert("EMP", emp(3, "c", 1, 1))
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if td.RowCount() != 2 {
		t.Errorf("commit lost rows: %d", td.RowCount())
	}
}

func TestTxRollbackRestoresPKIndex(t *testing.T) {
	s := testStore(t)
	tx := s.Begin()
	tx.Insert("EMP", emp(7, "x", 1, 1))
	tx.Rollback()
	td, _ := s.Table("EMP")
	// PK 7 must be insertable again and findable through the index.
	if _, err := td.Insert(emp(7, "y", 1, 1)); err != nil {
		t.Fatal(err)
	}
	rids, _ := td.IndexLookup("EMP_PK", types.Row{types.NewInt(7)})
	if len(rids) != 1 {
		t.Fatalf("PK index inconsistent after rollback: %d entries", len(rids))
	}
}

func TestAnalyze(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("EMP")
	for i := int64(1); i <= 20; i++ {
		td.Insert(emp(i, "same", i%4, 0))
	}
	if err := s.Analyze("EMP"); err != nil {
		t.Fatal(err)
	}
	def := td.Def()
	if def.Cardinality("ENO") != 20 {
		t.Errorf("ENO cardinality = %d", def.Cardinality("ENO"))
	}
	if def.Cardinality("EDNO") != 4 {
		t.Errorf("EDNO cardinality = %d", def.Cardinality("EDNO"))
	}
	if def.Cardinality("NAME") != 1 {
		t.Errorf("NAME cardinality = %d", def.Cardinality("NAME"))
	}
	if def.Stats.RowCount != 20 {
		t.Errorf("RowCount stat = %d", def.Stats.RowCount)
	}
}

func TestDropTable(t *testing.T) {
	s := testStore(t)
	if err := s.DropTable("EMP"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Table("EMP"); err == nil {
		t.Error("dropped table still accessible")
	}
	if err := s.DropTable("EMP"); err == nil {
		t.Error("double drop should fail")
	}
}

// Property: after a random sequence of inserts/updates/deletes, a full scan
// and the PK index agree exactly.
func TestScanIndexConsistencyRandomOps(t *testing.T) {
	s := testStore(t)
	td, _ := s.Table("EMP")
	r := rand.New(rand.NewSource(42))
	alive := make(map[int64]RID)
	nextPK := int64(1)
	for op := 0; op < 3000; op++ {
		switch r.Intn(3) {
		case 0:
			rid, err := td.Insert(emp(nextPK, "n", r.Int63n(10), 0))
			if err != nil {
				t.Fatal(err)
			}
			alive[nextPK] = rid
			nextPK++
		case 1:
			if len(alive) == 0 {
				continue
			}
			for pk, rid := range alive {
				if _, err := td.Update(rid, emp(pk, "u", r.Int63n(10), float64(op))); err != nil {
					t.Fatal(err)
				}
				break
			}
		case 2:
			if len(alive) == 0 {
				continue
			}
			for pk, rid := range alive {
				if _, err := td.Delete(rid); err != nil {
					t.Fatal(err)
				}
				delete(alive, pk)
				break
			}
		}
	}
	count := 0
	td.Scan(func(rid RID, row types.Row) bool {
		count++
		rids, err := td.IndexLookup("EMP_PK", types.Row{row[0]})
		if err != nil || len(rids) != 1 || rids[0] != rid {
			t.Fatalf("index disagrees for pk %v: %v %v", row[0], rids, err)
		}
		return true
	})
	if count != len(alive) {
		t.Fatalf("scan saw %d rows, expected %d", count, len(alive))
	}
	if td.RowCount() != int64(len(alive)) {
		t.Fatalf("RowCount %d != %d", td.RowCount(), len(alive))
	}
}
