// Package storage is the data manager (the paper's CORE analog): in-memory
// heap tables addressed by row identifiers, hash and ordered secondary
// indexes, statistics maintenance, and transactions with an undo log.
// The query compiler never touches storage directly; the executor reads
// through table handles obtained here.
package storage

import (
	"fmt"
	"sync"

	"xnf/internal/catalog"
	"xnf/internal/colstore"
	"xnf/internal/types"
)

// RID identifies a row within its table (slot number in the heap).
type RID int64

// Store owns the physical data for every table in one database.
type Store struct {
	mu     sync.RWMutex
	cat    *catalog.Catalog
	tables map[string]*TableData
}

// NewStore creates an empty store bound to a catalog.
func NewStore(cat *catalog.Catalog) *Store {
	return &Store{cat: cat, tables: make(map[string]*TableData)}
}

// Catalog returns the catalog the store is bound to.
func (s *Store) Catalog() *catalog.Catalog { return s.cat }

// CreateTable registers the definition in the catalog and allocates the heap.
func (s *Store) CreateTable(def *catalog.Table) error {
	if err := s.cat.CreateTable(def); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	td := newTableData(def)
	// A primary key implies a unique hash index for constraint checking
	// and optimizer use.
	if len(def.PrimaryKey) > 0 {
		idx := &catalog.Index{
			Name:    def.Name + "_PK",
			Table:   def.Name,
			Columns: def.PrimaryKey,
			Kind:    catalog.HashIndex,
			Unique:  true,
		}
		def.Indexes = append(def.Indexes, idx)
		td.buildIndex(idx)
	}
	s.tables[key(def.Name)] = td
	return nil
}

// DropTable removes a table and its data.
func (s *Store) DropTable(name string) error {
	if err := s.cat.DropTable(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.tables, key(name))
	return nil
}

// Table returns the physical table handle.
func (s *Store) Table(name string) (*TableData, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	td, ok := s.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("storage: table %s does not exist", name)
	}
	return td, nil
}

// CreateIndex builds a secondary index over existing data.
func (s *Store) CreateIndex(idx *catalog.Index) error {
	td, err := s.Table(idx.Table)
	if err != nil {
		return err
	}
	if err := s.cat.AddIndex(idx); err != nil {
		return err
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	return td.buildIndex(idx)
}

// Analyze recomputes the distinct-value statistics for a table's columns.
// It also drives the colstore auto-promotion heuristic: a row-major table
// whose fresh live row count crosses the configured threshold is switched
// to columnar storage in the same pass (the row count that justifies
// columnar scans is exactly what ANALYZE just measured).
func (s *Store) Analyze(name string) error {
	td, err := s.Table(name)
	if err != nil {
		return err
	}
	td.mu.Lock()
	seen := make([]map[uint64]struct{}, len(td.def.Columns))
	for i := range seen {
		seen[i] = make(map[uint64]struct{})
	}
	td.heap.scan(func(_ RID, r types.Row) bool {
		for i := range seen {
			seen[i][r[i].Hash()] = struct{}{}
		}
		return true
	})
	for i, col := range td.def.Columns {
		td.def.SetColCard(col.Name, int64(len(seen[i])))
	}
	if ch, ok := td.heap.(*colHeap); ok {
		// Column tables piggyback physical maintenance on the stats walk:
		// exact zone maps for segment pruning, and compaction of segments
		// whose every slot is deleted (payload freed, slot space kept).
		ch.t.Maintain()
	}
	promote := td.heap.kind() == catalog.RowStore && colstore.AutoPromote(td.live)
	td.mu.Unlock()
	if promote {
		td.SetStorage(catalog.ColumnStore)
	}
	// Fresh statistics can change plan choices; stale compiled plans must
	// not outlive them.
	s.cat.BumpVersion()
	return nil
}

// SetTableStorage switches a table's physical representation (ALTER TABLE
// … SET STORAGE). RIDs and indexes are preserved; the catalog version is
// bumped so compiled plans re-decide their scan strategy.
func (s *Store) SetTableStorage(name string, kind catalog.StorageKind) error {
	td, err := s.Table(name)
	if err != nil {
		return err
	}
	td.SetStorage(kind)
	s.cat.BumpVersion()
	return nil
}

// AnalyzeAll runs Analyze over every table. A table dropped concurrently
// between the catalog snapshot and the walk is skipped, not an error — a
// whole-database ANALYZE racing DDL analyzes whatever still exists.
func (s *Store) AnalyzeAll() error {
	for _, t := range s.cat.Tables() {
		if err := s.Analyze(t.Name); err != nil {
			if _, stillThere := s.cat.Table(t.Name); !stillThere {
				continue
			}
			return err
		}
	}
	return nil
}

func key(name string) string {
	// Identifier lookup is case-insensitive throughout the engine.
	b := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		b[i] = c
	}
	return string(b)
}
