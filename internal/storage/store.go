// Package storage is the data manager (the paper's CORE analog): in-memory
// heap tables addressed by row identifiers, hash and ordered secondary
// indexes, statistics maintenance, and transactions with an undo log.
// The query compiler never touches storage directly; the executor reads
// through table handles obtained here.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xnf/internal/catalog"
	"xnf/internal/colstore"
	"xnf/internal/wal"
)

// RID identifies a row within its table (slot number in the heap).
type RID int64

// Store owns the physical data for every table in one database.
type Store struct {
	mu     sync.RWMutex
	cat    *catalog.Catalog
	tables map[string]*TableData

	// txGate linearizes transactions against DDL and checkpoints when a
	// WAL is attached: transactions hold it in read mode from Begin
	// through Commit/Rollback (so their memory effects and log records
	// are one atomic unit from the gate's perspective), DDL and
	// checkpoints take it exclusively. Without a WAL the gate is unused —
	// in-memory behavior is unchanged.
	txGate sync.RWMutex
	dur    atomic.Pointer[durability]
	nextTx atomic.Uint64
}

// NewStore creates an empty store bound to a catalog.
func NewStore(cat *catalog.Catalog) *Store {
	return &Store{cat: cat, tables: make(map[string]*TableData)}
}

// Catalog returns the catalog the store is bound to.
func (s *Store) Catalog() *catalog.Catalog { return s.cat }

// ddlGate takes the transaction gate exclusively while a WAL is
// attached, so a DDL record's log position matches its apply position
// relative to every transaction. It returns the matching release func
// (a no-op for in-memory stores).
func (s *Store) ddlGate() func() {
	if s.dur.Load() == nil {
		return func() {}
	}
	s.txGate.Lock()
	return s.txGate.Unlock
}

// CreateTable registers the definition in the catalog and allocates the heap.
func (s *Store) CreateTable(def *catalog.Table) error {
	defer s.ddlGate()()
	if err := s.cat.CreateTable(def); err != nil {
		return err
	}
	s.mu.Lock()
	td := newTableData(def)
	// A primary key implies a unique hash index for constraint checking
	// and optimizer use.
	if len(def.PrimaryKey) > 0 {
		idx := &catalog.Index{
			Name:    def.Name + "_PK",
			Table:   def.Name,
			Columns: def.PrimaryKey,
			Kind:    catalog.HashIndex,
			Unique:  true,
		}
		def.Indexes = append(def.Indexes, idx)
		td.buildIndex(idx)
	}
	s.tables[key(def.Name)] = td
	s.mu.Unlock()
	return s.logDDL(&wal.Record{Op: wal.OpCreateTable, TableDef: defToWAL(def)})
}

// DropTable removes a table and its data.
func (s *Store) DropTable(name string) error {
	defer s.ddlGate()()
	if err := s.cat.DropTable(name); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.tables, key(name))
	s.mu.Unlock()
	return s.logDDL(&wal.Record{Op: wal.OpDropTable, Name: name})
}

// CreateView registers a view. Views live purely in the catalog; the
// store-level wrapper exists so the definition reaches the WAL.
func (s *Store) CreateView(v *catalog.View) error {
	defer s.ddlGate()()
	if err := s.cat.CreateView(v); err != nil {
		return err
	}
	return s.logDDL(&wal.Record{Op: wal.OpCreateView, Name: v.Name, Text: v.Text, IsXNF: v.IsXNF})
}

// DropView removes a view.
func (s *Store) DropView(name string) error {
	defer s.ddlGate()()
	if err := s.cat.DropView(name); err != nil {
		return err
	}
	return s.logDDL(&wal.Record{Op: wal.OpDropView, Name: name})
}

// Table returns the physical table handle.
func (s *Store) Table(name string) (*TableData, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	td, ok := s.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("storage: table %s does not exist", name)
	}
	return td, nil
}

// ColStoreStats sums the column-store footprint over every table:
// total segments and approximate resident heap bytes. Row-major tables
// contribute nothing. Snapshot-time observability only.
func (s *Store) ColStoreStats() (segments int, bytes int64) {
	s.mu.RLock()
	tds := make([]*TableData, 0, len(s.tables))
	for _, td := range s.tables {
		tds = append(tds, td)
	}
	s.mu.RUnlock()
	for _, td := range tds {
		if segs, b, ok := td.ColStats(); ok {
			segments += segs
			bytes += b
		}
	}
	return segments, bytes
}

// EncodedColumnStats counts the column-store segment columns currently
// held compressed across every table, by encoding kind. Snapshot-time
// observability only.
func (s *Store) EncodedColumnStats() (dict, pack int) {
	s.mu.RLock()
	tds := make([]*TableData, 0, len(s.tables))
	for _, td := range s.tables {
		tds = append(tds, td)
	}
	s.mu.RUnlock()
	for _, td := range tds {
		d, p := td.EncodedColumns()
		dict += d
		pack += p
	}
	return dict, pack
}

// CreateIndex builds a secondary index over existing data.
func (s *Store) CreateIndex(idx *catalog.Index) error {
	defer s.ddlGate()()
	td, err := s.Table(idx.Table)
	if err != nil {
		return err
	}
	if err := s.cat.AddIndex(idx); err != nil {
		return err
	}
	td.mu.Lock()
	if err := td.buildIndex(idx); err != nil {
		td.mu.Unlock()
		return err
	}
	td.mu.Unlock()
	return s.logDDL(&wal.Record{Op: wal.OpCreateIndex, IndexDef: &wal.IndexDef{
		Name: idx.Name, Table: idx.Table, Columns: idx.Columns,
		Kind: uint8(idx.Kind), Unique: idx.Unique,
	}})
}

// Analyze recomputes the distinct-value statistics for a table's columns.
// The stats walk runs over an immutable snapshot — segment views for
// column tables, row pointers for row tables — so writers are blocked
// only for the instant the snapshot is captured, never for the duration
// of the walk. Analyze also drives the colstore auto-promotion heuristic:
// a row-major table whose fresh live row count crosses the configured
// threshold is switched to columnar storage in the same pass (the row
// count that justifies columnar scans is exactly what ANALYZE just
// measured).
func (s *Store) Analyze(name string) error {
	td, err := s.Table(name)
	if err != nil {
		return err
	}
	seen := make([]map[uint64]struct{}, len(td.def.Columns))
	for i := range seen {
		seen[i] = make(map[uint64]struct{})
	}
	if views, ok := td.ColumnViews(); ok {
		for _, v := range views {
			for c := range seen {
				col := v.Cols[c]
				if v.Sel != nil {
					for _, i := range v.Sel {
						seen[c][col[i].Hash()] = struct{}{}
					}
				} else {
					for i := 0; i < v.N; i++ {
						seen[c][col[i].Hash()] = struct{}{}
					}
				}
			}
		}
	} else {
		for _, r := range td.Snapshot() {
			for c := range seen {
				seen[c][r[c].Hash()] = struct{}{}
			}
		}
	}
	for i, col := range td.def.Columns {
		td.def.SetColCard(col.Name, int64(len(seen[i])))
	}
	td.mu.Lock()
	if ch, ok := td.heap.(*colHeap); ok {
		// Column tables piggyback physical maintenance on the stats pass:
		// exact zone maps for segment pruning, and compaction of segments
		// whose every slot is deleted (payload freed, slot space kept).
		ch.t.Maintain()
	}
	promote := td.heap.kind() == catalog.RowStore && colstore.AutoPromote(td.live)
	td.mu.Unlock()
	if promote {
		// Route through SetTableStorage so the representation switch is
		// WAL-logged and survives a crash (it also bumps the version).
		return s.SetTableStorage(name, catalog.ColumnStore)
	}
	// Fresh statistics can change plan choices; stale compiled plans over
	// this table must not outlive them (plans over other tables survive).
	s.cat.BumpName(name)
	return nil
}

// SetTableStorage switches a table's physical representation (ALTER TABLE
// … SET STORAGE). RIDs and indexes are preserved; the catalog version is
// bumped so compiled plans re-decide their scan strategy.
func (s *Store) SetTableStorage(name string, kind catalog.StorageKind) error {
	defer s.ddlGate()()
	td, err := s.Table(name)
	if err != nil {
		return err
	}
	td.SetStorage(kind)
	s.cat.BumpName(name)
	return s.logDDL(&wal.Record{Op: wal.OpSetStorage, Table: name, Storage: uint8(kind)})
}

// AnalyzeAll runs Analyze over every table. A table dropped concurrently
// between the catalog snapshot and the walk is skipped, not an error — a
// whole-database ANALYZE racing DDL analyzes whatever still exists.
func (s *Store) AnalyzeAll() error {
	for _, t := range s.cat.Tables() {
		if err := s.Analyze(t.Name); err != nil {
			if _, stillThere := s.cat.Table(t.Name); !stillThere {
				continue
			}
			return err
		}
	}
	return nil
}

func key(name string) string {
	// Identifier lookup is case-insensitive throughout the engine.
	b := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		b[i] = c
	}
	return string(b)
}
