package storage

import (
	"fmt"
	"sync"

	"xnf/internal/catalog"
	"xnf/internal/types"
)

// TableData is the heap for one table: a slot array of rows where deleted
// slots are nil. Slot order is insertion order, which gives deterministic
// scans for tests and reproducible benchmarks.
type TableData struct {
	mu      sync.RWMutex
	def     *catalog.Table
	rows    []types.Row
	live    int64
	indexes map[string]index
}

func newTableData(def *catalog.Table) *TableData {
	return &TableData{def: def, indexes: make(map[string]index)}
}

// Def returns the catalog definition.
func (t *TableData) Def() *catalog.Table { return t.def }

// RowCount returns the number of live rows.
func (t *TableData) RowCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Insert validates the row against the schema (arity, types, NOT NULL,
// primary-key uniqueness), appends it and maintains indexes and stats.
func (t *TableData) Insert(row types.Row) (RID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(row)
}

func (t *TableData) insertLocked(row types.Row) (RID, error) {
	if len(row) != len(t.def.Columns) {
		return 0, fmt.Errorf("storage: table %s expects %d columns, got %d",
			t.def.Name, len(t.def.Columns), len(row))
	}
	coerced := make(types.Row, len(row))
	for i, col := range t.def.Columns {
		v, err := types.Coerce(row[i], col.Type)
		if err != nil {
			return 0, fmt.Errorf("storage: column %s.%s: %v", t.def.Name, col.Name, err)
		}
		if v.IsNull() && col.NotNull {
			return 0, fmt.Errorf("storage: column %s.%s is NOT NULL", t.def.Name, col.Name)
		}
		coerced[i] = v
	}
	if pk := t.def.PKOrdinals(); len(pk) > 0 {
		if rid, ok := t.lookupUniqueLocked(t.def.PrimaryKey, coerced, pk); ok {
			return 0, fmt.Errorf("storage: duplicate primary key %v in table %s (existing rid %d)",
				coerced.Key(pk), t.def.Name, rid)
		}
	}
	rid := RID(len(t.rows))
	t.rows = append(t.rows, coerced)
	t.live++
	t.def.SetRowCount(t.live)
	for _, idx := range t.indexes {
		idx.insert(coerced, rid)
	}
	return rid, nil
}

func (t *TableData) lookupUniqueLocked(cols []string, row types.Row, ords []int) (RID, bool) {
	if idx := t.def.IndexOn(cols); idx != nil {
		if in, ok := t.indexes[key(idx.Name)]; ok {
			keyVals := make(types.Row, len(ords))
			for i, o := range ords {
				keyVals[i] = row[o]
			}
			for _, rid := range in.lookup(keyVals) {
				if t.rows[rid] != nil && t.rows[rid].EqualOn(row, ords) {
					return rid, true
				}
			}
			return 0, false
		}
	}
	for rid, r := range t.rows {
		if r != nil && r.EqualOn(row, ords) {
			return RID(rid), true
		}
	}
	return 0, false
}

// Get fetches a row by RID. Returned rows must not be mutated.
func (t *TableData) Get(rid RID) (types.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if rid < 0 || int(rid) >= len(t.rows) || t.rows[rid] == nil {
		return nil, false
	}
	return t.rows[rid], true
}

// Update replaces the row at rid, re-validating constraints and maintaining
// indexes. It returns the old row for undo logging.
func (t *TableData) Update(rid RID, row types.Row) (types.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rid < 0 || int(rid) >= len(t.rows) || t.rows[rid] == nil {
		return nil, fmt.Errorf("storage: rid %d not found in table %s", rid, t.def.Name)
	}
	if len(row) != len(t.def.Columns) {
		return nil, fmt.Errorf("storage: table %s expects %d columns, got %d",
			t.def.Name, len(t.def.Columns), len(row))
	}
	coerced := make(types.Row, len(row))
	for i, col := range t.def.Columns {
		v, err := types.Coerce(row[i], col.Type)
		if err != nil {
			return nil, fmt.Errorf("storage: column %s.%s: %v", t.def.Name, col.Name, err)
		}
		if v.IsNull() && col.NotNull {
			return nil, fmt.Errorf("storage: column %s.%s is NOT NULL", t.def.Name, col.Name)
		}
		coerced[i] = v
	}
	old := t.rows[rid]
	if pk := t.def.PKOrdinals(); len(pk) > 0 && !old.EqualOn(coerced, pk) {
		if other, ok := t.lookupUniqueLocked(t.def.PrimaryKey, coerced, pk); ok && other != rid {
			return nil, fmt.Errorf("storage: duplicate primary key %v in table %s", coerced.Key(pk), t.def.Name)
		}
	}
	for _, idx := range t.indexes {
		idx.remove(old, rid)
	}
	t.rows[rid] = coerced
	for _, idx := range t.indexes {
		idx.insert(coerced, rid)
	}
	return old, nil
}

// Delete removes the row at rid and returns it for undo logging.
func (t *TableData) Delete(rid RID) (types.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rid < 0 || int(rid) >= len(t.rows) || t.rows[rid] == nil {
		return nil, fmt.Errorf("storage: rid %d not found in table %s", rid, t.def.Name)
	}
	old := t.rows[rid]
	for _, idx := range t.indexes {
		idx.remove(old, rid)
	}
	t.rows[rid] = nil
	t.live--
	t.def.SetRowCount(t.live)
	return old, nil
}

// insertAt restores a row into a specific slot; used only by transaction
// rollback to undo a delete.
func (t *TableData) insertAt(rid RID, row types.Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for int(rid) >= len(t.rows) {
		t.rows = append(t.rows, nil)
	}
	t.rows[rid] = row
	t.live++
	t.def.SetRowCount(t.live)
	for _, idx := range t.indexes {
		idx.insert(row, rid)
	}
}

// Scan calls fn for every live row in slot order; returning false stops the
// scan. The table lock is held in read mode for the duration.
func (t *TableData) Scan(fn func(rid RID, row types.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, r := range t.rows {
		if r == nil {
			continue
		}
		if !fn(RID(i), r) {
			return
		}
	}
}

// Snapshot returns all live rows as a slice; operators that need stable
// input (e.g. while the same table is being updated) use it.
func (t *TableData) Snapshot() []types.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]types.Row, 0, t.live)
	for _, r := range t.rows {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// SnapshotRIDs returns the RIDs of all live rows in slot order.
func (t *TableData) SnapshotRIDs() []RID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]RID, 0, t.live)
	for i, r := range t.rows {
		if r != nil {
			out = append(out, RID(i))
		}
	}
	return out
}

func (t *TableData) buildIndex(def *catalog.Index) error {
	ords := make([]int, len(def.Columns))
	for i, col := range def.Columns {
		o, ok := t.def.ColumnIndex(col)
		if !ok {
			return fmt.Errorf("storage: index column %s not in table %s", col, t.def.Name)
		}
		ords[i] = o
	}
	var idx index
	switch def.Kind {
	case catalog.HashIndex:
		idx = newHashIndex(ords)
	case catalog.OrderedIndex:
		idx = newOrderedIndex(ords)
	default:
		return fmt.Errorf("storage: unknown index kind %d", def.Kind)
	}
	for rid, r := range t.rows {
		if r != nil {
			idx.insert(r, RID(rid))
		}
	}
	t.indexes[key(def.Name)] = idx
	return nil
}

// IndexLookup returns the RIDs whose index key equals keyVals, using the
// named index.
func (t *TableData) IndexLookup(indexName string, keyVals types.Row) ([]RID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[key(indexName)]
	if !ok {
		return nil, fmt.Errorf("storage: index %s not built on table %s", indexName, t.def.Name)
	}
	rids := idx.lookup(keyVals)
	out := make([]RID, 0, len(rids))
	for _, rid := range rids {
		if t.rows[rid] != nil {
			out = append(out, rid)
		}
	}
	return out, nil
}

// IndexRange returns the RIDs whose leading index column lies in [lo, hi]
// (either bound may be the NULL value meaning unbounded). Only ordered
// indexes support ranges.
func (t *TableData) IndexRange(indexName string, lo, hi types.Value) ([]RID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[key(indexName)]
	if !ok {
		return nil, fmt.Errorf("storage: index %s not built on table %s", indexName, t.def.Name)
	}
	oi, ok := idx.(*orderedIndex)
	if !ok {
		return nil, fmt.Errorf("storage: index %s is not an ordered index", indexName)
	}
	return oi.rangeLookup(lo, hi), nil
}
