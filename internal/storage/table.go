package storage

import (
	"fmt"
	"sync"

	"xnf/internal/catalog"
	"xnf/internal/colstore"
	"xnf/internal/types"
)

// TableData is the physical table handle: a heap of rows (row-major slot
// array or column-major colstore segments, see SetStorage) plus secondary
// indexes. Slot order is insertion order in both representations, which
// gives deterministic scans for tests and reproducible benchmarks.
type TableData struct {
	mu      sync.RWMutex
	def     *catalog.Table
	heap    rowHeap
	live    int64
	indexes map[string]index
}

func newTableData(def *catalog.Table) *TableData {
	return &TableData{def: def, heap: newHeap(def, def.StorageKind()), indexes: make(map[string]index)}
}

// Def returns the catalog definition.
func (t *TableData) Def() *catalog.Table { return t.def }

// RowCount returns the number of live rows.
func (t *TableData) RowCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// StorageKind reports the current physical representation.
func (t *TableData) StorageKind() catalog.StorageKind {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.kind()
}

// SetStorage switches the physical representation, preserving RIDs (and
// therefore indexes). It is idempotent; the caller (Store) is responsible
// for bumping the catalog version afterwards.
func (t *TableData) SetStorage(kind catalog.StorageKind) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.heap = convertHeap(t.def, t.heap, kind)
	t.def.SetStorageKind(kind)
}

// Segments reports the number of column-store segments (0 for row tables);
// the xnfsql \storage command surfaces it.
func (t *TableData) Segments() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ch, ok := t.heap.(*colHeap); ok {
		return ch.t.Segments()
	}
	return 0
}

// HollowSegments reports how many column-store segments currently have
// their payload freed by compaction (0 for row tables); observability and
// tests read it.
func (t *TableData) HollowSegments() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ch, ok := t.heap.(*colHeap); ok {
		return ch.t.HollowSegments()
	}
	return 0
}

// ColumnViews snapshots the column-store segments for a zero-copy batch
// scan; ok is false when the table is row-major (callers then fall back to
// Snapshot). The views are immutable — DML after the call is not visible
// through them, exactly like Snapshot's row pointers.
func (t *TableData) ColumnViews() ([]colstore.View, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ch, ok := t.heap.(*colHeap)
	if !ok {
		return nil, false
	}
	return ch.t.Views(), true
}

// TypedColumnViews snapshots the column-store segments as typed (unboxed)
// views for the typed batch kernels, skipping segments whose zone maps
// refute one of the bounds; pruned counts the skipped segments. ok is false
// when the table is row-major. Snapshot semantics match ColumnViews.
func (t *TableData) TypedColumnViews(bounds []colstore.ColBound) (views []colstore.TypedView, pruned int, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ch, isCol := t.heap.(*colHeap)
	if !isCol {
		return nil, 0, false
	}
	views, pruned = ch.t.TypedViews(bounds)
	return views, pruned, true
}

// ColStats reports the column-store footprint of the table — segment
// count and approximate resident heap bytes — or ok=false for a
// row-major heap.
func (t *TableData) ColStats() (segments int, bytes int64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ch, isCol := t.heap.(*colHeap)
	if !isCol {
		return 0, 0, false
	}
	return ch.t.Segments(), ch.t.BytesResident(), true
}

// EncodedColumns counts the column-store segment columns currently held in
// compressed form, by kind; zeros for row-major tables.
func (t *TableData) EncodedColumns() (dict, pack int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ch, ok := t.heap.(*colHeap); ok {
		return ch.t.EncodedColumns()
	}
	return 0, 0
}

// Insert validates the row against the schema (arity, types, NOT NULL,
// primary-key uniqueness), appends it and maintains indexes and stats.
func (t *TableData) Insert(row types.Row) (RID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(row)
}

func (t *TableData) insertLocked(row types.Row) (RID, error) {
	if len(row) != len(t.def.Columns) {
		return 0, fmt.Errorf("storage: table %s expects %d columns, got %d",
			t.def.Name, len(t.def.Columns), len(row))
	}
	coerced := make(types.Row, len(row))
	for i, col := range t.def.Columns {
		v, err := types.Coerce(row[i], col.Type)
		if err != nil {
			return 0, fmt.Errorf("storage: column %s.%s: %v", t.def.Name, col.Name, err)
		}
		if v.IsNull() && col.NotNull {
			return 0, fmt.Errorf("storage: column %s.%s is NOT NULL", t.def.Name, col.Name)
		}
		coerced[i] = v
	}
	if pk := t.def.PKOrdinals(); len(pk) > 0 {
		if rid, ok := t.lookupUniqueLocked(t.def.PrimaryKey, coerced, pk); ok {
			return 0, fmt.Errorf("storage: duplicate primary key %v in table %s (existing rid %d)",
				coerced.Key(pk), t.def.Name, rid)
		}
	}
	rid := t.heap.append(coerced)
	t.live++
	t.def.SetRowCount(t.live)
	for _, idx := range t.indexes {
		idx.insert(coerced, rid)
	}
	return rid, nil
}

func (t *TableData) lookupUniqueLocked(cols []string, row types.Row, ords []int) (RID, bool) {
	if idx := t.def.IndexOn(cols); idx != nil {
		if in, ok := t.indexes[key(idx.Name)]; ok {
			keyVals := make(types.Row, len(ords))
			for i, o := range ords {
				keyVals[i] = row[o]
			}
			for _, rid := range in.lookup(keyVals) {
				if stored, ok := t.heap.get(rid); ok && stored.EqualOn(row, ords) {
					return rid, true
				}
			}
			return 0, false
		}
	}
	found := RID(0)
	ok := false
	t.heap.scan(func(rid RID, r types.Row) bool {
		if r.EqualOn(row, ords) {
			found, ok = rid, true
			return false
		}
		return true
	})
	return found, ok
}

// Get fetches a row by RID. Returned rows must not be mutated.
func (t *TableData) Get(rid RID) (types.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.get(rid)
}

// Update replaces the row at rid, re-validating constraints and maintaining
// indexes. It returns the old row for undo logging.
func (t *TableData) Update(rid RID, row types.Row) (types.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.heap.get(rid)
	if !ok {
		return nil, fmt.Errorf("storage: rid %d not found in table %s", rid, t.def.Name)
	}
	if len(row) != len(t.def.Columns) {
		return nil, fmt.Errorf("storage: table %s expects %d columns, got %d",
			t.def.Name, len(t.def.Columns), len(row))
	}
	coerced := make(types.Row, len(row))
	for i, col := range t.def.Columns {
		v, err := types.Coerce(row[i], col.Type)
		if err != nil {
			return nil, fmt.Errorf("storage: column %s.%s: %v", t.def.Name, col.Name, err)
		}
		if v.IsNull() && col.NotNull {
			return nil, fmt.Errorf("storage: column %s.%s is NOT NULL", t.def.Name, col.Name)
		}
		coerced[i] = v
	}
	if pk := t.def.PKOrdinals(); len(pk) > 0 && !old.EqualOn(coerced, pk) {
		if other, ok := t.lookupUniqueLocked(t.def.PrimaryKey, coerced, pk); ok && other != rid {
			return nil, fmt.Errorf("storage: duplicate primary key %v in table %s", coerced.Key(pk), t.def.Name)
		}
	}
	for _, idx := range t.indexes {
		idx.remove(old, rid)
	}
	t.heap.set(rid, coerced)
	for _, idx := range t.indexes {
		idx.insert(coerced, rid)
	}
	return old, nil
}

// Delete removes the row at rid and returns it for undo logging.
func (t *TableData) Delete(rid RID) (types.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.heap.get(rid)
	if !ok {
		return nil, fmt.Errorf("storage: rid %d not found in table %s", rid, t.def.Name)
	}
	for _, idx := range t.indexes {
		idx.remove(old, rid)
	}
	t.heap.clear(rid)
	t.live--
	t.def.SetRowCount(t.live)
	return old, nil
}

// insertAt restores a row into a specific slot; used only by transaction
// rollback to undo a delete.
func (t *TableData) insertAt(rid RID, row types.Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.heap.restore(rid, row)
	t.live++
	t.def.SetRowCount(t.live)
	for _, idx := range t.indexes {
		idx.insert(row, rid)
	}
}

// Scan calls fn for every live row in slot order; returning false stops the
// scan. The table lock is held in read mode for the duration.
func (t *TableData) Scan(fn func(rid RID, row types.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.heap.scan(fn)
}

// Snapshot returns all live rows as a slice; operators that need stable
// input (e.g. while the same table is being updated) use it. Column-major
// tables materialize rows here — the batch engine avoids this path via
// ColumnViews.
func (t *TableData) Snapshot() []types.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]types.Row, 0, t.live)
	t.heap.scan(func(_ RID, r types.Row) bool {
		out = append(out, r)
		return true
	})
	return out
}

// SnapshotRIDs returns the RIDs of all live rows in slot order.
func (t *TableData) SnapshotRIDs() []RID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]RID, 0, t.live)
	t.heap.scan(func(rid RID, _ types.Row) bool {
		out = append(out, rid)
		return true
	})
	return out
}

// indexOrds resolves an index definition's columns to table ordinals.
func (t *TableData) indexOrds(def *catalog.Index) ([]int, error) {
	ords := make([]int, len(def.Columns))
	for i, col := range def.Columns {
		o, ok := t.def.ColumnIndex(col)
		if !ok {
			return nil, fmt.Errorf("storage: index column %s not in table %s", col, t.def.Name)
		}
		ords[i] = o
	}
	return ords, nil
}

func (t *TableData) buildIndex(def *catalog.Index) error {
	ords, err := t.indexOrds(def)
	if err != nil {
		return err
	}
	var idx index
	switch def.Kind {
	case catalog.HashIndex:
		idx = newHashIndexCap(ords, int(t.live))
	case catalog.OrderedIndex:
		idx = newOrderedIndex(ords)
	default:
		return fmt.Errorf("storage: unknown index kind %d", def.Kind)
	}
	t.heap.scan(func(rid RID, r types.Row) bool {
		idx.insert(r, rid)
		return true
	})
	t.indexes[key(def.Name)] = idx
	return nil
}

// IndexLookup returns the RIDs whose index key equals keyVals, using the
// named index.
func (t *TableData) IndexLookup(indexName string, keyVals types.Row) ([]RID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[key(indexName)]
	if !ok {
		return nil, fmt.Errorf("storage: index %s not built on table %s", indexName, t.def.Name)
	}
	rids := idx.lookup(keyVals)
	out := make([]RID, 0, len(rids))
	for _, rid := range rids {
		if t.heap.live(rid) {
			out = append(out, rid)
		}
	}
	return out, nil
}

// IndexRange returns the RIDs whose leading index column lies in [lo, hi]
// (either bound may be the NULL value meaning unbounded). Only ordered
// indexes support ranges.
func (t *TableData) IndexRange(indexName string, lo, hi types.Value) ([]RID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[key(indexName)]
	if !ok {
		return nil, fmt.Errorf("storage: index %s not built on table %s", indexName, t.def.Name)
	}
	oi, ok := idx.(*orderedIndex)
	if !ok {
		return nil, fmt.Errorf("storage: index %s is not an ordered index", indexName)
	}
	return oi.rangeLookup(lo, hi), nil
}
