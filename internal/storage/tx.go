package storage

import (
	"fmt"

	"xnf/internal/types"
)

// Tx is a transaction over the store. The engine logs every DML operation
// and can roll the store back to the state at Begin. The paper leaves
// transaction management entirely to the unchanged relational substrate;
// this undo-log design mirrors that: the XNF layer never sees it.
type Tx struct {
	store *Store
	undo  []undoRec
	done  bool
}

type undoKind uint8

const (
	undoInsert undoKind = iota // compensate by delete
	undoDelete                 // compensate by insert-at
	undoUpdate                 // compensate by restoring the old image
)

type undoRec struct {
	kind  undoKind
	table string
	rid   RID
	row   types.Row // old image for delete/update
}

// Begin starts a transaction.
func (s *Store) Begin() *Tx { return &Tx{store: s} }

// Insert inserts through the transaction, logging the compensation.
func (tx *Tx) Insert(table string, row types.Row) (RID, error) {
	if tx.done {
		return 0, fmt.Errorf("storage: transaction already finished")
	}
	td, err := tx.store.Table(table)
	if err != nil {
		return 0, err
	}
	rid, err := td.Insert(row)
	if err != nil {
		return 0, err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoInsert, table: table, rid: rid})
	return rid, nil
}

// Update updates through the transaction.
func (tx *Tx) Update(table string, rid RID, row types.Row) error {
	if tx.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	td, err := tx.store.Table(table)
	if err != nil {
		return err
	}
	old, err := td.Update(rid, row)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoUpdate, table: table, rid: rid, row: old})
	return nil
}

// Delete deletes through the transaction.
func (tx *Tx) Delete(table string, rid RID) error {
	if tx.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	td, err := tx.store.Table(table)
	if err != nil {
		return err
	}
	old, err := td.Delete(rid)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoDelete, table: table, rid: rid, row: old})
	return nil
}

// Commit makes the transaction's effects permanent.
func (tx *Tx) Commit() error {
	if tx.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	tx.done = true
	tx.undo = nil
	return nil
}

// Rollback undoes every logged operation in reverse order.
func (tx *Tx) Rollback() error {
	if tx.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	tx.done = true
	for i := len(tx.undo) - 1; i >= 0; i-- {
		rec := tx.undo[i]
		td, err := tx.store.Table(rec.table)
		if err != nil {
			return fmt.Errorf("storage: rollback: %v", err)
		}
		switch rec.kind {
		case undoInsert:
			if _, err := td.Delete(rec.rid); err != nil {
				return fmt.Errorf("storage: rollback insert: %v", err)
			}
		case undoDelete:
			td.insertAt(rec.rid, rec.row)
		case undoUpdate:
			if _, err := td.Update(rec.rid, rec.row); err != nil {
				return fmt.Errorf("storage: rollback update: %v", err)
			}
		}
	}
	tx.undo = nil
	return nil
}
