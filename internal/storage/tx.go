package storage

import (
	"fmt"

	"xnf/internal/types"
	"xnf/internal/wal"
)

// Tx is a transaction over the store. The engine logs every DML operation
// and can roll the store back to the state at Begin. The paper leaves
// transaction management entirely to the unchanged relational substrate;
// this undo-log design mirrors that: the XNF layer never sees it.
//
// With a WAL attached, the transaction additionally buffers redo records
// (the coerced after-images the heap actually stored) and writes them as
// one contiguous [begin][ops][commit] run at Commit, fsync'd — possibly
// sharing the fsync with concurrent committers (group commit). Changes
// are applied to memory eagerly and undone on rollback, so nothing
// uncommitted ever needs undo at recovery time: the log is redo-only.
type Tx struct {
	store *Store
	undo  []undoRec
	redo  []wal.Record
	id    uint64
	gated bool // holding store.txGate in read mode until Commit/Rollback
	done  bool
}

type undoKind uint8

const (
	undoInsert undoKind = iota // compensate by delete
	undoDelete                 // compensate by insert-at
	undoUpdate                 // compensate by restoring the old image
)

type undoRec struct {
	kind  undoKind
	table string
	rid   RID
	row   types.Row // old image for delete/update
}

// Begin starts a transaction. While a WAL is attached, the transaction
// holds the store's gate in read mode until it finishes, so DDL and
// checkpoints (which take the gate exclusively) never observe — or cut
// the log across — a half-applied transaction.
func (s *Store) Begin() *Tx {
	tx := &Tx{store: s}
	if s.dur.Load() != nil {
		s.txGate.RLock()
		tx.gated = true
		tx.id = s.nextTx.Add(1)
	}
	return tx
}

// logRedo buffers the redo record for one applied operation. The row
// stored in the heap (post-coercion) is fetched back so replay can
// restore byte-identical images without re-running validation.
func (tx *Tx) logRedo(op wal.Op, td *TableData, table string, rid RID) {
	if !tx.gated {
		return
	}
	rec := wal.Record{Op: op, TxID: tx.id, Table: table, RID: int64(rid)}
	if op != wal.OpDelete {
		rec.Row, _ = td.Get(rid)
	}
	tx.redo = append(tx.redo, rec)
}

// Insert inserts through the transaction, logging the compensation.
func (tx *Tx) Insert(table string, row types.Row) (RID, error) {
	if tx.done {
		return 0, fmt.Errorf("storage: transaction already finished")
	}
	td, err := tx.store.Table(table)
	if err != nil {
		return 0, err
	}
	rid, err := td.Insert(row)
	if err != nil {
		return 0, err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoInsert, table: table, rid: rid})
	tx.logRedo(wal.OpInsert, td, table, rid)
	return rid, nil
}

// Update updates through the transaction.
func (tx *Tx) Update(table string, rid RID, row types.Row) error {
	if tx.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	td, err := tx.store.Table(table)
	if err != nil {
		return err
	}
	old, err := td.Update(rid, row)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoUpdate, table: table, rid: rid, row: old})
	tx.logRedo(wal.OpUpdate, td, table, rid)
	return nil
}

// Delete deletes through the transaction.
func (tx *Tx) Delete(table string, rid RID) error {
	if tx.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	td, err := tx.store.Table(table)
	if err != nil {
		return err
	}
	old, err := td.Delete(rid)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoDelete, table: table, rid: rid, row: old})
	tx.logRedo(wal.OpDelete, td, table, rid)
	return nil
}

// Commit makes the transaction's effects permanent. With a WAL attached,
// the redo records are written and fsync'd before Commit returns; if the
// log rejects them (disk failure), the in-memory effects are rolled back
// so memory never claims a durability the log cannot honor, and the
// error is returned.
func (tx *Tx) Commit() error {
	if tx.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	tx.done = true
	if !tx.gated {
		tx.undo = nil
		return nil
	}
	var err error
	if len(tx.redo) > 0 {
		if d := tx.store.dur.Load(); d != nil {
			buf := wal.AppendRecord(nil, &wal.Record{Op: wal.OpBegin, TxID: tx.id})
			for i := range tx.redo {
				buf = wal.AppendRecord(buf, &tx.redo[i])
			}
			buf = wal.AppendRecord(buf, &wal.Record{Op: wal.OpCommit, TxID: tx.id})
			err = d.log.Commit(buf, len(tx.redo)+2)
		}
	}
	if err != nil {
		uerr := tx.undoAll()
		tx.store.txGate.RUnlock()
		if uerr != nil {
			return fmt.Errorf("storage: commit not durable (%v) and rollback failed: %v", err, uerr)
		}
		return fmt.Errorf("storage: commit not durable, rolled back: %w", err)
	}
	tx.store.txGate.RUnlock()
	tx.undo, tx.redo = nil, nil
	return nil
}

// Rollback undoes every logged operation in reverse order.
func (tx *Tx) Rollback() error {
	if tx.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	tx.done = true
	err := tx.undoAll()
	if tx.gated {
		tx.store.txGate.RUnlock()
	}
	return err
}

// undoAll applies the undo log in reverse. The redo buffer is discarded:
// nothing was (or will be) written to the WAL for this transaction, so
// recovery sees none of its effects — matching the restored memory state.
func (tx *Tx) undoAll() error {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		rec := tx.undo[i]
		td, err := tx.store.Table(rec.table)
		if err != nil {
			return fmt.Errorf("storage: rollback: %v", err)
		}
		switch rec.kind {
		case undoInsert:
			if _, err := td.Delete(rec.rid); err != nil {
				return fmt.Errorf("storage: rollback insert: %v", err)
			}
		case undoDelete:
			td.insertAt(rec.rid, rec.row)
		case undoUpdate:
			if _, err := td.Update(rec.rid, rec.row); err != nil {
				return fmt.Errorf("storage: rollback update: %v", err)
			}
		}
	}
	tx.undo, tx.redo = nil, nil
	return nil
}
