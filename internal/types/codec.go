package types

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary value codec shared by the durability layer: the write-ahead log
// and the checkpoint files both persist values in this tagged form. The
// format mirrors the wire row codec (one tag byte, varint integers,
// fixed64 floats, length-prefixed strings) but is versioned independently
// of it — the wire protocol can evolve without invalidating logs on disk.

const (
	binTagNull  = 0
	binTagInt   = 1
	binTagFloat = 2
	binTagStr   = 3
	binTagTrue  = 4
	binTagFalse = 5
)

// AppendBinary appends the tagged binary encoding of v to buf.
func AppendBinary(buf []byte, v Value) []byte {
	switch v.T {
	case NullType:
		return append(buf, binTagNull)
	case IntType:
		buf = append(buf, binTagInt)
		return binary.AppendVarint(buf, v.I)
	case FloatType:
		buf = append(buf, binTagFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case StringType:
		buf = append(buf, binTagStr)
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		return append(buf, v.S...)
	case BoolType:
		if v.I != 0 {
			return append(buf, binTagTrue)
		}
		return append(buf, binTagFalse)
	default:
		return append(buf, binTagNull)
	}
}

// DecodeBinary decodes one tagged value from buf, returning the value and
// the remaining bytes. Malformed input yields an error, never a panic —
// the recovery path feeds it bytes that may be torn or corrupted.
func DecodeBinary(buf []byte) (Value, []byte, error) {
	if len(buf) == 0 {
		return Null, nil, io.ErrUnexpectedEOF
	}
	tag := buf[0]
	buf = buf[1:]
	switch tag {
	case binTagNull:
		return Null, buf, nil
	case binTagInt:
		i, n := binary.Varint(buf)
		if n <= 0 {
			return Null, nil, fmt.Errorf("types: bad varint value")
		}
		return NewInt(i), buf[n:], nil
	case binTagFloat:
		if len(buf) < 8 {
			return Null, nil, io.ErrUnexpectedEOF
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
		return NewFloat(f), buf[8:], nil
	case binTagStr:
		n, k := binary.Uvarint(buf)
		if k <= 0 || uint64(len(buf[k:])) < n {
			return Null, nil, fmt.Errorf("types: bad string length")
		}
		s := string(buf[k : k+int(n)])
		return NewString(s), buf[k+int(n):], nil
	case binTagTrue:
		return NewBool(true), buf, nil
	case binTagFalse:
		return NewBool(false), buf, nil
	default:
		return Null, nil, fmt.Errorf("types: unknown value tag %d", tag)
	}
}

// AppendBinaryRow appends a length-prefixed row encoding to buf.
func AppendBinaryRow(buf []byte, row Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		buf = AppendBinary(buf, v)
	}
	return buf
}

// maxBinaryRow bounds the column count of a decoded row: no table in the
// engine approaches it, and a corrupted length prefix must not translate
// into an attacker-sized allocation.
const maxBinaryRow = 1 << 16

// DecodeBinaryRow decodes one length-prefixed row from buf.
func DecodeBinaryRow(buf []byte) (Row, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, fmt.Errorf("types: bad row width")
	}
	buf = buf[k:]
	if n > maxBinaryRow || n > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("types: row width %d exceeds payload", n)
	}
	row := make(Row, n)
	var err error
	for i := range row {
		row[i], buf, err = DecodeBinary(buf)
		if err != nil {
			return nil, nil, err
		}
	}
	return row, buf, nil
}
