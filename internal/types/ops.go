package types

import (
	"fmt"
	"strings"
)

// TriBool is SQL three-valued logic: predicates over NULL yield Unknown.
type TriBool uint8

// The three truth values.
const (
	False TriBool = iota
	True
	Unknown
)

// String returns the SQL spelling of the truth value.
func (t TriBool) String() string {
	switch t {
	case False:
		return "FALSE"
	case True:
		return "TRUE"
	default:
		return "UNKNOWN"
	}
}

// Tri converts a Go bool to a TriBool.
func Tri(b bool) TriBool {
	if b {
		return True
	}
	return False
}

// And implements three-valued conjunction.
func (t TriBool) And(o TriBool) TriBool {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or implements three-valued disjunction.
func (t TriBool) Or(o TriBool) TriBool {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not implements three-valued negation.
func (t TriBool) Not() TriBool {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// ToValue converts the truth value to a SQL BOOLEAN (Unknown becomes NULL).
func (t TriBool) ToValue() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	default:
		return Null
	}
}

// TruthOf interprets a value as a predicate result: NULL is Unknown,
// BOOLEAN maps directly, and non-zero numerics count as true.
func TruthOf(v Value) TriBool {
	switch v.T {
	case NullType:
		return Unknown
	case BoolType:
		return Tri(v.I != 0)
	case IntType:
		return Tri(v.I != 0)
	case FloatType:
		return Tri(v.F != 0)
	default:
		return Unknown
	}
}

// CompareTri applies a comparison operator under three-valued logic.
// op is one of "=", "<>", "<", "<=", ">", ">=".
func CompareTri(op string, a, b Value) (TriBool, error) {
	if a.IsNull() || b.IsNull() {
		return Unknown, nil
	}
	if !comparable(a, b) {
		return Unknown, fmt.Errorf("types: cannot compare %s with %s", a.T, b.T)
	}
	c := Compare(a, b)
	switch op {
	case "=":
		return Tri(c == 0), nil
	case "<>", "!=":
		return Tri(c != 0), nil
	case "<":
		return Tri(c < 0), nil
	case "<=":
		return Tri(c <= 0), nil
	case ">":
		return Tri(c > 0), nil
	case ">=":
		return Tri(c >= 0), nil
	default:
		return Unknown, fmt.Errorf("types: unknown comparison operator %q", op)
	}
}

func comparable(a, b Value) bool {
	if a.T == b.T {
		return true
	}
	return a.IsNumeric() && b.IsNumeric()
}

// Arith applies a binary arithmetic operator (+ - * / %). NULL operands
// yield NULL; division by zero is an error, matching strict SQL engines.
func Arith(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if op == "||" || (op == "+" && a.T == StringType && b.T == StringType) {
		if a.T == StringType && b.T == StringType {
			return NewString(a.S + b.S), nil
		}
		return Null, fmt.Errorf("types: || requires strings, got %s and %s", a.T, b.T)
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("types: arithmetic %q requires numeric operands, got %s and %s", op, a.T, b.T)
	}
	if a.T == IntType && b.T == IntType {
		switch op {
		case "+":
			return NewInt(a.I + b.I), nil
		case "-":
			return NewInt(a.I - b.I), nil
		case "*":
			return NewInt(a.I * b.I), nil
		case "/":
			if b.I == 0 {
				return Null, fmt.Errorf("types: division by zero")
			}
			return NewInt(a.I / b.I), nil
		case "%":
			if b.I == 0 {
				return Null, fmt.Errorf("types: division by zero")
			}
			return NewInt(a.I % b.I), nil
		}
	}
	af, bf := a.Float(), b.Float()
	switch op {
	case "+":
		return NewFloat(af + bf), nil
	case "-":
		return NewFloat(af - bf), nil
	case "*":
		return NewFloat(af * bf), nil
	case "/":
		if bf == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		return NewFloat(af / bf), nil
	case "%":
		return Null, fmt.Errorf("types: %% requires integer operands")
	}
	return Null, fmt.Errorf("types: unknown arithmetic operator %q", op)
}

// Neg negates a numeric value.
func Neg(v Value) (Value, error) {
	switch v.T {
	case NullType:
		return Null, nil
	case IntType:
		return NewInt(-v.I), nil
	case FloatType:
		return NewFloat(-v.F), nil
	default:
		return Null, fmt.Errorf("types: cannot negate %s", v.T)
	}
}

// Like evaluates the SQL LIKE predicate with % and _ wildcards.
func Like(s, pattern Value) (TriBool, error) {
	if s.IsNull() || pattern.IsNull() {
		return Unknown, nil
	}
	if s.T != StringType || pattern.T != StringType {
		return Unknown, fmt.Errorf("types: LIKE requires strings")
	}
	return Tri(likeMatch(s.S, pattern.S)), nil
}

// likeMatch matches s against a SQL LIKE pattern using an iterative
// backtracking scan (the standard greedy-%, rewind-on-mismatch algorithm).
func likeMatch(s, p string) bool {
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star >= 0:
			pi = star + 1
			sBack++
			si = sBack
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// Coerce converts v to the target type when a lossless or standard SQL
// conversion exists (int↔float, anything→string for display is NOT included;
// this is assignment coercion used by INSERT).
func Coerce(v Value, to Type) (Value, error) {
	if v.IsNull() || v.T == to {
		return v, nil
	}
	switch to {
	case FloatType:
		if v.T == IntType {
			return NewFloat(float64(v.I)), nil
		}
	case IntType:
		if v.T == FloatType && v.F == float64(int64(v.F)) {
			return NewInt(int64(v.F)), nil
		}
	case StringType:
		// No implicit conversion to string.
	case BoolType:
		// No implicit conversion to bool.
	}
	return Null, fmt.Errorf("types: cannot coerce %s value %s to %s", v.T, v, to)
}

// Upper returns the upper-cased string value (SQL UPPER function).
func Upper(v Value) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	if v.T != StringType {
		return Null, fmt.Errorf("types: UPPER requires a string")
	}
	return NewString(strings.ToUpper(v.S)), nil
}

// Lower returns the lower-cased string value (SQL LOWER function).
func Lower(v Value) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	if v.T != StringType {
		return Null, fmt.Errorf("types: LOWER requires a string")
	}
	return NewString(strings.ToLower(v.S)), nil
}

// Length returns the character length of a string value.
func Length(v Value) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	if v.T != StringType {
		return Null, fmt.Errorf("types: LENGTH requires a string")
	}
	return NewInt(int64(len(v.S))), nil
}

// Abs returns the absolute value of a numeric value.
func Abs(v Value) (Value, error) {
	switch v.T {
	case NullType:
		return Null, nil
	case IntType:
		if v.I < 0 {
			return NewInt(-v.I), nil
		}
		return v, nil
	case FloatType:
		if v.F < 0 {
			return NewFloat(-v.F), nil
		}
		return v, nil
	default:
		return Null, fmt.Errorf("types: ABS requires a numeric")
	}
}
