package types

import (
	"hash/fnv"
	"strings"
)

// Row is a tuple of values. Rows flow between executor operators and are
// stored by the storage engine.
type Row []Value

// Clone returns a copy of the row; Value is immutable so a shallow copy of
// the slice suffices.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Concat returns a new row holding r followed by o (join concatenation).
func (r Row) Concat(o Row) Row {
	c := make(Row, 0, len(r)+len(o))
	c = append(c, r...)
	c = append(c, o...)
	return c
}

// Hash combines the hashes of the projected columns; used by hash joins,
// DISTINCT and GROUP BY.
func (r Row) Hash(cols []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range cols {
		u := r[c].Hash()
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// EqualOn reports whether two rows agree on the given columns under Equal.
func (r Row) EqualOn(o Row, cols []int) bool {
	for _, c := range cols {
		if !Equal(r[c], o[c]) {
			return false
		}
	}
	return true
}

// EqualRows reports whole-row equality.
func EqualRows(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// CompareRows orders rows lexicographically on the given columns with the
// given per-column direction (true = descending).
func CompareRows(a, b Row, cols []int, desc []bool) int {
	for i, c := range cols {
		cmp := Compare(a[c], b[c])
		if cmp != 0 {
			if i < len(desc) && desc[i] {
				return -cmp
			}
			return cmp
		}
	}
	return 0
}

// String renders a row as a pipe-separated line for tests and the REPL.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

// Key renders the projected columns as a canonical string key. It is used
// where a comparable map key over values is needed (e.g. recursion fixpoint
// dedup); SQLLiteral quoting makes it collision-free.
func (r Row) Key(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(r[c].SQLLiteral())
	}
	return b.String()
}
