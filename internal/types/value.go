// Package types implements the SQL value system used throughout the engine:
// typed scalar values with NULL, three-valued logic, a total order per type,
// hashing for join/grouping, and the arithmetic and string operations the
// expression evaluator needs.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Type identifies the runtime type of a Value.
type Type uint8

// The supported SQL types. Null is modeled as its own type so that an unset
// Value is a well-formed NULL.
const (
	NullType Type = iota
	IntType
	FloatType
	StringType
	BoolType
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case NullType:
		return "NULL"
	case IntType:
		return "INTEGER"
	case FloatType:
		return "FLOAT"
	case StringType:
		return "VARCHAR"
	case BoolType:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType maps a SQL type name (as written in DDL) to a Type.
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return IntType, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return FloatType, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return StringType, nil
	case "BOOLEAN", "BOOL":
		return BoolType, nil
	default:
		return NullType, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Value is a single SQL scalar. The zero Value is NULL.
type Value struct {
	T Type
	I int64
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{T: IntType, I: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{T: FloatType, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{T: StringType, S: s} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	v := Value{T: BoolType}
	if b {
		v.I = 1
	}
	return v
}

// IsNull reports whether v is the SQL NULL.
func (v Value) IsNull() bool { return v.T == NullType }

// Bool returns the boolean payload; callers must check the type first.
func (v Value) Bool() bool { return v.T == BoolType && v.I != 0 }

// Int returns the integer payload, coercing FLOAT and BOOLEAN.
func (v Value) Int() int64 {
	switch v.T {
	case IntType, BoolType:
		return v.I
	case FloatType:
		return int64(v.F)
	default:
		return 0
	}
}

// Float returns the numeric payload as float64, coercing INTEGER.
func (v Value) Float() float64 {
	switch v.T {
	case FloatType:
		return v.F
	case IntType, BoolType:
		return float64(v.I)
	default:
		return 0
	}
}

// IsNumeric reports whether v is INTEGER or FLOAT.
func (v Value) IsNumeric() bool { return v.T == IntType || v.T == FloatType }

// String renders the value the way the REPL and test goldens print it.
func (v Value) String() string {
	switch v.T {
	case NullType:
		return "NULL"
	case IntType:
		return strconv.FormatInt(v.I, 10)
	case FloatType:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case StringType:
		return v.S
	case BoolType:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// SQLLiteral renders the value as a SQL literal (strings quoted and escaped).
// The cache write-back path uses it to generate DML.
func (v Value) SQLLiteral() string {
	if v.T == StringType {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

// Compare defines a total order over values: NULL sorts first, then by
// numeric value (INTEGER and FLOAT compare cross-type), then strings, then
// booleans. It returns -1, 0 or +1. Comparing a string against a number
// orders by type tag, which keeps the order total for sorting; predicate
// evaluation rejects such comparisons earlier during type checking.
func Compare(a, b Value) int {
	if a.T == NullType || b.T == NullType {
		switch {
		case a.T == b.T:
			return 0
		case a.T == NullType:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.T == IntType && b.T == IntType {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.T != b.T {
		switch {
		case a.T < b.T:
			return -1
		default:
			return 1
		}
	}
	switch a.T {
	case StringType:
		return strings.Compare(a.S, b.S)
	case BoolType:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
	return 0
}

// Equal reports SQL equality ignoring the NULL semantics (NULL equals NULL
// here; the evaluator applies three-valued logic before calling this).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a hash consistent with Equal: integers and floats holding the
// same numeric value hash identically so cross-type equi-joins work.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.T {
	case NullType:
		h.Write([]byte{0})
	case IntType, BoolType:
		writeUint64(h, uint64(v.I))
	case FloatType:
		f := v.F
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			// Hash integral floats like the equivalent integer.
			writeUint64(h, uint64(int64(f)))
		} else {
			writeUint64(h, math.Float64bits(f))
		}
	case StringType:
		h.Write([]byte{2})
		h.Write([]byte(v.S))
	}
	return h.Sum64()
}

func writeUint64(h interface{ Write([]byte) (int, error) }, u uint64) {
	var buf [9]byte
	buf[0] = 1
	for i := 0; i < 8; i++ {
		buf[i+1] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}
