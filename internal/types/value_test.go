package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		NullType:   "NULL",
		IntType:    "INTEGER",
		FloatType:  "FLOAT",
		StringType: "VARCHAR",
		BoolType:   "BOOLEAN",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"INT": IntType, "integer": IntType, "BIGINT": IntType,
		"FLOAT": FloatType, "double": FloatType, "DECIMAL": FloatType,
		"VARCHAR": StringType, "text": StringType, "CHAR": StringType,
		"BOOLEAN": BoolType, "bool": BoolType,
	}
	for name, want := range cases {
		got, err := ParseType(name)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseType(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("ParseType(BLOB) should fail")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("o'brien").SQLLiteral(); got != "'o''brien'" {
		t.Errorf("SQLLiteral escaping = %q", got)
	}
	if got := NewInt(3).SQLLiteral(); got != "3" {
		t.Errorf("int literal = %q", got)
	}
	if got := Null.SQLLiteral(); got != "NULL" {
		t.Errorf("null literal = %q", got)
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewString("a"), NewString("b"), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func randValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(20) - 10))
	case 2:
		return NewFloat(float64(r.Intn(40)-20) / 2)
	case 3:
		letters := []string{"", "a", "ab", "abc", "z", "hello"}
		return NewString(letters[r.Intn(len(letters))])
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

// Property: Compare is antisymmetric and transitive-ish (checked via
// consistency of sign under swap, and Equal ⇒ equal hashes).
func TestCompareAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randValue(r), randValue(r)
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("Compare(%v,%v) not antisymmetric", a, b)
		}
	}
}

func TestCompareTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b, c := randValue(r), randValue(r), randValue(r)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v <= %v <= %v but %v > %v", a, b, b, a, c)
		}
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a, b := randValue(r), randValue(r)
		if Equal(a, b) && a.Hash() != b.Hash() {
			t.Fatalf("Equal(%v,%v) but hashes differ", a, b)
		}
	}
	// Cross-type numeric equality must hash identically.
	if NewInt(7).Hash() != NewFloat(7).Hash() {
		t.Error("int 7 and float 7.0 must hash the same")
	}
}

func TestTriBoolTables(t *testing.T) {
	// Kleene logic truth tables.
	and := [3][3]TriBool{
		{False, False, False},
		{False, True, Unknown},
		{False, Unknown, Unknown},
	}
	or := [3][3]TriBool{
		{False, True, Unknown},
		{True, True, True},
		{Unknown, True, Unknown},
	}
	vals := []TriBool{False, True, Unknown}
	for i, a := range vals {
		for j, b := range vals {
			if got := a.And(b); got != and[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, and[i][j])
			}
			if got := a.Or(b); got != or[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, or[i][j])
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("three-valued NOT wrong")
	}
}

func TestCompareTri(t *testing.T) {
	got, err := CompareTri("<", NewInt(1), NewInt(2))
	if err != nil || got != True {
		t.Fatalf("1 < 2 = %v, %v", got, err)
	}
	got, err = CompareTri("=", Null, NewInt(2))
	if err != nil || got != Unknown {
		t.Fatalf("NULL = 2 should be Unknown, got %v, %v", got, err)
	}
	if _, err := CompareTri("=", NewString("a"), NewInt(1)); err == nil {
		t.Error("string = int should be a type error")
	}
	got, err = CompareTri(">=", NewFloat(2.0), NewInt(2))
	if err != nil || got != True {
		t.Fatalf("2.0 >= 2 = %v, %v", got, err)
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   string
		a, b Value
		want Value
	}{
		{"+", NewInt(2), NewInt(3), NewInt(5)},
		{"-", NewInt(2), NewInt(3), NewInt(-1)},
		{"*", NewInt(4), NewInt(3), NewInt(12)},
		{"/", NewInt(7), NewInt(2), NewInt(3)},
		{"%", NewInt(7), NewInt(2), NewInt(1)},
		{"+", NewFloat(1.5), NewInt(1), NewFloat(2.5)},
		{"/", NewFloat(1), NewFloat(4), NewFloat(0.25)},
		{"+", Null, NewInt(1), Null},
		{"||", NewString("a"), NewString("b"), NewString("ab")},
		{"+", NewString("a"), NewString("b"), NewString("ab")},
	}
	for _, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Fatalf("Arith(%q,%v,%v): %v", c.op, c.a, c.b, err)
		}
		if !Equal(got, c.want) || got.T != c.want.T {
			t.Errorf("Arith(%q,%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	if _, err := Arith("/", NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := Arith("/", NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero should error")
	}
	if _, err := Arith("+", NewInt(1), NewString("x")); err == nil {
		t.Error("int + string should error")
	}
}

func TestNeg(t *testing.T) {
	v, err := Neg(NewInt(5))
	if err != nil || v.I != -5 {
		t.Fatalf("Neg(5) = %v, %v", v, err)
	}
	v, err = Neg(NewFloat(2.5))
	if err != nil || v.F != -2.5 {
		t.Fatalf("Neg(2.5) = %v, %v", v, err)
	}
	if v, err := Neg(Null); err != nil || !v.IsNull() {
		t.Fatalf("Neg(NULL) = %v, %v", v, err)
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("Neg(string) should error")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ippi%", true},
	}
	for _, c := range cases {
		got, err := Like(NewString(c.s), NewString(c.p))
		if err != nil {
			t.Fatalf("Like(%q,%q): %v", c.s, c.p, err)
		}
		if got != Tri(c.want) {
			t.Errorf("Like(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
	if got, _ := Like(Null, NewString("%")); got != Unknown {
		t.Error("LIKE with NULL should be Unknown")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(NewInt(3), FloatType)
	if err != nil || v.T != FloatType || v.F != 3 {
		t.Fatalf("Coerce int→float = %v, %v", v, err)
	}
	v, err = Coerce(NewFloat(4), IntType)
	if err != nil || v.T != IntType || v.I != 4 {
		t.Fatalf("Coerce 4.0→int = %v, %v", v, err)
	}
	if _, err := Coerce(NewFloat(4.5), IntType); err == nil {
		t.Error("Coerce 4.5→int should fail")
	}
	if _, err := Coerce(NewInt(1), StringType); err == nil {
		t.Error("Coerce int→string should fail")
	}
	if v, err := Coerce(Null, IntType); err != nil || !v.IsNull() {
		t.Error("Coerce NULL should pass through")
	}
}

func TestStringFuncs(t *testing.T) {
	if v, _ := Upper(NewString("abc")); v.S != "ABC" {
		t.Error("UPPER")
	}
	if v, _ := Lower(NewString("ABC")); v.S != "abc" {
		t.Error("LOWER")
	}
	if v, _ := Length(NewString("abcd")); v.I != 4 {
		t.Error("LENGTH")
	}
	if v, _ := Abs(NewInt(-4)); v.I != 4 {
		t.Error("ABS int")
	}
	if v, _ := Abs(NewFloat(-2.5)); v.F != 2.5 {
		t.Error("ABS float")
	}
	for _, f := range []func(Value) (Value, error){Upper, Lower, Length} {
		if v, err := f(Null); err != nil || !v.IsNull() {
			t.Error("string func on NULL should be NULL")
		}
		if _, err := f(NewInt(1)); err == nil {
			t.Error("string func on int should error")
		}
	}
}

func TestTruthOf(t *testing.T) {
	if TruthOf(Null) != Unknown {
		t.Error("NULL truth")
	}
	if TruthOf(NewBool(true)) != True || TruthOf(NewBool(false)) != False {
		t.Error("bool truth")
	}
	if TruthOf(NewInt(2)) != True || TruthOf(NewInt(0)) != False {
		t.Error("int truth")
	}
	if TruthOf(NewString("x")) != Unknown {
		t.Error("string truth should be Unknown")
	}
}

// quick-check: LIKE with a pattern equal to the string (no wildcards
// present) always matches, and concatenating "%" keeps it matching.
func TestLikeQuick(t *testing.T) {
	f := func(s string) bool {
		// strip wildcard characters to make the property hold
		clean := ""
		for _, r := range s {
			if r != '%' && r != '_' && r < 128 {
				clean += string(r)
			}
		}
		a, _ := Like(NewString(clean), NewString(clean))
		b, _ := Like(NewString(clean), NewString(clean+"%"))
		c, _ := Like(NewString(clean), NewString("%"+clean))
		return a == True && b == True && c == True
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRowBasics(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].I != 1 {
		t.Error("Clone must not alias")
	}
	j := r.Concat(Row{NewBool(true)})
	if len(j) != 3 || !j[2].Bool() {
		t.Error("Concat wrong")
	}
	if r.String() != "1|a" {
		t.Errorf("Row.String = %q", r.String())
	}
}

func TestRowHashEqualOn(t *testing.T) {
	a := Row{NewInt(1), NewString("x"), NewFloat(1)}
	b := Row{NewFloat(1), NewString("x"), NewInt(2)}
	cols := []int{0, 1}
	if !a.EqualOn(b, cols) {
		t.Error("rows should be equal on cols 0,1 (cross-type numeric)")
	}
	if a.Hash(cols) != b.Hash(cols) {
		t.Error("equal rows must hash equal")
	}
	if a.EqualOn(b, []int{2}) {
		t.Error("rows differ on col 2")
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{NewInt(1), NewString("b")}
	b := Row{NewInt(1), NewString("a")}
	if CompareRows(a, b, []int{0, 1}, []bool{false, false}) <= 0 {
		t.Error("a should sort after b on (0 asc, 1 asc)")
	}
	if CompareRows(a, b, []int{1}, []bool{true}) >= 0 {
		t.Error("descending should flip")
	}
	if CompareRows(a, b, []int{0}, nil) != 0 {
		t.Error("equal on col 0")
	}
}

func TestRowKey(t *testing.T) {
	a := Row{NewString("a,b"), NewString("c")}
	b := Row{NewString("a"), NewString("b,c")}
	if a.Key([]int{0, 1}) == b.Key([]int{0, 1}) {
		t.Error("Key must be collision-free for quoted strings")
	}
}

func TestEqualRows(t *testing.T) {
	if !EqualRows(Row{NewInt(1)}, Row{NewFloat(1)}) {
		t.Error("numeric cross-type row equality")
	}
	if EqualRows(Row{NewInt(1)}, Row{NewInt(1), Null}) {
		t.Error("length mismatch")
	}
}

var _ = reflect.DeepEqual // keep reflect imported for quick
