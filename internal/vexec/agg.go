package vexec

import (
	"fmt"
	"math"
	"strings"

	"xnf/internal/exec"
	"xnf/internal/types"
)

// valHash hashes one value without the per-call allocation of
// types.Value.Hash, producing the same byte sequence (integral floats hash
// like the equivalent integer, so cross-type group keys that compare equal
// land in the same bucket).
func valHash(v types.Value) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	switch v.T {
	case types.NullType:
		h ^= 0
		h *= prime
	case types.StringType:
		h ^= 2
		h *= prime
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= prime
		}
	default:
		u := uint64(v.I)
		if v.T == types.FloatType {
			f := v.F
			if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
				u = uint64(int64(f))
			} else {
				u = math.Float64bits(f)
			}
		}
		h ^= 1
		h *= prime
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
	}
	return h
}

// mixHash folds one value hash into a running FNV-1a state. groupHash and
// rowHash must mix identically — merge-time probing relies on it.
func mixHash(h, u uint64) uint64 {
	const prime = 1099511628211
	for b := 0; b < 8; b++ {
		h ^= u & 0xff
		h *= prime
		u >>= 8
	}
	return h
}

const fnvOffset = 14695981039346656037

// groupHash combines the group-key values of physical row i.
func groupHash(vecs []Vector, i int) uint64 {
	h := uint64(fnvOffset)
	for _, v := range vecs {
		h = mixHash(h, valHash(v[i]))
	}
	return h
}

// AggSpec describes one aggregate computed by a HashAggBatch; semantics
// mirror exec.AggSpec exactly (NULL-skipping, DISTINCT, AVG as SUM/COUNT).
type AggSpec struct {
	Name     string // COUNT, SUM, AVG, MIN, MAX
	Star     bool   // COUNT(*)
	Distinct bool
	Arg      VExpr // nil for COUNT(*)
}

// rowHash combines the hashes of a materialized group key (merge-time
// probing of parallel partial aggregates); consistent with groupHash.
func rowHash(key types.Row) uint64 {
	h := uint64(fnvOffset)
	for _, v := range key {
		h = mixHash(h, valHash(v))
	}
	return h
}

// aggGroup is one group's accumulator. morsel/seq record where the group
// first appeared (morsel index, appearance position within the folding
// stream); the parallel merge sorts on them to reproduce the sequential
// first-appearance output order.
type aggGroup struct {
	key    types.Row
	states []*exec.AggState
	morsel int
	seq    int
}

// groupTable is the hash-aggregation state shared by the single-threaded
// HashAggBatch and the per-worker partials of ParallelAggScan: group keys
// and aggregate arguments are evaluated one vector at a time, then folded
// into per-group states.
type groupTable struct {
	groupExprs []VExpr
	specs      []AggSpec
	groups     map[uint64][]*aggGroup
	order      []*aggGroup
	morsel     int // current morsel index, stamped onto new groups
	seq        int

	groupVecs []Vector
	argVecs   []Vector
}

func newGroupTable(groupExprs []VExpr, specs []AggSpec) *groupTable {
	return &groupTable{
		groupExprs: groupExprs,
		specs:      specs,
		groups:     make(map[uint64][]*aggGroup),
		groupVecs:  make([]Vector, len(groupExprs)),
		argVecs:    make([]Vector, len(specs)),
	}
}

func (g *groupTable) newStates() []*exec.AggState {
	states := make([]*exec.AggState, len(g.specs))
	for i := range g.specs {
		states[i] = exec.NewAggState(g.specs[i].Name, g.specs[i].Star, g.specs[i].Distinct)
	}
	return states
}

// fold accumulates one batch. It resets the expression arena, so the
// batch's selection must not live in it (operator-owned buffers only —
// the invariant every batch operator already maintains).
func (g *groupTable) fold(e *env, b *Batch) error {
	sel := b.Sel
	if sel == nil {
		sel = e.identity(b.N)
	}
	e.reset()
	for gi, ge := range g.groupExprs {
		v, err := ge.eval(e, b, sel)
		if err != nil {
			return err
		}
		g.groupVecs[gi] = v
	}
	for ai := range g.specs {
		if g.specs[ai].Star {
			continue
		}
		v, err := g.specs[ai].Arg.eval(e, b, sel)
		if err != nil {
			return err
		}
		g.argVecs[ai] = v
	}
	for _, i := range sel {
		h := groupHash(g.groupVecs, i)
		var grp *aggGroup
	probe:
		for _, cand := range g.groups[h] {
			for gi := range g.groupExprs {
				if !types.Equal(cand.key[gi], g.groupVecs[gi][i]) {
					continue probe
				}
			}
			grp = cand
			break
		}
		if grp == nil {
			key := make(types.Row, len(g.groupExprs))
			for gi := range g.groupExprs {
				key[gi] = g.groupVecs[gi][i]
			}
			grp = &aggGroup{key: key, states: g.newStates(), morsel: g.morsel, seq: g.seq}
			g.seq++
			g.groups[h] = append(g.groups[h], grp)
			g.order = append(g.order, grp)
		}
		for ai := range g.specs {
			var v types.Value
			if !g.specs[ai].Star {
				v = g.argVecs[ai][i]
			}
			grp.states[ai].Add(v)
		}
	}
	return nil
}

// emit materializes the result rows in first-appearance order. A global
// aggregate (no group expressions) over empty input yields exactly one row
// (SQL semantics).
func (g *groupTable) emit() []types.Row {
	order := g.order
	if len(order) == 0 && len(g.groupExprs) == 0 {
		order = []*aggGroup{{states: g.newStates()}}
	}
	out := make([]types.Row, 0, len(order))
	for _, grp := range order {
		row := make(types.Row, 0, len(grp.key)+len(grp.states))
		row = append(row, grp.key...)
		for _, st := range grp.states {
			row = append(row, st.Result())
		}
		out = append(out, row)
	}
	return out
}

// HashAggBatch is the batch-native hash aggregation: group keys and
// aggregate arguments are evaluated one vector at a time, then folded into
// per-group states. With no group expressions it is a global aggregate
// producing exactly one row even for empty input (SQL semantics). Output
// order is first appearance, matching exec.AggPlan.
type HashAggBatch struct {
	Child  BatchPlan
	Groups []VExpr
	Aggs   []AggSpec
	Cols   []exec.Column

	env env
	out []types.Row
	pos int
	ob  Batch
}

// Open implements BatchPlan; the aggregation is computed eagerly.
func (a *HashAggBatch) Open(ctx *exec.Ctx, params types.Row) error {
	if err := a.Child.Open(ctx, params); err != nil {
		return err
	}
	a.env.open(params)
	gt := newGroupTable(a.Groups, a.Aggs)
	for {
		b, err := a.Child.NextBatch(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if err := gt.fold(&a.env, b); err != nil {
			return err
		}
	}
	if err := a.Child.Close(ctx); err != nil {
		return err
	}
	a.out = gt.emit()
	a.pos = 0
	return nil
}

// NextBatch implements BatchPlan.
func (a *HashAggBatch) NextBatch(*exec.Ctx) (*Batch, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	n := len(a.out) - a.pos
	if n > BatchSize {
		n = BatchSize
	}
	a.ob.fromRows(a.out[a.pos:a.pos+n], len(a.Cols))
	a.pos += n
	return &a.ob, nil
}

// Close implements BatchPlan.
func (a *HashAggBatch) Close(*exec.Ctx) error {
	a.out = nil
	return nil
}

// Columns implements BatchPlan.
func (a *HashAggBatch) Columns() []exec.Column { return a.Cols }

// Explain implements BatchPlan.
func (a *HashAggBatch) Explain(indent int) string {
	gs := make([]string, len(a.Groups))
	for i, g := range a.Groups {
		gs[i] = g.String()
	}
	as := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		switch {
		case s.Star:
			as[i] = s.Name + "(*)"
		case s.Distinct:
			as[i] = fmt.Sprintf("%s(DISTINCT %s)", s.Name, s.Arg.String())
		default:
			as[i] = fmt.Sprintf("%s(%s)", s.Name, s.Arg.String())
		}
	}
	return fmt.Sprintf("%sBatchAgg groups=(%s) aggs=(%s)\n%s", pad(indent),
		strings.Join(gs, ", "), strings.Join(as, ", "), a.Child.Explain(indent+1))
}

// Clone implements BatchPlan.
func (a *HashAggBatch) Clone(cloneRow func(exec.Plan) exec.Plan) BatchPlan {
	return &HashAggBatch{Child: a.Child.Clone(cloneRow), Groups: a.Groups, Aggs: a.Aggs, Cols: a.Cols}
}
