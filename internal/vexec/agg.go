package vexec

import (
	"fmt"
	"math"
	"strings"

	"xnf/internal/exec"
	"xnf/internal/types"
)

// valHash hashes one value without the per-call allocation of
// types.Value.Hash, producing the same byte sequence (integral floats hash
// like the equivalent integer, so cross-type group keys that compare equal
// land in the same bucket).
func valHash(v types.Value) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	switch v.T {
	case types.NullType:
		h ^= 0
		h *= prime
	case types.StringType:
		h ^= 2
		h *= prime
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= prime
		}
	default:
		u := uint64(v.I)
		if v.T == types.FloatType {
			f := v.F
			if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
				u = uint64(int64(f))
			} else {
				u = math.Float64bits(f)
			}
		}
		h ^= 1
		h *= prime
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
	}
	return h
}

// groupHash combines the group-key values of physical row i.
func groupHash(vecs []Vector, i int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range vecs {
		u := valHash(v[i])
		for b := 0; b < 8; b++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
	}
	return h
}

// AggSpec describes one aggregate computed by a HashAggBatch; semantics
// mirror exec.AggSpec exactly (NULL-skipping, DISTINCT, AVG as SUM/COUNT).
type AggSpec struct {
	Name     string // COUNT, SUM, AVG, MIN, MAX
	Star     bool   // COUNT(*)
	Distinct bool
	Arg      VExpr // nil for COUNT(*)
}

// HashAggBatch is the batch-native hash aggregation: group keys and
// aggregate arguments are evaluated one vector at a time, then folded into
// per-group states. With no group expressions it is a global aggregate
// producing exactly one row even for empty input (SQL semantics). Output
// order is first appearance, matching exec.AggPlan.
type HashAggBatch struct {
	Child  BatchPlan
	Groups []VExpr
	Aggs   []AggSpec
	Cols   []exec.Column

	env env
	out []types.Row
	pos int
	ob  Batch
}

// Open implements BatchPlan; the aggregation is computed eagerly.
func (a *HashAggBatch) Open(ctx *exec.Ctx, params types.Row) error {
	if err := a.Child.Open(ctx, params); err != nil {
		return err
	}
	a.env.open(params)
	type group struct {
		key    types.Row
		states []*exec.AggState
	}
	groups := make(map[uint64][]*group)
	var order []*group
	newStates := func() []*exec.AggState {
		states := make([]*exec.AggState, len(a.Aggs))
		for i := range a.Aggs {
			states[i] = exec.NewAggState(a.Aggs[i].Name, a.Aggs[i].Star, a.Aggs[i].Distinct)
		}
		return states
	}
	groupVecs := make([]Vector, len(a.Groups))
	argVecs := make([]Vector, len(a.Aggs))
	for {
		b, err := a.Child.NextBatch(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		sel := b.Sel
		if sel == nil {
			sel = a.env.identity(b.N)
		}
		a.env.reset()
		for gi, g := range a.Groups {
			v, err := g.eval(&a.env, b, sel)
			if err != nil {
				return err
			}
			groupVecs[gi] = v
		}
		for ai := range a.Aggs {
			if a.Aggs[ai].Star {
				continue
			}
			v, err := a.Aggs[ai].Arg.eval(&a.env, b, sel)
			if err != nil {
				return err
			}
			argVecs[ai] = v
		}
		for _, i := range sel {
			h := groupHash(groupVecs, i)
			var grp *group
		probe:
			for _, g := range groups[h] {
				for gi := range a.Groups {
					if !types.Equal(g.key[gi], groupVecs[gi][i]) {
						continue probe
					}
				}
				grp = g
				break
			}
			if grp == nil {
				key := make(types.Row, len(a.Groups))
				for gi := range a.Groups {
					key[gi] = groupVecs[gi][i]
				}
				grp = &group{key: key, states: newStates()}
				groups[h] = append(groups[h], grp)
				order = append(order, grp)
			}
			for ai := range a.Aggs {
				var v types.Value
				if !a.Aggs[ai].Star {
					v = argVecs[ai][i]
				}
				grp.states[ai].Add(v)
			}
		}
	}
	if err := a.Child.Close(ctx); err != nil {
		return err
	}
	if len(order) == 0 && len(a.Groups) == 0 {
		order = append(order, &group{states: newStates()})
	}
	a.out = a.out[:0]
	for _, g := range order {
		row := make(types.Row, 0, len(g.key)+len(g.states))
		row = append(row, g.key...)
		for _, st := range g.states {
			row = append(row, st.Result())
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

// NextBatch implements BatchPlan.
func (a *HashAggBatch) NextBatch(*exec.Ctx) (*Batch, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	n := len(a.out) - a.pos
	if n > BatchSize {
		n = BatchSize
	}
	a.ob.fromRows(a.out[a.pos:a.pos+n], len(a.Cols))
	a.pos += n
	return &a.ob, nil
}

// Close implements BatchPlan.
func (a *HashAggBatch) Close(*exec.Ctx) error {
	a.out = nil
	return nil
}

// Columns implements BatchPlan.
func (a *HashAggBatch) Columns() []exec.Column { return a.Cols }

// Explain implements BatchPlan.
func (a *HashAggBatch) Explain(indent int) string {
	gs := make([]string, len(a.Groups))
	for i, g := range a.Groups {
		gs[i] = g.String()
	}
	as := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		switch {
		case s.Star:
			as[i] = s.Name + "(*)"
		case s.Distinct:
			as[i] = fmt.Sprintf("%s(DISTINCT %s)", s.Name, s.Arg.String())
		default:
			as[i] = fmt.Sprintf("%s(%s)", s.Name, s.Arg.String())
		}
	}
	return fmt.Sprintf("%sBatchAgg groups=(%s) aggs=(%s)\n%s", pad(indent),
		strings.Join(gs, ", "), strings.Join(as, ", "), a.Child.Explain(indent+1))
}

// Clone implements BatchPlan.
func (a *HashAggBatch) Clone(cloneRow func(exec.Plan) exec.Plan) BatchPlan {
	return &HashAggBatch{Child: a.Child.Clone(cloneRow), Groups: a.Groups, Aggs: a.Aggs, Cols: a.Cols}
}
